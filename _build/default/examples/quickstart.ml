(* Quickstart: create a Salamander SSD, do I/O against its minidisks,
   then wear it out and watch it shrink and regenerate.

   Run with: dune exec examples/quickstart.exe *)

let printf = Format.printf

let () =
  (* An 8 MiB flash device (scaled; see DESIGN.md) whose pages wear out
     after ~60 erase cycles, with 256 KiB minidisks and RegenS enabled. *)
  let geometry = Flash.Geometry.create ~pages_per_block:16 ~blocks:32 () in
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let model =
    Flash.Rber_model.calibrate
      ~target_rber:
        (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
      ~target_pec:60 ()
  in
  let device =
    Salamander.Device.create
      ~config:
        {
          Salamander.Device.default_config with
          Salamander.Device.mdisk_opages = 64;
        }
      ~geometry ~model
      ~rng:(Sim.Rng.create 2025)
      ()
  in

  (* 1. The device presents itself as many tiny independent drives. *)
  let mdisks = Salamander.Device.active_mdisks device in
  printf "device exposes %d minidisks of %d oPages each@."
    (List.length mdisks)
    (List.hd mdisks).Salamander.Minidisk.opages;

  (* 2. Ordinary I/O, addressed as (minidisk, LBA). *)
  let first = (List.hd mdisks).Salamander.Minidisk.id in
  (match Salamander.Device.write device ~mdisk:first ~lba:0 ~payload:42 with
  | Ok () -> printf "wrote payload 42 to minidisk %d, LBA 0@." first
  | Error _ -> assert false);
  (match Salamander.Device.read device ~mdisk:first ~lba:0 with
  | Ok payload -> printf "read it back: %d@." payload
  | Error _ -> assert false);

  (* 3. Age the device with random overwrites through the flat adapter. *)
  printf "@.aging the device...@.";
  let pattern =
    Workload.Pattern.uniform
      ~window:(Salamander.Device.active_opages device * 85 / 100)
      ~read_fraction:0.
  in
  let rec age_until_events tries =
    let outcome =
      Workload.Aging.run ~max_writes:5_000 ~rng:(Sim.Rng.create tries)
        ~pattern ~device:(Salamander.Device.pack device) ()
    in
    let events = Salamander.Device.poll_events device in
    if events = [] && Salamander.Device.alive device && tries < 200 then
      age_until_events (tries + 1)
    else (outcome, events)
  in
  let _, events = age_until_events 1 in
  List.iter (fun e -> printf "event: %a@." Salamander.Events.pp e) events;

  (* 4. Inspect wear state: the limbo census and capacity accounting. *)
  printf "@.limbo: %a@." Salamander.Limbo.pp (Salamander.Device.limbo device);
  printf "exported LBAs: %d, physical data slots: %d@."
    (Salamander.Device.active_opages device)
    (Salamander.Device.total_data_opages device);
  printf "decommissions so far: %d, regenerations: %d@."
    (Salamander.Device.decommissions device)
    (Salamander.Device.regenerations device);

  (* 5. Keep going until the device gives up entirely. *)
  let outcome =
    Workload.Aging.run ~max_writes:50_000_000 ~rng:(Sim.Rng.create 7)
      ~pattern ~device:(Salamander.Device.pack device) ()
  in
  printf
    "@.device absorbed %d more writes before dying; final decommissions %d, \
     regenerations %d@."
    outcome.Workload.Aging.host_writes
    (Salamander.Device.decommissions device)
    (Salamander.Device.regenerations device)
