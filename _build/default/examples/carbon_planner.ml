(* What-if planner for the sustainability models: sweep the lifetime
   extension factor and the operational shares to see when Salamander-
   style drives pay off in carbon and in dollars (Eqs. 3 and 4).

   Run with: dune exec examples/carbon_planner.exe *)

let fmt = Format.std_formatter

let () =
  let lifetimes = [ 1.1; 1.2; 1.5; 2.0; 3.0 ] in
  let f_ops = [ 0.; 0.25; Sustain.Params.f_op_ssd_servers; 0.6 ] in

  Experiments.Report.section fmt
    "carbon savings (Eq. 3) by lifetime factor and operational share";
  Experiments.Report.table fmt
    ~header:
      ("lifetime"
      :: List.map (fun f -> Printf.sprintf "f_op=%.2f" f) f_ops)
    ~rows:
      (List.map
         (fun lifetime ->
           Printf.sprintf "%.1fx" lifetime
           :: List.map
                (fun f_op ->
                  let scenario =
                    {
                      Sustain.Carbon.label = "";
                      f_op;
                      power_effectiveness = Sustain.Params.power_effectiveness;
                      upgrade_rate =
                        Sustain.Carbon.adjusted_upgrade_rate
                          ~lifetime_factor:lifetime
                          ~adjustment:Sustain.Params.capacity_adjustment;
                    }
                  in
                  Experiments.Report.cell_pct
                    (Sustain.Carbon.savings scenario))
                f_ops)
         lifetimes);
  Experiments.Report.note fmt
    "longer-lived drives matter most where embodied carbon dominates \
     (low f_op, i.e. renewable-powered datacenters)";

  Experiments.Report.section fmt
    "TCO savings (Eq. 4) by lifetime factor and opex share";
  let f_opexes = [ Sustain.Params.f_opex; 0.3; 0.5 ] in
  Experiments.Report.table fmt
    ~header:
      ("lifetime"
      :: List.map (fun f -> Printf.sprintf "f_opex=%.2f" f) f_opexes)
    ~rows:
      (List.map
         (fun lifetime ->
           Printf.sprintf "%.1fx" lifetime
           :: List.map
                (fun f_opex ->
                  let scenario =
                    {
                      Sustain.Tco.label = "";
                      f_opex;
                      upgrade_rate = 1. /. lifetime;
                      cost_effectiveness_new =
                        Sustain.Params.cost_effectiveness_new;
                      capacity_gap = Sustain.Params.capacity_gap_fraction;
                    }
                  in
                  Experiments.Report.cell_pct (Sustain.Tco.savings scenario))
                f_opexes)
         lifetimes);
  Experiments.Report.note fmt
    "acquisition-dominated budgets (f_opex = 0.14, the datacenter norm) \
     benefit the most"
