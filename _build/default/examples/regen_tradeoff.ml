(* Explore the capacity-for-lifetime trade-off (Fig. 2) across flash
   geometries: different fPage sizes and factory spare budgets change
   where the diminishing returns set in, the design space §4.2 of the
   paper alludes to ("may also fit SSDs with fPage < 16KB").

   Run with: dune exec examples/regen_tradeoff.exe *)

let fmt = Format.std_formatter

let explore ~label geometry =
  Experiments.Report.section fmt label;
  (* deepest meaningful level: all but one oPage repurposed *)
  let max_level = geometry.Flash.Geometry.opages_per_fpage - 1 in
  let points = Sustain.Lifetime.curve ~max_level geometry in
  Experiments.Report.table fmt
    ~header:[ "level"; "code rate"; "PEC limit"; "benefit"; "capacity kept" ]
    ~rows:
      (List.map
         (fun p ->
           [
             Printf.sprintf "L%d" p.Sustain.Lifetime.level;
             Experiments.Report.cell_f p.Sustain.Lifetime.code_rate;
             Experiments.Report.cell_f p.Sustain.Lifetime.pec_limit;
             Printf.sprintf "%.2fx" p.Sustain.Lifetime.benefit;
             Experiments.Report.cell_pct
               (float_of_int
                  (geometry.Flash.Geometry.opages_per_fpage
                  - p.Sustain.Lifetime.level)
               /. float_of_int geometry.Flash.Geometry.opages_per_fpage);
           ])
         points)

let () =
  (* The paper's reference: 16 KiB fPages with a 2 KiB spare. *)
  explore ~label:"16 KiB fPage, 2 KiB spare (paper reference)"
    (Flash.Geometry.create ~pages_per_block:64 ~blocks:64 ());

  (* A stingier factory spare: repurposing oPages buys relatively more. *)
  explore ~label:"16 KiB fPage, 1 KiB spare (cheap flash)"
    (Flash.Geometry.create ~spare_bytes:1024 ~pages_per_block:64 ~blocks:64 ());

  (* A smaller page: 8 KiB fPage of two oPages; L1 costs half the page. *)
  explore ~label:"8 KiB fPage (2 oPages), 1 KiB spare"
    (Flash.Geometry.create ~opages_per_fpage:2 ~spare_bytes:1024
       ~pages_per_block:64 ~blocks:64 ());

  Experiments.Report.note fmt
    "cheaper flash (smaller factory spare) gains proportionally more from \
     RegenS — the paper's argument that Salamander paves the way for less \
     endurant, cheaper flash"
