(* A distributed storage cluster on Salamander drives, aged until devices
   start failing, demonstrating the end-to-end story of the paper: the
   diFS absorbs minidisk decommissionings with small recoveries and no
   data loss while redundancy holds.

   Run with: dune exec examples/cluster_aging.exe *)

let printf = Format.printf

let () =
  let geometry = Flash.Geometry.create ~pages_per_block:16 ~blocks:32 () in
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let model =
    Flash.Rber_model.calibrate
      ~target_rber:
        (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
      ~target_pec:60 ()
  in
  let cluster = Difs.Cluster.create () in
  let devices =
    List.init 6 (fun i ->
        let d =
          Salamander.Device.create
            ~config:
              {
                Salamander.Device.default_config with
                Salamander.Device.mdisk_opages = 64;
              }
            ~geometry ~model
            ~rng:(Sim.Rng.create (100 + i))
            ()
        in
        ignore
          (Difs.Cluster.add_device cluster ~node:i (Difs.Cluster.Salamander d));
        d)
  in
  printf "cluster: 6 Salamander devices, %d minidisk targets, %d shares/chunk@."
    (Difs.Cluster.live_targets cluster)
    (Difs.Cluster.total_shares cluster);

  (* Store a working set of chunks. *)
  let chunk_count = 60 in
  for id = 0 to chunk_count - 1 do
    match Difs.Cluster.write_chunk cluster id with
    | Ok () -> ()
    | Error _ -> failwith "initial placement failed"
  done;
  printf "stored %d chunks (%d oPages each, 3 replicas)@." chunk_count
    (Difs.Cluster.config cluster).Difs.Cluster.chunk_opages;

  (* Rewrite chunks until the fleet has shrunk noticeably. *)
  let rng = Sim.Rng.create 9 in
  let rounds = ref 0 in
  let decommissions () =
    List.fold_left
      (fun acc d -> acc + Salamander.Device.decommissions d)
      0 devices
  in
  while decommissions () < 12 && !rounds < 200_000 do
    incr rounds;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunk_count))
  done;
  Difs.Cluster.repair cluster;

  let health = Difs.Cluster.health cluster in
  printf "@.after %d chunk rewrites:@." !rounds;
  printf "  minidisk decommissions handled: %d@." (decommissions ());
  printf "  regenerated minidisks: %d@."
    (List.fold_left
       (fun acc d -> acc + Salamander.Device.regenerations d)
       0 devices);
  printf "  recovery events: %d, recovery traffic: %d oPages@."
    (Difs.Cluster.recovery_events cluster)
    (Difs.Cluster.recovery_opages cluster);
  printf "  chunk health: %d intact, %d degraded, %d lost@."
    health.Difs.Cluster.intact health.Difs.Cluster.degraded
    health.Difs.Cluster.lost;

  (* Verify every byte of every surviving replica. *)
  let verified =
    List.filter (Difs.Cluster.verify_chunk cluster)
      (List.init chunk_count Fun.id)
  in
  printf "  verified end-to-end: %d/%d chunks@." (List.length verified)
    chunk_count
