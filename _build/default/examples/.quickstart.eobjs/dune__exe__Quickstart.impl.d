examples/quickstart.ml: Flash Format List Salamander Sim Workload
