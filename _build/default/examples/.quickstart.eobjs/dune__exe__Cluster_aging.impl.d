examples/cluster_aging.ml: Difs Flash Format Fun List Salamander Sim
