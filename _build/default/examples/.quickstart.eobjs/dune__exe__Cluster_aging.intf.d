examples/cluster_aging.mli:
