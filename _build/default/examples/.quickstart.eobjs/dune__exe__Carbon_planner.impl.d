examples/carbon_planner.ml: Experiments Format List Printf Sustain
