examples/carbon_planner.mli:
