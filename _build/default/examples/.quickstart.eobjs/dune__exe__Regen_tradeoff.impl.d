examples/regen_tradeoff.ml: Experiments Flash Format List Printf Sustain
