examples/quickstart.mli:
