examples/regen_tradeoff.mli:
