let default_codeword_target = 1e-11

let codeword_fail_prob (params : Code_params.t) ~rber =
  Sim.Special.binomial_tail params.n_bits rber params.capability

let page_fail_prob params ~codewords ~rber =
  if codewords <= 0 then invalid_arg "Reliability.page_fail_prob: codewords";
  let p = codeword_fail_prob params ~rber in
  1. -. ((1. -. p) ** float_of_int codewords)

let tolerable_rber ?(target = default_codeword_target)
    (params : Code_params.t) =
  (* codeword_fail_prob is monotonically increasing in rber. *)
  Sim.Special.solve_monotone
    ~f:(fun rber -> codeword_fail_prob params ~rber)
    ~target ~lo:0. ~hi:0.5 ()

let expected_errors (params : Code_params.t) ~rber =
  float_of_int params.n_bits *. rber
