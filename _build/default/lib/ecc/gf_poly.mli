(** Dense polynomials with coefficients in GF(2^m).

    A polynomial is an int array; index [i] holds the coefficient of x^i.
    All functions treat arrays as immutable values and normalize away
    leading zeros, so [degree] is always meaningful.  The zero polynomial is
    represented by [[|0|]] and has degree -1 by convention. *)

type t = int array

val zero : t
val one : t
val of_coefficients : int array -> t
(** Copy and strip leading zero coefficients. *)

val degree : t -> int
val is_zero : t -> bool
val equal : t -> t -> bool
val coefficient : t -> int -> int
(** Coefficient of x^i (0 beyond the degree). *)

val add : Galois.t -> t -> t -> t
val mul : Galois.t -> t -> t -> t
val scale : Galois.t -> int -> t -> t
(** Multiply every coefficient by a field scalar. *)

val shift : t -> int -> t
(** [shift p k] is [p * x^k]. *)

val divmod : Galois.t -> t -> t -> t * t
(** [divmod f a b] = (quotient, remainder) of [a / b].
    @raise Division_by_zero when [b] is zero. *)

val eval : Galois.t -> t -> int -> int
(** Evaluate at a field point (Horner). *)

val derivative : Galois.t -> t -> t
(** Formal derivative; in characteristic 2 even-power terms vanish. *)

val minimal_polynomial : Galois.t -> int -> t
(** [minimal_polynomial f e] is the minimal polynomial over GF(2) of the
    field element alpha^e: the product of (x - alpha^j) over the conjugacy
    class [{e, 2e, 4e, ...}].  All returned coefficients are 0 or 1. *)

val pp : Format.formatter -> t -> unit
