type t = {
  field : Galois.t;
  data_shares : int;
  parity_shares : int;
  parity_matrix : int array array;
      (* parity_matrix.(j).(i): weight of data share i in parity share j *)
}

(* Lagrange basis coefficient: the weight of the value at [point] when
   interpolating through [points] and evaluating at [x]. *)
let lagrange_weight field ~points ~point ~x =
  List.fold_left
    (fun acc other ->
      if other = point then acc
      else
        Galois.mul field acc
          (Galois.div field
             (Galois.add field x other)
             (Galois.add field point other)))
    1 points

let create ~data_shares ~parity_shares =
  if data_shares <= 0 then invalid_arg "Reed_solomon.create: data_shares";
  if parity_shares <= 0 then invalid_arg "Reed_solomon.create: parity_shares";
  if data_shares + parity_shares > 255 then
    invalid_arg "Reed_solomon.create: more than 255 shares";
  let field = Galois.create 8 in
  let data_points = List.init data_shares Fun.id in
  let parity_matrix =
    Array.init parity_shares (fun j ->
        let x = data_shares + j in
        Array.init data_shares (fun i ->
            lagrange_weight field ~points:data_points ~point:i ~x))
  in
  { field; data_shares; parity_shares; parity_matrix }

let data_shares t = t.data_shares
let parity_shares t = t.parity_shares
let total_shares t = t.data_shares + t.parity_shares

let storage_overhead t =
  float_of_int (total_shares t) /. float_of_int t.data_shares

let check_lengths label shares =
  match shares with
  | [] -> 0
  | (_, first) :: rest ->
      let len = Bytes.length first in
      List.iter
        (fun (_, share) ->
          if Bytes.length share <> len then
            invalid_arg (label ^ ": ragged share lengths"))
        rest;
      len

let encode t data =
  if Array.length data <> t.data_shares then
    invalid_arg "Reed_solomon.encode: wrong number of data shares";
  let len =
    check_lengths "Reed_solomon.encode"
      (Array.to_list (Array.mapi (fun i d -> (i, d)) data))
  in
  Array.init t.parity_shares (fun j ->
      let row = t.parity_matrix.(j) in
      let parity = Bytes.make len '\000' in
      for byte = 0 to len - 1 do
        let acc = ref 0 in
        for i = 0 to t.data_shares - 1 do
          acc :=
            Galois.add t.field !acc
              (Galois.mul t.field row.(i)
                 (Char.code (Bytes.get data.(i) byte)))
        done;
        Bytes.set parity byte (Char.chr !acc)
      done;
      parity)

let reconstruct t ~shares index =
  if index < 0 || index >= total_shares t then
    invalid_arg "Reed_solomon.reconstruct: share index out of range";
  let shares =
    (* deduplicate by index, keep k *)
    let seen = Hashtbl.create 8 in
    List.filter
      (fun (i, _) ->
        if i < 0 || i >= total_shares t then
          invalid_arg "Reed_solomon.reconstruct: share index out of range";
        if Hashtbl.mem seen i then false
        else begin
          Hashtbl.add seen i ();
          true
        end)
      shares
  in
  if List.length shares < t.data_shares then
    invalid_arg "Reed_solomon.reconstruct: need at least k shares";
  let shares =
    List.filteri (fun i _ -> i < t.data_shares) shares
  in
  let len = check_lengths "Reed_solomon.reconstruct" shares in
  let points = List.map fst shares in
  let weights =
    List.map
      (fun (point, share) ->
        (lagrange_weight t.field ~points ~point ~x:index, share))
      shares
  in
  let out = Bytes.make len '\000' in
  for byte = 0 to len - 1 do
    let acc = ref 0 in
    List.iter
      (fun (weight, share) ->
        acc :=
          Galois.add t.field !acc
            (Galois.mul t.field weight (Char.code (Bytes.get share byte))))
      weights;
    Bytes.set out byte (Char.chr !acc)
  done;
  out

let verify t shares =
  Array.length shares = total_shares t
  && begin
       let data = Array.sub shares 0 t.data_shares in
       let expected = encode t data in
       let ok = ref true in
       Array.iteri
         (fun j parity ->
           if not (Bytes.equal parity shares.(t.data_shares + j)) then
             ok := false)
         expected;
       !ok
     end
