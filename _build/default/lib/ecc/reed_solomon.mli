(** Systematic Reed-Solomon erasure coding over GF(2^8).

    The redundancy mechanism large distributed stores actually deploy
    alongside replication: a chunk is split into [k] data shares and
    extended with [m] parity shares such that {e any} [k] of the [k+m]
    shares reconstruct everything.  Storage overhead is (k+m)/k instead
    of replication's n, at the price of recovery amplification: repairing
    one lost share reads [k] shares instead of one.

    Implementation: shares are values of the degree-(k-1) polynomial that
    interpolates the data symbols at evaluation points 0..k-1; parity
    shares are the polynomial at points k..k+m-1 (so the code is
    systematic — data shares hold the data verbatim).  Decoding is
    Lagrange interpolation from any k surviving points.  Each byte
    position of the shares is coded independently. *)

type t

val create : data_shares:int -> parity_shares:int -> t
(** @raise Invalid_argument unless [0 < k], [0 < m] and [k + m <= 255]. *)

val data_shares : t -> int
val parity_shares : t -> int
val total_shares : t -> int

val storage_overhead : t -> float
(** (k+m)/k, to compare against replication factor n. *)

val encode : t -> bytes array -> bytes array
(** [encode t data] takes [k] equal-length data shares and returns the
    [m] parity shares.
    @raise Invalid_argument on wrong share count or ragged lengths. *)

val reconstruct : t -> shares:(int * bytes) list -> int -> bytes
(** [reconstruct t ~shares index] rebuilds share [index] from any [k]
    known shares given as (share index, content) pairs.
    @raise Invalid_argument with fewer than [k] shares, duplicate or
    out-of-range indices, or ragged lengths. *)

val verify : t -> bytes array -> bool
(** [verify t shares] checks a full set of [k + m] shares for parity
    consistency (all byte positions satisfy the code). *)
