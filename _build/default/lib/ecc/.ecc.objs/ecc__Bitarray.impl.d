lib/ecc/bitarray.ml: Array Bytes Char Sim String
