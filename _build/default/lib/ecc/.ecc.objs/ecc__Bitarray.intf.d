lib/ecc/bitarray.mli: Sim
