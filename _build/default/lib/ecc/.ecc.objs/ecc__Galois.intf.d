lib/ecc/galois.mli:
