lib/ecc/code_params.mli: Bch Format
