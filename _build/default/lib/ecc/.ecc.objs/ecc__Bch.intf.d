lib/ecc/bch.mli: Bitarray Gf_poly
