lib/ecc/gf_poly.ml: Array Format Galois List Stdlib
