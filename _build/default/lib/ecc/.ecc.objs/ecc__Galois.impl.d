lib/ecc/galois.ml: Array Printf
