lib/ecc/reed_solomon.mli:
