lib/ecc/gf_poly.mli: Format Galois
