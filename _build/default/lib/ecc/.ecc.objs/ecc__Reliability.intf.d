lib/ecc/reliability.mli: Code_params
