lib/ecc/reed_solomon.ml: Array Bytes Char Fun Galois Hashtbl List
