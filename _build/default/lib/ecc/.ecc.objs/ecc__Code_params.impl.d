lib/ecc/code_params.ml: Bch Format
