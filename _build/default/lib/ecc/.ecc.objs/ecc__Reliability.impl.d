lib/ecc/reliability.ml: Code_params Sim
