lib/ecc/bch.ml: Array Bitarray Galois Gf_poly List
