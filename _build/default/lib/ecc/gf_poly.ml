type t = int array

let zero = [| 0 |]
let one = [| 1 |]

let normalize coefficients =
  let last = ref (Array.length coefficients - 1) in
  while !last > 0 && coefficients.(!last) = 0 do
    decr last
  done;
  Array.sub coefficients 0 (!last + 1)

let of_coefficients coefficients =
  if Array.length coefficients = 0 then zero
  else normalize (Array.copy coefficients)

let degree p = if Array.length p = 1 && p.(0) = 0 then -1 else Array.length p - 1
let is_zero p = degree p = -1
let equal a b = normalize a = normalize b
let coefficient p i = if i < Array.length p then p.(i) else 0

let add field a b =
  let len = Stdlib.max (Array.length a) (Array.length b) in
  normalize
    (Array.init len (fun i ->
         Galois.add field (coefficient a i) (coefficient b i)))

let mul field a b =
  if is_zero a || is_zero b then zero
  else begin
    let result = Array.make (degree a + degree b + 1) 0 in
    Array.iteri
      (fun i ai ->
        if ai <> 0 then
          Array.iteri
            (fun j bj ->
              if bj <> 0 then
                result.(i + j) <-
                  Galois.add field result.(i + j) (Galois.mul field ai bj))
            b)
      a;
    normalize result
  end

let scale field s p =
  if s = 0 then zero else normalize (Array.map (Galois.mul field s) p)

let shift p k =
  if is_zero p then zero
  else begin
    let result = Array.make (Array.length p + k) 0 in
    Array.blit p 0 result k (Array.length p);
    result
  end

let divmod field a b =
  if is_zero b then raise Division_by_zero;
  let remainder = Array.copy a in
  let db = degree b in
  let lead_inv = Galois.inv field b.(db) in
  let quotient = Array.make (Stdlib.max 1 (Array.length a)) 0 in
  for i = Array.length remainder - 1 downto db do
    if remainder.(i) <> 0 then begin
      let factor = Galois.mul field remainder.(i) lead_inv in
      quotient.(i - db) <- factor;
      for j = 0 to db do
        remainder.(i - db + j) <-
          Galois.add field remainder.(i - db + j)
            (Galois.mul field factor b.(j))
      done
    end
  done;
  (normalize quotient, normalize remainder)

let eval field p x =
  let acc = ref 0 in
  for i = Array.length p - 1 downto 0 do
    acc := Galois.add field (Galois.mul field !acc x) p.(i)
  done;
  !acc

let derivative _field p =
  if degree p <= 0 then zero
  else
    normalize
      (Array.init (Array.length p - 1) (fun i ->
           (* d/dx of c x^(i+1) is (i+1) c x^i; in GF(2^m) the integer
              multiplier reduces mod 2. *)
           if (i + 1) mod 2 = 1 then p.(i + 1) else 0))

let minimal_polynomial field e =
  let order = Galois.order field in
  (* Conjugacy class of alpha^e under Frobenius squaring. *)
  let rec class_of acc j =
    let j = j mod order in
    if List.mem j acc then acc else class_of (j :: acc) (2 * j)
  in
  let conjugates = class_of [] (((e mod order) + order) mod order) in
  List.fold_left
    (fun acc j ->
      (* multiply by (x + alpha^j) *)
      mul field acc [| Galois.alpha_pow field j; 1 |])
    one conjugates

let pp fmt p =
  if is_zero p then Format.fprintf fmt "0"
  else begin
    let first = ref true in
    for i = Array.length p - 1 downto 0 do
      if p.(i) <> 0 then begin
        if not !first then Format.fprintf fmt " + ";
        first := false;
        if i = 0 then Format.fprintf fmt "%d" p.(i)
        else if p.(i) = 1 then Format.fprintf fmt "x^%d" i
        else Format.fprintf fmt "%d.x^%d" p.(i) i
      end
    done
  end
