type t = { mutable accesses : Access.t list; mutable count : int }
(* stored in reverse order; reversed on iteration *)

let create () = { accesses = []; count = 0 }

let record t access =
  t.accesses <- access :: t.accesses;
  t.count <- t.count + 1

let length t = t.count

let capture t pattern rng ~n =
  for _ = 1 to n do
    record t (Pattern.next pattern rng)
  done

let to_list t = List.rev t.accesses
let iter t f = List.iter f (to_list t)

let of_list accesses =
  { accesses = List.rev accesses; count = List.length accesses }
