lib/workload/trace.mli: Access Pattern Sim
