lib/workload/aging.ml: Access Ftl Pattern Stdlib
