lib/workload/pattern.ml: Access Sim
