lib/workload/pattern.mli: Access Sim
