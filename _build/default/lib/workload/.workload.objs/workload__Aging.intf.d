lib/workload/aging.mli: Ftl Pattern Sim
