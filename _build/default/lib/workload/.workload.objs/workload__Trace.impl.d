lib/workload/trace.ml: Access List Pattern
