(** Access-trace recording and replay, so an experiment can subject two
    device designs to the byte-identical request stream. *)

type t

val create : unit -> t
val record : t -> Access.t -> unit
val length : t -> int

val capture : t -> Pattern.t -> Sim.Rng.t -> n:int -> unit
(** Draw [n] accesses from a pattern and append them. *)

val iter : t -> (Access.t -> unit) -> unit
(** Replay in recorded order. *)

val to_list : t -> Access.t list

val of_list : Access.t list -> t
