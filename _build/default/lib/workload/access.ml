type kind = Read | Write | Trim

type t = { kind : kind; lba : int }

let pp fmt t =
  let kind =
    match t.kind with Read -> "read" | Write -> "write" | Trim -> "trim"
  in
  Format.fprintf fmt "%s %d" kind t.lba
