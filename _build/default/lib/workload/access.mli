(** Host accesses, in oPage units. *)

type kind = Read | Write | Trim

type t = { kind : kind; lba : int }

val pp : Format.formatter -> t -> unit
