type t = {
  pending : (int, int) Hashtbl.t; (* logical -> payload *)
  order : int Queue.t; (* arrival order; may contain stale entries *)
}

let create () = { pending = Hashtbl.create 64; order = Queue.create () }
let length t = Hashtbl.length t.pending
let is_empty t = length t = 0

let put t ~logical ~payload =
  if not (Hashtbl.mem t.pending logical) then Queue.push logical t.order;
  Hashtbl.replace t.pending logical payload

let payload_of t logical = Hashtbl.find_opt t.pending logical
let drop t logical = Hashtbl.remove t.pending logical

let pop t n =
  let rec take remaining acc =
    if remaining = 0 || Queue.is_empty t.order then List.rev acc
    else
      let logical = Queue.pop t.order in
      match Hashtbl.find_opt t.pending logical with
      | None -> take remaining acc (* stale: rewritten and already popped *)
      | Some payload ->
          Hashtbl.remove t.pending logical;
          take (remaining - 1) ((logical, payload) :: acc)
  in
  take n []
