(** ECC configuration shared by the simulated devices: the code protecting
    each oPage at the default (level-0) spare budget, its retirement
    threshold, and the resulting read-failure probability. *)

type t = private {
  params : Ecc.Code_params.t;  (** per-codeword parameters at level 0 *)
  codewords_per_opage : int;
  tolerable_rber : float;
      (** retire a page once its post-next-erase RBER exceeds this *)
}

val of_geometry : ?target:float -> Flash.Geometry.t -> t
(** Split the fPage spare area evenly across its codewords and size the
    code accordingly.  [target] is the acceptable per-codeword failure
    probability (default {!Ecc.Reliability.default_codeword_target}). *)

val opage_read_fail_prob : t -> rber:float -> float
(** Probability that reading one oPage (all its codewords) fails. *)

val page_is_tired : t -> rber:float -> bool
(** True when the error rate exceeds what this profile tolerates. *)

val reclaim_margin : float
(** Fraction of the tolerable RBER at which read-reclaim fires (0.9):
    data is moved before disturb can push the page past its code. *)

val should_reclaim : t -> rber:float -> bool
(** True when a read at this error rate should trigger read-reclaim. *)
