type t = {
  params : Ecc.Code_params.t;
  codewords_per_opage : int;
  tolerable_rber : float;
}

let of_geometry ?(target = Ecc.Reliability.default_codeword_target) geometry =
  let codewords = Flash.Geometry.codewords_per_fpage geometry in
  let data_bytes =
    geometry.Flash.Geometry.opage_bytes
    / geometry.Flash.Geometry.codewords_per_opage
  in
  let spare_bytes = geometry.Flash.Geometry.spare_bytes / codewords in
  let params = Ecc.Code_params.for_sector ~data_bytes ~spare_bytes in
  {
    params;
    codewords_per_opage = geometry.Flash.Geometry.codewords_per_opage;
    tolerable_rber = Ecc.Reliability.tolerable_rber ~target params;
  }

let opage_read_fail_prob t ~rber =
  Ecc.Reliability.page_fail_prob t.params ~codewords:t.codewords_per_opage
    ~rber

let page_is_tired t ~rber = rber > t.tolerable_rber
let reclaim_margin = 0.9
let should_reclaim t ~rber = rber > reclaim_margin *. t.tolerable_rber
