(** Physical location of one oPage: a slot within an fPage. *)

type t = { block : int; page : int; slot : int }

val compare : t -> t -> int
val equal : t -> t -> bool
val pp : Format.formatter -> t -> unit
