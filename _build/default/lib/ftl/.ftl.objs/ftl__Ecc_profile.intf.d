lib/ftl/ecc_profile.mli: Ecc Flash
