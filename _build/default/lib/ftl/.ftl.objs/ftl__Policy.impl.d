lib/ftl/policy.ml:
