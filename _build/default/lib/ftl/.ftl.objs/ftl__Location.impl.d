lib/ftl/location.ml: Format Stdlib
