lib/ftl/baseline_ssd.ml: Array Device_intf Ecc_profile Engine Flash Policy Sim
