lib/ftl/policy.mli:
