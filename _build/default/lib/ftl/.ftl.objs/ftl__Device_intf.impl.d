lib/ftl/device_intf.ml:
