lib/ftl/mapping.mli: Flash Location
