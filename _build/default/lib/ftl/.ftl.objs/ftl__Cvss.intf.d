lib/ftl/cvss.mli: Device_intf Ecc_profile Engine Flash Sim
