lib/ftl/engine.mli: Flash Location Policy Sim
