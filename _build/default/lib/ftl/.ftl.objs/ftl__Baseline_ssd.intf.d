lib/ftl/baseline_ssd.mli: Device_intf Ecc_profile Engine Flash Sim
