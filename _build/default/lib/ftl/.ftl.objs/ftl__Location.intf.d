lib/ftl/location.mli: Format
