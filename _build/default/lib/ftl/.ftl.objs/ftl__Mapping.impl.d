lib/ftl/mapping.ml: Array Flash Location
