lib/ftl/write_buffer.mli:
