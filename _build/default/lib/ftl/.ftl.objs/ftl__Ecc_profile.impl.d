lib/ftl/ecc_profile.ml: Ecc Flash
