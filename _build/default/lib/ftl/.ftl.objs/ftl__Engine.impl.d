lib/ftl/engine.ml: Array Flash Hashtbl List Location Mapping Option Policy Sim Stdlib Write_buffer
