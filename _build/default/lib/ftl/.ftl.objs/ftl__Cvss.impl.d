lib/ftl/cvss.ml: Array Device_intf Ecc_profile Engine Flash Policy Sim Stdlib
