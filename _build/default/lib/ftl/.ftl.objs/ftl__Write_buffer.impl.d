lib/ftl/write_buffer.ml: Hashtbl List Queue
