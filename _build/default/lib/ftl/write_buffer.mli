(** The SSD's small non-volatile write buffer.

    Host writes accumulate here until enough oPages are pending to fill
    the next available fPage (§3.2 of the paper).  The buffer deduplicates
    by logical index — rewriting a buffered oPage just replaces its
    payload — and reads must consult it before the mapping. *)

type t

val create : unit -> t
val length : t -> int
(** Number of distinct logical oPages pending. *)

val is_empty : t -> bool

val put : t -> logical:int -> payload:int -> unit
(** Add or replace the pending payload for a logical oPage. *)

val payload_of : t -> int -> int option
(** Pending payload, if any (the read-path buffer hit). *)

val drop : t -> int -> unit
(** Remove a pending entry (trim of a buffered oPage). *)

val pop : t -> int -> (int * int) list
(** [pop t n] removes and returns up to [n] [(logical, payload)] entries
    in arrival order (of each logical's most recent write). *)
