type t = {
  geometry : Flash.Geometry.t;
  logical_opages : int;
  forward : Location.t option array; (* indexed by logical oPage *)
  reverse : int array; (* indexed by flat slot index; -1 = stale/free *)
  valid_per_block : int array;
  mutable mapped : int;
}

let slots_per_block geometry =
  geometry.Flash.Geometry.pages_per_block
  * geometry.Flash.Geometry.opages_per_fpage

let flat_index t { Location.block; page; slot } =
  (block * slots_per_block t.geometry)
  + (page * t.geometry.Flash.Geometry.opages_per_fpage)
  + slot

let create ~geometry ~logical_opages =
  if logical_opages <= 0 then invalid_arg "Mapping.create: logical_opages";
  {
    geometry;
    logical_opages;
    forward = Array.make logical_opages None;
    reverse = Array.make (geometry.Flash.Geometry.blocks * slots_per_block geometry) (-1);
    valid_per_block = Array.make geometry.Flash.Geometry.blocks 0;
    mapped = 0;
  }

let logical_opages t = t.logical_opages

let check_logical t logical =
  if logical < 0 || logical >= t.logical_opages then
    invalid_arg "Mapping: logical index out of range"

let find t logical =
  check_logical t logical;
  t.forward.(logical)

let owner t location =
  let flat = flat_index t location in
  if t.reverse.(flat) < 0 then None else Some t.reverse.(flat)

let invalidate_location t location =
  let flat = flat_index t location in
  if t.reverse.(flat) >= 0 then begin
    t.reverse.(flat) <- -1;
    t.valid_per_block.(location.Location.block) <-
      t.valid_per_block.(location.Location.block) - 1
  end

let unbind_logical t logical =
  check_logical t logical;
  match t.forward.(logical) with
  | None -> ()
  | Some location ->
      invalidate_location t location;
      t.forward.(logical) <- None;
      t.mapped <- t.mapped - 1

let bind t ~logical location =
  check_logical t logical;
  (* Evict any previous occupant of the slot and any previous location of
     the logical index, keeping both directions consistent. *)
  (match owner t location with
  | Some previous_owner when previous_owner <> logical ->
      t.forward.(previous_owner) <- None;
      t.mapped <- t.mapped - 1
  | _ -> ());
  invalidate_location t location;
  (match t.forward.(logical) with
  | Some old -> invalidate_location t old
  | None -> t.mapped <- t.mapped + 1);
  t.forward.(logical) <- Some location;
  t.reverse.(flat_index t location) <- logical;
  t.valid_per_block.(location.Location.block) <-
    t.valid_per_block.(location.Location.block) + 1

let mapped_count t = t.mapped

let valid_in_block t ~block = t.valid_per_block.(block)

let live_slots_in_page t ~block ~page =
  let opages = t.geometry.Flash.Geometry.opages_per_fpage in
  let base =
    (block * slots_per_block t.geometry) + (page * opages)
  in
  let rec collect slot acc =
    if slot < 0 then acc
    else
      let logical = t.reverse.(base + slot) in
      if logical >= 0 then collect (slot - 1) ((slot, logical) :: acc)
      else collect (slot - 1) acc
  in
  collect (opages - 1) []

let iter_block t ~block f =
  let opages = t.geometry.Flash.Geometry.opages_per_fpage in
  for page = 0 to t.geometry.Flash.Geometry.pages_per_block - 1 do
    let base = (block * slots_per_block t.geometry) + (page * opages) in
    for slot = 0 to opages - 1 do
      let logical = t.reverse.(base + slot) in
      if logical >= 0 then f ~page ~slot ~logical
    done
  done
