type t = {
  data_slots : block:int -> page:int -> int;
  read_fail_prob : rber:float -> block:int -> page:int -> float;
  should_reclaim : rber:float -> block:int -> page:int -> bool;
  mutable on_block_erased : block:int -> unit;
}

let always_fresh ~opages_per_fpage =
  {
    data_slots = (fun ~block:_ ~page:_ -> opages_per_fpage);
    read_fail_prob = (fun ~rber:_ ~block:_ ~page:_ -> 0.);
    should_reclaim = (fun ~rber:_ ~block:_ ~page:_ -> false);
    on_block_erased = (fun ~block:_ -> ());
  }
