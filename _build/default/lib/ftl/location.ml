type t = { block : int; page : int; slot : int }

let compare = Stdlib.compare
let equal a b = compare a b = 0

let pp fmt t =
  Format.fprintf fmt "(block %d, page %d, slot %d)" t.block t.page t.slot
