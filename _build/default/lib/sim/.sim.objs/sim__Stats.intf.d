lib/sim/stats.mli:
