lib/sim/special.ml: Array Float List
