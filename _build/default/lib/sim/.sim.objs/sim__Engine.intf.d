lib/sim/engine.mli:
