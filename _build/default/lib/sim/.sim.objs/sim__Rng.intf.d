lib/sim/rng.mli:
