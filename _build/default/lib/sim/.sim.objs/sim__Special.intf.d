lib/sim/special.mli:
