(** Minimal discrete-event simulation loop.

    Handlers run at their scheduled time and may schedule further events.
    Time only moves forward; scheduling in the past is an error, which
    catches causality bugs early. *)

type t

val create : unit -> t

val now : t -> float
(** Current simulation time (0 at creation). *)

val schedule : t -> after:float -> (t -> unit) -> unit
(** [schedule t ~after f] runs [f] at [now t +. after].
    @raise Invalid_argument if [after] is negative or NaN. *)

val schedule_at : t -> time:float -> (t -> unit) -> unit
(** Absolute-time variant.  @raise Invalid_argument if [time < now t]. *)

val run : ?until:float -> t -> unit
(** Process events in timestamp order until the queue drains, or until the
    first event past [until] (which remains queued). *)

val step : t -> bool
(** Process exactly one event; [false] when the queue was empty. *)

val pending : t -> int
