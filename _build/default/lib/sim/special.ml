(* Lanczos approximation, g = 7, n = 9 coefficients; accurate to ~15 digits
   for x > 0. *)
let lanczos_coefficients =
  [|
    0.99999999999980993; 676.5203681218851; -1259.1392167224028;
    771.32342877765313; -176.61502916214059; 12.507343278686905;
    -0.13857109526572012; 9.9843695780195716e-6; 1.5056327351493116e-7;
  |]

let rec log_gamma x =
  if x < 0.5 then
    (* Reflection formula keeps accuracy for small x. *)
    log (Float.pi /. sin (Float.pi *. x)) -. log_gamma (1. -. x)
  else
    let x = x -. 1. in
    let acc = ref lanczos_coefficients.(0) in
    for i = 1 to 8 do
      acc := !acc +. (lanczos_coefficients.(i) /. (x +. float_of_int i))
    done;
    let t = x +. 7.5 in
    (0.5 *. log (2. *. Float.pi)) +. ((x +. 0.5) *. log t) -. t +. log !acc

let log_choose n k =
  if k < 0 || k > n then invalid_arg "Special.log_choose";
  log_gamma (float_of_int n +. 1.)
  -. log_gamma (float_of_int k +. 1.)
  -. log_gamma (float_of_int (n - k) +. 1.)

(* Continued fraction for the incomplete beta function (Lentz's method). *)
let beta_continued_fraction a b x =
  let max_iterations = 500 in
  let tiny = 1e-300 in
  let eps = 3e-16 in
  let qab = a +. b and qap = a +. 1. and qam = a -. 1. in
  let c = ref 1. in
  let d = ref (1. -. (qab *. x /. qap)) in
  if Float.abs !d < tiny then d := tiny;
  d := 1. /. !d;
  let h = ref !d in
  let m = ref 1 in
  let continue = ref true in
  while !continue && !m <= max_iterations do
    let mf = float_of_int !m in
    let m2 = 2. *. mf in
    (* even step *)
    let numerator = mf *. (b -. mf) *. x /. ((qam +. m2) *. (a +. m2)) in
    d := 1. +. (numerator *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (numerator /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    h := !h *. !d *. !c;
    (* odd step *)
    let numerator =
      -.(a +. mf) *. (qab +. mf) *. x /. ((a +. m2) *. (qap +. m2))
    in
    d := 1. +. (numerator *. !d);
    if Float.abs !d < tiny then d := tiny;
    c := 1. +. (numerator /. !c);
    if Float.abs !c < tiny then c := tiny;
    d := 1. /. !d;
    let delta = !d *. !c in
    h := !h *. delta;
    if Float.abs (delta -. 1.) < eps then continue := false;
    incr m
  done;
  !h

let betai a b x =
  if a <= 0. || b <= 0. then invalid_arg "Special.betai: a, b must be > 0";
  if x < 0. || x > 1. then invalid_arg "Special.betai: x outside [0,1]";
  if x = 0. then 0.
  else if x = 1. then 1.
  else
    let log_front =
      log_gamma (a +. b) -. log_gamma a -. log_gamma b
      +. (a *. log x)
      +. (b *. log (1. -. x))
    in
    let front = exp log_front in
    (* Use the symmetry that makes the continued fraction converge fast. *)
    if x < (a +. 1.) /. (a +. b +. 2.) then
      front *. beta_continued_fraction a b x /. a
    else 1. -. (front *. beta_continued_fraction b a (1. -. x) /. b)

let binomial_cdf n p t =
  if n < 0 then invalid_arg "Special.binomial_cdf: n < 0";
  if t < 0 then 0.
  else if t >= n then 1.
  else if p <= 0. then 1.
  else if p >= 1. then 0.
  else
    (* P(X <= t) = I_{1-p}(n - t, t + 1) *)
    betai (float_of_int (n - t)) (float_of_int (t + 1)) (1. -. p)

let binomial_tail n p t = 1. -. binomial_cdf n p t

(* Log-sum-exp accumulation of P(X = k) for k in (t, n]. *)
let binomial_tail_exact_sum n p t =
  if t >= n then 0.
  else if p <= 0. then 0.
  else if p >= 1. then 1.
  else begin
    let log_p = log p and log_q = log (1. -. p) in
    let log_terms =
      List.init (n - t) (fun i ->
          let k = t + 1 + i in
          log_choose n k
          +. (float_of_int k *. log_p)
          +. (float_of_int (n - k) *. log_q))
    in
    let max_term = List.fold_left Float.max neg_infinity log_terms in
    if max_term = neg_infinity then 0.
    else
      let sum =
        List.fold_left (fun acc lt -> acc +. exp (lt -. max_term)) 0. log_terms
      in
      exp (max_term +. log sum)
  end

let solve_monotone ?(iterations = 200) ~f ~target ~lo ~hi () =
  let lo = ref lo and hi = ref hi in
  for _ = 1 to iterations do
    let mid = 0.5 *. (!lo +. !hi) in
    if f mid < target then lo := mid else hi := mid
  done;
  0.5 *. (!lo +. !hi)
