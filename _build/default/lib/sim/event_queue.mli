(** Binary-heap priority queue of timestamped events.

    Ties (equal timestamps) pop in insertion order so simulations stay
    deterministic regardless of heap internals. *)

type 'a t

val create : unit -> 'a t
val is_empty : 'a t -> bool
val length : 'a t -> int

val push : 'a t -> time:float -> 'a -> unit
(** Schedule an event at the given time.  @raise Invalid_argument if [time]
    is NaN. *)

val pop : 'a t -> (float * 'a) option
(** Remove and return the earliest event, or [None] when empty. *)

val peek_time : 'a t -> float option
(** Timestamp of the earliest event without removing it. *)
