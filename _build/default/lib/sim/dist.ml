let exponential rng ~rate =
  if rate <= 0. then invalid_arg "Dist.exponential: rate must be > 0";
  let u = 1. -. Rng.unit_float rng in
  -.log u /. rate

let normal rng ~mean ~stddev =
  let u1 = 1. -. Rng.unit_float rng in
  let u2 = Rng.unit_float rng in
  let z = sqrt (-2. *. log u1) *. cos (2. *. Float.pi *. u2) in
  mean +. (stddev *. z)

let lognormal rng ~mu ~sigma = exp (normal rng ~mean:mu ~stddev:sigma)

let poisson_knuth rng mean =
  let threshold = exp (-.mean) in
  let rec loop k p =
    let p = p *. Rng.unit_float rng in
    if p <= threshold then k else loop (k + 1) p
  in
  loop 0 1.

let poisson rng ~mean =
  if mean < 0. then invalid_arg "Dist.poisson: mean must be >= 0";
  if mean = 0. then 0
  else if mean < 30. then poisson_knuth rng mean
  else
    let z = normal rng ~mean ~stddev:(sqrt mean) in
    Stdlib.max 0 (int_of_float (Float.round z))

let binomial_exact rng n p =
  let count = ref 0 in
  for _ = 1 to n do
    if Rng.chance rng p then incr count
  done;
  !count

let binomial rng ~n ~p =
  if n < 0 then invalid_arg "Dist.binomial: n must be >= 0";
  if p <= 0. then 0
  else if p >= 1. then n
  else if n <= 64 then binomial_exact rng n p
  else
    let mean = float_of_int n *. p in
    if mean < 16. then
      (* Rare-event regime: Poisson approximation is accurate and O(count). *)
      Stdlib.min n (poisson rng ~mean)
    else
      let variance = mean *. (1. -. p) in
      let z = normal rng ~mean ~stddev:(sqrt variance) in
      Stdlib.max 0 (Stdlib.min n (int_of_float (Float.round z)))

let geometric rng ~p =
  if p <= 0. || p > 1. then invalid_arg "Dist.geometric: p must be in (0,1]";
  if p = 1. then 0
  else
    let u = 1. -. Rng.unit_float rng in
    int_of_float (Float.of_int 0 +. floor (log u /. log (1. -. p)))

module Zipf = struct
  type t = { cdf : float array }

  let create ~n ~theta =
    if n <= 0 then invalid_arg "Zipf.create: n must be > 0";
    if theta < 0. then invalid_arg "Zipf.create: theta must be >= 0";
    let weights =
      Array.init n (fun i -> 1. /. Float.pow (float_of_int (i + 1)) theta)
    in
    let total = Array.fold_left ( +. ) 0. weights in
    let cdf = Array.make n 0. in
    let acc = ref 0. in
    Array.iteri
      (fun i w ->
        acc := !acc +. (w /. total);
        cdf.(i) <- !acc)
      weights;
    cdf.(n - 1) <- 1.;
    { cdf }

  let n t = Array.length t.cdf

  let sample t rng =
    let u = Rng.unit_float rng in
    (* Smallest index whose cumulative weight exceeds u. *)
    let rec search lo hi =
      if lo >= hi then lo
      else
        let mid = (lo + hi) / 2 in
        if t.cdf.(mid) > u then search lo mid else search (mid + 1) hi
    in
    search 0 (Array.length t.cdf - 1)
end
