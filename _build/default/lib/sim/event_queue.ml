type 'a entry = { time : float; sequence : int; payload : 'a }

type 'a t = {
  mutable heap : 'a entry array;
  (* heap.(0 .. size-1) is a valid min-heap; remaining slots hold stale
     entries kept alive only until overwritten. *)
  mutable size : int;
  mutable next_sequence : int;
}

let create () = { heap = [||]; size = 0; next_sequence = 0 }
let is_empty t = t.size = 0
let length t = t.size

let earlier a b =
  a.time < b.time || (a.time = b.time && a.sequence < b.sequence)

let swap t i j =
  let tmp = t.heap.(i) in
  t.heap.(i) <- t.heap.(j);
  t.heap.(j) <- tmp

let rec sift_up t i =
  if i > 0 then begin
    let parent = (i - 1) / 2 in
    if earlier t.heap.(i) t.heap.(parent) then begin
      swap t i parent;
      sift_up t parent
    end
  end

let rec sift_down t i =
  let left = (2 * i) + 1 and right = (2 * i) + 2 in
  let smallest = ref i in
  if left < t.size && earlier t.heap.(left) t.heap.(!smallest) then
    smallest := left;
  if right < t.size && earlier t.heap.(right) t.heap.(!smallest) then
    smallest := right;
  if !smallest <> i then begin
    swap t i !smallest;
    sift_down t !smallest
  end

let ensure_capacity t =
  if t.size >= Array.length t.heap then begin
    let capacity = Stdlib.max 16 (2 * Array.length t.heap) in
    let grown = Array.make capacity t.heap.(0) in
    Array.blit t.heap 0 grown 0 t.size;
    t.heap <- grown
  end

let push t ~time payload =
  if Float.is_nan time then invalid_arg "Event_queue.push: NaN time";
  let entry = { time; sequence = t.next_sequence; payload } in
  t.next_sequence <- t.next_sequence + 1;
  if Array.length t.heap = 0 then t.heap <- Array.make 16 entry
  else ensure_capacity t;
  t.heap.(t.size) <- entry;
  t.size <- t.size + 1;
  sift_up t (t.size - 1)

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.heap.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.heap.(0) <- t.heap.(t.size);
      sift_down t 0
    end;
    Some (top.time, top.payload)
  end

let peek_time t = if t.size = 0 then None else Some t.heap.(0).time
