type t = { mutable now : float; queue : (t -> unit) Event_queue.t }

let create () = { now = 0.; queue = Event_queue.create () }
let now t = t.now

let schedule_at t ~time handler =
  if Float.is_nan time then invalid_arg "Engine.schedule_at: NaN time";
  if time < t.now then invalid_arg "Engine.schedule_at: time is in the past";
  Event_queue.push t.queue ~time handler

let schedule t ~after handler =
  if Float.is_nan after || after < 0. then
    invalid_arg "Engine.schedule: negative or NaN delay";
  schedule_at t ~time:(t.now +. after) handler

let step t =
  match Event_queue.pop t.queue with
  | None -> false
  | Some (time, handler) ->
      t.now <- time;
      handler t;
      true

let run ?until t =
  let continue () =
    match (until, Event_queue.peek_time t.queue) with
    | _, None -> false
    | None, Some _ -> true
    | Some limit, Some next -> next <= limit
  in
  while continue () do
    ignore (step t)
  done;
  match until with
  | Some limit when limit > t.now -> t.now <- limit
  | _ -> ()

let pending t = Event_queue.length t.queue
