(** Numeric special functions used by the reliability models.

    The ECC analysis needs exact binomial tail probabilities
    [P(X > t)] for [X ~ Binomial(n, p)] with [n] up to a few hundred thousand
    bits, far outside the range where naive summation is stable.  We compute
    them through the regularized incomplete beta function
    [I_x(a, b)], using the classic Lentz continued-fraction evaluation
    (Numerical Recipes 6.4).  Everything is implemented here from scratch so
    the library has no numeric dependencies. *)

val log_gamma : float -> float
(** Natural log of the gamma function (Lanczos approximation), for x > 0. *)

val log_choose : int -> int -> float
(** [log_choose n k] = ln (n choose k).  @raise Invalid_argument unless
    [0 <= k <= n]. *)

val betai : float -> float -> float -> float
(** [betai a b x] is the regularized incomplete beta function I_x(a,b),
    for [a, b > 0] and [x] in \[0, 1\]. *)

val binomial_cdf : int -> float -> int -> float
(** [binomial_cdf n p t] = P(X <= t) for X ~ Binomial(n, p). *)

val binomial_tail : int -> float -> int -> float
(** [binomial_tail n p t] = P(X > t) for X ~ Binomial(n, p): the probability
    that more than [t] of [n] bits flip when each flips independently with
    probability [p].  This is the page-uncorrectable probability for an ECC
    that corrects up to [t] errors per codeword. *)

val binomial_tail_exact_sum : int -> float -> int -> float
(** Direct log-space summation of the same tail; O(n - t) terms.  Used in
    tests to validate {!binomial_tail} and available for small [n]. *)

val solve_monotone :
  ?iterations:int -> f:(float -> float) -> target:float -> lo:float ->
  hi:float -> unit -> float
(** [solve_monotone ~f ~target ~lo ~hi ()] finds [x] in \[lo, hi\] with
    [f x = target] by bisection, assuming [f] is monotonically increasing on
    the interval.  Runs [iterations] (default 200) halvings, which is enough
    to exhaust double precision. *)
