(** Random-variate sampling on top of {!Rng}.

    Every sampler takes the generator explicitly so callers control which
    stream each subsystem consumes. *)

val exponential : Rng.t -> rate:float -> float
(** Exponential with the given rate (mean 1/rate).  Used for Poisson-process
    inter-arrival times, e.g. non-wear device failures at a given AFR. *)

val normal : Rng.t -> mean:float -> stddev:float -> float
(** Gaussian via the Box-Muller transform. *)

val lognormal : Rng.t -> mu:float -> sigma:float -> float
(** exp of a normal(mu, sigma); models per-page flash strength variance. *)

val poisson : Rng.t -> mean:float -> int
(** Poisson counts; Knuth's method below mean 30, normal approximation
    (rounded, clamped at 0) above. *)

val binomial : Rng.t -> n:int -> p:float -> int
(** Number of successes in [n] Bernoulli(p) trials.  Exact inversion for
    small [n*p]; normal approximation for large [n] where exact sampling
    would be too slow for per-read bit-error counts. *)

val geometric : Rng.t -> p:float -> int
(** Number of failures before the first success (support 0, 1, 2, ...). *)

(** Zipfian distribution over ranks 0..n-1, used for skewed workloads. *)
module Zipf : sig
  type t

  val create : n:int -> theta:float -> t
  (** [create ~n ~theta] prepares a sampler over [n] items with skew
      [theta] (0 = uniform; typical hot-cold workloads use 0.8-1.2).
      Preprocessing is O(n). *)

  val sample : t -> Rng.t -> int
  (** Draw a rank in \[0, n).  O(log n) by binary search on the CDF. *)

  val n : t -> int
end
