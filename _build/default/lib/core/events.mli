(** Notifications a Salamander drive raises to its host (the diFS).

    The drive queues events as they happen; the host polls after each
    batch of I/O — the simulated analogue of an NVMe asynchronous event
    notification. *)

type t =
  | Mdisk_retiring of { id : int; opages : int }
      (** Grace-period decommissioning (§4.3): the minidisk is read-only
          and will disappear once the host acknowledges; the diFS should
          copy its data off (it may read the retiring minidisk itself)
          and then call [Device.acknowledge_decommission]. *)
  | Mdisk_decommissioned of { id : int; lost_opages : int }
      (** The minidisk is gone; the diFS must re-replicate its contents
          from other replicas (ShrinkS §3.3). *)
  | Mdisk_created of { id : int; opages : int; level : int }
      (** RegenS regenerated enough tired capacity into a fresh minidisk;
          the diFS may start placing data on it (§3.4). *)
  | Device_failed
      (** No usable capacity remains; the whole drive is done. *)

val pp : Format.formatter -> t -> unit

(** A simple FIFO queue of events. *)
module Queue : sig
  type event = t
  type t

  val create : unit -> t
  val push : t -> event -> unit
  val drain : t -> event list
  (** All pending events, oldest first; the queue is left empty. *)

  val pending : t -> int
end
