(** Page tiredness levels (§3.1).

    A level-L fPage sacrifices L of its oPages for extra ECC: data capacity
    drops to [opages - L] while the parity budget grows from the 2 KiB
    spare to [spare + L * opage_bytes], so the code tolerates a higher raw
    bit-error rate and the page survives more erase cycles.  Level
    [opages] means the page can no longer store anything ("L4" in the
    paper's 4-oPage geometry).

    A {!profile} precomputes, for one flash geometry, the code parameters
    and RBER retirement threshold of every level. *)

type level_info = private {
  level : int;
  data_slots : int;  (** oPages still storing data at this level *)
  params : Ecc.Code_params.t option;
      (** per-codeword code; [None] for the terminal (dead) level *)
  tolerable_rber : float;
      (** retire to the next level beyond this error rate; 0 for dead *)
  code_rate : float;  (** data / (data + spare + repurposed); 0 for dead *)
}

type t

val profile :
  ?target:float -> ?max_level:int -> Flash.Geometry.t -> t
(** Build the level table.  [max_level] caps usable tiredness (pages
    needing more are dead): 0 models ShrinkS, 1 is the paper's
    recommended RegenS setting, up to [opages_per_fpage - 1].
    [target] is the per-codeword failure budget.
    @raise Invalid_argument if [max_level] is out of range. *)

val geometry : t -> Flash.Geometry.t
val max_level : t -> int

val dead_level : t -> int
(** The terminal level index ([max_level + 1]); pages there hold no data. *)

val info : t -> int -> level_info
(** Level metadata; valid for levels 0 .. dead_level. *)

val data_slots : t -> int -> int
val level_for_rber : t -> rber:float -> int
(** Smallest usable level whose code tolerates the error rate, or
    {!dead_level} when none does. *)

val read_fail_prob : t -> level:int -> rber:float -> float
(** Probability that reading one oPage on a page of this level fails. *)

val pp_level : t -> Format.formatter -> int -> unit
