type t = { profile : Tiredness.t; counts : int array }

let create profile =
  let counts = Array.make (Tiredness.dead_level profile + 1) 0 in
  counts.(0) <- Flash.Geometry.fpages (Tiredness.geometry profile);
  { profile; counts }

let check_level t level =
  if level < 0 || level >= Array.length t.counts then
    invalid_arg "Limbo: level out of range"

let count t ~level =
  check_level t level;
  t.counts.(level)

let valid_opages t ~level =
  check_level t level;
  Tiredness.data_slots t.profile level * t.counts.(level)

let total_data_opages t =
  let total = ref 0 in
  for level = 0 to Tiredness.dead_level t.profile do
    total := !total + valid_opages t ~level
  done;
  !total

let transition t ~from_level ~to_level =
  check_level t from_level;
  check_level t to_level;
  if t.counts.(from_level) <= 0 then
    invalid_arg "Limbo.transition: no pages at source level";
  t.counts.(from_level) <- t.counts.(from_level) - 1;
  t.counts.(to_level) <- t.counts.(to_level) + 1

let capacity_deficit t ~lbas ~headroom =
  let required = int_of_float (ceil (float_of_int lbas *. headroom)) in
  Stdlib.max 0 (required - total_data_opages t)

let pp fmt t =
  Format.fprintf fmt "limbo[";
  Array.iteri
    (fun level c ->
      if level > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "L%d:%d" level c)
    t.counts;
  Format.fprintf fmt "]"
