lib/core/limbo.ml: Array Flash Format Stdlib Tiredness
