lib/core/minidisk.mli:
