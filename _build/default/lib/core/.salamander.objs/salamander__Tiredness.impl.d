lib/core/tiredness.ml: Array Ecc Flash Format
