lib/core/tiredness.mli: Ecc Flash Format
