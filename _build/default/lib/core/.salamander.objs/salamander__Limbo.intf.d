lib/core/limbo.mli: Format Tiredness
