lib/core/device.ml: Array Events Flash Float Ftl Limbo List Minidisk Sim Stdlib Tiredness
