lib/core/events.ml: Format List Stdlib
