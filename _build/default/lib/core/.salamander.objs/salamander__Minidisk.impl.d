lib/core/minidisk.ml: Fun Hashtbl List
