lib/core/device.mli: Events Flash Ftl Limbo Minidisk Sim Tiredness
