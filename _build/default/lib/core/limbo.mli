(** Limbo accounting (§3.3): the census of fPages by tiredness level.

    [limbo[L_j]] counts the device's fPages currently at level j.  Eq. 1
    gives the oPages such pages can hold,
    [valid[limbo[L_j]] = (opages - j) * limbo[L_j]], and Eq. 2 triggers
    minidisk decommissioning when the total across levels can no longer
    cover the exported LBAs. *)

type t

val create : Tiredness.t -> t
(** All pages start at level 0; the census begins with every fPage of the
    profile's geometry there. *)

val count : t -> level:int -> int
(** limbo[L_j]: number of fPages at level j. *)

val valid_opages : t -> level:int -> int
(** Eq. 1: oPages storable at level j across the device. *)

val total_data_opages : t -> int
(** Sum of Eq. 1 over all usable levels: the device's physical data
    capacity in oPages. *)

val transition : t -> from_level:int -> to_level:int -> unit
(** Move one fPage between levels.  @raise Invalid_argument if the source
    level has no pages or either level is out of range. *)

val capacity_deficit : t -> lbas:int -> headroom:float -> int
(** Eq. 2 with an over-provisioning margin: how many oPages short the
    device is of storing [lbas] logical pages with [headroom * lbas]
    physical slots available (0 when there is no deficit). *)

val pp : Format.formatter -> t -> unit
