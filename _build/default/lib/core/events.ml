type t =
  | Mdisk_retiring of { id : int; opages : int }
  | Mdisk_decommissioned of { id : int; lost_opages : int }
  | Mdisk_created of { id : int; opages : int; level : int }
  | Device_failed

let pp fmt = function
  | Mdisk_retiring { id; opages } ->
      Format.fprintf fmt "mdisk %d retiring (%d oPages, grace period)" id
        opages
  | Mdisk_decommissioned { id; lost_opages } ->
      Format.fprintf fmt "mdisk %d decommissioned (%d oPages lost)" id
        lost_opages
  | Mdisk_created { id; opages; level } ->
      Format.fprintf fmt "mdisk %d created (%d oPages at L%d)" id opages level
  | Device_failed -> Format.fprintf fmt "device failed"

module Queue = struct
  type event = t
  type nonrec t = event Stdlib.Queue.t

  let create () = Stdlib.Queue.create ()
  let push t event = Stdlib.Queue.push event t

  let drain t =
    let rec go acc =
      match Stdlib.Queue.take_opt t with
      | None -> List.rev acc
      | Some e -> go (e :: acc)
    in
    go []

  let pending t = Stdlib.Queue.length t
end
