type level_info = {
  level : int;
  data_slots : int;
  params : Ecc.Code_params.t option;
  tolerable_rber : float;
  code_rate : float;
}

type t = {
  geometry : Flash.Geometry.t;
  max_level : int;
  levels : level_info array; (* indices 0 .. max_level + 1 (dead) *)
}

(* Code parameters of a level-L page: the surviving data oPages keep their
   codeword count, and the parity pool (spare area + L repurposed oPages)
   is split evenly among them. *)
let level_params geometry ~level ~target =
  let opages = geometry.Flash.Geometry.opages_per_fpage in
  let data_slots = opages - level in
  if data_slots <= 0 then None
  else begin
    let codewords = data_slots * geometry.Flash.Geometry.codewords_per_opage in
    let parity_pool =
      geometry.Flash.Geometry.spare_bytes
      + (level * geometry.Flash.Geometry.opage_bytes)
    in
    let data_bytes =
      geometry.Flash.Geometry.opage_bytes
      / geometry.Flash.Geometry.codewords_per_opage
    in
    let spare_bytes = parity_pool / codewords in
    let params = Ecc.Code_params.for_sector ~data_bytes ~spare_bytes in
    let tolerable = Ecc.Reliability.tolerable_rber ~target params in
    Some (data_slots, params, tolerable)
  end

let profile ?(target = Ecc.Reliability.default_codeword_target) ?(max_level = 1)
    geometry =
  let opages = geometry.Flash.Geometry.opages_per_fpage in
  if max_level < 0 || max_level > opages - 1 then
    invalid_arg "Tiredness.profile: max_level out of range";
  let fpage_bytes =
    Flash.Geometry.fpage_data_bytes geometry + geometry.Flash.Geometry.spare_bytes
  in
  let dead level =
    { level; data_slots = 0; params = None; tolerable_rber = 0.;
      code_rate = 0. }
  in
  let make level =
    (* The level past [max_level] is terminal by definition, even when the
       geometry could in principle support deeper repurposing. *)
    if level > max_level then dead level
    else
      match level_params geometry ~level ~target with
    | Some (data_slots, params, tolerable_rber) ->
        {
          level;
          data_slots;
          params = Some params;
          tolerable_rber;
          code_rate =
            float_of_int (data_slots * geometry.Flash.Geometry.opage_bytes)
            /. float_of_int fpage_bytes;
        }
    | None -> dead level
  in
  let levels = Array.init (max_level + 2) make in
  { geometry; max_level; levels }

let geometry t = t.geometry
let max_level t = t.max_level
let dead_level t = t.max_level + 1

let info t level =
  if level < 0 || level >= Array.length t.levels then
    invalid_arg "Tiredness.info: level out of range";
  t.levels.(level)

let data_slots t level = (info t level).data_slots

let level_for_rber t ~rber =
  let rec search level =
    if level > t.max_level then dead_level t
    else if rber <= t.levels.(level).tolerable_rber then level
    else search (level + 1)
  in
  search 0

let read_fail_prob t ~level ~rber =
  match (info t level).params with
  | None -> 1.
  | Some params ->
      Ecc.Reliability.page_fail_prob params
        ~codewords:t.geometry.Flash.Geometry.codewords_per_opage ~rber

let pp_level t fmt level =
  let i = info t level in
  match i.params with
  | None -> Format.fprintf fmt "L%d (dead)" level
  | Some params ->
      Format.fprintf fmt "L%d: %d oPages, rate %.3f, t=%d, rber<=%.2e" level
        i.data_slots i.code_rate params.Ecc.Code_params.capability
        i.tolerable_rber
