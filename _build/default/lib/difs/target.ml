type key = { device : int; mdisk : int option }

let key_equal a b = a.device = b.device && a.mdisk = b.mdisk

let pp_key fmt k =
  match k.mdisk with
  | None -> Format.fprintf fmt "dev%d" k.device
  | Some m -> Format.fprintf fmt "dev%d/md%d" k.device m

type state = Active | Failed

type t = {
  key : key;
  node : int;
  capacity : int;
  chunk_opages : int;
  mutable state : state;
  mutable free_ranges : int list;
}

let create ~key ~node ~capacity ~chunk_opages =
  if chunk_opages <= 0 then invalid_arg "Target.create: chunk_opages";
  let ranges = capacity / chunk_opages in
  {
    key;
    node;
    capacity;
    chunk_opages;
    state = Active;
    free_ranges = List.init ranges (fun i -> i * chunk_opages);
  }

let allocate t =
  match t.state with
  | Failed -> None
  | Active -> (
      match t.free_ranges with
      | [] -> None
      | base :: rest ->
          t.free_ranges <- rest;
          Some base)

let release t base =
  if t.state = Active then t.free_ranges <- base :: t.free_ranges

let fail t =
  t.state <- Failed;
  t.free_ranges <- []

let truncate t ~capacity =
  if capacity >= t.capacity then []
  else begin
    let in_bounds base = base + t.chunk_opages <= capacity in
    let was_free = t.free_ranges in
    t.free_ranges <- List.filter in_bounds was_free;
    (* Allocated ranges now out of bounds: every range past the new
       capacity that was not sitting in the free pool. *)
    let lost = ref [] in
    (* The first affected range is the one containing [capacity] (or
       starting at it when the cut is range-aligned). *)
    let base = ref (capacity - (capacity mod t.chunk_opages)) in
    while !base + t.chunk_opages <= t.capacity do
      if not (in_bounds !base) && not (List.mem !base was_free) then
        lost := !base :: !lost;
      base := !base + t.chunk_opages
    done;
    !lost
  end

let is_active t = t.state = Active
let free_count t = List.length t.free_ranges
let used_count t =
  (t.capacity / t.chunk_opages) - List.length t.free_ranges
