type share = { index : int; target : Target.key; base : int }

type t = {
  id : int;
  opages : int;
  mutable version : int;
  mutable shares : share list;
}

let create ~id ~opages = { id; opages; version = 0; shares = [] }

let payload ~id ~offset ~version =
  (* 32-bit fingerprint: survives the byte-level erasure coder while
     staying collision-poor enough that version/offset confusion cannot
     go unnoticed. *)
  Hashtbl.hash (id, offset, version) land 0xFFFFFFFF

let payload_bytes payload =
  let b = Bytes.create 4 in
  for i = 0 to 3 do
    Bytes.set b i (Char.chr ((payload lsr (8 * i)) land 0xFF))
  done;
  b

let payload_of_bytes b =
  let acc = ref 0 in
  for i = 3 downto 0 do
    acc := (!acc lsl 8) lor Char.code (Bytes.get b i)
  done;
  !acc

let share_on t key =
  List.find_opt (fun s -> Target.key_equal s.target key) t.shares

let drop_share t key =
  t.shares <- List.filter (fun s -> not (Target.key_equal s.target key)) t.shares

let add_share t share = t.shares <- share :: t.shares

let present_indices t = List.map (fun s -> s.index) t.shares

let missing_indices t ~total =
  let present = present_indices t in
  List.filter (fun i -> not (List.mem i present)) (List.init total Fun.id)

let pp fmt t =
  Format.fprintf fmt "chunk %d v%d (%d shares)" t.id t.version
    (List.length t.shares)
