lib/difs/cluster.ml: Array Chunk Ecc Ftl Hashtbl List Option Salamander Target
