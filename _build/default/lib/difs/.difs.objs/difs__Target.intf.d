lib/difs/target.mli: Format
