lib/difs/chunk.ml: Bytes Char Format Fun Hashtbl List Target
