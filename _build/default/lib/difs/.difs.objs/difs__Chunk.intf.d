lib/difs/chunk.mli: Format Target
