lib/difs/cluster.mli: Ftl Salamander
