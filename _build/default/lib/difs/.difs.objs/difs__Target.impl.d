lib/difs/target.ml: Format List
