(** Failure domains the diFS places replicas on.

    For a conventional SSD the whole drive is one target — exactly the
    coarse failure granularity the paper criticizes.  A Salamander drive
    contributes one target per live minidisk, so wear-driven failures
    arrive in mSize units and recovery touches only that sliver.

    Each target owns a trivial allocator handing out chunk-sized LBA
    ranges. *)

type key = {
  device : int;  (** cluster-wide device id *)
  mdisk : int option;  (** [None] for monolithic devices *)
}

val key_equal : key -> key -> bool
val pp_key : Format.formatter -> key -> unit

type state = Active | Failed

type t = private {
  key : key;
  node : int;
  capacity : int;  (** oPages *)
  chunk_opages : int;
  mutable state : state;
  mutable free_ranges : int list;  (** base LBAs of unallocated ranges *)
}

val create : key:key -> node:int -> capacity:int -> chunk_opages:int -> t

val allocate : t -> int option
(** Take a free chunk-sized range; [None] when full or failed. *)

val release : t -> int -> unit
(** Return a range to the pool. *)

val fail : t -> unit
(** Mark failed; it never allocates again. *)

val truncate : t -> capacity:int -> int list
(** Shrink the usable space (a CVSS device giving up high LBAs): removes
    free ranges beyond the new capacity and returns the bases of
    *allocated* ranges that are now out of bounds — their replicas are
    lost and must be recovered elsewhere. *)

val is_active : t -> bool
val free_count : t -> int
val used_count : t -> int
