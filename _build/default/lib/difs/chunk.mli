(** Replicated or erasure-coded access units (the diFS equivalent of an
    HDFS block).

    A chunk's data is a fixed run of oPages.  Under n-way replication it
    is stored [n] times in full; under (k, m) erasure coding it is split
    into [k] data shares and extended with [m] parity shares, each
    share 1/k of the chunk.  Either way, each stored unit is a {e share}
    with an index, placed on its own failure domain.

    Chunk contents are synthetic but verifiable: every data oPage's
    payload is a deterministic function of (chunk id, offset, version),
    and parity payloads are the Reed-Solomon combination of the data
    payloads, so any copy can be checked and any lost share rebuilt. *)

type share = {
  index : int;  (** share number: replica ordinal, or RS share index *)
  target : Target.key;
  base : int;  (** first LBA of the share's range within the target *)
}

type t = {
  id : int;
  opages : int;  (** chunk data size, in oPages *)
  mutable version : int;  (** bumped on every overwrite *)
  mutable shares : share list;
}

val create : id:int -> opages:int -> t

val payload : id:int -> offset:int -> version:int -> int
(** Expected content fingerprint of data oPage [offset] of the chunk.
    Payloads fit in 32 bits so they round-trip through the erasure
    coder's byte representation. *)

val payload_bytes : int -> bytes
(** 4-byte little-endian encoding of a payload, for the RS coder. *)

val payload_of_bytes : bytes -> int

val share_on : t -> Target.key -> share option
val drop_share : t -> Target.key -> unit
val add_share : t -> share -> unit

val present_indices : t -> int list
val missing_indices : t -> total:int -> int list
(** Share indices not currently stored, given the redundancy's total. *)

val pp : Format.formatter -> t -> unit
