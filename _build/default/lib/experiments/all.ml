let fig4_with_measured fmt =
  (* TAB-LIFE feeds its measured lifetime factors into the carbon model so
     Fig. 4 appears both with the paper's parameters and with ours. *)
  let rows = Lifetime_table.run fmt in
  Fig4.run ~measured_lifetime:(Lifetime_table.lifetime_factors rows) fmt

let experiments =
  [
    ("terms", Terms.run);
    ("fig2", Fig2.run);
    ("fig3ab", Fig3ab.run ?days:None ?devices:None);
    ("fig3cd", Fig3perf.run);
    ("lifetime+fig4", fig4_with_measured);
    ("tco", Tco_table.run);
    ("recovery", Recovery_table.run);
    ("uber", Uber_table.run);
    ("ablations", Ablations.run);
  ]

let run fmt =
  List.iter
    (fun (id, runner) ->
      Format.fprintf fmt "@.### experiment %s@." id;
      runner fmt)
    experiments;
  Format.fprintf fmt "@."
