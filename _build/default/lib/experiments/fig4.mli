(** FIG4 — CO2e reduction of Salamander deployments in different system
    configurations (paper Fig. 4).

    Applies Eq. 3 with the paper's parameters: expected savings 3-8%
    under today's grid mix and 11-20% when operations run on renewables
    (leaving embodied carbon dominant).  Alongside the paper's fixed
    upgrade rates, the table re-derives Ru from the lifetime factors this
    repository *measures* (TAB-LIFE), closing the loop between the fleet
    simulation and the carbon model. *)

val run : ?measured_lifetime:float * float -> Format.formatter -> unit
(** [measured_lifetime] optionally supplies (ShrinkS, RegenS) lifetime
    factors from the aging experiment to drive a second set of bars. *)
