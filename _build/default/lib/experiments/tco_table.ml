let rows scenarios =
  List.map
    (fun s ->
      [
        s.Sustain.Tco.label;
        Report.cell_f s.Sustain.Tco.f_opex;
        Report.cell_f s.Sustain.Tco.upgrade_rate;
        Report.cell_f (Sustain.Tco.cost_upgrade_rate s);
        Report.cell_f (Sustain.Tco.relative_tco s);
        Report.cell_pct (Sustain.Tco.savings s);
      ])
    scenarios

let header = [ "design"; "f_opex"; "Ru"; "CRu"; "TCO vs baseline"; "savings" ]

let run fmt =
  Report.section fmt "TAB-TCO: cost analysis (paper §4.4, Eq. 4)";
  Report.table fmt ~header ~rows:(rows Sustain.Tco.paper_scenarios);
  Report.note fmt "paper: 13% (ShrinkS) and 25% (RegenS) cost savings";
  Report.section fmt "TAB-TCO sensitivity: operational costs at half the budget";
  Report.table fmt ~header ~rows:(rows (Sustain.Tco.sensitivity ~f_opex:0.5));
  Report.note fmt "paper: still 6-14% savings when f_opex = 0.5"
