lib/experiments/terms.ml: List Report
