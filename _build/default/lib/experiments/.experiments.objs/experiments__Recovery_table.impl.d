lib/experiments/recovery_table.ml: Defaults Difs Flash Fun List Printf Report Salamander Sim Stdlib
