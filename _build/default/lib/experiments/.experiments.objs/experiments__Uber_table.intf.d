lib/experiments/uber_table.mli: Format
