lib/experiments/lifetime_table.ml: Defaults Ftl List Printf Report Sim Stdlib Workload
