lib/experiments/fig4.ml: List Printf Report Sustain
