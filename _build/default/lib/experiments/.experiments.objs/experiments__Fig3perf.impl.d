lib/experiments/fig3perf.ml: Array Defaults Ecc Flash Float Ftl Fun Hashtbl List Option Printf Report Salamander Sim
