lib/experiments/ablations.ml: Defaults Difs Flash Ftl List Printf Report Salamander Sim Stdlib Workload
