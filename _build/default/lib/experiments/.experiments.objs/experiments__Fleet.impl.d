lib/experiments/fleet.ml: Array Defaults Ftl List Sim Stdlib Workload
