lib/experiments/defaults.ml: Flash Ftl Salamander Sim
