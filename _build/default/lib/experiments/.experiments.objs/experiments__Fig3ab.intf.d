lib/experiments/fig3ab.mli: Format
