lib/experiments/tco_table.mli: Format
