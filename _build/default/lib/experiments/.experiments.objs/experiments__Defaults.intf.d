lib/experiments/defaults.mli: Flash Ftl Salamander
