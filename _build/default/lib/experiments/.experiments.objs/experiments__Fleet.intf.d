lib/experiments/fleet.mli:
