lib/experiments/fig3perf.mli: Format
