lib/experiments/fig3ab.ml: Defaults Fleet List Printf Report
