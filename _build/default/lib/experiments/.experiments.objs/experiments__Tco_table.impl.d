lib/experiments/tco_table.ml: List Report Sustain
