lib/experiments/report.ml: Float Format List Printf Stdlib String
