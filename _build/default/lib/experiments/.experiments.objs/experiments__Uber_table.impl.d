lib/experiments/uber_table.ml: Defaults Flash Ftl List Report Salamander Sim Stdlib Workload
