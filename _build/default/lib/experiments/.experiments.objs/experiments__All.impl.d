lib/experiments/all.ml: Ablations Fig2 Fig3ab Fig3perf Fig4 Format Lifetime_table List Recovery_table Tco_table Terms Uber_table
