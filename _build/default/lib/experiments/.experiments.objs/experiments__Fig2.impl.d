lib/experiments/fig2.ml: Defaults List Printf Report Sustain
