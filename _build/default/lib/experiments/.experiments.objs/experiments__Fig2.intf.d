lib/experiments/fig2.mli: Format Sustain
