lib/experiments/lifetime_table.mli: Format
