lib/experiments/recovery_table.mli: Difs Format
