lib/experiments/terms.mli: Format
