let scenario_rows scenarios =
  List.map
    (fun s ->
      [
        s.Sustain.Carbon.label;
        Report.cell_f s.Sustain.Carbon.f_op;
        Report.cell_f s.Sustain.Carbon.upgrade_rate;
        Report.cell_f (Sustain.Carbon.relative_footprint s);
        Report.cell_pct (Sustain.Carbon.savings s);
      ])
    scenarios

let run ?measured_lifetime fmt =
  Report.section fmt "FIG4: CO2e reduction per configuration (paper Fig. 4)";
  Report.table fmt
    ~header:[ "configuration"; "f_op"; "Ru"; "CO2e vs baseline"; "savings" ]
    ~rows:(scenario_rows Sustain.Carbon.paper_scenarios);
  Report.note fmt
    "paper: 3-8% savings under the current grid, 11-20% with renewable \
     operations";
  match measured_lifetime with
  | None -> ()
  | Some (shrinks_factor, regens_factor) ->
      let derived label factor f_op =
        {
          Sustain.Carbon.label;
          f_op;
          power_effectiveness = Sustain.Params.power_effectiveness;
          upgrade_rate =
            Sustain.Carbon.adjusted_upgrade_rate ~lifetime_factor:factor
              ~adjustment:Sustain.Params.capacity_adjustment;
        }
      in
      Report.section fmt "FIG4 (measured): same model, Ru from TAB-LIFE";
      Report.table fmt
        ~header:[ "configuration"; "f_op"; "Ru"; "CO2e vs baseline"; "savings" ]
        ~rows:
          (scenario_rows
             [
               derived
                 (Printf.sprintf "ShrinkS (measured %.2fx)" shrinks_factor)
                 shrinks_factor Sustain.Params.f_op_ssd_servers;
               derived
                 (Printf.sprintf "RegenS (measured %.2fx)" regens_factor)
                 regens_factor Sustain.Params.f_op_ssd_servers;
               derived
                 (Printf.sprintf "ShrinkS renewables (measured %.2fx)"
                    shrinks_factor)
                 shrinks_factor 0.;
               derived
                 (Printf.sprintf "RegenS renewables (measured %.2fx)"
                    regens_factor)
                 regens_factor 0.;
             ])
