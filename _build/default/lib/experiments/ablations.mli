(** Ablation studies for the design choices the paper leaves open.

    - AB-MSIZE: minidisk size (§3.2 sets mSize "small, e.g., 1MB" and
      leaves granularity a design question) — lifetime and shrink
      granularity vs mSize.
    - AB-LEVEL: how deep RegenS should go (§4's "limit itself to L < 2")
      — device lifetime vs the max usable tiredness level.
    - AB-SCRUB: §3.3's proactive retirement of the most worn pages on
      each decommissioning, on vs off.
    - AB-PLACE: replica placement across minidisks of one drive vs
      distinct drives (§3.2's correlated-failure open question) — data
      loss when whole devices die.
    - AB-PATTERN: endurance under uniform, zipfian and sequential write
      streams — does wear leveling keep skewed workloads from gutting
      the lifetime gains?
    - AB-ECC-PLACE: §4.2's mitigation of the 4/(4-L) penalty by storing
      the extra ECC in dedicated pages (analytic comparison). *)

val msize : Format.formatter -> unit
val max_level : Format.formatter -> unit
val scrub : Format.formatter -> unit
val placement : Format.formatter -> unit
val pattern : Format.formatter -> unit
val queueing : Format.formatter -> unit
val ecc_placement : Format.formatter -> unit

val run : Format.formatter -> unit
(** All of the above. *)
