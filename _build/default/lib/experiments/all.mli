(** Run every experiment in DESIGN.md's per-experiment index, in order. *)

val run : Format.formatter -> unit

val experiments : (string * (Format.formatter -> unit)) list
(** (id, runner) pairs for CLI dispatch: fig2, fig3a (with fig3b),
    fig3c (with fig3d), fig4, lifetime, tco, recovery, terms. *)
