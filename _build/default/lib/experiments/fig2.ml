let points () =
  Sustain.Lifetime.curve ~max_level:3 Defaults.reference_geometry

let run fmt =
  Report.section fmt
    "FIG2: tiredness level vs code rate vs lifetime (paper Fig. 2)";
  let points = points () in
  Report.table fmt
    ~header:
      [ "level"; "data oPages"; "code rate"; "tolerable RBER"; "PEC limit";
        "benefit vs L0"; "marginal benefit" ]
    ~rows:
      (List.mapi
         (fun i p ->
           let marginal =
             if i = 0 then 1.
             else
               let prev = List.nth points (i - 1) in
               p.Sustain.Lifetime.pec_limit /. prev.Sustain.Lifetime.pec_limit
           in
           [
             Printf.sprintf "L%d" p.Sustain.Lifetime.level;
             string_of_int (4 - p.Sustain.Lifetime.level);
             Report.cell_f p.Sustain.Lifetime.code_rate;
             Printf.sprintf "%.3e" p.Sustain.Lifetime.tolerable_rber;
             Report.cell_f p.Sustain.Lifetime.pec_limit;
             Printf.sprintf "%.2fx" p.Sustain.Lifetime.benefit;
             Printf.sprintf "%.2fx" marginal;
           ])
         points);
  Report.note fmt
    "paper: ~50% lifetime benefit at L1, marginal utility shrinking beyond \
     L1 (hence RegenS limits itself to L < 2)"
