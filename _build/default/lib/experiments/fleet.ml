type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = { day : int; alive : int; capacity_opages : int }

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

type member = {
  device : Ftl.Device_intf.packed;
  pattern : Workload.Pattern.t;
  rng : Sim.Rng.t;
  mutable afr_dead : bool;
  mutable wear_dead : bool;
}

let member_alive m =
  (not m.afr_dead) && (not m.wear_dead) && Ftl.Device_intf.alive m.device

let member_capacity m =
  if member_alive m then Ftl.Device_intf.logical_capacity m.device else 0

let run ?(devices = Defaults.fleet_devices) ?(days = 150) ?(dwpd = 1.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) kind =
  let fleet =
    Array.init devices (fun i ->
        let device = Defaults.make_device kind ~seed:(seed + (31 * i)) in
        {
          device;
          pattern =
            Workload.Pattern.uniform
              ~window:
                (Stdlib.max 1
                   (int_of_float
                      (0.85
                      *. float_of_int
                           (Ftl.Device_intf.logical_capacity device))))
              ~read_fraction:0.;
          rng = Sim.Rng.create (seed + (977 * i));
          afr_dead = false;
          wear_dead = false;
        })
  in
  let failure_rng = Sim.Rng.create (seed + 5) in
  let total_host_writes = ref 0 in
  let snapshots = ref [] in
  let snapshot day =
    let alive = ref 0 and capacity = ref 0 in
    Array.iter
      (fun m ->
        if member_alive m then begin
          incr alive;
          capacity := !capacity + member_capacity m
        end)
      fleet;
    snapshots := { day; alive = !alive; capacity_opages = !capacity } :: !snapshots
  in
  snapshot 0;
  for day = 1 to days do
    Array.iter
      (fun m ->
        if member_alive m then begin
          (* Random, non-wear failure (controller, DRAM, firmware): the
             ~1%-AFR class of failures the field studies report. *)
          if Sim.Rng.chance failure_rng afr_per_day then m.afr_dead <- true
          else begin
            let quota =
              int_of_float (dwpd *. float_of_int (member_capacity m))
            in
            let outcome =
              Workload.Aging.run_until ~rng:m.rng ~pattern:m.pattern
                ~device:m.device
                ~stop:(fun writes -> writes >= quota)
                ()
            in
            total_host_writes := !total_host_writes + outcome.Workload.Aging.host_writes;
            if outcome.Workload.Aging.died then m.wear_dead <- true
          end
        end)
      fleet;
    snapshot day
  done;
  let wear_deaths =
    Array.fold_left (fun acc m -> if m.wear_dead then acc + 1 else acc) 0 fleet
  in
  let afr_deaths =
    Array.fold_left (fun acc m -> if m.afr_dead then acc + 1 else acc) 0 fleet
  in
  {
    kind;
    devices;
    snapshots = List.rev !snapshots;
    total_host_writes = !total_host_writes;
    wear_deaths;
    afr_deaths;
  }
