(** TAB-TCO — total cost of ownership analysis (§4.4, Eq. 4).

    Expected: ~13% savings for ShrinkS and ~25% for RegenS at the paper's
    f_opex = 0.14, degrading to single/low-double digits when operational
    costs are half the budget. *)

val run : Format.formatter -> unit
