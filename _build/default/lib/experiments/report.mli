(** Plain-text rendering of experiment results: the tables and series the
    bench harness prints so runs can be compared against the paper. *)

val section : Format.formatter -> string -> unit
(** A banner: experiment id and title. *)

val note : Format.formatter -> string -> unit

val table :
  Format.formatter -> header:string list -> rows:string list list -> unit
(** Column-aligned table. *)

val series :
  Format.formatter ->
  title:string ->
  columns:string list ->
  (float * float list) list ->
  unit
(** A plottable series: x value then one column per line. *)

val cell_f : float -> string
(** Compact float cell ("3.25", "0.0031"). *)

val cell_pct : float -> string
(** Percentage with sign convention for savings ("8.0%"). *)
