(** TAB-T1 — the paper's Table 1: terminology used to describe and
    analyze Salamander, with the corresponding modules of this
    repository. *)

val run : Format.formatter -> unit
