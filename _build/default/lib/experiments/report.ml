let section fmt title =
  Format.fprintf fmt "@.=== %s ===@." title

let note fmt text = Format.fprintf fmt "  note: %s@." text

let table fmt ~header ~rows =
  let all = header :: rows in
  let columns = List.length header in
  let width column =
    List.fold_left
      (fun acc row ->
        match List.nth_opt row column with
        | Some cell -> Stdlib.max acc (String.length cell)
        | None -> acc)
      0 all
  in
  let widths = List.init columns width in
  let print_row row =
    Format.fprintf fmt "  ";
    List.iteri
      (fun i cell ->
        let w = List.nth widths i in
        Format.fprintf fmt "%-*s  " w cell)
      row;
    Format.fprintf fmt "@."
  in
  print_row header;
  print_row (List.map (fun w -> String.make w '-') widths);
  List.iter print_row rows

let series fmt ~title ~columns points =
  Format.fprintf fmt "  -- %s --@." title;
  table fmt ~header:("x" :: columns)
    ~rows:
      (List.map
         (fun (x, ys) ->
           Printf.sprintf "%.2f" x :: List.map (fun y -> Printf.sprintf "%.4g" y) ys)
         points)

let cell_f v =
  if Float.is_nan v then "n/a"
  else if Float.abs v >= 100. then Printf.sprintf "%.0f" v
  else if Float.abs v >= 1. then Printf.sprintf "%.2f" v
  else Printf.sprintf "%.4g" v

let cell_pct v = Printf.sprintf "%.1f%%" (100. *. v)
