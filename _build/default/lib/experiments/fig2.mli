(** FIG2 — "Switching oPages to additional ECC trades capacity for
    increasingly diminishing lifetime benefits."

    Reproduces the paper's Fig. 2 from first principles: for each
    tiredness level of the reference 16 KiB fPage + 2 KiB spare geometry,
    the code rate, the maximum tolerable RBER of the level's BCH code,
    and the resulting P/E-cycle limit under the calibrated wear curve.
    Expected shape: L1 buys ~1.5x lifetime for 25% capacity; L2/L3 add
    progressively less per sacrificed oPage. *)

val points : unit -> Sustain.Lifetime.level_point list

val run : Format.formatter -> unit
