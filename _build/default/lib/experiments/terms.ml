let rows =
  [
    ("diFS", "distributed file system", "Difs.Cluster");
    ("LBA", "host logical block address", "Ftl.Engine / Salamander.Minidisk");
    ("oPage", "logical data page in an fPage (4KB)", "Flash.Geometry");
    ("fPage", "flash physical page containing oPages", "Flash.Chip");
    ("mDisk", "minidisk", "Salamander.Minidisk");
    ("mSize", "size of mDisk (e.g., 1MB)", "Salamander.Device.config");
    ("L(fPage)", "fPage tiredness level", "Salamander.Tiredness");
    ("limbo[Lj]", "# of fPages with tiredness level j", "Salamander.Limbo");
    ("CO2e(X)", "carbon footprint of deployment X", "Sustain.Carbon");
    ("f_op", "fraction of operational emissions", "Sustain.Params");
    ("f_opex", "fraction of operational costs", "Sustain.Params");
    ("PE_A|B", "power effectiveness of SSD A vs B", "Sustain.Params");
    ("Ru_A|B", "upgrade rate of SSDs in A vs B", "Sustain.Carbon");
    ("CRu_A|B", "cost upgrade rate of SSDs in A vs B", "Sustain.Tco");
  ]

let run fmt =
  Report.section fmt "TAB-T1: terminology (paper Table 1)";
  Report.table fmt
    ~header:[ "term"; "definition"; "module" ]
    ~rows:(List.map (fun (a, b, c) -> [ a; b; c ]) rows)
