(** Published constants the paper's §4 analysis rests on, with their
    sources.  Collected in one place so every experiment cites the same
    numbers and sensitivity sweeps have an obvious anchor. *)

val f_op_datacenter : float
(** 0.58 — fraction of datacenter emissions that are operational
    (Wang et al., ISCA '24 [25]). *)

val f_op_ssd_servers : float
(** 0.46 — the paper's conservative 20% reduction of the above for
    SSD-heavy storage servers (§4.1). *)

val power_effectiveness : float
(** 1.06 — operational-emissions penalty of keeping old drives instead of
    upgrading to newer, more power-efficient models [25] (§4.1). *)

val shrinks_lifetime_factor : float
(** 1.2 — ShrinkS extends lifetime by at least 20%, the CVSS-comparable
    floor (§4). *)

val regens_lifetime_factor : float
(** 1.5 — RegenS's estimated 50% extension at L1 (§4, Fig. 2). *)

val capacity_adjustment : float
(** 0.4 — the paper's "conservatively fix Ru gains by 40%" haircut for
    the capacity that shrunken drives no longer provide (§4.1). *)

val shrinks_upgrade_rate : float
(** 0.9 — Ru for ShrinkS after the capacity adjustment (§4.1). *)

val regens_upgrade_rate : float
(** 0.8 — Ru for RegenS after the capacity adjustment (§4.1). *)

val f_opex : float
(** 0.14 — operational share of datacenter-device TCO; acquisition is
    ~86% (Seagate [49], §4.4). *)

val cost_effectiveness_new : float
(** 0.25 — $/TB of drives bought five years later, from the ~4x
    improvement per five years [47] (§4.4). *)

val capacity_gap_fraction : float
(** 0.4 — fraction of a Salamander drive's capacity that must be
    backfilled with new baseline drives during its shrunken phase
    (average shrunk capacity 60% of baseline, §4.4). *)

val annual_failure_rate : float
(** 0.01 — reported SSD AFR in large deployments [28] (§2.1). *)

val bad_block_brick_threshold : float
(** 0.025 — worn-block fraction at which baseline firmware bricks [14]. *)

val ssd_carbon_intensity_kg_per_tb : float
(** 17.3 kgCO2e/TB — the (low-end) intensity estimate behind [25]'s
    carbon model, which the paper notes is conservative for its
    analysis. *)
