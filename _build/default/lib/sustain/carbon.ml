type scenario = {
  label : string;
  f_op : float;
  power_effectiveness : float;
  upgrade_rate : float;
}

let relative_footprint s =
  (s.f_op *. s.power_effectiveness) +. ((1. -. s.f_op) *. s.upgrade_rate)

let savings s = 1. -. relative_footprint s

let raw_upgrade_rate ~lifetime_factor =
  if lifetime_factor <= 0. then invalid_arg "Carbon.raw_upgrade_rate";
  1. /. lifetime_factor

let adjusted_upgrade_rate ~lifetime_factor ~adjustment =
  let raw = raw_upgrade_rate ~lifetime_factor in
  raw +. ((1. -. raw) *. adjustment)

let paper_scenarios =
  [
    {
      label = "ShrinkS (current grid)";
      f_op = Params.f_op_ssd_servers;
      power_effectiveness = Params.power_effectiveness;
      upgrade_rate = Params.shrinks_upgrade_rate;
    };
    {
      label = "RegenS (current grid)";
      f_op = Params.f_op_ssd_servers;
      power_effectiveness = Params.power_effectiveness;
      upgrade_rate = Params.regens_upgrade_rate;
    };
    {
      label = "ShrinkS (renewable ops)";
      f_op = 0.;
      power_effectiveness = Params.power_effectiveness;
      upgrade_rate = Params.shrinks_upgrade_rate;
    };
    {
      label = "RegenS (renewable ops)";
      f_op = 0.;
      power_effectiveness = Params.power_effectiveness;
      upgrade_rate = Params.regens_upgrade_rate;
    };
  ]
