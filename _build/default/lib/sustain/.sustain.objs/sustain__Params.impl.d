lib/sustain/params.ml:
