lib/sustain/tco.ml: Params
