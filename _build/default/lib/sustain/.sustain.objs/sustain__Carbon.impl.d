lib/sustain/carbon.ml: Params
