lib/sustain/params.mli:
