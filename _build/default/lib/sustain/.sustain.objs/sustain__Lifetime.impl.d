lib/sustain/lifetime.ml: Flash List Salamander
