lib/sustain/tco.mli:
