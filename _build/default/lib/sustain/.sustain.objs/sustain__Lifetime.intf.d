lib/sustain/lifetime.mli: Flash
