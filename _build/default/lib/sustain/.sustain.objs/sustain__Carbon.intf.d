lib/sustain/carbon.mli:
