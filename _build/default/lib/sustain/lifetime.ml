type level_point = {
  level : int;
  code_rate : float;
  tolerable_rber : float;
  pec_limit : float;
  benefit : float;
}

let reference_geometry () =
  Flash.Geometry.create ~pages_per_block:64 ~blocks:64 ()

let curve ?(max_level = 3) ?(target_pec_l0 = 3000) geometry =
  let profile = Salamander.Tiredness.profile ~max_level geometry in
  let l0_rber =
    (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
  in
  let model =
    Flash.Rber_model.calibrate ~target_rber:l0_rber ~target_pec:target_pec_l0
      ()
  in
  let l0_pec =
    Flash.Rber_model.pec_at model ~rber:l0_rber ~strength:1.
  in
  List.init (max_level + 1) (fun level ->
      let info = Salamander.Tiredness.info profile level in
      let pec_limit =
        Flash.Rber_model.pec_at model
          ~rber:info.Salamander.Tiredness.tolerable_rber ~strength:1.
      in
      {
        level;
        code_rate = info.Salamander.Tiredness.code_rate;
        tolerable_rber = info.Salamander.Tiredness.tolerable_rber;
        pec_limit;
        benefit = pec_limit /. l0_pec;
      })

let l1_benefit ?geometry () =
  let geometry =
    match geometry with Some g -> g | None -> reference_geometry ()
  in
  match curve ~max_level:1 geometry with
  | [ _; l1 ] -> l1.benefit
  | _ -> assert false
