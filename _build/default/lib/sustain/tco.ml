type scenario = {
  label : string;
  f_opex : float;
  upgrade_rate : float;
  cost_effectiveness_new : float;
  capacity_gap : float;
}

let cost_upgrade_rate s =
  s.upgrade_rate
  +. ((1. -. s.upgrade_rate) *. s.cost_effectiveness_new *. s.capacity_gap)

let relative_tco s =
  s.f_opex +. ((1. -. s.f_opex) *. cost_upgrade_rate s)

let savings s = 1. -. relative_tco s

let scenario_pair ~f_opex =
  [
    {
      label = "ShrinkS";
      f_opex;
      upgrade_rate = 1. /. Params.shrinks_lifetime_factor;
      cost_effectiveness_new = Params.cost_effectiveness_new;
      capacity_gap = Params.capacity_gap_fraction;
    };
    {
      label = "RegenS";
      f_opex;
      upgrade_rate = 1. /. Params.regens_lifetime_factor;
      cost_effectiveness_new = Params.cost_effectiveness_new;
      capacity_gap = Params.capacity_gap_fraction;
    };
  ]

let paper_scenarios = scenario_pair ~f_opex:Params.f_opex
let sensitivity ~f_opex = scenario_pair ~f_opex
