(** The paper's total-cost-of-ownership model (Eq. 4, §4.4).

    {v TCO(S)/TCO(B) = f_opex + (1 - f_opex) * CRu v}

    with the cost upgrade rate

    {v CRu = Ru + (1 - Ru) * CE_new * Cap_new v}

    [Ru] is the raw upgrade rate bought by longer lifetime (1/1.2 for
    ShrinkS, 1/1.5 for RegenS), [CE_new] the relative $/TB of the newer
    baseline drives bought to backfill, and [Cap_new] the capacity
    fraction that needs backfilling while Salamander drives run shrunken. *)

type scenario = {
  label : string;
  f_opex : float;  (** operational share of TCO *)
  upgrade_rate : float;  (** raw Ru = 1 / lifetime factor *)
  cost_effectiveness_new : float;
  capacity_gap : float;
}

val cost_upgrade_rate : scenario -> float
(** CRu as defined above. *)

val relative_tco : scenario -> float
(** Eq. 4: S's cost as a fraction of B's. *)

val savings : scenario -> float

val paper_scenarios : scenario list
(** ShrinkS and RegenS at the paper's parameters (f_opex = 0.14):
    expected savings ~13% and ~25%. *)

val sensitivity : f_opex:float -> scenario list
(** The same pair at a different operational-cost share; the paper quotes
    6-14% savings at f_opex = 0.5. *)
