(** The analytic lifetime model behind Fig. 2: how many extra erase
    cycles each tiredness level buys, from the code-rate/ECC-capability
    relationship and the RBER wear curve. *)

type level_point = {
  level : int;
  code_rate : float;
  tolerable_rber : float;
  pec_limit : float;  (** cycles until a median page exceeds the level *)
  benefit : float;  (** pec_limit / pec_limit(L0) *)
}

val curve :
  ?max_level:int ->
  ?target_pec_l0:int ->
  Flash.Geometry.t ->
  level_point list
(** Compute the per-level points for a geometry.  The wear model is
    calibrated so a median page exhausts L0 at [target_pec_l0] (default
    3000, datacenter TLC); the *ratios* between levels are what Fig. 2
    plots and are independent of that anchor. *)

val l1_benefit : ?geometry:Flash.Geometry.t -> unit -> float
(** The headline number: RegenS's L1 lifetime factor for the paper's
    reference geometry (expected ~1.5). *)
