(** The paper's carbon model (Eq. 3, §4.1).

    Relative footprint of a Salamander deployment S against baseline B:

    {v CO2e(S)/CO2e(B) = f_op * PE + (1 - f_op) * Ru v}

    where [f_op] is the operational share of emissions, [PE] the
    operational penalty of running older (less power-efficient) drives,
    and [Ru] the relative SSD upgrade (replacement) rate bought by the
    longer lifetime. *)

type scenario = {
  label : string;
  f_op : float;  (** operational fraction of total emissions *)
  power_effectiveness : float;
  upgrade_rate : float;
}

val relative_footprint : scenario -> float
(** Eq. 3: S's footprint as a fraction of B's. *)

val savings : scenario -> float
(** [1 - relative_footprint]. *)

val raw_upgrade_rate : lifetime_factor:float -> float
(** 1 / lifetime extension: the upgrade-rate gain before any capacity
    haircut (0.83 for ShrinkS, 0.66 for RegenS). *)

val adjusted_upgrade_rate : lifetime_factor:float -> adjustment:float -> float
(** The paper's conservative fix: give back [adjustment] of the gain to
    account for replacement capacity (0.4 turns 0.83 into ~0.9 and 0.66
    into ~0.8). *)

val paper_scenarios : scenario list
(** The four bars of Fig. 4: ShrinkS and RegenS under the current grid
    (f_op = 0.46) and under fully renewable operations (f_op = 0, where
    only embodied carbon remains). *)
