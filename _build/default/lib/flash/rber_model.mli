(** Raw bit-error rate as a function of wear.

    Following the characterization literature the paper builds on (Kim et
    al. FAST '19; Cai et al. 2017), RBER grows polynomially with program/
    erase cycles:

    {v rber(pec) = floor + strength * coefficient * (pec / pec_scale)^exponent v}

    [strength] is a per-page multiplier (lognormal across pages) modelling
    the large page-to-page endurance variance in 3D NAND that motivates
    Salamander's page-granularity retirement.  The exponent defaults to
    3.5, which makes the L1/L0 lifetime ratio land at the paper's ~1.5x
    (see DESIGN.md, Calibration). *)

type t = private {
  floor_rber : float;  (** error rate of pristine flash *)
  coefficient : float;  (** wear-induced RBER at [pec = pec_scale], strength 1 *)
  exponent : float;  (** polynomial growth exponent *)
  pec_scale : float;  (** normalization constant, in erase cycles *)
  strength_sigma : float;  (** lognormal sigma of the per-page multiplier *)
  read_disturb_per_read : float;
      (** RBER added per read of the page since its block's last erase
          (§2 lists read disturb among the error sources).  0 disables
          the effect; devices counter it with read-reclaim scrubbing. *)
}

val default_exponent : float
val default_strength_sigma : float

val create :
  ?floor_rber:float ->
  ?exponent:float ->
  ?strength_sigma:float ->
  ?read_disturb_per_read:float ->
  coefficient:float ->
  pec_scale:float ->
  unit ->
  t

val calibrate :
  ?floor_rber:float ->
  ?exponent:float ->
  ?strength_sigma:float ->
  ?read_disturb_per_read:float ->
  target_rber:float ->
  target_pec:int ->
  unit ->
  t
(** [calibrate ~target_rber ~target_pec ()] returns a model in which a
    median-strength page reaches [target_rber] after exactly [target_pec]
    erase cycles — the standard way to pin the simulated endurance to a
    known device class (e.g. 3 000 cycles for datacenter TLC), or to an
    accelerated scale for fleet simulations. *)

val rber : ?reads:int -> t -> pec:int -> strength:float -> float
(** Current raw bit-error rate: the wear term plus [reads] (reads of the
    page since its block's last erase, default 0) times the disturb
    coefficient, both scaled by the page strength. *)

val pec_at : t -> rber:float -> strength:float -> float
(** Inverse of {!rber} in [pec]: the cycle count at which the page reaches
    the given error rate.  Returns 0 when the rate is at or below the
    pristine floor. *)

val sample_strength : t -> Sim.Rng.t -> float
(** Draw a page-strength multiplier (median 1). *)
