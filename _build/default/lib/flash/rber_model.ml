type t = {
  floor_rber : float;
  coefficient : float;
  exponent : float;
  pec_scale : float;
  strength_sigma : float;
  read_disturb_per_read : float;
}

let default_exponent = 3.5
(* Lognormal sigma of the per-page RBER multiplier.  3D NAND RBER varies
   by multiples across pages of one block ([41,42]); 0.9 here maps through
   the wear exponent (3.5) to a ~0.6x-1.7x spread in per-page endurance,
   which is what makes fleets fail gradually rather than as a cliff. *)
let default_strength_sigma = 0.9
let default_floor = 1e-6

let create ?(floor_rber = default_floor) ?(exponent = default_exponent)
    ?(strength_sigma = default_strength_sigma) ?(read_disturb_per_read = 0.)
    ~coefficient ~pec_scale () =
  if coefficient <= 0. then invalid_arg "Rber_model: coefficient must be > 0";
  if pec_scale <= 0. then invalid_arg "Rber_model: pec_scale must be > 0";
  if exponent <= 0. then invalid_arg "Rber_model: exponent must be > 0";
  if read_disturb_per_read < 0. then
    invalid_arg "Rber_model: read_disturb_per_read must be >= 0";
  { floor_rber; coefficient; exponent; pec_scale; strength_sigma;
    read_disturb_per_read }

let calibrate ?(floor_rber = default_floor) ?(exponent = default_exponent)
    ?(strength_sigma = default_strength_sigma) ?(read_disturb_per_read = 0.)
    ~target_rber ~target_pec () =
  if target_pec <= 0 then invalid_arg "Rber_model.calibrate: target_pec";
  if target_rber <= floor_rber then
    invalid_arg "Rber_model.calibrate: target_rber at or below the floor";
  (* With pec_scale = target_pec the coefficient is exactly the wear term
     at the target point. *)
  {
    floor_rber;
    coefficient = target_rber -. floor_rber;
    exponent;
    pec_scale = float_of_int target_pec;
    strength_sigma;
    read_disturb_per_read;
  }

let rber ?(reads = 0) t ~pec ~strength =
  if pec < 0 then invalid_arg "Rber_model.rber: negative pec";
  if reads < 0 then invalid_arg "Rber_model.rber: negative reads";
  t.floor_rber
  +. (strength
     *. ((t.coefficient
         *. Float.pow (float_of_int pec /. t.pec_scale) t.exponent)
        +. (t.read_disturb_per_read *. float_of_int reads)))

let pec_at t ~rber ~strength =
  if rber <= t.floor_rber then 0.
  else
    let wear = (rber -. t.floor_rber) /. (strength *. t.coefficient) in
    t.pec_scale *. Float.pow wear (1. /. t.exponent)

let sample_strength t rng =
  Sim.Dist.lognormal rng ~mu:0. ~sigma:t.strength_sigma
