type config = { channels : int; dies_per_channel : int; latency : Latency.t }

let default_config =
  { channels = 4; dies_per_channel = 2; latency = Latency.default }

type t = {
  engine : Sim.Engine.t;
  config : config;
  die_free_at : float array;
  channel_free_at : float array;
  die_busy_us : float array;
}

let create ~engine config =
  if config.channels <= 0 || config.dies_per_channel <= 0 then
    invalid_arg "Service.create: channels and dies must be positive";
  let dies = config.channels * config.dies_per_channel in
  {
    engine;
    config;
    die_free_at = Array.make dies 0.;
    channel_free_at = Array.make config.channels 0.;
    die_busy_us = Array.make dies 0.;
  }

type page_read = { die_hint : int; sense_us : float; transfer_us : float }

let dies t = Array.length t.die_free_at

(* FCFS resource booking: a page read holds its die for the sense, then
   its channel for the transfer.  Because service times are known at
   submission, each page's completion time can be computed immediately;
   the engine event only delivers the callback at that simulated time. *)
let submit t ~pages ~on_complete =
  if pages = [] then invalid_arg "Service.submit: empty request";
  let now = Sim.Engine.now t.engine in
  let finish =
    List.fold_left
      (fun finish { die_hint; sense_us; transfer_us } ->
        let die = ((die_hint mod dies t) + dies t) mod dies t in
        let channel = die / t.config.dies_per_channel in
        let sense_start = Float.max now t.die_free_at.(die) in
        let sense_end = sense_start +. sense_us in
        t.die_free_at.(die) <- sense_end;
        t.die_busy_us.(die) <- t.die_busy_us.(die) +. sense_us;
        let transfer_start =
          Float.max sense_end t.channel_free_at.(channel)
        in
        let transfer_end = transfer_start +. transfer_us in
        t.channel_free_at.(channel) <- transfer_end;
        Float.max finish transfer_end)
      now pages
  in
  Sim.Engine.schedule_at t.engine ~time:finish (fun _ ->
      on_complete ~latency_us:(finish -. now))

let busy_fraction t ~die =
  let now = Sim.Engine.now t.engine in
  if now <= 0. then 0. else t.die_busy_us.(die) /. now
