lib/flash/latency.ml: Stdlib
