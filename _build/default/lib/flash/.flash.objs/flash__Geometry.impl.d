lib/flash/geometry.ml: Format Printf
