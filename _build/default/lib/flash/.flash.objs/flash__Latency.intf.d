lib/flash/latency.mli:
