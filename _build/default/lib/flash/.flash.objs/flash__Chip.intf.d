lib/flash/chip.mli: Geometry Rber_model Sim
