lib/flash/rber_model.ml: Float Sim
