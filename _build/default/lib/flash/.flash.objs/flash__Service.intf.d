lib/flash/service.mli: Latency Sim
