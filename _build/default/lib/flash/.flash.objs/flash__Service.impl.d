lib/flash/service.ml: Array Float Latency List Sim
