lib/flash/rber_model.mli: Sim
