lib/flash/chip.ml: Array Geometry Rber_model Sim
