lib/flash/geometry.mli: Format
