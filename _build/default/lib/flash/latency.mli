(** Timing model for flash operations (microseconds).

    Used by the performance experiments (Figs. 3c and 3d): an access that
    spans more fPages pays more page reads and transfers, which is exactly
    how RegenS's 4/(4-L) degradation arises.  Read-retry latency grows as
    the error count approaches the code's capability, modelling the
    iterative voltage adjustment described in §2. *)

type t = private {
  read_us : float;  (** array-to-register sense time per fPage *)
  program_us : float;
  erase_us : float;
  transfer_us_per_kib : float;  (** channel transfer per KiB *)
  retry_us : float;  (** one additional sensing retry *)
  decode_us_per_error : float;  (** ECC decode effort per raw error *)
}

val default : t
(** Representative TLC timings: 60 us read, 700 us program, 5 ms erase,
    0.25 us/KiB transfer (~4 GB/s channel). *)

val create :
  ?read_us:float ->
  ?program_us:float ->
  ?erase_us:float ->
  ?transfer_us_per_kib:float ->
  ?retry_us:float ->
  ?decode_us_per_error:float ->
  unit ->
  t

val expected_retries : margin:float -> int
(** Retry count as the RBER margin degrades: [margin] is
    (rber / tolerable_rber) for the page's code; below 0.5 no retries,
    then one retry per additional half of the margin (0 at margin<0.5,
    1 at <1.0, 2 at <1.5, capped at 4). *)

val fpage_read_us :
  t -> data_kib:float -> raw_errors:float -> retries:int -> float
(** Latency of reading one fPage and transferring [data_kib] of data from
    it, with ECC decode effort for [raw_errors] expected raw bit errors. *)

val fpage_program_us : t -> data_kib:float -> float
val erase_us : t -> float
