type t = {
  read_us : float;
  program_us : float;
  erase_us : float;
  transfer_us_per_kib : float;
  retry_us : float;
  decode_us_per_error : float;
}

let create ?(read_us = 60.) ?(program_us = 700.) ?(erase_us = 5000.)
    ?(transfer_us_per_kib = 0.25) ?(retry_us = 40.)
    ?(decode_us_per_error = 0.02) () =
  { read_us; program_us; erase_us; transfer_us_per_kib; retry_us;
    decode_us_per_error }

let default = create ()

let expected_retries ~margin =
  if margin < 0.5 then 0
  else Stdlib.min 4 (1 + int_of_float ((margin -. 0.5) /. 0.5))

let fpage_read_us t ~data_kib ~raw_errors ~retries =
  t.read_us
  +. (float_of_int retries *. t.retry_us)
  +. (data_kib *. t.transfer_us_per_kib)
  +. (raw_errors *. t.decode_us_per_error)

let fpage_program_us t ~data_kib =
  t.program_us +. (data_kib *. t.transfer_us_per_kib)

let erase_us t = t.erase_us
