type t = {
  opage_bytes : int;
  opages_per_fpage : int;
  spare_bytes : int;
  pages_per_block : int;
  blocks : int;
  codewords_per_opage : int;
}

let create ?(opage_bytes = 4096) ?(opages_per_fpage = 4) ?(spare_bytes = 2048)
    ?(codewords_per_opage = 2) ~pages_per_block ~blocks () =
  let positive name v =
    if v <= 0 then
      invalid_arg (Printf.sprintf "Geometry.create: %s must be > 0" name)
  in
  positive "opage_bytes" opage_bytes;
  positive "opages_per_fpage" opages_per_fpage;
  positive "spare_bytes" spare_bytes;
  positive "codewords_per_opage" codewords_per_opage;
  positive "pages_per_block" pages_per_block;
  positive "blocks" blocks;
  {
    opage_bytes;
    opages_per_fpage;
    spare_bytes;
    pages_per_block;
    blocks;
    codewords_per_opage;
  }

let fpage_data_bytes t = t.opage_bytes * t.opages_per_fpage
let fpages t = t.blocks * t.pages_per_block
let total_opages t = fpages t * t.opages_per_fpage
let physical_data_bytes t = fpages t * fpage_data_bytes t
let codewords_per_fpage t = t.opages_per_fpage * t.codewords_per_opage

let pp fmt t =
  Format.fprintf fmt
    "%d blocks x %d fPages x (%d x %dB oPages + %dB spare) = %d MiB" t.blocks
    t.pages_per_block t.opages_per_fpage t.opage_bytes t.spare_bytes
    (physical_data_bytes t / (1024 * 1024))
