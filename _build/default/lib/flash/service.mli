(** Queued service model of an SSD's internal parallelism.

    A drive is a grid of dies behind shared channels: a page read first
    occupies its die for the sense time, then its channel for the data
    transfer.  Requests spanning several pages (a 16 KiB extent on L1
    flash touches two fPages) finish when the last page lands.

    This is what turns the per-page costs of {!Latency} into end-to-end
    numbers under load: at queue depth 1 parallel senses hide most of
    RegenS's extra page read, while at saturation the extra senses eat
    throughput — the nuance behind the paper's §4.2 performance claims.

    The model runs on {!Sim.Engine} so callers can drive closed-loop
    workloads: submit a request, get a completion callback at the
    simulated finish time, submit the next. *)

type config = {
  channels : int;
  dies_per_channel : int;
  latency : Latency.t;
}

val default_config : config
(** 4 channels x 2 dies, default timings. *)

type t

val create : engine:Sim.Engine.t -> config -> t

type page_read = {
  die_hint : int;  (** mapped onto a die by modulo; callers pass e.g. the
                       physical block number *)
  sense_us : float;
  transfer_us : float;
}

val submit :
  t -> pages:page_read list -> on_complete:(latency_us:float -> unit) -> unit
(** Enqueue a multi-page read at the current simulated time; the callback
    fires (as an engine event) when its last page has transferred, with
    the request's total latency.
    @raise Invalid_argument on an empty page list. *)

val dies : t -> int
val busy_fraction : t -> die:int -> float
(** Fraction of elapsed simulated time the die has spent sensing. *)
