(** Physical layout of a simulated flash device.

    Terminology follows the paper: an {e oPage} is the 4 KiB unit the host
    reads and writes; an {e fPage} is the physical flash page holding
    several oPages plus a spare area for ECC; a {e block} is the erase
    unit, a group of fPages. *)

type t = private {
  opage_bytes : int;  (** host page size; the paper uses 4 KiB *)
  opages_per_fpage : int;  (** data oPages per physical page (4 for 16 KiB) *)
  spare_bytes : int;  (** per-fPage spare area for ECC (2 KiB [13]) *)
  pages_per_block : int;  (** fPages per erase block *)
  blocks : int;  (** erase blocks in the device *)
  codewords_per_opage : int;
      (** ECC interleave: codewords per oPage (2 gives 2 KiB data chunks,
          the realistic controller configuration) *)
}

val create :
  ?opage_bytes:int ->
  ?opages_per_fpage:int ->
  ?spare_bytes:int ->
  ?codewords_per_opage:int ->
  pages_per_block:int ->
  blocks:int ->
  unit ->
  t
(** Defaults give the paper's reference geometry: 4 KiB oPages, 4 per
    fPage (16 KiB), 2 KiB spare, 2 codewords per oPage.
    @raise Invalid_argument on non-positive dimensions. *)

val fpage_data_bytes : t -> int
(** Data capacity of one fPage ([opage_bytes * opages_per_fpage]). *)

val fpages : t -> int
(** Total physical pages in the device. *)

val total_opages : t -> int
(** Total oPage slots ([fpages * opages_per_fpage]). *)

val physical_data_bytes : t -> int
(** Total data bytes excluding spare. *)

val codewords_per_fpage : t -> int

val pp : Format.formatter -> t -> unit
