(* Smoke and sanity tests for the experiment harness: each paper artifact
   must run and exhibit the qualitative shape claimed in EXPERIMENTS.md. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let null_fmt = Format.make_formatter (fun _ _ _ -> ()) (fun () -> ())

(* --- report helpers ------------------------------------------------------- *)

let test_report_table_alignment () =
  let buffer = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buffer in
  Experiments.Report.table fmt ~header:[ "a"; "bb" ]
    ~rows:[ [ "xxx"; "y" ]; [ "z"; "wwww" ] ];
  Format.pp_print_flush fmt ();
  let lines = String.split_on_char '\n' (Buffer.contents buffer) in
  (* header + separator + 2 rows (+ trailing blank) *)
  checkb "at least 4 lines" true (List.length lines >= 4);
  (* all non-empty lines share a width *)
  let widths =
    List.filter_map
      (fun l -> if String.trim l = "" then None else Some (String.length l))
      lines
  in
  checkb "aligned columns" true
    (List.for_all (fun w -> w = List.hd widths) widths)

let test_report_cells () =
  Alcotest.(check string) "percentage" "12.5%" (Experiments.Report.cell_pct 0.125);
  Alcotest.(check string) "nan" "n/a" (Experiments.Report.cell_f nan)

(* --- fig2 ------------------------------------------------------------------ *)

let test_fig2_shape () =
  let points = Experiments.Fig2.points () in
  checki "four levels" 4 (List.length points);
  let benefits = List.map (fun p -> p.Sustain.Lifetime.benefit) points in
  (match benefits with
  | [ l0; l1; l2; l3 ] ->
      checkb "L0 anchor" true (Float.abs (l0 -. 1.) < 1e-9);
      checkb "L1 near paper's 1.5x" true (l1 > 1.4 && l1 < 1.6);
      checkb "monotone" true (l2 > l1 && l3 > l2);
      checkb "diminishing" true (l2 /. l1 < l1 /. l0 && l3 /. l2 < l2 /. l1)
  | _ -> Alcotest.fail "expected 4 points");
  Experiments.Fig2.run null_fmt

(* --- fleet (fig3a/b) --------------------------------------------------------- *)

let test_fleet_baseline_dies_as_cohort () =
  let result = Experiments.Fleet.run ~devices:6 ~days:60 ~seed:33 `Baseline in
  checki "snapshot per day" 61 (List.length result.Experiments.Fleet.snapshots);
  let first = List.hd result.Experiments.Fleet.snapshots in
  checki "all alive at day 0" 6 first.Experiments.Fleet.alive;
  checkb "all dead by day 60" true
    ((List.nth result.Experiments.Fleet.snapshots 60).Experiments.Fleet.alive
    = 0);
  checki "deaths accounted" 6
    (result.Experiments.Fleet.wear_deaths + result.Experiments.Fleet.afr_deaths)

let test_fleet_regens_outlives_baseline () =
  let life kind =
    let result = Experiments.Fleet.run ~devices:6 ~days:80 ~seed:34 kind in
    (* device-days of service *)
    List.fold_left
      (fun acc s -> acc + s.Experiments.Fleet.alive)
      0 result.Experiments.Fleet.snapshots
  in
  let baseline = life `Baseline and regens = life `Regens in
  checkb
    (Printf.sprintf "regens device-days %d > baseline %d" regens baseline)
    true (regens > baseline)

let test_fleet_capacity_declines_gradually_for_regens () =
  let result = Experiments.Fleet.run ~devices:6 ~days:80 ~seed:35 `Regens in
  let capacities =
    List.map (fun s -> s.Experiments.Fleet.capacity_opages)
      result.Experiments.Fleet.snapshots
  in
  let initial = List.hd capacities in
  (* there exists an intermediate day with capacity strictly between 10%
     and 90% of initial: the gradual-decline signature the baseline lacks *)
  checkb "gradual decline" true
    (List.exists
       (fun c ->
         c > initial / 10 && c < initial * 9 / 10)
       capacities)

(* --- fig3cd ------------------------------------------------------------------- *)

let test_fig3perf_shape () =
  let points = Experiments.Fig3perf.measure ~fractions:[ 0.; 1. ] () in
  match points with
  | [ fresh; tired ] ->
      let ratio =
        tired.Experiments.Fig3perf.seq_throughput_mib_s
        /. fresh.Experiments.Fig3perf.seq_throughput_mib_s
      in
      checkb
        (Printf.sprintf "all-L1 sequential ratio %.2f near 0.75" ratio)
        true
        (ratio > 0.68 && ratio < 0.82);
      checkb "fresh extents fit one page" true
        (fresh.Experiments.Fig3perf.random16k_pages < 1.05);
      checkb "L1 extents span two pages" true
        (tired.Experiments.Fig3perf.random16k_pages > 1.95);
      checkb "4KiB latency flat" true
        (Float.abs
           (tired.Experiments.Fig3perf.random4k_us
           -. fresh.Experiments.Fig3perf.random4k_us)
        < 2.)
  | _ -> Alcotest.fail "expected 2 points"

(* --- lifetime table -------------------------------------------------------------- *)

let test_lifetime_ordering () =
  let rows = Experiments.Lifetime_table.measure ~seeds:[ 7 ] () in
  let factor kind =
    (List.find (fun r -> r.Experiments.Lifetime_table.kind = kind) rows)
      .Experiments.Lifetime_table.factor
  in
  checkb "baseline anchor" true (Float.abs (factor `Baseline -. 1.) < 1e-9);
  checkb "cvss beats baseline" true (factor `Cvss > 1.05);
  checkb "shrinks beats cvss" true (factor `Shrinks > factor `Cvss);
  checkb "regens beats shrinks" true (factor `Regens > factor `Shrinks)

(* --- uber --------------------------------------------------------------------------- *)

let test_uber_reliability_holds () =
  let rows = Experiments.Uber_table.measure ~seed:77 () in
  checki "four designs" 4 (List.length rows);
  List.iter
    (fun r ->
      (* at a 1e-11 codeword budget, uncorrectable reads in tens of
         thousands of reads must be essentially absent for every design *)
      checkb
        (Printf.sprintf "%s error rate vanishing"
           (Experiments.Defaults.kind_label r.Experiments.Uber_table.kind))
        true
        (r.Experiments.Uber_table.error_rate_ppm < 100.))
    rows;
  let writes kind =
    (List.find (fun r -> r.Experiments.Uber_table.kind = kind) rows)
      .Experiments.Uber_table.host_writes
  in
  checkb "salamander lives longer at equal reliability" true
    (writes `Regens > writes `Baseline)

(* --- carbon closing the loop ------------------------------------------------------------ *)

let test_fig4_runs_with_measured_factors () =
  Experiments.Fig4.run ~measured_lifetime:(1.6, 1.8) null_fmt;
  Experiments.Tco_table.run null_fmt;
  Experiments.Terms.run null_fmt

let suite =
  [
    ("report table alignment", `Quick, test_report_table_alignment);
    ("report cells", `Quick, test_report_cells);
    ("fig2 shape", `Quick, test_fig2_shape);
    ("fleet baseline cohort death", `Slow, test_fleet_baseline_dies_as_cohort);
    ("fleet regens outlives baseline", `Slow,
     test_fleet_regens_outlives_baseline);
    ("fleet regens gradual decline", `Slow,
     test_fleet_capacity_declines_gradually_for_regens);
    ("fig3perf shape", `Slow, test_fig3perf_shape);
    ("lifetime ordering", `Slow, test_lifetime_ordering);
    ("uber reliability holds", `Slow, test_uber_reliability_holds);
    ("fig4/tco/terms run", `Quick, test_fig4_runs_with_measured_factors);
  ]
