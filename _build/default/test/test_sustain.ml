(* Tests for the sustainability models: the carbon (Eq. 3), TCO (Eq. 4)
   and lifetime (Fig. 2) calculations must reproduce the paper's numbers
   from its published parameters. *)

let checkb = Alcotest.check Alcotest.bool
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)

(* --- carbon (Eq. 3) -------------------------------------------------------- *)

let find_scenario label =
  List.find
    (fun s -> s.Sustain.Carbon.label = label)
    Sustain.Carbon.paper_scenarios

let test_carbon_upgrade_rates () =
  checkf 0.01 "raw ShrinkS Ru" 0.83
    (Sustain.Carbon.raw_upgrade_rate
       ~lifetime_factor:Sustain.Params.shrinks_lifetime_factor);
  checkf 0.01 "raw RegenS Ru" 0.66
    (Sustain.Carbon.raw_upgrade_rate
       ~lifetime_factor:Sustain.Params.regens_lifetime_factor);
  (* the paper's conservative 40% haircut gives 0.9 / 0.8 *)
  checkf 0.01 "adjusted ShrinkS" 0.9
    (Sustain.Carbon.adjusted_upgrade_rate
       ~lifetime_factor:Sustain.Params.shrinks_lifetime_factor
       ~adjustment:Sustain.Params.capacity_adjustment);
  checkf 0.02 "adjusted RegenS" 0.8
    (Sustain.Carbon.adjusted_upgrade_rate
       ~lifetime_factor:Sustain.Params.regens_lifetime_factor
       ~adjustment:Sustain.Params.capacity_adjustment)

let test_carbon_paper_numbers () =
  (* paper: 3-8% savings today, 11-20% under renewables *)
  let shrinks = find_scenario "ShrinkS (current grid)" in
  let regens = find_scenario "RegenS (current grid)" in
  let shrinks_renewable = find_scenario "ShrinkS (renewable ops)" in
  let regens_renewable = find_scenario "RegenS (renewable ops)" in
  checkb "ShrinkS ~3%" true
    (Sustain.Carbon.savings shrinks > 0.02
    && Sustain.Carbon.savings shrinks < 0.05);
  checkf 0.005 "RegenS 8%" 0.08 (Sustain.Carbon.savings regens);
  checkf 0.005 "ShrinkS renewables 10%" 0.10
    (Sustain.Carbon.savings shrinks_renewable);
  checkf 0.005 "RegenS renewables 20%" 0.20
    (Sustain.Carbon.savings regens_renewable)

let test_carbon_monotone_in_lifetime () =
  (* at 1.0x the power penalty makes savings slightly negative *)
  let previous = ref neg_infinity in
  List.iter
    (fun lifetime ->
      let savings =
        Sustain.Carbon.savings
          {
            Sustain.Carbon.label = "";
            f_op = Sustain.Params.f_op_ssd_servers;
            power_effectiveness = Sustain.Params.power_effectiveness;
            upgrade_rate =
              Sustain.Carbon.adjusted_upgrade_rate ~lifetime_factor:lifetime
                ~adjustment:Sustain.Params.capacity_adjustment;
          }
      in
      checkb
        (Printf.sprintf "savings grow at %.1fx" lifetime)
        true (savings >= !previous);
      previous := savings)
    [ 1.0; 1.2; 1.5; 2.0; 3.0 ]

let test_carbon_invalid () =
  Alcotest.check_raises "zero lifetime"
    (Invalid_argument "Carbon.raw_upgrade_rate") (fun () ->
      ignore (Sustain.Carbon.raw_upgrade_rate ~lifetime_factor:0.))

(* --- TCO (Eq. 4) --------------------------------------------------------------- *)

let test_tco_paper_numbers () =
  match Sustain.Tco.paper_scenarios with
  | [ shrinks; regens ] ->
      (* paper: 13% and 25% savings *)
      checkf 0.01 "ShrinkS 13%" 0.13 (Sustain.Tco.savings shrinks);
      checkf 0.015 "RegenS 25%" 0.25 (Sustain.Tco.savings regens)
  | _ -> Alcotest.fail "expected two scenarios"

let test_tco_sensitivity () =
  (* paper: 6-14% when operational costs are half the budget *)
  match Sustain.Tco.sensitivity ~f_opex:0.5 with
  | [ shrinks; regens ] ->
      let s = Sustain.Tco.savings shrinks and r = Sustain.Tco.savings regens in
      checkb "ShrinkS in band" true (s > 0.05 && s < 0.14);
      checkb "RegenS in band" true (r > 0.10 && r <= 0.16)
  | _ -> Alcotest.fail "expected two scenarios"

let test_tco_cru_definition () =
  let s =
    {
      Sustain.Tco.label = "";
      f_opex = 0.14;
      upgrade_rate = 0.8;
      cost_effectiveness_new = 0.25;
      capacity_gap = 0.4;
    }
  in
  (* CRu = Ru + (1-Ru) * CE * Cap = 0.8 + 0.2*0.25*0.4 = 0.82 *)
  checkf 1e-9 "CRu" 0.82 (Sustain.Tco.cost_upgrade_rate s)

(* --- lifetime (Fig. 2) ------------------------------------------------------------ *)

let test_lifetime_l1_benefit () =
  let benefit = Sustain.Lifetime.l1_benefit () in
  checkb
    (Printf.sprintf "L1 benefit %.2f in [1.4, 1.6]" benefit)
    true
    (benefit >= 1.4 && benefit <= 1.6)

let test_lifetime_diminishing_returns () =
  let points =
    Sustain.Lifetime.curve ~max_level:3
      (Flash.Geometry.create ~pages_per_block:64 ~blocks:64 ())
  in
  let benefits = List.map (fun p -> p.Sustain.Lifetime.benefit) points in
  (match benefits with
  | l0 :: rest ->
      checkf 1e-9 "L0 is the anchor" 1.0 l0;
      ignore rest
  | [] -> Alcotest.fail "empty curve");
  (* benefits grow with level but marginal gains shrink *)
  let rec check_diminishing = function
    | a :: b :: c :: rest ->
        checkb "monotone" true (b > a && c > b);
        checkb "diminishing" true (c /. b < b /. a);
        check_diminishing (b :: c :: rest)
    | _ -> ()
  in
  check_diminishing benefits

let test_lifetime_scales_with_anchor () =
  let geometry = Flash.Geometry.create ~pages_per_block:64 ~blocks:64 () in
  let at_3000 = Sustain.Lifetime.curve ~target_pec_l0:3000 geometry in
  let at_1000 = Sustain.Lifetime.curve ~target_pec_l0:1000 geometry in
  (* the benefit ratios are anchor-independent *)
  List.iter2
    (fun a b ->
      checkf 1e-6 "same benefit"
        a.Sustain.Lifetime.benefit b.Sustain.Lifetime.benefit)
    at_3000 at_1000

let suite =
  [
    ("carbon upgrade rates", `Quick, test_carbon_upgrade_rates);
    ("carbon paper numbers (Fig 4)", `Quick, test_carbon_paper_numbers);
    ("carbon monotone in lifetime", `Quick, test_carbon_monotone_in_lifetime);
    ("carbon invalid input", `Quick, test_carbon_invalid);
    ("tco paper numbers", `Quick, test_tco_paper_numbers);
    ("tco sensitivity band", `Quick, test_tco_sensitivity);
    ("tco CRu definition", `Quick, test_tco_cru_definition);
    ("lifetime L1 benefit (Fig 2)", `Quick, test_lifetime_l1_benefit);
    ("lifetime diminishing returns", `Quick, test_lifetime_diminishing_returns);
    ("lifetime anchor independence", `Quick, test_lifetime_scales_with_anchor);
  ]
