test/test_ecc.ml: Alcotest Array Bytes Char Ecc Float Fun Hashtbl List Printf QCheck QCheck_alcotest Sim Stdlib
