test/main.mli:
