test/main.ml: Alcotest Test_core Test_difs Test_ecc Test_experiments Test_flash Test_ftl Test_sim Test_sustain Test_workload
