test/test_core.ml: Alcotest Array Ecc Flash Ftl Fun Hashtbl List Option Printf QCheck QCheck_alcotest Salamander Sim Stdlib
