test/test_workload.ml: Alcotest Array Flash Float Ftl List Sim Workload
