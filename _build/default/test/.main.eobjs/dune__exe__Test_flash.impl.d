test/test_flash.ml: Alcotest Flash List Printf Sim
