test/test_difs.ml: Alcotest Difs Flash Ftl List Option Printf Salamander Sim
