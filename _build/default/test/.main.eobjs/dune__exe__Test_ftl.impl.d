test/test_ftl.ml: Alcotest Array Flash Ftl Hashtbl List Option Printf QCheck QCheck_alcotest Sim Stdlib
