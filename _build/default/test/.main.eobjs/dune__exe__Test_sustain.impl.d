test/test_sustain.ml: Alcotest Flash List Printf Sustain
