type backend =
  | Monolithic of Ftl.Device_intf.packed
  | Salamander of Salamander.Device.t

type placement = Spread_devices | Spread_targets

type redundancy =
  | Replication of int
  | Erasure of { data_shares : int; parity_shares : int }

type config = {
  redundancy : redundancy;
  chunk_opages : int;
  placement : placement;
}

let default_config =
  { redundancy = Replication 3; chunk_opages = 16; placement = Spread_devices }

let default_ec_config =
  {
    redundancy = Erasure { data_shares = 4; parity_shares = 2 };
    chunk_opages = 16;
    placement = Spread_devices;
  }

type device_entry = {
  id : int;
  node : int;
  backend : backend;
  mutable alive_seen : bool;
  mutable capacity_seen : int;
  mutable killed : bool;
}

(* Telemetry handles bound at cluster creation (inert on the null
   registry).  The degraded/lost gauges are refreshed after every event
   sweep; [tel_degraded_chunk_rounds] integrates the degraded census
   over event-processing rounds — the discrete-time analogue of
   under-replicated chunk-seconds. *)
type tel = {
  tel_registry : Telemetry.Registry.t;
  tel_recovery_written : Telemetry.Registry.Counter.t;
  tel_recovery_read : Telemetry.Registry.Counter.t;
  tel_recovery_events : Telemetry.Registry.Counter.t;
  tel_rebuilt_shares : Telemetry.Registry.Counter.t;
  tel_lost_chunks : Telemetry.Registry.Counter.t;
  tel_unrecoverable : Telemetry.Registry.Counter.t;
  tel_degraded : Telemetry.Registry.Gauge.t;
  tel_degraded_chunk_rounds : Telemetry.Registry.Counter.t;
  tel_live_targets : Telemetry.Registry.Gauge.t;
  tel_kill_ignored : Telemetry.Registry.Counter.t;
  tel_rebuild_aborts : Telemetry.Registry.Counter.t;
  tel_scrub_sweeps : Telemetry.Registry.Counter.t;
  tel_scrub_mismatches : Telemetry.Registry.Counter.t;
  tel_scrub_repairs : Telemetry.Registry.Counter.t;
  tel_scrub_repair_failures : Telemetry.Registry.Counter.t;
  tel_live_repair_attempts : Telemetry.Registry.Counter.t;
  tel_live_repair_successes : Telemetry.Registry.Counter.t;
  tel_live_repair_replica_reads : Telemetry.Registry.Counter.t;
  tel_live_repair_rewritten : Telemetry.Registry.Counter.t;
  tel_live_repair_failures : Telemetry.Registry.Counter.t;
  tel_corrupt_served : Telemetry.Registry.Counter.t;
  tel_corrupt_with_replica : Telemetry.Registry.Counter.t;
}

let make_tel registry =
  let counter name help = Telemetry.Registry.counter registry ~help name in
  {
    tel_registry = registry;
    tel_recovery_written =
      counter "difs_recovery_write_opages_total"
        "oPages written by failure recovery (re-replication volume)";
    tel_recovery_read =
      counter "difs_recovery_read_opages_total"
        "oPages read to feed recovery (EC repair amplification)";
    tel_recovery_events =
      counter "difs_recovery_events_total" "Target failures handled";
    tel_rebuilt_shares =
      counter "difs_rebuilt_shares_total"
        "Shares re-materialized on a fresh target";
    tel_lost_chunks =
      counter "difs_lost_chunks_total" "Chunks that fell below the read quorum";
    tel_unrecoverable =
      counter "difs_unrecoverable_opages_total"
        "oPages recovery could not reconstruct";
    tel_degraded =
      Telemetry.Registry.gauge registry
        ~help:"Chunks currently below full redundancy but readable"
        "difs_degraded_chunks";
    tel_degraded_chunk_rounds =
      counter "difs_degraded_chunk_rounds_total"
        "Degraded-chunk census summed over event-processing rounds \
         (under-replication exposure)";
    tel_live_targets =
      Telemetry.Registry.gauge registry ~help:"Active placement targets"
        "difs_live_targets";
    tel_kill_ignored =
      counter "difs_kill_ignored_total"
        "kill_device calls ignored (double-kill, unknown device, or \
         kill during recovery)";
    tel_rebuild_aborts =
      counter "difs_rebuild_aborts_total"
        "Share rebuilds abandoned because the destination died mid-copy";
    tel_scrub_sweeps = counter "difs_scrub_sweeps_total" "Scrub sweeps run";
    tel_scrub_mismatches =
      counter "difs_scrub_mismatches_total"
        "oPages whose content failed scrub verification";
    tel_scrub_repairs =
      counter "difs_scrub_repairs_total"
        "Scrub repairs (in-place rewrites + share rebuilds)";
    tel_scrub_repair_failures =
      counter "difs_scrub_repair_failures_total"
        "Unreadable shares the scrubber could not rebuild";
    tel_live_repair_attempts =
      counter "difs_live_repair_attempts_total"
        "Foreground (read-path) repair attempts";
    tel_live_repair_successes =
      counter "difs_live_repair_successes_total"
        "Foreground repairs that reconstructed the oPage from a healthy \
         replica or EC quorum";
    tel_live_repair_replica_reads =
      counter "difs_live_repair_replica_reads_total"
        "Replica/share reads consumed by foreground repair";
    tel_live_repair_rewritten =
      counter "difs_live_repair_rewritten_opages_total"
        "oPages rewritten in place through the normal FTL write path by \
         foreground repair";
    tel_live_repair_failures =
      counter "difs_live_repair_failures_total"
        "Foreground repairs that degraded to the unrecoverable outcome \
         (no healthy share, or no owning chunk)";
    tel_corrupt_served =
      counter "difs_corrupt_reads_served_total"
        "Corrupt oPages handed to a reader (degraded service: no healthy \
         replica existed)";
    tel_corrupt_with_replica =
      counter "difs_corrupt_reads_with_replica_total"
        "Corrupt oPages handed to a reader while a healthy replica \
         existed (the live-repair invariant: must stay 0)";
  }

type t = {
  config : config;
  coder : Ecc.Reed_solomon.t option; (* Some for erasure coding *)
  devices : (int, device_entry) Hashtbl.t;
  targets : (Target.key, Target.t) Hashtbl.t;
  chunks : (int, Chunk.t) Hashtbl.t;
  tel : tel;
  mutable next_device : int;
  mutable recovery_written : int;
  mutable recovery_read : int;
  mutable recovery_events : int;
  mutable lost : int;
  mutable unrecoverable_opages : int;
  mutable rebuilt : int;
  mutable rebuild_aborts : int;
  mutable kill_ignored : int;
  mutable in_recovery : bool;
  mutable in_live_repair : bool;
      (* reentrancy guard: replica reads issued by a live repair can
         themselves escalate; the nested escalation must degrade (so the
         outer repair just moves to the next share) instead of recursing *)
  mutable live_repair_attempts : int;
  mutable live_repair_successes : int;
  mutable live_repair_replica_reads : int;
  mutable live_repair_rewritten : int;
  mutable live_repair_failures : int;
  mutable corrupt_served : int;
  mutable corrupt_with_replica : int;
  mutable scrub_sweeps : int;
  mutable scrub_mismatches : int;
  mutable scrub_repairs : int;
  mutable scrub_cursor : int;
  scrub_backoff : (int, int * int) Hashtbl.t;
      (* chunk id -> (consecutive repair failures, first sweep eligible
         again): exponential backoff so a chunk that cannot be repaired
         (no capacity, too few survivors) does not eat every sweep. *)
}

let create ?(config = default_config) ?registry () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  if config.chunk_opages <= 0 then invalid_arg "Cluster.create: chunk_opages";
  let coder =
    match config.redundancy with
    | Replication n ->
        if n <= 0 then invalid_arg "Cluster.create: replication must be > 0";
        None
    | Erasure { data_shares; parity_shares } ->
        if config.chunk_opages mod data_shares <> 0 then
          invalid_arg
            "Cluster.create: chunk_opages must be divisible by data_shares";
        Some (Ecc.Reed_solomon.create ~data_shares ~parity_shares)
  in
  {
    config;
    coder;
    devices = Hashtbl.create 16;
    targets = Hashtbl.create 64;
    chunks = Hashtbl.create 256;
    tel = make_tel registry;
    next_device = 0;
    recovery_written = 0;
    recovery_read = 0;
    recovery_events = 0;
    lost = 0;
    unrecoverable_opages = 0;
    rebuilt = 0;
    rebuild_aborts = 0;
    kill_ignored = 0;
    in_recovery = false;
    in_live_repair = false;
    live_repair_attempts = 0;
    live_repair_successes = 0;
    live_repair_replica_reads = 0;
    live_repair_rewritten = 0;
    live_repair_failures = 0;
    corrupt_served = 0;
    corrupt_with_replica = 0;
    scrub_sweeps = 0;
    scrub_mismatches = 0;
    scrub_repairs = 0;
    scrub_cursor = -1;
    scrub_backoff = Hashtbl.create 16;
  }

let config t = t.config

(* Recovery spans (failure handling, drains, truncations, repair, scrub)
   mark the cluster busy so [kill_device] cannot fire while share
   bookkeeping is mid-flight — see the kill-ignored semantics in the
   interface. *)
let with_recovery t f =
  if t.in_recovery then f ()
  else begin
    t.in_recovery <- true;
    Fun.protect ~finally:(fun () -> t.in_recovery <- false) f
  end

let total_shares t =
  match t.config.redundancy with
  | Replication n -> n
  | Erasure { data_shares; parity_shares } -> data_shares + parity_shares

let read_quorum t =
  match t.config.redundancy with
  | Replication _ -> 1
  | Erasure { data_shares; _ } -> data_shares

let share_opages t =
  match t.config.redundancy with
  | Replication _ -> t.config.chunk_opages
  | Erasure { data_shares; _ } -> t.config.chunk_opages / data_shares

let storage_overhead t =
  float_of_int (total_shares t * share_opages t)
  /. float_of_int t.config.chunk_opages

(* --- expected share contents --------------------------------------------- *)

(* What share [index] of the chunk must contain at [offset] (an offset
   within the share): replication copies the chunk verbatim; erasure data
   shares hold slices, parity shares the Reed-Solomon combination. *)
let expected_payload t (chunk : Chunk.t) ~index ~offset =
  match t.config.redundancy with
  | Replication _ ->
      Chunk.payload ~id:chunk.Chunk.id ~offset ~version:chunk.Chunk.version
  | Erasure { data_shares; _ } ->
      let per_share = share_opages t in
      if index < data_shares then
        Chunk.payload ~id:chunk.Chunk.id
          ~offset:((index * per_share) + offset)
          ~version:chunk.Chunk.version
      else
        let coder = Option.get t.coder in
        let data =
          Array.init data_shares (fun i ->
              Chunk.payload_bytes
                (Chunk.payload ~id:chunk.Chunk.id
                   ~offset:((i * per_share) + offset)
                   ~version:chunk.Chunk.version))
        in
        let parity = Ecc.Reed_solomon.encode coder data in
        Chunk.payload_of_bytes parity.(index - data_shares)

let add_target t ~key ~node ~capacity =
  Hashtbl.replace t.targets key
    (Target.create ~key ~node ~capacity ~chunk_opages:(share_opages t))

let add_device t ~node backend =
  let id = t.next_device in
  t.next_device <- t.next_device + 1;
  let capacity_seen =
    match backend with
    | Monolithic d -> Ftl.Device_intf.logical_capacity d
    | Salamander _ -> 0
  in
  Hashtbl.replace t.devices id
    { id; node; backend; alive_seen = true; capacity_seen; killed = false };
  (match backend with
  | Monolithic d ->
      add_target t ~key:{ Target.device = id; mdisk = None } ~node
        ~capacity:(Ftl.Device_intf.logical_capacity d)
  | Salamander d ->
      List.iter
        (fun m ->
          add_target t
            ~key:{ Target.device = id; mdisk = Some m.Salamander.Minidisk.id }
            ~node ~capacity:m.Salamander.Minidisk.opages)
        (Salamander.Device.active_mdisks d));
  id

(* --- raw target I/O ------------------------------------------------------ *)

let target_write t (key : Target.key) ~lba ~payload =
  let entry = Hashtbl.find t.devices key.Target.device in
  if entry.killed then Error `Target_failed
  else
    match (entry.backend, key.Target.mdisk) with
    | Monolithic d, None -> (
        match Ftl.Device_intf.write d ~lba ~payload with
        | Ok () -> Ok ()
        | Error (`Dead | `No_space | `Out_of_range) -> Error `Target_failed)
    | Salamander d, Some mdisk -> (
        match Salamander.Device.write d ~mdisk ~lba ~payload with
        | Ok () -> Ok ()
        | Error (`Dead | `Unknown_mdisk | `No_space) -> Error `Target_failed)
    | Monolithic _, Some _ | Salamander _, None ->
        invalid_arg "Cluster: malformed target key"

let target_read t (key : Target.key) ~lba =
  let entry = Hashtbl.find t.devices key.Target.device in
  if entry.killed then Error `Unreadable
  else
    match (entry.backend, key.Target.mdisk) with
    | Monolithic d, None -> (
        match Ftl.Device_intf.read d ~lba with
        | Ok p -> Ok p
        | Error (`Dead | `Unmapped | `Uncorrectable | `Out_of_range) ->
            Error `Unreadable)
    | Salamander d, Some mdisk -> (
        match Salamander.Device.read d ~mdisk ~lba with
        | Ok p -> Ok p
        | Error (`Dead | `Unknown_mdisk | `Unmapped | `Uncorrectable) ->
            Error `Unreadable)
    | Monolithic _, Some _ | Salamander _, None ->
        invalid_arg "Cluster: malformed target key"

let target_trim t (key : Target.key) ~lba =
  let entry = Hashtbl.find t.devices key.Target.device in
  if entry.killed then ()
  else
    match (entry.backend, key.Target.mdisk) with
    | Monolithic d, None -> Ftl.Device_intf.trim d ~lba
    | Salamander d, Some mdisk -> Salamander.Device.trim d ~mdisk ~lba
    | Monolithic _, Some _ | Salamander _, None ->
        invalid_arg "Cluster: malformed target key"

(* --- placement ------------------------------------------------------------ *)

let share_devices chunk =
  List.map (fun s -> s.Chunk.target.Target.device) chunk.Chunk.shares

let share_keys chunk = List.map (fun s -> s.Chunk.target) chunk.Chunk.shares

(* Least-loaded active target compatible with the placement policy. *)
let choose_target t chunk =
  let excluded_devices = share_devices chunk in
  let excluded_keys = share_keys chunk in
  let allowed target =
    Target.is_active target
    && Target.free_count target > 0
    &&
    match t.config.placement with
    | Spread_devices ->
        not (List.mem target.Target.key.Target.device excluded_devices)
    | Spread_targets ->
        not (List.exists (Target.key_equal target.Target.key) excluded_keys)
  in
  Hashtbl.fold
    (fun _ target best ->
      if not (allowed target) then best
      else
        match best with
        | Some b when Target.free_count b >= Target.free_count target -> best
        | _ -> Some target)
    t.targets None

(* --- rebuilding share contents from survivors ------------------------------ *)

(* The content of share [index] at [offset], recovered from whatever
   shares still answer.  Replication reads the same offset off any
   survivor; erasure coding gathers a read quorum and runs the RS
   decoder.  Every successful read is metered as recovery-read traffic
   when [metered]. *)
let recover_payload ?(metered = true) t chunk ~index ~offset =
  let meter () =
    if metered then begin
      t.recovery_read <- t.recovery_read + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_recovery_read
    end
  in
  match t.config.redundancy with
  | Replication _ ->
      let rec go = function
        | [] -> None
        | share :: rest -> (
            match
              target_read t share.Chunk.target ~lba:(share.Chunk.base + offset)
            with
            | Ok payload ->
                meter ();
                Some payload
            | Error `Unreadable -> go rest)
      in
      go chunk.Chunk.shares
  | Erasure _ ->
      let coder = Option.get t.coder in
      let quorum = read_quorum t in
      (* A survivor holding the wanted index serves it with one read;
         otherwise gather exactly a quorum and decode — never more, since
         repair reads are the cost EC pays (k-fold amplification). *)
      let direct =
        List.find_opt (fun s -> s.Chunk.index = index) chunk.Chunk.shares
      in
      let read_share share =
        match
          target_read t share.Chunk.target ~lba:(share.Chunk.base + offset)
        with
        | Ok payload ->
            meter ();
            Some (share.Chunk.index, Chunk.payload_bytes payload)
        | Error `Unreadable -> None
      in
      let direct_value =
        Option.bind direct (fun share ->
            Option.map (fun (_, b) -> Chunk.payload_of_bytes b)
              (read_share share))
      in
      (match direct_value with
      | Some payload -> Some payload
      | None ->
          let rec gather acc = function
            | [] -> acc
            | _ when List.length acc >= quorum -> acc
            | share :: rest -> (
                match read_share share with
                | Some entry -> gather (entry :: acc) rest
                | None -> gather acc rest)
          in
          let readable =
            gather []
              (List.filter (fun s -> s.Chunk.index <> index) chunk.Chunk.shares)
          in
          if List.length readable < quorum then None
          else
            Some
              (Chunk.payload_of_bytes
                 (Ecc.Reed_solomon.reconstruct coder ~shares:readable index)))

(* --- foreground (read-path) live repair ----------------------------------- *)

(* A content-verified value for share [index] at [offset], derived from
   healthy shares only — unlike [recover_payload], a copy that answers
   with silently-corrupted data is not a source.  Replication accepts any
   surviving copy whose payload verifies; erasure coding accepts a
   verified direct read, falling back to a verified quorum of distinct
   other indices.  The verified shares pin the decode output to the
   oracle value, so that value is returned directly (the same in-place
   repair content the scrubber writes).  [exclude] drops the failing
   copy's target from consideration.  Reads are metered as live-repair
   replica reads. *)
let live_source ?exclude t chunk ~index ~offset =
  let expected = expected_payload t chunk ~index ~offset in
  let excluded (share : Chunk.share) =
    match exclude with
    | Some key -> Target.key_equal share.Chunk.target key
    | None -> false
  in
  let shares =
    List.sort
      (fun a b -> compare a.Chunk.index b.Chunk.index)
      (List.filter (fun s -> not (excluded s)) chunk.Chunk.shares)
  in
  let read_verified (share : Chunk.share) =
    match target_read t share.Chunk.target ~lba:(share.Chunk.base + offset) with
    | Ok payload ->
        t.live_repair_replica_reads <- t.live_repair_replica_reads + 1;
        Telemetry.Registry.Counter.incr t.tel.tel_live_repair_replica_reads;
        payload = expected_payload t chunk ~index:share.Chunk.index ~offset
    | Error `Unreadable -> false
  in
  match t.config.redundancy with
  | Replication _ ->
      if List.exists read_verified shares then Some expected else None
  | Erasure _ ->
      let direct_ok =
        List.exists read_verified
          (List.filter (fun s -> s.Chunk.index = index) shares)
      in
      if direct_ok then Some expected
      else begin
        let quorum = read_quorum t in
        let verified = ref 0 in
        let seen = Hashtbl.create 8 in
        (try
           List.iter
             (fun (share : Chunk.share) ->
               if
                 share.Chunk.index <> index
                 && not (Hashtbl.mem seen share.Chunk.index)
                 && read_verified share
               then begin
                 Hashtbl.replace seen share.Chunk.index ();
                 incr verified;
                 if !verified >= quorum then raise Exit
               end)
             shares
         with Exit -> ());
        if !verified >= quorum then Some expected else None
      end

(* Repair one oPage in the foreground: find a healthy source, rewrite the
   damaged copy through the normal FTL write path (so wear accounting and
   GC see the traffic), and return the repaired payload.  [None] means no
   healthy source existed — the caller degrades to serving what it has. *)
let repair_opage ?exclude ?rewrite t chunk ~index ~offset =
  t.live_repair_attempts <- t.live_repair_attempts + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_live_repair_attempts;
  match live_source ?exclude t chunk ~index ~offset with
  | None ->
      t.live_repair_failures <- t.live_repair_failures + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_live_repair_failures;
      None
  | Some payload ->
      t.live_repair_successes <- t.live_repair_successes + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_live_repair_successes;
      (match rewrite with
      | None -> ()
      | Some (key, lba) -> (
          match target_write t key ~lba ~payload with
          | Ok () ->
              t.live_repair_rewritten <- t.live_repair_rewritten + 1;
              Telemetry.Registry.Counter.incr t.tel.tel_live_repair_rewritten
          | Error `Target_failed ->
              (* The data is already rescued; the dead rewrite target is
                 the event loop's problem. *)
              ()));
      Some payload

(* Book a corrupt oPage that is about to reach a reader.  [healthy] is
   whether a verified source existed at serve time: every serving path
   attempts repair first, so the with-replica counter moving means the
   live-repair invariant broke. *)
let serve_corrupt t ~healthy =
  t.corrupt_served <- t.corrupt_served + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_corrupt_served;
  if healthy then begin
    t.corrupt_with_replica <- t.corrupt_with_replica + 1;
    Telemetry.Registry.Counter.incr t.tel.tel_corrupt_with_replica
  end

(* Escalation entry point, invoked from a device's recovery hook when a
   read's retry ladder exhausts: locate the chunk owning the failing
   (target, LBA), reconstruct the oPage from healthy shares, rewrite the
   failing copy in place, and hand the payload back to the engine.  Runs
   as a recovery span so kills landing mid-repair stay counted no-ops;
   nested escalations (a replica read failing during the repair) degrade
   immediately via [in_live_repair]. *)
let recover_opage ?mdisk t ~device ~lba =
  if t.in_live_repair then None
  else begin
    t.in_live_repair <- true;
    Fun.protect
      ~finally:(fun () -> t.in_live_repair <- false)
      (fun () ->
        with_recovery t @@ fun () ->
        let key = { Target.device; mdisk } in
        let per_share = share_opages t in
        let owner =
          Hashtbl.fold
            (fun _ (chunk : Chunk.t) acc ->
              match acc with
              | Some _ -> acc
              | None ->
                  Option.map
                    (fun share -> (chunk, share))
                    (List.find_opt
                       (fun (s : Chunk.share) ->
                         Target.key_equal s.Chunk.target key
                         && s.Chunk.base <= lba
                         && lba < s.Chunk.base + per_share)
                       chunk.Chunk.shares))
            t.chunks None
        in
        match owner with
        | None ->
            (* Not cluster data (or the share was already dropped):
               nothing to repair from. *)
            t.live_repair_attempts <- t.live_repair_attempts + 1;
            Telemetry.Registry.Counter.incr t.tel.tel_live_repair_attempts;
            t.live_repair_failures <- t.live_repair_failures + 1;
            Telemetry.Registry.Counter.incr t.tel.tel_live_repair_failures;
            None
        | Some (chunk, share) ->
            repair_opage ~exclude:key ~rewrite:(key, lba) t chunk
              ~index:share.Chunk.index
              ~offset:(lba - share.Chunk.base))
  end

(* Arm every device's engine-level recovery hook to escalate into
   [recover_opage].  From then on a read whose retry ladder exhausts is
   repaired from cluster redundancy before the host ever sees
   [`Uncorrectable]. *)
let enable_live_repair ?config t =
  Hashtbl.iter
    (fun id entry ->
      match entry.backend with
      | Monolithic d ->
          Ftl.Device_intf.set_recovery_hook d ?config
            (Some (fun ~lba -> recover_opage t ~device:id ~lba))
      | Salamander d ->
          Salamander.Device.set_recovery_hook d ?config
            (Some (fun ~mdisk ~lba -> recover_opage ~mdisk t ~device:id ~lba)))
    t.devices

(* Materialize share [index] on a fresh target, feeding it from
   survivors.  Returns [false] when no compatible target with space
   exists. *)
let rec rebuild_share t chunk ~index =
  match choose_target t chunk with
  | None -> false (* under-redundant until capacity appears *)
  | Some target -> (
      match Target.allocate target with
      | None -> false
      | Some base ->
          let key = target.Target.key in
          let per_share = share_opages t in
          let written = ref 0 in
          let failed = ref false in
          (try
             for offset = 0 to per_share - 1 do
               match recover_payload t chunk ~index ~offset with
               | None ->
                   t.unrecoverable_opages <- t.unrecoverable_opages + 1;
                   Telemetry.Registry.Counter.incr t.tel.tel_unrecoverable
               | Some payload -> (
                   match target_write t key ~lba:(base + offset) ~payload with
                   | Ok () -> incr written
                   | Error `Target_failed ->
                       failed := true;
                       raise Exit)
             done
           with Exit -> ());
          t.recovery_written <- t.recovery_written + !written;
          Telemetry.Registry.Counter.incr t.tel.tel_recovery_written
            ~by:!written;
          if !failed then begin
            (* The destination died mid-copy; its own failure event will
               be picked up by the processing loop.  Try elsewhere. *)
            t.rebuild_aborts <- t.rebuild_aborts + 1;
            Telemetry.Registry.Counter.incr t.tel.tel_rebuild_aborts;
            rebuild_share t chunk ~index
          end
          else begin
            Chunk.add_share chunk { Chunk.index; target = key; base };
            t.rebuilt <- t.rebuilt + 1;
            Telemetry.Registry.Counter.incr t.tel.tel_rebuilt_shares;
            true
          end)

(* Bring one chunk back toward its full share count. *)
let ensure_redundancy t chunk =
  with_recovery t (fun () ->
      let rec go () =
        match Chunk.missing_indices chunk ~total:(total_shares t) with
        | [] -> true
        | index :: _ ->
            if List.length chunk.Chunk.shares < read_quorum t then false
            else if rebuild_share t chunk ~index then go ()
            else false
      in
      go ())

let note_share_losses t chunk ~before =
  let quorum = read_quorum t in
  if before >= quorum && List.length chunk.Chunk.shares < quorum then begin
    t.lost <- t.lost + 1;
    Telemetry.Registry.Counter.incr t.tel.tel_lost_chunks;
    Telemetry.Trace.event ~registry:t.tel.tel_registry ~level:Logs.Warning
      "chunk_lost"
      [ ("chunk", string_of_int chunk.Chunk.id) ]
  end

let fail_target t key =
  match Hashtbl.find_opt t.targets key with
  | None -> ()
  | Some target when not (Target.is_active target) -> ()
  | Some target ->
      with_recovery t @@ fun () ->
      Target.fail target;
      t.recovery_events <- t.recovery_events + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_recovery_events;
      let affected = ref [] in
      Hashtbl.iter
        (fun _ chunk ->
          if Option.is_some (Chunk.share_on chunk key) then begin
            let before = List.length chunk.Chunk.shares in
            Chunk.drop_share chunk key;
            note_share_losses t chunk ~before;
            affected := chunk :: !affected
          end)
        t.chunks;
      List.iter (fun chunk -> ignore (ensure_redundancy t chunk)) !affected

(* Grace-period retirement (§4.3): the target is leaving but its data is
   still readable, so rebuild every affected share *before* dropping the
   retiring copy, then acknowledge so the device reclaims the space.
   With enough cluster capacity no chunk ever dips below full
   redundancy. *)
let drain_target t key ~ack =
  (match Hashtbl.find_opt t.targets key with
  | None -> ()
  | Some target when not (Target.is_active target) -> ()
  | Some target ->
      with_recovery t @@ fun () ->
      Target.fail target;
      t.recovery_events <- t.recovery_events + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_recovery_events;
      Hashtbl.iter
        (fun _ chunk ->
          match Chunk.share_on chunk key with
          | None -> ()
          | Some retiring ->
              (* Rebuild the replacement while the retiring share is still
                 listed: recovery may read from it, and its device stays
                 excluded from placement.  The duplicate index resolves
                 when the retiring copy is dropped below. *)
              ignore (rebuild_share t chunk ~index:retiring.Chunk.index);
              let before = List.length chunk.Chunk.shares in
              Chunk.drop_share chunk key;
              note_share_losses t chunk ~before)
        t.chunks);
  ack ()

let fail_device_targets t device_id =
  let keys =
    Hashtbl.fold
      (fun key target acc ->
        if key.Target.device = device_id && Target.is_active target then
          key :: acc
        else acc)
      t.targets []
  in
  List.iter (fail_target t) keys

let handle_truncation t entry capacity =
  match
    Hashtbl.find_opt t.targets { Target.device = entry.id; mdisk = None }
  with
  | None -> ()
  | Some target ->
      with_recovery t @@ fun () ->
      let lost_ranges = Target.truncate target ~capacity in
      if lost_ranges <> [] then begin
        t.recovery_events <- t.recovery_events + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_recovery_events;
        Hashtbl.iter
          (fun _ chunk ->
            match Chunk.share_on chunk target.Target.key with
            | Some share when List.mem share.Chunk.base lost_ranges ->
                let before = List.length chunk.Chunk.shares in
                Chunk.drop_share chunk target.Target.key;
                note_share_losses t chunk ~before;
                ignore (ensure_redundancy t chunk)
            | _ -> ())
          t.chunks
      end

let process_device_events t entry =
  let progress = ref false in
  (if entry.killed then ()
   else
     match entry.backend with
     | Salamander d ->
         List.iter
           (fun event ->
             progress := true;
             match event with
             | Salamander.Events.Mdisk_retiring { id; _ } ->
                 drain_target t
                   { Target.device = entry.id; mdisk = Some id }
                   ~ack:(fun () ->
                     Salamander.Device.acknowledge_decommission d ~mdisk:id)
             | Salamander.Events.Mdisk_decommissioned { id; _ } ->
                 fail_target t { Target.device = entry.id; mdisk = Some id }
             | Salamander.Events.Mdisk_created { id; opages; _ } ->
                 add_target t
                   ~key:{ Target.device = entry.id; mdisk = Some id }
                   ~node:entry.node ~capacity:opages
             | Salamander.Events.Device_failed ->
                 fail_device_targets t entry.id)
           (Salamander.Device.poll_events d)
     | Monolithic d ->
         if entry.alive_seen && not (Ftl.Device_intf.alive d) then begin
           entry.alive_seen <- false;
           progress := true;
           fail_device_targets t entry.id
         end
         else if entry.alive_seen then begin
           let capacity = Ftl.Device_intf.logical_capacity d in
           if capacity < entry.capacity_seen then begin
             progress := true;
             handle_truncation t entry capacity;
             entry.capacity_seen <- capacity
           end
         end);
  !progress

(* A kill only proceeds against a known, live device while no recovery
   span is active; everything else is counted and ignored rather than
   left to silently diverge (double-kills used to re-fail targets,
   kills under recovery could interleave with share bookkeeping). *)
let kill_device t id =
  let ignored () =
    t.kill_ignored <- t.kill_ignored + 1;
    Telemetry.Registry.Counter.incr t.tel.tel_kill_ignored
  in
  match Hashtbl.find_opt t.devices id with
  | None -> ignored ()
  | Some entry ->
      if entry.killed || t.in_recovery then ignored ()
      else begin
        entry.killed <- true;
        fail_device_targets t id
      end

let is_device_killed t id =
  match Hashtbl.find_opt t.devices id with
  | None -> false
  | Some entry -> entry.killed

let process_events t =
  let progress = ref true in
  let rounds = ref 0 in
  let any_progress = ref false in
  while !progress && !rounds < 1000 do
    incr rounds;
    progress := false;
    Hashtbl.iter
      (fun _ entry -> if process_device_events t entry then progress := true)
      t.devices;
    if !progress then any_progress := true
  done;
  (* Refresh the redundancy census only when this sweep actually handled
     events, so idle polls stay O(1) even with telemetry enabled. *)
  if !any_progress && Telemetry.Registry.Gauge.is_active t.tel.tel_degraded
  then begin
    let degraded = ref 0 in
    Hashtbl.iter
      (fun _ chunk ->
        let n = List.length chunk.Chunk.shares in
        if n < total_shares t && n >= read_quorum t then incr degraded)
      t.chunks;
    Telemetry.Registry.Gauge.set t.tel.tel_degraded (float_of_int !degraded);
    Telemetry.Registry.Counter.incr t.tel.tel_degraded_chunk_rounds
      ~by:!degraded;
    let live = ref 0 in
    Hashtbl.iter
      (fun _ target -> if Target.is_active target then incr live)
      t.targets;
    Telemetry.Registry.Gauge.set t.tel.tel_live_targets (float_of_int !live)
  end

(* --- client operations ------------------------------------------------------ *)

type io_error = [ `No_capacity | `Unknown_chunk | `Insufficient_shares ]

let write_share t chunk (share : Chunk.share) =
  let ok = ref true in
  (try
     for offset = 0 to share_opages t - 1 do
       let payload =
         expected_payload t chunk ~index:share.Chunk.index ~offset
       in
       match
         target_write t share.Chunk.target
           ~lba:(share.Chunk.base + offset)
           ~payload
       with
       | Ok () -> ()
       | Error `Target_failed ->
           ok := false;
           raise Exit
     done
   with Exit -> ());
  !ok

let write_chunk t id =
  let chunk =
    match Hashtbl.find_opt t.chunks id with
    | Some c -> c
    | None ->
        let c = Chunk.create ~id ~opages:t.config.chunk_opages in
        Hashtbl.replace t.chunks id c;
        c
  in
  chunk.Chunk.version <- chunk.Chunk.version + 1;
  (* Place missing shares first (fresh chunk, or after losses). *)
  let rec place () =
    match Chunk.missing_indices chunk ~total:(total_shares t) with
    | [] -> ()
    | index :: _ -> (
        match choose_target t chunk with
        | None -> ()
        | Some target -> (
            match Target.allocate target with
            | None -> ()
            | Some base ->
                Chunk.add_share chunk
                  { Chunk.index; target = target.Target.key; base };
                place ()))
  in
  place ();
  if List.length chunk.Chunk.shares < read_quorum t then Error `No_capacity
  else begin
    (* Overwrite every share with the new version; drop the ones whose
       target died under us. *)
    let survivors =
      List.filter (fun share -> write_share t chunk share) chunk.Chunk.shares
    in
    chunk.Chunk.shares <- survivors;
    process_events t;
    ignore (ensure_redundancy t chunk);
    if List.length chunk.Chunk.shares < read_quorum t then
      Error `Insufficient_shares
    else Ok ()
  end

let read_chunk t id =
  match Hashtbl.find_opt t.chunks id with
  | None -> Error `Unknown_chunk
  | Some chunk -> (
      match t.config.redundancy with
      | Replication _ ->
          let rec try_shares = function
            | [] -> Error `Insufficient_shares
            | share :: rest ->
                let matches = ref 0 in
                let readable = ref true in
                (try
                   for offset = 0 to t.config.chunk_opages - 1 do
                     match
                       target_read t share.Chunk.target
                         ~lba:(share.Chunk.base + offset)
                     with
                     | Ok payload ->
                         if
                           payload
                           = expected_payload t chunk
                               ~index:share.Chunk.index ~offset
                         then incr matches
                         else begin
                           (* Silent corruption caught on the read path:
                              repair from a healthy replica and serve the
                              verified content (Tai et al.'s live
                              recovery) — corrupt data reaches the reader
                              only when no healthy copy exists. *)
                           match
                             repair_opage ~exclude:share.Chunk.target
                               ~rewrite:
                                 ( share.Chunk.target,
                                   share.Chunk.base + offset )
                               t chunk ~index:share.Chunk.index ~offset
                           with
                           | Some _ -> incr matches
                           | None -> serve_corrupt t ~healthy:false
                         end
                     | Error `Unreadable ->
                         readable := false;
                         raise Exit
                   done
                 with Exit -> ());
                if !readable then Ok !matches else try_shares rest
          in
          try_shares chunk.Chunk.shares
      | Erasure { data_shares; _ } ->
          (* Verify the chunk's data: present data shares read directly,
             missing ones reconstruct through the decoder. *)
          let per_share = share_opages t in
          let matches = ref 0 in
          let short = ref false in
          for index = 0 to data_shares - 1 do
            for offset = 0 to per_share - 1 do
              match recover_payload ~metered:false t chunk ~index ~offset with
              | None -> short := true
              | Some payload ->
                  if payload = expected_payload t chunk ~index ~offset then
                    incr matches
                  else begin
                    (* The direct share (or a quorum member feeding the
                       decode) is silently corrupt.  Re-derive the value
                       from verified shares only; rewrite the direct copy
                       in place when one exists and serve the verified
                       content. *)
                    let rewrite =
                      Option.map
                        (fun (s : Chunk.share) ->
                          (s.Chunk.target, s.Chunk.base + offset))
                        (List.find_opt
                           (fun (s : Chunk.share) -> s.Chunk.index = index)
                           chunk.Chunk.shares)
                    in
                    match repair_opage ?rewrite t chunk ~index ~offset with
                    | Some _ -> incr matches
                    | None -> serve_corrupt t ~healthy:false
                  end
            done
          done;
          if !short then Error `Insufficient_shares else Ok !matches)

let delete_chunk t id =
  match Hashtbl.find_opt t.chunks id with
  | None -> ()
  | Some chunk ->
      List.iter
        (fun share ->
          match Hashtbl.find_opt t.targets share.Chunk.target with
          | Some target when Target.is_active target ->
              for offset = 0 to share_opages t - 1 do
                target_trim t share.Chunk.target
                  ~lba:(share.Chunk.base + offset)
              done;
              Target.release target share.Chunk.base
          | _ -> ())
        chunk.Chunk.shares;
      Hashtbl.remove t.chunks id

let repair t =
  with_recovery t @@ fun () ->
  process_events t;
  Hashtbl.iter (fun _ chunk -> ignore (ensure_redundancy t chunk)) t.chunks;
  process_events t

(* --- background scrubber --------------------------------------------------- *)

type scrub_report = {
  chunks_scanned : int;
  opages_verified : int;
  mismatches : int;
  unreadable_shares : int;
  repairs : int;
  repair_failures : int;
  skipped_backoff : int;
}

let empty_scrub_report =
  {
    chunks_scanned = 0;
    opages_verified = 0;
    mismatches = 0;
    unreadable_shares = 0;
    repairs = 0;
    repair_failures = 0;
    skipped_backoff = 0;
  }

let pp_scrub_report fmt r =
  Format.fprintf fmt
    "scanned %d chunk%s (%d oPages): %d mismatch%s, %d unreadable share%s, %d \
     repair%s, %d failure%s, %d backed off"
    r.chunks_scanned
    (if r.chunks_scanned = 1 then "" else "s")
    r.opages_verified r.mismatches
    (if r.mismatches = 1 then "" else "es")
    r.unreadable_shares
    (if r.unreadable_shares = 1 then "" else "s")
    r.repairs
    (if r.repairs = 1 then "" else "s")
    r.repair_failures
    (if r.repair_failures = 1 then "" else "s")
    r.skipped_backoff

(* One backoff step never exceeds this many sweeps. *)
let scrub_backoff_cap = 64

(* Verify one chunk share-by-share in index order.  Content mismatches on
   a live target are repaired in place (the payload is recomputable from
   the chunk's identity); a share that stops answering — or dies under
   the repair write — is dropped and rebuilt from survivors like any
   failed share.  Returns the per-chunk report slice and whether every
   needed repair landed. *)
let scrub_chunk t chunk =
  let verified = ref 0
  and mismatches = ref 0
  and unreadable = ref 0
  and repairs = ref 0
  and failures = ref 0 in
  let dead = ref [] in
  let shares =
    List.sort
      (fun a b -> compare a.Chunk.index b.Chunk.index)
      chunk.Chunk.shares
  in
  List.iter
    (fun (share : Chunk.share) ->
      let share_ok = ref true in
      (try
         for offset = 0 to share_opages t - 1 do
           let expected =
             expected_payload t chunk ~index:share.Chunk.index ~offset
           in
           match
             target_read t share.Chunk.target ~lba:(share.Chunk.base + offset)
           with
           | Ok payload ->
               incr verified;
               if payload <> expected then begin
                 incr mismatches;
                 t.scrub_mismatches <- t.scrub_mismatches + 1;
                 Telemetry.Registry.Counter.incr t.tel.tel_scrub_mismatches;
                 match
                   target_write t share.Chunk.target
                     ~lba:(share.Chunk.base + offset)
                     ~payload:expected
                 with
                 | Ok () ->
                     incr repairs;
                     t.scrub_repairs <- t.scrub_repairs + 1;
                     Telemetry.Registry.Counter.incr t.tel.tel_scrub_repairs
                 | Error `Target_failed ->
                     share_ok := false;
                     raise Exit
               end
           | Error `Unreadable ->
               share_ok := false;
               raise Exit
         done
       with Exit -> ());
      if not !share_ok then begin
        incr unreadable;
        dead := share :: !dead
      end)
    shares;
  List.iter
    (fun (share : Chunk.share) ->
      (* Unlike the target-failure paths, the share's target is still
         alive here — hand its range back (trimming the stale mapping,
         as delete_chunk does) or the allocation leaks. *)
      (match Hashtbl.find_opt t.targets share.Chunk.target with
      | Some target when Target.is_active target ->
          for offset = 0 to share_opages t - 1 do
            target_trim t share.Chunk.target ~lba:(share.Chunk.base + offset)
          done;
          Target.release target share.Chunk.base
      | _ -> ());
      let before = List.length chunk.Chunk.shares in
      Chunk.drop_share chunk share.Chunk.target;
      note_share_losses t chunk ~before;
      if rebuild_share t chunk ~index:share.Chunk.index then begin
        incr repairs;
        t.scrub_repairs <- t.scrub_repairs + 1;
        Telemetry.Registry.Counter.incr t.tel.tel_scrub_repairs
      end
      else begin
        incr failures;
        Telemetry.Registry.Counter.incr t.tel.tel_scrub_repair_failures
      end)
    (List.rev !dead);
  ( {
      chunks_scanned = 1;
      opages_verified = !verified;
      mismatches = !mismatches;
      unreadable_shares = !unreadable;
      repairs = !repairs;
      repair_failures = !failures;
      skipped_backoff = 0;
    },
    !failures = 0 )

let add_scrub_report a b =
  {
    chunks_scanned = a.chunks_scanned + b.chunks_scanned;
    opages_verified = a.opages_verified + b.opages_verified;
    mismatches = a.mismatches + b.mismatches;
    unreadable_shares = a.unreadable_shares + b.unreadable_shares;
    repairs = a.repairs + b.repairs;
    repair_failures = a.repair_failures + b.repair_failures;
    skipped_backoff = a.skipped_backoff + b.skipped_backoff;
  }

let scrub ?limit t =
  with_recovery t @@ fun () ->
  (* Settle pending failure events first so the sweep verifies the
     post-recovery state, not a target mid-death. *)
  process_events t;
  t.scrub_sweeps <- t.scrub_sweeps + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_scrub_sweeps;
  let sweep = t.scrub_sweeps in
  let ids =
    List.sort compare (Hashtbl.fold (fun id _ acc -> id :: acc) t.chunks [])
  in
  (* Resume after the cursor so a [limit]ed scrubber still covers every
     chunk across consecutive sweeps (deterministic round-robin). *)
  let ordered =
    match List.partition (fun id -> id > t.scrub_cursor) ids with
    | after, before -> after @ before
  in
  let scan =
    match limit with
    | None -> ordered
    | Some n ->
        if n < 0 then invalid_arg "Cluster.scrub: negative limit";
        let rec take n = function
          | [] -> []
          | _ when n = 0 -> []
          | id :: ids -> id :: take (n - 1) ids
        in
        take n ordered
  in
  (match (limit, List.rev scan) with
  | None, _ | _, [] -> t.scrub_cursor <- -1
  | Some _, last :: _ -> t.scrub_cursor <- last);
  let report = ref empty_scrub_report in
  List.iter
    (fun id ->
      match Hashtbl.find_opt t.chunks id with
      | None -> ()
      | Some chunk ->
          let eligible =
            match Hashtbl.find_opt t.scrub_backoff id with
            | None -> true
            | Some (_, next) -> sweep >= next
          in
          if not eligible then
            report :=
              add_scrub_report !report
                { empty_scrub_report with skipped_backoff = 1 }
          else begin
            let slice, ok = scrub_chunk t chunk in
            report := add_scrub_report !report slice;
            if ok then Hashtbl.remove t.scrub_backoff id
            else begin
              let fails =
                match Hashtbl.find_opt t.scrub_backoff id with
                | None -> 1
                | Some (f, _) -> f + 1
              in
              let delay =
                Stdlib.min scrub_backoff_cap (1 lsl Stdlib.min fails 6)
              in
              Hashtbl.replace t.scrub_backoff id (fails, sweep + delay)
            end
          end)
    scan;
  process_events t;
  !report

(* --- placement audit ------------------------------------------------------- *)

(* Structural invariants the fault-tolerance machinery must preserve no
   matter what the fault schedule does; [Faults.Verdict] folds these
   into its cluster check.  Returns human-readable violations, sorted
   for deterministic output. *)
let audit t =
  let violations = ref [] in
  let add fmt = Format.kasprintf (fun s -> violations := s :: !violations) fmt in
  let placed = Hashtbl.create 64 in
  let seen_slot = Hashtbl.create 64 in
  Hashtbl.iter
    (fun id (chunk : Chunk.t) ->
      let indices = ref [] in
      List.iter
        (fun (share : Chunk.share) ->
          indices := share.Chunk.index :: !indices;
          (match Hashtbl.find_opt t.targets share.Chunk.target with
          | None ->
              add "chunk %d share %d placed on unknown target %a" id
                share.Chunk.index Target.pp_key share.Chunk.target
          | Some target ->
              if not (Target.is_active target) then
                add "chunk %d share %d placed on failed target %a" id
                  share.Chunk.index Target.pp_key share.Chunk.target
              else
                Hashtbl.replace placed share.Chunk.target
                  (1
                  +
                  match Hashtbl.find_opt placed share.Chunk.target with
                  | None -> 0
                  | Some n -> n));
          let slot = (share.Chunk.target, share.Chunk.base) in
          (match Hashtbl.find_opt seen_slot slot with
          | Some other ->
              add "chunks %d and %d collide on target %a base %d"
                (Stdlib.min id other) (Stdlib.max id other) Target.pp_key
                share.Chunk.target share.Chunk.base
          | None -> Hashtbl.replace seen_slot slot id))
        chunk.Chunk.shares;
      let sorted = List.sort_uniq compare !indices in
      if List.length sorted <> List.length !indices then
        add "chunk %d carries duplicate share indices" id)
    t.chunks;
  Hashtbl.iter
    (fun key target ->
      if Target.is_active target then begin
        let shares =
          match Hashtbl.find_opt placed key with None -> 0 | Some n -> n
        in
        let used = Target.used_count target in
        if used <> shares then
          add "target %a has %d allocated range%s but %d share%s placed"
            Target.pp_key key used
            (if used = 1 then "" else "s")
            shares
            (if shares = 1 then "" else "s")
      end)
    t.targets;
  List.sort compare !violations

(* --- introspection ------------------------------------------------------------ *)

type health = { intact : int; degraded : int; lost : int }

let health t =
  Hashtbl.fold
    (fun _ chunk acc ->
      let n = List.length chunk.Chunk.shares in
      if n >= total_shares t then { acc with intact = acc.intact + 1 }
      else if n >= read_quorum t then { acc with degraded = acc.degraded + 1 }
      else { acc with lost = acc.lost + 1 })
    t.chunks
    { intact = 0; degraded = 0; lost = 0 }

let verify_chunk t id =
  match Hashtbl.find_opt t.chunks id with
  | None -> false
  | Some chunk ->
      List.length chunk.Chunk.shares >= read_quorum t
      && List.for_all
           (fun share ->
             let ok = ref true in
             for offset = 0 to share_opages t - 1 do
               match
                 target_read t share.Chunk.target
                   ~lba:(share.Chunk.base + offset)
               with
               | Ok payload ->
                   if
                     payload
                     <> expected_payload t chunk ~index:share.Chunk.index
                          ~offset
                   then ok := false
               | Error `Unreadable -> ok := false
             done;
             !ok)
           chunk.Chunk.shares

let chunks t = Hashtbl.fold (fun id _ acc -> id :: acc) t.chunks []

let share_count t id =
  Option.map
    (fun chunk -> List.length chunk.Chunk.shares)
    (Hashtbl.find_opt t.chunks id)

let live_targets t =
  Hashtbl.fold
    (fun _ target acc -> if Target.is_active target then acc + 1 else acc)
    t.targets 0

let total_free_ranges t =
  Hashtbl.fold (fun _ target acc -> acc + Target.free_count target) t.targets 0

let recovery_opages (t : t) = t.recovery_written
let recovery_read_opages (t : t) = t.recovery_read
let recovery_events (t : t) = t.recovery_events
let lost_chunks (t : t) = t.lost
let unrecoverable_opages (t : t) = t.unrecoverable_opages
let rebuilt_shares (t : t) = t.rebuilt
let rebuild_aborts (t : t) = t.rebuild_aborts
let kill_ignored (t : t) = t.kill_ignored
let scrub_sweeps (t : t) = t.scrub_sweeps
let scrub_mismatches (t : t) = t.scrub_mismatches
let scrub_repairs (t : t) = t.scrub_repairs
let live_repair_attempts (t : t) = t.live_repair_attempts
let live_repair_successes (t : t) = t.live_repair_successes
let live_repair_replica_reads (t : t) = t.live_repair_replica_reads
let live_repair_rewritten_opages (t : t) = t.live_repair_rewritten
let live_repair_failures (t : t) = t.live_repair_failures
let corrupt_reads_served (t : t) = t.corrupt_served
let corrupt_reads_with_replica (t : t) = t.corrupt_with_replica

let devices_alive t =
  Hashtbl.fold
    (fun _ entry acc ->
      let alive =
        (not entry.killed)
        &&
        match entry.backend with
        | Monolithic d -> Ftl.Device_intf.alive d
        | Salamander d -> Salamander.Device.alive d
      in
      if alive then acc + 1 else acc)
    t.devices 0
