(** The distributed storage system Salamander plugs into.

    A cluster owns a set of devices spread over nodes, carves each device
    into {!Target} failure domains (whole drive, or one per minidisk),
    stores every chunk redundantly — n-way replication or (k, m)
    Reed-Solomon erasure coding — with each share on a distinct device,
    and — the property the whole paper leans on — recovers from any
    target failure by rebuilding the affected shares from survivors,
    while metering how much data the recovery read and wrote.

    Failures reach the cluster through {!process_events}: Salamander
    devices announce decommissioned and regenerated minidisks, monolithic
    devices brick (baseline) or shrink (CVSS).  Handling a failure can
    itself wear flash and trigger further failures; the processing loop
    runs to a fixed point. *)

type backend =
  | Monolithic of Ftl.Device_intf.packed
      (** baseline or CVSS drive: a single failure domain *)
  | Salamander of Salamander.Device.t
      (** one failure domain per live minidisk *)

type placement =
  | Spread_devices
      (** shares of a chunk must sit on distinct devices (default) *)
  | Spread_targets
      (** distinct targets suffice — minidisks of one drive may share a
          chunk, exposing the correlated-failure risk the paper flags as
          an open question *)

type redundancy =
  | Replication of int  (** n full copies *)
  | Erasure of { data_shares : int; parity_shares : int }
      (** k data + m parity Reed-Solomon shares; any k reconstruct *)

type config = {
  redundancy : redundancy;
  chunk_opages : int;  (** chunk data size; erasure shares are 1/k of it *)
  placement : placement;
}

val default_config : config
(** 3-way replication, 16-oPage (64 KiB) chunks, [Spread_devices]. *)

val default_ec_config : config
(** (4, 2) erasure coding over 16-oPage chunks: 1.5x storage overhead
    instead of replication's 3x. *)

type t

val create : ?config:config -> ?registry:Telemetry.Registry.t -> unit -> t
(** Telemetry binds against [registry] (default: the deprecated process
    default). *)

val config : t -> config

val total_shares : t -> int
(** Shares stored per chunk: n, or k + m. *)

val read_quorum : t -> int
(** Shares needed to read/rebuild: 1, or k. *)

val share_opages : t -> int
(** oPages per share: the chunk size, or 1/k of it. *)

val storage_overhead : t -> float
(** Physical oPages stored per logical chunk oPage. *)

val add_device : t -> node:int -> backend -> int
(** Register a device; returns its cluster-wide id.  Salamander targets
    are discovered from its live minidisks. *)

(** {2 Client operations} *)

type io_error =
  [ `No_capacity  (** not enough live targets to place the chunk *)
  | `Unknown_chunk
  | `Insufficient_shares  (** fewer than the read quorum survive *) ]

val write_chunk : t -> int -> (unit, io_error) result
(** Create (first write) or overwrite (version bump) chunk [id] across
    its shares.  Device events raised by the writes are processed before
    returning. *)

val read_chunk : t -> int -> (int, io_error) result
(** Read and verify the chunk's data: the number of data oPages whose
    content matched the recorded version.  Under erasure coding, data
    shares lost since the last repair are reconstructed on the fly
    through the Reed-Solomon decoder. *)

val delete_chunk : t -> int -> unit

val process_events : t -> unit
(** Poll every device for failures/new minidisks and run recovery to a
    fixed point.  Called implicitly by {!write_chunk}; exposed for aging
    loops that wear devices directly. *)

val kill_device : t -> int -> unit
(** Failure injection: declare a device dead regardless of its media state
    (controller/DRAM/firmware failures — the ~1% AFR class the field
    studies report).  All its targets fail and recovery runs immediately.
    Unknown or already-failed ids are ignored. *)

val is_device_killed : t -> int -> bool

val repair : t -> unit
(** Try to bring under-redundant chunks back to full share counts (e.g.
    after capacity freed up or new minidisks appeared). *)

(** {2 Introspection} *)

type health = { intact : int; degraded : int; lost : int }

val health : t -> health
(** Chunks at full redundancy / below it but still readable / below the
    read quorum (unrecoverable). *)

val verify_chunk : t -> int -> bool
(** Strong check: every stored share matches the recorded version. *)

val chunks : t -> int list
val live_targets : t -> int
val total_free_ranges : t -> int

val recovery_opages : t -> int
(** oPages *written* by failure recovery: the §4.3 re-replication
    volume. *)

val recovery_read_opages : t -> int
(** oPages *read* to feed recovery — under erasure coding each rebuilt
    share reads k surviving shares, the classic EC repair
    amplification. *)

val recovery_events : t -> int
(** Target failures handled. *)

val lost_chunks : t -> int
val devices_alive : t -> int
