(** The distributed storage system Salamander plugs into.

    A cluster owns a set of devices spread over nodes, carves each device
    into {!Target} failure domains (whole drive, or one per minidisk),
    stores every chunk redundantly — n-way replication or (k, m)
    Reed-Solomon erasure coding — with each share on a distinct device,
    and — the property the whole paper leans on — recovers from any
    target failure by rebuilding the affected shares from survivors,
    while metering how much data the recovery read and wrote.

    Failures reach the cluster through {!process_events}: Salamander
    devices announce decommissioned and regenerated minidisks, monolithic
    devices brick (baseline) or shrink (CVSS).  Handling a failure can
    itself wear flash and trigger further failures; the processing loop
    runs to a fixed point. *)

type backend =
  | Monolithic of Ftl.Device_intf.packed
      (** baseline or CVSS drive: a single failure domain *)
  | Salamander of Salamander.Device.t
      (** one failure domain per live minidisk *)

type placement =
  | Spread_devices
      (** shares of a chunk must sit on distinct devices (default) *)
  | Spread_targets
      (** distinct targets suffice — minidisks of one drive may share a
          chunk, exposing the correlated-failure risk the paper flags as
          an open question *)

type redundancy =
  | Replication of int  (** n full copies *)
  | Erasure of { data_shares : int; parity_shares : int }
      (** k data + m parity Reed-Solomon shares; any k reconstruct *)

type config = {
  redundancy : redundancy;
  chunk_opages : int;  (** chunk data size; erasure shares are 1/k of it *)
  placement : placement;
}

val default_config : config
(** 3-way replication, 16-oPage (64 KiB) chunks, [Spread_devices]. *)

val default_ec_config : config
(** (4, 2) erasure coding over 16-oPage chunks: 1.5x storage overhead
    instead of replication's 3x. *)

type t

val create : ?config:config -> ?registry:Telemetry.Registry.t -> unit -> t
(** Telemetry binds against [registry] (default:
    {!Telemetry.Registry.null}, i.e. inert). *)

val config : t -> config

val total_shares : t -> int
(** Shares stored per chunk: n, or k + m. *)

val read_quorum : t -> int
(** Shares needed to read/rebuild: 1, or k. *)

val share_opages : t -> int
(** oPages per share: the chunk size, or 1/k of it. *)

val storage_overhead : t -> float
(** Physical oPages stored per logical chunk oPage. *)

val add_device : t -> node:int -> backend -> int
(** Register a device; returns its cluster-wide id.  Salamander targets
    are discovered from its live minidisks. *)

(** {2 Client operations} *)

type io_error =
  [ `No_capacity  (** not enough live targets to place the chunk *)
  | `Unknown_chunk
  | `Insufficient_shares  (** fewer than the read quorum survive *) ]

val write_chunk : t -> int -> (unit, io_error) result
(** Create (first write) or overwrite (version bump) chunk [id] across
    its shares.  Device events raised by the writes are processed before
    returning. *)

val read_chunk : t -> int -> (int, io_error) result
(** Read and verify the chunk's data: the number of data oPages whose
    content matched the recorded version.  Under erasure coding, data
    shares lost since the last repair are reconstructed on the fly
    through the Reed-Solomon decoder. *)

val delete_chunk : t -> int -> unit

val process_events : t -> unit
(** Poll every device for failures/new minidisks and run recovery to a
    fixed point.  Called implicitly by {!write_chunk}; exposed for aging
    loops that wear devices directly. *)

val kill_device : t -> int -> unit
(** Failure injection: declare a device dead regardless of its media state
    (controller/DRAM/firmware failures — the ~1% AFR class the field
    studies report).  All its targets fail and recovery runs immediately.

    Edge semantics: a kill of an unknown id, a second kill of an
    already-killed device, or a kill arriving while a recovery span
    (failure handling, drain, truncation, {!repair}, {!scrub}) is
    mid-flight is a strict no-op — no target state changes — that bumps
    the [difs_kill_ignored_total] counter (also {!kill_ignored}) instead
    of silently diverging.  Callers injecting faults should re-issue the
    kill after the recovery span completes if they still want the device
    dead. *)

val kill_ignored : t -> int
(** kill_device calls ignored per the edge semantics above. *)

val is_device_killed : t -> int -> bool

val repair : t -> unit
(** Try to bring under-redundant chunks back to full share counts (e.g.
    after capacity freed up or new minidisks appeared). *)

(** {2 Foreground live repair}

    The read-path half of the corruption story (Tai et al.'s live
    recovery): instead of waiting for a background scrub to sweep across
    the damage, corruptions detected while serving a read are repaired
    in place from cluster redundancy, and reads whose device-level retry
    ladder exhausts escalate into the same path before the host ever
    sees [`Uncorrectable].

    Two invariants fall out, both checked by [Faults.Verdict]: no read
    returns corrupt data while a healthy replica exists
    ([difs_corrupt_reads_with_replica_total] stays 0), and when no
    healthy share answers the read degrades to today's unrecoverable
    outcome without wedging the pool. *)

val recover_opage : ?mdisk:int -> t -> device:int -> lba:int -> int option
(** Foreground-repair the oPage at (device, mdisk?, lba): locate the
    owning chunk, reconstruct the content from a healthy replica (or a
    verified EC quorum), rewrite the failing copy through the normal FTL
    write path — so wear accounting and GC see the traffic — and return
    the payload.  [None] when no chunk owns the address, no healthy
    source exists, or the call is a nested escalation from a repair
    already in flight.  Runs as a recovery span: {!kill_device} calls
    landing mid-repair are counted no-ops, like any other recovery. *)

val enable_live_repair : ?config:Ftl.Engine.recovery_config -> t -> unit
(** Arm every registered device's read-recovery hook to escalate into
    {!recover_opage}.  [config] sets the per-read attempt bound and the
    exponential backoff budget (default
    {!Ftl.Engine.default_recovery}).  Devices added after this call are
    not armed; call again to cover them. *)

val live_repair_attempts : t -> int
val live_repair_successes : t -> int

val live_repair_replica_reads : t -> int
(** Replica/share reads consumed hunting for a healthy source. *)

val live_repair_rewritten_opages : t -> int
(** Damaged copies rewritten in place through the normal write path. *)

val live_repair_failures : t -> int
(** Repairs that degraded to the unrecoverable outcome. *)

val corrupt_reads_served : t -> int
(** Corrupt oPages handed to a reader because no healthy replica
    existed (legal degraded service). *)

val corrupt_reads_with_replica : t -> int
(** Corrupt oPages handed to a reader while a healthy replica existed —
    the live-repair invariant; must stay 0. *)

(** {2 Background scrubbing}

    The tolerance half of the silent-corruption story: faults that raise
    no error at read time (a flipped payload below the ECC's radar) are
    only caught by re-verifying stored content against what the chunk
    should contain.  The scrubber sweeps chunks in id order, reads every
    share, repairs bad oPages in place on live targets, and treats shares
    that stop answering like failed shares — drop and rebuild from
    survivors.  Chunks whose repair keeps failing (no spare capacity, too
    few survivors) back off exponentially (up to 64 sweeps) so a stuck
    chunk cannot monopolize every sweep. *)

type scrub_report = {
  chunks_scanned : int;
  opages_verified : int;  (** oPages read and compared *)
  mismatches : int;  (** content that failed verification *)
  unreadable_shares : int;  (** shares dropped and rebuilt *)
  repairs : int;  (** in-place rewrites + share rebuilds that landed *)
  repair_failures : int;  (** rebuilds that found no destination *)
  skipped_backoff : int;  (** chunks skipped while backing off *)
}

val scrub : ?limit:int -> t -> scrub_report
(** Run one scrub sweep.  [limit] caps the chunks scanned this sweep; a
    limited scrubber resumes after the last scanned chunk on the next
    sweep (deterministic round-robin), so every chunk is still covered.
    Pending device events are processed before and after the sweep.
    Progress is exported through [difs_scrub_sweeps_total],
    [difs_scrub_mismatches_total] and [difs_scrub_repairs_total]. *)

val pp_scrub_report : Format.formatter -> scrub_report -> unit

val scrub_sweeps : t -> int
val scrub_mismatches : t -> int
val scrub_repairs : t -> int

val audit : t -> string list
(** Structural placement invariants, for the chaos verdict: every share
    sits on a known active target, no two shares occupy the same
    (target, base) range, no chunk carries duplicate share indices, and
    each active target's allocated range count equals the shares placed
    on it.  Returns human-readable violations (empty = clean), sorted
    for deterministic output. *)

(** {2 Introspection} *)

type health = { intact : int; degraded : int; lost : int }

val health : t -> health
(** Chunks at full redundancy / below it but still readable / below the
    read quorum (unrecoverable). *)

val verify_chunk : t -> int -> bool
(** Strong check: every stored share matches the recorded version. *)

val chunks : t -> int list

val share_count : t -> int -> int option
(** Shares currently held by chunk [id] ([None] for unknown chunks); the
    chaos verdict compares this against the read quorum. *)

val live_targets : t -> int
val total_free_ranges : t -> int

val recovery_opages : t -> int
(** oPages *written* by failure recovery: the §4.3 re-replication
    volume. *)

val recovery_read_opages : t -> int
(** oPages *read* to feed recovery — under erasure coding each rebuilt
    share reads k surviving shares, the classic EC repair
    amplification. *)

val recovery_events : t -> int
(** Target failures handled. *)

val lost_chunks : t -> int

val unrecoverable_opages : t -> int
(** oPages recovery could not reconstruct (fewer than quorum survivors
    answered while rebuilding a share). *)

val rebuilt_shares : t -> int
(** Shares successfully re-materialized on a fresh target.  Recovery
    accounting balances as
    [recovery_opages + unrecoverable_opages >= rebuilt_shares *
    share_opages], with equality when no rebuild was aborted mid-copy
    (see {!rebuild_aborts}). *)

val rebuild_aborts : t -> int
(** Rebuild attempts abandoned because the destination target died
    mid-copy (their partial writes are still metered in
    {!recovery_opages}). *)

val devices_alive : t -> int
