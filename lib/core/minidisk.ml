type state = Active | Draining | Decommissioned

type t = {
  id : int;
  slot : int;
  opages : int;
  birth_level : int;
  mutable state : state;
}

module Registry = struct
  type mdisk = t

  type t = {
    opages_per_mdisk : int;
    slots : int;
    by_id : (int, mdisk) Hashtbl.t;
    mutable free_slots : int list;
    mutable next_id : int;
    mutable active : int;
    mutable created : int;
    mutable decommissioned : int;
    mutable generation : int;
        (* bumped on every membership/state mutation; lets callers cache
           derived views of the active set (the bulk-aging stream's
           LBA-translation table) and rebuild only when stale *)
  }

  let create ~opages_per_mdisk ~slots =
    if opages_per_mdisk <= 0 then
      invalid_arg "Minidisk.Registry.create: opages_per_mdisk";
    if slots <= 0 then invalid_arg "Minidisk.Registry.create: slots";
    {
      opages_per_mdisk;
      slots;
      by_id = Hashtbl.create 64;
      free_slots = List.init slots Fun.id;
      next_id = 0;
      active = 0;
      created = 0;
      decommissioned = 0;
      generation = 0;
    }

  let opages_per_mdisk t = t.opages_per_mdisk

  let create_mdisk t ~birth_level =
    match t.free_slots with
    | [] -> None
    | slot :: rest ->
        t.free_slots <- rest;
        let mdisk =
          {
            id = t.next_id;
            slot;
            opages = t.opages_per_mdisk;
            birth_level;
            state = Active;
          }
        in
        t.next_id <- t.next_id + 1;
        t.active <- t.active + 1;
        t.created <- t.created + 1;
        t.generation <- t.generation + 1;
        Hashtbl.add t.by_id mdisk.id mdisk;
        Some mdisk

  let decommission t id =
    match Hashtbl.find_opt t.by_id id with
    | None -> raise Not_found
    | Some mdisk ->
        (match mdisk.state with
        | Decommissioned ->
            invalid_arg
              "Minidisk.Registry.decommission: already decommissioned"
        | Active -> t.active <- t.active - 1
        | Draining -> ());
        mdisk.state <- Decommissioned;
        t.free_slots <- mdisk.slot :: t.free_slots;
        t.decommissioned <- t.decommissioned + 1;
        t.generation <- t.generation + 1;
        mdisk

  let begin_drain t id =
    match Hashtbl.find_opt t.by_id id with
    | None -> raise Not_found
    | Some mdisk ->
        if mdisk.state <> Active then
          invalid_arg "Minidisk.Registry.begin_drain: not active";
        mdisk.state <- Draining;
        t.active <- t.active - 1;
        t.generation <- t.generation + 1;
        mdisk

  let draining t =
    Hashtbl.fold
      (fun _ mdisk acc -> if mdisk.state = Draining then mdisk :: acc else acc)
      t.by_id []
    |> List.sort (fun a b -> compare a.id b.id)

  let find t id = Hashtbl.find_opt t.by_id id

  let active t =
    Hashtbl.fold
      (fun _ mdisk acc -> if mdisk.state = Active then mdisk :: acc else acc)
      t.by_id []
    |> List.sort (fun a b -> compare a.id b.id)

  let active_count t = t.active
  let generation t = t.generation
  let active_opages t = t.active * t.opages_per_mdisk
  let created_total t = t.created
  let decommissioned_total t = t.decommissioned

  let engine_logical t mdisk ~lba =
    if lba < 0 || lba >= mdisk.opages then
      invalid_arg "Minidisk: LBA outside minidisk";
    (mdisk.slot * t.opages_per_mdisk) + lba
end
