(** The Salamander SSD (§3): an FTL that exposes minidisks, shrinks by
    decommissioning them as flash wears (ShrinkS), and optionally
    regenerates capacity by repurposing data oPages of tired pages as
    extra ECC (RegenS).

    Life cycle of a page under RegenS: it starts at tiredness L0; each
    block erase re-evaluates its raw bit-error rate against the level
    table; when the L0 code can no longer protect it, the page transitions
    to L1 (three data oPages + one repurposed for ECC), and so on until the
    configured [max_level], beyond which it is dead.  Every transition
    shrinks the device's physical data capacity; when Eq. 2 detects that
    the capacity (with over-provisioning headroom) no longer covers the
    exported LBAs, the device picks the emptiest minidisk, relocates data
    off the most worn pages, drops the victim's LBAs and notifies the host
    (ShrinkS).  Conversely, when tired-but-alive pages accumulate enough
    slack, RegenS mints a brand-new minidisk and announces it. *)

type mode = Shrink_s | Regen_s

type config = {
  mode : mode;
  mdisk_opages : int;  (** mSize in oPages; 256 = 1 MiB with 4 KiB oPages *)
  over_provisioning : float;  (** initial OP fraction (default 0.07) *)
  decommission_headroom : float;
      (** Eq. 2 margin: decommission when physical data slots fall below
          [headroom * exported LBAs] (default 1.05) *)
  regen_headroom : float;
      (** regenerate a minidisk only when slots exceed
          [headroom * (LBAs + mSize)] — hysteresis just above the
          decommission threshold (default 1.06) *)
  max_level : int;  (** highest usable tiredness level in RegenS
                        (default 1, the paper's recommendation) *)
  scrub_on_decommission : bool;
      (** §3.3's proactive retirement: on each decommissioning, relocate
          data off the mSize-worth of most worn fPages and advance their
          tiredness level (default true; disabling it leaves pages to
          transition only when natural wear crosses their threshold) *)
  decommission_grace : bool;
      (** §4.3's grace period (the paper's future work, implemented here):
          instead of dropping a victim minidisk immediately, announce
          [Mdisk_retiring] and keep its data readable until the host calls
          {!acknowledge_decommission}; an out-of-space emergency overrides
          the grace and reclaims immediately (default false) *)
}

val default_config : config
(** RegenS, 1 MiB minidisks, the paper's parameters. *)

val shrink_config : config
(** Same but [mode = Shrink_s]. *)

type t

val create :
  ?config:config ->
  ?registry:Telemetry.Registry.t ->
  geometry:Flash.Geometry.t ->
  model:Flash.Rber_model.t ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** Telemetry (device, chip and engine metrics plus trace events) binds
    against [registry]; omitting it falls back to
    {!Telemetry.Registry.null}, i.e. inert.
    @raise Invalid_argument if a minidisk does not fit the geometry or the
    headroom parameters are not [>= 1] with
    [regen_headroom > decommission_headroom]. *)

(** {2 I/O at minidisk granularity} *)

type write_error = [ `Dead | `Unknown_mdisk | `No_space ]
type read_error = [ `Dead | `Unknown_mdisk | `Unmapped | `Uncorrectable ]

val write :
  t -> mdisk:int -> lba:int -> payload:int -> (unit, write_error) result
(** Write one oPage to a minidisk-relative LBA.
    @raise Invalid_argument if [lba] is outside the minidisk. *)

val read : t -> mdisk:int -> lba:int -> (int, read_error) result
(** Reads are also served from minidisks in their decommissioning grace
    period (state [Draining]). *)

val trim : t -> mdisk:int -> lba:int -> unit

val set_recovery_hook :
  t ->
  ?config:Ftl.Engine.recovery_config ->
  (mdisk:int -> lba:int -> int option) option ->
  unit
(** Install (or clear) a read-recovery escalation hook keyed by
    (minidisk, minidisk-relative LBA); see {!Ftl.Engine.set_recovery_hook}
    for the attempt/backoff semantics.  Escalations on minidisks that no
    longer exist (decommissioned mid-flight) degrade to [`Uncorrectable]
    without invoking the hook. *)

val acknowledge_decommission : t -> mdisk:int -> unit
(** Host acknowledgement that a [Mdisk_retiring] minidisk's data has been
    re-replicated: its LBAs are dropped, the space reclaimed, and
    [Mdisk_decommissioned] is emitted.  No-op for unknown or non-draining
    minidisks. *)

val flush : t -> unit
(** Drain the write buffer (padding the last fPage). *)

val poll_events : t -> Events.t list
(** Notifications since the last poll, oldest first. *)

(** {2 State} *)

val alive : t -> bool
val mode : t -> mode
val config : t -> config
val profile : t -> Tiredness.t
val engine : t -> Ftl.Engine.t
val limbo : t -> Limbo.t
val registry : t -> Minidisk.Registry.t

val active_mdisks : t -> Minidisk.t list
val active_opages : t -> int
(** Exported LBAs across live minidisks: |LBAs| of Eq. 2. *)

val total_data_opages : t -> int
(** Physical data slots under current tiredness levels. *)

val level_of_page : t -> block:int -> page:int -> int
val level_census : t -> int array
(** Page counts per level, index = level (a copy). *)

val decommissions : t -> int
val regenerations : t -> int
val host_writes : t -> int
val write_amplification : t -> float

val force_page_level : t -> block:int -> page:int -> level:int -> unit
(** Push a page to a higher tiredness level immediately, relocating any
    live data off it first — the same motion §3.3's proactive retirement
    performs, exposed so experiments can prepare a device with a chosen
    L1 population (Figs. 3c/3d).
    @raise Invalid_argument if [level] is not above the page's current
    level or exceeds the profile's dead level. *)

(** {2 Flat-LBA adapter}

    Concatenates the live minidisks' LBA spaces so fleet experiments can
    drive Salamander devices through the common {!Ftl.Device_intf.S}
    signature.  The flat index of a given page moves when minidisks come
    and go; aging workloads don't care, but the diFS uses the native API
    instead. *)

module As_device : Ftl.Device_intf.S with type t = t

val pack : t -> Ftl.Device_intf.packed
