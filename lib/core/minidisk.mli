(** Minidisk metadata (§3.2).

    A minidisk is purely a logical construct: a small, independently
    addressable LBA space whose pages may live anywhere on flash.  The
    device keeps a registry mapping minidisk ids (monotonic, never reused)
    to {e slots} — disjoint windows of the FTL engine's flat logical
    space, which are recycled as minidisks come and go. *)

type state =
  | Active
  | Draining
      (** decommissioning announced but data retained read-only until the
          diFS acknowledges re-replication (§4.3's grace period) *)
  | Decommissioned  (** retired; its LBAs are gone *)

type t = private {
  id : int;
  slot : int;  (** index of the engine-logical window backing this mDisk *)
  opages : int;  (** LBA count (mSize / oPage size) *)
  birth_level : int;  (** tiredness level prevailing when created; 0 for
                          factory minidisks, >0 for regenerated ones *)
  mutable state : state;
}

(** Registry of every minidisk a device has ever exposed. *)
module Registry : sig
  type mdisk = t
  type t

  val create : opages_per_mdisk:int -> slots:int -> t
  (** [slots] bounds how many minidisks can be live at once (total engine
      logical space / mSize). *)

  val opages_per_mdisk : t -> int

  val create_mdisk : t -> birth_level:int -> mdisk option
  (** Allocate a fresh minidisk in a free slot; [None] when every slot is
      occupied. *)

  val decommission : t -> int -> mdisk
  (** Retire a minidisk by id (from [Active] or [Draining]), freeing its
      slot for later reuse.
      @raise Not_found for an unknown id.
      @raise Invalid_argument if it is already decommissioned. *)

  val begin_drain : t -> int -> mdisk
  (** Move an [Active] minidisk to [Draining]: it stops counting toward
      exported LBAs and accepts no writes, but its slot (and data) are
      retained until {!decommission} completes the retirement.
      @raise Not_found for an unknown id.
      @raise Invalid_argument unless it is [Active]. *)

  val draining : t -> mdisk list

  val find : t -> int -> mdisk option
  val active : t -> mdisk list
  (** Live minidisks, in increasing id order. *)

  val active_count : t -> int

  val generation : t -> int
  (** Monotone counter bumped by every membership/state mutation
      ({!create_mdisk}, {!begin_drain}, {!decommission}).  Callers that
      derive views of the active set — the bulk-aging stream caches its
      LBA-translation arrays — compare generations instead of rebuilding
      per use. *)

  val active_opages : t -> int
  (** Total LBAs currently exported: |LBAs| in Eq. 2. *)

  val created_total : t -> int
  val decommissioned_total : t -> int

  val engine_logical : t -> mdisk -> lba:int -> int
  (** Translate a minidisk-relative LBA to the engine's flat index: the
      <i, j> indexing of §3.2.
      @raise Invalid_argument if [lba] is outside the minidisk. *)
end
