type mode = Shrink_s | Regen_s

type config = {
  mode : mode;
  mdisk_opages : int;
  over_provisioning : float;
  decommission_headroom : float;
  regen_headroom : float;
  max_level : int;
  scrub_on_decommission : bool;
  decommission_grace : bool;
}

let default_config =
  {
    mode = Regen_s;
    mdisk_opages = 256;
    over_provisioning = 0.07;
    decommission_headroom = 1.05;
    regen_headroom = 1.06;
    max_level = 1;
    scrub_on_decommission = true;
    decommission_grace = false;
  }

let shrink_config = { default_config with mode = Shrink_s }

(* Telemetry handles, bound at device creation.  Per-level metrics are
   arrays indexed by tiredness level (0 .. dead_level) with a
   [level="Lj"] label; [tel_rng] is a private fixed-seed stream used
   only to sample observational quantities (raw bit-error counts), so
   enabling telemetry never perturbs the simulation's own RNG streams. *)
type tel = {
  tel_registry : Telemetry.Registry.t;
  tel_decommissions : Telemetry.Registry.Counter.t;
  tel_urgent_decommissions : Telemetry.Registry.Counter.t;
  tel_regenerations : Telemetry.Registry.Counter.t;
  tel_transitions : Telemetry.Registry.Counter.t array; (* by to_level *)
  tel_limbo : Telemetry.Registry.Gauge.t array; (* fPages per level *)
  tel_decode_attempts : Telemetry.Registry.Counter.t array;
  tel_corrected_bits : Telemetry.Registry.Counter.t array;
  tel_uncorrectable : Telemetry.Registry.Counter.t array;
  tel_active_mdisks : Telemetry.Registry.Gauge.t;
  tel_exported_opages : Telemetry.Registry.Gauge.t;
  tel_grace_writes : Telemetry.Registry.Histogram.t;
  tel_rng : Sim.Rng.t;
  drain_started : (int, int) Hashtbl.t; (* mdisk id -> host_writes *)
}

let level_label level = [ ("level", Printf.sprintf "L%d" level) ]

let make_tel registry profile mode =
  let dead = Tiredness.dead_level profile in
  let mode_label =
    [ ("mode", match mode with Shrink_s -> "shrinks" | Regen_s -> "regens") ]
  in
  let per_level name help =
    Array.init (dead + 1) (fun level ->
        Telemetry.Registry.counter registry ~help ~labels:(level_label level)
          name)
  in
  {
    tel_registry = registry;
    tel_decommissions =
      Telemetry.Registry.counter registry ~labels:mode_label
        ~help:"Minidisks decommissioned (ShrinkS)"
        "salamander_decommissions_total";
    tel_urgent_decommissions =
      Telemetry.Registry.counter registry ~labels:mode_label
        ~help:"Decommissions forced by an out-of-space emergency"
        "salamander_urgent_decommissions_total";
    tel_regenerations =
      Telemetry.Registry.counter registry ~labels:mode_label
        ~help:"Minidisks regenerated from tired capacity (RegenS)"
        "salamander_regenerations_total";
    tel_transitions =
      per_level "salamander_level_transitions_total"
        "fPage tiredness transitions into each level";
    tel_limbo =
      Array.init (dead + 1) (fun level ->
          Telemetry.Registry.gauge registry ~labels:(level_label level)
            ~help:"fPages currently at each tiredness level (limbo census)"
            "salamander_limbo_fpages");
    tel_decode_attempts =
      per_level "ecc_decode_attempts_total"
        "oPage reads decoded at each tiredness level's code";
    tel_corrected_bits =
      per_level "ecc_corrected_bits_total"
        "Raw bit errors corrected by each level's code (sampled)";
    tel_uncorrectable =
      per_level "ecc_uncorrectable_total"
        "Reads that exceeded each level's correction capability";
    tel_active_mdisks =
      Telemetry.Registry.gauge registry ~help:"Live exported minidisks"
        "salamander_active_mdisks";
    tel_exported_opages =
      Telemetry.Registry.gauge registry ~help:"Exported LBAs in oPages"
        "salamander_exported_opages";
    tel_grace_writes =
      Telemetry.Registry.histogram registry
        ~help:
          "Host writes elapsed between Mdisk_retiring and its \
           acknowledgement (grace-period duration)"
        ~lo:0. ~hi:100_000. "salamander_grace_duration_writes";
    tel_rng = Sim.Rng.create 0x7e1e7e1;
    drain_started = Hashtbl.create 8;
  }

(* Move one fPage between limbo levels, mirroring the census into the
   per-level metrics. *)
let transition_with limbo tel ~from_level ~to_level =
  Limbo.transition limbo ~from_level ~to_level;
  Telemetry.Registry.Counter.incr tel.tel_transitions.(to_level);
  if Telemetry.Registry.Gauge.is_active tel.tel_limbo.(from_level) then begin
    Telemetry.Registry.Gauge.set tel.tel_limbo.(from_level)
      (float_of_int (Limbo.count limbo ~level:from_level));
    Telemetry.Registry.Gauge.set tel.tel_limbo.(to_level)
      (float_of_int (Limbo.count limbo ~level:to_level))
  end

type t = {
  config : config;
  geometry : Flash.Geometry.t;
  profile : Tiredness.t;
  chip : Flash.Chip.t;
  engine : Ftl.Engine.t;
  limbo : Limbo.t;
  registry : Minidisk.Registry.t;
  events : Events.Queue.t;
  levels : int array; (* tiredness per fPage, indexed block*ppb + page *)
  pending_check : bool ref;
      (* set by the erase hook (which outlives [create]'s scope), consumed
         by [maintain] once the engine call that triggered it returns *)
  initial_mdisks : int;
  tel : tel;
  mutable dead : bool;
  mutable decommissions : int;
  mutable regenerations : int;
  (* Bulk-aging stream cache: the active-minidisk array and its
     slot-base table, valid while [stream_gen] matches the registry's
     generation.  The per-op path deliberately does not use it — it is
     the retained oracle and stays byte-for-byte the code it always
     was. *)
  mutable stream_gen : int;
  mutable stream_mdisks : Minidisk.t array;
  mutable stream_base : int array;
}

type write_error = [ `Dead | `Unknown_mdisk | `No_space ]
type read_error = [ `Dead | `Unknown_mdisk | `Unmapped | `Uncorrectable ]

let page_index geometry ~block ~page =
  (block * geometry.Flash.Geometry.pages_per_block) + page

let create ?(config = default_config) ?registry ~geometry ~model ~rng () =
  let tel_registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  if config.mdisk_opages <= 0 then invalid_arg "Device.create: mdisk_opages";
  if config.decommission_headroom < 1. then
    invalid_arg "Device.create: decommission_headroom must be >= 1";
  if config.regen_headroom <= config.decommission_headroom then
    invalid_arg "Device.create: regen_headroom must exceed decommission_headroom";
  let max_level = match config.mode with Shrink_s -> 0 | Regen_s -> config.max_level in
  let profile = Tiredness.profile ~max_level geometry in
  let chip =
    Flash.Chip.create ~registry:tel_registry ~rng:(Sim.Rng.split rng) ~geometry
      ~model ()
  in
  let levels = Array.make (Flash.Geometry.fpages geometry) 0 in
  let limbo = Limbo.create profile in
  let total_opages = Flash.Geometry.total_opages geometry in
  let slots = total_opages / config.mdisk_opages in
  if slots = 0 then invalid_arg "Device.create: minidisk larger than device";
  let registry =
    Minidisk.Registry.create ~opages_per_mdisk:config.mdisk_opages ~slots
  in
  let pending_check = ref false in
  let tel = make_tel tel_registry profile config.mode in
  (* Health-monitor input: the deepest tiredness level's code sets the
     RBER ceiling this device can ever correct past. *)
  Telemetry.Registry.Gauge.set
    (Telemetry.Registry.gauge tel_registry
       ~help:"Highest RBER the device's strongest code corrects"
       "device_tolerable_rber")
    (Tiredness.info profile (Tiredness.max_level profile)).Tiredness.tolerable_rber;
  let policy =
    {
      Ftl.Policy.data_slots =
        (fun ~block ~page ->
          Tiredness.data_slots profile
            levels.(page_index geometry ~block ~page));
      read_fail_prob =
        (fun ~rber ~block ~page ->
          let level = levels.(page_index geometry ~block ~page) in
          (* Per-level ECC decode metering.  Corrected bits are sampled
             from the binomial raw-error count over the codewords one
             oPage read decodes; the rare reads that turn out
             uncorrectable are metered separately, so this slightly
             overcounts corrected bits — by less than the residual UBER. *)
          Telemetry.Registry.Counter.incr tel.tel_decode_attempts.(level);
          (if Telemetry.Registry.Counter.is_active tel.tel_corrected_bits.(level)
           then
             match (Tiredness.info profile level).Tiredness.params with
             | Some params ->
                 let n =
                   params.Ecc.Code_params.n_bits
                   * geometry.Flash.Geometry.codewords_per_opage
                 in
                 Telemetry.Registry.Counter.incr
                   tel.tel_corrected_bits.(level)
                   ~by:(Sim.Dist.binomial tel.tel_rng ~n ~p:rber)
             | None -> ());
          Tiredness.read_fail_prob profile ~level ~rber);
      should_reclaim =
        (fun ~rber ~block ~page ->
          (* read-reclaim against the page's own level threshold *)
          let level = levels.(page_index geometry ~block ~page) in
          let info = Tiredness.info profile level in
          info.Tiredness.tolerable_rber > 0.
          && rber > 0.9 *. info.Tiredness.tolerable_rber);
      on_block_erased = (fun ~block:_ -> ());
    }
  in
  let engine =
    Ftl.Engine.create ~registry:tel_registry ~chip ~rng:(Sim.Rng.split rng)
      ~policy ~logical_capacity:(slots * config.mdisk_opages) ()
  in
  (* Tiredness transitions happen at erase time, when the block's pages
     are about to be reused at their new wear level (§3.1). *)
  policy.Ftl.Policy.on_block_erased <-
    (fun ~block ->
      for page = 0 to geometry.Flash.Geometry.pages_per_block - 1 do
        let index = page_index geometry ~block ~page in
        let current = levels.(index) in
        if current < Tiredness.dead_level profile then begin
          let rber = Flash.Chip.rber chip ~block ~page in
          let required = Tiredness.level_for_rber profile ~rber in
          if required > current then begin
            transition_with limbo tel ~from_level:current ~to_level:required;
            levels.(index) <- required;
            pending_check := true
          end
        end
      done);
  (* Expose the initial fleet of minidisks, leaving over-provisioning
     unexported. *)
  let initial =
    Stdlib.min slots
      (int_of_float
         (float_of_int total_opages *. (1. -. config.over_provisioning))
      / config.mdisk_opages)
  in
  for _ = 1 to initial do
    ignore (Minidisk.Registry.create_mdisk registry ~birth_level:0)
  done;
  if Telemetry.Registry.Gauge.is_active tel.tel_active_mdisks then begin
    Telemetry.Registry.Gauge.set tel.tel_limbo.(0)
      (float_of_int (Limbo.count limbo ~level:0));
    Telemetry.Registry.Gauge.set tel.tel_active_mdisks (float_of_int initial);
    Telemetry.Registry.Gauge.set tel.tel_exported_opages
      (float_of_int (Minidisk.Registry.active_opages registry))
  end;
  {
    config;
    geometry;
    profile;
    chip;
    engine;
    limbo;
    registry;
    events = Events.Queue.create ();
    levels;
    pending_check;
    initial_mdisks = initial;
    tel;
    dead = false;
    decommissions = 0;
    regenerations = 0;
    stream_gen = -1;
    stream_mdisks = [||];
    stream_base = [||];
  }

(* --- decommissioning and regeneration ---------------------------------- *)

let refresh_export_gauges t =
  if Telemetry.Registry.Gauge.is_active t.tel.tel_active_mdisks then begin
    Telemetry.Registry.Gauge.set t.tel.tel_active_mdisks
      (float_of_int (Minidisk.Registry.active_count t.registry));
    Telemetry.Registry.Gauge.set t.tel.tel_exported_opages
      (float_of_int (Minidisk.Registry.active_opages t.registry))
  end

(* The emptiest minidisk loses least data to re-replication; ties go to
   the oldest id for determinism. *)
let pick_victim t =
  let mdisk_live mdisk =
    Ftl.Engine.mapped_in_range t.engine
      ~lo:(mdisk.Minidisk.slot * t.config.mdisk_opages)
      ~len:t.config.mdisk_opages
  in
  match Minidisk.Registry.active t.registry with
  | [] -> None
  | first :: rest ->
      let best, best_live =
        List.fold_left
          (fun (best, best_live) mdisk ->
            let live = mdisk_live mdisk in
            if live < best_live then (mdisk, live) else (best, best_live))
          (first, mdisk_live first) rest
      in
      Some (best, best_live)

(* §3.3: when a minidisk is decommissioned, the SSD preemptively retires
   the most worn-out fPages — regardless of which minidisk their data
   belongs to — relocating live oPages to less worn flash and advancing
   each retired page's tiredness level.  An mSize worth of oPages is
   retired per decommissioning.  In ShrinkS (max level 0) retirement kills
   the page outright; in RegenS it moves the page to the next level, where
   most of its capacity remains usable — the source of the "available but
   not used" oPages that later regenerate into new minidisks (§3.4). *)
let retire_worn_pages t ~budget =
  let candidates = ref [] in
  for block = 0 to t.geometry.Flash.Geometry.blocks - 1 do
    for page = 0 to t.geometry.Flash.Geometry.pages_per_block - 1 do
      let level = t.levels.(page_index t.geometry ~block ~page) in
      if level < Tiredness.dead_level t.profile then
        candidates :=
          (Flash.Chip.rber t.chip ~block ~page, block, page) :: !candidates
    done
  done;
  let sorted =
    List.sort (fun (a, _, _) (b, _, _) -> Float.compare b a) !candidates
  in
  let retired = ref 0 in
  List.iter
    (fun (_, block, page) ->
      if !retired < budget then begin
        let index = page_index t.geometry ~block ~page in
        let level = t.levels.(index) in
        Ftl.Engine.relocate_page t.engine ~block ~page;
        transition_with t.limbo t.tel ~from_level:level ~to_level:(level + 1);
        t.levels.(index) <- level + 1;
        retired := !retired + Tiredness.data_slots t.profile level
      end)
    sorted

let discard_mdisk_lbas t (mdisk : Minidisk.t) =
  let base = mdisk.Minidisk.slot * t.config.mdisk_opages in
  for lba = base to base + t.config.mdisk_opages - 1 do
    Ftl.Engine.discard t.engine ~logical:lba
  done

let announce_death_if_empty t =
  if
    Minidisk.Registry.active_count t.registry = 0
    && Minidisk.Registry.draining t.registry = []
    && not t.dead
  then begin
    t.dead <- true;
    Events.Queue.push t.events Events.Device_failed
  end

(* Complete a grace-period retirement: the diFS has re-replicated (or we
   are in an emergency and cannot wait); drop the data and free the
   slot. *)
let finish_drain t (mdisk : Minidisk.t) =
  let live =
    Ftl.Engine.mapped_in_range t.engine
      ~lo:(mdisk.Minidisk.slot * t.config.mdisk_opages)
      ~len:t.config.mdisk_opages
  in
  discard_mdisk_lbas t mdisk;
  ignore (Minidisk.Registry.decommission t.registry mdisk.Minidisk.id);
  (match Hashtbl.find_opt t.tel.drain_started mdisk.Minidisk.id with
  | Some started ->
      Hashtbl.remove t.tel.drain_started mdisk.Minidisk.id;
      Telemetry.Registry.Histogram.observe t.tel.tel_grace_writes
        (float_of_int (Ftl.Engine.host_writes t.engine - started))
  | None -> ());
  Events.Queue.push t.events
    (Events.Mdisk_decommissioned
       { id = mdisk.Minidisk.id; lost_opages = live });
  refresh_export_gauges t;
  announce_death_if_empty t

(* [urgent] skips the grace period: the engine is out of space *now* and
   retaining drained data would deadlock the write path. *)
let decommission_one ?(urgent = false) t =
  match pick_victim t with
  | None -> (
      (* No active victims left; an emergency may still reclaim space by
         force-finishing a draining minidisk. *)
      match (urgent, Minidisk.Registry.draining t.registry) with
      | true, mdisk :: _ ->
          finish_drain t mdisk;
          true
      | _ ->
          t.dead <- true;
          Events.Queue.push t.events Events.Device_failed;
          false)
  | Some (victim, live) ->
      if t.config.scrub_on_decommission then
        retire_worn_pages t ~budget:t.config.mdisk_opages;
      t.decommissions <- t.decommissions + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_decommissions;
      if urgent then
        Telemetry.Registry.Counter.incr t.tel.tel_urgent_decommissions;
      Telemetry.Trace.event ~registry:t.tel.tel_registry ~level:Logs.Info
        "mdisk_decommission"
        [
          ("mdisk", string_of_int victim.Minidisk.id);
          ("urgent", string_of_bool urgent);
        ];
      if t.config.decommission_grace && not urgent then begin
        ignore (Minidisk.Registry.begin_drain t.registry victim.Minidisk.id);
        Hashtbl.replace t.tel.drain_started victim.Minidisk.id
          (Ftl.Engine.host_writes t.engine);
        Events.Queue.push t.events
          (Events.Mdisk_retiring
             { id = victim.Minidisk.id; opages = victim.Minidisk.opages })
      end
      else begin
        discard_mdisk_lbas t victim;
        ignore (Minidisk.Registry.decommission t.registry victim.Minidisk.id);
        Events.Queue.push t.events
          (Events.Mdisk_decommissioned
             { id = victim.Minidisk.id; lost_opages = live })
      end;
      refresh_export_gauges t;
      announce_death_if_empty t;
      true

let dominant_tired_level t =
  (* Reported level of a regenerated minidisk: the highest usable level
     holding pages (the capacity that regeneration just unlocked). *)
  let census = t.limbo in
  let rec scan level best =
    if level > Tiredness.max_level t.profile then best
    else
      let best = if Limbo.count census ~level > 0 then level else best in
      scan (level + 1) best
  in
  scan 0 0

let check_capacity t =
  (* Eq. 2: shrink while physical slots cannot cover exported LBAs. *)
  let deficit () =
    Limbo.capacity_deficit t.limbo
      ~lbas:(Minidisk.Registry.active_opages t.registry)
      ~headroom:t.config.decommission_headroom
  in
  let continue = ref (deficit () > 0) in
  while (not t.dead) && !continue do
    if decommission_one t then continue := deficit () > 0
    else continue := false
  done;
  (* §3.4: regenerate when tired pages accumulate enough slack for a whole
     new minidisk (RegenS only), with hysteresis above the shrink
     threshold. *)
  if (not t.dead) && t.config.mode = Regen_s then begin
    let slack_for_one_more () =
      float_of_int (Limbo.total_data_opages t.limbo)
      >= t.config.regen_headroom
         *. float_of_int
              (Minidisk.Registry.active_opages t.registry
              + t.config.mdisk_opages)
    in
    let continue = ref (slack_for_one_more ()) in
    while !continue do
      match
        Minidisk.Registry.create_mdisk t.registry
          ~birth_level:(dominant_tired_level t)
      with
      | None -> continue := false
      | Some mdisk ->
          t.regenerations <- t.regenerations + 1;
          Telemetry.Registry.Counter.incr t.tel.tel_regenerations;
          Telemetry.Trace.event ~registry:t.tel.tel_registry ~level:Logs.Info
            "mdisk_regenerated"
            [
              ("mdisk", string_of_int mdisk.Minidisk.id);
              ("level", string_of_int mdisk.Minidisk.birth_level);
            ];
          Events.Queue.push t.events
            (Events.Mdisk_created
               {
                 id = mdisk.Minidisk.id;
                 opages = mdisk.Minidisk.opages;
                 level = mdisk.Minidisk.birth_level;
               });
          continue := slack_for_one_more ()
    done;
    refresh_export_gauges t
  end

let maintain t =
  if !(t.pending_check) && not t.dead then begin
    t.pending_check := false;
    check_capacity t
  end

(* --- I/O ----------------------------------------------------------------- *)

let find_active t id =
  match Minidisk.Registry.find t.registry id with
  | Some mdisk when mdisk.Minidisk.state = Minidisk.Active -> Some mdisk
  | _ -> None

(* Readable minidisks include draining ones: the grace period exists
   precisely so the diFS can still read the retiring data. *)
let find_readable t id =
  match Minidisk.Registry.find t.registry id with
  | Some mdisk
    when mdisk.Minidisk.state = Minidisk.Active
         || mdisk.Minidisk.state = Minidisk.Draining ->
      Some mdisk
  | _ -> None

(* Eq. 2 normally shrinks the device before space truly runs out, but a
   garbage-collection cascade can retire many blocks within a single
   host write.  Keep decommissioning until the write fits or nothing is
   left to give up.  Shared by the per-op write path and the bulk-aging
   stream wrapper, so both recover identically. *)
let recover_no_space t ~mdisk ~logical ~payload =
  let rec recover () =
    if t.dead then Error `No_space
    else if not (decommission_one ~urgent:true t) then begin
      t.dead <- true;
      Error `No_space
    end
    else if find_active t mdisk = None then
      (* the victim was this write's own minidisk *)
      Error `Unknown_mdisk
    else
      match Ftl.Engine.write t.engine ~logical ~payload with
      | Ok () ->
          maintain t;
          Ok ()
      | Error `No_space -> recover ()
  in
  recover ()

let write t ~mdisk ~lba ~payload =
  if t.dead then Error `Dead
  else
    match find_active t mdisk with
    | None -> Error `Unknown_mdisk
    | Some m -> (
        let logical = Minidisk.Registry.engine_logical t.registry m ~lba in
        match Ftl.Engine.write t.engine ~logical ~payload with
        | Ok () ->
            maintain t;
            Ok ()
        | Error `No_space -> recover_no_space t ~mdisk ~logical ~payload)

let read t ~mdisk ~lba =
  if t.dead then Error `Dead
  else
    match find_readable t mdisk with
    | None -> Error `Unknown_mdisk
    | Some m -> (
        let logical = Minidisk.Registry.engine_logical t.registry m ~lba in
        match Ftl.Engine.read t.engine ~logical with
        | Error `Uncorrectable as e ->
            (* Attribute the residual-UBER event to the failing page's
               tiredness level (error path, so the lookup is free in
               aggregate). *)
            (match Ftl.Engine.locate t.engine ~logical with
            | Some { Ftl.Location.block; page; _ } ->
                Telemetry.Registry.Counter.incr
                  t.tel.tel_uncorrectable.(t.levels.(page_index t.geometry
                                                       ~block ~page))
            | None -> ());
            (e :> (int, read_error) result)
        | result -> (result :> (int, read_error) result))

let trim t ~mdisk ~lba =
  if not t.dead then
    match find_active t mdisk with
    | None -> ()
    | Some m ->
        Ftl.Engine.discard t.engine
          ~logical:(Minidisk.Registry.engine_logical t.registry m ~lba)

(* Engine logicals are slot-addressed; reverse-map one to the minidisk
   occupying that slot.  Draining minidisks are still readable — their
   reads can escalate into live repair like any other. *)
let mdisk_of_logical t ~logical =
  let slot = logical / t.config.mdisk_opages in
  let matches m = m.Minidisk.slot = slot in
  match List.find_opt matches (Minidisk.Registry.active t.registry) with
  | Some _ as found -> found
  | None -> List.find_opt matches (Minidisk.Registry.draining t.registry)

let set_recovery_hook t ?config hook =
  Ftl.Engine.set_recovery_hook t.engine ?config
    (Option.map
       (fun f ~logical ->
         match mdisk_of_logical t ~logical with
         | None -> None
         | Some m ->
             f ~mdisk:m.Minidisk.id
               ~lba:(logical mod t.config.mdisk_opages))
       hook)

let acknowledge_decommission t ~mdisk =
  if not t.dead then
    match Minidisk.Registry.find t.registry mdisk with
    | Some m when m.Minidisk.state = Minidisk.Draining ->
        finish_drain t m;
        maintain t
    | Some _ | None -> ()

let flush t =
  if not t.dead then begin
    (match Ftl.Engine.flush t.engine with Ok () -> () | Error `No_space -> ());
    maintain t
  end

let poll_events t = Events.Queue.drain t.events

(* --- state --------------------------------------------------------------- *)

let alive t = not t.dead
let mode t = t.config.mode
let config t = t.config
let profile t = t.profile
let engine t = t.engine
let limbo t = t.limbo
let registry t = t.registry
let active_mdisks t = Minidisk.Registry.active t.registry
let active_opages t = Minidisk.Registry.active_opages t.registry
let total_data_opages t = Limbo.total_data_opages t.limbo

let level_of_page t ~block ~page =
  t.levels.(page_index t.geometry ~block ~page)

let level_census t =
  let census = Array.make (Tiredness.dead_level t.profile + 1) 0 in
  Array.iter (fun level -> census.(level) <- census.(level) + 1) t.levels;
  census

let force_page_level t ~block ~page ~level =
  let index = page_index t.geometry ~block ~page in
  let current = t.levels.(index) in
  if level <= current || level > Tiredness.dead_level t.profile then
    invalid_arg "Device.force_page_level: level must increase within range";
  Ftl.Engine.relocate_page t.engine ~block ~page;
  transition_with t.limbo t.tel ~from_level:current ~to_level:level;
  t.levels.(index) <- level;
  t.pending_check := true;
  maintain t

let decommissions t = t.decommissions
let regenerations t = t.regenerations
let host_writes t = Ftl.Engine.host_writes t.engine
let write_amplification t = Ftl.Engine.write_amplification t.engine

(* --- flat adapter ---------------------------------------------------------- *)

module As_device = struct
  type nonrec t = t

  let label t =
    match t.config.mode with Shrink_s -> "shrinks" | Regen_s -> "regens"

  let active_array t = Array.of_list (Minidisk.Registry.active t.registry)

  let locate t ~lba =
    if lba < 0 then None
    else
      let mdisks = active_array t in
      let per = t.config.mdisk_opages in
      let index = lba / per in
      if index >= Array.length mdisks then None
      else Some (mdisks.(index).Minidisk.id, lba mod per)

  let write t ~lba ~payload =
    match locate t ~lba with
    | None -> if t.dead then Error `Dead else Error `Out_of_range
    | Some (mdisk, lba) -> (
        match write t ~mdisk ~lba ~payload with
        | Ok () -> Ok ()
        | Error (`Dead | `No_space) as e ->
            (e :> (unit, Ftl.Device_intf.write_error) result)
        | Error `Unknown_mdisk -> Error `Out_of_range)

  (* Bulk segments between maintenance points.  The LBA -> engine-logical
     translation (the active-minidisk array [locate] rebuilds per write)
     only moves when maintenance decommissions or regenerates — and
     maintenance only runs after erases — so one lookup table serves a
     whole no-erase segment.  The table is cached on the device keyed by
     the registry's generation counter: most segments end on a monitor
     or telemetry boundary with the active set untouched, and reuse the
     arrays as-is.  [Stream_erased] re-enters [maintain] at the same
     point the per-op path would (right after the triggering write),
     then re-derives the table if maintenance moved it.  A [`No_space]
     replays the exact per-op recovery ([recover_no_space], including
     its host-write re-count on retry) before resuming.  Budget before
     death, matching the per-op loop's stop-then-alive order. *)
  let refresh_stream_tables t =
    let gen = Minidisk.Registry.generation t.registry in
    if t.stream_gen <> gen then begin
      let mdisks = active_array t in
      let per = t.config.mdisk_opages in
      t.stream_mdisks <- mdisks;
      t.stream_base <- Array.map (fun m -> m.Minidisk.slot * per) mdisks;
      t.stream_gen <- gen
    end

  let write_stream t ~rng ~window ~payload_base ~budget =
    if not (Ftl.Engine.stream_capable t.engine) then
      {
        Ftl.Device_intf.accepted = 0;
        status = Ftl.Device_intf.Stream_unsupported;
      }
    else
      let per = t.config.mdisk_opages in
      let rec go accepted =
        if accepted >= budget then
          { Ftl.Device_intf.accepted; status = Ftl.Device_intf.Stream_filled }
        else if t.dead then
          { Ftl.Device_intf.accepted; status = Ftl.Device_intf.Stream_dead }
        else begin
          refresh_stream_tables t;
          let mdisks = t.stream_mdisks in
          let base = t.stream_base in
          let limit = Array.length mdisks * per in
          let translate lba = base.(lba / per) + (lba mod per) in
          let n, stop =
            Ftl.Engine.write_stream t.engine ~rng ~window ~limit ~translate
              ~payload_base:(payload_base + accepted)
              ~budget:(budget - accepted)
          in
          let accepted = accepted + n in
          match stop with
          | Ftl.Engine.Stream_budget ->
              {
                Ftl.Device_intf.accepted;
                status = Ftl.Device_intf.Stream_filled;
              }
          | Ftl.Engine.Stream_out_of_window ->
              {
                Ftl.Device_intf.accepted;
                status = Ftl.Device_intf.Stream_resync;
              }
          | Ftl.Engine.Stream_erased ->
              maintain t;
              go accepted
          | Ftl.Engine.Stream_no_space lba -> (
              let mdisk = mdisks.(lba / per).Minidisk.id in
              let logical = base.(lba / per) + (lba mod per) in
              match
                recover_no_space t ~mdisk ~logical
                  ~payload:(payload_base + accepted)
              with
              | Ok () -> go (accepted + 1)
              | Error `Unknown_mdisk ->
                  {
                    Ftl.Device_intf.accepted;
                    status = Ftl.Device_intf.Stream_resync;
                  }
              | Error `No_space ->
                  {
                    Ftl.Device_intf.accepted;
                    status = Ftl.Device_intf.Stream_dead;
                  })
        end
      in
      go 0

  let read t ~lba =
    match locate t ~lba with
    | None -> if t.dead then Error `Dead else Error `Out_of_range
    | Some (mdisk, lba) -> (
        match read t ~mdisk ~lba with
        | Ok payload -> Ok payload
        | Error (`Dead | `Unmapped | `Uncorrectable) as e ->
            (e :> (int, Ftl.Device_intf.read_error) result)
        | Error `Unknown_mdisk -> Error `Out_of_range)

  let trim t ~lba =
    match locate t ~lba with
    | None -> ()
    | Some (mdisk, lba) -> trim t ~mdisk ~lba

  let alive = alive
  let logical_capacity t = if t.dead then 0 else active_opages t
  let initial_capacity t = t.initial_mdisks * t.config.mdisk_opages
  let host_writes = host_writes
  let write_amplification = write_amplification

  let bg_stats t =
    {
      Ftl.Device_intf.gc_runs = Ftl.Engine.gc_runs t.engine;
      relocated_opages = Ftl.Engine.relocated_opages t.engine;
      read_retries = Ftl.Engine.read_retries t.engine;
      read_reclaims = Ftl.Engine.read_reclaims t.engine;
      live_repair_attempts = Ftl.Engine.read_escalations t.engine;
      live_repairs = Ftl.Engine.escalation_successes t.engine;
    }

  let wear_stats t =
    let w = Flash.Chip.wear (Ftl.Engine.chip t.engine) in
    {
      Ftl.Device_intf.pec_max = w.Flash.Chip.wear_pec_max;
      pec_min = w.Flash.Chip.wear_pec_min;
      rber_worst = w.Flash.Chip.wear_rber_worst;
      tolerable_rber =
        (Tiredness.info t.profile (Tiredness.max_level t.profile))
          .Tiredness.tolerable_rber;
    }

  let set_recovery_hook t ?config hook =
    (* reverse of [locate]: engine logical -> slot -> position in the
       active array -> flat LBA (draining minidisks are not addressable
       through the flat adapter, so their escalations find no owner) *)
    Ftl.Engine.set_recovery_hook t.engine ?config
      (Option.map
         (fun f ~logical ->
           let per = t.config.mdisk_opages in
           let slot = logical / per in
           let mdisks = active_array t in
           let rec scan i =
             if i >= Array.length mdisks then None
             else if mdisks.(i).Minidisk.slot = slot then
               f ~lba:((i * per) + (logical mod per))
             else scan (i + 1)
           in
           scan 0)
         hook)
end

let pack t = Ftl.Device_intf.Packed ((module As_device), t)
