(** Simulated NAND flash chip: the raw medium beneath every FTL.

    The chip stores one opaque payload per oPage slot (the FTL uses these
    as fingerprints of logical content; the byte-level data path is
    exercised by the ECC library directly).  Each fPage can be programmed
    once between erases, erases are whole-block and increment the block's
    P/E cycle count, and every page carries a wear-independent strength
    multiplier so pages within one block age at different rates — the
    variance that motivates Salamander's page-granularity retirement.

    The chip itself enforces only physics: program-once, erase-before-
    reuse, wear accounting, and the RBER of every page.  Policy (ECC
    sufficiency, retirement, mapping) belongs to the layers above.

    The store is packed for fleet scale: per-block PEC words, one
    state word per fPage (programmed bit + read-disturb count), unboxed
    per-fPage strengths and a flat per-slot payload array — no per-page
    records or option boxes — with injected faults in a sparse side
    table (they touch a handful of pages while a chip holds thousands).
    A 32x16x4 device's media state is ~20 KB instead of ~200 KB, which
    is what lets one process age a 100k-device fleet. *)

type t

type payload = int
(** Opaque per-oPage content fingerprint chosen by the FTL.
    [min_int] is reserved (it encodes an ECC-reserved slot in the
    packed payload array); {!program} rejects it. *)

type page_state =
  | Free  (** erased, programmable *)
  | Programmed of payload option array
      (** one entry per oPage slot; [None] marks slots the owner reserved
          for extra ECC rather than data *)

val create :
  ?registry:Telemetry.Registry.t ->
  rng:Sim.Rng.t ->
  geometry:Geometry.t ->
  model:Rber_model.t ->
  unit ->
  t
(** Per-page strengths are drawn from [rng] at creation; telemetry
    handles bind against [registry] (default: {!Telemetry.Registry.null},
    i.e. inert).  Besides the op counters and modeled-latency
    histograms, a live registry carries the wear gauges the health
    monitor samples: [flash_pec_max] / [flash_pec_min] (highest and
    lowest per-block P/E count) and [flash_rber_worst] (running max of
    post-erase page RBER) — all refreshed on erase and monotone over
    the chip's life. *)

val geometry : t -> Geometry.t
val model : t -> Rber_model.t

val program : t -> block:int -> page:int -> payload option array -> unit
(** Program a free fPage with one entry per oPage slot.
    @raise Invalid_argument if out of range, if the slot-array length is
    not [opages_per_fpage], or if the page is not [Free] (program-once). *)

val program_ints :
  t -> block:int -> page:int -> payloads:int array -> count:int -> unit
(** {!program} fed from a flat scratch array: slots [0 .. count-1] take
    [payloads.(i)], the remaining slots are ECC-reserved.  Bit-exact with
    [program] on the equivalent option array (same counters, same latency
    observation) but allocation-free — the bulk-aging write stream's
    program path.
    @raise Invalid_argument under [program]'s conditions, or if [count]
    is negative, exceeds [opages_per_fpage] or [payloads]'s length. *)

val read : t -> block:int -> page:int -> page_state
(** Current state; for a programmed page the array is a copy. *)

val read_slot : t -> block:int -> page:int -> slot:int -> payload option
(** Single-slot read; [None] for ECC-reserved slots.
    @raise Invalid_argument on a [Free] page or bad indices. *)

val read_slot_int : t -> block:int -> page:int -> slot:int -> int
(** {!read_slot} without the option box: the payload, or [min_int] for
    an ECC-reserved slot ([min_int] is never a valid payload).  Same
    counters, disturb accounting and latency modeling — the GC
    relocation hot path. *)

val erase : t -> block:int -> unit
(** Erase a block: all its pages become [Free]; its PEC increments. *)

val pec : t -> block:int -> int

val pec_min : t -> int
(** Lowest per-block P/E count, maintained incrementally (erase pays
    amortized O(1) instead of scanning every block). *)

type wear = { wear_pec_max : int; wear_pec_min : int; wear_rber_worst : float }

val wear : t -> wear
(** Current wear summary by on-demand scan — O(blocks + fPages), so the
    erase hot path stays free of bookkeeping when telemetry is off.
    [wear_rber_worst] is the worst {e pure-wear} page RBER at current
    P/E counts (no read disturb, no injected faults), the same quantity
    the [flash_rber_worst] gauge tracks as a running max. *)

val strength : t -> block:int -> page:int -> float

val rber : t -> block:int -> page:int -> float
(** Current raw bit error rate of the page: program/erase wear plus
    accumulated read disturb since the block's last erase, plus any
    injected transient/sticky excess (see {!inject}). *)

val rber_after_next_erase : t -> block:int -> page:int -> float
(** The RBER the page will have once its block is erased one more time
    (an erase also clears the read disturb — and any injected faults);
    the retirement policies look ahead with this. *)

val reads_since_erase : t -> block:int -> page:int -> int
(** Reads the page absorbed since its block's last erase: the read
    disturb exposure counter. *)

val is_free : t -> block:int -> page:int -> bool

(** Cumulative operation counters, for write-amplification and endurance
    accounting. *)

val programs : t -> int
val reads : t -> int
val erases : t -> int

(** {2 Fault injection}

    The hook surface the deterministic chaos layer ([lib/faults]) drives.
    Faults damage page *content* or charge retention, so all three
    classes are cleared when the block is erased (the cells are
    rewritten).  Injections count into the
    [flash_faults_injected_total{class=...}] telemetry counter. *)

type fault =
  | Transient_rber of float
      (** One-shot extra raw bit error rate (e.g. a read-disturb spike or
          a marginal sense).  Raises {!rber} until the next
          {!take_transient} consumes it — the FTL's read path takes it
          exactly once, so a re-read (retry ladder) sees the page clean
          again. *)
  | Sticky_rber of float
      (** Latent extra RBER that persists across reads (charge leak,
          weak cell cluster): every read of the page sees the elevated
          rate until the block is erased. *)
  | Silent_corruption of int
      (** XOR mask applied to every payload read from the page without
          raising RBER: corruption below the ECC's radar.  Only
          content-verifying layers (the diFS scrubber) can catch it.
          Injecting the same mask twice cancels out. *)

val inject : t -> block:int -> page:int -> fault -> unit
(** @raise Invalid_argument on bad indices, negative RBER deltas, or a
    zero corruption mask. *)

val take_transient : t -> block:int -> page:int -> float
(** Consume (return and clear) the page's pending transient RBER excess.
    The FTL read path calls this after its first read attempt; 0. when
    nothing is pending. *)

val sticky_rber : t -> block:int -> page:int -> float
(** The page's current injected sticky RBER excess (0. when none). *)

val faults_injected : t -> int
(** Cumulative count of {!inject} calls across all fault classes. *)
