type payload = int

type page_state = Free | Programmed of payload option array

type fault =
  | Transient_rber of float
  | Sticky_rber of float
  | Silent_corruption of int

(* Injected-fault state for one fPage.  Faults touch a handful of pages
   per campaign while a chip holds thousands, so they live in a sparse
   side table keyed by fPage index instead of three words on every page;
   [Hashtbl.length = 0] is the fault-free fast path the read ladder
   checks before any lookup. *)
type fault_cell = {
  mutable transient : float;
  mutable sticky : float;
  mutable corrupt : int;
}

(* Telemetry handles, bound to the registry passed to [create] (the
   null registry when omitted); inert (single-branch
   no-ops) against the null registry.  Latency histograms record the
   *modeled* time of each operation under {!Latency.default} — the chip
   executes in zero simulated time, but the distribution of modeled op
   costs is exactly the "flash op latency" signal the experiments
   reason about. *)
type tel = {
  tel_programs : Telemetry.Registry.Counter.t;
  tel_reads : Telemetry.Registry.Counter.t;
  tel_erases : Telemetry.Registry.Counter.t;
  tel_read_us : Telemetry.Registry.Histogram.t;
  tel_program_us : Telemetry.Registry.Histogram.t;
  tel_erase_us : Telemetry.Registry.Histogram.t;
  tel_faults_transient : Telemetry.Registry.Counter.t;
  tel_faults_sticky : Telemetry.Registry.Counter.t;
  tel_faults_silent : Telemetry.Registry.Counter.t;
  (* Wear/health gauges, refreshed on erase (the only operation that
     moves them): the longitudinal signals the health monitor grades
     devices by.  All three are monotone over a chip's life — P/E
     counts only grow, so their max and min only grow, and the worst
     post-erase RBER is kept as a running max. *)
  tel_pec_max : Telemetry.Registry.Gauge.t;
  tel_pec_min : Telemetry.Registry.Gauge.t;
  tel_rber_worst : Telemetry.Registry.Gauge.t;
}

let make_tel registry =
  let latency op lo hi =
    Telemetry.Registry.histogram registry ~labels:[ ("op", op) ]
      ~help:"Modeled flash operation latency" ~lo ~hi "flash_op_latency_us"
  in
  let fault_counter cls =
    Telemetry.Registry.counter registry
      ~labels:[ ("class", cls) ]
      ~help:"Faults injected into the medium" "flash_faults_injected_total"
  in
  {
    tel_programs =
      Telemetry.Registry.counter registry ~help:"fPage programs"
        "flash_programs_total";
    tel_reads =
      Telemetry.Registry.counter registry ~help:"fPage/slot reads"
        "flash_reads_total";
    tel_erases =
      Telemetry.Registry.counter registry ~help:"Block erases"
        "flash_erases_total";
    tel_read_us = latency "read" 0. 500.;
    tel_program_us = latency "program" 0. 2_000.;
    tel_erase_us = latency "erase" 0. 10_000.;
    tel_faults_transient = fault_counter "transient";
    tel_faults_sticky = fault_counter "sticky";
    tel_faults_silent = fault_counter "silent";
    tel_pec_max =
      Telemetry.Registry.gauge registry
        ~help:"Highest per-block P/E cycle count" "flash_pec_max";
    tel_pec_min =
      Telemetry.Registry.gauge registry
        ~help:"Lowest per-block P/E cycle count" "flash_pec_min";
    tel_rber_worst =
      Telemetry.Registry.gauge registry
        ~help:"Worst post-erase page RBER seen so far (running max)"
        "flash_rber_worst";
  }

(* Payload slot value reserved to encode [None] (an ECC-reserved slot)
   in the flat payload array. *)
let slot_none = min_int

(* Packed page store.  The old representation paid one [page] record,
   one [page_state] box and one [payload option array] (plus a [Some]
   box per slot) per page — ~14 words of header/box overhead per fPage
   before any payload.  Here a device is four flat arrays: one int per
   block (PEC), one word per fPage ([reads_since_erase * 2 + programmed
   bit] — a program never outlives an erase, so one clearable word
   covers both), one unboxed float per fPage (strength), and one int
   per oPage slot (payload, [slot_none] = reserved).  Injected faults
   sit in the sparse side table. *)
type t = {
  geometry : Geometry.t;
  model : Rber_model.t;
  pecs : int array; (* per block: P/E cycle count *)
  words : int array; (* per fPage: reads_since_erase*2 lor programmed *)
  strengths : floatarray; (* per fPage: wear-independent multiplier *)
  payloads : int array; (* per oPage slot; [slot_none] = None *)
  faults : (int, fault_cell) Hashtbl.t; (* fPage index -> faults *)
  tel : tel;
  mutable programs : int;
  mutable reads : int;
  mutable erases : int;
  mutable faults_injected : int;
  (* Fleet minimum P/E count, maintained incrementally so erase never
     scans the block array: [pec_min] is min over blocks of pec and
     [at_min] counts the blocks sitting at it.  When the last block
     leaves the minimum, the new minimum is exactly [pec_min + 1] (the
     block just erased landed there), and the recount scan runs at most
     once per [blocks] erases — amortized O(1). *)
  mutable pec_min : int;
  mutable at_min : int;
}

let create ?registry ~rng ~geometry ~model () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  (* Endurance variance has a block-level component (process corner,
     position on the die) and a page-level one (layer-to-layer variation
     within the block, [42]); split the model's lognormal sigma evenly so
     the total spread matches {!Rber_model.sample_strength}.  The draw
     order (block strength, then that block's page strengths) is part of
     the determinism contract — goldens pin it. *)
  let component_sigma = model.Rber_model.strength_sigma *. sqrt 0.5 in
  let blocks = geometry.Geometry.blocks in
  let ppb = geometry.Geometry.pages_per_block in
  let opages = geometry.Geometry.opages_per_fpage in
  let fpages = blocks * ppb in
  let strengths = Float.Array.create fpages in
  for block = 0 to blocks - 1 do
    let block_strength =
      Sim.Dist.lognormal rng ~mu:0. ~sigma:component_sigma
    in
    for page = 0 to ppb - 1 do
      Float.Array.set strengths
        ((block * ppb) + page)
        (block_strength *. Sim.Dist.lognormal rng ~mu:0. ~sigma:component_sigma)
    done
  done;
  {
    geometry;
    model;
    pecs = Array.make blocks 0;
    words = Array.make fpages 0;
    strengths;
    payloads = Array.make (fpages * opages) slot_none;
    faults = Hashtbl.create 8;
    tel = make_tel registry;
    programs = 0;
    reads = 0;
    erases = 0;
    faults_injected = 0;
    pec_min = 0;
    at_min = blocks;
  }

let geometry t = t.geometry
let model t = t.model

let check_block t block =
  if block < 0 || block >= t.geometry.Geometry.blocks then
    invalid_arg "Chip: block out of range"

(* Returns the page's flat fPage index. *)
let check_page t block page =
  check_block t block;
  if page < 0 || page >= t.geometry.Geometry.pages_per_block then
    invalid_arg "Chip: page out of range";
  (block * t.geometry.Geometry.pages_per_block) + page

let is_programmed t fp = t.words.(fp) land 1 <> 0
let page_reads t fp = t.words.(fp) lsr 1

let corrupt_mask t fp =
  if Hashtbl.length t.faults = 0 then 0
  else match Hashtbl.find_opt t.faults fp with Some c -> c.corrupt | None -> 0

(* Modeled sense + transfer + decode time of reading [data_bytes] off one
   fPage at its current error rate; only evaluated when the latency
   histogram is live — the hot read path passes an int so the inactive
   case costs one branch, no float boxing. *)
let observe_read_latency t ~block ~fp ~data_bytes =
  if Telemetry.Registry.Histogram.is_active t.tel.tel_read_us then begin
    let data_kib = float_of_int data_bytes /. 1024. in
    let rber =
      Rber_model.rber ~reads:(page_reads t fp) t.model ~pec:t.pecs.(block)
        ~strength:(Float.Array.get t.strengths fp)
    in
    let raw_errors =
      rber *. float_of_int (Geometry.fpage_data_bytes t.geometry * 8)
    in
    Telemetry.Registry.Histogram.observe t.tel.tel_read_us
      (Latency.fpage_read_us Latency.default ~data_kib ~raw_errors ~retries:0)
  end

let program t ~block ~page slots =
  let fp = check_page t block page in
  let opages = t.geometry.Geometry.opages_per_fpage in
  if Array.length slots <> opages then
    invalid_arg "Chip.program: slot array length mismatch";
  if is_programmed t fp then
    invalid_arg "Chip.program: page already programmed (erase first)";
  let base = fp * opages in
  for i = 0 to opages - 1 do
    t.payloads.(base + i) <-
      (match slots.(i) with
      | None -> slot_none
      | Some p ->
          if p = slot_none then
            invalid_arg "Chip.program: payload min_int is reserved";
          p)
  done;
  t.words.(fp) <- t.words.(fp) lor 1;
  t.programs <- t.programs + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_programs;
  if Telemetry.Registry.Histogram.is_active t.tel.tel_program_us then
    Telemetry.Registry.Histogram.observe t.tel.tel_program_us
      (Latency.fpage_program_us Latency.default
         ~data_kib:
           (float_of_int (Geometry.fpage_data_bytes t.geometry) /. 1024.))

(* Same media semantics as {!program}, fed from a flat scratch array
   instead of a [payload option array]: slots [0 .. count-1] carry data,
   the rest are ECC-reserved.  The bulk-aging write stream uses this to
   program without boxing a fresh option array per fPage; counters,
   validation and the latency histogram behave identically. *)
let program_ints t ~block ~page ~payloads ~count =
  let fp = check_page t block page in
  let opages = t.geometry.Geometry.opages_per_fpage in
  if count < 0 || count > opages || count > Array.length payloads then
    invalid_arg "Chip.program_ints: count out of range";
  if is_programmed t fp then
    invalid_arg "Chip.program_ints: page already programmed (erase first)";
  let base = fp * opages in
  for i = 0 to count - 1 do
    let p = payloads.(i) in
    if p = slot_none then
      invalid_arg "Chip.program_ints: payload min_int is reserved";
    t.payloads.(base + i) <- p
  done;
  for i = count to opages - 1 do
    t.payloads.(base + i) <- slot_none
  done;
  t.words.(fp) <- t.words.(fp) lor 1;
  t.programs <- t.programs + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_programs;
  if Telemetry.Registry.Histogram.is_active t.tel.tel_program_us then
    Telemetry.Registry.Histogram.observe t.tel.tel_program_us
      (Latency.fpage_program_us Latency.default
         ~data_kib:
           (float_of_int (Geometry.fpage_data_bytes t.geometry) /. 1024.))

let read t ~block ~page =
  let fp = check_page t block page in
  t.reads <- t.reads + 1;
  t.words.(fp) <- t.words.(fp) + 2;
  Telemetry.Registry.Counter.incr t.tel.tel_reads;
  observe_read_latency t ~block ~fp
    ~data_bytes:(Geometry.fpage_data_bytes t.geometry);
  if not (is_programmed t fp) then Free
  else begin
    let opages = t.geometry.Geometry.opages_per_fpage in
    let base = fp * opages in
    let mask = corrupt_mask t fp in
    Programmed
      (Array.init opages (fun i ->
           let v = t.payloads.(base + i) in
           if v = slot_none then None else Some (v lxor mask)))
  end

let read_slot t ~block ~page ~slot =
  let fp = check_page t block page in
  if slot < 0 || slot >= t.geometry.Geometry.opages_per_fpage then
    invalid_arg "Chip.read_slot: slot out of range";
  t.reads <- t.reads + 1;
  t.words.(fp) <- t.words.(fp) + 2;
  Telemetry.Registry.Counter.incr t.tel.tel_reads;
  observe_read_latency t ~block ~fp ~data_bytes:t.geometry.Geometry.opage_bytes;
  if not (is_programmed t fp) then invalid_arg "Chip.read_slot: page is erased";
  let v = t.payloads.((fp * t.geometry.Geometry.opages_per_fpage) + slot) in
  if v = slot_none then None else Some (v lxor corrupt_mask t fp)

let read_slot_int t ~block ~page ~slot =
  let fp = check_page t block page in
  if slot < 0 || slot >= t.geometry.Geometry.opages_per_fpage then
    invalid_arg "Chip.read_slot_int: slot out of range";
  t.reads <- t.reads + 1;
  t.words.(fp) <- t.words.(fp) + 2;
  Telemetry.Registry.Counter.incr t.tel.tel_reads;
  observe_read_latency t ~block ~fp ~data_bytes:t.geometry.Geometry.opage_bytes;
  if not (is_programmed t fp) then
    invalid_arg "Chip.read_slot_int: page is erased";
  let v = t.payloads.((fp * t.geometry.Geometry.opages_per_fpage) + slot) in
  if v = slot_none then slot_none else v lxor corrupt_mask t fp

let erase t ~block =
  check_block t block;
  let pec = t.pecs.(block) + 1 in
  t.pecs.(block) <- pec;
  if pec - 1 = t.pec_min then begin
    t.at_min <- t.at_min - 1;
    if t.at_min = 0 then begin
      t.pec_min <- t.pec_min + 1;
      let count = ref 0 in
      Array.iter (fun p -> if p = t.pec_min then incr count) t.pecs;
      t.at_min <- !count
    end
  end;
  let ppb = t.geometry.Geometry.pages_per_block in
  let base = block * ppb in
  (* One word per page holds both the programmed bit and the read-
     disturb counter, so the whole block clears with one fill; stale
     payload slots stay in place — the cleared programmed bit hides
     them until the next program overwrites. *)
  Array.fill t.words base ppb 0;
  (* Injected faults model damaged *content* and charge leakage, not
     permanent silicon damage: an erase rewrites the cells and clears
     them all. *)
  if Hashtbl.length t.faults > 0 then
    for fp = base to base + ppb - 1 do
      Hashtbl.remove t.faults fp
    done;
  t.erases <- t.erases + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_erases;
  if Telemetry.Registry.Histogram.is_active t.tel.tel_erase_us then
    Telemetry.Registry.Histogram.observe t.tel.tel_erase_us
      (Latency.erase_us Latency.default);
  if Telemetry.Registry.Gauge.is_active t.tel.tel_pec_max then begin
    Telemetry.Registry.Gauge.set t.tel.tel_pec_max
      (Float.max
         (Telemetry.Registry.Gauge.value t.tel.tel_pec_max)
         (float_of_int pec));
    Telemetry.Registry.Gauge.set t.tel.tel_pec_min (float_of_int t.pec_min);
    (* Post-erase RBER of the freshly worn block: pure wear, no read
       disturb, no injected faults (erase just cleared both). *)
    let block_worst = ref 0. in
    for page = 0 to ppb - 1 do
      block_worst :=
        Float.max !block_worst
          (Rber_model.rber t.model ~pec
             ~strength:(Float.Array.get t.strengths (base + page)))
    done;
    Telemetry.Registry.Gauge.set t.tel.tel_rber_worst
      (Float.max
         (Telemetry.Registry.Gauge.value t.tel.tel_rber_worst)
         !block_worst)
  end

let pec t ~block =
  check_block t block;
  t.pecs.(block)

let pec_min t = t.pec_min

type wear = { wear_pec_max : int; wear_pec_min : int; wear_rber_worst : float }

(* On-demand scan (O(blocks) + O(fPages)) so the erase hot path stays
   untouched when no registry is attached.  The worst RBER is the
   pure-wear rate — no read disturb, no injected faults — matching the
   post-erase semantics of the [flash_rber_worst] gauge, but evaluated
   at the current P/E counts rather than as a running max. *)
let wear t =
  let blocks = t.geometry.Geometry.blocks in
  let ppb = t.geometry.Geometry.pages_per_block in
  let pec_max = ref 0 and worst = ref 0. in
  for block = 0 to blocks - 1 do
    let pec = t.pecs.(block) in
    if pec > !pec_max then pec_max := pec;
    let base = block * ppb in
    for page = 0 to ppb - 1 do
      worst :=
        Float.max !worst
          (Rber_model.rber t.model ~pec
             ~strength:(Float.Array.get t.strengths (base + page)))
    done
  done;
  { wear_pec_max = !pec_max; wear_pec_min = t.pec_min; wear_rber_worst = !worst }

let strength t ~block ~page =
  let fp = check_page t block page in
  Float.Array.get t.strengths fp

let rber t ~block ~page =
  let fp = check_page t block page in
  let base =
    Rber_model.rber ~reads:(page_reads t fp) t.model ~pec:t.pecs.(block)
      ~strength:(Float.Array.get t.strengths fp)
  in
  if Hashtbl.length t.faults = 0 then base
  else
    match Hashtbl.find_opt t.faults fp with
    | Some c -> base +. c.transient +. c.sticky
    | None -> base

let rber_after_next_erase t ~block ~page =
  (* An erase clears the accumulated read disturb along with the data. *)
  let fp = check_page t block page in
  Rber_model.rber t.model
    ~pec:(t.pecs.(block) + 1)
    ~strength:(Float.Array.get t.strengths fp)

let reads_since_erase t ~block ~page =
  let fp = check_page t block page in
  page_reads t fp

let is_free t ~block ~page =
  let fp = check_page t block page in
  not (is_programmed t fp)

let programs t = t.programs
let reads t = t.reads
let erases t = t.erases

let fault_cell t fp =
  match Hashtbl.find_opt t.faults fp with
  | Some c -> c
  | None ->
      let c = { transient = 0.; sticky = 0.; corrupt = 0 } in
      Hashtbl.replace t.faults fp c;
      c

(* Keep the table minimal so [Hashtbl.length = 0] stays a meaningful
   fast-path guard after faults are consumed or cancelled. *)
let drop_if_clear t fp c =
  if c.transient = 0. && c.sticky = 0. && c.corrupt = 0 then
    Hashtbl.remove t.faults fp

let inject t ~block ~page fault =
  let fp = check_page t block page in
  (match fault with
  | Transient_rber extra ->
      if extra < 0. then invalid_arg "Chip.inject: negative transient rber";
      let c = fault_cell t fp in
      c.transient <- c.transient +. extra;
      drop_if_clear t fp c;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_transient
  | Sticky_rber extra ->
      if extra < 0. then invalid_arg "Chip.inject: negative sticky rber";
      let c = fault_cell t fp in
      c.sticky <- c.sticky +. extra;
      drop_if_clear t fp c;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_sticky
  | Silent_corruption mask ->
      if mask = 0 then invalid_arg "Chip.inject: zero corruption mask";
      let c = fault_cell t fp in
      c.corrupt <- c.corrupt lxor mask;
      drop_if_clear t fp c;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_silent);
  t.faults_injected <- t.faults_injected + 1

let take_transient t ~block ~page =
  let fp = check_page t block page in
  if Hashtbl.length t.faults = 0 then 0.
  else
    match Hashtbl.find_opt t.faults fp with
    | None -> 0.
    | Some c ->
        let extra = c.transient in
        c.transient <- 0.;
        drop_if_clear t fp c;
        extra

let sticky_rber t ~block ~page =
  let fp = check_page t block page in
  if Hashtbl.length t.faults = 0 then 0.
  else
    match Hashtbl.find_opt t.faults fp with
    | Some c -> c.sticky
    | None -> 0.

let faults_injected t = t.faults_injected
