type payload = int

type page_state = Free | Programmed of payload option array

type page = {
  strength : float;
  mutable state : page_state;
  mutable reads_since_erase : int;
  (* Injected faults (see {!inject}); all three are cleared by erase. *)
  mutable transient_rber : float;
  mutable sticky_rber : float;
  mutable corrupt_mask : int;
}

type fault =
  | Transient_rber of float
  | Sticky_rber of float
  | Silent_corruption of int

type block_state = { mutable pec : int; pages : page array }

(* Telemetry handles, bound to the registry passed to [create] (the
   null registry when omitted); inert (single-branch
   no-ops) against the null registry.  Latency histograms record the
   *modeled* time of each operation under {!Latency.default} — the chip
   executes in zero simulated time, but the distribution of modeled op
   costs is exactly the "flash op latency" signal the experiments
   reason about. *)
type tel = {
  tel_programs : Telemetry.Registry.Counter.t;
  tel_reads : Telemetry.Registry.Counter.t;
  tel_erases : Telemetry.Registry.Counter.t;
  tel_read_us : Telemetry.Registry.Histogram.t;
  tel_program_us : Telemetry.Registry.Histogram.t;
  tel_erase_us : Telemetry.Registry.Histogram.t;
  tel_faults_transient : Telemetry.Registry.Counter.t;
  tel_faults_sticky : Telemetry.Registry.Counter.t;
  tel_faults_silent : Telemetry.Registry.Counter.t;
  (* Wear/health gauges, refreshed on erase (the only operation that
     moves them): the longitudinal signals the health monitor grades
     devices by.  All three are monotone over a chip's life — P/E
     counts only grow, so their max and min only grow, and the worst
     post-erase RBER is kept as a running max. *)
  tel_pec_max : Telemetry.Registry.Gauge.t;
  tel_pec_min : Telemetry.Registry.Gauge.t;
  tel_rber_worst : Telemetry.Registry.Gauge.t;
}

let make_tel registry =
  let latency op lo hi =
    Telemetry.Registry.histogram registry ~labels:[ ("op", op) ]
      ~help:"Modeled flash operation latency" ~lo ~hi "flash_op_latency_us"
  in
  let fault_counter cls =
    Telemetry.Registry.counter registry
      ~labels:[ ("class", cls) ]
      ~help:"Faults injected into the medium" "flash_faults_injected_total"
  in
  {
    tel_programs =
      Telemetry.Registry.counter registry ~help:"fPage programs"
        "flash_programs_total";
    tel_reads =
      Telemetry.Registry.counter registry ~help:"fPage/slot reads"
        "flash_reads_total";
    tel_erases =
      Telemetry.Registry.counter registry ~help:"Block erases"
        "flash_erases_total";
    tel_read_us = latency "read" 0. 500.;
    tel_program_us = latency "program" 0. 2_000.;
    tel_erase_us = latency "erase" 0. 10_000.;
    tel_faults_transient = fault_counter "transient";
    tel_faults_sticky = fault_counter "sticky";
    tel_faults_silent = fault_counter "silent";
    tel_pec_max =
      Telemetry.Registry.gauge registry
        ~help:"Highest per-block P/E cycle count" "flash_pec_max";
    tel_pec_min =
      Telemetry.Registry.gauge registry
        ~help:"Lowest per-block P/E cycle count" "flash_pec_min";
    tel_rber_worst =
      Telemetry.Registry.gauge registry
        ~help:"Worst post-erase page RBER seen so far (running max)"
        "flash_rber_worst";
  }

type t = {
  geometry : Geometry.t;
  model : Rber_model.t;
  blocks : block_state array;
  tel : tel;
  mutable programs : int;
  mutable reads : int;
  mutable erases : int;
  mutable faults_injected : int;
  (* Fleet minimum P/E count, maintained incrementally so erase never
     scans the block array: [pec_min] is min over blocks of pec and
     [at_min] counts the blocks sitting at it.  When the last block
     leaves the minimum, the new minimum is exactly [pec_min + 1] (the
     block just erased landed there), and the recount scan runs at most
     once per [blocks] erases — amortized O(1). *)
  mutable pec_min : int;
  mutable at_min : int;
}

let create ?registry ~rng ~geometry ~model () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  (* Endurance variance has a block-level component (process corner,
     position on the die) and a page-level one (layer-to-layer variation
     within the block, [42]); split the model's lognormal sigma evenly so
     the total spread matches {!Rber_model.sample_strength}. *)
  let component_sigma = model.Rber_model.strength_sigma *. sqrt 0.5 in
  let make_block _ =
    let block_strength =
      Sim.Dist.lognormal rng ~mu:0. ~sigma:component_sigma
    in
    {
      pec = 0;
      pages =
        Array.init geometry.Geometry.pages_per_block (fun _ ->
            {
              strength =
                block_strength
                *. Sim.Dist.lognormal rng ~mu:0. ~sigma:component_sigma;
              state = Free;
              reads_since_erase = 0;
              transient_rber = 0.;
              sticky_rber = 0.;
              corrupt_mask = 0;
            });
    }
  in
  {
    geometry;
    model;
    blocks = Array.init geometry.Geometry.blocks make_block;
    tel = make_tel registry;
    programs = 0;
    reads = 0;
    erases = 0;
    faults_injected = 0;
    pec_min = 0;
    at_min = geometry.Geometry.blocks;
  }

let geometry t = t.geometry
let model t = t.model

let get_block t block =
  if block < 0 || block >= Array.length t.blocks then
    invalid_arg "Chip: block out of range";
  t.blocks.(block)

let get_page t block page =
  let b = get_block t block in
  if page < 0 || page >= Array.length b.pages then
    invalid_arg "Chip: page out of range";
  (b, b.pages.(page))

(* Modeled sense + transfer + decode time of reading [data_kib] off one
   fPage at its current error rate; only evaluated when the latency
   histogram is live. *)
let observe_read_latency t (b : block_state) (p : page) ~data_kib =
  if Telemetry.Registry.Histogram.is_active t.tel.tel_read_us then begin
    let rber =
      Rber_model.rber ~reads:p.reads_since_erase t.model ~pec:b.pec
        ~strength:p.strength
    in
    let raw_errors =
      rber *. float_of_int (Geometry.fpage_data_bytes t.geometry * 8)
    in
    Telemetry.Registry.Histogram.observe t.tel.tel_read_us
      (Latency.fpage_read_us Latency.default ~data_kib ~raw_errors ~retries:0)
  end

let program t ~block ~page slots =
  let _, p = get_page t block page in
  if Array.length slots <> t.geometry.Geometry.opages_per_fpage then
    invalid_arg "Chip.program: slot array length mismatch";
  (match p.state with
  | Free -> ()
  | Programmed _ ->
      invalid_arg "Chip.program: page already programmed (erase first)");
  p.state <- Programmed (Array.copy slots);
  t.programs <- t.programs + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_programs;
  if Telemetry.Registry.Histogram.is_active t.tel.tel_program_us then
    Telemetry.Registry.Histogram.observe t.tel.tel_program_us
      (Latency.fpage_program_us Latency.default
         ~data_kib:
           (float_of_int (Geometry.fpage_data_bytes t.geometry) /. 1024.))

let read t ~block ~page =
  let b, p = get_page t block page in
  t.reads <- t.reads + 1;
  p.reads_since_erase <- p.reads_since_erase + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_reads;
  observe_read_latency t b p
    ~data_kib:(float_of_int (Geometry.fpage_data_bytes t.geometry) /. 1024.);
  match p.state with
  | Free -> Free
  | Programmed slots ->
      let copy = Array.copy slots in
      if p.corrupt_mask <> 0 then
        Array.iteri
          (fun i v -> copy.(i) <- Option.map (fun x -> x lxor p.corrupt_mask) v)
          copy;
      Programmed copy

let read_slot t ~block ~page ~slot =
  let b, p = get_page t block page in
  if slot < 0 || slot >= t.geometry.Geometry.opages_per_fpage then
    invalid_arg "Chip.read_slot: slot out of range";
  t.reads <- t.reads + 1;
  p.reads_since_erase <- p.reads_since_erase + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_reads;
  observe_read_latency t b p
    ~data_kib:(float_of_int t.geometry.Geometry.opage_bytes /. 1024.);
  match p.state with
  | Free -> invalid_arg "Chip.read_slot: page is erased"
  | Programmed slots ->
      if p.corrupt_mask = 0 then slots.(slot)
      else Option.map (fun x -> x lxor p.corrupt_mask) slots.(slot)

let erase t ~block =
  let b = get_block t block in
  b.pec <- b.pec + 1;
  if b.pec - 1 = t.pec_min then begin
    t.at_min <- t.at_min - 1;
    if t.at_min = 0 then begin
      t.pec_min <- t.pec_min + 1;
      let count = ref 0 in
      Array.iter
        (fun (blk : block_state) -> if blk.pec = t.pec_min then incr count)
        t.blocks;
      t.at_min <- !count
    end
  end;
  Array.iter
    (fun p ->
      p.state <- Free;
      p.reads_since_erase <- 0;
      (* Injected faults model damaged *content* and charge leakage, not
         permanent silicon damage: an erase rewrites the cells and clears
         them all. *)
      p.transient_rber <- 0.;
      p.sticky_rber <- 0.;
      p.corrupt_mask <- 0)
    b.pages;
  t.erases <- t.erases + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_erases;
  if Telemetry.Registry.Histogram.is_active t.tel.tel_erase_us then
    Telemetry.Registry.Histogram.observe t.tel.tel_erase_us
      (Latency.erase_us Latency.default);
  if Telemetry.Registry.Gauge.is_active t.tel.tel_pec_max then begin
    Telemetry.Registry.Gauge.set t.tel.tel_pec_max
      (Float.max
         (Telemetry.Registry.Gauge.value t.tel.tel_pec_max)
         (float_of_int b.pec));
    Telemetry.Registry.Gauge.set t.tel.tel_pec_min (float_of_int t.pec_min);
    (* Post-erase RBER of the freshly worn block: pure wear, no read
       disturb, no injected faults (erase just cleared both). *)
    let block_worst =
      Array.fold_left
        (fun worst (p : page) ->
          Float.max worst
            (Rber_model.rber t.model ~pec:b.pec ~strength:p.strength))
        0. b.pages
    in
    Telemetry.Registry.Gauge.set t.tel.tel_rber_worst
      (Float.max
         (Telemetry.Registry.Gauge.value t.tel.tel_rber_worst)
         block_worst)
  end

let pec t ~block = (get_block t block).pec
let pec_min t = t.pec_min

let strength t ~block ~page =
  let _, p = get_page t block page in
  p.strength

let rber t ~block ~page =
  let b, p = get_page t block page in
  Rber_model.rber ~reads:p.reads_since_erase t.model ~pec:b.pec
    ~strength:p.strength
  +. p.transient_rber +. p.sticky_rber

let rber_after_next_erase t ~block ~page =
  (* An erase clears the accumulated read disturb along with the data. *)
  let b, p = get_page t block page in
  Rber_model.rber t.model ~pec:(b.pec + 1) ~strength:p.strength

let reads_since_erase t ~block ~page =
  let _, p = get_page t block page in
  p.reads_since_erase

let is_free t ~block ~page =
  let _, p = get_page t block page in
  match p.state with Free -> true | Programmed _ -> false

let programs t = t.programs
let reads t = t.reads
let erases t = t.erases

let inject t ~block ~page fault =
  let _, p = get_page t block page in
  (match fault with
  | Transient_rber extra ->
      if extra < 0. then invalid_arg "Chip.inject: negative transient rber";
      p.transient_rber <- p.transient_rber +. extra;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_transient
  | Sticky_rber extra ->
      if extra < 0. then invalid_arg "Chip.inject: negative sticky rber";
      p.sticky_rber <- p.sticky_rber +. extra;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_sticky
  | Silent_corruption mask ->
      if mask = 0 then invalid_arg "Chip.inject: zero corruption mask";
      p.corrupt_mask <- p.corrupt_mask lxor mask;
      Telemetry.Registry.Counter.incr t.tel.tel_faults_silent);
  t.faults_injected <- t.faults_injected + 1

let take_transient t ~block ~page =
  let _, p = get_page t block page in
  let extra = p.transient_rber in
  p.transient_rber <- 0.;
  extra

let sticky_rber t ~block ~page =
  let _, p = get_page t block page in
  p.sticky_rber

let faults_injected t = t.faults_injected
