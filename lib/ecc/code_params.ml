type t = {
  data_bytes : int;
  spare_bytes : int;
  m : int;
  capability : int;
  n_bits : int;
  code_rate : float;
}

let smallest_field_degree total_bits =
  let rec search m = if (1 lsl m) - 1 >= total_bits then m else search (m + 1) in
  search 3

let for_sector ~data_bytes ~spare_bytes =
  if data_bytes <= 0 then invalid_arg "Code_params: data_bytes must be > 0";
  if spare_bytes <= 0 then invalid_arg "Code_params: spare_bytes must be > 0";
  let n_bits = 8 * (data_bytes + spare_bytes) in
  let m = smallest_field_degree n_bits in
  let capability = 8 * spare_bytes / m in
  if capability <= 0 then
    invalid_arg "Code_params: spare area too small for any correction";
  {
    data_bytes;
    spare_bytes;
    m;
    capability;
    n_bits;
    code_rate =
      float_of_int data_bytes /. float_of_int (data_bytes + spare_bytes);
  }

let codec ?registry t =
  Bch.create ?registry ~m:t.m ~capability:t.capability ()

let pp fmt t =
  Format.fprintf fmt
    "BCH(m=%d, t=%d) over %dB data + %dB spare (rate %.3f)" t.m t.capability
    t.data_bytes t.spare_bytes t.code_rate
