(** Finite-field arithmetic in GF(2^m), 3 <= m <= 15.

    Elements are ints in \[0, 2^m).  Addition is xor.  Multiplication and
    inversion go through precomputed log/antilog tables over a standard
    primitive polynomial for each m, so a field is a value you construct
    once and thread through the codec. *)

type t

val create : int -> t
(** [create m] builds GF(2^m).  Fields are immutable and memoized: repeated
    calls with the same [m] return the same shared instance, which is safe
    to use from any domain.  @raise Invalid_argument unless
    [3 <= m <= 15]. *)

val m : t -> int
val order : t -> int
(** Number of nonzero elements, [2^m - 1] (the multiplicative order). *)

val primitive_poly : t -> int
(** The primitive polynomial as a bit mask including the x^m term. *)

val add : t -> int -> int -> int
val mul : t -> int -> int -> int
val inv : t -> int -> int
(** @raise Division_by_zero on 0. *)

val div : t -> int -> int -> int
val pow : t -> int -> int -> int
(** [pow f a e]: [a] to the power [e]; [e] may be negative for nonzero [a].
    [pow f 0 0] is 1 by convention. *)

val alpha_pow : t -> int -> int
(** [alpha_pow f i] is the primitive element to the power [i] ([i] may be any
    int; reduced mod order). *)

val exp : t -> int -> int
(** [exp f i] is [alpha_pow f i] without the modular reduction, a raw read
    of the doubled antilog table: valid only for [0 <= i < 2 * order f].
    Hot loops that keep exponents reduced by stride addition (syndrome
    accumulation, Chien stepping) use this to skip the two divisions
    [alpha_pow] pays per call. *)

val log_alpha : t -> int -> int
(** Discrete log base alpha.  @raise Division_by_zero on 0. *)

val exp_table : t -> int array
(** The doubled antilog table backing {!exp}: [2 * order f] entries with
    [(exp_table f).(i) = exp f i].  Exposed so the innermost decode loops
    can hoist the array out of the per-term call; callers must treat it as
    read-only — it is the live table shared by every user of the field. *)
