type t = { bits : int; data : Bytes.t }

let create bits =
  if bits < 0 then invalid_arg "Bitarray.create: negative length";
  { bits; data = Bytes.make ((bits + 7) / 8) '\000' }

let length t = t.bits

let check t i =
  if i < 0 || i >= t.bits then invalid_arg "Bitarray: index out of bounds"

let get t i =
  check t i;
  Char.code (Bytes.get t.data (i lsr 3)) land (1 lsl (i land 7)) <> 0

let set t i value =
  check t i;
  let byte = Char.code (Bytes.get t.data (i lsr 3)) in
  let mask = 1 lsl (i land 7) in
  let byte = if value then byte lor mask else byte land lnot mask in
  Bytes.set t.data (i lsr 3) (Char.chr (byte land 0xff))

let flip t i = set t i (not (get t i))
let copy t = { bits = t.bits; data = Bytes.copy t.data }

let byte_length t = Bytes.length t.data

let byte t i =
  if i < 0 || i >= Bytes.length t.data then
    invalid_arg "Bitarray.byte: index out of bounds";
  Char.code (Bytes.get t.data i)

let set_byte t i v =
  if i < 0 || i >= Bytes.length t.data then
    invalid_arg "Bitarray.set_byte: index out of bounds";
  (* Mask the final partial byte so padding bits past [t.bits] stay clear
     (popcount/equal rely on that invariant). *)
  let v = v land 0xff in
  let v =
    if i = Bytes.length t.data - 1 && t.bits land 7 <> 0 then
      v land ((1 lsl (t.bits land 7)) - 1)
    else v
  in
  Bytes.set t.data i (Char.chr v)

let popcount_byte =
  let table = Array.make 256 0 in
  for b = 1 to 255 do
    table.(b) <- table.(b lsr 1) + (b land 1)
  done;
  fun b -> table.(b)

let popcount t =
  let acc = ref 0 in
  Bytes.iter (fun c -> acc := !acc + popcount_byte (Char.code c)) t.data;
  !acc

let equal a b = a.bits = b.bits && Bytes.equal a.data b.data

let xor_into ~dst src =
  if dst.bits <> src.bits then invalid_arg "Bitarray.xor_into: length mismatch";
  for i = 0 to Bytes.length dst.data - 1 do
    let x = Char.code (Bytes.get dst.data i) lxor Char.code (Bytes.get src.data i) in
    Bytes.set dst.data i (Char.chr x)
  done

let of_bytes bytes =
  { bits = 8 * Bytes.length bytes; data = Bytes.copy bytes }

let to_bytes t = Bytes.copy t.data

let of_string s =
  let t = create (String.length s) in
  String.iteri
    (fun i c ->
      match c with
      | '0' -> ()
      | '1' -> set t i true
      | _ -> invalid_arg "Bitarray.of_string: expected '0' or '1'")
    s;
  t

let to_string t =
  String.init t.bits (fun i -> if get t i then '1' else '0')

let randomize rng t =
  for i = 0 to Bytes.length t.data - 1 do
    Bytes.set t.data i (Char.chr (Sim.Rng.int rng 256))
  done;
  (* Clear padding bits past [t.bits] so popcount/equal stay meaningful. *)
  let tail = t.bits land 7 in
  if tail <> 0 && Bytes.length t.data > 0 then begin
    let last = Bytes.length t.data - 1 in
    let mask = (1 lsl tail) - 1 in
    Bytes.set t.data last (Char.chr (Char.code (Bytes.get t.data last) land mask))
  end

let iter_set t f =
  for byte_index = 0 to Bytes.length t.data - 1 do
    let byte = Char.code (Bytes.get t.data byte_index) in
    if byte <> 0 then
      for bit = 0 to 7 do
        if byte land (1 lsl bit) <> 0 then f ((byte_index lsl 3) lor bit)
      done
  done
