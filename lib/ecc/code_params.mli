(** Sizing of BCH codes to flash sector geometry.

    Flash controllers split each physical page into fixed-size codewords:
    a chunk of data plus its share of the spare area.  Given those two byte
    counts this module picks the smallest GF(2^m) whose codeword length
    covers the sector and derives the correction capability from the spare
    budget as t = floor(spare_bits / m) (each corrected error costs m parity
    bits; Marelli & Micheloni 2016).  This is the model behind the paper's
    code-rate discussion and Fig. 2. *)

type t = private {
  data_bytes : int;  (** payload bytes per codeword *)
  spare_bytes : int;  (** parity budget per codeword *)
  m : int;  (** field degree; natural length is 2^m - 1 *)
  capability : int;  (** correctable bit errors per codeword *)
  n_bits : int;  (** shortened codeword length actually stored, in bits *)
  code_rate : float;  (** data / (data + spare) *)
}

val for_sector : data_bytes:int -> spare_bytes:int -> t
(** @raise Invalid_argument if either size is non-positive or the spare
    cannot buy even a single correctable error. *)

val codec : ?registry:Telemetry.Registry.t -> t -> Bch.t
(** Instantiate the live {!Bch} codec matching these parameters (capability
    clamped so the generator fits; only feasible up to m = 15, i.e. data
    chunks below 4 KiB). *)

val pp : Format.formatter -> t -> unit
