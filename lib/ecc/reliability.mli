(** Analytic reliability of an ECC-protected flash page.

    With raw bit-error rate [rber], bit flips are independent, so the number
    of errors in an n-bit codeword is Binomial(n, rber) and the codeword is
    uncorrectable when more than [t] bits flip.  These closed forms are what
    let the simulator age fleets of devices for simulated years without
    running the live BCH decoder on every read; the test suite checks them
    against the real codec. *)

val default_codeword_target : float
(** Default acceptable per-codeword uncorrectable probability (1e-11),
    in the range vendors engineer page UBER targets for. *)

val codeword_fail_prob : Code_params.t -> rber:float -> float
(** Probability that one codeword exceeds its correction capability. *)

val page_fail_prob : Code_params.t -> codewords:int -> rber:float -> float
(** Probability that at least one of [codewords] codewords in a page is
    uncorrectable. *)

val tolerable_rber : ?target:float -> Code_params.t -> float
(** Largest raw bit-error rate at which the codeword failure probability
    stays below [target] (default {!default_codeword_target}).  This is the
    retirement threshold: a page whose RBER exceeds it is "tired" for this
    code.  Results are memoized per [(params, target)] (the solve is pure
    and fleet runs request the same few code levels per device); the cache
    is safe to hit from multiple [Parallel.Pool] domains. *)

val expected_errors : Code_params.t -> rber:float -> float
(** Mean raw errors per codeword, [n_bits * rber]; handy for latency models
    where decode effort scales with error count. *)
