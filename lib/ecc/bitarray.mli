(** Packed bit arrays (8 bits per byte) for codewords.

    Positions are 0-based; all operations bounds-check. *)

type t

val create : int -> t
(** [create len] is a zeroed array of [len] bits. *)

val length : t -> int
val get : t -> int -> bool
val set : t -> int -> bool -> unit
val flip : t -> int -> unit
val copy : t -> t

val popcount : t -> int
(** Number of set bits. *)

val byte_length : t -> int
(** Number of underlying bytes, [(length + 7) / 8]. *)

val byte : t -> int -> int
(** [byte t i] is bits [8i .. 8i+7] as an int (bit [8i] is the LSB); bits
    past the length read as 0.  The byte-at-a-time BCH encoder consumes
    codewords through this. *)

val set_byte : t -> int -> int -> unit
(** [set_byte t i v] stores the low 8 bits of [v] into bits [8i .. 8i+7];
    bits past the length are dropped so the padding invariant holds. *)

val equal : t -> t -> bool
val xor_into : dst:t -> t -> unit
(** [xor_into ~dst src] sets [dst] to [dst xor src].
    @raise Invalid_argument on length mismatch. *)

val of_bytes : bytes -> t
(** Interpret each byte LSB-first: bit [8*i + j] is bit [j] of byte [i]. *)

val to_bytes : t -> bytes
(** Inverse of {!of_bytes}; the last byte is zero-padded when the length is
    not a multiple of 8. *)

val of_string : string -> t
(** [of_string "10110"] builds a 5-bit array from ASCII ['0']/['1'].
    Convenient in tests.  @raise Invalid_argument on other characters. *)

val to_string : t -> string

val randomize : Sim.Rng.t -> t -> unit
(** Fill with uniformly random bits. *)

val iter_set : t -> (int -> unit) -> unit
(** Call the function on each set position, in increasing order. *)
