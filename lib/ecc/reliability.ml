let default_codeword_target = 1e-11

let codeword_fail_prob (params : Code_params.t) ~rber =
  Sim.Special.binomial_tail params.n_bits rber params.capability

let page_fail_prob params ~codewords ~rber =
  if codewords <= 0 then invalid_arg "Reliability.page_fail_prob: codewords";
  let p = codeword_fail_prob params ~rber in
  1. -. ((1. -. p) ** float_of_int codewords)

(* The bisection solve below is pure in (params, target) but costs dozens
   of binomial-tail evaluations; fleet experiments ask for the same handful
   of code levels once per device, so memoize.  Code_params.t is a scalar
   record, fine as a structural hash key.  The mutex keeps the table safe
   under [Parallel.Pool] domains; values are immutable floats. *)
let tolerable_cache : (Code_params.t * float, float) Hashtbl.t =
  Hashtbl.create 32

let tolerable_mutex = Mutex.create ()

let tolerable_rber ?(target = default_codeword_target)
    (params : Code_params.t) =
  Mutex.protect tolerable_mutex (fun () ->
      let key = (params, target) in
      match Hashtbl.find_opt tolerable_cache key with
      | Some rber -> rber
      | None ->
          (* codeword_fail_prob is monotonically increasing in rber. *)
          let rber =
            Sim.Special.solve_monotone
              ~f:(fun rber -> codeword_fail_prob params ~rber)
              ~target ~lo:0. ~hi:0.5 ()
          in
          Hashtbl.add tolerable_cache key rber;
          rber)

let expected_errors (params : Code_params.t) ~rber =
  float_of_int params.n_bits *. rber
