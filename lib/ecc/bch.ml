(* Codec-level telemetry, bound once per code at creation time.  Labeled
   by the code parameters so distinct code levels (different capabilities)
   show up as separate series. *)
type tel = {
  tel_decodes : Telemetry.Registry.Counter.t;
  tel_corrected : Telemetry.Registry.Counter.t;
  tel_uncorrectable : Telemetry.Registry.Counter.t;
}

(* The immutable half of a codec: field tables, generator, and the
   precomputed encode tables.  One core per (m, capability) is built and
   then shared by every codec instance — including across
   [Parallel.Pool] domains, since nothing here is ever mutated after
   construction.  Telemetry handles stay per-instance (see {!t}). *)
type core = {
  field : Galois.t;
  n : int;
  k : int;
  capability : int;
  generator : Gf_poly.t; (* over GF(2): coefficients 0/1 *)
  parity : int; (* deg g = n - k *)
  (* Byte-at-a-time encode state.  The LFSR register is kept left-aligned
     ("padded"): bit (j + pad) of the register holds the coefficient of
     x^j, so the top 8 coefficients always sit in the last byte and one
     table lookup consumes a whole input byte. *)
  reg_bytes : int; (* ceil (parity / 8) *)
  pad : int; (* reg_bytes * 8 - parity *)
  g_pad : Bytes.t; (* (g(x) - x^parity) << pad *)
  enc_table : Bytes.t array; (* 256 entries: (u(x) x^parity mod g) << pad *)
  (* Byte-at-a-time syndrome state: for the odd syndrome i = 2kk + 1,
     [syn_ltable.(kk).(v)] is log_alpha of (XOR over set bits j of byte v
     of alpha^(i*j)), or -1 when that sum is zero.  A whole received byte
     then contributes exp (table entry + i * byte_base) to S_i. *)
  syn_ltable : int array array;
}

type t = { core : core; tel : tel }

let make_tel reg ~m ~capability =
  let labels = [ ("m", string_of_int m); ("t", string_of_int capability) ] in
  {
    tel_decodes =
      Telemetry.Registry.counter reg ~labels
        ~help:"BCH decode attempts (syndrome computations)" "bch_decodes_total";
    tel_corrected =
      Telemetry.Registry.counter reg ~labels
        ~help:"Bit errors corrected by the BCH decoder (data and parity)"
        "bch_corrected_bits_total";
    tel_uncorrectable =
      Telemetry.Registry.counter reg ~labels
        ~help:"BCH decodes that detected an uncorrectable error pattern"
        "bch_uncorrectable_total";
  }

(* --- encode-table construction ---------------------------------------- *)

let bytes_xor_into dst src =
  for i = 0 to Bytes.length dst - 1 do
    Bytes.set dst i
      (Char.chr (Char.code (Bytes.get dst i) lxor Char.code (Bytes.get src i)))
  done

let bytes_shift_left1 b =
  for i = Bytes.length b - 1 downto 1 do
    Bytes.set b i
      (Char.chr
         (((Char.code (Bytes.get b i) lsl 1)
          lor (Char.code (Bytes.get b (i - 1)) lsr 7))
         land 0xff))
  done;
  Bytes.set b 0 (Char.chr ((Char.code (Bytes.get b 0) lsl 1) land 0xff))

let build_core ~m ~capability =
  if capability <= 0 then invalid_arg "Bch.create: capability must be > 0";
  let field = Galois.create m in
  let n = Galois.order field in
  (* g(x) = lcm of minimal polynomials of alpha^1 .. alpha^2t.  Conjugacy
     classes repeat, so track which exponents are already covered. *)
  let covered = Array.make n false in
  let generator = ref Gf_poly.one in
  for i = 1 to 2 * capability do
    let i = i mod n in
    if not covered.(i) then begin
      (* Mark the whole conjugacy class of alpha^i. *)
      let rec mark j =
        if not covered.(j) then begin
          covered.(j) <- true;
          mark (2 * j mod n)
        end
      in
      mark i;
      generator :=
        Gf_poly.mul field !generator (Gf_poly.minimal_polynomial field i)
    end
  done;
  let generator = !generator in
  Array.iter
    (fun c ->
      if c <> 0 && c <> 1 then
        (* The lcm of minimal polynomials always lies over GF(2); anything
           else signals a bug in the field tables. *)
        assert false)
    generator;
  let parity = Gf_poly.degree generator in
  if parity >= n then
    invalid_arg "Bch.create: capability too large for this field (k <= 0)";
  let reg_bytes = (parity + 7) / 8 in
  let pad = (reg_bytes * 8) - parity in
  let g_pad = Bytes.make reg_bytes '\000' in
  for j = 0 to parity - 1 do
    if Gf_poly.coefficient generator j = 1 then begin
      let b = j + pad in
      Bytes.set g_pad (b lsr 3)
        (Char.chr (Char.code (Bytes.get g_pad (b lsr 3)) lor (1 lsl (b land 7))))
    end
  done;
  (* enc_table.(u) = (u(x) * x^parity) mod g, pre-shifted by pad, via the
     recurrence u(x) x^parity = ((u >> 1)(x) x^parity) * x + u_0 x^parity;
     x^parity mod g is g minus its monic term, i.e. g_pad itself. *)
  let enc_table = Array.init 256 (fun _ -> Bytes.make reg_bytes '\000') in
  for u = 1 to 255 do
    let e = enc_table.(u) in
    Bytes.blit enc_table.(u lsr 1) 0 e 0 reg_bytes;
    let top = Char.code (Bytes.get e (reg_bytes - 1)) land 0x80 <> 0 in
    bytes_shift_left1 e;
    if top then bytes_xor_into e g_pad;
    if u land 1 = 1 then bytes_xor_into e g_pad
  done;
  let syn_ltable =
    Array.init capability (fun kk ->
        let i = (2 * kk) + 1 in
        let alpha_ij = Array.init 8 (fun j -> Galois.alpha_pow field (i * j)) in
        let tbl = Array.make 256 0 in
        for v = 1 to 255 do
          let j =
            (* index of the lowest set bit of v *)
            let rec go j = if v land (1 lsl j) <> 0 then j else go (j + 1) in
            go 0
          in
          tbl.(v) <- tbl.(v land (v - 1)) lxor alpha_ij.(j)
        done;
        Array.map (fun x -> if x = 0 then -1 else Galois.log_alpha field x) tbl)
  in
  {
    field;
    n;
    k = n - parity;
    capability;
    generator;
    parity;
    reg_bytes;
    pad;
    g_pad;
    enc_table;
    syn_ltable;
  }

(* Cores are pure functions of (m, capability), so one is built per key
   and shared; the mutex only serializes cold builds.  Fleet experiments
   create one codec per simulated device — the Galois tables and the
   minimal-polynomial LCM are paid once, not per device. *)
let cache : (int * int, core) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let core_for ~m ~capability =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache (m, capability) with
      | Some core -> core
      | None ->
          let core = build_core ~m ~capability in
          Hashtbl.add cache (m, capability) core;
          core)

let create ?registry ~m ~capability () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  { core = core_for ~m ~capability; tel = make_tel registry ~m ~capability }

let m t = Galois.m t.core.field
let n t = t.core.n
let k t = t.core.k
let capability t = t.core.capability
let parity_bits t = t.core.parity

let code_rate t ~data_bits =
  float_of_int data_bits /. float_of_int (data_bits + parity_bits t)

let generator t = t.core.generator

(* Systematic encoding: parity = d(x) x^{deg g} mod g(x).  Data bit i of
   the shortened message corresponds to codeword coefficient
   x^{parity + i}; the division consumes the data highest-degree first, a
   whole byte per step through [enc_table] (the top partial byte goes
   through the classic bit-at-a-time LFSR step). *)
let encode t data =
  let core = t.core in
  let data_bits = Bitarray.length data in
  if data_bits > core.k then invalid_arg "Bch.encode: data longer than k";
  let nb = core.reg_bytes in
  let s = Bytes.make nb '\000' in
  let full = data_bits lsr 3 in
  for i = data_bits - 1 downto full lsl 3 do
    let top = Char.code (Bytes.get s (nb - 1)) land 0x80 <> 0 in
    let feedback = top <> Bitarray.get data i in
    bytes_shift_left1 s;
    if feedback then bytes_xor_into s core.g_pad
  done;
  for bi = full - 1 downto 0 do
    let u = Char.code (Bytes.get s (nb - 1)) lxor Bitarray.byte data bi in
    for j = nb - 1 downto 1 do
      Bytes.set s j (Bytes.get s (j - 1))
    done;
    Bytes.set s 0 '\000';
    bytes_xor_into s core.enc_table.(u)
  done;
  (* Un-pad: parity bit j is register bit (j + pad). *)
  let out = Bitarray.create core.parity in
  let pad = core.pad in
  for i = 0 to Bitarray.byte_length out - 1 do
    if pad = 0 then Bitarray.set_byte out i (Char.code (Bytes.get s i))
    else
      let lo = Char.code (Bytes.get s i) lsr pad in
      let hi =
        if i + 1 < nb then
          (Char.code (Bytes.get s (i + 1)) lsl (8 - pad)) land 0xff
        else 0
      in
      Bitarray.set_byte out i (lo lor hi)
  done;
  out

(* Syndrome S_i = r(alpha^i).  The received polynomial r(x) has parity bits
   at degrees [0, parity) and data bits at degrees [parity, parity+len).
   Three hot-path savings over the textbook loop: a whole received byte is
   folded in per step (its 8 bits pre-mixed into [syn_ltable], so one
   antilog read covers the byte), exponents walk by stride addition with a
   conditional subtract (no division per term), and only odd syndromes are
   accumulated — binary codes satisfy the Frobenius identity
   S_{2i} = S_i^2, so the even half follows by squaring. *)
let check_word_lengths core ~data ~parity =
  if Bitarray.length parity <> core.parity then
    invalid_arg "Bch: parity length mismatch";
  if Bitarray.length data > core.k then invalid_arg "Bch: data longer than k"

let syndromes_of_core core ~data ~parity =
  check_word_lengths core ~data ~parity;
  let field = core.field in
  let exp_t = Galois.exp_table field in
  let order = core.n in
  let count = 2 * core.capability in
  let s = Array.make (count + 1) 0 in
  let pbytes = Bitarray.byte_length parity in
  let dbytes = Bitarray.byte_length data in
  for kk = 0 to core.capability - 1 do
    let i = (2 * kk) + 1 in
    let tbl = core.syn_ltable.(kk) in
    (* byte b of a word based at degree [base] contributes
       alpha^(i * (base + 8b)) * mix(byte); both factors stay in the log
       domain, the exponent of the first walking by stride addition. *)
    let stride = 8 * i mod order in
    let acc = ref 0 in
    let e = ref 0 in
    for b = 0 to pbytes - 1 do
      let v = Bitarray.byte parity b in
      (if v <> 0 then
         let lv = tbl.(v) in
         if lv >= 0 then acc := !acc lxor exp_t.(lv + !e));
      let next = !e + stride in
      e := if next >= order then next - order else next
    done;
    let e = ref (i * core.parity mod order) in
    for b = 0 to dbytes - 1 do
      let v = Bitarray.byte data b in
      (if v <> 0 then
         let lv = tbl.(v) in
         if lv >= 0 then acc := !acc lxor exp_t.(lv + !e));
      let next = !e + stride in
      e := if next >= order then next - order else next
    done;
    s.(i) <- !acc
  done;
  for j = 1 to core.capability do
    let v = s.(j) in
    s.(2 * j) <-
      (if v = 0 then 0 else Galois.exp field (2 * Galois.log_alpha field v))
  done;
  s

let syndromes t ~data ~parity = syndromes_of_core t.core ~data ~parity

(* All syndromes vanish iff the odd ones do (the evens are their
   squares). *)
let any_odd_nonzero s count =
  let rec go i = i <= count && (s.(i) <> 0 || go (i + 2)) in
  go 1

(* The scrub path calls this on clean data almost always, so the clean
   case costs one pass per odd syndrome; corrupt words exit on the first
   nonzero syndrome — usually S_1, computed straight off the set-bit
   positions. *)
let syndromes_zero t ~data ~parity =
  let core = t.core in
  check_word_lengths core ~data ~parity;
  let field = core.field in
  let order = core.n in
  let npos = Bitarray.popcount parity + Bitarray.popcount data in
  npos = 0
  || begin
       let pos = Array.make npos 0 in
       let fill = ref 0 in
       Bitarray.iter_set parity (fun p ->
           pos.(!fill) <- p;
           incr fill);
       Bitarray.iter_set data (fun i ->
           pos.(!fill) <- core.parity + i;
           incr fill);
       let s1 = ref 0 in
       Array.iter (fun p -> s1 := !s1 lxor Galois.exp field p) pos;
       !s1 = 0
       && begin
            let count = 2 * core.capability in
            let exps = Array.copy pos in
            let strides =
              Array.map
                (fun p ->
                  let twice = 2 * p in
                  if twice >= order then twice - order else twice)
                pos
            in
            let rec next i =
              i > count
              || begin
                   let acc = ref 0 in
                   for j = 0 to npos - 1 do
                     let e = exps.(j) + strides.(j) in
                     let e = if e >= order then e - order else e in
                     exps.(j) <- e;
                     acc := !acc lxor Galois.exp field e
                   done;
                   !acc = 0 && next (i + 2)
                 end
            in
            next 3
          end
     end

(* Berlekamp-Massey: returns the error locator polynomial sigma(x). *)
let berlekamp_massey core syndromes =
  let field = core.field in
  let count = 2 * core.capability in
  let sigma = ref Gf_poly.one in
  let prev = ref Gf_poly.one in
  let length = ref 0 in
  let shift_amount = ref 1 in
  let prev_discrepancy = ref 1 in
  for step = 0 to count - 1 do
    (* discrepancy d = S_{step+1} + sum sigma_i * S_{step+1-i} *)
    let discrepancy = ref syndromes.(step + 1) in
    for i = 1 to !length do
      let s_index = step + 1 - i in
      if s_index >= 1 then
        discrepancy :=
          Galois.add field !discrepancy
            (Galois.mul field (Gf_poly.coefficient !sigma i) syndromes.(s_index))
    done;
    if !discrepancy = 0 then incr shift_amount
    else begin
      let correction =
        Gf_poly.scale field
          (Galois.div field !discrepancy !prev_discrepancy)
          (Gf_poly.shift !prev !shift_amount)
      in
      let candidate = Gf_poly.add field !sigma correction in
      if 2 * !length <= step then begin
        prev := !sigma;
        prev_discrepancy := !discrepancy;
        length := step + 1 - !length;
        shift_amount := 1;
        sigma := candidate
      end
      else begin
        sigma := candidate;
        incr shift_amount
      end
    end
  done;
  !sigma

type decode_result = Corrected of int list | Uncorrectable

let decode t ~data ~parity =
  Telemetry.Registry.Counter.incr t.tel.tel_decodes;
  let core = t.core in
  let syndromes = syndromes_of_core core ~data ~parity in
  if not (any_odd_nonzero syndromes (2 * core.capability)) then Corrected []
  else begin
    let sigma = berlekamp_massey core syndromes in
    let errors = Gf_poly.degree sigma in
    if errors > core.capability then begin
      Telemetry.Registry.Counter.incr t.tel.tel_uncorrectable;
      Uncorrectable
    end
    else begin
      (* Chien search: position p is in error iff sigma(alpha^{-p}) = 0.
         One log-domain register per nonzero coefficient, stepped by
         alpha^{-j} via stride addition; sigma has at most [errors] roots
         in the whole field, so the scan stops as soon as that many are
         found.  Only positions within the (possibly shortened) received
         word are valid; a root elsewhere means the decoder strayed
         outside the word, i.e. the error pattern was uncorrectable. *)
      let field = core.field in
      let order = core.n in
      let parity_len = core.parity in
      let data_len = Bitarray.length data in
      let used = parity_len + data_len in
      let nz = ref 0 in
      for j = 1 to errors do
        if Gf_poly.coefficient sigma j <> 0 then incr nz
      done;
      let nz = !nz in
      let logs = Array.make nz 0 in
      let strides = Array.make nz 0 in
      let fill = ref 0 in
      for j = 1 to errors do
        let c = Gf_poly.coefficient sigma j in
        if c <> 0 then begin
          logs.(!fill) <- Galois.log_alpha field c;
          strides.(!fill) <- order - j;
          incr fill
        end
      done;
      let sigma0 = Gf_poly.coefficient sigma 0 in
      let exp_t = Galois.exp_table field in
      let positions = ref [] in
      let root_count = ref 0 in
      let p = ref 0 in
      while !root_count < errors && !p < order do
        (* evaluate at the current registers and step them in one pass *)
        let acc = ref sigma0 in
        for j = 0 to nz - 1 do
          let l = logs.(j) in
          acc := !acc lxor exp_t.(l);
          let e = l + strides.(j) in
          logs.(j) <- (if e >= order then e - order else e)
        done;
        if !acc = 0 then begin
          incr root_count;
          positions := !p :: !positions
        end;
        incr p
      done;
      if !root_count <> errors || List.exists (fun p -> p >= used) !positions
      then begin
        Telemetry.Registry.Counter.incr t.tel.tel_uncorrectable;
        Uncorrectable
      end
      else begin
        Telemetry.Registry.Counter.incr t.tel.tel_corrected
          ~by:(List.length !positions);
        let data_positions = ref [] in
        List.iter
          (fun p ->
            if p < parity_len then Bitarray.flip parity p
            else begin
              Bitarray.flip data (p - parity_len);
              data_positions := (p - parity_len) :: !data_positions
            end)
          !positions;
        Corrected (List.sort compare !data_positions)
      end
    end
  end

(* --- naive reference implementations ----------------------------------- *)

(* The pre-optimization data path, retained verbatim as the oracle for the
   differential test suite (and as the "before" subjects of the micro
   bench).  Everything here is bit-at-a-time / full-field; results must be
   exactly those of the table-driven paths above. *)
module Reference = struct
  let encode t data =
    let core = t.core in
    let data_bits = Bitarray.length data in
    if data_bits > core.k then invalid_arg "Bch.encode: data longer than k";
    let parity = core.parity in
    let register = Array.make parity false in
    let generator = core.generator in
    for i = data_bits - 1 downto 0 do
      let feedback = Bitarray.get data i <> register.(parity - 1) in
      (* Shift the register up one degree, folding in g(x) on feedback. *)
      for j = parity - 1 downto 1 do
        register.(j) <-
          (if feedback && Gf_poly.coefficient generator j = 1 then
             not register.(j - 1)
           else register.(j - 1))
      done;
      register.(0) <- feedback && Gf_poly.coefficient generator 0 = 1
    done;
    let out = Bitarray.create parity in
    Array.iteri (fun i bit -> if bit then Bitarray.set out i true) register;
    out

  let syndromes t ~data ~parity =
    let core = t.core in
    check_word_lengths core ~data ~parity;
    let count = 2 * core.capability in
    let syndromes = Array.make (count + 1) 0 in
    let accumulate position =
      for i = 1 to count do
        syndromes.(i) <-
          Galois.add core.field syndromes.(i)
            (Galois.alpha_pow core.field (i * position))
      done
    in
    Bitarray.iter_set parity accumulate;
    Bitarray.iter_set data (fun i -> accumulate (core.parity + i));
    syndromes

  (* No telemetry: the oracle must not perturb the counters of the codec
     under test. *)
  let decode t ~data ~parity =
    let core = t.core in
    let syndromes = syndromes t ~data ~parity in
    if Array.for_all (fun x -> x = 0) syndromes then Corrected []
    else begin
      let sigma = berlekamp_massey core syndromes in
      let errors = Gf_poly.degree sigma in
      if errors > core.capability then Uncorrectable
      else begin
        let parity_len = core.parity in
        let data_len = Bitarray.length data in
        let used = parity_len + data_len in
        let positions = ref [] in
        let root_count = ref 0 in
        for p = 0 to core.n - 1 do
          if
            Gf_poly.eval core.field sigma (Galois.alpha_pow core.field (-p))
            = 0
          then begin
            incr root_count;
            positions := p :: !positions
          end
        done;
        if !root_count <> errors || List.exists (fun p -> p >= used) !positions
        then Uncorrectable
        else begin
          let data_positions = ref [] in
          List.iter
            (fun p ->
              if p < parity_len then Bitarray.flip parity p
              else begin
                Bitarray.flip data (p - parity_len);
                data_positions := (p - parity_len) :: !data_positions
              end)
            !positions;
          Corrected (List.sort compare !data_positions)
        end
      end
    end
end
