(* Codec-level telemetry, bound once per code at creation time.  Labeled
   by the code parameters so distinct code levels (different capabilities)
   show up as separate series. *)
type tel = {
  tel_decodes : Telemetry.Registry.Counter.t;
  tel_corrected : Telemetry.Registry.Counter.t;
  tel_uncorrectable : Telemetry.Registry.Counter.t;
}

type t = {
  field : Galois.t;
  n : int;
  k : int;
  capability : int;
  generator : Gf_poly.t; (* over GF(2): coefficients 0/1 *)
  tel : tel;
}

let make_tel reg ~m ~capability =
  let labels = [ ("m", string_of_int m); ("t", string_of_int capability) ] in
  {
    tel_decodes =
      Telemetry.Registry.counter reg ~labels
        ~help:"BCH decode attempts (syndrome computations)" "bch_decodes_total";
    tel_corrected =
      Telemetry.Registry.counter reg ~labels
        ~help:"Bit errors corrected by the BCH decoder (data and parity)"
        "bch_corrected_bits_total";
    tel_uncorrectable =
      Telemetry.Registry.counter reg ~labels
        ~help:"BCH decodes that detected an uncorrectable error pattern"
        "bch_uncorrectable_total";
  }

let create ?registry ~m ~capability () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  if capability <= 0 then invalid_arg "Bch.create: capability must be > 0";
  let field = Galois.create m in
  let n = Galois.order field in
  (* g(x) = lcm of minimal polynomials of alpha^1 .. alpha^2t.  Conjugacy
     classes repeat, so track which exponents are already covered. *)
  let covered = Array.make n false in
  let generator = ref Gf_poly.one in
  for i = 1 to 2 * capability do
    let i = i mod n in
    if not covered.(i) then begin
      (* Mark the whole conjugacy class of alpha^i. *)
      let rec mark j =
        if not covered.(j) then begin
          covered.(j) <- true;
          mark (2 * j mod n)
        end
      in
      mark i;
      generator := Gf_poly.mul field !generator (Gf_poly.minimal_polynomial field i)
    end
  done;
  let generator = !generator in
  Array.iter
    (fun c ->
      if c <> 0 && c <> 1 then
        (* The lcm of minimal polynomials always lies over GF(2); anything
           else signals a bug in the field tables. *)
        assert false)
    generator;
  let parity = Gf_poly.degree generator in
  if parity >= n then
    invalid_arg "Bch.create: capability too large for this field (k <= 0)";
  { field; n; k = n - parity; capability; generator;
    tel = make_tel registry ~m ~capability }

let m t = Galois.m t.field
let n t = t.n
let k t = t.k
let capability t = t.capability
let parity_bits t = t.n - t.k

let code_rate t ~data_bits =
  float_of_int data_bits /. float_of_int (data_bits + parity_bits t)

let generator t = t.generator

(* Systematic encoding via LFSR division of d(x) x^{deg g} by g(x).
   Data bit i of the shortened message corresponds to codeword coefficient
   x^{parity + i}; bits are fed highest-degree first. *)
let encode t data =
  let data_bits = Bitarray.length data in
  if data_bits > t.k then invalid_arg "Bch.encode: data longer than k";
  let parity = parity_bits t in
  let register = Array.make parity false in
  let generator = t.generator in
  for i = data_bits - 1 downto 0 do
    let feedback = Bitarray.get data i <> register.(parity - 1) in
    (* Shift the register up one degree, folding in g(x) on feedback. *)
    for j = parity - 1 downto 1 do
      register.(j) <-
        (if feedback && Gf_poly.coefficient generator j = 1 then
           not register.(j - 1)
         else register.(j - 1))
    done;
    register.(0) <- feedback && Gf_poly.coefficient generator 0 = 1
  done;
  let out = Bitarray.create parity in
  Array.iteri (fun i bit -> if bit then Bitarray.set out i true) register;
  out

(* Syndome S_i = r(alpha^i).  The received polynomial r(x) has parity bits
   at degrees [0, parity) and data bits at degrees [parity, parity+len). *)
let syndromes t ~data ~parity =
  let parity_len = parity_bits t in
  if Bitarray.length parity <> parity_len then
    invalid_arg "Bch: parity length mismatch";
  if Bitarray.length data > t.k then invalid_arg "Bch: data longer than k";
  let count = 2 * t.capability in
  let syndromes = Array.make (count + 1) 0 in
  let accumulate position =
    for i = 1 to count do
      syndromes.(i) <-
        Galois.add t.field syndromes.(i)
          (Galois.alpha_pow t.field (i * position))
    done
  in
  Bitarray.iter_set parity accumulate;
  Bitarray.iter_set data (fun i -> accumulate (parity_len + i));
  syndromes

let syndromes_zero t ~data ~parity =
  let s = syndromes t ~data ~parity in
  Array.for_all (fun x -> x = 0) s

(* Berlekamp-Massey: returns the error locator polynomial sigma(x). *)
let berlekamp_massey t syndromes =
  let field = t.field in
  let count = 2 * t.capability in
  let sigma = ref Gf_poly.one in
  let prev = ref Gf_poly.one in
  let length = ref 0 in
  let shift_amount = ref 1 in
  let prev_discrepancy = ref 1 in
  for step = 0 to count - 1 do
    (* discrepancy d = S_{step+1} + sum sigma_i * S_{step+1-i} *)
    let discrepancy = ref syndromes.(step + 1) in
    for i = 1 to !length do
      let s_index = step + 1 - i in
      if s_index >= 1 then
        discrepancy :=
          Galois.add field !discrepancy
            (Galois.mul field (Gf_poly.coefficient !sigma i) syndromes.(s_index))
    done;
    if !discrepancy = 0 then incr shift_amount
    else begin
      let correction =
        Gf_poly.scale field
          (Galois.div field !discrepancy !prev_discrepancy)
          (Gf_poly.shift !prev !shift_amount)
      in
      let candidate = Gf_poly.add field !sigma correction in
      if 2 * !length <= step then begin
        prev := !sigma;
        prev_discrepancy := !discrepancy;
        length := step + 1 - !length;
        shift_amount := 1;
        sigma := candidate
      end
      else begin
        sigma := candidate;
        incr shift_amount
      end
    end
  done;
  !sigma

type decode_result = Corrected of int list | Uncorrectable

let decode t ~data ~parity =
  Telemetry.Registry.Counter.incr t.tel.tel_decodes;
  let syndromes = syndromes t ~data ~parity in
  if Array.for_all (fun x -> x = 0) syndromes then Corrected []
  else begin
    let sigma = berlekamp_massey t syndromes in
    let errors = Gf_poly.degree sigma in
    if errors > t.capability then begin
      Telemetry.Registry.Counter.incr t.tel.tel_uncorrectable;
      Uncorrectable
    end
    else begin
      (* Chien search: position p is in error iff sigma(alpha^{-p}) = 0.
         Only positions within the (possibly shortened) received word are
         valid; a root elsewhere means the decoder strayed outside the
         word, i.e. the error pattern was uncorrectable. *)
      let parity_len = parity_bits t in
      let data_len = Bitarray.length data in
      let used = parity_len + data_len in
      let positions = ref [] in
      let root_count = ref 0 in
      for p = 0 to t.n - 1 do
        if Gf_poly.eval t.field sigma (Galois.alpha_pow t.field (-p)) = 0
        then begin
          incr root_count;
          positions := p :: !positions
        end
      done;
      if !root_count <> errors || List.exists (fun p -> p >= used) !positions
      then begin
        Telemetry.Registry.Counter.incr t.tel.tel_uncorrectable;
        Uncorrectable
      end
      else begin
        Telemetry.Registry.Counter.incr t.tel.tel_corrected
          ~by:(List.length !positions);
        let data_positions = ref [] in
        List.iter
          (fun p ->
            if p < parity_len then Bitarray.flip parity p
            else begin
              Bitarray.flip data (p - parity_len);
              data_positions := (p - parity_len) :: !data_positions
            end)
          !positions;
        Corrected (List.sort compare !data_positions)
      end
    end
  end
