(** Binary BCH codes: the error-correction engine of a Salamander page.

    A code is constructed for GF(2^m) and a target correction capability
    [t]: codeword length n = 2^m - 1 bits, of which [parity_bits] = deg g(x)
    are parity, leaving k = n - deg g(x) data bits.  Codes are used
    *shortened*: callers may encode fewer than k data bits and the missing
    high-order bits are treated as zero, which is how a fixed-size flash
    spare area hosts a code whose natural length exceeds the sector.

    Encoding is systematic: the codeword is data followed by parity
    (conceptually c(x) = d(x) x^{deg g} + (d(x) x^{deg g} mod g(x))).
    Decoding computes syndromes, runs Berlekamp-Massey to find the error
    locator, and Chien search to locate the flips; binary codes need no
    error-value computation. *)

type t

val create :
  ?registry:Telemetry.Registry.t -> m:int -> capability:int -> unit -> t
(** [create ~m ~capability] builds a code over GF(2^m) correcting
    [capability] bit errors per codeword.  Decode telemetry binds
    against [registry] (default: {!Telemetry.Registry.null}, i.e. inert).

    The immutable half of a codec — field tables, generator polynomial,
    and the byte-at-a-time encode tables — is memoized per
    [(m, capability)] and shared by every instance with those parameters,
    including across [Parallel.Pool] domains.  Telemetry counters are
    per-instance, so two codecs bound to different registries count
    independently even though they share tables.
    @raise Invalid_argument if the requested capability leaves no data bits
    (parity would reach or exceed the codeword length). *)

val m : t -> int
val n : t -> int
(** Codeword length in bits (2^m - 1). *)

val k : t -> int
(** Maximum data bits per codeword. *)

val capability : t -> int
(** Designed correction capability [t] (the code corrects at least this
    many errors; the BCH bound can be loose, so the realized minimum
    distance may be larger). *)

val parity_bits : t -> int
val code_rate : t -> data_bits:int -> float
(** Achieved rate [data / (data + parity)] for a shortened use with
    [data_bits] of payload. *)

val generator : t -> Gf_poly.t
(** Generator polynomial (coefficients all 0/1). *)

val encode : t -> Bitarray.t -> Bitarray.t
(** [encode code data] returns the [parity_bits code] parity bits for
    [data], which must be at most [k code] bits long. *)

type decode_result =
  | Corrected of int list
      (** Positions (indices into the data array) that were flipped back;
          parity-bit corrections are not reported.  The data array has been
          repaired in place. *)
  | Uncorrectable
      (** More errors than the code can handle were detected; data is left
          untouched. *)

val decode : t -> data:Bitarray.t -> parity:Bitarray.t -> decode_result
(** Correct [data] (and [parity]) in place.  [data] must be at most [k]
    bits; [parity] must be exactly [parity_bits] bits.

    An important caveat inherited from real BCH decoders: when the true
    error count exceeds the capability the decoder usually detects the
    overload, but may occasionally miscorrect to a different valid
    codeword.  Callers needing end-to-end integrity layer a checksum above
    the code, exactly as SSD controllers do. *)

val syndromes_zero : t -> data:Bitarray.t -> parity:Bitarray.t -> bool
(** True when the received word is a valid codeword (all syndromes zero).
    Exits on the first nonzero syndrome, so corrupt words are typically
    rejected after a single pass over the set bits. *)

val syndromes : t -> data:Bitarray.t -> parity:Bitarray.t -> int array
(** The raw syndrome array [S_0 .. S_2t] (index 0 unused, kept 0) for the
    received word.  Exposed for differential testing of the optimized
    accumulation path. *)

(** Naive bit-at-a-time implementations of the codec, retained as the
    oracle for differential tests and as the "before" micro-benchmark
    subjects.  Semantics are identical to the table-driven paths, except
    that [Reference.decode] touches no telemetry. *)
module Reference : sig
  val encode : t -> Bitarray.t -> Bitarray.t
  val syndromes : t -> data:Bitarray.t -> parity:Bitarray.t -> int array
  val decode : t -> data:Bitarray.t -> parity:Bitarray.t -> decode_result
end
