type t = {
  m : int;
  order : int; (* 2^m - 1 *)
  primitive_poly : int;
  exp_table : int array; (* exp_table.(i) = alpha^i, doubled for easy reduction *)
  log_table : int array; (* log_table.(x) = i with alpha^i = x, x >= 1 *)
}

(* One standard primitive polynomial per degree (Lin & Costello tables). *)
let primitive_poly_for = function
  | 3 -> 0b1011
  | 4 -> 0b10011
  | 5 -> 0b100101
  | 6 -> 0b1000011
  | 7 -> 0b10001001
  | 8 -> 0b100011101
  | 9 -> 0b1000010001
  | 10 -> 0b10000001001
  | 11 -> 0b100000000101
  | 12 -> 0b1000001010011
  | 13 -> 0b10000000011011
  | 14 -> 0b100010001000011
  | 15 -> 0b1000000000000011
  | m -> invalid_arg (Printf.sprintf "Galois.create: unsupported m = %d" m)

let build m =
  let primitive_poly = primitive_poly_for m in
  let order = (1 lsl m) - 1 in
  let exp_table = Array.make (2 * order) 0 in
  let log_table = Array.make (order + 1) 0 in
  let x = ref 1 in
  for i = 0 to order - 1 do
    exp_table.(i) <- !x;
    exp_table.(i + order) <- !x;
    log_table.(!x) <- i;
    x := !x lsl 1;
    if !x land (1 lsl m) <> 0 then x := !x lxor primitive_poly
  done;
  { m; order; primitive_poly; exp_table; log_table }

(* A field is an immutable pair of tables once built, so one instance per
   degree can be shared freely — including across [Parallel.Pool] domains.
   The mutex only guards the cold first build of each degree. *)
let cache : (int, t) Hashtbl.t = Hashtbl.create 8
let cache_mutex = Mutex.create ()

let create m =
  Mutex.protect cache_mutex (fun () ->
      match Hashtbl.find_opt cache m with
      | Some field -> field
      | None ->
          let field = build m in
          Hashtbl.add cache m field;
          field)

let m t = t.m
let order t = t.order
let primitive_poly t = t.primitive_poly
let add _ a b = a lxor b

let mul t a b =
  if a = 0 || b = 0 then 0
  else t.exp_table.(t.log_table.(a) + t.log_table.(b))

let inv t a =
  if a = 0 then raise Division_by_zero
  else t.exp_table.(t.order - t.log_table.(a))

let div t a b = mul t a (inv t b)

let alpha_pow t i =
  let i = ((i mod t.order) + t.order) mod t.order in
  t.exp_table.(i)

let exp t i = t.exp_table.(i)
let exp_table t = t.exp_table

let log_alpha t a =
  if a = 0 then raise Division_by_zero else t.log_table.(a)

let pow t a e =
  if a = 0 then (if e = 0 then 1 else 0)
  else alpha_pow t (t.log_table.(a) * e)
