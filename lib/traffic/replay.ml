type config = {
  arrival_rate_ops_per_s : float;
  batch : int;
  submit_us : float;
  per_op_us : float;
  read_us : float;
  write_us : float;
  trim_us : float;
  retry_us : float;
  gc_us : float;
  relocate_us : float;
  reclaim_us : float;
  repair_us : float;
  error_us : float;
}

let default_config =
  {
    arrival_rate_ops_per_s = 5_000.;
    batch = 16;
    submit_us = 20.;
    per_op_us = 2.;
    read_us = 60.;
    write_us = 180.;
    trim_us = 5.;
    retry_us = 100.;
    gc_us = 5_000.;
    relocate_us = 760.;
    reclaim_us = 60.;
    (* one live-repair escalation ~ a replica read off another node plus
       the in-place rewrite: network round-trip dominated, far cheaper
       than surfacing the error to the application but well above a
       local read *)
    repair_us = 2_000.;
    error_us = 10_000.;
  }

type outcome = {
  issued : int;
  completed : int;
  read_errors : int;
  unmapped_reads : int;
  write_errors : int;
  throttled_ops : int;
  throttle_us : float;
  slo_violations : int;
  died : bool;
  end_us : float;
  all : Lathist.t;
  reads : Lathist.t;
  writes : Lathist.t;
  accounts : Tenant.Accounts.t;
  cause_mix : Obs.Topk.Counts.t;
}

let bg_cost config (before : Ftl.Device_intf.bg_stats)
    (after : Ftl.Device_intf.bg_stats) =
  (float_of_int (after.gc_runs - before.gc_runs) *. config.gc_us)
  +. float_of_int (after.relocated_opages - before.relocated_opages)
     *. config.relocate_us
  +. float_of_int (after.read_retries - before.read_retries) *. config.retry_us
  +. float_of_int (after.read_reclaims - before.read_reclaims)
     *. config.reclaim_us
  (* live repair prices into the op that triggered it — the recovery
     latency lands in the tail percentiles instead of the flat
     [error_us] host penalty an unrecoverable read would pay *)
  +. float_of_int (after.live_repair_attempts - before.live_repair_attempts)
     *. config.repair_us

let run ?(config = default_config) ?qos ?intensity ?on_batch ~population ~trace
    ~device () =
  if config.batch < 1 then invalid_arg "Replay.run: batch must be >= 1";
  if config.arrival_rate_ops_per_s <= 0. then
    invalid_arg "Replay.run: arrival rate must be positive";
  let qos =
    Option.map
      (fun c -> Qos.create c ~weights:(Tenant.qos_weights population))
      qos
  in
  let accounts = Tenant.Accounts.create population in
  let cause_mix = Obs.Topk.Counts.create ~k:16 () in
  let all = Lathist.create () in
  let read_lat = Lathist.create () in
  let write_lat = Lathist.create () in
  let issued = ref 0 in
  let completed = ref 0 in
  let read_errors = ref 0 in
  let unmapped_reads = ref 0 in
  let write_errors = ref 0 in
  let throttled_ops = ref 0 in
  let throttle_us = ref 0. in
  let slo_violations = ref 0 in
  let died = ref false in
  let arrival = ref 0. in
  let device_free = ref 0. in
  let capacity = ref (Ftl.Device_intf.logical_capacity device) in
  let base_gap = 1e6 /. config.arrival_rate_ops_per_s in
  let n_tenants = Tenant.tenants population in
  let op = ref 0 in
  (try
     Workload.Trace.iter_events trace (fun event ->
         let k = !op in
         incr op;
         (* Batch boundary: fire the hook (chaos injection), refresh the
            capacity a shrinking device exports, pay the submission
            overhead once. *)
         let batch_head = k mod config.batch = 0 in
         if batch_head then begin
           (match on_batch with
           | Some f -> f ~batch:(k / config.batch)
           | None -> ());
           capacity := Ftl.Device_intf.logical_capacity device;
           if !capacity <= 0 || not (Ftl.Device_intf.alive device) then begin
             died := true;
             raise Exit
           end
         end;
         let gap =
           match intensity with
           | Some f -> base_gap /. Stdlib.max 1e-6 (f ~op:k)
           | None -> base_gap
         in
         arrival := !arrival +. gap;
         incr issued;
         let tenant =
           ((event.Workload.Trace.tenant mod n_tenants) + n_tenants)
           mod n_tenants
         in
         let lba =
           let raw = event.Workload.Trace.access.Workload.Access.lba in
           ((raw mod !capacity) + !capacity) mod !capacity
         in
         (* Queue behind the device, then behind the tenant's bucket. *)
         let start = ref (Stdlib.max !arrival !device_free) in
         let op_throttled = ref false in
         (match qos with
         | None -> ()
         | Some qos ->
             let rec wait attempts =
               match Qos.admit qos ~tenant ~now_us:!start with
               | `Ok ->
                   if attempts > 0 then begin
                     incr throttled_ops;
                     Tenant.Accounts.record_throttle accounts ~tenant
                   end
               | `Delay d ->
                   op_throttled := true;
                   throttle_us := !throttle_us +. d;
                   start := !start +. d;
                   (* Refill rounding can leave the bucket a hair short of
                      a full token; after a few laps let the op through. *)
                   if attempts < 3 then wait (attempts + 1)
                   else begin
                     incr throttled_ops;
                     Tenant.Accounts.record_throttle accounts ~tenant
                   end
             in
             wait 0);
         let kind = event.Workload.Trace.access.Workload.Access.kind in
         let before = Ftl.Device_intf.bg_stats device in
         let base =
           match kind with
           | Workload.Access.Read -> (
               match Ftl.Device_intf.read device ~lba with
               | Ok _ -> config.read_us
               | Error `Unmapped ->
                   incr unmapped_reads;
                   config.read_us
               | Error `Uncorrectable ->
                   incr read_errors;
                   config.read_us +. config.error_us
               | Error (`Dead | `Out_of_range) ->
                   incr read_errors;
                   config.read_us +. config.error_us)
           | Workload.Access.Write -> (
               match Ftl.Device_intf.write device ~lba ~payload:k with
               | Ok () -> config.write_us
               | Error `Out_of_range ->
                   (* The device shrank under this batch; retry inside the
                      fresh window before giving up on the op. *)
                   let capacity' =
                     Stdlib.max 1 (Ftl.Device_intf.logical_capacity device)
                   in
                   capacity := capacity';
                   (match
                      Ftl.Device_intf.write device ~lba:(lba mod capacity')
                        ~payload:k
                    with
                   | Ok () -> ()
                   | Error _ -> incr write_errors);
                   config.write_us
               | Error (`Dead | `No_space) ->
                   incr write_errors;
                   died := true;
                   raise Exit)
           | Workload.Access.Trim ->
               Ftl.Device_intf.trim device ~lba;
               config.trim_us
         in
         let after = Ftl.Device_intf.bg_stats device in
         let service =
           config.per_op_us
           +. (if batch_head then config.submit_us else 0.)
           +. base
           +. bg_cost config before after
         in
         let completion = !start +. service in
         device_free := completion;
         let latency = completion -. !arrival in
         incr completed;
         (* Root-cause attribution: which background activities billed
            time into this op's latency. *)
         let causes =
           Obs.Cause.of_flags ~gc:(after.gc_runs > before.gc_runs)
             ~relocation:(after.relocated_opages > before.relocated_opages)
             ~retry:(after.read_retries > before.read_retries)
             ~escalation:
               (after.live_repair_attempts > before.live_repair_attempts)
             ~scrub:(after.read_reclaims > before.read_reclaims)
             ~qos_throttle:!op_throttled
         in
         Lathist.observe_tagged all latency ~tags:causes;
         (match kind with
         | Workload.Access.Read -> Lathist.observe_tagged read_lat latency ~tags:causes
         | Workload.Access.Write ->
             Lathist.observe_tagged write_lat latency ~tags:causes
         | Workload.Access.Trim -> ());
         if causes <> Obs.Cause.none then
           Obs.Topk.Counts.add cause_mix (Obs.Cause.to_string causes);
         Tenant.Accounts.record_op accounts ~tenant
           ~read:(kind = Workload.Access.Read);
         if latency > (Tenant.profile_of population tenant).Tenant.slo_us then begin
           incr slo_violations;
           Tenant.Accounts.record_violation accounts ~tenant
         end)
   with Exit -> ());
  {
    issued = !issued;
    completed = !completed;
    read_errors = !read_errors;
    unmapped_reads = !unmapped_reads;
    write_errors = !write_errors;
    throttled_ops = !throttled_ops;
    throttle_us = !throttle_us;
    slo_violations = !slo_violations;
    died = !died;
    end_us = !device_free;
    all;
    reads = read_lat;
    writes = write_lat;
    accounts;
    cause_mix;
  }
