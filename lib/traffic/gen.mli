(** Seeded multi-tenant trace generator.

    Composes three layers per drawn op: {e who} (a zipfian popularity
    distribution over tenant ranks, gated by a per-tenant on/off burst
    envelope), {e what} (the tenant's profile pattern over its footprint,
    via {!Tenant}), and {e when} (a diurnal intensity envelope over the
    op index — the trace format carries no timestamps, so the replayer
    re-derives arrival pacing from {!intensity} at the same op index,
    keeping the trace file portable across pacing models). *)

type spec = {
  tenants : int;
  ops : int;
  window : int;  (** LBA span the tenant footprints scatter over *)
  profiles : Tenant.profile list;
  popularity_theta : float;
      (** skew of the per-op tenant draw (0 = uniform popularity) *)
  burst_period : int;  (** ops per on/off cycle; 0 disables bursts *)
  burst_duty : float;  (** fraction of the cycle a tenant is on, (0, 1] *)
  diurnal_period : int;  (** ops per diurnal cycle; 0 disables *)
  diurnal_amplitude : float;  (** trough depth, in [0, 1) *)
}

val default_spec : spec
(** 200 tenants, 20k ops, 16Ki-LBA window, {!Tenant.default_profiles},
    popularity theta 0.9, bursts of period 2000 at 40% duty, one diurnal
    cycle per 10k ops at 0.6 amplitude. *)

val intensity : spec -> op:int -> float
(** Diurnal arrival-intensity multiplier at op index [op], in
    [1 - diurnal_amplitude, 1]; constantly 1 when disabled. *)

val tenant_on : spec -> tenant:int -> op:int -> bool
(** Burst gate: whether the tenant's on/off envelope (phase-shifted by a
    hash of its id) is "on" at op index [op]; always true when
    disabled. *)

val generate : spec -> seed:int -> Workload.Trace.t
(** Produce exactly [spec.ops] events, deterministically from [seed].
    @raise Invalid_argument on a malformed spec (non-positive
    tenants/ops/window, duty or amplitude out of range). *)
