(** Trace replay under a simulated clock: turns a multi-tenant trace plus
    a device into request latencies.

    The model is a single submission queue of depth one over the device:
    op [k] arrives open-loop at a paced arrival time (base rate shaped
    by an optional intensity envelope, normally {!Gen.intensity}),
    waits for the device to go idle and for its tenant's QoS bucket to
    admit it, then occupies the device for a service time.  Service is
    the base read/write cost plus a per-batch submission overhead
    amortized over [batch] ops plus a {e contention charge}: the
    device's {!Ftl.Device_intf.bg_stats} are diffed around the op, and
    every GC pass, relocation, retry rung and read-reclaim that fired
    inside it stalls the queue by the configured cost — which is how GC,
    scrub and regeneration churn surface as tail latency.

    Latency = completion - arrival, observed into {!Lathist}s (all /
    reads / writes) and checked against the tenant's SLO.  Each op also
    carries an {!Obs.Cause} bitset of the background activities that
    billed into it (plus QoS throttling), fed to
    {!Lathist.observe_tagged} for tail attribution and aggregated into
    a cause-mix heavy-hitter sketch.  Everything is sequential and
    deterministic for a given trace, device and config. *)

type config = {
  arrival_rate_ops_per_s : float;  (** offered load before intensity shaping *)
  batch : int;  (** ops per submission batch (>= 1) *)
  submit_us : float;  (** once-per-batch submission overhead *)
  per_op_us : float;  (** per-op CPU cost *)
  read_us : float;  (** base service of a read hitting flash *)
  write_us : float;  (** base service of a buffered write (amortized program) *)
  trim_us : float;
  retry_us : float;  (** per retry-ladder rung the op triggered *)
  gc_us : float;  (** per GC pass (the erase) the op absorbed *)
  relocate_us : float;  (** per oPage relocated under the op *)
  reclaim_us : float;  (** per read-reclaim scrub the op triggered *)
  repair_us : float;
      (** per live-repair escalation the op triggered — the replica read
          plus in-place rewrite priced into the triggering op's latency,
          so recovery shows up in the tail percentiles *)
  error_us : float;
      (** host-level recovery charged to an uncorrectable read (the
          layer above reconstructs the data from elsewhere) *)
}

val default_config : config
(** 5k ops/s against TLC-flavoured costs (read 60 us, amortized write
    180 us, GC pass 5 ms), batches of 16. *)

type outcome = {
  issued : int;
  completed : int;
  read_errors : int;  (** uncorrectable reads *)
  unmapped_reads : int;
  write_errors : int;
  throttled_ops : int;  (** ops a QoS bucket made wait *)
  throttle_us : float;  (** total time spent waiting on buckets *)
  slo_violations : int;
  died : bool;  (** replay stopped because the device failed *)
  end_us : float;  (** simulated completion time of the last op *)
  all : Lathist.t;
  reads : Lathist.t;
  writes : Lathist.t;
  accounts : Tenant.Accounts.t;
  cause_mix : Obs.Topk.Counts.t;
      (** heavy-hitter sketch over the cause {e sets} of ops whose
          latency included background work (["gc+relocation"],
          ["retry"], ...) — which combinations dominate, in O(16)
          memory *)
}

val run :
  ?config:config ->
  ?qos:Qos.config ->
  ?intensity:(op:int -> float) ->
  ?on_batch:(batch:int -> unit) ->
  population:Tenant.t ->
  trace:Workload.Trace.t ->
  device:Ftl.Device_intf.packed ->
  unit ->
  outcome
(** Replay the whole trace (stopping early only if the device dies).
    LBAs are folded into the device's current capacity ([lba mod
    capacity], re-read at every batch boundary so shrinking devices keep
    absorbing the full stream); tenant ids are folded into the
    population likewise.  [on_batch] runs before each batch — the chaos
    hook point.
    @raise Invalid_argument if [config.batch < 1] or the arrival rate is
    non-positive. *)
