let lo_us = 1.0
let buckets_per_decade = 24
let decades = 7

let n_buckets = (buckets_per_decade * decades) + 1 (* + overflow *)
let overflow = n_buckets - 1
let log_ratio = Stdlib.log 10. /. float_of_int buckets_per_decade

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let bucket_of v =
  if v <= lo_us then 0
  else
    let i = int_of_float (Stdlib.log (v /. lo_us) /. log_ratio) in
    if i >= overflow then overflow else i

(* Geometric midpoint of bucket [i]'s range [lo_us * 10^(i/bpd),
   lo_us * 10^((i+1)/bpd)). *)
let representative t i =
  if i = overflow then t.vmax
  else lo_us *. Stdlib.exp ((float_of_int i +. 0.5) *. log_ratio)

let observe t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min t = if t.count = 0 then nan else t.vmin
let max t = if t.count = 0 then nan else t.vmax

let percentile t q =
  if t.count = 0 then nan
  else begin
    let q = Stdlib.min 1. (Stdlib.max 0. q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
    in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank || i = overflow then representative t i
      else walk (i + 1) seen
    in
    walk 0 0
  end

let merge ~into src =
  Array.iteri
    (fun i n -> into.counts.(i) <- into.counts.(i) + n)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax

let pp_row ppf t =
  if t.count = 0 then
    Format.fprintf ppf "%10s %10s %10s %10s %10s" "-" "-" "-" "-" "-"
  else
    Format.fprintf ppf "%10.1f %10.1f %10.1f %10.1f %10.1f" (percentile t 0.5)
      (percentile t 0.95) (percentile t 0.99) (percentile t 0.999) t.vmax
