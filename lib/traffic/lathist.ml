let lo_us = 1.0
let buckets_per_decade = 24
let decades = 7

let n_buckets = (buckets_per_decade * decades) + 1 (* + overflow *)
let overflow = n_buckets - 1
let log_ratio = Stdlib.log 10. /. float_of_int buckets_per_decade

let tags_width = 8

type t = {
  counts : int array;
  mutable count : int;
  mutable sum : float;
  mutable vmin : float;
  mutable vmax : float;
  (* Attribution channel, allocated on the first tagged observation so
     untagged histograms stay as small as before: per-bucket per-tag-bit
     counts plus one exemplar slot per bucket (the highest-latency
     tagged op that landed there, with its tag set). *)
  mutable tag_counts : int array; (* n_buckets * tags_width; [||] = none *)
  mutable ex_us : float array; (* per bucket; neg_infinity = empty slot *)
  mutable ex_tags : int array;
}

let create () =
  {
    counts = Array.make n_buckets 0;
    count = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
    tag_counts = [||];
    ex_us = [||];
    ex_tags = [||];
  }

let bucket_of v =
  if v <= lo_us then 0
  else
    let i = int_of_float (Stdlib.log (v /. lo_us) /. log_ratio) in
    if i >= overflow then overflow else i

(* Geometric midpoint of bucket [i]'s range [lo_us * 10^(i/bpd),
   lo_us * 10^((i+1)/bpd)). *)
let representative t i =
  if i = overflow then t.vmax
  else lo_us *. Stdlib.exp ((float_of_int i +. 0.5) *. log_ratio)

let observe t v =
  t.counts.(bucket_of v) <- t.counts.(bucket_of v) + 1;
  t.count <- t.count + 1;
  t.sum <- t.sum +. v;
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let ensure_tags t =
  if Array.length t.tag_counts = 0 then begin
    t.tag_counts <- Array.make (n_buckets * tags_width) 0;
    t.ex_us <- Array.make n_buckets neg_infinity;
    t.ex_tags <- Array.make n_buckets 0
  end

let observe_tagged t v ~tags =
  observe t v;
  let tags = tags land ((1 lsl tags_width) - 1) in
  if tags <> 0 then begin
    ensure_tags t;
    let b = bucket_of v in
    let base = b * tags_width in
    for bit = 0 to tags_width - 1 do
      if tags land (1 lsl bit) <> 0 then
        t.tag_counts.(base + bit) <- t.tag_counts.(base + bit) + 1
    done;
    (* Strict [>]: the first op to reach a bucket's max keeps the slot,
       so sequential and chunk-merged replays agree. *)
    if v > t.ex_us.(b) then begin
      t.ex_us.(b) <- v;
      t.ex_tags.(b) <- tags
    end
  end

let count t = t.count
let sum t = t.sum
let mean t = if t.count = 0 then nan else t.sum /. float_of_int t.count
let min t = if t.count = 0 then nan else t.vmin
let max t = if t.count = 0 then nan else t.vmax

let percentile_bucket t q =
  if t.count = 0 then None
  else begin
    let q = Stdlib.min 1. (Stdlib.max 0. q) in
    let rank =
      Stdlib.max 1 (int_of_float (Float.ceil (q *. float_of_int t.count)))
    in
    let rec walk i seen =
      let seen = seen + t.counts.(i) in
      if seen >= rank || i = overflow then i else walk (i + 1) seen
    in
    Some (walk 0 0)
  end

let percentile t q =
  match percentile_bucket t q with
  | None -> nan
  | Some i -> representative t i

let count_above t q =
  match percentile_bucket t q with
  | None -> 0
  | Some b ->
      let n = ref 0 in
      for i = b to overflow do
        n := !n + t.counts.(i)
      done;
      !n

let tag_totals_above t q =
  let totals = Array.make tags_width 0 in
  (match percentile_bucket t q with
  | None -> ()
  | Some b ->
      if Array.length t.tag_counts <> 0 then
        for i = b to overflow do
          let base = i * tags_width in
          for bit = 0 to tags_width - 1 do
            totals.(bit) <- totals.(bit) + t.tag_counts.(base + bit)
          done
        done);
  totals

let exemplar_above t q =
  match percentile_bucket t q with
  | None -> None
  | Some b ->
      if Array.length t.ex_us = 0 then None
      else begin
        let best = ref None in
        for i = b to overflow do
          if t.ex_us.(i) > neg_infinity then
            match !best with
            | Some (v, _) when t.ex_us.(i) <= v -> ()
            | _ -> best := Some (t.ex_us.(i), t.ex_tags.(i))
        done;
        !best
      end

let merge ~into src =
  Array.iteri
    (fun i n -> into.counts.(i) <- into.counts.(i) + n)
    src.counts;
  into.count <- into.count + src.count;
  into.sum <- into.sum +. src.sum;
  if src.vmin < into.vmin then into.vmin <- src.vmin;
  if src.vmax > into.vmax then into.vmax <- src.vmax;
  if Array.length src.tag_counts <> 0 then begin
    ensure_tags into;
    Array.iteri
      (fun i n -> into.tag_counts.(i) <- into.tag_counts.(i) + n)
      src.tag_counts;
    (* Strict [>] keeps [into]'s exemplar on ties; with sources merged
       in submission order that reproduces sequential first-max. *)
    for b = 0 to n_buckets - 1 do
      if src.ex_us.(b) > into.ex_us.(b) then begin
        into.ex_us.(b) <- src.ex_us.(b);
        into.ex_tags.(b) <- src.ex_tags.(b)
      end
    done
  end

let pp_row ppf t =
  if t.count = 0 then
    Format.fprintf ppf "%10s %10s %10s %10s %10s" "-" "-" "-" "-" "-"
  else
    Format.fprintf ppf "%10.1f %10.1f %10.1f %10.1f %10.1f" (percentile t 0.5)
      (percentile t 0.95) (percentile t 0.99) (percentile t 0.999) t.vmax
