type pattern = Sequential | Uniform | Zipfian of float

type profile = {
  name : string;
  share : int;
  pattern : pattern;
  read_fraction : float;
  footprint : int;
  qos_weight : float;
  slo_us : float;
}

let default_profiles =
  [
    {
      name = "web";
      share = 6;
      pattern = Zipfian 0.99;
      read_fraction = 0.9;
      footprint = 256;
      qos_weight = 4.;
      slo_us = 2_000.;
    };
    {
      name = "batch";
      share = 3;
      pattern = Uniform;
      read_fraction = 0.5;
      footprint = 1024;
      qos_weight = 2.;
      slo_us = 10_000.;
    };
    {
      name = "logger";
      share = 1;
      pattern = Sequential;
      read_fraction = 0.05;
      footprint = 512;
      qos_weight = 1.;
      slo_us = 20_000.;
    };
  ]

type t = {
  tenants : int;
  profiles : profile array;
  total_share : int;
  cum_share : int array;  (* exclusive prefix sums of shares *)
  zipfs : Sim.Dist.Zipf.t option array;  (* per profile, over its footprint *)
  cursors : int array;  (* per tenant, for Sequential profiles *)
}

let create ?(profiles = default_profiles) ~tenants () =
  if tenants <= 0 then invalid_arg "Tenant.create: tenants must be positive";
  if profiles = [] then invalid_arg "Tenant.create: no profiles";
  List.iter
    (fun p ->
      if p.share <= 0 || p.footprint <= 0 || p.qos_weight <= 0. then
        invalid_arg
          (Printf.sprintf "Tenant.create: profile %S is malformed" p.name))
    profiles;
  let profiles = Array.of_list profiles in
  let cum_share = Array.make (Array.length profiles) 0 in
  let total_share = ref 0 in
  Array.iteri
    (fun i p ->
      cum_share.(i) <- !total_share;
      total_share := !total_share + p.share)
    profiles;
  {
    tenants;
    profiles;
    total_share = !total_share;
    cum_share;
    zipfs =
      Array.map
        (function
          | { pattern = Zipfian theta; footprint; _ } ->
              Some (Sim.Dist.Zipf.create ~n:footprint ~theta)
          | _ -> None)
        profiles;
    cursors = Array.make tenants 0;
  }

let tenants t = t.tenants
let profiles t = t.profiles

let profile_index t tenant =
  let r = tenant mod t.total_share in
  let rec find i =
    if
      i = Array.length t.profiles - 1
      || r < t.cum_share.(i) + t.profiles.(i).share
    then i
    else find (i + 1)
  in
  find 0

let profile_of t tenant = t.profiles.(profile_index t tenant)

(* Fibonacci-hash the id so footprints scatter over the window instead of
   packing tenants 0..k into the hottest (lowest, most-cached) LBAs. *)
let base_lba t tenant ~window =
  let footprint = (profile_of t tenant).footprint in
  let span = window - footprint in
  if span <= 0 then 0
  else ((tenant * 2654435761) land max_int) mod span

let next_local t tenant ~rng =
  let i = profile_index t tenant in
  let p = t.profiles.(i) in
  match p.pattern with
  | Sequential ->
      let local = t.cursors.(tenant) in
      t.cursors.(tenant) <- (local + 1) mod p.footprint;
      local
  | Uniform -> Sim.Rng.int rng p.footprint
  | Zipfian _ -> (
      match t.zipfs.(i) with
      | Some zipf -> Sim.Dist.Zipf.sample zipf rng
      | None -> assert false)

let qos_weights t =
  Array.init t.tenants (fun tenant -> (profile_of t tenant).qos_weight)

module Accounts = struct
  type nonrec t = {
    ops : int array;
    reads : int array;
    throttles : int array;
    violations : int array;
  }

  let create population =
    let n = population.tenants in
    {
      ops = Array.make n 0;
      reads = Array.make n 0;
      throttles = Array.make n 0;
      violations = Array.make n 0;
    }

  let record_op t ~tenant ~read =
    t.ops.(tenant) <- t.ops.(tenant) + 1;
    if read then t.reads.(tenant) <- t.reads.(tenant) + 1

  let record_throttle t ~tenant = t.throttles.(tenant) <- t.throttles.(tenant) + 1
  let record_violation t ~tenant =
    t.violations.(tenant) <- t.violations.(tenant) + 1

  let ops t tenant = t.ops.(tenant)
  let reads t tenant = t.reads.(tenant)
  let throttles t tenant = t.throttles.(tenant)
  let violations t tenant = t.violations.(tenant)

  let totals t =
    let sum a = Array.fold_left ( + ) 0 a in
    (sum t.ops, sum t.reads, sum t.throttles, sum t.violations)

  let active t =
    Array.fold_left (fun acc n -> if n > 0 then acc + 1 else acc) 0 t.ops

  let top t ~n =
    let ids = Array.init (Array.length t.ops) Fun.id in
    Array.sort
      (fun a b ->
        match compare t.ops.(b) t.ops.(a) with 0 -> compare a b | c -> c)
      ids;
    Array.to_list (Array.sub ids 0 (Stdlib.min n (Array.length ids)))

  let merge ~into src =
    let add dst src = Array.iteri (fun i n -> dst.(i) <- dst.(i) + n) src in
    add into.ops src.ops;
    add into.reads src.reads;
    add into.throttles src.throttles;
    add into.violations src.violations
end
