(** Fixed-bucket latency histogram for request-latency percentiles.

    Telemetry's {!Telemetry.Registry.Histogram} buckets linearly over a
    caller-chosen range — fine for error counts, useless for latencies
    spanning five decades where p999 must stay resolvable next to p50.
    This histogram is log-spaced: a fixed layout of [buckets_per_decade]
    buckets per decade from [lo_us] up, so relative resolution is
    constant (~10% at 24 buckets/decade) at every magnitude and two
    histograms always merge bucket-for-bucket.

    Count, sum, min and max are exact; percentiles are bucket
    approximations (the bucket's geometric midpoint).  All operations
    are single-domain; parallel cells keep their own histogram and the
    driver {!merge}s in submission order, so results are deterministic
    at any job count. *)

type t

val lo_us : float
(** Lower edge of the first bucket (1 us); smaller observations clamp
    into it. *)

val buckets_per_decade : int

val decades : int
(** Span of the bucketed range; beyond it observations land in one
    overflow bucket whose representative value is the observed max. *)

val create : unit -> t
val observe : t -> float -> unit

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t q] for [q] in \[0, 1\]; [nan] when empty. *)

val merge : into:t -> t -> unit
(** Add the source's buckets into [into]; exact for count/sum/min/max. *)

val pp_row : Format.formatter -> t -> unit
(** Render [p50 p95 p99 p999 max] in microseconds, fixed width — one row
    of the latency tables (a count-0 histogram renders dashes). *)
