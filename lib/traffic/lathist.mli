(** Fixed-bucket latency histogram for request-latency percentiles.

    Telemetry's {!Telemetry.Registry.Histogram} buckets linearly over a
    caller-chosen range — fine for error counts, useless for latencies
    spanning five decades where p999 must stay resolvable next to p50.
    This histogram is log-spaced: a fixed layout of [buckets_per_decade]
    buckets per decade from [lo_us] up, so relative resolution is
    constant (~10% at 24 buckets/decade) at every magnitude and two
    histograms always merge bucket-for-bucket.

    Count, sum, min and max are exact; percentiles are bucket
    approximations (the bucket's geometric midpoint).  All operations
    are single-domain; parallel cells keep their own histogram and the
    driver {!merge}s in submission order, so results are deterministic
    at any job count. *)

type t

val lo_us : float
(** Lower edge of the first bucket (1 us); smaller observations clamp
    into it. *)

val buckets_per_decade : int

val decades : int
(** Span of the bucketed range; beyond it observations land in one
    overflow bucket whose representative value is the observed max. *)

val tags_width : int
(** Tag-bit positions accepted by {!observe_tagged} (bits
    [0 .. tags_width-1]; higher bits are masked off).  Wide enough for
    {!Obs.Cause.width}. *)

val create : unit -> t
val observe : t -> float -> unit

val observe_tagged : t -> float -> tags:int -> unit
(** {!observe} plus root-cause attribution: each set bit in [tags]
    increments that cause's count in the value's bucket, and the
    observation competes (strict max, first wins) for the bucket's
    exemplar slot.  [tags = 0] degrades to plain {!observe}; the
    attribution side tables are only allocated once a tagged
    observation arrives. *)

val count : t -> int
val sum : t -> float
val mean : t -> float
(** [nan] when empty. *)

val min : t -> float
val max : t -> float

val percentile : t -> float -> float
(** [percentile t q] for [q] in \[0, 1\]; [nan] when empty. *)

val count_above : t -> float -> int
(** Observations in the percentile-[q] bucket and above — the tail
    population the attribution counters are reported against. *)

val tag_totals_above : t -> float -> int array
(** Per-tag-bit observation counts ([tags_width] entries) over the
    buckets at and above percentile [q] — "what the tail ops were
    paying for".  All zeros when no tagged observation landed there. *)

val exemplar_above : t -> float -> (float * int) option
(** Worst tagged exemplar at or above percentile [q]:
    [(latency_us, tags)] of the highest-latency tagged op retained in
    those buckets, if any. *)

val merge : into:t -> t -> unit
(** Add the source's buckets into [into]; exact for count/sum/min/max. *)

val pp_row : Format.formatter -> t -> unit
(** Render [p50 p95 p99 p999 max] in microseconds, fixed width — one row
    of the latency tables (a count-0 histogram renders dashes). *)
