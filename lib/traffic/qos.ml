type config = { bandwidth_ops_per_s : float; burst_ops : float }

let default_config = { bandwidth_ops_per_s = 50_000.; burst_ops = 32. }

type t = {
  rates_per_us : float array;
  burst : float;
  tokens : float array;
  last_us : float array;
}

let create config ~weights =
  if config.bandwidth_ops_per_s <= 0. then
    invalid_arg "Qos.create: bandwidth must be positive";
  if config.burst_ops < 1. then invalid_arg "Qos.create: burst_ops must be >= 1";
  let total = Array.fold_left ( +. ) 0. weights in
  Array.iter
    (fun w -> if w <= 0. then invalid_arg "Qos.create: weights must be positive")
    weights;
  let n = Array.length weights in
  {
    rates_per_us =
      Array.map
        (fun w -> config.bandwidth_ops_per_s *. w /. total /. 1e6)
        weights;
    burst = config.burst_ops;
    tokens = Array.make n config.burst_ops;
    last_us = Array.make n 0.;
  }

let refill t ~tenant ~now_us =
  let elapsed = now_us -. t.last_us.(tenant) in
  if elapsed > 0. then begin
    t.tokens.(tenant) <-
      Stdlib.min t.burst (t.tokens.(tenant) +. (elapsed *. t.rates_per_us.(tenant)));
    t.last_us.(tenant) <- now_us
  end

let admit t ~tenant ~now_us =
  refill t ~tenant ~now_us;
  if t.tokens.(tenant) >= 1. then begin
    t.tokens.(tenant) <- t.tokens.(tenant) -. 1.;
    `Ok
  end
  else `Delay ((1. -. t.tokens.(tenant)) /. t.rates_per_us.(tenant))

let rate t ~tenant = t.rates_per_us.(tenant) *. 1e6
