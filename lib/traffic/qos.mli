(** Per-tenant QoS: token buckets with weighted sharing of device
    bandwidth.

    Each tenant owns a bucket refilled at
    [bandwidth * weight / total_weight] ops per second, with room for
    [burst_ops] tokens.  Refill is lazy (computed from the elapsed
    simulated time at each admit), so a million idle tenants cost
    nothing per tick — state is two floats per tenant. *)

type config = {
  bandwidth_ops_per_s : float;  (** device bandwidth shared by all tenants *)
  burst_ops : float;  (** bucket depth, >= 1 *)
}

val default_config : config
(** 50k ops/s shared, bursts of 32 ops. *)

type t

val create : config -> weights:float array -> t
(** One bucket per entry of [weights] (all start full).
    @raise Invalid_argument on a non-positive bandwidth, burst or
    weight. *)

val admit : t -> tenant:int -> now_us:float -> [ `Ok | `Delay of float ]
(** At simulated time [now_us], either consume one token ([`Ok]) or
    report how long until the bucket holds one ([`Delay us] — the
    caller advances its clock and re-admits; tokens are not consumed).
    [now_us] must not move backwards for a given tenant. *)

val rate : t -> tenant:int -> float
(** The tenant's refill rate, ops per second. *)
