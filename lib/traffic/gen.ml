type spec = {
  tenants : int;
  ops : int;
  window : int;
  profiles : Tenant.profile list;
  popularity_theta : float;
  burst_period : int;
  burst_duty : float;
  diurnal_period : int;
  diurnal_amplitude : float;
}

let default_spec =
  {
    tenants = 200;
    ops = 20_000;
    window = 16_384;
    profiles = Tenant.default_profiles;
    popularity_theta = 0.9;
    burst_period = 2_000;
    burst_duty = 0.4;
    diurnal_period = 10_000;
    diurnal_amplitude = 0.6;
  }

let check spec =
  if spec.tenants <= 0 then invalid_arg "Gen: tenants must be positive";
  if spec.ops < 0 then invalid_arg "Gen: ops must be non-negative";
  if spec.window <= 0 then invalid_arg "Gen: window must be positive";
  if spec.burst_period > 0 && not (spec.burst_duty > 0. && spec.burst_duty <= 1.)
  then invalid_arg "Gen: burst_duty must be in (0, 1]";
  if not (spec.diurnal_amplitude >= 0. && spec.diurnal_amplitude < 1.) then
    invalid_arg "Gen: diurnal_amplitude must be in [0, 1)"

let pi = 4. *. Stdlib.atan 1.

let intensity spec ~op =
  if spec.diurnal_period <= 0 || spec.diurnal_amplitude <= 0. then 1.
  else
    let phase =
      2. *. pi
      *. float_of_int (op mod spec.diurnal_period)
      /. float_of_int spec.diurnal_period
    in
    (* Peak at the cycle's start, trough at [1 - amplitude] halfway. *)
    1. -. (spec.diurnal_amplitude *. 0.5 *. (1. -. Stdlib.cos phase))

let tenant_on spec ~tenant ~op =
  spec.burst_period <= 0
  ||
  let phase = (tenant * 2654435761) land max_int mod spec.burst_period in
  let on_span =
    Stdlib.max 1
      (int_of_float (spec.burst_duty *. float_of_int spec.burst_period))
  in
  (op + phase) mod spec.burst_period < on_span

let generate spec ~seed =
  check spec;
  let rng = Sim.Rng.create seed in
  let population = Tenant.create ~profiles:spec.profiles ~tenants:spec.tenants () in
  let popularity =
    if spec.popularity_theta <= 0. then None
    else Some (Sim.Dist.Zipf.create ~n:spec.tenants ~theta:spec.popularity_theta)
  in
  let draw_tenant () =
    match popularity with
    | Some zipf -> Sim.Dist.Zipf.sample zipf rng
    | None -> Sim.Rng.int rng spec.tenants
  in
  let trace = Workload.Trace.create () in
  for op = 0 to spec.ops - 1 do
    (* Re-draw a bursting-off tenant a bounded number of times: the trace
       stays exactly [ops] long, the off-phase just sheds most of its
       load onto whoever is on. *)
    let rec pick retries =
      let tenant = draw_tenant () in
      if retries = 0 || tenant_on spec ~tenant ~op then tenant
      else pick (retries - 1)
    in
    let tenant = pick 8 in
    let profile = Tenant.profile_of population tenant in
    let kind =
      if Sim.Rng.chance rng profile.Tenant.read_fraction then
        Workload.Access.Read
      else Workload.Access.Write
    in
    let lba =
      Tenant.base_lba population tenant ~window:spec.window
      + Tenant.next_local population tenant ~rng
    in
    Workload.Trace.record_event trace
      { Workload.Trace.tenant; access = { Workload.Access.kind; lba } }
  done;
  trace
