(** Multi-tenant population model: who issues each access.

    A handful of {!profile}s describe tenant classes (pattern, skew,
    footprint, QoS weight, SLO); a {!t} instantiates them over an
    arbitrary tenant count — profiles are striped across the id space by
    [share], so tenant ids never need a per-tenant descriptor and the
    model scales to millions of tenants with O(tenants) integers of
    state (sequential cursors and accounting), not O(tenants) records. *)

type pattern =
  | Sequential  (** wrapping sequential over the tenant's footprint *)
  | Uniform
  | Zipfian of float  (** theta; rank 0 hottest within the footprint *)

type profile = {
  name : string;
  share : int;  (** relative slice of the tenant population (>= 1) *)
  pattern : pattern;
  read_fraction : float;
  footprint : int;  (** LBAs the tenant touches (>= 1) *)
  qos_weight : float;  (** relative token-bucket share (> 0) *)
  slo_us : float;  (** per-request latency objective *)
}

val default_profiles : profile list
(** Three-class datacenter mix: skewed read-mostly [web], uniform
    mixed [batch], sequential write-heavy [logger]. *)

type t

val create : ?profiles:profile list -> tenants:int -> unit -> t
(** @raise Invalid_argument on [tenants <= 0], an empty profile list, or
    a profile with a non-positive share, footprint or qos_weight. *)

val tenants : t -> int
val profiles : t -> profile array

val profile_index : t -> int -> int
(** Profile of a tenant id, by striping shares across the id space:
    deterministic, allocation-free. *)

val profile_of : t -> int -> profile

val base_lba : t -> int -> window:int -> int
(** Start of the tenant's footprint inside a [window]-LBA address space,
    scattered by a hash of the id so neighbouring tenants don't overlap
    trivially. *)

val next_local : t -> int -> rng:Sim.Rng.t -> int
(** Draw the next within-footprint offset for a tenant (advances its
    sequential cursor / samples its profile's distribution). *)

val qos_weights : t -> float array
(** Per-tenant QoS weights (length [tenants]), for {!Qos.create}. *)

(** Per-tenant accounting, kept as flat arrays so a million tenants cost
    a few machine words each. *)
module Accounts : sig
  type population := t
  type t

  val create : population -> t
  val record_op : t -> tenant:int -> read:bool -> unit
  val record_throttle : t -> tenant:int -> unit
  val record_violation : t -> tenant:int -> unit

  val ops : t -> int -> int
  val reads : t -> int -> int
  val throttles : t -> int -> int
  val violations : t -> int -> int

  val totals : t -> int * int * int * int
  (** (ops, reads, throttles, violations) over all tenants. *)

  val active : t -> int
  (** Tenants with at least one op. *)

  val top : t -> n:int -> int list
  (** Ids of the [n] busiest tenants, most ops first (ties: lower id). *)

  val merge : into:t -> t -> unit
end
