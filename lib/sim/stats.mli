(** Online statistics and histograms for experiment measurement. *)

(** Single-pass mean/variance accumulator (Welford's algorithm). *)
module Online : sig
  type t

  val create : unit -> t
  val add : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** Mean of the observations; [nan] when empty. *)

  val variance : t -> float
  (** Unbiased sample variance; [nan] with fewer than two observations. *)

  val stddev : t -> float
  val min : t -> float
  val max : t -> float
  val total : t -> float
  val merge : t -> t -> t
  (** Combine two accumulators as if all observations went to one. *)
end

(** Fixed-bucket histogram with percentile queries, for latency
    distributions. *)
module Histogram : sig
  type t

  val create : ?buckets:int -> lo:float -> hi:float -> unit -> t
  (** Linear buckets spanning \[lo, hi); out-of-range samples are clamped to
      the first/last bucket.  Default 128 buckets. *)

  val add : t -> float -> unit
  val count : t -> int
  val percentile : t -> float -> float
  (** [percentile t 0.99] approximates the p99 value (midpoint of the bucket
      containing that rank).  @raise Invalid_argument on an empty histogram
      or a rank outside \[0, 1\]. *)

  val mean : t -> float

  val merge : t -> t -> t
  (** Combine two histograms bucket-by-bucket, as if all samples went to
      one.  Both must share lo/hi and bucket count.
      @raise Invalid_argument on mismatched layouts. *)
end

(** Time series accumulation: samples tagged with a simulation timestamp,
    binned for plotting figure series. *)
module Series : sig
  type t

  val create : unit -> t
  val add : t -> time:float -> float -> unit
  val to_list : t -> (float * float) list
  (** Points in insertion order. *)

  val binned : t -> bin:float -> (float * float) list
  (** Average of the samples within each [bin]-wide window, keyed by the
      window's start time, in increasing time order. *)

  val last : t -> (float * float) option
end
