module Online = struct
  type t = {
    mutable count : int;
    mutable mean : float;
    mutable m2 : float;
    mutable min : float;
    mutable max : float;
    mutable total : float;
  }

  let create () =
    { count = 0; mean = 0.; m2 = 0.; min = infinity; max = neg_infinity;
      total = 0. }

  let add t x =
    t.count <- t.count + 1;
    let delta = x -. t.mean in
    t.mean <- t.mean +. (delta /. float_of_int t.count);
    t.m2 <- t.m2 +. (delta *. (x -. t.mean));
    if x < t.min then t.min <- x;
    if x > t.max then t.max <- x;
    t.total <- t.total +. x

  let count t = t.count
  let mean t = if t.count = 0 then nan else t.mean
  let variance t =
    if t.count < 2 then nan else t.m2 /. float_of_int (t.count - 1)

  let stddev t = sqrt (variance t)
  let min t = t.min
  let max t = t.max
  let total t = t.total

  let merge a b =
    if a.count = 0 then { b with count = b.count }
    else if b.count = 0 then { a with count = a.count }
    else begin
      let count = a.count + b.count in
      let delta = b.mean -. a.mean in
      let mean =
        a.mean +. (delta *. float_of_int b.count /. float_of_int count)
      in
      let m2 =
        a.m2 +. b.m2
        +. (delta *. delta *. float_of_int a.count *. float_of_int b.count
           /. float_of_int count)
      in
      { count; mean; m2;
        min = Float.min a.min b.min;
        max = Float.max a.max b.max;
        total = a.total +. b.total }
    end
end

module Histogram = struct
  type t = {
    lo : float;
    hi : float;
    counts : int array;
    mutable total_count : int;
    mutable sum : float;
  }

  let create ?(buckets = 128) ~lo ~hi () =
    if hi <= lo then invalid_arg "Histogram.create: hi must exceed lo";
    if buckets <= 0 then invalid_arg "Histogram.create: buckets must be > 0";
    { lo; hi; counts = Array.make buckets 0; total_count = 0; sum = 0. }

  let bucket_of t x =
    let buckets = Array.length t.counts in
    let raw =
      int_of_float ((x -. t.lo) /. (t.hi -. t.lo) *. float_of_int buckets)
    in
    Stdlib.max 0 (Stdlib.min (buckets - 1) raw)

  let add t x =
    t.counts.(bucket_of t x) <- t.counts.(bucket_of t x) + 1;
    t.total_count <- t.total_count + 1;
    t.sum <- t.sum +. x

  let count t = t.total_count

  let bucket_midpoint t i =
    let buckets = float_of_int (Array.length t.counts) in
    t.lo +. ((float_of_int i +. 0.5) /. buckets *. (t.hi -. t.lo))

  let percentile t rank =
    if t.total_count = 0 then invalid_arg "Histogram.percentile: empty";
    if rank < 0. || rank > 1. then
      invalid_arg "Histogram.percentile: rank outside [0,1]";
    let threshold = rank *. float_of_int t.total_count in
    let rec scan i acc =
      if i >= Array.length t.counts - 1 then bucket_midpoint t i
      else
        let acc = acc + t.counts.(i) in
        if float_of_int acc >= threshold then bucket_midpoint t i
        else scan (i + 1) acc
    in
    scan 0 0

  let mean t = if t.total_count = 0 then nan else t.sum /. float_of_int t.total_count

  let merge a b =
    if a.lo <> b.lo || a.hi <> b.hi
       || Array.length a.counts <> Array.length b.counts
    then invalid_arg "Histogram.merge: incompatible bucket layouts";
    {
      lo = a.lo;
      hi = a.hi;
      counts = Array.init (Array.length a.counts) (fun i -> a.counts.(i) + b.counts.(i));
      total_count = a.total_count + b.total_count;
      sum = a.sum +. b.sum;
    }
end

module Series = struct
  type t = { mutable points : (float * float) list }
  (* Stored in reverse insertion order. *)

  let create () = { points = [] }
  let add t ~time value = t.points <- (time, value) :: t.points
  let to_list t = List.rev t.points

  let binned t ~bin =
    if bin <= 0. then invalid_arg "Series.binned: bin must be > 0";
    let table = Hashtbl.create 64 in
    List.iter
      (fun (time, value) ->
        let key = int_of_float (floor (time /. bin)) in
        let online =
          match Hashtbl.find_opt table key with
          | Some o -> o
          | None ->
              let o = Online.create () in
              Hashtbl.add table key o;
              o
        in
        Online.add online value)
      t.points;
    Hashtbl.fold
      (fun key online acc ->
        (float_of_int key *. bin, Online.mean online) :: acc)
      table []
    |> List.sort (fun (a, _) (b, _) -> Float.compare a b)

  let last t = match t.points with [] -> None | p :: _ -> Some p
end
