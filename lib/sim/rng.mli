(** Deterministic, splittable pseudo-random number generator.

    The simulator must be reproducible: every experiment takes an explicit
    seed, and concurrent subsystems (devices, workload generators, failure
    injectors) each receive an independent stream obtained with {!split} so
    that adding a subsystem never perturbs the random sequence seen by the
    others.  The generator is xoshiro256** (Blackman & Vigna), seeded through
    splitmix64. *)

type t

val create : int -> t
(** [create seed] returns a fresh generator deterministically derived from
    [seed]. *)

val split : t -> t
(** [split t] returns a new generator whose future output is independent of
    [t]'s.  [t] itself advances, so successive splits differ. *)

val copy : t -> t
(** [copy t] duplicates the current state; both copies then produce the same
    sequence. *)

val equal : t -> t -> bool
(** State equality: two equal generators produce identical futures.  The
    differential tests use this to prove two code paths consumed exactly
    the same number of draws. *)

val bits64 : t -> int64
(** Next raw 64 random bits. *)

val int : t -> int -> int
(** [int t bound] is uniform in \[0, bound).  @raise Invalid_argument if
    [bound <= 0]. *)

val int_in : t -> int -> int -> int
(** [int_in t lo hi] is uniform in \[lo, hi\] inclusive. *)

val float : t -> float -> float
(** [float t bound] is uniform in \[0, bound). *)

val unit_float : t -> float
(** Uniform in \[0, 1), with 53 bits of precision. *)

val bool : t -> bool
(** Fair coin. *)

val chance : t -> float -> bool
(** [chance t p] is true with probability [p] (clamped to \[0,1\]). *)

val shuffle : t -> 'a array -> unit
(** In-place Fisher-Yates shuffle. *)

val choose : t -> 'a array -> 'a
(** Uniformly random element.  @raise Invalid_argument on empty array. *)
