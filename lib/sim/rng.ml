(* xoshiro256** on 32-bit halves held in native ints.

   OCaml's [int64] is boxed (this tree is built without flambda), so a
   state representation with [int64] fields costs ~29 minor words per
   draw — at fleet scale the RNG alone becomes the dominant allocator
   and, under multi-domain runs, the dominant source of minor-GC
   stop-the-world rendezvous.  Splitting every 64-bit quantity into two
   32-bit halves keeps the whole hot path in immediate ints: zero
   allocation per draw, bit-identical output. *)

type t = {
  mutable s0h : int;
  mutable s0l : int;
  mutable s1h : int;
  mutable s1l : int;
  mutable s2h : int;
  mutable s2l : int;
  mutable s3h : int;
  mutable s3l : int;
  (* result halves of the most recent [step]; scratch, not state *)
  mutable rh : int;
  mutable rl : int;
}

let m32 = 0xFFFF_FFFF
let two31 = 0x8000_0000

(* splitmix64: used to expand a small seed into full state and to derive
   independent streams for [split].  Cold path — boxed int64 is fine. *)
let splitmix64_next state =
  let open Int64 in
  state := add !state 0x9E3779B97F4A7C15L;
  let z = !state in
  let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
  let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
  logxor z (shift_right_logical z 31)

let hi64 x = Int64.to_int (Int64.shift_right_logical x 32)
let lo64 x = Int64.to_int (Int64.logand x 0xFFFF_FFFFL)

let of_halves h l =
  Int64.logor (Int64.shift_left (Int64.of_int h) 32) (Int64.of_int l)

let of_seed64 seed =
  let state = ref seed in
  let s0 = splitmix64_next state in
  let s1 = splitmix64_next state in
  let s2 = splitmix64_next state in
  let s3 = splitmix64_next state in
  {
    s0h = hi64 s0;
    s0l = lo64 s0;
    s1h = hi64 s1;
    s1l = lo64 s1;
    s2h = hi64 s2;
    s2l = lo64 s2;
    s3h = hi64 s3;
    s3l = lo64 s3;
    rh = 0;
    rl = 0;
  }

let create seed = of_seed64 (Int64.of_int seed)

let copy t =
  {
    s0h = t.s0h;
    s0l = t.s0l;
    s1h = t.s1h;
    s1l = t.s1l;
    s2h = t.s2h;
    s2l = t.s2l;
    s3h = t.s3h;
    s3l = t.s3l;
    rh = t.rh;
    rl = t.rl;
  }

let equal a b =
  a.s0h = b.s0h && a.s0l = b.s0l && a.s1h = b.s1h && a.s1l = b.s1l
  && a.s2h = b.s2h && a.s2l = b.s2l && a.s3h = b.s3h && a.s3l = b.s3l

(* One xoshiro256** step:
     result = rotl64 (s1 * 5) 7 * 9
     tmp = s1 << 17
     s2 ^= s0; s3 ^= s1; s1 ^= s2; s0 ^= s3; s2 ^= tmp; s3 = rotl64 s3 45
   Each 64-bit op decomposes onto the halves: shifts carry bits across
   the boundary, adds propagate one carry, *5 and *9 are shift-adds, and
   rotl by k >= 32 swaps the halves first. *)
let[@inline] step t =
  let s1h = t.s1h and s1l = t.s1l in
  (* x5 = s1 * 5 = s1 + (s1 << 2) *)
  let ah = ((s1h lsl 2) lor (s1l lsr 30)) land m32 in
  let al = (s1l lsl 2) land m32 in
  let sum = s1l + al in
  let x5l = sum land m32 in
  let x5h = (s1h + ah + (sum lsr 32)) land m32 in
  (* r7 = rotl64 x5 7 *)
  let r7h = ((x5h lsl 7) lor (x5l lsr 25)) land m32 in
  let r7l = ((x5l lsl 7) lor (x5h lsr 25)) land m32 in
  (* result = r7 * 9 = r7 + (r7 << 3) *)
  let bh = ((r7h lsl 3) lor (r7l lsr 29)) land m32 in
  let bl = (r7l lsl 3) land m32 in
  let sum = r7l + bl in
  t.rl <- sum land m32;
  t.rh <- (r7h + bh + (sum lsr 32)) land m32;
  (* tmp = s1 << 17 *)
  let th = ((s1h lsl 17) lor (s1l lsr 15)) land m32 in
  let tl = (s1l lsl 17) land m32 in
  let s2h = t.s2h lxor t.s0h and s2l = t.s2l lxor t.s0l in
  let s3h = t.s3h lxor s1h and s3l = t.s3l lxor s1l in
  t.s1h <- s1h lxor s2h;
  t.s1l <- s1l lxor s2l;
  t.s0h <- t.s0h lxor s3h;
  t.s0l <- t.s0l lxor s3l;
  t.s2h <- s2h lxor th;
  t.s2l <- s2l lxor tl;
  (* s3 = rotl64 s3' 45: rotate by 32 (swap halves) then by 13 *)
  t.s3h <- ((s3l lsl 13) lor (s3h lsr 19)) land m32;
  t.s3l <- ((s3h lsl 13) lor (s3l lsr 19)) land m32

let bits64 t =
  step t;
  of_halves t.rh t.rl

let split t = of_seed64 (bits64 t)

(* Rejection sampling to avoid modulo bias, on a 63-bit draw
   raw = result >>> 1 = rh * 2^31 + (rl >>> 1).  With
   u = 2^63 mod bound, a draw is biased iff raw >= 2^63 - u, which
   on the halves is exactly rh = 2^32-1 && (rl >>> 1) >= 2^31 - u;
   and raw mod bound = ((rh mod bound) * (2^31 mod bound)
   + (rl >>> 1)) mod bound, which never overflows 63-bit ints for
   bound <= 2^31.  Top-level recursion: a local [let rec draw] would
   allocate its closure on every call. *)
let rec fast_draw t bound lim p31 =
  step t;
  let rl = t.rl lsr 1 in
  if t.rh = m32 && rl >= lim then fast_draw t bound lim p31
  else ((t.rh mod bound) * p31 + rl) mod bound

(* bounds above 2^31 are off the hot path; boxed arithmetic is fine *)
let rec slow_draw t bound64 =
  let raw = Int64.shift_right_logical (bits64 t) 1 in
  let candidate = Int64.rem raw bound64 in
  if Int64.sub raw candidate > Int64.sub Int64.max_int (Int64.sub bound64 1L)
  then slow_draw t bound64
  else Int64.to_int candidate

let int t bound =
  if bound <= 0 then invalid_arg "Rng.int: bound must be positive";
  if bound <= two31 then begin
    let u =
      let h62 = (max_int mod bound + 1) mod bound in
      (h62 + h62) mod bound
    in
    fast_draw t bound (two31 - u) (two31 mod bound)
  end
  else slow_draw t (Int64.of_int bound)

let int_in t lo hi =
  if hi < lo then invalid_arg "Rng.int_in: empty range";
  lo + int t (hi - lo + 1)

(* result >>> 11 = rh * 2^21 + (rl >>> 11): 53 bits, exact as a float *)
let unit_float t =
  step t;
  float_of_int ((t.rh lsl 21) lor (t.rl lsr 11)) *. 0x1p-53

let float t bound = unit_float t *. bound

let bool t =
  step t;
  t.rl land 1 = 1

let chance t p =
  if p <= 0. then false
  else if p >= 1. then true
  else begin
    (* raw53 * 2^-53 < p <=> raw53 < p * 2^53: both scalings by a power
       of two are exact for p in (0,1), and comparing this way keeps the
       draw unboxed. *)
    step t;
    float_of_int ((t.rh lsl 21) lor (t.rl lsr 11)) < p *. 0x1p53
  end

let shuffle t arr =
  for i = Array.length arr - 1 downto 1 do
    let j = int t (i + 1) in
    let tmp = arr.(i) in
    arr.(i) <- arr.(j);
    arr.(j) <- tmp
  done

let choose t arr =
  if Array.length arr = 0 then invalid_arg "Rng.choose: empty array";
  arr.(int t (Array.length arr))
