(** Access-trace recording, replay and persistence, so an experiment can
    subject two device designs to the byte-identical request stream — in
    one process or across runs via the versioned on-disk format. *)

type event = { tenant : int; access : Access.t }
(** One traced access, attributed to the simulated tenant that issued it.
    Single-tenant recorders use tenant 0. *)

type t

val create : unit -> t

val record : t -> Access.t -> unit
(** Append an access for tenant 0. *)

val record_event : t -> event -> unit

val length : t -> int

val capture : t -> Pattern.t -> Sim.Rng.t -> n:int -> unit
(** Draw [n] accesses from a pattern and append them (tenant 0). *)

val iter : t -> (Access.t -> unit) -> unit
(** Replay in recorded order. *)

val iter_events : t -> (event -> unit) -> unit

val to_list : t -> Access.t list
val of_list : Access.t list -> t

val to_events : t -> event list
val of_events : event list -> t

(** {2 On-disk format}

    A line-based, versioned format: header [salamander-trace v1], then
    one [<tenant> <op> <lba>] line per access ([r]/[w]/[d]).  Designed so
    [of_string (to_string t)] is the identity on the event list; loaders
    reject unknown versions instead of misreading them. *)

val format_version : int

val to_string : t -> string
val of_string : string -> (t, string) result

val to_file : t -> path:string -> unit
(** @raise Sys_error when the path cannot be written. *)

val of_file : path:string -> (t, string) result
