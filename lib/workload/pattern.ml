type shape =
  | Sequential of { mutable cursor : int }
  | Uniform of { read_fraction : float }
  | Zipfian of { mutable zipf : Sim.Dist.Zipf.t; theta : float; read_fraction : float }

type t = { mutable window : int; shape : shape }

let check_window window =
  if window <= 0 then invalid_arg "Pattern: window must be positive"

let sequential ~window =
  check_window window;
  { window; shape = Sequential { cursor = 0 } }

let uniform ~window ~read_fraction =
  check_window window;
  { window; shape = Uniform { read_fraction } }

let zipfian ~window ~theta ~read_fraction =
  check_window window;
  {
    window;
    shape =
      Zipfian { zipf = Sim.Dist.Zipf.create ~n:window ~theta; theta; read_fraction };
  }

let next t rng =
  check_window t.window;
  match t.shape with
  | Sequential state ->
      if state.cursor >= t.window then state.cursor <- 0;
      let lba = state.cursor in
      state.cursor <- state.cursor + 1;
      { Access.kind = Access.Write; lba }
  | Uniform { read_fraction } ->
      let kind =
        if Sim.Rng.chance rng read_fraction then Access.Read else Access.Write
      in
      { Access.kind; lba = Sim.Rng.int rng t.window }
  | Zipfian z ->
      if Sim.Dist.Zipf.n z.zipf <> t.window then
        z.zipf <- Sim.Dist.Zipf.create ~n:t.window ~theta:z.theta;
      let kind =
        if Sim.Rng.chance rng z.read_fraction then Access.Read else Access.Write
      in
      { Access.kind; lba = Sim.Dist.Zipf.sample z.zipf rng }

let resize t ~window =
  check_window window;
  t.window <- window

let window t = t.window

let write_only_uniform t =
  match t.shape with
  | Uniform { read_fraction } -> read_fraction <= 0.
  | Sequential _ | Zipfian _ -> false
