type event = { tenant : int; access : Access.t }

type t = { mutable events : event list; mutable count : int }
(* stored in reverse order; reversed on iteration *)

let create () = { events = []; count = 0 }

let record_event t event =
  t.events <- event :: t.events;
  t.count <- t.count + 1

let record t access = record_event t { tenant = 0; access }

let length t = t.count

let capture t pattern rng ~n =
  for _ = 1 to n do
    record t (Pattern.next pattern rng)
  done

let to_events t = List.rev t.events
let to_list t = List.map (fun e -> e.access) (to_events t)
let iter t f = List.iter f (to_list t)
let iter_events t f = List.iter f (to_events t)

let of_events events =
  { events = List.rev events; count = List.length events }

let of_list accesses =
  of_events (List.map (fun access -> { tenant = 0; access }) accesses)

(* --- on-disk format ------------------------------------------------------- *)

(* Version 1: a line-based format.  The first line is the magic+version
   header; every following non-empty line is one access,

     <tenant> <op> <lba>

   with <op> one of [r] (read), [w] (write), [d] (discard/trim), and
   <tenant>/<lba> decimal integers.  Line-based keeps traces diffable and
   greppable; the version header lets the format evolve without silently
   misreading old artifacts. *)

let format_version = 1
let magic = "salamander-trace"

let op_char = function
  | Access.Read -> 'r'
  | Access.Write -> 'w'
  | Access.Trim -> 'd'

let op_of_char = function
  | 'r' -> Some Access.Read
  | 'w' -> Some Access.Write
  | 'd' -> Some Access.Trim
  | _ -> None

let to_string t =
  let buffer = Buffer.create (16 * t.count + 32) in
  Buffer.add_string buffer (Printf.sprintf "%s v%d\n" magic format_version);
  iter_events t (fun { tenant; access } ->
      Buffer.add_string buffer
        (Printf.sprintf "%d %c %d\n" tenant (op_char access.Access.kind)
           access.Access.lba));
  Buffer.contents buffer

let of_string text =
  let fail line msg = Error (Printf.sprintf "trace line %d: %s" line msg) in
  match String.split_on_char '\n' text with
  | [] -> Error "trace: empty input"
  | header :: body ->
      let expected = Printf.sprintf "%s v%d" magic format_version in
      if String.trim header <> expected then
        Error
          (Printf.sprintf "trace: bad header %S (expected %S)" header expected)
      else begin
        let t = create () in
        let rec go line_no = function
          | [] -> Ok t
          | line :: rest ->
              let line' = String.trim line in
              if line' = "" then go (line_no + 1) rest
              else begin
                match String.split_on_char ' ' line' with
                | [ tenant; op; lba ] when String.length op = 1 -> (
                    match
                      ( int_of_string_opt tenant,
                        op_of_char op.[0],
                        int_of_string_opt lba )
                    with
                    | Some tenant, Some kind, Some lba ->
                        record_event t
                          { tenant; access = { Access.kind; lba } };
                        go (line_no + 1) rest
                    | _ -> fail line_no (Printf.sprintf "cannot parse %S" line')
                    )
                | _ -> fail line_no (Printf.sprintf "cannot parse %S" line')
              end
        in
        go 2 body
      end

let to_file t ~path =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () -> output_string oc (to_string t))

let of_file ~path =
  match
    let ic = open_in path in
    Fun.protect
      ~finally:(fun () -> close_in ic)
      (fun () -> really_input_string ic (in_channel_length ic))
  with
  | text -> of_string text
  | exception Sys_error msg -> Error ("trace: " ^ msg)
