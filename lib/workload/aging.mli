(** Drivers that wear a device out under a workload.

    These run against any {!Ftl.Device_intf.packed} device (Salamander
    devices through their flat adapter), confining the pattern window to
    a fixed utilization of whatever capacity the device currently exports
    — the distributed-system assumption that freed space is rebalanced
    away rather than left stranded. *)

type outcome = {
  host_writes : int;  (** oPages accepted before stopping *)
  reads : int;
  unmapped_reads : int;  (** reads of never-written LBAs (workload artifact) *)
  uncorrectable_reads : int;  (** media-level errors ECC could not fix *)
  died : bool;  (** stopped because the device failed, not the cap *)
}

val run :
  ?max_writes:int ->
  ?utilization:float ->
  rng:Sim.Rng.t ->
  pattern:Pattern.t ->
  device:Ftl.Device_intf.packed ->
  unit ->
  outcome
(** Drive accesses until the device dies or [max_writes] (default 10M)
    writes have been accepted.  The pattern window tracks
    [utilization * logical_capacity] (default 0.85) as the device
    shrinks. *)

val run_until :
  ?stop_every:int ->
  ?utilization:float ->
  rng:Sim.Rng.t ->
  pattern:Pattern.t ->
  device:Ftl.Device_intf.packed ->
  stop:(int -> bool) ->
  unit ->
  outcome
(** Same, but the [stop] predicate (called with accepted writes so far)
    ends the run; used by fleet simulations that interleave devices.  The
    pattern window is resynced to the device's current capacity every
    [stop_every] accepted writes (default 256) — callers interleaving at
    finer granularity (fleet epochs, the traffic replayer) pass a smaller
    stride so a shrink is noticed within their slice.
    @raise Invalid_argument if [stop_every <= 0]. *)

(** How {!run_epoch} advances the device. *)
type path =
  | Auto
      (** take the device's bulk-aging stream when the pattern allows it
          (write-only uniform) and the device supports it; identical
          results either way *)
  | Per_op  (** force the one-call-per-write loop (the oracle path) *)

val run_epoch :
  ?path:path ->
  ?stop_every:int ->
  ?utilization:float ->
  rng:Sim.Rng.t ->
  pattern:Pattern.t ->
  device:Ftl.Device_intf.packed ->
  quota:int ->
  unit ->
  outcome
(** Accept up to [quota] writes (an aging epoch: one fleet day or a
    coalesced run of days).  Bit-exact with
    [run_until ~stop:(fun w -> w >= quota)] — same RNG draws, same
    device state, same outcome — but [Auto] advances the boring
    stretches between window resyncs through
    {!Ftl.Device_intf.S.write_stream} instead of one call per write.
    @raise Invalid_argument if [stop_every <= 0]. *)
