type outcome = {
  host_writes : int;
  reads : int;
  unmapped_reads : int;
  uncorrectable_reads : int;
  died : bool;
}

let sync_window pattern device ~utilization =
  let capacity = Ftl.Device_intf.logical_capacity device in
  let window =
    Stdlib.max 1 (int_of_float (float_of_int capacity *. utilization))
  in
  if window <> Pattern.window pattern && capacity > 0 then
    Pattern.resize pattern ~window

let run_until ?(stop_every = 256) ?(utilization = 0.85) ~rng ~pattern ~device
    ~stop () =
  if stop_every <= 0 then invalid_arg "Aging.run_until: stop_every";
  let host_writes = ref 0 in
  let reads = ref 0 in
  let unmapped_reads = ref 0 in
  let uncorrectable_reads = ref 0 in
  let died = ref false in
  (try
     while not (stop !host_writes) do
       if not (Ftl.Device_intf.alive device) then begin
         died := true;
         raise Exit
       end;
       if !host_writes mod stop_every = 0 then
         sync_window pattern device ~utilization;
       let access = Pattern.next pattern rng in
       match access.Access.kind with
       | Access.Write -> (
           match
             Ftl.Device_intf.write device ~lba:access.Access.lba
               ~payload:!host_writes
           with
           | Ok () -> incr host_writes
           | Error (`Dead | `No_space) ->
               died := true;
               raise Exit
           | Error `Out_of_range -> sync_window pattern device ~utilization)
       | Access.Read -> (
           incr reads;
           match Ftl.Device_intf.read device ~lba:access.Access.lba with
           | Ok _ -> ()
           | Error `Unmapped -> incr unmapped_reads
           | Error `Uncorrectable -> incr uncorrectable_reads
           | Error `Dead ->
               died := true;
               raise Exit
           | Error `Out_of_range -> sync_window pattern device ~utilization)
       | Access.Trim -> Ftl.Device_intf.trim device ~lba:access.Access.lba
     done
   with Exit -> ());
  { host_writes = !host_writes; reads = !reads;
    unmapped_reads = !unmapped_reads;
    uncorrectable_reads = !uncorrectable_reads; died = !died }

let run ?(max_writes = 10_000_000) ?utilization ~rng ~pattern ~device () =
  run_until ?utilization ~rng ~pattern ~device
    ~stop:(fun writes -> writes >= max_writes)
    ()

type path = Auto | Per_op

(* Epoch driver for steady-state aging: same loop structure as
   [run_until] — stop predicate, then alive check, then the window
   resync every [stop_every] accepted writes — but the writes between
   those decision points are delegated wholesale to the device's
   bulk-aging stream.  Each segment's budget runs exactly to the next
   stop_every boundary (or the quota), so every per-op decision point is
   hit at the same write counts with the same device state, and the RNG
   stream is identical: the fast path is bit-exact with [Per_op], which
   survives as the oracle for the differential suite. *)
let run_epoch ?(path = Auto) ?(stop_every = 256) ?(utilization = 0.85) ~rng
    ~pattern ~device ~quota () =
  if stop_every <= 0 then invalid_arg "Aging.run_epoch: stop_every";
  let per_op () =
    run_until ~stop_every ~utilization ~rng ~pattern ~device
      ~stop:(fun writes -> writes >= quota)
      ()
  in
  match path with
  | Per_op -> per_op ()
  | Auto when not (Pattern.write_only_uniform pattern) -> per_op ()
  | Auto ->
      let host_writes = ref 0 in
      let died = ref false in
      let fallback = ref false in
      (try
         while !host_writes < quota do
           if not (Ftl.Device_intf.alive device) then begin
             died := true;
             raise Exit
           end;
           if !host_writes mod stop_every = 0 then
             sync_window pattern device ~utilization;
           let budget =
             Stdlib.min (quota - !host_writes)
               (stop_every - (!host_writes mod stop_every))
           in
           let r =
             Ftl.Device_intf.write_stream device ~rng
               ~window:(Pattern.window pattern) ~payload_base:!host_writes
               ~budget
           in
           host_writes := !host_writes + r.Ftl.Device_intf.accepted;
           match r.Ftl.Device_intf.status with
           | Ftl.Device_intf.Stream_filled -> ()
           | Ftl.Device_intf.Stream_resync ->
               sync_window pattern device ~utilization
           | Ftl.Device_intf.Stream_dead ->
               died := true;
               raise Exit
           | Ftl.Device_intf.Stream_unsupported ->
               (* nothing consumed (guaranteed by the contract); replay
                  the whole epoch through the per-op loop *)
               fallback := true;
               raise Exit
         done
       with Exit -> ());
      if !fallback then per_op ()
      else
        {
          host_writes = !host_writes;
          reads = 0;
          unmapped_reads = 0;
          uncorrectable_reads = 0;
          died = !died;
        }
