type outcome = {
  host_writes : int;
  reads : int;
  unmapped_reads : int;
  uncorrectable_reads : int;
  died : bool;
}

let sync_window pattern device ~utilization =
  let capacity = Ftl.Device_intf.logical_capacity device in
  let window =
    Stdlib.max 1 (int_of_float (float_of_int capacity *. utilization))
  in
  if window <> Pattern.window pattern && capacity > 0 then
    Pattern.resize pattern ~window

let run_until ?(stop_every = 256) ?(utilization = 0.85) ~rng ~pattern ~device
    ~stop () =
  if stop_every <= 0 then invalid_arg "Aging.run_until: stop_every";
  let host_writes = ref 0 in
  let reads = ref 0 in
  let unmapped_reads = ref 0 in
  let uncorrectable_reads = ref 0 in
  let died = ref false in
  (try
     while not (stop !host_writes) do
       if not (Ftl.Device_intf.alive device) then begin
         died := true;
         raise Exit
       end;
       if !host_writes mod stop_every = 0 then
         sync_window pattern device ~utilization;
       let access = Pattern.next pattern rng in
       match access.Access.kind with
       | Access.Write -> (
           match
             Ftl.Device_intf.write device ~lba:access.Access.lba
               ~payload:!host_writes
           with
           | Ok () -> incr host_writes
           | Error (`Dead | `No_space) ->
               died := true;
               raise Exit
           | Error `Out_of_range -> sync_window pattern device ~utilization)
       | Access.Read -> (
           incr reads;
           match Ftl.Device_intf.read device ~lba:access.Access.lba with
           | Ok _ -> ()
           | Error `Unmapped -> incr unmapped_reads
           | Error `Uncorrectable -> incr uncorrectable_reads
           | Error `Dead ->
               died := true;
               raise Exit
           | Error `Out_of_range -> sync_window pattern device ~utilization)
       | Access.Trim -> Ftl.Device_intf.trim device ~lba:access.Access.lba
     done
   with Exit -> ());
  { host_writes = !host_writes; reads = !reads;
    unmapped_reads = !unmapped_reads;
    uncorrectable_reads = !uncorrectable_reads; died = !died }

let run ?(max_writes = 10_000_000) ?utilization ~rng ~pattern ~device () =
  run_until ?utilization ~rng ~pattern ~device
    ~stop:(fun writes -> writes >= max_writes)
    ()
