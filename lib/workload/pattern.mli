(** Synthetic access-pattern generators.

    A pattern is a stateful stream of {!Access.t} over a window of LBAs.
    The window can be resized between draws — shrinking devices hand the
    generator their current capacity, the same way a file system confines
    itself to the space the device still exports. *)

type t

val sequential : window:int -> t
(** Wrapping sequential writes: the classic aging workload. *)

val uniform : window:int -> read_fraction:float -> t
(** Uniformly random LBAs; each access is a read with the given
    probability, otherwise a write. *)

val zipfian : window:int -> theta:float -> read_fraction:float -> t
(** Skewed accesses: rank-0 hottest.  [theta] around 0.99 approximates the
    classic hot/cold datacenter mix. *)

val next : t -> Sim.Rng.t -> Access.t
(** Draw the next access.  @raise Invalid_argument if the window is 0. *)

val resize : t -> window:int -> unit
(** Change the LBA window (device grew or shrank). *)

val window : t -> int

val write_only_uniform : t -> bool
(** True when every draw is a uniform write consuming exactly one RNG
    draw ([uniform] with [read_fraction <= 0] — {!Sim.Rng.chance} never
    touches the stream for non-positive probabilities).  This is the
    shape the bulk-aging fast path can replay; any other pattern falls
    back to the exact per-op loop. *)
