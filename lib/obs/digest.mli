(** Bounded-memory quantile sketch (t-digest, merging variant).

    {!Traffic.Lathist} answers the same question for latencies, but its
    fixed log-spaced layout assumes a known range; fleet wear metrics
    (P/E counts, RBERs, rates) span ranges no fixed layout covers.  The
    digest adapts: compression fuses neighbours under a k1-style size
    limit, keeping clusters finest near both tails, and deterministic
    sequential arithmetic means a fixed chunk partition merged in
    submission order reproduces the same bytes at any [--jobs] (chunk
    sizing never depends on the job count, so this is the whole CLI
    determinism story).

    Memory is O(budget * log n) centroids — the size rule
    over-fragments the extreme tails by a log factor; in practice under
    8x [budget] up to millions of observations, versus O(n) for exact
    quantiles over a fleet.  Rank error is well under 2% at the default
    budget (pinned by the qcheck suite).  Count, sum, min and max are
    exact.  Single-domain, like every sketch in the reduction path. *)

type t

val create : ?budget:int -> unit -> t
(** [budget] (default 64, minimum 8) scales the compressed centroid
    count (see the memory note above); working memory is a small
    multiple of the compressed size. *)

val budget : t -> int

val add : t -> float -> unit
(** Observe one value with weight 1. *)

val observe : t -> float -> unit
(** Alias of {!add}. *)

val add_weighted : t -> float -> w:float -> unit
(** Observe a pre-aggregated value with positive weight [w]; does not
    bump {!count} (used by {!merge}). *)

val count : t -> int
(** Observations added via {!add} (merge sums it). *)

val total_weight : t -> float

val sum : t -> float
val mean : t -> float
val min : t -> float
val max : t -> float
(** [nan] when empty (mean also when total weight is zero). *)

val quantile : t -> float -> float
(** [quantile t q] for [q] in \[0, 1\]; interpolated between centroid
    midpoints, clamped to the exact observed min/max; [nan] when
    empty. *)

val centroids : t -> (float * float) array
(** Compressed [(mean, weight)] centroids in ascending mean order — the
    input to whole-distribution statistics (the fleet report's Gini). *)

val merge : into:t -> t -> unit
(** Fold the source's centroids into [into] and recompress.  Callers
    merge in submission order; the result is deterministic for a fixed
    merge order. *)
