(* Fleet-scale wear-imbalance analytics.

   One [observation] per device per run flows into an [Acc]: bounded
   quantile digests for wear, wear spread, worst RBER and retry rate;
   exact sums for mean/CV; grade counts; and an exact top-K of the
   worst devices.  Accumulators follow the scratch/merge discipline of
   the rest of the reduction path — each parallel chunk observes into
   its own [Acc.sub], the submission-order absorb loop merges them, so
   the built report is byte-identical at any job count. *)

module Health = Monitor.Health

type observation = {
  id : string;
  pec_max : int;
  pec_min : int;
  rber_worst : float;
  tolerable_rber : float;
  retries : int;
  escalations : int;
  reclaims : int;
  host_writes : int;
  alive : bool;
}

let retry_rate obs =
  if obs.host_writes <= 0 then 0.
  else float_of_int obs.retries /. float_of_int obs.host_writes

let grade thresholds obs =
  if not obs.alive then Health.Retired
  else if obs.tolerable_rber > 0. && obs.rber_worst >= obs.tolerable_rber then
    Health.Failing
  else if
    float_of_int obs.pec_max >= thresholds.Health.target_pec
    || retry_rate obs >= thresholds.Health.retry_rate_degraded
  then Health.Degraded
  else Health.Healthy

(* Worst-first ordering key: grade severity dominates, wear breaks ties
   within a grade.  The brute-force test scans with the same key. *)
let score thresholds obs =
  (float_of_int (Health.grade_rank (grade thresholds obs)) *. 1e6)
  +. float_of_int obs.pec_max

module Acc = struct
  type t = {
    top_k : int;
    thresholds : Health.thresholds;
    pec : Digest.t;
    spread : Digest.t;
    rber : Digest.t;
    retry : Digest.t;
    mutable devices : int;
    mutable pec_sum : float;
    mutable pec_sumsq : float;
    grades : int array; (* indexed by Health.grade_rank *)
    mutable retries : int;
    mutable escalations : int;
    mutable reclaims : int;
    mutable host_writes : int;
    worst : observation Topk.Topk.t;
  }

  let create ?(top_k = 10) ?(thresholds = Health.default_thresholds) () =
    {
      top_k;
      thresholds;
      pec = Digest.create ();
      spread = Digest.create ();
      rber = Digest.create ();
      retry = Digest.create ();
      devices = 0;
      pec_sum = 0.;
      pec_sumsq = 0.;
      grades = Array.make 4 0;
      retries = 0;
      escalations = 0;
      reclaims = 0;
      host_writes = 0;
      worst = Topk.Topk.create ~k:top_k ();
    }

  let sub t = create ~top_k:t.top_k ~thresholds:t.thresholds ()

  let observe t obs =
    t.devices <- t.devices + 1;
    let pec = float_of_int obs.pec_max in
    Digest.add t.pec pec;
    Digest.add t.spread (float_of_int (obs.pec_max - obs.pec_min));
    Digest.add t.rber obs.rber_worst;
    Digest.add t.retry (retry_rate obs);
    t.pec_sum <- t.pec_sum +. pec;
    t.pec_sumsq <- t.pec_sumsq +. (pec *. pec);
    let g = Health.grade_rank (grade t.thresholds obs) in
    t.grades.(g) <- t.grades.(g) + 1;
    t.retries <- t.retries + obs.retries;
    t.escalations <- t.escalations + obs.escalations;
    t.reclaims <- t.reclaims + obs.reclaims;
    t.host_writes <- t.host_writes + obs.host_writes;
    Topk.Topk.offer t.worst ~id:obs.id ~score:(score t.thresholds obs) obs

  let merge ~into src =
    into.devices <- into.devices + src.devices;
    Digest.merge ~into:into.pec src.pec;
    Digest.merge ~into:into.spread src.spread;
    Digest.merge ~into:into.rber src.rber;
    Digest.merge ~into:into.retry src.retry;
    into.pec_sum <- into.pec_sum +. src.pec_sum;
    into.pec_sumsq <- into.pec_sumsq +. src.pec_sumsq;
    Array.iteri (fun i n -> into.grades.(i) <- into.grades.(i) + n) src.grades;
    into.retries <- into.retries + src.retries;
    into.escalations <- into.escalations + src.escalations;
    into.reclaims <- into.reclaims + src.reclaims;
    into.host_writes <- into.host_writes + src.host_writes;
    Topk.Topk.merge ~into:into.worst src.worst

  let devices t = t.devices
end

(* Gini coefficient of the wear distribution from the compressed
   centroids: G = sum_ij w_i w_j |x_i - x_j| / (2 W^2 mean).  O(K^2)
   over at most [budget] centroids — independent of fleet size. *)
let gini_of_digest d =
  let cs = Digest.centroids d in
  let w_total = Digest.total_weight d and mu = Digest.mean d in
  if Array.length cs = 0 || w_total <= 0. || Float.is_nan mu || mu <= 0. then 0.
  else begin
    let acc = ref 0. in
    Array.iter
      (fun (xi, wi) ->
        Array.iter
          (fun (xj, wj) -> acc := !acc +. (wi *. wj *. Float.abs (xi -. xj)))
          cs)
      cs;
    !acc /. (2. *. w_total *. w_total *. mu)
  end

type stats = {
  mean : float;
  smin : float;
  smax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

let stats_of_digest d =
  {
    mean = Digest.mean d;
    smin = Digest.min d;
    smax = Digest.max d;
    p50 = Digest.quantile d 0.5;
    p90 = Digest.quantile d 0.9;
    p99 = Digest.quantile d 0.99;
  }

type t = {
  epoch : string;
  devices : int;
  grades : int array;
  pec : stats;
  spread : stats;
  rber : stats;
  retry : stats;
  cv : float;
  gini : float;
  fleet_retry_rate : float;
  fleet_escalation_rate : float;
  retries : int;
  escalations : int;
  reclaims : int;
  host_writes : int;
  worst : (observation * Health.grade) list;
}

let build ~epoch (acc : Acc.t) =
  let n = float_of_int acc.Acc.devices in
  let mean = if n > 0. then acc.Acc.pec_sum /. n else 0. in
  let var =
    if n > 0. then Float.max 0. ((acc.Acc.pec_sumsq /. n) -. (mean *. mean))
    else 0.
  in
  let cv = if mean > 0. then sqrt var /. mean else 0. in
  let per_write total =
    if acc.Acc.host_writes <= 0 then 0.
    else float_of_int total /. float_of_int acc.Acc.host_writes
  in
  {
    epoch;
    devices = acc.Acc.devices;
    grades = Array.copy acc.Acc.grades;
    pec = stats_of_digest acc.Acc.pec;
    spread = stats_of_digest acc.Acc.spread;
    rber = stats_of_digest acc.Acc.rber;
    retry = stats_of_digest acc.Acc.retry;
    cv;
    gini = gini_of_digest acc.Acc.pec;
    fleet_retry_rate = per_write acc.Acc.retries;
    fleet_escalation_rate = per_write acc.Acc.escalations;
    retries = acc.Acc.retries;
    escalations = acc.Acc.escalations;
    reclaims = acc.Acc.reclaims;
    host_writes = acc.Acc.host_writes;
    worst =
      List.map
        (fun (_, _, obs) -> (obs, grade acc.Acc.thresholds obs))
        (Topk.Topk.to_list acc.Acc.worst);
  }

let grade_count t g = t.grades.(Health.grade_rank g)

let f6 v = Printf.sprintf "%.6g" v
let fnan v = if Float.is_nan v then "-" else f6 v

let pp fmt t =
  Format.fprintf fmt "fleet report (epoch=%s, devices=%d)@." t.epoch t.devices;
  Format.fprintf fmt
    "  grades : healthy %d  degraded %d  failing %d  retired %d@."
    (grade_count t Health.Healthy)
    (grade_count t Health.Degraded)
    (grade_count t Health.Failing)
    (grade_count t Health.Retired);
  let pp_stats label (s : stats) =
    Format.fprintf fmt
      "  %s: mean %s  min %s  max %s  p50 %s  p90 %s  p99 %s@." label
      (fnan s.mean) (fnan s.smin) (fnan s.smax) (fnan s.p50) (fnan s.p90)
      (fnan s.p99)
  in
  pp_stats "pec    " t.pec;
  pp_stats "spread " t.spread;
  pp_stats "rber   " t.rber;
  pp_stats "retry/w" t.retry;
  Format.fprintf fmt "  balance: cv %s  gini %s@." (f6 t.cv) (f6 t.gini);
  Format.fprintf fmt
    "  totals : retries %d (%s/w)  escalations %d (%s/w)  reclaims %d  \
     host-writes %d@."
    t.retries (f6 t.fleet_retry_rate) t.escalations
    (f6 t.fleet_escalation_rate) t.reclaims t.host_writes;
  if t.worst <> [] then begin
    Format.fprintf fmt "  worst devices:@.";
    List.iteri
      (fun i (obs, g) ->
        Format.fprintf fmt
          "    %2d. %-24s %-8s pec %d/%d  rber %s (tol %s)  retries %d  esc \
           %d%s@."
          (i + 1) obs.id (Health.grade_label g) obs.pec_max obs.pec_min
          (f6 obs.rber_worst) (f6 obs.tolerable_rber) obs.retries
          obs.escalations
          (if obs.alive then "" else "  dead"))
      t.worst
  end

let json_escape s =
  let buf = Buffer.create (String.length s + 8) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.contents buf

let jf v = if Float.is_nan v then "null" else Printf.sprintf "%.17g" v

let jstats label (s : stats) =
  Printf.sprintf
    "\"%s_mean\":%s,\"%s_min\":%s,\"%s_max\":%s,\"%s_p50\":%s,\"%s_p90\":%s,\"%s_p99\":%s"
    label (jf s.mean) label (jf s.smin) label (jf s.smax) label (jf s.p50)
    label (jf s.p90) label (jf s.p99)

let to_jsonl t =
  let buf = Buffer.create 1024 in
  Buffer.add_string buf
    (Printf.sprintf
       "{\"record\":\"fleet\",\"epoch\":\"%s\",\"devices\":%d,\"healthy\":%d,\"degraded\":%d,\"failing\":%d,\"retired\":%d,%s,%s,%s,%s,\"cv\":%s,\"gini\":%s,\"retries\":%d,\"escalations\":%d,\"reclaims\":%d,\"host_writes\":%d,\"retry_rate\":%s,\"escalation_rate\":%s}\n"
       (json_escape t.epoch) t.devices
       (grade_count t Health.Healthy)
       (grade_count t Health.Degraded)
       (grade_count t Health.Failing)
       (grade_count t Health.Retired)
       (jstats "pec" t.pec) (jstats "spread" t.spread) (jstats "rber" t.rber)
       (jstats "retry" t.retry) (jf t.cv) (jf t.gini) t.retries t.escalations
       t.reclaims t.host_writes (jf t.fleet_retry_rate)
       (jf t.fleet_escalation_rate));
  List.iteri
    (fun i (obs, g) ->
      Buffer.add_string buf
        (Printf.sprintf
           "{\"record\":\"device\",\"rank\":%d,\"id\":\"%s\",\"grade\":\"%s\",\"pec_max\":%d,\"pec_min\":%d,\"rber_worst\":%s,\"tolerable_rber\":%s,\"retries\":%d,\"escalations\":%d,\"reclaims\":%d,\"host_writes\":%d,\"alive\":%b}\n"
           (i + 1) (json_escape obs.id)
           (Health.grade_label g)
           obs.pec_max obs.pec_min (jf obs.rber_worst) (jf obs.tolerable_rber)
           obs.retries obs.escalations obs.reclaims obs.host_writes obs.alive))
    t.worst;
  Buffer.contents buf
