(* Merging quantile digest with a fixed centroid budget (the t-digest
   merging variant).  Observations append into the centroid arrays; when
   the buffer fills, [compress] sorts the centroids by mean and greedily
   fuses neighbours under the k1-style size limit
   [4 * total * q * (1-q) / budget], which keeps clusters tiny near both
   tails — where rank error matters — and lets them grow toward the
   median.  Everything is plain sequential float arithmetic: the same
   observations in the same order always produce the same centroids, so
   per-chunk digests merged in submission order give byte-identical
   reports at any job count (the Lathist discipline, without Lathist's
   fixed value range). *)

type t = {
  budget : int;
  mutable means : float array;
  mutable weights : float array;
  mutable n : int; (* live centroids in [0, n) *)
  mutable sorted : bool; (* [0, n) is compressed (sorted, within budget) *)
  mutable total : float; (* sum of weights *)
  mutable items : int; (* observations (unweighted count) *)
  mutable sum : float; (* weighted sum of values *)
  mutable vmin : float;
  mutable vmax : float;
}

let create ?(budget = 64) () =
  if budget < 8 then invalid_arg "Digest.create: budget must be >= 8";
  let capacity = 4 * budget in
  {
    budget;
    means = Array.make capacity 0.;
    weights = Array.make capacity 0.;
    n = 0;
    sorted = true;
    total = 0.;
    items = 0;
    sum = 0.;
    vmin = infinity;
    vmax = neg_infinity;
  }

let budget t = t.budget
let count t = t.items
let total_weight t = t.total
let sum t = t.sum
let mean t = if t.total = 0. then nan else t.sum /. t.total
let min t = if t.n = 0 then nan else t.vmin
let max t = if t.n = 0 then nan else t.vmax

let compress t =
  if not t.sorted && t.n > 0 then begin
    (* Stable sort keeps equal means in insertion order; fusing equal
       means in any order yields the same centroid, so the output is a
       pure function of the observation sequence. *)
    let idx = Array.init t.n Fun.id in
    Array.stable_sort
      (fun a b -> Float.compare t.means.(a) t.means.(b))
      idx;
    let ms = Array.map (fun i -> t.means.(i)) idx in
    let ws = Array.map (fun i -> t.weights.(i)) idx in
    let out = ref 0 in
    let cur_m = ref ms.(0) and cur_w = ref ws.(0) in
    let w_before = ref 0. in
    let flush () =
      t.means.(!out) <- !cur_m;
      t.weights.(!out) <- !cur_w;
      incr out;
      w_before := !w_before +. !cur_w
    in
    for i = 1 to t.n - 1 do
      let q = (!w_before +. (!cur_w /. 2.)) /. t.total in
      let limit =
        4. *. t.total *. q *. (1. -. q) /. float_of_int t.budget
      in
      if !cur_w +. ws.(i) <= Float.max 1. limit then begin
        let w = !cur_w +. ws.(i) in
        cur_m := !cur_m +. (ws.(i) /. w *. (ms.(i) -. !cur_m));
        cur_w := w
      end
      else begin
        flush ();
        cur_m := ms.(i);
        cur_w := ws.(i)
      end
    done;
    flush ();
    t.n <- !out;
    t.sorted <- true
  end

let add_weighted t v ~w =
  if w <= 0. then invalid_arg "Digest.add_weighted: weight must be positive";
  if t.n = Array.length t.means then compress t;
  (* A pathological stream could keep the buffer full even after a
     compress; growing the arrays preserves correctness (the budget
     bounds the *compressed* size, the buffer is just slack). *)
  if t.n = Array.length t.means then begin
    let capacity = 2 * Array.length t.means in
    let grow a = Array.append a (Array.make (capacity - Array.length a) 0.) in
    t.means <- grow t.means;
    t.weights <- grow t.weights
  end;
  t.means.(t.n) <- v;
  t.weights.(t.n) <- w;
  t.n <- t.n + 1;
  t.sorted <- false;
  t.total <- t.total +. w;
  t.sum <- t.sum +. (v *. w);
  if v < t.vmin then t.vmin <- v;
  if v > t.vmax then t.vmax <- v

let add t v =
  add_weighted t v ~w:1.;
  t.items <- t.items + 1

let observe = add

let quantile t q =
  if t.n = 0 then nan
  else begin
    let q = Float.min 1. (Float.max 0. q) in
    compress t;
    if t.n = 1 then t.means.(0)
    else begin
      let target = q *. t.total in
      (* Each centroid sits at the midpoint of the weight span it owns;
         interpolate linearly between adjacent midpoints and clamp the
         extremes to the exact observed min/max. *)
      let rec walk i cum =
        let mid = cum +. (t.weights.(i) /. 2.) in
        if target <= mid || i = t.n - 1 then
          if i = 0 && target <= mid then
            if t.weights.(0) /. 2. <= 0. then t.means.(0)
            else
              let f = target /. mid in
              t.vmin +. (f *. (t.means.(0) -. t.vmin))
          else if i = t.n - 1 && target > mid then
            let span = t.total -. mid in
            if span <= 0. then t.means.(i)
            else
              let f = (target -. mid) /. span in
              t.means.(i) +. (f *. (t.vmax -. t.means.(i)))
          else begin
            let prev_mid = cum -. (t.weights.(i - 1) /. 2.) in
            let span = mid -. prev_mid in
            if span <= 0. then t.means.(i)
            else
              let f = (target -. prev_mid) /. span in
              t.means.(i - 1) +. (f *. (t.means.(i) -. t.means.(i - 1)))
          end
        else walk (i + 1) (cum +. t.weights.(i))
      in
      let v = walk 0 0. in
      Float.min t.vmax (Float.max t.vmin v)
    end
  end

let centroids t =
  compress t;
  Array.init t.n (fun i -> (t.means.(i), t.weights.(i)))

let merge ~into src =
  if src.n > 0 then begin
    compress src;
    for i = 0 to src.n - 1 do
      add_weighted into src.means.(i) ~w:src.weights.(i)
    done;
    into.items <- into.items + src.items;
    compress into
  end
