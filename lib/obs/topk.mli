(** Bounded top-K trackers: exact worst-subject selection and
    space-saving heavy hitters, both in O(K) memory with deterministic
    ordering and submission-order merges. *)

module Topk : sig
  type 'a t

  val create : k:int -> unit -> 'a t
  val k : 'a t -> int

  val offer : 'a t -> id:string -> score:float -> 'a -> unit
  (** Consider one subject.  Kept iff it ranks in the current top [k]
      (score descending, ties broken by natural id order — ["dev-2"]
      before ["dev-10"]). *)

  val merge : into:'a t -> 'a t -> unit
  (** Offer every retained entry of the source to [into].  When each
      subject is offered exactly once fleet-wide (one observation per
      device), the merged top K is exactly the global top K. *)

  val to_list : 'a t -> (string * float * 'a) list
  (** Retained entries, best first. *)
end

module Counts : sig
  (** Space-saving frequency sketch over a stream of subject ids. *)

  type t

  val create : k:int -> unit -> t
  val k : t -> int

  val observed : t -> int
  (** Total stream weight seen (kept exactly). *)

  val add : ?by:int -> t -> string -> unit
  (** Count one occurrence ([by] >= 1).  A subject not currently
      tracked evicts the smallest slot and inherits its count as
      over-estimation error. *)

  val to_list : t -> (string * int * int) list
  (** [(id, estimate, error)] sorted by estimate descending (ties by
      natural id order); [estimate - error <= true count <= estimate],
      and any subject with true count above [observed / k] is
      guaranteed present. *)

  val merge : into:t -> t -> unit
end
