type t = int

let none = 0
let gc = 1
let relocation = 2
let retry = 4
let escalation = 8
let scrub = 16
let qos_throttle = 32
let width = 6

let names =
  [| "gc"; "relocation"; "retry"; "escalation"; "scrub"; "qos-throttle" |]

let name_of_bit i =
  if i < 0 || i >= width then invalid_arg "Cause.name_of_bit" else names.(i)

let union = ( lor )
let mem set cause = set land cause <> 0

let to_string set =
  if set = none then "none"
  else begin
    let parts = ref [] in
    for i = width - 1 downto 0 do
      if set land (1 lsl i) <> 0 then parts := names.(i) :: !parts
    done;
    String.concat "+" !parts
  end

let of_flags ~gc:g ~relocation:rel ~retry:rt ~escalation:esc ~scrub:sc
    ~qos_throttle:qt =
  (if g then gc else 0)
  lor (if rel then relocation else 0)
  lor (if rt then retry else 0)
  lor (if esc then escalation else 0)
  lor (if sc then scrub else 0)
  lor if qt then qos_throttle else 0
