(* Bounded top-K trackers for fleet-scale streams.

   [Topk] keeps the K highest-scoring subjects seen so far.  Each chunk
   keeps its own tracker over its devices; because every device is
   offered exactly once, the global top K is always contained in the
   union of per-chunk top Ks, so the merged result is *exact*, not an
   approximation — the brute-force worst-device scan, in O(K) memory.

   [Counts] is the space-saving heavy-hitter sketch (Metwally et al.):
   K counter slots; a new subject evicts the smallest counter and
   inherits its value as over-estimation error.  Any subject with true
   frequency above total/K is guaranteed present, and
   [estimate - error <= true <= estimate].  The replayer feeds it one
   cause-set string per tagged op to report the dominant cause mixes
   without a per-mix table.

   Both structures order deterministically (score/count descending,
   then natural id order) and merge in submission order. *)

let id_compare = Monitor.Health.natural_compare

module Topk = struct
  type 'a entry = { id : string; score : float; payload : 'a }

  type 'a t = {
    k : int;
    mutable entries : 'a entry list; (* sorted: score desc, id asc *)
    mutable size : int;
  }

  let create ~k () =
    if k < 1 then invalid_arg "Topk.create: k must be >= 1";
    { k; entries = []; size = 0 }

  let k t = t.k

  let better a b =
    match Float.compare a.score b.score with
    | 0 -> id_compare a.id b.id < 0
    | c -> c > 0

  let offer t ~id ~score payload =
    let entry = { id; score; payload } in
    let rec insert = function
      | [] -> [ entry ]
      | e :: rest -> if better entry e then entry :: e :: rest else e :: insert rest
    in
    if t.size < t.k then begin
      t.entries <- insert t.entries;
      t.size <- t.size + 1
    end
    else
      match List.rev t.entries with
      | worst :: _ when better entry worst ->
          let rec drop_last = function
            | [] | [ _ ] -> []
            | e :: rest -> e :: drop_last rest
          in
          t.entries <- insert (drop_last t.entries)
      | _ -> ()

  let merge ~into src =
    List.iter
      (fun e -> offer into ~id:e.id ~score:e.score e.payload)
      src.entries

  let to_list t = List.map (fun e -> (e.id, e.score, e.payload)) t.entries
end

module Counts = struct
  type slot = { id : string; mutable count : int; mutable error : int }

  type t = {
    k : int;
    table : (string, slot) Hashtbl.t;
    mutable observed : int; (* total stream weight *)
  }

  let create ~k () =
    if k < 1 then invalid_arg "Counts.create: k must be >= 1";
    { k; table = Hashtbl.create (2 * k); observed = 0 }

  let k t = t.k
  let observed t = t.observed

  (* Deterministic victim: smallest count, ties by natural id order. *)
  let victim t =
    Hashtbl.fold
      (fun _ slot acc ->
        match acc with
        | None -> Some slot
        | Some best ->
            if
              slot.count < best.count
              || (slot.count = best.count && id_compare slot.id best.id < 0)
            then Some slot
            else acc)
      t.table None

  let add ?(by = 1) t id =
    if by < 1 then invalid_arg "Counts.add: by must be >= 1";
    t.observed <- t.observed + by;
    match Hashtbl.find_opt t.table id with
    | Some slot -> slot.count <- slot.count + by
    | None ->
        if Hashtbl.length t.table < t.k then
          Hashtbl.replace t.table id { id; count = by; error = 0 }
        else begin
          match victim t with
          | None -> ()
          | Some v ->
              Hashtbl.remove t.table v.id;
              Hashtbl.replace t.table id
                { id; count = v.count + by; error = v.count }
        end

  let to_list t =
    Hashtbl.fold (fun _ s acc -> (s.id, s.count, s.error) :: acc) t.table []
    |> List.sort (fun (ia, ca, _) (ib, cb, _) ->
           match compare cb ca with 0 -> id_compare ia ib | c -> c)

  let merge ~into src =
    List.iter (fun (id, count, _) -> add ~by:count into id) (to_list src)
end
