(** Root-cause bitsets for tail-latency attribution.

    Each op the traffic replayer completes is tagged with the set of
    background activities that billed time into its latency: garbage
    collection, relocation, the read-retry ladder, live-repair
    escalation, the read-reclaim scrub, and QoS throttling.  A bitset
    (rather than a single cause) because one slow op routinely pays for
    several at once — a GC pass that also relocated pages, a retry that
    escalated.  The set fits the tag channel of
    {!Traffic.Lathist.observe_tagged} ([width] <= its tag width). *)

type t = int
(** A union of cause bits; [none] = untagged. *)

val none : t
val gc : t
val relocation : t
val retry : t
val escalation : t
val scrub : t
val qos_throttle : t

val width : int
(** Number of defined cause bits (bits [0 .. width-1]). *)

val name_of_bit : int -> string
(** Name of bit position [i] in [0, width). *)

val union : t -> t -> t
val mem : t -> t -> bool
(** [mem set cause] is true when [set] contains [cause]. *)

val to_string : t -> string
(** ["gc+retry"]-style rendering in bit order; ["none"] when empty. *)

val of_flags :
  gc:bool ->
  relocation:bool ->
  retry:bool ->
  escalation:bool ->
  scrub:bool ->
  qos_throttle:bool ->
  t
