(** Fleet-wide wear-imbalance analytics in O(K) memory.

    Every device in a run contributes one {!observation}; per-chunk
    {!Acc}s are merged in submission order, so the built report is
    byte-identical at any job count.  The report carries wear/RBER/rate
    quantiles (from {!Digest}), the coefficient of variation and Gini
    coefficient of the P/E-cycle distribution (the wear-imbalance
    signals), per-grade device counts, and an {e exact} top-K of the
    worst devices (union of per-chunk top-Ks, each device observed
    once). *)

type observation = {
  id : string;  (** fleet-unique subject id, e.g. ["salamander-1742"] *)
  pec_max : int;  (** worst block's P/E count *)
  pec_min : int;  (** best block's P/E count *)
  rber_worst : float;  (** worst pure-wear RBER across the device *)
  tolerable_rber : float;  (** strongest available code's tolerance *)
  retries : int;  (** read-retry ladder invocations *)
  escalations : int;  (** retries escalated past the ladder *)
  reclaims : int;  (** read-reclaim scrubs *)
  host_writes : int;  (** host ops served (rate denominator) *)
  alive : bool;
}

val grade : Monitor.Health.thresholds -> observation -> Monitor.Health.grade
(** [Retired] when not alive; [Failing] when the worst RBER is at or
    above tolerance; [Degraded] past target P/E cycles or above the
    retry-rate threshold; [Healthy] otherwise. *)

val score : Monitor.Health.thresholds -> observation -> float
(** Worst-first ranking key: grade severity dominates, P/E count breaks
    ties.  Exposed so tests can brute-force the same ordering. *)

module Acc : sig
  type t

  val create :
    ?top_k:int -> ?thresholds:Monitor.Health.thresholds -> unit -> t
  (** [top_k] defaults to 10. *)

  val sub : t -> t
  (** Fresh empty accumulator with the same parameters — per-chunk
      scratch state, later folded back with {!merge}. *)

  val observe : t -> observation -> unit
  val merge : into:t -> t -> unit
  val devices : t -> int
end

type stats = {
  mean : float;
  smin : float;
  smax : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type t = {
  epoch : string;  (** what one run covered, e.g. ["150d"] *)
  devices : int;
  grades : int array;  (** indexed by {!Monitor.Health.grade_rank} *)
  pec : stats;  (** per-device worst-block P/E count *)
  spread : stats;  (** per-device P/E max-min spread *)
  rber : stats;  (** per-device worst RBER *)
  retry : stats;  (** per-device retries per host write *)
  cv : float;  (** coefficient of variation of pec (exact) *)
  gini : float;  (** Gini coefficient of pec (from centroids) *)
  fleet_retry_rate : float;
  fleet_escalation_rate : float;
  retries : int;
  escalations : int;
  reclaims : int;
  host_writes : int;
  worst : (observation * Monitor.Health.grade) list;  (** worst first *)
}

val build : epoch:string -> Acc.t -> t
val grade_count : t -> Monitor.Health.grade -> int

val pp : Format.formatter -> t -> unit
(** Human-readable report table. *)

val to_jsonl : t -> string
(** One ["fleet"] summary record, then one ["device"] record per
    worst-device entry, newline-terminated. *)
