(** Labeled metric registry: the measurement substrate of the stack.

    Every layer (flash chip, ECC, FTL, Salamander core, diFS) registers
    counters, gauges and histograms against a registry at component
    creation time — the registry is threaded explicitly through every
    component constructor's [?registry] argument — and updates them on
    its hot paths.  Two registries exist: live ones created with
    {!create}, whose metrics record, and the shared {!null} registry
    whose metrics are inert dummies — an update to a null metric is a
    single predictable branch, so fully instrumented code paths cost
    nothing measurable when telemetry is off (see the [overhead]
    benchmark in [bench/main.ml]).

    Live registries come in two flavours.  Shared registries (the
    {!create} default) are domain-safe: counters and gauges are atomics,
    histograms take a per-metric mutex, and registration itself is
    serialized, so components built and driven on [Parallel.Pool]
    workers may share one registry.  Unshared registries
    ([create ~shared:false ()]) back every metric with a plain
    unsynchronized ref — the fast path for chunk-local accumulators
    that one domain owns at a time and the barrier reduces with
    {!merge}; updating an unshared metric from two domains at once is a
    data race and on the caller.

    Metrics are identified by a [(name, labels)] pair.  Registering the
    same pair twice returns the same handle (so independent components
    may share an aggregate counter); registering the same name with a
    different metric kind raises. *)

(** Canonicalized label sets: key/value pairs, sorted by key. *)
module Labels : sig
  type t = (string * string) list

  val v : (string * string) list -> t
  (** Sort by key.  Values may contain any bytes (exporters escape per
      format).  @raise Invalid_argument on duplicate keys or on keys
      containing ['"'], ['\n'] or ['=']. *)

  val to_string : t -> string
  (** [k1=v1,k2=v2] — the canonical identity used for uniqueness.
      Injective: ['\\'], [','], ['='] and newlines in keys or values
      are rendered as ["\\\\"], ["\\,"], ["\\="] and ["\\n"], so
      distinct label sets never collide. *)
end

(** Monotonic integer counter. *)
module Counter : sig
  type t

  val incr : ?by:int -> t -> unit
  (** No-op on an inactive (null-registry) counter.
      @raise Invalid_argument if [by] is negative. *)

  val value : t -> int

  val is_active : t -> bool
  (** [false] for null-registry metrics: call sites guarding expensive
      instrumentation (e.g. sampling a binomial error count) should skip
      it when inactive. *)
end

(** Instantaneous float value. *)
module Gauge : sig
  type t

  val set : t -> float -> unit
  val add : t -> float -> unit
  val value : t -> float
  val is_active : t -> bool
end

(** Bucketed distribution with percentile queries, backed by
    {!Sim.Stats.Histogram} plus a {!Sim.Stats.Online} accumulator for
    exact count/mean/min/max. *)
module Histogram : sig
  type t

  val observe : t -> float -> unit
  val count : t -> int
  val mean : t -> float
  (** [nan] when empty. *)

  val percentile : t -> float -> float
  (** Bucket-midpoint approximation; [nan] when empty. *)

  val min : t -> float
  val max : t -> float
  val is_active : t -> bool
end

type t
(** A metric registry. *)

val create : ?shared:bool -> unit -> t
(** [create ()] builds a shared (domain-safe) registry;
    [create ~shared:false ()] builds an unshared one whose metrics are
    plain refs — single-domain-owned accumulators only. *)

val is_shared : t -> bool
(** [true] for {!null} and for registries created without
    [~shared:false]. *)

val null : t
(** The inert registry: all metrics obtained from it are inactive and
    shared; [snapshot null] is always empty. *)

val is_null : t -> bool

(** {2 Registration} *)

val counter : t -> ?help:string -> ?labels:(string * string) list -> string -> Counter.t
val gauge : t -> ?help:string -> ?labels:(string * string) list -> string -> Gauge.t

val histogram :
  t ->
  ?help:string ->
  ?labels:(string * string) list ->
  ?buckets:int ->
  lo:float ->
  hi:float ->
  string ->
  Histogram.t
(** Linear buckets over \[lo, hi); out-of-range observations clamp to the
    edge buckets (see {!Sim.Stats.Histogram}).  Default 128 buckets. *)

(** {2 Snapshots} *)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

type value = Counter of int | Gauge of float | Histogram of summary

type sample = {
  name : string;
  labels : Labels.t;
  help : string;
  value : value;
}

val snapshot : t -> sample list
(** Every registered metric, sorted by [(name, labels)] — deterministic
    for a given set of registrations regardless of registration order. *)

val merge : into:t -> t -> unit
(** [merge ~into src] reduces [src]'s metrics into [into]: counters add,
    histograms combine bucket-by-bucket (via [Sim.Stats] merges, exact
    for count/mean/min/max), and gauges adopt the source value — callers
    merge per-domain registries in submission order, so the result is
    deterministic and equal to what a sequential run against a single
    registry would have produced.  Metrics missing from [into] are
    registered on the fly.  A no-op when either side is {!null}.
    @raise Invalid_argument on a metric-kind or bucket-layout clash.

    {2 Removed: the process-default registry}

    The deprecated [default] / [set_default] / [with_default] shim —
    the old implicit process-global wiring — was deleted on the
    timeline its deprecation notice announced (last in-tree readers
    removed in v0.3, shim deleted in v0.4).  Out-of-tree callers must
    pass registries explicitly through each component constructor's
    [?registry] argument; constructors fall back to {!null} when none
    is given. *)
