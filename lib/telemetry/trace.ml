let src = Logs.Src.create "salamander" ~doc:"Salamander telemetry"

module Log = (val Logs.src_log src : Logs.LOG)

let set_level level =
  Logs.set_level level;
  Logs.Src.set_level src level

let level_of_verbosity = function
  | n when n <= 0 -> None
  | 1 -> Some Logs.Warning
  | 2 -> Some Logs.Info
  | _ -> Some Logs.Debug

let clock = ref Sys.time
let set_clock f = clock := f

(* --- structured span sink ------------------------------------------------- *)

module Sink = struct
  type span = {
    id : int;
    parent : int option;
    name : string;
    args : (string * string) list;
    start : int;
    finish : int;
  }

  (* Internal node: [finish] stays -1 while the span is open. *)
  type node = {
    node_id : int;
    node_parent : int option;
    node_name : string;
    node_args : (string * string) list;
    node_start : int;
    mutable node_finish : int;
  }

  type t = {
    mutable next_id : int;
    mutable ticks : int;
    mutable stack : node list;
    mutable nodes_rev : node list;
    mutable instants_rev : (int * string * (string * string) list) list;
  }

  let create () =
    { next_id = 1; ticks = 0; stack = []; nodes_rev = []; instants_rev = [] }

  let tick t =
    t.ticks <- t.ticks + 1;
    t.ticks

  let clock t = t.ticks

  let enter t ?(args = []) name =
    let node =
      {
        node_id = t.next_id;
        node_parent =
          (match t.stack with [] -> None | n :: _ -> Some n.node_id);
        node_name = name;
        node_args = args;
        node_start = tick t;
        node_finish = -1;
      }
    in
    t.next_id <- t.next_id + 1;
    t.stack <- node :: t.stack;
    t.nodes_rev <- node :: t.nodes_rev;
    node.node_id

  let exit t =
    match t.stack with
    | [] -> ()
    | n :: rest ->
        t.stack <- rest;
        n.node_finish <- tick t

  let instant t name fields =
    t.instants_rev <- (tick t, name, fields) :: t.instants_rev

  let current t =
    match t.stack with [] -> None | n :: _ -> Some n.node_id

  let span_count t = t.next_id - 1

  let spans t =
    List.rev_map
      (fun n ->
        {
          id = n.node_id;
          parent = n.node_parent;
          name = n.node_name;
          args = n.node_args;
          start = n.node_start;
          finish = (if n.node_finish < 0 then t.ticks else n.node_finish);
        })
      t.nodes_rev

  let instants t = List.rev t.instants_rev

  let merge ~into ?parent src =
    let id_off = into.next_id - 1 in
    let t_off = into.ticks in
    let remap n =
      {
        node_id = n.node_id + id_off;
        node_parent =
          (match n.node_parent with
          | Some p -> Some (p + id_off)
          | None -> parent);
        node_name = n.node_name;
        node_args = n.node_args;
        node_start = n.node_start + t_off;
        node_finish =
          (if n.node_finish < 0 then src.ticks + t_off
           else n.node_finish + t_off);
      }
    in
    into.nodes_rev <-
      List.rev_append (List.rev_map remap src.nodes_rev) into.nodes_rev;
    into.instants_rev <-
      List.rev_append
        (List.rev_map
           (fun (t0, name, fields) -> (t0 + t_off, name, fields))
           src.instants_rev)
        into.instants_rev;
    into.next_id <- into.next_id + src.next_id - 1;
    into.ticks <- into.ticks + src.ticks
end

(* --- spans and events ------------------------------------------------------ *)

let span_histogram registry name =
  (* 0..1 s in 256 buckets of ~4 ms: coarse, but spans wrap whole
     experiment phases, not single flash ops. *)
  Registry.histogram registry ~labels:[ ("span", name) ]
    ~help:"Duration of traced spans" ~buckets:256 ~lo:0. ~hi:1_000_000.
    "span_duration_us"

let with_span ?(registry = Registry.null) ?sink ?(args = []) name f =
  let inert = Registry.is_null registry in
  let no_sink = match sink with None -> true | Some _ -> false in
  if inert && no_sink && Logs.Src.level src = None then f ()
  else begin
    let histogram = span_histogram registry name in
    (match sink with
    | Some s -> ignore (Sink.enter s ~args name)
    | None -> ());
    Log.debug (fun m -> m "span %s: enter" name);
    let started = !clock () in
    let finish () =
      let us = (!clock () -. started) *. 1e6 in
      Registry.Histogram.observe histogram us;
      (match sink with Some s -> Sink.exit s | None -> ());
      Log.debug (fun m -> m "span %s: exit (%.0f us)" name us)
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        finish ();
        raise e
  end

let event ?(registry = Registry.null) ?sink ?(level = Logs.Info) name fields =
  Registry.Counter.incr
    (Registry.counter registry
       ~labels:[ ("event", name) ]
       ~help:"Traced events" "events_total");
  (match sink with Some s -> Sink.instant s name fields | None -> ());
  Log.msg level (fun m ->
      m "%s%s" name
        (match fields with
        | [] -> ""
        | fields ->
            " "
            ^ String.concat " "
                (List.map (fun (k, v) -> k ^ "=" ^ v) fields)))
