let src = Logs.Src.create "salamander" ~doc:"Salamander telemetry"

module Log = (val Logs.src_log src : Logs.LOG)

let set_level level =
  Logs.set_level level;
  Logs.Src.set_level src level

let level_of_verbosity = function
  | n when n <= 0 -> None
  | 1 -> Some Logs.Warning
  | 2 -> Some Logs.Info
  | _ -> Some Logs.Debug

let clock = ref Sys.time
let set_clock f = clock := f

let span_histogram registry name =
  (* 0..1 s in 256 buckets of ~4 ms: coarse, but spans wrap whole
     experiment phases, not single flash ops. *)
  Registry.histogram registry ~labels:[ ("span", name) ]
    ~help:"Duration of traced spans" ~buckets:256 ~lo:0. ~hi:1_000_000.
    "span_duration_us"

let with_span ?(registry = Registry.null) name f =
  let inert = Registry.is_null registry in
  if inert && Logs.Src.level src = None then f ()
  else begin
    let histogram = span_histogram registry name in
    Log.debug (fun m -> m "span %s: enter" name);
    let started = !clock () in
    let finish () =
      let us = (!clock () -. started) *. 1e6 in
      Registry.Histogram.observe histogram us;
      Log.debug (fun m -> m "span %s: exit (%.0f us)" name us)
    in
    match f () with
    | result ->
        finish ();
        result
    | exception e ->
        finish ();
        raise e
  end

let event ?(registry = Registry.null) ?(level = Logs.Info) name fields =
  Registry.Counter.incr
    (Registry.counter registry
       ~labels:[ ("event", name) ]
       ~help:"Traced events" "events_total");
  Log.msg level (fun m ->
      m "%s%s" name
        (match fields with
        | [] -> ""
        | fields ->
            " "
            ^ String.concat " "
                (List.map (fun (k, v) -> k ^ "=" ^ v) fields)))
