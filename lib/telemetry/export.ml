open Registry

(* --- shared helpers ------------------------------------------------------ *)

let float_str x =
  if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.6g" x

(* --- console table ------------------------------------------------------- *)

let describe_value = function
  | Counter v -> string_of_int v
  | Gauge v -> float_str v
  | Histogram s ->
      if s.count = 0 then "count=0"
      else
        Printf.sprintf
          "count=%d mean=%s p50=%s p90=%s p95=%s p99=%s p999=%s max=%s"
          s.count (float_str s.mean) (float_str s.p50) (float_str s.p90)
          (float_str s.p95) (float_str s.p99) (float_str s.p999)
          (float_str s.max)

let metric_id sample =
  match sample.labels with
  | [] -> sample.name
  | labels -> sample.name ^ "{" ^ Labels.to_string labels ^ "}"

let pp_table ppf samples =
  match samples with
  | [] -> Format.fprintf ppf "  (no metrics registered)@."
  | _ ->
      let rows =
        List.map (fun s -> (metric_id s, describe_value s.value)) samples
      in
      let width =
        List.fold_left (fun w (id, _) -> Stdlib.max w (String.length id)) 0 rows
      in
      List.iter
        (fun (id, value) ->
          Format.fprintf ppf "  %-*s  %s@." width id value)
        rows

(* --- Prometheus text exposition ------------------------------------------ *)

let prom_float x =
  if Float.is_nan x then "NaN"
  else if x = infinity then "+Inf"
  else if x = neg_infinity then "-Inf"
  else float_str x

(* Prometheus label values escape exactly '\', '"' and newline — not
   OCaml's %S repertoire, whose \t / \xNN escapes a Prometheus scraper
   would read literally. *)
let prom_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '"' -> Buffer.add_string buffer "\\\""
      | '\n' -> Buffer.add_string buffer "\\n"
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let prom_labels labels =
  match labels with
  | [] -> ""
  | _ ->
      "{"
      ^ String.concat ","
          (List.map
             (fun (k, v) -> Printf.sprintf "%s=\"%s\"" k (prom_escape v))
             labels)
      ^ "}"

let to_prometheus samples =
  let buffer = Buffer.create 1024 in
  let headed = Hashtbl.create 16 in
  let header name help kind =
    if not (Hashtbl.mem headed name) then begin
      Hashtbl.add headed name ();
      if help <> "" then
        Buffer.add_string buffer (Printf.sprintf "# HELP %s %s\n" name help);
      Buffer.add_string buffer (Printf.sprintf "# TYPE %s %s\n" name kind)
    end
  in
  List.iter
    (fun s ->
      match s.value with
      | Counter v ->
          header s.name s.help "counter";
          Buffer.add_string buffer
            (Printf.sprintf "%s%s %d\n" s.name (prom_labels s.labels) v)
      | Gauge v ->
          header s.name s.help "gauge";
          Buffer.add_string buffer
            (Printf.sprintf "%s%s %s\n" s.name (prom_labels s.labels)
               (prom_float v))
      | Histogram sum ->
          header s.name s.help "summary";
          (* An empty histogram has no quantiles to report (they would
             all be NaN), and its sum is zero by definition — not the
             [mean * count = nan * 0] NaN the naive product yields. *)
          if sum.count > 0 then
            List.iter
              (fun (quantile, v) ->
                Buffer.add_string buffer
                  (Printf.sprintf "%s%s %s\n" s.name
                     (prom_labels
                        (Labels.v (("quantile", quantile) :: s.labels)))
                     (prom_float v)))
              [
                ("0.5", sum.p50); ("0.9", sum.p90); ("0.95", sum.p95);
                ("0.99", sum.p99); ("0.999", sum.p999);
              ];
          Buffer.add_string buffer
            (Printf.sprintf "%s_count%s %d\n" s.name (prom_labels s.labels)
               sum.count);
          let total =
            if sum.count = 0 then 0. else sum.mean *. float_of_int sum.count
          in
          Buffer.add_string buffer
            (Printf.sprintf "%s_sum%s %s\n" s.name (prom_labels s.labels)
               (prom_float total)))
    samples;
  Buffer.contents buffer

(* --- JSONL ---------------------------------------------------------------- *)

let json_escape s =
  let buffer = Buffer.create (String.length s + 2) in
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buffer "\\\""
      | '\\' -> Buffer.add_string buffer "\\\\"
      | '\n' -> Buffer.add_string buffer "\\n"
      | '\t' -> Buffer.add_string buffer "\\t"
      | c when Char.code c < 0x20 ->
          Buffer.add_string buffer (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buffer c)
    s;
  Buffer.contents buffer

let json_float x =
  if Float.is_nan x || Float.abs x = infinity then "null"
  else if Float.is_integer x && Float.abs x < 1e15 then
    Printf.sprintf "%.0f" x
  else Printf.sprintf "%.17g" x

let json_labels labels =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) ->
           Printf.sprintf "\"%s\":\"%s\"" (json_escape k) (json_escape v))
         labels)
  ^ "}"

let to_jsonl samples =
  let line s =
    let common =
      Printf.sprintf "\"name\":\"%s\",\"labels\":%s" (json_escape s.name)
        (json_labels s.labels)
    in
    match s.value with
    | Counter v ->
        Printf.sprintf "{%s,\"type\":\"counter\",\"value\":%d}" common v
    | Gauge v ->
        Printf.sprintf "{%s,\"type\":\"gauge\",\"value\":%s}" common
          (json_float v)
    | Histogram sum ->
        Printf.sprintf
          "{%s,\"type\":\"histogram\",\"count\":%d,\"mean\":%s,\"min\":%s,\
           \"max\":%s,\"p50\":%s,\"p90\":%s,\"p95\":%s,\"p99\":%s,\"p999\":%s}"
          common sum.count (json_float sum.mean) (json_float sum.min)
          (json_float sum.max) (json_float sum.p50) (json_float sum.p90)
          (json_float sum.p95) (json_float sum.p99) (json_float sum.p999)
  in
  String.concat "" (List.map (fun s -> line s ^ "\n") samples)

(* A minimal JSON value parser, sufficient for the flat objects emitted
   above (strings, numbers, null, one level of nested object for labels). *)
module Json = struct
  type value =
    | String of string
    | Number of float
    | Null
    | Object of (string * value) list

  type state = { text : string; mutable pos : int }

  let fail state msg =
    failwith (Printf.sprintf "jsonl parse error at %d: %s" state.pos msg)

  let peek state =
    if state.pos >= String.length state.text then '\000'
    else state.text.[state.pos]

  let advance state = state.pos <- state.pos + 1

  let skip_ws state =
    while
      match peek state with ' ' | '\t' | '\r' -> true | _ -> false
    do
      advance state
    done

  let expect state c =
    if peek state <> c then fail state (Printf.sprintf "expected %c" c);
    advance state

  let parse_string state =
    expect state '"';
    let buffer = Buffer.create 16 in
    let rec go () =
      match peek state with
      | '\000' -> fail state "unterminated string"
      | '"' -> advance state
      | '\\' ->
          advance state;
          (match peek state with
          | '"' -> Buffer.add_char buffer '"'
          | '\\' -> Buffer.add_char buffer '\\'
          | 'n' -> Buffer.add_char buffer '\n'
          | 't' -> Buffer.add_char buffer '\t'
          | 'u' ->
              if state.pos + 4 >= String.length state.text then
                fail state "bad \\u escape";
              let hex = String.sub state.text (state.pos + 1) 4 in
              Buffer.add_char buffer (Char.chr (int_of_string ("0x" ^ hex)));
              state.pos <- state.pos + 4
          | c -> fail state (Printf.sprintf "bad escape \\%c" c));
          advance state;
          go ()
      | c ->
          Buffer.add_char buffer c;
          advance state;
          go ()
    in
    go ();
    Buffer.contents buffer

  let parse_number state =
    let start = state.pos in
    while
      match peek state with
      | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
      | _ -> false
    do
      advance state
    done;
    if state.pos = start then fail state "expected number";
    float_of_string (String.sub state.text start (state.pos - start))

  let rec parse_value state =
    skip_ws state;
    match peek state with
    | '"' -> String (parse_string state)
    | '{' -> parse_object state
    | 'n' ->
        if
          state.pos + 4 <= String.length state.text
          && String.sub state.text state.pos 4 = "null"
        then begin
          state.pos <- state.pos + 4;
          Null
        end
        else fail state "expected null"
    | _ -> Number (parse_number state)

  and parse_object state =
    expect state '{';
    skip_ws state;
    if peek state = '}' then begin
      advance state;
      Object []
    end
    else begin
      let fields = ref [] in
      let rec go () =
        skip_ws state;
        let key = parse_string state in
        skip_ws state;
        expect state ':';
        let value = parse_value state in
        fields := (key, value) :: !fields;
        skip_ws state;
        match peek state with
        | ',' ->
            advance state;
            go ()
        | '}' -> advance state
        | _ -> fail state "expected ',' or '}'"
      in
      go ();
      Object (List.rev !fields)
    end

  let of_line line =
    let state = { text = line; pos = 0 } in
    let value = parse_object state in
    skip_ws state;
    if state.pos <> String.length line then fail state "trailing input";
    value
end

let of_jsonl text =
  let field fields name =
    match List.assoc_opt name fields with
    | Some v -> v
    | None -> failwith (Printf.sprintf "jsonl: missing field %S" name)
  in
  let get_string fields name =
    match field fields name with
    | Json.String s -> s
    | _ -> failwith (Printf.sprintf "jsonl: field %S is not a string" name)
  in
  let get_float fields name =
    match field fields name with
    | Json.Number x -> x
    | Json.Null -> nan
    | _ -> failwith (Printf.sprintf "jsonl: field %S is not a number" name)
  in
  let get_int fields name = int_of_float (get_float fields name) in
  (* Quantile fields the format has grown over time (p50/p90/p95/p999)
     read as [nan] from older artifacts instead of failing the whole
     parse. *)
  let get_float_opt fields name =
    match List.assoc_opt name fields with
    | Some (Json.Number x) -> x
    | Some Json.Null | None -> nan
    | Some _ -> failwith (Printf.sprintf "jsonl: field %S is not a number" name)
  in
  let sample_of_line line =
    match Json.of_line line with
    | Json.Object fields ->
        let labels =
          match field fields "labels" with
          | Json.Object pairs ->
              Labels.v
                (List.map
                   (fun (k, v) ->
                     match v with
                     | Json.String s -> (k, s)
                     | _ -> failwith "jsonl: label value is not a string")
                   pairs)
          | _ -> failwith "jsonl: labels is not an object"
        in
        let value =
          match get_string fields "type" with
          | "counter" -> Counter (get_int fields "value")
          | "gauge" -> Gauge (get_float fields "value")
          | "histogram" ->
              Histogram
                {
                  count = get_int fields "count";
                  mean = get_float fields "mean";
                  min = get_float fields "min";
                  max = get_float fields "max";
                  p50 = get_float_opt fields "p50";
                  p90 = get_float_opt fields "p90";
                  p95 = get_float_opt fields "p95";
                  p99 = get_float fields "p99";
                  p999 = get_float_opt fields "p999";
                }
          | kind -> failwith (Printf.sprintf "jsonl: unknown type %S" kind)
        in
        { name = get_string fields "name"; labels; help = ""; value }
    | _ -> failwith "jsonl: line is not an object"
  in
  String.split_on_char '\n' text
  |> List.filter (fun line -> String.trim line <> "")
  |> List.map sample_of_line

let write_file ~path contents =
  if path = "-" then begin
    print_string contents;
    flush stdout
  end
  else begin
    let oc = open_out path in
    Fun.protect
      ~finally:(fun () -> close_out oc)
      (fun () -> output_string oc contents)
  end
