module Labels = struct
  type t = (string * string) list

  let bad_key_char c = c = '"' || c = '\n' || c = '='

  (* Keys stay restricted (they name series and appear bare in every
     exposition format); values carry arbitrary payload — cell ids,
     fault specs, trace excerpts — so they accept anything, including
     quotes and newlines, and the exporters escape per format. *)
  let v pairs =
    List.iter
      (fun (k, _) ->
        if k = "" then invalid_arg "Labels.v: empty key";
        if String.exists bad_key_char k then
          invalid_arg "Labels.v: keys must avoid '\"', '=', newline")
      pairs;
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
    in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if a = b then invalid_arg "Labels.v: duplicate key";
          check rest
      | _ -> ()
    in
    check sorted;
    sorted

  (* The canonical string is an identity: two distinct label sets must
     never render alike, so the structural characters are escaped in
     both positions (keys may still contain '\' or ','). *)
  let escape s =
    if
      not
        (String.exists
           (fun c -> c = '\\' || c = ',' || c = '=' || c = '\n')
           s)
    then s
    else begin
      let buffer = Buffer.create (String.length s + 4) in
      String.iter
        (fun c ->
          match c with
          | '\\' -> Buffer.add_string buffer "\\\\"
          | ',' -> Buffer.add_string buffer "\\,"
          | '=' -> Buffer.add_string buffer "\\="
          | '\n' -> Buffer.add_string buffer "\\n"
          | c -> Buffer.add_char buffer c)
        s;
      Buffer.contents buffer
    end

  let to_string t =
    String.concat ","
      (List.map (fun (k, value) -> escape k ^ "=" ^ escape value) t)
end

(* Metric cells come in three flavours.  [Inert] is the null-registry
   dummy: an update is a single predictable branch, so fully
   instrumented code paths cost nothing measurable when telemetry is
   off.  [Shared] cells are domain-safe ([Atomic], or a per-metric
   mutex for histograms): a fleet's devices may update their handles
   from pool workers against one registry.  [Local] cells are plain
   unsynchronized refs for registries owned by exactly one domain at a
   time — the chunk-local accumulators the parallel experiment layer
   creates per chunk and merges once at the barrier, where an atomic
   RMW per event would be pure overhead. *)

module Counter = struct
  type t = Inert | Shared of int Atomic.t | Local of int ref

  let dummy = Inert

  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Counter.incr: negative increment";
    match t with
    | Inert -> ()
    | Shared v -> ignore (Atomic.fetch_and_add v by)
    | Local r -> r := !r + by

  let value = function Inert -> 0 | Shared v -> Atomic.get v | Local r -> !r
  let is_active = function Inert -> false | Shared _ | Local _ -> true
end

module Gauge = struct
  type t = Inert | Shared of float Atomic.t | Local of float ref

  let dummy = Inert

  let set t x =
    match t with
    | Inert -> ()
    | Shared v -> Atomic.set v x
    | Local r -> r := x

  let add t x =
    match t with
    | Inert -> ()
    | Shared v ->
        let rec retry () =
          let current = Atomic.get v in
          if not (Atomic.compare_and_set v current (current +. x)) then
            retry ()
        in
        retry ()
    | Local r -> r := !r +. x

  let value = function Inert -> 0. | Shared v -> Atomic.get v | Local r -> !r
  let is_active = function Inert -> false | Shared _ | Local _ -> true
end

module Histogram = struct
  (* One mutex per histogram (sharded by metric, not a global lock):
     concurrent observers of *different* histograms never contend.
     Histograms of unshared (single-domain) registries skip the mutex
     entirely. *)
  type t = {
    mutex : Mutex.t;
    mutable buckets : Sim.Stats.Histogram.t;
    mutable online : Sim.Stats.Online.t;
    nbuckets : int;
    lo : float;
    hi : float;
    active : bool;
    shared : bool;
  }

  let make ?(shared = true) ~buckets ~lo ~hi ~active () =
    {
      mutex = Mutex.create ();
      buckets = Sim.Stats.Histogram.create ~buckets ~lo ~hi ();
      online = Sim.Stats.Online.create ();
      nbuckets = buckets;
      lo;
      hi;
      active;
      shared;
    }

  let dummy = make ~buckets:1 ~lo:0. ~hi:1. ~active:false ()

  let locked t f =
    if not t.shared then f ()
    else begin
      Mutex.lock t.mutex;
      Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f
    end

  let observe t x =
    if t.active then
      locked t (fun () ->
          Sim.Stats.Histogram.add t.buckets x;
          Sim.Stats.Online.add t.online x)

  let count t = locked t (fun () -> Sim.Stats.Online.count t.online)
  let mean t = locked t (fun () -> Sim.Stats.Online.mean t.online)

  let percentile t rank =
    locked t (fun () ->
        if Sim.Stats.Online.count t.online = 0 then nan
        else Sim.Stats.Histogram.percentile t.buckets rank)

  let min t =
    locked t (fun () ->
        if Sim.Stats.Online.count t.online = 0 then nan
        else Sim.Stats.Online.min t.online)

  let max t =
    locked t (fun () ->
        if Sim.Stats.Online.count t.online = 0 then nan
        else Sim.Stats.Online.max t.online)

  let is_active t = t.active

  (* Fold [src] into [dst].  Only called with both histograms quiescent
     or via [Registry.merge] (single caller thread); the locks still
     guard against concurrent observers. *)
  let merge_into ~dst src =
    let src_buckets, src_online =
      locked src (fun () -> (src.buckets, src.online))
    in
    locked dst (fun () ->
        dst.buckets <- Sim.Stats.Histogram.merge dst.buckets src_buckets;
        dst.online <- Sim.Stats.Online.merge dst.online src_online)
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type entry = { labels : Labels.t; help : string; metric : metric }

type t = {
  live : bool;
  shared : bool; (* shared: atomic cells; unshared: plain refs *)
  mutex : Mutex.t; (* guards [table] and [names] *)
  table : (string, entry) Hashtbl.t; (* key = name ^ "{" ^ labels *)
  mutable names : (string * string) list; (* (name, key) in any order *)
}

let create ?(shared = true) () =
  {
    live = true;
    shared;
    mutex = Mutex.create ();
    table = Hashtbl.create 64;
    names = [];
  }

let null =
  {
    live = false;
    shared = true;
    mutex = Mutex.create ();
    table = Hashtbl.create 1;
    names = [];
  }

let is_null t = not t.live
let is_shared t = t.shared

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

let locked t f =
  Mutex.lock t.mutex;
  Fun.protect ~finally:(fun () -> Mutex.unlock t.mutex) f

(* Registration: same (name, labels) + same kind returns the existing
   handle; a kind clash (even under different labels of one name) is a
   programming error worth failing loudly on.  Serialized under the
   registry mutex so components may be constructed from pool workers. *)
let register t ~name ~labels ~help ~kind make_metric same_kind =
  let labels = Labels.v labels in
  let key = name ^ "{" ^ Labels.to_string labels in
  locked t @@ fun () ->
  match Hashtbl.find_opt t.table key with
  | Some entry -> (
      match same_kind entry.metric with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry: %s re-registered as a different kind"
               name))
  | None ->
      List.iter
        (fun (other_name, other_key) ->
          if other_name = name then
            let other = Hashtbl.find t.table other_key in
            if kind_name other.metric <> kind then
              invalid_arg
                (Printf.sprintf "Telemetry: %s already registered as a %s"
                   name
                   (kind_name other.metric)))
        t.names;
      let metric = make_metric () in
      Hashtbl.replace t.table key { labels; help; metric };
      t.names <- (name, key) :: t.names;
      match same_kind metric with Some m -> m | None -> assert false

let counter t ?(help = "") ?(labels = []) name =
  if not t.live then Counter.dummy
  else
    register t ~name ~labels ~help ~kind:"counter"
      (fun () ->
        Counter_m
          (if t.shared then Counter.Shared (Atomic.make 0)
           else Counter.Local (ref 0)))
      (function Counter_m c -> Some c | _ -> None)

let gauge t ?(help = "") ?(labels = []) name =
  if not t.live then Gauge.dummy
  else
    register t ~name ~labels ~help ~kind:"gauge"
      (fun () ->
        Gauge_m
          (if t.shared then Gauge.Shared (Atomic.make 0.)
           else Gauge.Local (ref 0.)))
      (function Gauge_m g -> Some g | _ -> None)

let histogram t ?(help = "") ?(labels = []) ?(buckets = 128) ~lo ~hi name =
  if not t.live then Histogram.dummy
  else
    register t ~name ~labels ~help ~kind:"histogram"
      (fun () ->
        Histogram_m
          (Histogram.make ~shared:t.shared ~buckets ~lo ~hi ~active:true ()))
      (function Histogram_m h -> Some h | _ -> None)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p95 : float;
  p99 : float;
  p999 : float;
}

type value = Counter of int | Gauge of float | Histogram of summary

type sample = {
  name : string;
  labels : Labels.t;
  help : string;
  value : value;
}

let summarize (h : Histogram.t) =
  {
    count = Histogram.count h;
    mean = Histogram.mean h;
    min = Histogram.min h;
    max = Histogram.max h;
    p50 = Histogram.percentile h 0.5;
    p90 = Histogram.percentile h 0.9;
    p95 = Histogram.percentile h 0.95;
    p99 = Histogram.percentile h 0.99;
    p999 = Histogram.percentile h 0.999;
  }

let entries t = locked t (fun () -> List.map (fun (name, key) -> (name, Hashtbl.find t.table key)) t.names)

let snapshot t =
  List.map
    (fun (name, (entry : entry)) ->
      let value =
        match entry.metric with
        | Counter_m c -> Counter (Counter.value c)
        | Gauge_m g -> Gauge (Gauge.value g)
        | Histogram_m h -> Histogram (summarize h)
      in
      { name; labels = entry.labels; help = entry.help; value })
    (entries t)
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 ->
             String.compare (Labels.to_string a.labels)
               (Labels.to_string b.labels)
         | c -> c)

(* Reduce [src] into [into]: counters add, histograms combine via
   Sim.Stats merges, gauges adopt the source value (the merge caller
   orders sources, so last-merged wins deterministically).  Metrics
   absent from [into] are registered with the source's help text and
   bucket layout.  The per-domain registries a parallel fleet or
   experiment suite accumulates reduce to exactly the snapshot a
   sequential run against one registry would produce. *)
let merge ~into src =
  if is_null into || is_null src then ()
  else begin
    let sorted =
      List.sort
        (fun (a, (ea : entry)) (b, eb) ->
          match String.compare a b with
          | 0 ->
              String.compare (Labels.to_string ea.labels)
                (Labels.to_string eb.labels)
          | c -> c)
        (entries src)
    in
    List.iter
      (fun (name, (entry : entry)) ->
        let labels = entry.labels and help = entry.help in
        match entry.metric with
        | Counter_m c ->
            Counter.incr
              (counter into ~help ~labels name)
              ~by:(Counter.value c)
        | Gauge_m g -> Gauge.set (gauge into ~help ~labels name) (Gauge.value g)
        | Histogram_m h ->
            let dst =
              histogram into ~help ~labels ~buckets:h.Histogram.nbuckets
                ~lo:h.Histogram.lo ~hi:h.Histogram.hi name
            in
            Histogram.merge_into ~dst h)
      sorted
  end
