module Labels = struct
  type t = (string * string) list

  let bad_char c = c = '"' || c = '\n' || c = '='

  let v pairs =
    List.iter
      (fun (k, value) ->
        if k = "" then invalid_arg "Labels.v: empty key";
        if String.exists bad_char k || String.exists bad_char value then
          invalid_arg "Labels.v: keys and values must avoid '\"', '=', newline")
      pairs;
    let sorted =
      List.sort (fun (a, _) (b, _) -> String.compare a b) pairs
    in
    let rec check = function
      | (a, _) :: ((b, _) :: _ as rest) ->
          if a = b then invalid_arg "Labels.v: duplicate key";
          check rest
      | _ -> ()
    in
    check sorted;
    sorted

  let to_string t =
    String.concat "," (List.map (fun (k, value) -> k ^ "=" ^ value) t)
end

module Counter = struct
  type t = { mutable value : int; active : bool }

  let dummy = { value = 0; active = false }

  let incr ?(by = 1) t =
    if by < 0 then invalid_arg "Counter.incr: negative increment";
    if t.active then t.value <- t.value + by

  let value t = t.value
  let is_active t = t.active
end

module Gauge = struct
  type t = { mutable value : float; active : bool }

  let dummy = { value = 0.; active = false }
  let set t x = if t.active then t.value <- x
  let add t x = if t.active then t.value <- t.value +. x
  let value t = t.value
  let is_active t = t.active
end

module Histogram = struct
  type t = {
    buckets : Sim.Stats.Histogram.t;
    online : Sim.Stats.Online.t;
    active : bool;
  }

  let make ~buckets ~lo ~hi ~active =
    {
      buckets = Sim.Stats.Histogram.create ~buckets ~lo ~hi ();
      online = Sim.Stats.Online.create ();
      active;
    }

  let dummy = make ~buckets:1 ~lo:0. ~hi:1. ~active:false

  let observe t x =
    if t.active then begin
      Sim.Stats.Histogram.add t.buckets x;
      Sim.Stats.Online.add t.online x
    end

  let count t = Sim.Stats.Online.count t.online
  let mean t = Sim.Stats.Online.mean t.online

  let percentile t rank =
    if count t = 0 then nan else Sim.Stats.Histogram.percentile t.buckets rank

  let min t = if count t = 0 then nan else Sim.Stats.Online.min t.online
  let max t = if count t = 0 then nan else Sim.Stats.Online.max t.online
  let is_active t = t.active
end

type metric =
  | Counter_m of Counter.t
  | Gauge_m of Gauge.t
  | Histogram_m of Histogram.t

type entry = { labels : Labels.t; help : string; metric : metric }

type t = {
  live : bool;
  table : (string, entry) Hashtbl.t; (* key = name ^ "{" ^ labels *)
  mutable names : (string * string) list; (* (name, key) in any order *)
}

let create () = { live = true; table = Hashtbl.create 64; names = [] }
let null = { live = false; table = Hashtbl.create 1; names = [] }
let is_null t = not t.live

let kind_name = function
  | Counter_m _ -> "counter"
  | Gauge_m _ -> "gauge"
  | Histogram_m _ -> "histogram"

(* Registration: same (name, labels) + same kind returns the existing
   handle; a kind clash (even under different labels of one name) is a
   programming error worth failing loudly on. *)
let register t ~name ~labels ~help ~kind make_metric same_kind =
  let labels = Labels.v labels in
  let key = name ^ "{" ^ Labels.to_string labels in
  match Hashtbl.find_opt t.table key with
  | Some entry -> (
      match same_kind entry.metric with
      | Some m -> m
      | None ->
          invalid_arg
            (Printf.sprintf "Telemetry: %s re-registered as a different kind"
               name))
  | None ->
      List.iter
        (fun (other_name, other_key) ->
          if other_name = name then
            let other = Hashtbl.find t.table other_key in
            if kind_name other.metric <> kind then
              invalid_arg
                (Printf.sprintf "Telemetry: %s already registered as a %s"
                   name
                   (kind_name other.metric)))
        t.names;
      let metric = make_metric () in
      Hashtbl.replace t.table key { labels; help; metric };
      t.names <- (name, key) :: t.names;
      match same_kind metric with Some m -> m | None -> assert false

let counter t ?(help = "") ?(labels = []) name =
  if not t.live then Counter.dummy
  else
    register t ~name ~labels ~help ~kind:"counter"
      (fun () -> Counter_m { Counter.value = 0; active = true })
      (function Counter_m c -> Some c | _ -> None)

let gauge t ?(help = "") ?(labels = []) name =
  if not t.live then Gauge.dummy
  else
    register t ~name ~labels ~help ~kind:"gauge"
      (fun () -> Gauge_m { Gauge.value = 0.; active = true })
      (function Gauge_m g -> Some g | _ -> None)

let histogram t ?(help = "") ?(labels = []) ?(buckets = 128) ~lo ~hi name =
  if not t.live then Histogram.dummy
  else
    register t ~name ~labels ~help ~kind:"histogram"
      (fun () -> Histogram_m (Histogram.make ~buckets ~lo ~hi ~active:true))
      (function Histogram_m h -> Some h | _ -> None)

type summary = {
  count : int;
  mean : float;
  min : float;
  max : float;
  p50 : float;
  p90 : float;
  p99 : float;
}

type value = Counter of int | Gauge of float | Histogram of summary

type sample = {
  name : string;
  labels : Labels.t;
  help : string;
  value : value;
}

let summarize (h : Histogram.t) =
  {
    count = Histogram.count h;
    mean = Histogram.mean h;
    min = Histogram.min h;
    max = Histogram.max h;
    p50 = Histogram.percentile h 0.5;
    p90 = Histogram.percentile h 0.9;
    p99 = Histogram.percentile h 0.99;
  }

let snapshot t =
  List.map
    (fun (name, key) ->
      let entry = Hashtbl.find t.table key in
      let value =
        match entry.metric with
        | Counter_m c -> Counter (Counter.value c)
        | Gauge_m g -> Gauge (Gauge.value g)
        | Histogram_m h -> Histogram (summarize h)
      in
      { name; labels = entry.labels; help = entry.help; value })
    t.names
  |> List.sort (fun a b ->
         match String.compare a.name b.name with
         | 0 ->
             String.compare (Labels.to_string a.labels)
               (Labels.to_string b.labels)
         | c -> c)

let default_registry = ref null
let default () = !default_registry
let set_default t = default_registry := t

let with_default t f =
  let saved = !default_registry in
  default_registry := t;
  Fun.protect ~finally:(fun () -> default_registry := saved) f
