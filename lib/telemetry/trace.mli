(** Span/event tracer: wall-clock histograms over [Logs], plus an
    optional {e structured} sink recording spans on a logical clock.

    Spans time a scoped operation (a whole experiment, a recovery pass,
    a device lifetime).  Two independent recorders exist:

    - the {b registry histogram} ([span_duration_us{span=...}]): real
      elapsed time via {!set_clock}'s clock — useful for performance,
      never deterministic;
    - the {b sink} ({!Sink}): structured spans (id, parent id,
      start/finish) stamped with a {e logical tick counter} that
      advances once per span boundary and instant event.  Tick
      timelines depend only on the order of traced operations, so
      sinks merged in submission order reproduce byte-identical traces
      at any job count — the property the monitor's Chrome-trace
      export relies on.

    Both are opt-in per call ([?registry], [?sink]); with neither and
    the log level off, {!with_span} is near-free.  The only
    process-global state here is the log level behind {!set_level}. *)

val src : Logs.src
(** The ["salamander"] log source every span/event goes through; the
    CLI's [--verbosity] flag sets its level. *)

val set_level : Logs.level option -> unit
(** Set the level of {!src} (and the global [Logs] level). *)

val level_of_verbosity : int -> Logs.level option
(** 0 = off, 1 = warnings, 2 = info, >= 3 = debug. *)

val set_clock : (unit -> float) -> unit
(** Override the wall span clock (seconds; default [Sys.time], i.e.
    CPU time — ample for the simulator's coarse spans).  Does not
    affect sink ticks. *)

(** Structured span collector on a logical tick clock.

    A sink is single-domain: each parallel task records into its own
    sink, and the driver merges them back with {!merge} in submission
    order (the same discipline as [Registry.merge]).  Span ids are
    assigned sequentially from 1 within a sink and renumbered on
    merge. *)
module Sink : sig
  type span = {
    id : int;
    parent : int option;  (** enclosing span, if any *)
    name : string;
    args : (string * string) list;
    start : int;  (** tick at enter *)
    finish : int;  (** tick at exit (sink's current tick if still open) *)
  }

  type t

  val create : unit -> t

  val enter : t -> ?args:(string * string) list -> string -> int
  (** Open a span (child of the innermost open span); returns its id. *)

  val exit : t -> unit
  (** Close the innermost open span; no-op when none is open. *)

  val instant : t -> string -> (string * string) list -> unit
  (** Record a point event at the next tick. *)

  val current : t -> int option
  (** Id of the innermost open span. *)

  val spans : t -> span list
  (** All spans in enter order (nondecreasing [start]). *)

  val instants : t -> (int * string * (string * string) list) list
  (** All instant events in record order. *)

  val span_count : t -> int

  val clock : t -> int
  (** Ticks consumed so far. *)

  val merge : into:t -> ?parent:int -> t -> unit
  (** Splice [src]'s spans and instants after [into]'s current
      timeline: ids and ticks are offset past [into]'s, and [src]'s
      root spans are re-parented under [parent] (e.g.
      [current into]). *)
end

val with_span :
  ?registry:Registry.t ->
  ?sink:Sink.t ->
  ?args:(string * string) list ->
  string ->
  (unit -> 'a) ->
  'a
(** [with_span ~registry ~sink name f] runs [f], records its wall
    duration into [registry] (default {!Registry.null}) and its tick
    extent into [sink] (default: none), and logs enter/exit at
    [Debug].  Exceptions propagate after the exit records. *)

val event :
  ?registry:Registry.t ->
  ?sink:Sink.t ->
  ?level:Logs.level ->
  string ->
  (string * string) list ->
  unit
(** [event name fields] logs one structured line (default level
    [Info]), counts it in [registry]'s [events_total{event=name}], and
    records it as an instant in [sink] when given. *)
