(** Lightweight span/event tracer on top of [Logs].

    Spans time a scoped operation (a whole experiment, a recovery pass,
    a device lifetime) and record the duration into the given registry's
    [span_duration_us{span=...}] histogram; with the log level at
    [Debug] they also emit enter/exit lines.  Events are structured
    one-off log lines.  The registry is passed explicitly ([?registry],
    default {!Registry.null}); when it is null and the log level is off,
    both are near-free.  The only process-global state here is the log
    level behind {!set_level}. *)

val src : Logs.src
(** The ["salamander"] log source every span/event goes through; the
    CLI's [--verbosity] flag sets its level. *)

val set_level : Logs.level option -> unit
(** Set the level of {!src} (and the global [Logs] level). *)

val level_of_verbosity : int -> Logs.level option
(** 0 = off, 1 = warnings, 2 = info, >= 3 = debug. *)

val set_clock : (unit -> float) -> unit
(** Override the span clock (seconds; default [Sys.time], i.e. CPU
    time — ample for the simulator's coarse spans). *)

val with_span : ?registry:Registry.t -> string -> (unit -> 'a) -> 'a
(** [with_span ~registry name f] runs [f], records its duration into
    [registry] (default {!Registry.null}: log-only), and logs enter/exit
    at [Debug].  Exceptions propagate after the exit record. *)

val event :
  ?registry:Registry.t ->
  ?level:Logs.level ->
  string ->
  (string * string) list ->
  unit
(** [event name fields] logs one structured line (default level [Info])
    and counts it in [registry]'s [events_total{event=name}]. *)
