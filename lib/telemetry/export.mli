(** Snapshot exporters: pretty console table, Prometheus-style text
    exposition, and a JSONL event log (one JSON object per metric per
    line) with a parser for round-tripping. *)

val pp_table : Format.formatter -> Registry.sample list -> unit
(** Human-readable table: one row per metric; histograms summarized as
    count/mean/p50/p90/p99/max. *)

val to_prometheus : Registry.sample list -> string
(** Prometheus text exposition format.  Counters and gauges map
    directly; a histogram [h] becomes [h{quantile="0.5|0.9|0.99"}],
    [h_count] and [h_sum] summary series.  An {e empty} histogram
    renders as [h_count 0] and [h_sum 0] with no quantile lines (its
    summary statistics are NaN and have no exposition meaning).
    [# HELP] / [# TYPE] headers are emitted once per metric name.
    Label values are escaped per the exposition format: ['\\'], ['"']
    and newline render as ["\\\\"], ["\\\""] and ["\\n"]. *)

val to_jsonl : Registry.sample list -> string
(** One line per sample:
    [{"name":...,"labels":{...},"type":"counter","value":42}].
    Histogram lines carry
    ["count","mean","min","max","p50","p90","p99"] fields.  Non-finite
    floats are encoded as null — in particular an empty histogram is
    rendered explicitly as [count 0] with null statistics. *)

val of_jsonl : string -> Registry.sample list
(** Parse text produced by {!to_jsonl} back into samples (help strings
    are not round-tripped; non-finite floats come back as [nan]).
    Histogram quantile fields missing from older artifacts read as
    [nan] rather than failing the parse.
    @raise Failure on malformed input. *)

val write_file : path:string -> string -> unit
(** Write exporter output to [path], with ["-"] meaning stdout. *)

(** {2 JSON building blocks}

    Reused by the monitor's timeline and Chrome-trace exporters so
    every JSON artifact escapes and formats identically. *)

val json_escape : string -> string
(** Escape a string for inclusion inside JSON double quotes. *)

val json_float : float -> string
(** Deterministic float rendering: integers as ["%.0f"], others as
    ["%.17g"] (round-trip exact), non-finite as ["null"]. *)
