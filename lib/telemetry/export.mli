(** Snapshot exporters: pretty console table, Prometheus-style text
    exposition, and a JSONL event log (one JSON object per metric per
    line) with a parser for round-tripping. *)

val pp_table : Format.formatter -> Registry.sample list -> unit
(** Human-readable table: one row per metric; histograms summarized as
    count/mean/p50/p90/p99/max. *)

val to_prometheus : Registry.sample list -> string
(** Prometheus text exposition format.  Counters and gauges map
    directly; a histogram [h] becomes [h{quantile="0.5|0.9|0.99"}],
    [h_count] and [h_sum] summary series.  [# HELP] / [# TYPE] headers
    are emitted once per metric name. *)

val to_jsonl : Registry.sample list -> string
(** One line per sample:
    [{"name":...,"labels":{...},"type":"counter","value":42}].
    Histogram lines carry
    ["count","mean","min","max","p50","p90","p99"] fields.  Non-finite
    floats are encoded as null. *)

val of_jsonl : string -> Registry.sample list
(** Parse text produced by {!to_jsonl} back into samples (help strings
    are not round-tripped; non-finite floats come back as [nan]).
    @raise Failure on malformed input. *)

val write_file : path:string -> string -> unit
(** Write exporter output to [path], with ["-"] meaning stdout. *)
