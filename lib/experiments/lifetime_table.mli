(** TAB-LIFE — total write endurance of the competing designs (§4 text).

    Ages one device of each kind to wear-death under the identical random
    overwrite workload and reports the host writes each absorbed.  The
    paper's claims to reproduce: ShrinkS >= the CVSS-class ~1.2x over the
    baseline, RegenS ~1.5x ("up to 1.5x" headline), with the ordering
    baseline < CVSS <= ShrinkS < RegenS. *)

type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  host_writes : int;
  factor : float;  (** vs baseline *)
  write_amplification : float;
}

val measure : ?seeds:int list -> ?ctx:Ctx.t -> unit -> row list
(** Averages over several seeds (default 3).  With a pool in [ctx], the
    kind x seed agings run in parallel; results are identical. *)

val lifetime_factors : row list -> float * float
(** (ShrinkS, RegenS) factors, for feeding FIG4. *)

val run : ?ctx:Ctx.t -> Format.formatter -> row list
