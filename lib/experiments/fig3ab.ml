let kinds : Fleet.kind list = [ `Baseline; `Cvss; `Shrinks; `Regens ]

let run ?days ?years ?(devices = Defaults.fleet_devices) ?(dwpd = 1.)
    ?aging ?(epoch_days = 1) ?(kinds = kinds) ?(ctx = Ctx.default) fmt =
  let days =
    match (years, days) with
    | Some y, _ -> y * 365
    | None, Some d -> d
    | None, None -> 150
  in
  let results =
    List.map
      (fun kind -> Fleet.run ~days ~devices ~dwpd ?aging ~epoch_days ~ctx kind)
      kinds
  in
  let sample_days =
    (* every 5th day keeps the table readable; epoch runs only snapshot
       boundary days, so the stride rounds 5 up to whole epochs *)
    let stride = epoch_days * Stdlib.max 1 ((5 + epoch_days - 1) / epoch_days) in
    List.init ((days / stride) + 1) (fun i -> i * stride)
  in
  let row_of result day =
    match
      List.find_opt (fun s -> s.Fleet.day = day) result.Fleet.snapshots
    with
    | Some s -> (s.Fleet.alive, s.Fleet.capacity_opages)
    | None -> (0, 0)
  in
  Report.section fmt
    "FIG3A: functioning devices over time (paper Fig. 3a)";
  Report.table fmt
    ~header:("day" :: List.map Defaults.kind_label kinds)
    ~rows:
      (List.map
         (fun day ->
           string_of_int day
           :: List.map
                (fun r -> string_of_int (fst (row_of r day)))
                results)
         sample_days);
  let deaths r =
    Printf.sprintf "%s: %d wear / %d afr deaths"
      (Defaults.kind_label r.Fleet.kind)
      r.Fleet.wear_deaths r.Fleet.afr_deaths
  in
  List.iter (fun r -> Report.note fmt (deaths r)) results;
  Report.note fmt
    "paper: baseline devices fail as a cohort; RegenS devices shrink and \
     regenerate, flattening the failure slope";
  Report.section fmt
    "FIG3B: available fleet capacity over time (paper Fig. 3b)";
  Report.table fmt
    ~header:("day" :: List.map Defaults.kind_label kinds)
    ~rows:
      (List.map
         (fun day ->
           string_of_int day
           :: List.map
                (fun r -> string_of_int (snd (row_of r day)))
                results)
         sample_days);
  Report.note fmt
    "capacity in oPages summed over live devices; Salamander trades a \
     gradual decline for the baseline's cliff"
