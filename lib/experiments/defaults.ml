let geometry = Flash.Geometry.create ~pages_per_block:16 ~blocks:32 ()
let reference_geometry = Flash.Geometry.create ~pages_per_block:64 ~blocks:64 ()
let target_pec = 60

let model =
  (* Anchor the wear curve so a median page exhausts the level-0 code at
     [target_pec] cycles; all level ratios follow from the code rates. *)
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  Flash.Rber_model.calibrate
    ~target_rber:
      (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
    ~target_pec ()

let mdisk_opages = 64

let salamander_config ~mode =
  { Salamander.Device.default_config with Salamander.Device.mode; mdisk_opages }

let fleet_devices = 24
let fleet_seed = 1789

let make_device_rng ?registry kind ~rng =
  match kind with
  | `Baseline ->
      let d = Ftl.Baseline_ssd.create ?registry ~geometry ~model ~rng () in
      Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)
  | `Cvss ->
      let d = Ftl.Cvss.create ?registry ~geometry ~model ~rng () in
      Ftl.Device_intf.Packed ((module Ftl.Cvss), d)
  | `Shrinks ->
      let d =
        Salamander.Device.create
          ~config:(salamander_config ~mode:Salamander.Device.Shrink_s)
          ?registry ~geometry ~model ~rng ()
      in
      Salamander.Device.pack d
  | `Regens ->
      let d =
        Salamander.Device.create
          ~config:(salamander_config ~mode:Salamander.Device.Regen_s)
          ?registry ~geometry ~model ~rng ()
      in
      Salamander.Device.pack d

let make_device ?registry kind ~seed =
  make_device_rng ?registry kind ~rng:(Sim.Rng.create seed)

let kind_label = function
  | `Baseline -> "baseline"
  | `Cvss -> "cvss"
  | `Shrinks -> "shrinks"
  | `Regens -> "regens"
