(** Shared experiment scale.

    The paper's analysis assumes datacenter drives (hundreds of GiB,
    ~3 000 P/E cycles).  Simulating that scale write-by-write is pointless;
    all the dynamics the figures plot are ratios, so the experiments run
    a scaled device — a few MiB of flash wearing out within tens of
    cycles — and EXPERIMENTS.md records the scaling.  The calibration in
    DESIGN.md keeps the level-to-level lifetime ratios identical to the
    full-scale device because the wear exponent, code rates and failure
    thresholds are unchanged. *)

val geometry : Flash.Geometry.t
(** 32 blocks x 16 fPages (8 MiB of 4 KiB oPages, 2048 slots). *)

val reference_geometry : Flash.Geometry.t
(** The paper's full-page geometry for analytic figures. *)

val model : Flash.Rber_model.t
(** Wear model calibrated so a median page exhausts the default code at
    60 cycles: the accelerated-aging anchor. *)

val target_pec : int

val mdisk_opages : int
(** 64 oPages = 256 KiB minidisks at experiment scale. *)

val salamander_config : mode:Salamander.Device.mode -> Salamander.Device.config

val fleet_devices : int
val fleet_seed : int

val make_device :
  ?registry:Telemetry.Registry.t ->
  [ `Baseline | `Cvss | `Shrinks | `Regens ] ->
  seed:int ->
  Ftl.Device_intf.packed
(** A fresh device of each competing design on the shared scale, its
    telemetry bound to [registry] (default: the null registry, i.e.
    telemetry off). *)

val make_device_rng :
  ?registry:Telemetry.Registry.t ->
  [ `Baseline | `Cvss | `Shrinks | `Regens ] ->
  rng:Sim.Rng.t ->
  Ftl.Device_intf.packed
(** Same, but drawing from a caller-owned stream instead of a fresh seed —
    the building block for deterministic parallel fleets, where each
    device's stream is split off a root RNG in submission order. *)

val kind_label : [ `Baseline | `Cvss | `Shrinks | `Regens ] -> string
