type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  recovery_opages : int;
  recovery_events : int;
  host_writes : int;
  lost_chunks : int;
  recovery_per_host_write : float;
}

let kinds : [ `Baseline | `Cvss | `Shrinks | `Regens ] list =
  [ `Baseline; `Cvss; `Shrinks; `Regens ]

let backend ~registry kind ~seed =
  match kind with
  | `Shrinks ->
      Difs.Cluster.Salamander
        (Salamander.Device.create
           ~config:(Defaults.salamander_config ~mode:Salamander.Device.Shrink_s)
           ~registry ~geometry:Defaults.geometry ~model:Defaults.model
           ~rng:(Sim.Rng.create seed) ())
  | `Regens ->
      Difs.Cluster.Salamander
        (Salamander.Device.create
           ~config:(Defaults.salamander_config ~mode:Salamander.Device.Regen_s)
           ~registry ~geometry:Defaults.geometry ~model:Defaults.model
           ~rng:(Sim.Rng.create seed) ())
  | (`Baseline | `Cvss) as k ->
      Difs.Cluster.Monolithic (Defaults.make_device ~registry k ~seed)

let measure_kind ~registry kind ~devices ~seed =
  let cluster = Difs.Cluster.create ~registry () in
  List.iter
    (fun i ->
      ignore
        (Difs.Cluster.add_device cluster ~node:i
           (backend ~registry kind ~seed:(seed + (61 * i)))))
    (List.init devices Fun.id);
  (* Populate to ~40% of raw cluster capacity, then rewrite until the
     cluster can no longer maintain the working set (most devices dead or
     shrunk away). *)
  let physical_per_chunk =
    Difs.Cluster.share_opages cluster * Difs.Cluster.total_shares cluster
  in
  let raw_capacity =
    devices * Flash.Geometry.total_opages Defaults.geometry
  in
  let chunk_count = raw_capacity * 40 / 100 / physical_per_chunk in
  for id = 0 to chunk_count - 1 do
    ignore (Difs.Cluster.write_chunk cluster id)
  done;
  let rng = Sim.Rng.create (seed + 7) in
  let host_writes = ref 0 in
  let consecutive_failures = ref 0 in
  while !consecutive_failures < 200 && !host_writes < 30_000_000 do
    let id = Sim.Rng.int rng chunk_count in
    match Difs.Cluster.write_chunk cluster id with
    | Ok () ->
        host_writes := !host_writes + physical_per_chunk;
        consecutive_failures := 0
    | Error _ -> incr consecutive_failures
  done;
  Difs.Cluster.repair cluster;
  {
    kind;
    recovery_opages = Difs.Cluster.recovery_opages cluster;
    recovery_events = Difs.Cluster.recovery_events cluster;
    host_writes = !host_writes;
    lost_chunks = Difs.Cluster.lost_chunks cluster;
    recovery_per_host_write =
      float_of_int (Difs.Cluster.recovery_opages cluster)
      /. float_of_int (Stdlib.max 1 !host_writes);
  }

let measure ?(devices = 6) ?(seed = 4242) ?(ctx = Ctx.default) () =
  (* One cluster per kind, each fully self-contained: the pool runs the
     four cluster lifetimes concurrently. *)
  let rows =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun kind ->
        let sub = Ctx.sub_registry ctx in
        (measure_kind ~registry:sub kind ~devices ~seed, sub))
      kinds
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) rows;
  List.map fst rows

(* Same aging protocol, but comparing redundancy schemes on identical
   RegenS fleets: replication recovers a lost share with one read; (4,2)
   erasure coding needs four — the §4.3 recovery-traffic question under
   the redundancy datacenters actually deploy. *)
let measure_redundancy ?(devices = 8) ?(seed = 5353) ?(ctx = Ctx.default) () =
  let schemes =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun (label, cluster_config) ->
      let sub = Ctx.sub_registry ctx in
      let cluster = Difs.Cluster.create ~config:cluster_config ~registry:sub () in
      List.iter
        (fun i ->
          ignore
            (Difs.Cluster.add_device cluster ~node:i
               (backend ~registry:sub `Regens ~seed:(seed + (61 * i)))))
        (List.init devices Fun.id);
      let physical_per_chunk =
        Difs.Cluster.share_opages cluster * Difs.Cluster.total_shares cluster
      in
      let raw_capacity =
        devices * Flash.Geometry.total_opages Defaults.geometry
      in
      let chunk_count = raw_capacity * 40 / 100 / physical_per_chunk in
      for id = 0 to chunk_count - 1 do
        ignore (Difs.Cluster.write_chunk cluster id)
      done;
      let rng = Sim.Rng.create (seed + 7) in
      let host_writes = ref 0 in
      let consecutive_failures = ref 0 in
      while !consecutive_failures < 200 && !host_writes < 30_000_000 do
        match Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunk_count) with
        | Ok () ->
            host_writes := !host_writes + physical_per_chunk;
            consecutive_failures := 0
        | Error _ -> incr consecutive_failures
      done;
      Difs.Cluster.repair cluster;
      ((label, cluster, !host_writes), sub))
    [
      ("replication x3", Difs.Cluster.default_config);
      ("erasure (4,2)", Difs.Cluster.default_ec_config);
    ]
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) schemes;
  List.map fst schemes

let run ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "TAB-RECOV: diFS recovery traffic over device lifetime (paper §4.3)";
  let rows = measure ~ctx () in
  Report.table fmt
    ~header:
      [ "cluster"; "host oPage writes"; "recovery oPages"; "recovery events";
        "recovery/host write"; "lost chunks" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Defaults.kind_label r.kind;
             string_of_int r.host_writes;
             string_of_int r.recovery_opages;
             string_of_int r.recovery_events;
             Printf.sprintf "%.4f" r.recovery_per_host_write;
             string_of_int r.lost_chunks;
           ])
         rows);
  Report.note fmt
    "paper: ShrinkS recovery volume comparable to baseline (same LBAs \
     fail overall, in finer units); RegenS adds traffic because \
     regenerated minidisks fail again.  Salamander clusters absorb far \
     more writes before losing capacity, so compare recovery per host \
     write.";
  Report.section fmt
    "TAB-RECOV (redundancy): replication vs erasure coding on RegenS fleets";
  let schemes = measure_redundancy ~ctx () in
  Report.table fmt
    ~header:
      [ "redundancy"; "storage overhead"; "host oPage writes";
        "recovery written"; "recovery read"; "read amplification";
        "lost chunks" ]
    ~rows:
      (List.map
         (fun (label, cluster, host_writes) ->
           [
             label;
             Printf.sprintf "%.2fx" (Difs.Cluster.storage_overhead cluster);
             string_of_int host_writes;
             string_of_int (Difs.Cluster.recovery_opages cluster);
             string_of_int (Difs.Cluster.recovery_read_opages cluster);
             Printf.sprintf "%.1fx"
               (float_of_int (Difs.Cluster.recovery_read_opages cluster)
               /. float_of_int
                    (Stdlib.max 1 (Difs.Cluster.recovery_opages cluster)));
             string_of_int (Difs.Cluster.lost_chunks cluster);
           ])
         schemes);
  Report.note fmt
    "erasure coding halves the storage overhead of Salamander's shrink \
     events but multiplies recovery reads by k: minidisk-granular \
     failures interact with EC repair amplification, a cost the paper's \
     replication-centric analysis does not surface"
