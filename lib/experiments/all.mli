(** Run every experiment in DESIGN.md's per-experiment index, in order. *)

val run : ?ctx:Ctx.t -> Format.formatter -> unit
(** With a pool in [ctx], experiments run concurrently — each rendering
    into a private buffer and metering into a private registry — and are
    emitted in index order, so the report (and any merged telemetry) is
    byte-identical to a sequential run. *)

val experiments : (string * (Ctx.t -> Format.formatter -> unit)) list
(** (id, runner) pairs for CLI dispatch: fig2, fig3a (with fig3b),
    fig3c (with fig3d), fig4, lifetime, tco, recovery, terms.  Each
    runner binds telemetry to its context's registry and may fan out
    across its context's pool. *)
