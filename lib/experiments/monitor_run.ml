type result = {
  fleet : Fleet.result;
  samples : int;
  series : int;
  transitions : int;
}

let run ?(kind = `Regens) ?(devices = 6) ?(days = 25) ?(dwpd = 2.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) ?(ctx = Ctx.default)
    fmt =
  Report.section fmt "monitor: longitudinal fleet health";
  Report.note fmt
    (Printf.sprintf
       "%d %s devices written at %.1f DWPD for %d scaled days — a \
        wear-heavy deployment whose health the monitor watches decay."
       devices (Defaults.kind_label kind) dwpd days);
  let fleet = Fleet.run ~devices ~days ~dwpd ~afr_per_day ~seed ~ctx kind in
  let final = List.nth fleet.Fleet.snapshots days in
  Report.table fmt
    ~header:
      [ "devices"; "survivors"; "wear deaths"; "afr deaths"; "host writes" ]
    ~rows:
      [
        [
          string_of_int fleet.Fleet.devices;
          string_of_int final.Fleet.alive;
          string_of_int fleet.Fleet.wear_deaths;
          string_of_int fleet.Fleet.afr_deaths;
          string_of_int fleet.Fleet.total_host_writes;
        ];
      ];
  let samples, series, transitions =
    match ctx.Ctx.monitor with
    | None ->
        Report.note fmt
          "no monitor attached — pass --sample-every/--health/--timeline to \
           collect the longitudinal series";
        (0, 0, 0)
    | Some mon ->
        let sampler = Monitor.Engine.sampler mon in
        let log = Monitor.Engine.alert_log mon in
        Report.table fmt
          ~header:[ "samples"; "series"; "alert transitions" ]
          ~rows:
            [
              [
                string_of_int (Monitor.Engine.samples mon);
                string_of_int (List.length (Monitor.Sampler.series sampler));
                string_of_int (List.length log);
              ];
            ];
        if log <> [] then begin
          Report.note fmt "alert transitions (simulated days):";
          Monitor.Alert.pp fmt log
        end;
        ( Monitor.Engine.samples mon,
          List.length (Monitor.Sampler.series sampler),
          List.length log )
  in
  { fleet; samples; series; transitions }
