(** Ablation studies for the design choices the paper leaves open.

    - AB-MSIZE: minidisk size (§3.2 sets mSize "small, e.g., 1MB" and
      leaves granularity a design question) — lifetime and shrink
      granularity vs mSize.
    - AB-LEVEL: how deep RegenS should go (§4's "limit itself to L < 2")
      — device lifetime vs the max usable tiredness level.
    - AB-SCRUB: §3.3's proactive retirement of the most worn pages on
      each decommissioning, on vs off.
    - AB-PLACE: replica placement across minidisks of one drive vs
      distinct drives (§3.2's correlated-failure open question) — data
      loss when whole devices die.
    - AB-PATTERN: endurance under uniform, zipfian and sequential write
      streams — does wear leveling keep skewed workloads from gutting
      the lifetime gains?
    - AB-ECC-PLACE: §4.2's mitigation of the 4/(4-L) penalty by storing
      the extra ECC in dedicated pages (analytic comparison). *)

val msize : ?ctx:Ctx.t -> Format.formatter -> unit
val max_level : ?ctx:Ctx.t -> Format.formatter -> unit
val scrub : ?ctx:Ctx.t -> Format.formatter -> unit
val placement : ?ctx:Ctx.t -> Format.formatter -> unit
val pattern : ?ctx:Ctx.t -> Format.formatter -> unit
val queueing : Format.formatter -> unit
val ecc_placement : Format.formatter -> unit

val run : ?ctx:Ctx.t -> Format.formatter -> unit
(** All of the above.  [ctx] supplies the telemetry registry the aged
    devices bind against; MSIZE and LEVEL additionally fan their
    independent agings across [ctx]'s pool. *)
