(** FIG3C / FIG3D — RegenS performance degradation as fPages transition
    to L1 (paper Figs. 3c and 3d).

    A RegenS device is prepared with a chosen fraction of its fPages
    forced to tiredness L1 (the state a worn device reaches), filled
    sequentially, and then measured with the latency model against the
    real physical layout the FTL produced:

    - sequential read throughput over the whole device;
    - 16 KiB random-read cost, reported both as fPages touched per access
      (the paper's 4/(4-L) factor) and as serialized latency;
    - 4 KiB random-read latency, which should stay flat.

    Because an L1 page holds 3 oPages instead of 4, a 16 KiB extent
    always spans 2 fPages on L1 flash: sequential throughput drops by
    ~4/(4-L) (25% at all-L1) while 4 KiB accesses are untouched. *)

type point = {
  l1_fraction : float;  (** fraction of fPages forced to L1 *)
  seq_throughput_mib_s : float;
  random16k_pages : float;  (** avg fPages touched per 16 KiB access *)
  random16k_us : float;  (** serialized latency (upper bound) *)
  random16k_parallel_us : float;
      (** plane-parallel senses, shared channel (lower bound) *)
  random4k_us : float;
}

val measure :
  ?fractions:float list -> ?seed:int -> ?ctx:Ctx.t -> unit -> point list
(** With a pool in [ctx], each L1 fraction's device is prepared and
    measured in parallel; results are identical. *)

val run : ?ctx:Ctx.t -> Format.formatter -> unit
