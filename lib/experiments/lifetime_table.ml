type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  host_writes : int;
  factor : float;
  write_amplification : float;
}

let kinds : [ `Baseline | `Cvss | `Shrinks | `Regens ] list =
  [ `Baseline; `Cvss; `Shrinks; `Regens ]

let age_one ~registry kind ~seed =
  let device = Defaults.make_device ~registry kind ~seed in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.
  in
  let outcome =
    Workload.Aging.run ~max_writes:50_000_000 ~rng:(Sim.Rng.create (seed + 1))
      ~pattern ~device ()
  in
  (outcome.Workload.Aging.host_writes,
   Ftl.Device_intf.write_amplification device)

let measure ?(seeds = [ 101; 202; 303 ]) ?(ctx = Ctx.default) () =
  (* Every (kind, seed) aging is self-contained, so the pool can run the
     whole cross product at once; the fold below reduces in list order
     either way. *)
  let tasks =
    List.concat_map
      (fun kind -> List.map (fun seed -> (kind, seed)) seeds)
      kinds
  in
  let aged =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun (kind, seed) ->
        let sub = Ctx.sub_registry ctx in
        let w, a = age_one ~registry:sub kind ~seed in
        (kind, w, a, sub))
      tasks
  in
  List.iter (fun (_, _, _, sub) -> Ctx.absorb ctx sub) aged;
  let totals =
    List.map
      (fun kind ->
        let writes, wafs =
          List.fold_left
            (fun (acc_w, acc_a) (k, w, a, _) ->
              if k = kind then (acc_w + w, acc_a +. a) else (acc_w, acc_a))
            (0, 0.) aged
        in
        (kind, writes / List.length seeds,
         wafs /. float_of_int (List.length seeds)))
      kinds
  in
  let baseline =
    match List.find_opt (fun (k, _, _) -> k = `Baseline) totals with
    | Some (_, w, _) -> float_of_int w
    | None -> nan
  in
  List.map
    (fun (kind, host_writes, write_amplification) ->
      {
        kind;
        host_writes;
        factor = float_of_int host_writes /. baseline;
        write_amplification;
      })
    totals

let lifetime_factors rows =
  let factor kind =
    match List.find_opt (fun r -> r.kind = kind) rows with
    | Some r -> r.factor
    | None -> nan
  in
  (factor `Shrinks, factor `Regens)

let run ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "TAB-LIFE: write endurance until device death (paper: up to 1.5x)";
  let rows = measure ~ctx () in
  Report.table fmt
    ~header:[ "device"; "host oPage writes"; "vs baseline"; "WAF" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Defaults.kind_label r.kind;
             string_of_int r.host_writes;
             Printf.sprintf "%.2fx" r.factor;
             Report.cell_f r.write_amplification;
           ])
         rows);
  Report.note fmt
    "paper: ShrinkS at least the CVSS-class ~1.2x; RegenS ~1.5x via L1 \
     regeneration";
  rows
