(** CHAOS: deterministic fault campaigns with verdicts (tentpole of the
    robustness layer).

    Three arena flavours, each run at two seeds (six cells fanned out
    over the context's pool, reduced in submission order, so the report
    is byte-identical at any job count):

    - {b device arena} — a bare {!Ftl.Engine} under a random
      write/read/trim mix while the injector drives transient flips,
      sticky pages, correlated block failures and power cuts (crashes
      route through [crash_rebuild]).  Silent corruption and device
      death are out of scope here: the engine layer cannot distinguish
      below-ECC corruption from a bug, and has no notion of other
      devices — both belong to the cluster arena.
    - {b cluster arena} — a replicated {!Difs.Cluster} over Salamander
      devices under a chunk write/read/delete mix, with media faults
      spread round-robin across the member chips, scheduled device
      kills, periodic scrub sweeps, and a final repair + scrub.  Power
      loss is out of scope here (a cluster member's crash is modeled by
      the kill/rebuild path).
    - {b recovery arena} — the cluster arena under the [live-recovery]
      preset (heavy sticky + silent corruption plus a device kill) with
      {!Difs.Cluster.enable_live_repair} armed, whatever plan the other
      cells run: the standing regression for the live-repair invariants
      (no corrupt read while a healthy replica exists,
      [unrecoverable_opages] monotone across steps).

    Each cell ends with its {!Faults.Verdict} — the run passes only if
    every check in every cell holds. *)

val run :
  ?ctx:Ctx.t ->
  ?plan:Faults.Plan.t ->
  ?seed:int ->
  ?steps:int ->
  Format.formatter ->
  bool
(** Defaults: the [default] plan preset, seed 42, 1000 steps per cell.
    Returns whether every verdict passed.

    With a monitor on [ctx], each cell samples its scratch registry at
    the monitor's epoch interval (one epoch = one injector step, plus a
    final post-repair sample), wraps its step loop in a [chaos:cell]
    span, and merges back under a [device=<arena>-<seed>] label. *)

val run_shrink_vs_repair :
  ?ctx:Ctx.t -> ?seed:int -> ?steps:int -> Format.formatter -> bool
(** Effective-lifetime comparison: two cluster cells under the same
    [live-recovery] damage and seed, live repair off vs on, reported
    side by side — surviving exported capacity (repair costs wear)
    against unrecoverable oPages, corrupt reads served and lost chunks
    (repair saves data).  Returns whether both cells' verdicts
    passed. *)
