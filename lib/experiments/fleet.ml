type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = { day : int; alive : int; capacity_opages : int }

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

(* Each device's life is simulated independently: its creation stream,
   workload stream and failure-injection stream are all split off the
   root RNG in submission order before any task runs, so the outcome is
   a pure function of (seed, device index) — identical whether the tasks
   run sequentially or on a pool, in any interleaving. *)
type device_streams = {
  index : int;
  dev_rng : Sim.Rng.t;
  wl_rng : Sim.Rng.t;
  afr_rng : Sim.Rng.t;
  sub : Telemetry.Registry.t;
  mon : Monitor.Engine.t option;
}

type device_outcome = {
  out_index : int;
  per_day : (bool * int) array; (* (alive, capacity) for day 0 .. days *)
  host_writes : int;
  wear_dead : bool;
  afr_dead : bool;
  out_sub : Telemetry.Registry.t;
  out_mon : Monitor.Engine.t option;
}

let simulate_device ~kind ~days ~dwpd ~afr_per_day streams =
  let device =
    Defaults.make_device_rng ~registry:streams.sub kind ~rng:streams.dev_rng
  in
  let sink = Option.bind streams.mon Monitor.Engine.sink in
  (* Liveness/capacity gauges exist only for the monitor: they feed the
     health model's alive and capacity series. *)
  let liveness =
    Option.map
      (fun _ ->
        ( Telemetry.Registry.gauge streams.sub
            ~help:"1 while the device still accepts writes" "device_alive",
          Telemetry.Registry.gauge streams.sub
            ~help:"Current logical capacity in oPages"
            "device_capacity_opages" ))
      streams.mon
  in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.
  in
  let afr_dead = ref false and wear_dead = ref false in
  let host_writes = ref 0 in
  let alive () =
    (not !afr_dead) && (not !wear_dead) && Ftl.Device_intf.alive device
  in
  let capacity () =
    if alive () then Ftl.Device_intf.logical_capacity device else 0
  in
  let sample day =
    match streams.mon with
    | Some mon when Monitor.Engine.due mon ~tick:day || day = 0 || day = days
      ->
        Option.iter
          (fun (alive_g, cap_g) ->
            Telemetry.Registry.Gauge.set alive_g (if alive () then 1. else 0.);
            Telemetry.Registry.Gauge.set cap_g (float_of_int (capacity ())))
          liveness;
        Monitor.Engine.sample mon ~time:(float_of_int day) streams.sub
    | _ -> ()
  in
  let per_day = Array.make (days + 1) (false, 0) in
  per_day.(0) <- (alive (), capacity ());
  sample 0;
  Telemetry.Trace.with_span ?sink
    ~args:[ ("device", string_of_int streams.index) ]
    "fleet:device"
    (fun () ->
      for day = 1 to days do
        if alive () then
          Telemetry.Trace.with_span ?sink
            ~args:[ ("day", string_of_int day) ]
            "fleet:day"
            (fun () ->
              (* Random, non-wear failure (controller, DRAM, firmware): the
                 ~1%-AFR class of failures the field studies report. *)
              if Sim.Rng.chance streams.afr_rng afr_per_day then
                afr_dead := true
              else begin
                let quota =
                  int_of_float (dwpd *. float_of_int (capacity ()))
                in
                let outcome =
                  Workload.Aging.run_until ~rng:streams.wl_rng ~pattern ~device
                    ~stop:(fun writes -> writes >= quota)
                    ()
                in
                host_writes := !host_writes + outcome.Workload.Aging.host_writes;
                if outcome.Workload.Aging.died then wear_dead := true
              end);
        per_day.(day) <- (alive (), capacity ());
        sample day
      done);
  {
    out_index = streams.index;
    per_day;
    host_writes = !host_writes;
    wear_dead = !wear_dead;
    afr_dead = !afr_dead;
    out_sub = streams.sub;
    out_mon = streams.mon;
  }

let run ?(devices = Defaults.fleet_devices) ?(days = 150) ?(dwpd = 1.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) ?(ctx = Ctx.default)
    kind =
  let root = Sim.Rng.create seed in
  let streams =
    List.init devices (fun index ->
        (* split order matters: three streams per device, device-major *)
        let dev_rng = Sim.Rng.split root in
        let wl_rng = Sim.Rng.split root in
        let afr_rng = Sim.Rng.split root in
        {
          index;
          dev_rng;
          wl_rng;
          afr_rng;
          sub = Ctx.sub_registry ctx;
          mon = Ctx.sub_monitor ctx;
        })
  in
  let outcomes =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (simulate_device ~kind ~days ~dwpd ~afr_per_day)
      streams
  in
  (* Reduce in submission order: sums are order-insensitive, the registry
     and monitor merges are not (gauges keep the last write, spans splice
     where they land), so everything stays deterministic at any job
     count. *)
  let kind_tag = Defaults.kind_label kind in
  List.iter
    (fun o ->
      Ctx.absorb ctx o.out_sub;
      Ctx.absorb_monitor ctx
        ~labels:[ ("device", Printf.sprintf "%s-%d" kind_tag o.out_index) ]
        o.out_mon)
    outcomes;
  let snapshots =
    List.init (days + 1) (fun day ->
        let alive = ref 0 and capacity = ref 0 in
        List.iter
          (fun o ->
            let a, c = o.per_day.(day) in
            if a then begin
              incr alive;
              capacity := !capacity + c
            end)
          outcomes;
        { day; alive = !alive; capacity_opages = !capacity })
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    kind;
    devices;
    snapshots;
    total_host_writes = sum (fun o -> o.host_writes);
    wear_deaths = sum (fun o -> if o.wear_dead then 1 else 0);
    afr_deaths = sum (fun o -> if o.afr_dead then 1 else 0);
  }
