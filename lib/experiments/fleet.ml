type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = { day : int; alive : int; capacity_opages : int }

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

(* Each device's life is simulated independently: its creation stream,
   workload stream and failure-injection stream are all split off the
   root RNG in submission order (device-major, three streams per
   device) before any task runs, so the outcome is a pure function of
   (seed, device index) — identical however devices are grouped into
   chunks and whatever pool runs them. *)
type device_streams = {
  dev_rng : Sim.Rng.t;
  wl_rng : Sim.Rng.t;
  afr_rng : Sim.Rng.t;
}

(* Chunk-local accumulator: one scratch registry, one scratch monitor
   and plain per-day sums shared by every device of the chunk.  Created
   once per chunk on the worker that runs it, folded device by device
   with no synchronization, merged into the context once at the
   barrier. *)
type chunk_acc = {
  chunk : Parallel.Pool.chunk;
  sub : Telemetry.Registry.t;
  mon : Monitor.Engine.t option;
  obs : Obs.Fleet_report.Acc.t option;
  alive_by_day : int array; (* live devices per day 0 .. days *)
  cap_by_day : int array; (* summed live capacity per day *)
  mutable acc_host_writes : int;
  mutable acc_wear_deaths : int;
  mutable acc_afr_deaths : int;
}

let simulate_device ~kind ~days ~dwpd ~afr_per_day ~streams acc index =
  let s : device_streams = streams.(index) in
  let device = Defaults.make_device_rng ~registry:acc.sub kind ~rng:s.dev_rng in
  let sink = Option.bind acc.mon Monitor.Engine.sink in
  (* Liveness/capacity gauges exist only for the monitor: they feed the
     health model's alive and capacity series. *)
  let liveness =
    Option.map
      (fun _ ->
        ( Telemetry.Registry.gauge acc.sub
            ~help:"1 while the device still accepts writes" "device_alive",
          Telemetry.Registry.gauge acc.sub
            ~help:"Current logical capacity in oPages"
            "device_capacity_opages" ))
      acc.mon
  in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.
  in
  let afr_dead = ref false and wear_dead = ref false in
  let alive () =
    (not !afr_dead) && (not !wear_dead) && Ftl.Device_intf.alive device
  in
  let capacity () =
    if alive () then Ftl.Device_intf.logical_capacity device else 0
  in
  let sample day =
    match acc.mon with
    | Some mon when Monitor.Engine.due mon ~tick:day || day = 0 || day = days
      ->
        Option.iter
          (fun (alive_g, cap_g) ->
            Telemetry.Registry.Gauge.set alive_g (if alive () then 1. else 0.);
            Telemetry.Registry.Gauge.set cap_g (float_of_int (capacity ())))
          liveness;
        Monitor.Engine.sample mon ~time:(float_of_int day) acc.sub
    | _ -> ()
  in
  let record day =
    if alive () then begin
      acc.alive_by_day.(day) <- acc.alive_by_day.(day) + 1;
      acc.cap_by_day.(day) <- acc.cap_by_day.(day) + capacity ()
    end
  in
  record 0;
  sample 0;
  Telemetry.Trace.with_span ?sink
    ~args:[ ("device", string_of_int index) ]
    "fleet:device"
    (fun () ->
      for day = 1 to days do
        if alive () then
          Telemetry.Trace.with_span ?sink
            ~args:[ ("day", string_of_int day) ]
            "fleet:day"
            (fun () ->
              (* Random, non-wear failure (controller, DRAM, firmware): the
                 ~1%-AFR class of failures the field studies report. *)
              if Sim.Rng.chance s.afr_rng afr_per_day then afr_dead := true
              else begin
                let quota =
                  int_of_float (dwpd *. float_of_int (capacity ()))
                in
                let outcome =
                  Workload.Aging.run_until ~rng:s.wl_rng ~pattern ~device
                    ~stop:(fun writes -> writes >= quota)
                    ()
                in
                acc.acc_host_writes <-
                  acc.acc_host_writes + outcome.Workload.Aging.host_writes;
                if outcome.Workload.Aging.died then wear_dead := true
              end);
        record day;
        sample day
      done);
  if !wear_dead then acc.acc_wear_deaths <- acc.acc_wear_deaths + 1;
  if !afr_dead then acc.acc_afr_deaths <- acc.acc_afr_deaths + 1;
  (* One wear observation per device at end of life(time window): the
     fleet report's whole input.  The media scan is O(device) but runs
     once per device per run, not per op. *)
  Option.iter
    (fun o ->
      let w = Ftl.Device_intf.wear_stats device in
      let bg = Ftl.Device_intf.bg_stats device in
      Obs.Fleet_report.Acc.observe o
        {
          Obs.Fleet_report.id =
            Printf.sprintf "%s-%d" (Defaults.kind_label kind) index;
          pec_max = w.Ftl.Device_intf.pec_max;
          pec_min = w.Ftl.Device_intf.pec_min;
          rber_worst = w.Ftl.Device_intf.rber_worst;
          tolerable_rber = w.Ftl.Device_intf.tolerable_rber;
          retries = bg.Ftl.Device_intf.read_retries;
          escalations = bg.Ftl.Device_intf.live_repair_attempts;
          reclaims = bg.Ftl.Device_intf.read_reclaims;
          host_writes = Ftl.Device_intf.host_writes device;
          alive = alive ();
        })
    acc.obs

(* Chunk sizing depends only on the fleet shape — never on the job
   count, which must not be observable.  A monitored fleet pins one
   device per chunk so each device keeps its own scratch monitor and
   [device=<kind>-<i>] series; unmonitored fleets use up to 64 chunks,
   plenty of slack for any realistic pool while amortizing the
   per-chunk registry and queue round-trip over many devices. *)
let default_chunk_size ~devices ~monitored =
  if monitored then 1 else Stdlib.max 1 ((devices + 63) / 64)

let run ?(devices = Defaults.fleet_devices) ?(days = 150) ?(dwpd = 1.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) ?(ctx = Ctx.default)
    ?chunk_size kind =
  let root = Sim.Rng.create seed in
  let streams =
    Array.init devices (fun _ ->
        { dev_rng = root; wl_rng = root; afr_rng = root })
  in
  (* split order matters: three streams per device, device-major *)
  for i = 0 to devices - 1 do
    let dev_rng = Sim.Rng.split root in
    let wl_rng = Sim.Rng.split root in
    let afr_rng = Sim.Rng.split root in
    streams.(i) <- { dev_rng; wl_rng; afr_rng }
  done;
  let chunk_size =
    match chunk_size with
    | Some size -> size
    | None ->
        default_chunk_size ~devices
          ~monitored:(Option.is_some ctx.Ctx.monitor)
  in
  let outcomes =
    Parallel.Pool.accumulate ctx.Ctx.pool ~chunk_size ~n:devices
      {
        Parallel.Pool.Accumulator.create =
          (fun chunk ->
            {
              chunk;
              sub = Ctx.sub_registry ctx;
              mon = Ctx.sub_monitor ctx;
              obs = Ctx.sub_obs ctx;
              alive_by_day = Array.make (days + 1) 0;
              cap_by_day = Array.make (days + 1) 0;
              acc_host_writes = 0;
              acc_wear_deaths = 0;
              acc_afr_deaths = 0;
            });
        item = simulate_device ~kind ~days ~dwpd ~afr_per_day ~streams;
        finish = Fun.id;
      }
  in
  (* Reduce in submission (= chunk) order: sums are order-insensitive,
     the registry and monitor merges are not (gauges keep the last
     write, spans splice where they land), so everything stays
     deterministic at any job count.  Monitored chunks hold exactly one
     device, so the label reduces to the per-device [kind-index] the
     health reports key on. *)
  let kind_tag = Defaults.kind_label kind in
  List.iter
    (fun o ->
      Ctx.absorb ctx o.sub;
      Ctx.absorb_monitor ctx
        ~labels:
          [ ("device", Printf.sprintf "%s-%d" kind_tag o.chunk.Parallel.Pool.lo) ]
        o.mon;
      Ctx.absorb_obs ctx o.obs)
    outcomes;
  let snapshots =
    List.init (days + 1) (fun day ->
        let alive = ref 0 and capacity = ref 0 in
        List.iter
          (fun o ->
            alive := !alive + o.alive_by_day.(day);
            capacity := !capacity + o.cap_by_day.(day))
          outcomes;
        { day; alive = !alive; capacity_opages = !capacity })
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    kind;
    devices;
    snapshots;
    total_host_writes = sum (fun o -> o.acc_host_writes);
    wear_deaths = sum (fun o -> o.acc_wear_deaths);
    afr_deaths = sum (fun o -> o.acc_afr_deaths);
  }
