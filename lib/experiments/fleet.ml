type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = { day : int; alive : int; capacity_opages : int }

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

(* Each device's life is simulated independently: its creation stream,
   workload stream and failure-injection stream are all split off the
   root RNG in submission order (device-major, three streams per
   device) before any task runs, so the outcome is a pure function of
   (seed, device index) — identical however devices are grouped into
   chunks and whatever pool runs them. *)
type device_streams = {
  dev_rng : Sim.Rng.t;
  wl_rng : Sim.Rng.t;
  afr_rng : Sim.Rng.t;
}

(* Chunk-local accumulator: one scratch registry, one scratch monitor
   and plain per-day sums shared by every device of the chunk.  Created
   once per chunk on the worker that runs it, folded device by device
   with no synchronization, merged into the context once at the
   barrier. *)
type chunk_acc = {
  chunk : Parallel.Pool.chunk;
  sub : Telemetry.Registry.t;
  mon : Monitor.Engine.t option;
  obs : Obs.Fleet_report.Acc.t option;
  alive_by_day : int array; (* live devices per day 0 .. days *)
  cap_by_day : int array; (* summed live capacity per day *)
  mutable acc_host_writes : int;
  mutable acc_wear_deaths : int;
  mutable acc_afr_deaths : int;
}

let simulate_device ~kind ~days ~dwpd ~afr_per_day ~aging ~epoch_days ~streams
    acc index =
  let s : device_streams = streams.(index) in
  let device = Defaults.make_device_rng ~registry:acc.sub kind ~rng:s.dev_rng in
  let sink = Option.bind acc.mon Monitor.Engine.sink in
  (* Liveness/capacity gauges exist only for the monitor: they feed the
     health model's alive and capacity series. *)
  let liveness =
    Option.map
      (fun _ ->
        ( Telemetry.Registry.gauge acc.sub
            ~help:"1 while the device still accepts writes" "device_alive",
          Telemetry.Registry.gauge acc.sub
            ~help:"Current logical capacity in oPages"
            "device_capacity_opages" ))
      acc.mon
  in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.
  in
  let afr_dead = ref false and wear_dead = ref false in
  let alive () =
    (not !afr_dead) && (not !wear_dead) && Ftl.Device_intf.alive device
  in
  let capacity () =
    if alive () then Ftl.Device_intf.logical_capacity device else 0
  in
  let sample day =
    match acc.mon with
    | Some mon when Monitor.Engine.due mon ~tick:day || day = 0 || day = days
      ->
        Option.iter
          (fun (alive_g, cap_g) ->
            Telemetry.Registry.Gauge.set alive_g (if alive () then 1. else 0.);
            Telemetry.Registry.Gauge.set cap_g (float_of_int (capacity ())))
          liveness;
        Monitor.Engine.sample mon ~time:(float_of_int day) acc.sub
    | _ -> ()
  in
  let record day =
    if alive () then begin
      acc.alive_by_day.(day) <- acc.alive_by_day.(day) + 1;
      acc.cap_by_day.(day) <- acc.cap_by_day.(day) + capacity ()
    end
  in
  record 0;
  sample 0;
  Telemetry.Trace.with_span ?sink
    ~args:[ ("device", string_of_int index) ]
    "fleet:device"
    (fun () ->
      (* Days advance one epoch at a time: [epoch_days] days' quota in a
         single aging call, one AFR draw at the compounded hazard, and
         recording/sampling only at epoch boundaries.  With the default
         [epoch_days = 1] each epoch is one day and every step below
         reduces exactly to the historical per-day loop (quota times
         [*. 1.], the hazard guard keeps the raw [afr_per_day]). *)
      let day = ref 1 in
      while !day <= days do
        let span_days = Stdlib.min epoch_days (days - !day + 1) in
        let upto = !day + span_days - 1 in
        if alive () then
          Telemetry.Trace.with_span ?sink
            ~args:[ ("day", string_of_int !day) ]
            "fleet:day"
            (fun () ->
              (* Random, non-wear failure (controller, DRAM, firmware): the
                 ~1%-AFR class of failures the field studies report.  One
                 draw per epoch at the compounded per-epoch probability;
                 the device is then down for the whole epoch, the same
                 day-granular approximation the per-day loop makes. *)
              let p_fail =
                if span_days = 1 then afr_per_day
                else 1. -. ((1. -. afr_per_day) ** float_of_int span_days)
              in
              if Sim.Rng.chance s.afr_rng p_fail then afr_dead := true
              else begin
                let quota =
                  if span_days = 1 then
                    int_of_float (dwpd *. float_of_int (capacity ()))
                  else
                    int_of_float
                      (dwpd *. float_of_int (capacity ())
                      *. float_of_int span_days)
                in
                let outcome =
                  Workload.Aging.run_epoch ~path:aging ~rng:s.wl_rng ~pattern
                    ~device ~quota ()
                in
                acc.acc_host_writes <-
                  acc.acc_host_writes + outcome.Workload.Aging.host_writes;
                if outcome.Workload.Aging.died then wear_dead := true
              end);
        record upto;
        sample upto;
        day := upto + 1
      done);
  if !wear_dead then acc.acc_wear_deaths <- acc.acc_wear_deaths + 1;
  if !afr_dead then acc.acc_afr_deaths <- acc.acc_afr_deaths + 1;
  (* One wear observation per device at end of life(time window): the
     fleet report's whole input.  The media scan is O(device) but runs
     once per device per run, not per op. *)
  Option.iter
    (fun o ->
      let w = Ftl.Device_intf.wear_stats device in
      let bg = Ftl.Device_intf.bg_stats device in
      Obs.Fleet_report.Acc.observe o
        {
          Obs.Fleet_report.id =
            Printf.sprintf "%s-%d" (Defaults.kind_label kind) index;
          pec_max = w.Ftl.Device_intf.pec_max;
          pec_min = w.Ftl.Device_intf.pec_min;
          rber_worst = w.Ftl.Device_intf.rber_worst;
          tolerable_rber = w.Ftl.Device_intf.tolerable_rber;
          retries = bg.Ftl.Device_intf.read_retries;
          escalations = bg.Ftl.Device_intf.live_repair_attempts;
          reclaims = bg.Ftl.Device_intf.read_reclaims;
          host_writes = Ftl.Device_intf.host_writes device;
          alive = alive ();
        })
    acc.obs

(* Chunk sizing depends only on the fleet shape — never on the job
   count, which must not be observable.  A monitored fleet pins one
   device per chunk so each device keeps its own scratch monitor and
   [device=<kind>-<i>] series; unmonitored fleets use up to 64 chunks,
   plenty of slack for any realistic pool while amortizing the
   per-chunk registry and queue round-trip over many devices. *)
let default_chunk_size ~devices ~monitored =
  if monitored then 1 else Stdlib.max 1 ((devices + 63) / 64)

let run ?(devices = Defaults.fleet_devices) ?(days = 150) ?(dwpd = 1.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) ?(ctx = Ctx.default)
    ?chunk_size ?(aging = Workload.Aging.Auto) ?(epoch_days = 1) kind =
  if epoch_days < 1 then invalid_arg "Fleet.run: epoch_days must be >= 1";
  let root = Sim.Rng.create seed in
  let streams =
    Array.init devices (fun _ ->
        { dev_rng = root; wl_rng = root; afr_rng = root })
  in
  (* split order matters: three streams per device, device-major *)
  for i = 0 to devices - 1 do
    let dev_rng = Sim.Rng.split root in
    let wl_rng = Sim.Rng.split root in
    let afr_rng = Sim.Rng.split root in
    streams.(i) <- { dev_rng; wl_rng; afr_rng }
  done;
  let chunk_size =
    match chunk_size with
    | Some size -> size
    | None ->
        default_chunk_size ~devices
          ~monitored:(Option.is_some ctx.Ctx.monitor)
  in
  let outcomes =
    Parallel.Pool.accumulate ctx.Ctx.pool ~chunk_size ~n:devices
      {
        Parallel.Pool.Accumulator.create =
          (fun chunk ->
            {
              chunk;
              sub = Ctx.sub_registry ctx;
              mon = Ctx.sub_monitor ctx;
              obs = Ctx.sub_obs ctx;
              alive_by_day = Array.make (days + 1) 0;
              cap_by_day = Array.make (days + 1) 0;
              acc_host_writes = 0;
              acc_wear_deaths = 0;
              acc_afr_deaths = 0;
            });
        item =
          simulate_device ~kind ~days ~dwpd ~afr_per_day ~aging ~epoch_days
            ~streams;
        finish = Fun.id;
      }
  in
  (* Reduce in submission (= chunk) order: sums are order-insensitive,
     the registry and monitor merges are not (gauges keep the last
     write, spans splice where they land), so everything stays
     deterministic at any job count.  Monitored chunks hold exactly one
     device, so the label reduces to the per-device [kind-index] the
     health reports key on. *)
  let kind_tag = Defaults.kind_label kind in
  List.iter
    (fun o ->
      Ctx.absorb ctx o.sub;
      Ctx.absorb_monitor ctx
        ~labels:
          [ ("device", Printf.sprintf "%s-%d" kind_tag o.chunk.Parallel.Pool.lo) ]
        o.mon;
      Ctx.absorb_obs ctx o.obs)
    outcomes;
  (* Devices record only at epoch boundaries, so snapshots exist only
     there: day 0, then the end of each epoch (the final partial epoch
     ends on [days]).  epoch_days = 1 yields the historical every-day
     list. *)
  let recorded_days =
    let rec boundaries day acc =
      if day > days then List.rev acc
      else
        let upto = Stdlib.min days (day + epoch_days - 1) in
        boundaries (upto + 1) (upto :: acc)
    in
    0 :: boundaries 1 []
  in
  let snapshots =
    List.map
      (fun day ->
        let alive = ref 0 and capacity = ref 0 in
        List.iter
          (fun o ->
            alive := !alive + o.alive_by_day.(day);
            capacity := !capacity + o.cap_by_day.(day))
          outcomes;
        { day; alive = !alive; capacity_opages = !capacity })
      recorded_days
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    kind;
    devices;
    snapshots;
    total_host_writes = sum (fun o -> o.acc_host_writes);
    wear_deaths = sum (fun o -> o.acc_wear_deaths);
    afr_deaths = sum (fun o -> o.acc_afr_deaths);
  }
