type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = { day : int; alive : int; capacity_opages : int }

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

(* Each device's life is simulated independently: its creation stream,
   workload stream and failure-injection stream are all split off the
   root RNG in submission order before any task runs, so the outcome is
   a pure function of (seed, device index) — identical whether the tasks
   run sequentially or on a pool, in any interleaving. *)
type device_streams = {
  dev_rng : Sim.Rng.t;
  wl_rng : Sim.Rng.t;
  afr_rng : Sim.Rng.t;
  sub : Telemetry.Registry.t;
}

type device_outcome = {
  per_day : (bool * int) array; (* (alive, capacity) for day 0 .. days *)
  host_writes : int;
  wear_dead : bool;
  afr_dead : bool;
  out_sub : Telemetry.Registry.t;
}

let simulate_device ~kind ~days ~dwpd ~afr_per_day streams =
  let device =
    Defaults.make_device_rng ~registry:streams.sub kind ~rng:streams.dev_rng
  in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.
  in
  let afr_dead = ref false and wear_dead = ref false in
  let host_writes = ref 0 in
  let alive () =
    (not !afr_dead) && (not !wear_dead) && Ftl.Device_intf.alive device
  in
  let capacity () =
    if alive () then Ftl.Device_intf.logical_capacity device else 0
  in
  let per_day = Array.make (days + 1) (false, 0) in
  per_day.(0) <- (alive (), capacity ());
  for day = 1 to days do
    if alive () then begin
      (* Random, non-wear failure (controller, DRAM, firmware): the
         ~1%-AFR class of failures the field studies report. *)
      if Sim.Rng.chance streams.afr_rng afr_per_day then afr_dead := true
      else begin
        let quota = int_of_float (dwpd *. float_of_int (capacity ())) in
        let outcome =
          Workload.Aging.run_until ~rng:streams.wl_rng ~pattern ~device
            ~stop:(fun writes -> writes >= quota)
            ()
        in
        host_writes := !host_writes + outcome.Workload.Aging.host_writes;
        if outcome.Workload.Aging.died then wear_dead := true
      end
    end;
    per_day.(day) <- (alive (), capacity ())
  done;
  {
    per_day;
    host_writes = !host_writes;
    wear_dead = !wear_dead;
    afr_dead = !afr_dead;
    out_sub = streams.sub;
  }

let run ?(devices = Defaults.fleet_devices) ?(days = 150) ?(dwpd = 1.)
    ?(afr_per_day = 0.0011) ?(seed = Defaults.fleet_seed) ?(ctx = Ctx.default)
    kind =
  let root = Sim.Rng.create seed in
  let streams =
    List.init devices (fun _ ->
        (* split order matters: three streams per device, device-major *)
        let dev_rng = Sim.Rng.split root in
        let wl_rng = Sim.Rng.split root in
        let afr_rng = Sim.Rng.split root in
        { dev_rng; wl_rng; afr_rng; sub = Ctx.sub_registry ctx })
  in
  let outcomes =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (simulate_device ~kind ~days ~dwpd ~afr_per_day)
      streams
  in
  (* Reduce in submission order: sums are order-insensitive, the registry
     merge is not (gauges keep the last write), so both stay deterministic
     at any job count. *)
  List.iter (fun o -> Ctx.absorb ctx o.out_sub) outcomes;
  let snapshots =
    List.init (days + 1) (fun day ->
        let alive = ref 0 and capacity = ref 0 in
        List.iter
          (fun o ->
            let a, c = o.per_day.(day) in
            if a then begin
              incr alive;
              capacity := !capacity + c
            end)
          outcomes;
        { day; alive = !alive; capacity_opages = !capacity })
  in
  let sum f = List.fold_left (fun acc o -> acc + f o) 0 outcomes in
  {
    kind;
    devices;
    snapshots;
    total_host_writes = sum (fun o -> o.host_writes);
    wear_deaths = sum (fun o -> if o.wear_dead then 1 else 0);
    afr_deaths = sum (fun o -> if o.afr_dead then 1 else 0);
  }
