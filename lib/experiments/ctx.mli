(** Execution context threaded through experiment runners.

    Replaces the deprecated process-global telemetry registry: a runner
    receives the registry its components should bind metrics against and,
    optionally, a domain pool to fan independent simulations across.  The
    default context is fully inert — a null registry and no pool — so
    callers that don't care pay nothing. *)

type t = {
  registry : Telemetry.Registry.t;
      (** Where components created by the runner bind their metrics.
          {!Telemetry.Registry.null} keeps telemetry off. *)
  pool : Parallel.Pool.t option;
      (** Run independent units of work (fleet devices, whole experiments)
          on this pool; [None] means run sequentially on the caller's
          domain.  Output is byte-identical either way. *)
}

val default : t
(** Null registry, no pool. *)

val make : ?registry:Telemetry.Registry.t -> ?pool:Parallel.Pool.t -> unit -> t

val sequential : t -> t
(** Same context with the pool stripped.  Dispatchers hand this to the
    tasks they submit: a task running {e on} the pool must never submit
    into it (see {!Parallel.Pool}). *)

val sub_registry : t -> Telemetry.Registry.t
(** A scratch registry for one parallel task: null when the context's
    registry is null (so inactive telemetry stays free), otherwise a
    fresh live registry the task's components bind against.  Merge it
    back with {!absorb} {e in submission order} to keep metric output
    independent of execution interleaving. *)

val absorb : t -> Telemetry.Registry.t -> unit
(** [absorb ctx sub] merges a task's scratch registry into the context
    registry ({!Telemetry.Registry.merge}); no-op when either is null. *)
