(** Execution context threaded through experiment runners.

    Replaces the deprecated process-global telemetry registry: a runner
    receives the registry its components should bind metrics against and,
    optionally, a domain pool to fan independent simulations across.  The
    default context is fully inert — a null registry and no pool — so
    callers that don't care pay nothing. *)

type t = {
  registry : Telemetry.Registry.t;
      (** Where components created by the runner bind their metrics.
          {!Telemetry.Registry.null} keeps telemetry off. *)
  pool : Parallel.Pool.t option;
      (** Run independent units of work (fleet devices, whole experiments)
          on this pool; [None] means run sequentially on the caller's
          domain.  Output is byte-identical either way. *)
  monitor : Monitor.Engine.t option;
      (** Longitudinal health monitor sampling the registry over simulated
          time; [None] (the default) keeps the whole sampling path off. *)
  obs : Obs.Fleet_report.Acc.t option;
      (** Fleet-report accumulator collecting one end-of-run wear
          observation per device; [None] (the default) keeps the
          observability plane off. *)
}

val default : t
(** Null registry, no pool, no monitor. *)

val make :
  ?registry:Telemetry.Registry.t ->
  ?pool:Parallel.Pool.t ->
  ?monitor:Monitor.Engine.t ->
  ?obs:Obs.Fleet_report.Acc.t ->
  unit ->
  t

val sequential : t -> t
(** Same context with the pool stripped.  Dispatchers hand this to the
    tasks they submit: a task running {e on} the pool must never submit
    into it (see {!Parallel.Pool}). *)

val sub_registry : t -> Telemetry.Registry.t
(** A scratch registry for one parallel task: null when both the
    context's registry is null and no monitor is attached (so inactive
    telemetry stays free), otherwise a fresh live registry the task's
    components bind against — a monitor needs live metrics to sample
    even when the caller never exports them.  Merge it back with
    {!absorb} {e in submission order} to keep metric output independent
    of execution interleaving. *)

val absorb : t -> Telemetry.Registry.t -> unit
(** [absorb ctx sub] merges a task's scratch registry into the context
    registry ({!Telemetry.Registry.merge}); no-op when either is null. *)

val sub_monitor : t -> Monitor.Engine.t option
(** A scratch monitor engine for one parallel task ({!Monitor.Engine.sub}):
    same cadence/rules as the context's monitor, fresh state.  [None] when
    the context carries no monitor.  Like {!sub_registry}, the task samples
    into it privately; merge back with {!absorb_monitor} in submission
    order so timelines are independent of execution interleaving. *)

val absorb_monitor : t -> ?labels:(string * string) list -> Monitor.Engine.t option -> unit
(** Merge a task's scratch monitor into the context monitor
    ({!Monitor.Engine.absorb}), prefixing every series/alert key with
    [labels] (e.g. [("device", "cvss-3")]).  No-op when either side is
    [None]. *)

val sub_obs : t -> Obs.Fleet_report.Acc.t option
(** A scratch fleet-report accumulator for one parallel task
    ({!Obs.Fleet_report.Acc.sub}); [None] when the context carries
    none.  Merge back with {!absorb_obs} in submission order. *)

val absorb_obs : t -> Obs.Fleet_report.Acc.t option -> unit
(** Merge a task's scratch accumulator into the context's
    ({!Obs.Fleet_report.Acc.merge}); no-op when either side is [None]. *)

val map_cells :
  t ->
  'cell array ->
  (sub:Telemetry.Registry.t ->
  mon:Monitor.Engine.t option ->
  obs:Obs.Fleet_report.Acc.t option ->
  'cell ->
  'r) ->
  'r list
(** Fan an array of self-contained experiment cells over the context's
    pool via {!Parallel.Pool.map_chunked} (one cell per chunk — cells
    are heterogeneous), handing each invocation a fresh {!sub_registry}
    and {!sub_monitor} created on the worker.  Results come back in
    cell order; the caller renders/absorbs them in that order to stay
    byte-identical at any job count. *)
