(** The [salamander monitor] experiment: a wear-heavy fleet with the
    longitudinal health monitor attached.

    Runs a small {!Fleet} deployment hot enough (2 DWPD against a
    60-cycle calibration) that some devices visibly consume their
    margin — and some die — within the window, then summarizes what the
    monitor collected: sample count, series count and the alert log.
    Timeline/trace export and the health-report rendering live in the
    CLI layer, which owns the files; this module only drives the
    simulation and prints the run summary. *)

type result = {
  fleet : Fleet.result;
  samples : int;  (** {!Monitor.Engine.samples} after the run; 0 without a monitor *)
  series : int;  (** distinct time series collected *)
  transitions : int;  (** alert state changes recorded *)
}

val run :
  ?kind:[ `Baseline | `Cvss | `Shrinks | `Regens ] ->
  ?devices:int ->
  ?days:int ->
  ?dwpd:float ->
  ?afr_per_day:float ->
  ?seed:int ->
  ?ctx:Ctx.t ->
  Format.formatter ->
  result
(** Defaults: 6 [`Regens] devices, 25 days, 2.0 DWPD, AFR 0.0011/day,
    seed {!Defaults.fleet_seed}.  Deterministic for a fixed seed at any
    job count (the {!Fleet.run} guarantee). *)
