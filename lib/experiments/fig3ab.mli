(** FIG3A / FIG3B — functioning devices and available capacity over time
    for a deployed batch, baseline vs RegenS (ShrinkS and CVSS included
    for context).

    Expected shape (paper Fig. 3a/3b): the baseline's alive count and
    capacity fall off a cliff as the batch reaches its wear limit
    together; Salamander flattens both slopes because devices shrink
    gradually instead of failing, and RegenS flattens them further. *)

val run :
  ?days:int ->
  ?years:int ->
  ?devices:int ->
  ?dwpd:float ->
  ?aging:Workload.Aging.path ->
  ?epoch_days:int ->
  ?kinds:Fleet.kind list ->
  ?ctx:Ctx.t ->
  Format.formatter ->
  unit
(** [ctx] supplies the telemetry registry and, when it carries a pool,
    ages each fleet's devices across domains (output unchanged).
    [kinds] restricts the comparison (default: all four designs) — the
    CLI's [fleet --mode regens --devices 100000] path runs one kind at
    datacenter scale; [dwpd] scales the daily write quota.

    [years] overrides [days] with [365 * years] (default: 150 days);
    [epoch_days] coalesces days into multi-day aging epochs and [aging]
    picks the epoch driver — both forwarded to {!Fleet.run}.  The report
    tables stride by 5 days, rounded up to whole epochs when epochs are
    coarser. *)
