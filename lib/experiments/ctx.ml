type t = {
  registry : Telemetry.Registry.t;
  pool : Parallel.Pool.t option;
  monitor : Monitor.Engine.t option;
  obs : Obs.Fleet_report.Acc.t option;
}

let default =
  { registry = Telemetry.Registry.null; pool = None; monitor = None; obs = None }

let make ?(registry = Telemetry.Registry.null) ?pool ?monitor ?obs () =
  { registry; pool; monitor; obs }

let sequential ctx = { ctx with pool = None }

let sub_registry ctx =
  (* A monitor samples the task's scratch registry, so it forces live
     sub-registries even when the context registry itself is null.
     Scratch registries are unshared (plain-ref metric cells): exactly
     one domain owns one until the barrier merge publishes it. *)
  if Telemetry.Registry.is_null ctx.registry && Option.is_none ctx.monitor then
    Telemetry.Registry.null
  else Telemetry.Registry.create ~shared:false ()

let absorb ctx sub = Telemetry.Registry.merge ~into:ctx.registry sub
let sub_monitor ctx = Option.map Monitor.Engine.sub ctx.monitor
let sub_obs ctx = Option.map Obs.Fleet_report.Acc.sub ctx.obs

let absorb_obs ctx sub =
  match (ctx.obs, sub) with
  | Some into, Some sub -> Obs.Fleet_report.Acc.merge ~into sub
  | _ -> ()

let absorb_monitor ctx ?labels sub =
  match (ctx.monitor, sub) with
  | Some into, Some sub -> Monitor.Engine.absorb ~into ?labels sub
  | _ -> ()

let map_cells ctx cells f =
  (* Heterogeneous experiment cells don't bin-pack, so the chunk is one
     cell; what the chunked path still buys is the single batched
     submission and the scratch registry/monitor created once on the
     worker that runs the cell. *)
  Parallel.Pool.map_chunked ctx.pool ~chunk_size:1 ~n:(Array.length cells)
    (fun (c : Parallel.Pool.chunk) ->
      let sub = sub_registry ctx in
      let mon = sub_monitor ctx in
      let obs = sub_obs ctx in
      f ~sub ~mon ~obs cells.(c.lo))
