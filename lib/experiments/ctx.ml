type t = { registry : Telemetry.Registry.t; pool : Parallel.Pool.t option }

let default = { registry = Telemetry.Registry.null; pool = None }
let make ?(registry = Telemetry.Registry.null) ?pool () = { registry; pool }
let sequential ctx = { ctx with pool = None }

let sub_registry ctx =
  if Telemetry.Registry.is_null ctx.registry then Telemetry.Registry.null
  else Telemetry.Registry.create ()

let absorb ctx sub = Telemetry.Registry.merge ~into:ctx.registry sub
