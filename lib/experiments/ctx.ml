type t = {
  registry : Telemetry.Registry.t;
  pool : Parallel.Pool.t option;
  monitor : Monitor.Engine.t option;
}

let default = { registry = Telemetry.Registry.null; pool = None; monitor = None }

let make ?(registry = Telemetry.Registry.null) ?pool ?monitor () =
  { registry; pool; monitor }

let sequential ctx = { ctx with pool = None }

let sub_registry ctx =
  (* A monitor samples the task's scratch registry, so it forces live
     sub-registries even when the context registry itself is null. *)
  if Telemetry.Registry.is_null ctx.registry && Option.is_none ctx.monitor then
    Telemetry.Registry.null
  else Telemetry.Registry.create ()

let absorb ctx sub = Telemetry.Registry.merge ~into:ctx.registry sub
let sub_monitor ctx = Option.map Monitor.Engine.sub ctx.monitor

let absorb_monitor ctx ?labels sub =
  match (ctx.monitor, sub) with
  | Some into, Some sub -> Monitor.Engine.absorb ~into ?labels sub
  | _ -> ()
