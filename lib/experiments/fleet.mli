(** Fleet aging simulation behind Figs. 3a and 3b: a batch of identical
    devices deployed together, each absorbing a daily write quota (DWPD),
    with wear-driven failures from the flash model and non-wear failures
    injected at a configurable rate (the field AFR the paper cites).

    Time is in scaled days: one day = one drive-write-per-day of the
    device's *current* capacity, so a device with target_pec 60 and write
    amplification ~1.3 lives ~45 scaled days.  Shrinking devices write
    less per day as they shrink, exactly like a real deployment whose
    data has been rebalanced away. *)

type kind = [ `Baseline | `Cvss | `Shrinks | `Regens ]

type snapshot = {
  day : int;
  alive : int;
  capacity_opages : int;  (** summed over live devices *)
}

type result = {
  kind : kind;
  devices : int;
  snapshots : snapshot list;
      (** one per epoch boundary (every day by default), day 0 first *)
  total_host_writes : int;
  wear_deaths : int;
  afr_deaths : int;
}

val run :
  ?devices:int ->
  ?days:int ->
  ?dwpd:float ->
  ?afr_per_day:float ->
  ?seed:int ->
  ?ctx:Ctx.t ->
  ?chunk_size:int ->
  ?aging:Workload.Aging.path ->
  ?epoch_days:int ->
  kind ->
  result
(** Defaults: {!Defaults.fleet_devices} devices, 150 days, 1 DWPD,
    AFR 0.0011/day (1%/year compressed by the same ~40x factor as the
    wear scale), seed {!Defaults.fleet_seed}.

    Each device runs as an independent simulation whose RNG streams are
    split off the root seed in submission order, so for a fixed [seed]
    the result — and any telemetry merged into [ctx]'s registry — is
    identical whether [ctx] carries a pool or not, at any domain count.
    With [ctx.pool] set, devices age in parallel, chunked: one pool task
    simulates a run of consecutive devices into a chunk-local scratch
    registry/monitor ({!Parallel.Pool.accumulate}) that is merged once
    at the barrier.  [chunk_size] overrides the sizing policy (one
    device per chunk when a monitor is attached — each device keeps its
    own label — otherwise up to 64 chunks across the fleet); the
    aggregate [result] is the same at any chunk size, and chunk sizing
    never depends on the job count.

    [aging] picks the epoch driver ({!Workload.Aging.path}; default
    [Auto], which takes the devices' bulk-aging fast path — bit-exact
    with [Per_op], which remains available as the differential oracle).
    [epoch_days] (default 1) coalesces that many simulated days into one
    aging epoch: one quota of [epoch_days] days' writes, one AFR draw at
    the compounded hazard, and recording/sampling/snapshots only at
    epoch boundaries — the multi-year fleet-scale configuration.  With
    [epoch_days = 1] every step reduces exactly to the per-day loop.
    @raise Invalid_argument if [epoch_days < 1].

    When [ctx] carries a monitor, each device samples its scratch
    registry into a {!Ctx.sub_monitor} engine at the monitor's epoch
    interval (plus day 0 and the final day) with time = the simulated
    day, wraps its life in a [fleet:device] span with per-day [fleet:day]
    child spans, and is merged back under a [device=<kind>-<i>] label —
    still byte-identical at any job count. *)
