(** TRAFFIC: request latency under multi-tenant load (ROADMAP item 3).

    One shared trace ({!Traffic.Gen}) replayed against the three device
    designs, fault-free and under a chaos plan: six cells fanned over
    the pool, rendered and absorbed in submission order, so the report
    is byte-identical at any job count.  Each cell reports p50/p95/p99/
    p999 request latency (all/read/write), the per-tenant QoS summary
    (throttles, SLO violations, busiest tenants) and the background
    activity the latency model charged, plus tail root-cause
    attribution: the dominant {!Obs.Cause} among p999-and-above ops,
    the worst tagged exemplar, and the heavy-hitter cause mixes; the
    final table compares tails across designs and shows what the fault
    plan does to them. *)

type row = {
  label : string;  (** device kind *)
  chaos : bool;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max_us : float;
  completed : int;
  throttled : int;
  violations : int;
  read_errors : int;
  tail_cause : string;
      (** dominant cause among p999-and-above ops (["gc"], ["retry"],
          ...); ["untagged"] when no background work billed into the
          tail, ["-"] on empty cells *)
}

val make_trace : tenants:int -> ops:int -> seed:int -> Workload.Trace.t
(** The trace {!run} would generate for these parameters — the CLI's
    [--emit-trace] writes exactly this, so a saved trace replays
    identically to the generated one. *)

val run :
  ?ctx:Ctx.t ->
  ?tenants:int ->
  ?ops:int ->
  ?seed:int ->
  ?batch:int ->
  ?qos:bool ->
  ?plan:Faults.Plan.t ->
  ?trace:Workload.Trace.t ->
  Format.formatter ->
  row list
(** Run the six cells (defaults: 64 tenants, 12k ops, seed 42, batches
    of 16, QoS on, the [media] fault preset).  [trace] replaces the
    generated trace (the CLI's [--trace]); its events are folded into
    the tenant population and device capacity by the replayer.  Returns
    one row per cell in report order. *)

val rows_to_json : row list -> string
(** The latency table as one JSON object (the CI artifact). *)
