type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  host_writes : int;
  reads : int;
  read_errors : int;
  error_rate_ppm : float;
  reclaims : int;
}

let kinds : [ `Baseline | `Cvss | `Shrinks | `Regens ] list =
  [ `Baseline; `Cvss; `Shrinks; `Regens ]

(* The defaults model with read disturb switched on: ~1e-8 RBER per read
   keeps disturb a second-order effect next to wear, as on real TLC. *)
let disturb_model =
  let profile =
    Salamander.Tiredness.profile ~max_level:1 Defaults.geometry
  in
  Flash.Rber_model.calibrate
    ~target_rber:
      (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
    ~target_pec:Defaults.target_pec ~read_disturb_per_read:1e-8 ()

let make_device ~registry kind ~seed =
  let rng = Sim.Rng.create seed in
  let geometry = Defaults.geometry in
  match kind with
  | `Baseline ->
      let d =
        Ftl.Baseline_ssd.create ~registry ~geometry ~model:disturb_model ~rng
          ()
      in
      (Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d),
       fun () -> Ftl.Engine.read_reclaims (Ftl.Baseline_ssd.engine d))
  | `Cvss ->
      let d = Ftl.Cvss.create ~registry ~geometry ~model:disturb_model ~rng () in
      (Ftl.Device_intf.Packed ((module Ftl.Cvss), d),
       fun () -> Ftl.Engine.read_reclaims (Ftl.Cvss.engine d))
  | (`Shrinks | `Regens) as k ->
      let mode =
        match k with
        | `Shrinks -> Salamander.Device.Shrink_s
        | `Regens -> Salamander.Device.Regen_s
      in
      let d =
        Salamander.Device.create ~config:(Defaults.salamander_config ~mode)
          ~registry ~geometry ~model:disturb_model ~rng ()
      in
      (Salamander.Device.pack d,
       fun () -> Ftl.Engine.read_reclaims (Salamander.Device.engine d))

let measure_kind ~registry kind ~seed =
  let device, reclaims = make_device ~registry kind ~seed in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity device))))
      ~read_fraction:0.3
  in
  let outcome =
    Workload.Aging.run ~max_writes:50_000_000 ~rng:(Sim.Rng.create (seed + 1))
      ~pattern ~device ()
  in
  {
    kind;
    host_writes = outcome.Workload.Aging.host_writes;
    reads = outcome.Workload.Aging.reads;
    read_errors = outcome.Workload.Aging.uncorrectable_reads;
    error_rate_ppm =
      1e6
      *. float_of_int outcome.Workload.Aging.uncorrectable_reads
      /. float_of_int (Stdlib.max 1 outcome.Workload.Aging.reads);
    reclaims = reclaims ();
  }

let measure ?(seed = 9090) ?(ctx = Ctx.default) () =
  let rows =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun kind ->
        let sub = Ctx.sub_registry ctx in
        (measure_kind ~registry:sub kind ~seed, sub))
      kinds
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) rows;
  List.map fst rows

let run ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "TAB-UBER: residual read reliability over the whole device life (§1, §2)";
  let rows = measure ~ctx () in
  Report.table fmt
    ~header:
      [ "device"; "host writes"; "reads"; "read errors"; "errors/Mread";
        "read reclaims" ]
    ~rows:
      (List.map
         (fun r ->
           [
             Defaults.kind_label r.kind;
             string_of_int r.host_writes;
             string_of_int r.reads;
             string_of_int r.read_errors;
             Report.cell_f r.error_rate_ppm;
             string_of_int r.reclaims;
           ])
         rows);
  Report.note fmt
    "the paper's implicit reliability claim: Salamander's extra lifetime \
     is not bought with a worse residual error rate, because pages are \
     retired or re-coded at the same ECC-margin thresholds at every \
     level.  All designs hold the per-codeword failure budget at 1e-11, \
     so observing zero uncorrectable reads in ~10-17k reads is the \
     expected outcome for every design — the point is that the Salamander \
     columns absorb ~1.5-1.7x the writes at the same (vanishing) error \
     rate.  Read disturb is active (1e-8 RBER/read); the rising reclaim \
     counts show RegenS scrubbing harder as its L1 pages run closer to \
     their margins."
