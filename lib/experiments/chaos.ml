(* The fault classes are split between the arenas by which layer owns
   the matching tolerance mechanism; see chaos.mli. *)
let device_plan plan =
  List.filter
    (function
      | Faults.Plan.Silent_corruption _ | Faults.Plan.Device_death _ -> false
      | _ -> true)
    plan

let cluster_plan plan =
  List.filter (function Faults.Plan.Power_loss _ -> false | _ -> true) plan

let pp_injected fmt inj =
  List.iter
    (fun (cls, n) -> Format.fprintf fmt " %s=%d" cls n)
    (Faults.Injector.injected inj)

(* Monitor plumbing shared by both arenas: one epoch = one injector
   step.  Sampling is a no-op without a monitor. *)
let sample_step mon registry step =
  match mon with
  | Some m when Monitor.Engine.due m ~tick:step ->
      Monitor.Engine.sample m ~time:(float_of_int step) registry
  | _ -> ()

let sample_final mon registry steps =
  Option.iter
    (fun m -> Monitor.Engine.sample m ~time:(float_of_int steps) registry)
    mon

(* --- device arena -------------------------------------------------------- *)

let device_geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()

let run_device_arena ~registry ?mon ?obs ~plan ~seed ~steps fmt =
  let root = Sim.Rng.create seed in
  let inj_rng = Sim.Rng.split root in
  let chip_rng = Sim.Rng.split root in
  let engine_rng = Sim.Rng.split root in
  let op_rng = Sim.Rng.split root in
  let geometry = device_geometry in
  let chip =
    Flash.Chip.create ~registry ~rng:chip_rng ~geometry ~model:Defaults.model
      ()
  in
  let ecc = Ftl.Ecc_profile.of_geometry geometry in
  let policy =
    {
      (Ftl.Policy.always_fresh
         ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage)
      with
      Ftl.Policy.read_fail_prob =
        (fun ~rber ~block:_ ~page:_ ->
          Ftl.Ecc_profile.opage_read_fail_prob ecc ~rber);
      Ftl.Policy.should_reclaim =
        (fun ~rber ~block:_ ~page:_ -> Ftl.Ecc_profile.should_reclaim ecc ~rber);
    }
  in
  let capacity = Flash.Geometry.total_opages geometry * 2 / 5 in
  let engine =
    ref
      (Ftl.Engine.create ~registry ~chip ~rng:engine_rng ~policy
         ~logical_capacity:capacity ())
  in
  (* A power cut fires at the next crash site the engine crosses after
     the injector schedules it. *)
  let crash_armed = ref false in
  Ftl.Engine.set_crash_hook !engine
    (Some
       (fun _site ->
         if !crash_armed then begin
           crash_armed := false;
           raise Ftl.Engine.Power_loss
         end));
  let inj = Faults.Injector.create ~rng:inj_rng (device_plan plan) in
  let acked = Hashtbl.create 512 in
  let trimmed = Hashtbl.create 64 in
  let crashes = ref 0 in
  let with_crash f =
    try f ()
    with Ftl.Engine.Power_loss ->
      incr crashes;
      engine := Ftl.Engine.crash_rebuild !engine
  in
  Telemetry.Trace.with_span
    ?sink:(Option.bind mon Monitor.Engine.sink)
    ~args:[ ("arena", "device"); ("seed", string_of_int seed) ]
    "chaos:cell"
    (fun () ->
      for step = 0 to steps - 1 do
        List.iter
          (function
            | Faults.Injector.Inject { block; page; fault } ->
                Flash.Chip.inject chip ~block ~page fault
            | Faults.Injector.Power_cut -> crash_armed := true
            | Faults.Injector.Kill_device _ -> ())
          (Faults.Injector.step inj ~geometry ~step);
        let lba = Sim.Rng.int op_rng capacity in
        (match Sim.Rng.int op_rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 | 6 -> (
            let payload = Sim.Rng.int op_rng 1_000_000 in
            match Ftl.Engine.write !engine ~logical:lba ~payload with
            | Ok () ->
                Hashtbl.replace acked lba payload;
                Hashtbl.remove trimmed lba
            | Error `No_space -> ()
            | exception Ftl.Engine.Power_loss ->
                incr crashes;
                engine := Ftl.Engine.crash_rebuild !engine;
                (* The cut write was never acked: it may legally have landed
                   or vanished — read back and update the shadow to whichever
                   legal state the media is in. *)
                Faults.Verdict.reconcile_torn_write ~engine:!engine ~acked
                  ~trimmed ~logical:lba ~payload)
        | 7 | 8 -> ignore (Ftl.Engine.read !engine ~logical:lba)
        | _ ->
            Ftl.Engine.discard !engine ~logical:lba;
            Hashtbl.remove acked lba;
            Hashtbl.replace trimmed lba ());
        sample_step mon registry step
      done);
  (* Flush always crosses a crash site, so a cut armed on the last steps
     still lands before the verdict. *)
  with_crash (fun () -> ignore (Ftl.Engine.flush !engine));
  sample_final mon registry steps;
  let verdict = Faults.Verdict.check_engine ~engine:!engine ~acked ~trimmed in
  Format.fprintf fmt "arena device seed=%d: steps=%d crashes=%d@." seed steps
    !crashes;
  Format.fprintf fmt "  injected:%a@." pp_injected inj;
  Format.fprintf fmt
    "  tolerance: read_retries=%d retry_successes=%d read_reclaims=%d \
     chip_faults=%d@."
    (Ftl.Engine.read_retries !engine)
    (Ftl.Engine.retry_successes !engine)
    (Ftl.Engine.read_reclaims !engine)
    (Flash.Chip.faults_injected chip);
  Faults.Verdict.pp fmt verdict;
  Option.iter
    (fun acc ->
      let w = Flash.Chip.wear chip in
      Obs.Fleet_report.Acc.observe acc
        {
          Obs.Fleet_report.id = Printf.sprintf "device-%d" seed;
          pec_max = w.Flash.Chip.wear_pec_max;
          pec_min = w.Flash.Chip.wear_pec_min;
          rber_worst = w.Flash.Chip.wear_rber_worst;
          tolerable_rber = ecc.Ftl.Ecc_profile.tolerable_rber;
          retries = Ftl.Engine.read_retries !engine;
          escalations = Ftl.Engine.read_escalations !engine;
          reclaims = Ftl.Engine.read_reclaims !engine;
          host_writes = Ftl.Engine.host_writes !engine;
          alive = true;
        })
    obs;
  Faults.Verdict.all_ok verdict

(* --- cluster arena ------------------------------------------------------- *)

let cluster_devices = 6

type cluster_outcome = {
  ok : bool;
  capacity_opages : int;  (** exported LBAs still served by live devices *)
  unrecoverable : int;
  corrupt_served : int;
  lost_chunks : int;
  intact : int;
  degraded : int;
  live_attempts : int;
  live_successes : int;
}

let run_cluster_arena ~registry ?mon ?obs ?(obs_prefix = "cluster")
    ?(live_repair = false) ~plan ~seed ~steps fmt =
  let root = Sim.Rng.create seed in
  let inj_rng = Sim.Rng.split root in
  let op_rng = Sim.Rng.split root in
  let cluster = Difs.Cluster.create ~registry () in
  let devices =
    Array.init cluster_devices (fun i ->
        let rng = Sim.Rng.split root in
        let d =
          Salamander.Device.create
            ~config:(Defaults.salamander_config ~mode:Salamander.Device.Regen_s)
            ~registry ~geometry:Defaults.geometry ~model:Defaults.model ~rng ()
        in
        ignore (Difs.Cluster.add_device cluster ~node:i (Difs.Cluster.Salamander d));
        d)
  in
  let chips =
    Array.map (fun d -> Ftl.Engine.chip (Salamander.Device.engine d)) devices
  in
  if live_repair then Difs.Cluster.enable_live_repair cluster;
  let monotone = Faults.Verdict.Monotone.create () in
  let inj = Faults.Injector.create ~rng:inj_rng (cluster_plan plan) in
  let physical_per_chunk =
    Difs.Cluster.share_opages cluster * Difs.Cluster.total_shares cluster
  in
  let raw_capacity =
    cluster_devices * Flash.Geometry.total_opages Defaults.geometry
  in
  let chunk_count = raw_capacity * 30 / 100 / physical_per_chunk in
  for id = 0 to chunk_count - 1 do
    ignore (Difs.Cluster.write_chunk cluster id)
  done;
  Telemetry.Trace.with_span
    ?sink:(Option.bind mon Monitor.Engine.sink)
    ~args:[ ("arena", "cluster"); ("seed", string_of_int seed) ]
    "chaos:cell"
    (fun () ->
      for step = 0 to steps - 1 do
        (* Media faults land round-robin across the member chips; kills and
           scheduled events come straight from the plan. *)
        let chip = chips.(step mod cluster_devices) in
        List.iter
          (function
            | Faults.Injector.Inject { block; page; fault } ->
                Flash.Chip.inject chip ~block ~page fault
            | Faults.Injector.Kill_device victim ->
                Difs.Cluster.kill_device cluster (victim mod cluster_devices)
            | Faults.Injector.Power_cut -> ())
          (Faults.Injector.step inj ~geometry:(Flash.Chip.geometry chip) ~step);
        let id = Sim.Rng.int op_rng chunk_count in
        (match Sim.Rng.int op_rng 10 with
        | 0 | 1 | 2 | 3 | 4 | 5 -> ignore (Difs.Cluster.write_chunk cluster id)
        | 6 | 7 | 8 -> ignore (Difs.Cluster.read_chunk cluster id)
        | _ -> Difs.Cluster.delete_chunk cluster id);
        if (step + 1) mod 50 = 0 then ignore (Difs.Cluster.scrub cluster);
        (* Live repair may stop [unrecoverable_opages] from growing; it
           must never roll it back. *)
        Faults.Verdict.Monotone.observe monotone
          ~name:"difs_unrecoverable_opages"
          (Difs.Cluster.unrecoverable_opages cluster);
        sample_step mon registry step
      done);
  Difs.Cluster.repair cluster;
  ignore (Difs.Cluster.scrub cluster);
  Faults.Verdict.Monotone.observe monotone ~name:"difs_unrecoverable_opages"
    (Difs.Cluster.unrecoverable_opages cluster);
  sample_final mon registry steps;
  let verdict =
    Faults.Verdict.check_cluster cluster
    @ Faults.Verdict.Monotone.checks monotone
  in
  let health = Difs.Cluster.health cluster in
  Format.fprintf fmt "arena cluster seed=%d: steps=%d devices=%d/%d%s@." seed
    steps
    (Difs.Cluster.devices_alive cluster)
    cluster_devices
    (if live_repair then " live-repair=on" else "");
  Format.fprintf fmt "  injected:%a@." pp_injected inj;
  Format.fprintf fmt
    "  tolerance: scrub_sweeps=%d mismatches=%d scrub_repairs=%d \
     rebuilt_shares=%d rebuild_aborts=%d kill_ignored=%d@."
    (Difs.Cluster.scrub_sweeps cluster)
    (Difs.Cluster.scrub_mismatches cluster)
    (Difs.Cluster.scrub_repairs cluster)
    (Difs.Cluster.rebuilt_shares cluster)
    (Difs.Cluster.rebuild_aborts cluster)
    (Difs.Cluster.kill_ignored cluster);
  Format.fprintf fmt
    "  live-repair: attempts=%d successes=%d replica_reads=%d rewritten=%d \
     failures=%d corrupt_served=%d@."
    (Difs.Cluster.live_repair_attempts cluster)
    (Difs.Cluster.live_repair_successes cluster)
    (Difs.Cluster.live_repair_replica_reads cluster)
    (Difs.Cluster.live_repair_rewritten_opages cluster)
    (Difs.Cluster.live_repair_failures cluster)
    (Difs.Cluster.corrupt_reads_served cluster);
  Format.fprintf fmt "  chunks: intact=%d degraded=%d lost=%d@." health.intact
    health.degraded health.lost;
  Faults.Verdict.pp fmt verdict;
  let capacity_opages =
    Array.to_list devices
    |> List.mapi (fun i d -> (i, d))
    |> List.fold_left
         (fun acc (i, d) ->
           if Salamander.Device.alive d && not (Difs.Cluster.is_device_killed cluster i)
           then acc + Salamander.Device.active_opages d
           else acc)
         0
  in
  (* One observation per member device; a killed member reads as not
     alive even when its Salamander state would still accept writes. *)
  Option.iter
    (fun acc ->
      Array.iteri
        (fun i d ->
          let packed = Salamander.Device.pack d in
          let w = Ftl.Device_intf.wear_stats packed in
          let bg = Ftl.Device_intf.bg_stats packed in
          Obs.Fleet_report.Acc.observe acc
            {
              Obs.Fleet_report.id = Printf.sprintf "%s-%d" obs_prefix i;
              pec_max = w.Ftl.Device_intf.pec_max;
              pec_min = w.Ftl.Device_intf.pec_min;
              rber_worst = w.Ftl.Device_intf.rber_worst;
              tolerable_rber = w.Ftl.Device_intf.tolerable_rber;
              retries = bg.Ftl.Device_intf.read_retries;
              escalations = bg.Ftl.Device_intf.live_repair_attempts;
              reclaims = bg.Ftl.Device_intf.read_reclaims;
              host_writes = Ftl.Device_intf.host_writes packed;
              alive =
                Salamander.Device.alive d
                && not (Difs.Cluster.is_device_killed cluster i);
            })
        devices)
    obs;
  {
    ok = Faults.Verdict.all_ok verdict;
    capacity_opages;
    unrecoverable = Difs.Cluster.unrecoverable_opages cluster;
    corrupt_served = Difs.Cluster.corrupt_reads_served cluster;
    lost_chunks = Difs.Cluster.lost_chunks cluster;
    intact = health.intact;
    degraded = health.degraded;
    live_attempts = Difs.Cluster.live_repair_attempts cluster;
    live_successes = Difs.Cluster.live_repair_successes cluster;
  }

(* --- the campaign -------------------------------------------------------- *)

let default_plan = List.assoc "default" Faults.Plan.presets
let recovery_plan = List.assoc "live-recovery" Faults.Plan.presets

let run ?(ctx = Ctx.default) ?(plan = default_plan) ?(seed = 42)
    ?(steps = 1000) fmt =
  Format.fprintf fmt "chaos campaign: plan=%a seed=%d steps=%d@."
    Faults.Plan.pp plan seed steps;
  (* Six self-contained cells fan out over the pool via the chunked
     path; rendering and registry absorption happen in submission
     order, so the report is byte-identical at any job count (the PR 2
     pattern).  The recovery cells always run the [live-recovery]
     preset with live repair armed, whatever [plan] the rest of the
     campaign exercises — they are the standing regression for the
     no-corrupt-read-with-healthy-replica invariant. *)
  let cells =
    [|
      (`Device, seed);
      (`Device, seed + 1);
      (`Cluster, seed);
      (`Cluster, seed + 1);
      (`Recovery, seed);
      (`Recovery, seed + 1);
    |]
  in
  let rendered =
    Ctx.map_cells ctx cells
      (fun ~sub ~mon ~obs (arena, cell_seed) ->
        let buf = Buffer.create 2048 in
        let bfmt = Format.formatter_of_buffer buf in
        let tag =
          match arena with
          | `Device -> "device"
          | `Cluster -> "cluster"
          | `Recovery -> "recovery"
        in
        let cell_tag = Printf.sprintf "%s-%d" tag cell_seed in
        let ok =
          match arena with
          | `Device ->
              run_device_arena ~registry:sub ?mon ?obs ~plan ~seed:cell_seed
                ~steps bfmt
          | `Cluster ->
              (run_cluster_arena ~registry:sub ?mon ?obs ~obs_prefix:cell_tag
                 ~plan ~seed:cell_seed ~steps bfmt)
                .ok
          | `Recovery ->
              (run_cluster_arena ~registry:sub ?mon ?obs ~obs_prefix:cell_tag
                 ~live_repair:true ~plan:recovery_plan ~seed:cell_seed ~steps
                 bfmt)
                .ok
        in
        Format.pp_print_flush bfmt ();
        (Buffer.contents buf, ok, sub, mon, obs, cell_tag))
  in
  List.iter
    (fun (text, _, sub, mon, obs, cell_tag) ->
      Format.pp_print_string fmt text;
      Ctx.absorb ctx sub;
      Ctx.absorb_monitor ctx ~labels:[ ("device", cell_tag) ] mon;
      Ctx.absorb_obs ctx obs)
    rendered;
  let all = List.for_all (fun (_, ok, _, _, _, _) -> ok) rendered in
  Format.fprintf fmt "chaos verdict: %s@." (if all then "PASS" else "FAIL");
  all

(* --- shrink vs repair ----------------------------------------------------- *)

let run_shrink_vs_repair ?(ctx = Ctx.default) ?(seed = 42) ?(steps = 1000) fmt
    =
  Format.fprintf fmt "shrink-vs-repair: plan=%a seed=%d steps=%d@."
    Faults.Plan.pp recovery_plan seed steps;
  let rendered =
    Ctx.map_cells ctx [| false; true |]
      (fun ~sub ~mon ~obs live_repair ->
        let buf = Buffer.create 2048 in
        let bfmt = Format.formatter_of_buffer buf in
        let tag = if live_repair then "repair-on" else "repair-off" in
        let out =
          run_cluster_arena ~registry:sub ?mon ?obs ~obs_prefix:tag
            ~live_repair ~plan:recovery_plan ~seed ~steps bfmt
        in
        Format.pp_print_flush bfmt ();
        (Buffer.contents buf, out, sub, mon, obs, tag))
  in
  List.iter
    (fun (text, _, sub, mon, obs, tag) ->
      Format.pp_print_string fmt text;
      Ctx.absorb ctx sub;
      Ctx.absorb_monitor ctx ~labels:[ ("device", tag) ] mon;
      Ctx.absorb_obs ctx obs)
    rendered;
  (* Effective lifetime under identical damage: repairing in place costs
     wear (exported capacity) but keeps data reachable (fewer
     unrecoverable oPages, fewer corrupt reads served). *)
  List.iter
    (fun (_, out, _, _, _, tag) ->
      Format.fprintf fmt
        "%-10s capacity=%d unrecoverable=%d corrupt_served=%d lost_chunks=%d \
         chunks=%d+%d live_repairs=%d/%d@."
        tag out.capacity_opages out.unrecoverable out.corrupt_served
        out.lost_chunks out.intact out.degraded out.live_successes
        out.live_attempts)
    rendered;
  let all = List.for_all (fun (_, out, _, _, _, _) -> out.ok) rendered in
  Format.fprintf fmt "shrink-vs-repair verdict: %s@."
    (if all then "PASS" else "FAIL");
  all
