let age_device ?(seed = 515) ?registry config =
  let device =
    Salamander.Device.create ~config ?registry ~geometry:Defaults.geometry
      ~model:Defaults.model ~rng:(Sim.Rng.create seed) ()
  in
  let packed = Salamander.Device.pack device in
  let pattern =
    Workload.Pattern.uniform
      ~window:
        (Stdlib.max 1
           (int_of_float
              (0.85 *. float_of_int (Ftl.Device_intf.logical_capacity packed))))
      ~read_fraction:0.
  in
  let outcome =
    Workload.Aging.run ~max_writes:50_000_000 ~rng:(Sim.Rng.create (seed + 1))
      ~pattern ~device:packed ()
  in
  (device, outcome)

let average_writes ?(seeds = [ 515; 616; 717 ]) ?(ctx = Ctx.default) config =
  let outcomes =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun seed ->
        let sub = Ctx.sub_registry ctx in
        let _, outcome = age_device ~seed ~registry:sub config in
        (outcome.Workload.Aging.host_writes, sub))
      seeds
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) outcomes;
  List.fold_left (fun acc (w, _) -> acc + w) 0 outcomes / List.length seeds

(* --- AB-MSIZE ------------------------------------------------------------- *)

let msize ?(ctx = Ctx.default) fmt =
  Report.section fmt "AB-MSIZE: minidisk size vs lifetime and granularity";
  let sizes = [ 16; 32; 64; 128; 256 ] in
  let aged =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun mdisk_opages ->
        let config =
          {
            (Defaults.salamander_config ~mode:Salamander.Device.Regen_s) with
            Salamander.Device.mdisk_opages;
          }
        in
        let sub = Ctx.sub_registry ctx in
        let device, outcome = age_device ~registry:sub config in
        ((mdisk_opages, device, outcome), sub))
      sizes
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) aged;
  let rows =
    List.map
      (fun ((mdisk_opages, device, outcome), _) ->
        [
          Printf.sprintf "%d KiB" (mdisk_opages * 4);
          string_of_int outcome.Workload.Aging.host_writes;
          string_of_int (Salamander.Device.decommissions device);
          string_of_int (Salamander.Device.regenerations device);
        ])
      aged
  in
  Report.table fmt
    ~header:[ "mSize"; "host writes"; "decommissions"; "regenerations" ]
    ~rows;
  Report.note fmt
    "smaller minidisks shrink in finer steps, so each diFS recovery \
     touches less data — but each decommissioning also frees less slack, \
     so the device runs closer to full and garbage collection wears it \
     faster.  mSize picks a point between recovery granularity and \
     effective over-provisioning; the paper's open question about \
     granularity is a real trade-off here"

(* --- AB-LEVEL -------------------------------------------------------------- *)

let max_level ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "AB-LEVEL: RegenS depth (max usable tiredness level) vs lifetime";
  let baseline = ref 0 in
  let rows =
    List.map
      (fun level ->
        let config =
          if level = 0 then Defaults.salamander_config ~mode:Salamander.Device.Shrink_s
          else
            {
              (Defaults.salamander_config ~mode:Salamander.Device.Regen_s) with
              Salamander.Device.max_level = level;
            }
        in
        let writes = average_writes ~ctx config in
        if level = 0 then baseline := writes;
        [
          (if level = 0 then "L0 (ShrinkS)" else Printf.sprintf "L%d" level);
          string_of_int writes;
          Printf.sprintf "%.2fx" (float_of_int writes /. float_of_int !baseline);
        ])
      [ 0; 1; 2; 3 ]
  in
  Report.table fmt ~header:[ "max level"; "host writes"; "vs ShrinkS" ] ~rows;
  Report.note fmt
    "returns diminish with depth and are gone by L3, echoing Fig. 2's \
     marginal-utility argument at whole-device level; the paper's L < 2 \
     recommendation also rests on the 4/(4-L) performance cost that \
     deeper levels pay (Fig. 3c/3d)"

(* --- AB-SCRUB -------------------------------------------------------------- *)

let scrub ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "AB-SCRUB: proactive retirement of worn pages on decommissioning";
  let rows =
    List.map
      (fun scrub_on_decommission ->
        let config =
          {
            (Defaults.salamander_config ~mode:Salamander.Device.Regen_s) with
            Salamander.Device.scrub_on_decommission;
          }
        in
        let device, outcome = age_device ~registry:ctx.Ctx.registry config in
        [
          (if scrub_on_decommission then "on (paper §3.3)" else "off");
          string_of_int outcome.Workload.Aging.host_writes;
          string_of_int (Salamander.Device.decommissions device);
          string_of_int (Salamander.Device.regenerations device);
          Report.cell_f (Salamander.Device.write_amplification device);
        ])
      [ true; false ]
  in
  Report.table fmt
    ~header:
      [ "proactive retirement"; "host writes"; "decommissions";
        "regenerations"; "WAF" ]
    ~rows;
  Report.note fmt
    "proactive retirement moves data off pages *before* they cross their \
     ECC threshold, trading some raw endurance (pages retire with life \
     left) for a smaller window in which data sits on nearly-uncorrectable \
     flash; with it off, pages only transition when natural wear crosses \
     the threshold, wringing out more writes at higher residual-UBER \
     exposure"

(* --- AB-PLACE -------------------------------------------------------------- *)

let placement ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "AB-PLACE: replica placement vs correlated minidisk failures";
  let run_policy placement =
    let registry = ctx.Ctx.registry in
    let cluster =
      Difs.Cluster.create
        ~config:{ Difs.Cluster.default_config with Difs.Cluster.placement }
        ~registry ()
    in
    let devices =
      List.init 4 (fun i ->
          let d =
            Salamander.Device.create
              ~config:(Defaults.salamander_config ~mode:Salamander.Device.Regen_s)
              ~registry ~geometry:Defaults.geometry ~model:Defaults.model
              ~rng:(Sim.Rng.create (800 + i)) ()
          in
          ignore
            (Difs.Cluster.add_device cluster ~node:i
               (Difs.Cluster.Salamander d));
          d)
    in
    let chunks = 40 in
    for id = 0 to chunks - 1 do
      ignore (Difs.Cluster.write_chunk cluster id)
    done;
    (* Age until the first whole-device death (wear or otherwise). *)
    let rng = Sim.Rng.create 801 in
    let rewrites = ref 0 in
    while
      List.for_all Salamander.Device.alive devices && !rewrites < 300_000
    do
      incr rewrites;
      ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
    done;
    Difs.Cluster.repair cluster;
    let health = Difs.Cluster.health cluster in
    ( Difs.Cluster.lost_chunks cluster,
      health.Difs.Cluster.degraded,
      Difs.Cluster.recovery_opages cluster )
  in
  let rows =
    List.map
      (fun (label, policy) ->
        let lost, degraded, recovery = run_policy policy in
        [ label; string_of_int lost; string_of_int degraded;
          string_of_int recovery ])
      [
        ("spread across devices", Difs.Cluster.Spread_devices);
        ("spread across targets only", Difs.Cluster.Spread_targets);
      ]
  in
  Report.table fmt
    ~header:
      [ "placement"; "lost chunks"; "degraded chunks"; "recovery oPages" ]
    ~rows;
  Report.note fmt
    "minidisks of one drive fail together when the drive dies; placement \
     must treat them as correlated — the §3.2 open question, answered in \
     favour of device-level spreading"

(* --- AB-ECC-PLACE ------------------------------------------------------------ *)

let ecc_placement fmt =
  Report.section fmt
    "AB-ECC-PLACE: inline extra ECC vs dedicated ECC pages (analytic, §4.2)";
  let latency = Flash.Latency.default in
  let sense ~data_kib = Flash.Latency.fpage_read_us latency ~data_kib ~raw_errors:0. ~retries:0 in
  (* Inline (implemented design): an L1 page holds 3 data oPages. *)
  let inline_seq_senses = 1. /. 3. (* per data oPage *) in
  let inline_16k = 2. *. sense ~data_kib:8. (* 4 oPages span 2 pages *) in
  let inline_4k = sense ~data_kib:4. in
  (* Dedicated: data pages keep 4 oPages; one companion page holds the
     extra ECC of 4 data pages (1 oPage of parity each). *)
  let dedicated_seq_senses = (1. /. 4.) +. (1. /. 16.) in
  let dedicated_16k = sense ~data_kib:16. +. sense ~data_kib:4. in
  let dedicated_4k = sense ~data_kib:4. +. sense ~data_kib:4. in
  Report.table fmt
    ~header:
      [ "layout"; "senses per data oPage (seq)"; "16KiB random us";
        "4KiB random us" ]
    ~rows:
      [
        [ "inline (this repo)";
          Printf.sprintf "%.3f" inline_seq_senses;
          Report.cell_f inline_16k; Report.cell_f inline_4k ];
        [ "dedicated ECC pages";
          Printf.sprintf "%.3f" dedicated_seq_senses;
          Report.cell_f dedicated_16k; Report.cell_f dedicated_4k ];
      ];
  Report.note fmt
    "dedicated ECC pages restore extent alignment and slightly reduce \
     sequential senses, but double the cost of small random reads — \
     which is why the paper keeps ECC inline for 16 KiB fPages and \
     reserves dedicated pages for devices with smaller fPages"

(* --- AB-PATTERN ------------------------------------------------------------- *)

let pattern_shapes = [ "uniform"; "zipfian(0.99)"; "sequential" ]

let make_pattern shape ~window =
  match shape with
  | "uniform" -> Workload.Pattern.uniform ~window ~read_fraction:0.
  | "zipfian(0.99)" ->
      Workload.Pattern.zipfian ~window ~theta:0.99 ~read_fraction:0.
  | "sequential" -> Workload.Pattern.sequential ~window
  | _ -> invalid_arg "unknown pattern shape"

let pattern ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "AB-PATTERN: endurance under different access patterns (wear leveling)";
  let kinds : [ `Baseline | `Regens ] list = [ `Baseline; `Regens ] in
  let rows =
    List.map
      (fun shape ->
        shape
        :: List.map
             (fun kind ->
               let device =
                 Defaults.make_device ~registry:ctx.Ctx.registry
                   (kind :> [ `Baseline | `Cvss | `Shrinks | `Regens ])
                   ~seed:902
               in
               let window =
                 Stdlib.max 1
                   (int_of_float
                      (0.85
                      *. float_of_int
                           (Ftl.Device_intf.logical_capacity device)))
               in
               let outcome =
                 Workload.Aging.run ~max_writes:50_000_000
                   ~rng:(Sim.Rng.create 903)
                   ~pattern:(make_pattern shape ~window)
                   ~device ()
               in
               string_of_int outcome.Workload.Aging.host_writes)
             kinds)
      pattern_shapes
  in
  Report.table fmt ~header:[ "pattern"; "baseline"; "regens" ] ~rows;
  Report.note fmt
    "zipfian skew concentrates overwrites on hot LBAs; the log-structured \
     write path plus the wear-leveling sweep spread that heat, so \
     endurance stays within a few percent of uniform for both designs.  \
     Sequential fill wears perfectly evenly and lives longest."

(* --- AB-QUEUE ------------------------------------------------------------- *)

(* Closed-loop 16 KiB random reads through the channel/die queueing model:
   on fresh (L0) flash an extent is one page read; on all-L1 flash it is
   two page reads on (usually) different dies.  Queue depth decides
   whether the second sense hides behind parallelism or eats bandwidth. *)
let queueing fmt =
  Report.section fmt
    "AB-QUEUE: RegenS 16 KiB reads under internal parallelism (§4.2)";
  let latency = Flash.Latency.default in
  let requests = 2000 in
  let run_closed_loop ~qd ~layout =
    let engine = Sim.Engine.create () in
    let service = Flash.Service.create ~engine Flash.Service.default_config in
    let rng = Sim.Rng.create (qd + 91) in
    let total_latency = ref 0. in
    let completed = ref 0 in
    let submitted = ref 0 in
    let pages () =
      let page sense_kib =
        {
          Flash.Service.die_hint = Sim.Rng.int rng 1024;
          sense_us = latency.Flash.Latency.read_us;
          transfer_us =
            sense_kib *. latency.Flash.Latency.transfer_us_per_kib;
        }
      in
      match layout with
      | `L0 -> [ page 16. ]
      | `L1 -> [ page 12.; page 4. ]
    in
    let rec submit_one () =
      if !submitted < requests then begin
        incr submitted;
        Flash.Service.submit service ~pages:(pages ())
          ~on_complete:(fun ~latency_us ->
            total_latency := !total_latency +. latency_us;
            incr completed;
            submit_one ())
      end
    in
    for _ = 1 to qd do
      submit_one ()
    done;
    Sim.Engine.run engine;
    let elapsed = Sim.Engine.now engine in
    let throughput_mib_s =
      float_of_int !completed *. 16. /. 1024. /. (elapsed /. 1e6)
    in
    (!total_latency /. float_of_int !completed, throughput_mib_s)
  in
  let rows =
    List.map
      (fun qd ->
        let l0_lat, l0_tput = run_closed_loop ~qd ~layout:`L0 in
        let l1_lat, l1_tput = run_closed_loop ~qd ~layout:`L1 in
        [
          string_of_int qd;
          Report.cell_f l0_lat;
          Report.cell_f l1_lat;
          Printf.sprintf "%.2fx" (l1_lat /. l0_lat);
          Report.cell_f l0_tput;
          Report.cell_f l1_tput;
          Printf.sprintf "%.2fx" (l1_tput /. l0_tput);
        ])
      [ 1; 4; 16 ]
  in
  Report.table fmt
    ~header:
      [ "queue depth"; "L0 us"; "all-L1 us"; "latency ratio"; "L0 MiB/s";
        "all-L1 MiB/s"; "throughput ratio" ]
    ~rows;
  Report.note fmt
    "at QD 1 the two L1 page senses overlap across dies, so latency grows \
     only ~10% rather than the serialized 2x — supporting the paper's \
     expectation that parallelism absorbs much of the cost.  At \
     saturation, however, random 16 KiB reads pay the full sense-count \
     ratio (2 senses vs 1 -> ~0.55x throughput), *worse* than the \
     sequential 4/(4-L) = 0.75x, because random extents cannot amortize \
     a sense across neighbouring extents the way a sequential scan does"

let run ?(ctx = Ctx.default) fmt =
  msize ~ctx fmt;
  max_level ~ctx fmt;
  scrub ~ctx fmt;
  placement ~ctx fmt;
  pattern ~ctx fmt;
  queueing fmt;
  ecc_placement fmt
