let fig4_with_measured ctx fmt =
  (* TAB-LIFE feeds its measured lifetime factors into the carbon model so
     Fig. 4 appears both with the paper's parameters and with ours. *)
  let rows = Lifetime_table.run ~ctx fmt in
  Fig4.run ~measured_lifetime:(Lifetime_table.lifetime_factors rows) fmt

let experiments =
  [
    ("terms", fun _ctx fmt -> Terms.run fmt);
    ("fig2", fun _ctx fmt -> Fig2.run fmt);
    ("fig3ab", fun ctx fmt -> Fig3ab.run ~ctx fmt);
    ("fig3cd", fun ctx fmt -> Fig3perf.run ~ctx fmt);
    ("lifetime+fig4", fig4_with_measured);
    ("tco", fun _ctx fmt -> Tco_table.run fmt);
    ("recovery", fun ctx fmt -> Recovery_table.run ~ctx fmt);
    ("uber", fun ctx fmt -> Uber_table.run ~ctx fmt);
    ("ablations", fun ctx fmt -> Ablations.run ~ctx fmt);
    ("chaos", fun ctx fmt -> ignore (Chaos.run ~ctx fmt));
    ("shrink-vs-repair", fun ctx fmt -> ignore (Chaos.run_shrink_vs_repair ~ctx fmt));
    ("traffic", fun ctx fmt -> ignore (Traffic_run.run ~ctx fmt));
  ]

let run ?(ctx = Ctx.default) fmt =
  (* One level of parallelism: whole experiments fan out across the pool,
     so each runner receives a pool-less context (a task must never submit
     into the pool it runs on).  Every experiment renders into its own
     buffer and collects metrics in its own scratch registry; printing and
     merging then happen in list order, making the output byte-identical
     at any domain count. *)
  let rendered =
    Ctx.map_cells ctx (Array.of_list experiments)
      (fun ~sub ~mon:_ ~obs:_ (id, runner) ->
        let buf = Buffer.create 4096 in
        let bfmt = Format.formatter_of_buffer buf in
        Format.fprintf bfmt "@.### experiment %s@." id;
        runner (Ctx.make ~registry:sub ()) bfmt;
        Format.pp_print_flush bfmt ();
        (Buffer.contents buf, sub))
  in
  List.iter
    (fun (text, sub) ->
      Format.pp_print_string fmt text;
      Ctx.absorb ctx sub)
    rendered;
  Format.fprintf fmt "@."
