(** TAB-RECOV — recovery traffic in the distributed file system (§4.3).

    A cluster of devices of each design hosts replicated chunks and is
    aged by chunk rewrites until most of its capacity is gone.  We meter
    how many oPages the diFS moved to re-replicate after failures.

    Expected shape from the paper's reasoning: ShrinkS recovery volume is
    comparable to the baseline (the same LBAs fail over time, just
    spread out); regeneration adds traffic because regenerated minidisks
    fail again and are shorter-lived. *)

type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  recovery_opages : int;
  recovery_events : int;
  host_writes : int;
  lost_chunks : int;
  recovery_per_host_write : float;
}

val measure : ?devices:int -> ?seed:int -> ?ctx:Ctx.t -> unit -> row list
(** With a pool in [ctx], the four clusters age in parallel; results are
    identical. *)

val measure_redundancy :
  ?devices:int ->
  ?seed:int ->
  ?ctx:Ctx.t ->
  unit ->
  (string * Difs.Cluster.t * int) list
(** Replication vs (4,2) erasure coding on identical RegenS fleets:
    (label, aged cluster, host writes).  Erasure halves storage overhead
    but pays k-fold read amplification on every minidisk recovery. *)

val run : ?ctx:Ctx.t -> Format.formatter -> unit
