type row = {
  label : string;
  chaos : bool;
  p50 : float;
  p95 : float;
  p99 : float;
  p999 : float;
  max_us : float;
  completed : int;
  throttled : int;
  violations : int;
  read_errors : int;
  tail_cause : string;
      (* dominant cause bit among p999-and-above ops; "untagged" when
         no background work billed into the tail, "-" on empty cells *)
}

(* The generator's window is sized inside the smallest device capacity
   (32x16x4 oPages minus over-provisioning) so trace LBAs survive the
   replayer's capacity fold unwrapped on a fresh device. *)
let window = 1024

let make_spec ~tenants ~ops =
  { Traffic.Gen.default_spec with Traffic.Gen.tenants; ops; window }

let kinds = [ `Baseline; `Cvss; `Regens ]

(* Build the device AND keep its chip handle: the packed wrapper hides
   the concrete type, but chaos cells must reach Flash.Chip.inject. *)
let make_device kind ~registry ~rng =
  let geometry = Defaults.geometry and model = Defaults.model in
  match kind with
  | `Baseline ->
      let d = Ftl.Baseline_ssd.create ~registry ~geometry ~model ~rng () in
      ( Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d),
        Ftl.Engine.chip (Ftl.Baseline_ssd.engine d) )
  | `Cvss ->
      let d = Ftl.Cvss.create ~registry ~geometry ~model ~rng () in
      ( Ftl.Device_intf.Packed ((module Ftl.Cvss), d),
        Ftl.Engine.chip (Ftl.Cvss.engine d) )
  | `Regens ->
      let d =
        Salamander.Device.create
          ~config:(Defaults.salamander_config ~mode:Salamander.Device.Regen_s)
          ~registry ~geometry ~model ~rng ()
      in
      (Salamander.Device.pack d, Ftl.Engine.chip (Salamander.Device.engine d))

(* Media faults only: kills and power cuts need cluster / crash-rebuild
   plumbing that belongs to the chaos experiment, not the latency one. *)
let media_only plan =
  List.filter
    (function
      | Faults.Plan.Transient_flips _ | Faults.Plan.Sticky_pages _
      | Faults.Plan.Silent_corruption _ ->
          true
      | _ -> false)
    plan

let pp_top fmt population accounts =
  List.iter
    (fun id ->
      Format.fprintf fmt " #%d(%s) ops=%d reads=%d thr=%d slo=%d" id
        (Traffic.Tenant.profile_of population id).Traffic.Tenant.name
        (Traffic.Tenant.Accounts.ops accounts id)
        (Traffic.Tenant.Accounts.reads accounts id)
        (Traffic.Tenant.Accounts.throttles accounts id)
        (Traffic.Tenant.Accounts.violations accounts id))
    (Traffic.Tenant.Accounts.top accounts ~n:3)

(* Tail root-cause attribution for one latency histogram: report the
   dominant cause bit among ops in the p999 bucket and above (strict
   max, so ties keep the lower bit), plus the worst retained tagged
   exemplar.  Returns the dominant cause name for the summary row. *)
let pp_tail_cause fmt hist =
  if Traffic.Lathist.count hist = 0 then "-"
  else begin
    let q = 0.999 in
    let n = Traffic.Lathist.count_above hist q in
    let totals = Traffic.Lathist.tag_totals_above hist q in
    let best = ref (-1) and best_n = ref 0 in
    for i = 0 to Obs.Cause.width - 1 do
      if totals.(i) > !best_n then begin
        best := i;
        best_n := totals.(i)
      end
    done;
    let cause = if !best < 0 then "untagged" else Obs.Cause.name_of_bit !best in
    Format.fprintf fmt "  tail: p999=%.1fus n=%d cause=%s"
      (Traffic.Lathist.percentile hist q)
      n cause;
    if !best >= 0 then Format.fprintf fmt " (%d/%d)" !best_n n;
    (match Traffic.Lathist.exemplar_above hist q with
    | Some (us, tags) ->
        Format.fprintf fmt " exemplar=%.1fus [%s]" us (Obs.Cause.to_string tags)
    | None -> ());
    Format.fprintf fmt "@.";
    cause
  end

let pp_cause_mix fmt mix =
  match Obs.Topk.Counts.to_list mix with
  | [] -> ()
  | entries ->
      Format.fprintf fmt "  causes:";
      List.iteri
        (fun i (id, est, err) ->
          if i < 4 then
            Format.fprintf fmt " %s=%d%s" id est
              (if err > 0 then Printf.sprintf "(-%d)" err else ""))
        entries;
      Format.fprintf fmt "@."

let run_cell ~registry ?obs ~spec ~trace ~seed ~batch ~qos ~plan ~kind ~chaos
    fmt =
  let kind_index =
    match kind with `Baseline -> 0 | `Cvss -> 1 | `Regens -> 2
  in
  (* The device stream depends on the kind but not on the chaos flag, so
     a faulted cell ages the same device its fault-free twin does. *)
  let rng = Sim.Rng.create (seed + (17 * (kind_index + 1))) in
  let device, chip = make_device kind ~registry ~rng in
  let label = Ftl.Device_intf.label device in
  (* Prefill the window so trace reads hit mapped LBAs instead of
     returning `Unmapped before the first write lands there. *)
  let prefill = Stdlib.min window (Ftl.Device_intf.logical_capacity device) in
  let prefilled, _ =
    Ftl.Device_intf.write_many device (Array.init prefill (fun i -> (i, i)))
  in
  let population =
    Traffic.Tenant.create ~profiles:spec.Traffic.Gen.profiles
      ~tenants:spec.Traffic.Gen.tenants ()
  in
  let injector =
    if chaos then
      Some
        (Faults.Injector.create
           ~rng:(Sim.Rng.create (seed + 1000 + kind_index))
           (media_only plan))
    else None
  in
  let on_batch =
    Option.map
      (fun inj ~batch ->
        List.iter
          (function
            | Faults.Injector.Inject { block; page; fault } ->
                Flash.Chip.inject chip ~block ~page fault
            | Faults.Injector.Kill_device _ | Faults.Injector.Power_cut -> ())
          (Faults.Injector.step inj ~geometry:(Flash.Chip.geometry chip)
             ~step:batch))
      injector
  in
  let outcome =
    Traffic.Replay.run
      ~config:{ Traffic.Replay.default_config with Traffic.Replay.batch }
      ?qos:(if qos then Some Traffic.Qos.default_config else None)
      ~intensity:(fun ~op -> Traffic.Gen.intensity spec ~op)
      ?on_batch ~population ~trace ~device ()
  in
  let o = outcome in
  Format.fprintf fmt "cell %s%s: completed=%d/%d prefilled=%d died=%b end_ms=%.1f@."
    label
    (if chaos then "+chaos" else "")
    o.Traffic.Replay.completed (Workload.Trace.length trace) prefilled
    o.Traffic.Replay.died
    (o.Traffic.Replay.end_us /. 1000.);
  Format.fprintf fmt "  lat_us %10s %10s %10s %10s %10s@." "p50" "p95" "p99"
    "p999" "max";
  Format.fprintf fmt "  all    %a@." Traffic.Lathist.pp_row o.Traffic.Replay.all;
  Format.fprintf fmt "  read   %a@." Traffic.Lathist.pp_row
    o.Traffic.Replay.reads;
  Format.fprintf fmt "  write  %a@." Traffic.Lathist.pp_row
    o.Traffic.Replay.writes;
  let ops, reads, throttles, violations =
    Traffic.Tenant.Accounts.totals o.Traffic.Replay.accounts
  in
  Format.fprintf fmt
    "  qos: ops=%d reads=%d throttled=%d throttle_ms=%.1f slo_violations=%d \
     active_tenants=%d/%d@."
    ops reads throttles
    (o.Traffic.Replay.throttle_us /. 1000.)
    violations
    (Traffic.Tenant.Accounts.active o.Traffic.Replay.accounts)
    (Traffic.Tenant.tenants population);
  ignore throttles;
  let bg = Ftl.Device_intf.bg_stats device in
  Format.fprintf fmt
    "  bg: gc=%d relocated=%d retries=%d reclaims=%d unmapped=%d \
     uncorrectable=%d@."
    bg.Ftl.Device_intf.gc_runs bg.Ftl.Device_intf.relocated_opages
    bg.Ftl.Device_intf.read_retries bg.Ftl.Device_intf.read_reclaims
    o.Traffic.Replay.unmapped_reads o.Traffic.Replay.read_errors;
  (match injector with
  | Some inj ->
      Format.fprintf fmt "  injected:";
      List.iter
        (fun (cls, n) -> Format.fprintf fmt " %s=%d" cls n)
        (Faults.Injector.injected inj);
      Format.fprintf fmt "@."
  | None -> ());
  Format.fprintf fmt "  top:%a@."
    (fun fmt () -> pp_top fmt population o.Traffic.Replay.accounts)
    ();
  let tail_cause = pp_tail_cause fmt o.Traffic.Replay.all in
  pp_cause_mix fmt o.Traffic.Replay.cause_mix;
  let cell_id = label ^ if chaos then "+chaos" else "" in
  Option.iter
    (fun acc ->
      let w = Ftl.Device_intf.wear_stats device in
      Obs.Fleet_report.Acc.observe acc
        {
          Obs.Fleet_report.id = cell_id;
          pec_max = w.Ftl.Device_intf.pec_max;
          pec_min = w.Ftl.Device_intf.pec_min;
          rber_worst = w.Ftl.Device_intf.rber_worst;
          tolerable_rber = w.Ftl.Device_intf.tolerable_rber;
          retries = bg.Ftl.Device_intf.read_retries;
          escalations = bg.Ftl.Device_intf.live_repair_attempts;
          reclaims = bg.Ftl.Device_intf.read_reclaims;
          host_writes = Ftl.Device_intf.host_writes device;
          alive = Ftl.Device_intf.alive device;
        })
    obs;
  let p q = Traffic.Lathist.percentile o.Traffic.Replay.all q in
  {
    label;
    chaos;
    p50 = p 0.5;
    p95 = p 0.95;
    p99 = p 0.99;
    p999 = p 0.999;
    max_us = Traffic.Lathist.max o.Traffic.Replay.all;
    completed = o.Traffic.Replay.completed;
    throttled = o.Traffic.Replay.throttled_ops;
    violations = o.Traffic.Replay.slo_violations;
    read_errors = o.Traffic.Replay.read_errors;
    tail_cause;
  }

let rows_to_json rows =
  let b = Buffer.create 512 in
  Buffer.add_string b "{\"rows\":[";
  List.iteri
    (fun i r ->
      if i > 0 then Buffer.add_char b ',';
      Buffer.add_string b
        (Printf.sprintf
           "{\"label\":%S,\"chaos\":%b,\"p50\":%.3f,\"p95\":%.3f,\"p99\":%.3f,\
            \"p999\":%.3f,\"max_us\":%.3f,\"completed\":%d,\"throttled\":%d,\
            \"violations\":%d,\"read_errors\":%d,\"tail_cause\":%S}"
           r.label r.chaos r.p50 r.p95 r.p99 r.p999 r.max_us r.completed
           r.throttled r.violations r.read_errors r.tail_cause))
    rows;
  Buffer.add_string b "]}";
  Buffer.contents b

let make_trace ~tenants ~ops ~seed =
  Traffic.Gen.generate (make_spec ~tenants ~ops) ~seed

let run ?(ctx = Ctx.default) ?(tenants = 64) ?(ops = 12_000) ?(seed = 42)
    ?(batch = 16) ?(qos = true)
    ?(plan = List.assoc "media" Faults.Plan.presets) ?trace fmt =
  let spec = make_spec ~tenants ~ops in
  let trace =
    match trace with Some t -> t | None -> Traffic.Gen.generate spec ~seed
  in
  Format.fprintf fmt
    "traffic: tenants=%d ops=%d seed=%d batch=%d qos=%b plan=%a@." tenants
    (Workload.Trace.length trace)
    seed batch qos Faults.Plan.pp (media_only plan);
  let cells =
    Array.of_list
      (List.concat_map (fun kind -> [ (kind, false); (kind, true) ]) kinds)
  in
  (* Six self-contained cells fan out over the pool via the chunked
     path; rendering and registry absorption happen in submission
     order, so the report is byte-identical at any job count (the PR 2
     pattern). *)
  let rendered =
    Ctx.map_cells ctx cells
      (fun ~sub ~mon:_ ~obs (kind, chaos) ->
        let buf = Buffer.create 2048 in
        let bfmt = Format.formatter_of_buffer buf in
        let row =
          run_cell ~registry:sub ?obs ~spec ~trace ~seed ~batch ~qos ~plan
            ~kind ~chaos bfmt
        in
        Format.pp_print_flush bfmt ();
        (Buffer.contents buf, row, sub, obs))
  in
  List.iter
    (fun (text, _, sub, obs) ->
      Format.pp_print_string fmt text;
      Ctx.absorb ctx sub;
      Ctx.absorb_obs ctx obs)
    rendered;
  let rows = List.map (fun (_, row, _, _) -> row) rendered in
  Format.fprintf fmt "latency comparison (us):@.";
  Format.fprintf fmt "  %-10s %-6s %10s %10s %10s %10s  %s@." "device" "chaos"
    "p50" "p95" "p99" "p999" "tail-cause";
  List.iter
    (fun r ->
      Format.fprintf fmt "  %-10s %-6s %10.1f %10.1f %10.1f %10.1f  %s@."
        r.label
        (if r.chaos then "media" else "-")
        r.p50 r.p95 r.p99 r.p999 r.tail_cause)
    rows;
  List.iter
    (fun label ->
      match
        ( List.find_opt (fun r -> r.label = label && not r.chaos) rows,
          List.find_opt (fun r -> r.label = label && r.chaos) rows )
      with
      | Some clean, Some dirty when clean.p999 > 0. ->
          Format.fprintf fmt "  %s p999 chaos/clean = %.2fx@." label
            (dirty.p999 /. clean.p999)
      | _ -> ())
    [ "baseline"; "cvss"; "regens" ];
  rows
