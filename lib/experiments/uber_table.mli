(** TAB-UBER — residual read reliability over a device's whole life.

    The paper argues (§1) that by failing gradually, Salamander reduces
    the risk of unexpected data loss, and §2 lists read disturb among the
    error sources drives must manage.  This experiment ages one device of
    each design under a mixed read/write workload with read disturb
    enabled and read-reclaim active, and reports the uncorrectable-read
    rate observed by the host across the device's entire (extended) life.

    The claim to check: Salamander's longer life does not come at the
    cost of a worse residual error rate — pages are always retired or
    re-coded at the same ECC-margin thresholds, whatever their level. *)

type row = {
  kind : [ `Baseline | `Cvss | `Shrinks | `Regens ];
  host_writes : int;
  reads : int;
  read_errors : int;
  error_rate_ppm : float;  (** uncorrectable reads per million reads *)
  reclaims : int;  (** read-reclaim relocations performed *)
}

val measure : ?seed:int -> ?ctx:Ctx.t -> unit -> row list
(** With a pool in [ctx], the four designs age in parallel; results are
    identical. *)

val run : ?ctx:Ctx.t -> Format.formatter -> unit
