type point = {
  l1_fraction : float;
  seq_throughput_mib_s : float;
  random16k_pages : float;
  random16k_us : float;
  random16k_parallel_us : float;
  random4k_us : float;
}

let latency = Flash.Latency.default

(* Latency of sensing one fPage and shipping [opages] oPages from it,
   with ECC effort and read-retries at the page's current state. *)
let fpage_cost device ~block ~page ~opages =
  let engine = Salamander.Device.engine device in
  let chip = Ftl.Engine.chip engine in
  let rber = Flash.Chip.rber chip ~block ~page in
  let profile = Salamander.Device.profile device in
  let level = Salamander.Device.level_of_page device ~block ~page in
  let info = Salamander.Tiredness.info profile level in
  let margin =
    if info.Salamander.Tiredness.tolerable_rber > 0. then
      rber /. info.Salamander.Tiredness.tolerable_rber
    else 1.
  in
  let raw_errors =
    (* mean raw bit errors the decoder grinds through for the codewords of
       the oPages actually transferred *)
    let geometry = Flash.Chip.geometry chip in
    match info.Salamander.Tiredness.params with
    | Some params ->
        Ecc.Reliability.expected_errors params ~rber
        *. float_of_int (geometry.Flash.Geometry.codewords_per_opage * opages)
    | None -> 0.
  in
  Flash.Latency.fpage_read_us latency
    ~data_kib:(4. *. float_of_int opages)
    ~raw_errors
    ~retries:(Flash.Latency.expected_retries ~margin)

(* The physical fPages backing a run of LBAs of one minidisk. *)
let locations device mdisk ~lba ~len =
  let registry = Salamander.Device.registry device in
  let engine = Salamander.Device.engine device in
  List.filter_map
    (fun offset ->
      let logical =
        Salamander.Minidisk.Registry.engine_logical registry mdisk
          ~lba:(lba + offset)
      in
      Ftl.Engine.locate engine ~logical)
    (List.init len Fun.id)

let group_by_fpage locs =
  let table = Hashtbl.create 8 in
  List.iter
    (fun { Ftl.Location.block; page; _ } ->
      let key = (block, page) in
      Hashtbl.replace table key
        (1 + Option.value ~default:0 (Hashtbl.find_opt table key)))
    locs;
  Hashtbl.fold (fun (block, page) count acc -> (block, page, count) :: acc)
    table []

let extent_cost device mdisk ~lba ~len =
  let groups = group_by_fpage (locations device mdisk ~lba ~len) in
  let time =
    List.fold_left
      (fun acc (block, page, opages) ->
        acc +. fpage_cost device ~block ~page ~opages)
      0. groups
  in
  (time, List.length groups)

(* Lower-bound latency when the involved fPages sit on different planes:
   senses overlap, transfers still share the channel. *)
let extent_cost_parallel device mdisk ~lba ~len =
  let groups = group_by_fpage (locations device mdisk ~lba ~len) in
  let transfer_of opages =
    4. *. float_of_int opages *. latency.Flash.Latency.transfer_us_per_kib
  in
  let slowest =
    List.fold_left
      (fun acc (block, page, opages) ->
        Float.max acc (fpage_cost device ~block ~page ~opages))
      0. groups
  in
  let extra_transfers =
    match
      List.sort
        (fun (_, _, a) (_, _, b) -> compare b a)
        groups
    with
    | [] | [ _ ] -> 0.
    | _ :: rest ->
        List.fold_left (fun acc (_, _, opages) -> acc +. transfer_of opages)
          0. rest
  in
  slowest +. extra_transfers

let prepare ~registry ~l1_fraction ~seed =
  let geometry = Defaults.geometry in
  let gentle =
    Flash.Rber_model.calibrate ~target_rber:6e-3 ~target_pec:1_000_000 ()
  in
  let device =
    Salamander.Device.create
      ~config:
        {
          (Defaults.salamander_config ~mode:Salamander.Device.Regen_s) with
          (* don't let decommissioning advance extra pages while we are
             preparing a precise L1 population *)
          Salamander.Device.scrub_on_decommission = false;
        }
      ~registry ~geometry ~model:gentle ~rng:(Sim.Rng.create seed) ()
  in
  (* Force the target fraction of fPages to L1 before any data lands. *)
  let rng = Sim.Rng.create (seed + 1) in
  for block = 0 to geometry.Flash.Geometry.blocks - 1 do
    for page = 0 to geometry.Flash.Geometry.pages_per_block - 1 do
      if
        Sim.Rng.chance rng l1_fraction
        && Salamander.Device.level_of_page device ~block ~page = 0
      then Salamander.Device.force_page_level device ~block ~page ~level:1
    done
  done;
  ignore (Salamander.Device.poll_events device);
  (* Fill 85% of every surviving minidisk sequentially. *)
  let per_mdisk =
    (Salamander.Device.config device).Salamander.Device.mdisk_opages
  in
  (* 16 KiB-extent aligned so a fresh device packs each extent into one
     fPage, the layout a sequential writer gets in practice *)
  let fill = per_mdisk * 85 / 100 / 4 * 4 in
  List.iter
    (fun mdisk ->
      for lba = 0 to fill - 1 do
        match
          Salamander.Device.write device ~mdisk:mdisk.Salamander.Minidisk.id
            ~lba ~payload:lba
        with
        | Ok () -> ()
        | Error _ -> ()
      done)
    (Salamander.Device.active_mdisks device);
  Salamander.Device.flush device;
  (device, fill)

let measure_point ~registry ~l1_fraction ~seed =
  let device, fill = prepare ~registry ~l1_fraction ~seed in
  let mdisks = Salamander.Device.active_mdisks device in
  let extents_per_mdisk = fill / 4 in
  (* Sequential scan: each physical fPage is sensed once (drives read
     ahead), so the scan cost is the per-fPage cost summed over the
     distinct pages backing the data. *)
  let total_time = ref 0. in
  let total_bytes = ref 0 in
  List.iter
    (fun mdisk ->
      let groups = group_by_fpage (locations device mdisk ~lba:0 ~len:fill) in
      List.iter
        (fun (block, page, opages) ->
          total_time := !total_time +. fpage_cost device ~block ~page ~opages;
          total_bytes := !total_bytes + (opages * 4096))
        groups)
    mdisks;
  (* 16 KiB random accesses: every extent, each charged in isolation (no
     cross-access read-ahead). *)
  let r16_time = ref 0. and r16_pages = ref 0 and r16_count = ref 0 in
  let r16_parallel = ref 0. in
  List.iter
    (fun mdisk ->
      for extent = 0 to extents_per_mdisk - 1 do
        let time, pages = extent_cost device mdisk ~lba:(extent * 4) ~len:4 in
        r16_time := !r16_time +. time;
        r16_parallel :=
          !r16_parallel
          +. extent_cost_parallel device mdisk ~lba:(extent * 4) ~len:4;
        r16_pages := !r16_pages + pages;
        incr r16_count
      done)
    mdisks;
  (* 4 KiB random accesses. *)
  let rng = Sim.Rng.create (seed + 2) in
  let r4_time = ref 0. in
  let r4_count = 512 in
  let mdisk_array = Array.of_list mdisks in
  for _ = 1 to r4_count do
    let mdisk = mdisk_array.(Sim.Rng.int rng (Array.length mdisk_array)) in
    let lba = Sim.Rng.int rng fill in
    let time, _ = extent_cost device mdisk ~lba ~len:1 in
    r4_time := !r4_time +. time
  done;
  {
    l1_fraction;
    seq_throughput_mib_s =
      float_of_int !total_bytes /. (1024. *. 1024.)
      /. (!total_time /. 1e6);
    random16k_pages = float_of_int !r16_pages /. float_of_int !r16_count;
    random16k_us = !r16_time /. float_of_int !r16_count;
    random16k_parallel_us = !r16_parallel /. float_of_int !r16_count;
    random4k_us = !r4_time /. float_of_int r4_count;
  }

let measure ?(fractions = [ 0.; 0.25; 0.5; 0.75; 1. ]) ?(seed = 11)
    ?(ctx = Ctx.default) () =
  let points =
    Parallel.Pool.map_opt ctx.Ctx.pool
      (fun l1_fraction ->
        let sub = Ctx.sub_registry ctx in
        (measure_point ~registry:sub ~l1_fraction ~seed, sub))
      fractions
  in
  List.iter (fun (_, sub) -> Ctx.absorb ctx sub) points;
  List.map fst points

let run ?(ctx = Ctx.default) fmt =
  Report.section fmt
    "FIG3C/FIG3D: RegenS performance vs L1 population (paper Figs. 3c, 3d)";
  let points = measure ~ctx () in
  let base = List.hd points in
  Report.table fmt
    ~header:
      [ "L1 fraction"; "seq MiB/s"; "seq vs fresh"; "16KiB fPages/access";
        "16KiB us (serial)"; "16KiB us (parallel)"; "4KiB us" ]
    ~rows:
      (List.map
         (fun p ->
           [
             Report.cell_f p.l1_fraction;
             Report.cell_f p.seq_throughput_mib_s;
             Printf.sprintf "%.2fx"
               (p.seq_throughput_mib_s /. base.seq_throughput_mib_s);
             Report.cell_f p.random16k_pages;
             Report.cell_f p.random16k_us;
             Report.cell_f p.random16k_parallel_us;
             Report.cell_f p.random4k_us;
           ])
         points);
  Report.note fmt
    "paper: sequential throughput and large-access cost degrade by \
     4/(4-L) (25% at all-L1); 4 KiB accesses are unaffected.  The \
     fPages-per-access column shows the 4/(4-L) factor directly; the \
     serial and parallel 16 KiB latencies bracket a real drive, whose \
     planes overlap the senses but share the transfer channel."
