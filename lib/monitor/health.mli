(** SMART-style health grading from sampled time series.

    The assessor groups a {!Sampler}'s series by a subject label
    (default ["device"], the tag {!Sampler.merge} adds per fleet
    device or chaos cell), derives per-subject attributes — wear,
    wear spread, worst raw bit error rate and its trend slope, ECC
    correction margin, retry-ladder escalation rate, shrink/regen
    counts, scrub debt — and folds each attribute's verdict into one
    grade per subject:

    - [Retired]: the subject stopped serving ([device_alive] ended 0).
    - [Failing]: data has been or is about to be lost (uncorrectable
      reads, RBER at/above the strongest code's tolerance, lost
      chunks).
    - [Degraded]: still correct but visibly consuming margin (past
      target P/E cycles, thin ECC margin, retry storms, shrinks,
      outstanding scrub debt).
    - [Healthy]: everything else.

    Attributes whose input series were never sampled are simply
    omitted, so the same assessor serves single devices, fleets and
    diFS clusters. *)

type grade = Healthy | Degraded | Failing | Retired

val grade_label : grade -> string

val grade_rank : grade -> int
(** Severity order: [Healthy] 0 .. [Retired] 3. *)

val natural_compare : string -> string -> int
(** Subject ordering with trailing integers compared numerically
    (["dev-2"] before ["dev-10"]). *)

type attribute = {
  attr : string;  (** short SMART-ish attribute name *)
  value : float;  (** current (latest) value *)
  worst : float;  (** worst value seen over the sampled history *)
  threshold : float option;  (** the limit the verdict compares against *)
  flag : grade option;  (** the downgrade this attribute votes for, if any *)
}

type report = {
  subject : string;
  grade : grade;
  attributes : attribute list;
}

type thresholds = {
  target_pec : float;  (** rated P/E cycles; at/above votes [Degraded] *)
  margin_degraded : float;
      (** ECC margin (tolerable/observed RBER) below this votes
          [Degraded]; at/below 1.0 votes [Failing] *)
  retry_rate_degraded : float;
      (** read retries per flash read above this votes [Degraded] *)
  live_repair_rate_degraded : float;
      (** diFS live-repair escalations per flash read above this votes
          [Degraded] — reads are exhausting the retry ladder and leaning
          on cluster redundancy *)
}

val default_thresholds : thresholds
(** target_pec 60 (the experiment calibration), margin 1.25,
    retry rate 1e-3, live-repair rate 1e-4. *)

val assess :
  ?thresholds:thresholds -> ?group_by:string -> Sampler.t -> report list
(** One report per subject, in natural subject order ([regens-2] before
    [regens-10]).  Series that carry no [group_by] label are assessed
    as a single subject named ["device"] when {e no} series carries the
    label (the single-device case); otherwise unlabeled series are
    ignored. *)

val pp : Format.formatter -> report list -> unit
(** Render the health-report table: one banner line per subject with
    its grade, then the attribute rows. *)
