let esc = Telemetry.Export.json_escape

let args_json pairs =
  "{"
  ^ String.concat ","
      (List.map
         (fun (k, v) -> Printf.sprintf "\"%s\":\"%s\"" (esc k) (esc v))
         pairs)
  ^ "}"

let to_string sink =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "{\"traceEvents\":[";
  let first = ref true in
  let emit s =
    if !first then first := false else Buffer.add_string buffer ",\n ";
    Buffer.add_string buffer s
  in
  List.iter
    (fun (s : Telemetry.Trace.Sink.span) ->
      let args =
        s.args
        @ [ ("id", string_of_int s.id) ]
        @
        match s.parent with
        | None -> []
        | Some p -> [ ("parent", string_of_int p) ]
      in
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":%d,\"dur\":%d,\"pid\":0,\"tid\":0,\"args\":%s}"
           (esc s.name) s.start
           (s.finish - s.start)
           (args_json args)))
    (Telemetry.Trace.Sink.spans sink);
  List.iter
    (fun (ts, name, fields) ->
      emit
        (Printf.sprintf
           "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":%d,\"pid\":0,\"tid\":0,\"s\":\"g\",\"args\":%s}"
           (esc name) ts (args_json fields)))
    (Telemetry.Trace.Sink.instants sink);
  Buffer.add_string buffer "],\"displayTimeUnit\":\"ms\"}\n";
  Buffer.contents buffer
