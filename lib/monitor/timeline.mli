(** Timeline exporters for sampled series.

    Both formats are byte-deterministic: series in {!Sampler.Key}
    order, points oldest first, floats rendered with
    {!Telemetry.Export.json_float}'s conventions. *)

val to_csv : Sampler.t -> string
(** One row per (series, point):
    [metric,labels,field,t0,t1,last,mean,min,max,n] with a header
    line.  Label strings are CSV-quoted (they contain commas). *)

val to_jsonl : Sampler.t -> string
(** One JSON object per series:
    [{"metric":...,"labels":{...},"field":...,"points":[[t0,t1,last,mean,min,max,n],...]}]. *)
