type t = {
  sampler : Sampler.t;
  alerts : Alert.t;
  sink : Telemetry.Trace.Sink.t option;
  capacity : int;
  sample_every : int;
  mutable samples : int;
}

let create ?(capacity = 256) ?(sample_every = 1) ?(rules = []) ?sink () =
  if sample_every < 1 then invalid_arg "Engine.create: sample_every < 1";
  {
    sampler = Sampler.create ~capacity ();
    alerts = Alert.create rules;
    sink;
    capacity;
    sample_every;
    samples = 0;
  }

let sample_every t = t.sample_every
let due t ~tick = tick mod t.sample_every = 0

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.6g" v

let sample t ~time registry =
  Sampler.sample t.sampler ~time registry;
  let fresh = Alert.eval t.alerts ~time t.sampler in
  (match t.sink with
  | Some sink ->
      List.iter
        (fun (tr : Alert.transition) ->
          Telemetry.Trace.Sink.instant sink
            ("alert:" ^ tr.Alert.rule_name)
            [
              ( "state",
                match tr.Alert.state with
                | Alert.Firing -> "firing"
                | Alert.Resolved -> "resolved" );
              ("series", Sampler.Key.to_string tr.Alert.key);
              ("value", value_str tr.Alert.value);
            ])
        fresh
  | None -> ());
  t.samples <- t.samples + 1

let samples t = t.samples
let sampler t = t.sampler
let alert_log t = Alert.log t.alerts
let sink t = t.sink

let sub t =
  {
    sampler = Sampler.create ~capacity:t.capacity ();
    alerts = Alert.create (Alert.rules t.alerts);
    sink = Option.map (fun _ -> Telemetry.Trace.Sink.create ()) t.sink;
    capacity = t.capacity;
    sample_every = t.sample_every;
    samples = 0;
  }

let absorb ~into ?labels sub =
  Sampler.merge ~into:into.sampler ?labels sub.sampler;
  Alert.absorb ~into:into.alerts ?labels sub.alerts;
  (match (into.sink, sub.sink) with
  | Some dst, Some src ->
      Telemetry.Trace.Sink.merge ~into:dst
        ?parent:(Telemetry.Trace.Sink.current dst)
        src
  | _ -> ());
  into.samples <- into.samples + sub.samples
