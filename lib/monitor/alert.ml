type direction = Above | Below

type rule = {
  rule : string;
  metric : string;
  field : string;
  direction : direction;
  fire : float;
  resolve : float;
}

let rule ?(field = "value") ?(direction = Above) ~metric ~fire ~resolve name =
  (match direction with
  | Above ->
      if resolve > fire then
        invalid_arg "Alert.rule: Above needs resolve <= fire"
  | Below ->
      if resolve < fire then
        invalid_arg "Alert.rule: Below needs resolve >= fire");
  { rule = name; metric; field; direction; fire; resolve }

type state = Firing | Resolved

type transition = {
  time : float;
  rule_name : string;
  key : Sampler.Key.t;
  state : state;
  value : float;
}

type t = {
  rules : rule list;
  active : (string * Sampler.Key.t, bool) Hashtbl.t;
  mutable log_rev : transition list;
}

let create rules = { rules; active = Hashtbl.create 32; log_rev = [] }
let rules t = t.rules

let eval t ~time sampler =
  let fresh = ref [] in
  let all = Sampler.series sampler in
  List.iter
    (fun r ->
      List.iter
        (fun ((k : Sampler.Key.t), s) ->
          if k.name = r.metric && k.field = r.field then
            match Series.last s with
            | None -> ()
            | Some v ->
                let id = (r.rule, k) in
                let firing =
                  match Hashtbl.find_opt t.active id with
                  | Some b -> b
                  | None -> false
                in
                let next =
                  match r.direction with
                  | Above -> if firing then v >= r.resolve else v >= r.fire
                  | Below -> if firing then v <= r.resolve else v <= r.fire
                in
                if next <> firing then begin
                  Hashtbl.replace t.active id next;
                  let tr =
                    {
                      time;
                      rule_name = r.rule;
                      key = k;
                      state = (if next then Firing else Resolved);
                      value = v;
                    }
                  in
                  t.log_rev <- tr :: t.log_rev;
                  fresh := tr :: !fresh
                end)
        all)
    t.rules;
  List.rev !fresh

let log t = List.rev t.log_rev

let absorb ~into ?(labels = []) src =
  let relabel tr =
    {
      tr with
      key =
        {
          tr.key with
          Sampler.Key.labels =
            Telemetry.Registry.Labels.v (labels @ tr.key.Sampler.Key.labels);
        };
    }
  in
  (* [log_rev] is newest-first; prepending the source's reversed log
     keeps the chronological order "host transitions, then source". *)
  into.log_rev <- List.map relabel src.log_rev @ into.log_rev

let state_label = function Firing -> "FIRING" | Resolved -> "resolved"

let value_str v =
  if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let pp ppf transitions =
  match transitions with
  | [] -> Format.fprintf ppf "  (no alert transitions)@."
  | _ ->
      let sorted =
        List.sort
          (fun a b ->
            match Float.compare a.time b.time with
            | 0 -> (
                match String.compare a.rule_name b.rule_name with
                | 0 -> Sampler.Key.compare a.key b.key
                | c -> c)
            | c -> c)
          transitions
      in
      List.iter
        (fun tr ->
          Format.fprintf ppf "  t=%-5.0f %-8s %-20s %s = %s@." tr.time
            (state_label tr.state) tr.rule_name
            (Sampler.Key.to_string tr.key)
            (value_str tr.value))
        sorted
