(** Periodic registry sampling into downsampling time series.

    Each call to {!sample} snapshots a {!Telemetry.Registry} and appends
    one sample per metric field to the matching {!Series}: counters and
    gauges contribute a ["value"] field, histograms a ["count"] field
    always plus ["mean"], ["p50"], ["p99"] and ["p999"] once they hold
    observations (so
    timelines never carry the NaN an empty histogram summarizes to).

    A sampler is single-domain: parallel tasks sample their own
    sub-sampler over their own sub-registry and the driver merges them
    back {e in submission order} with {!merge}, adding identifying
    labels — the same reduction discipline as [Telemetry.Registry.merge],
    so timelines are byte-identical at any job count. *)

module Key : sig
  type t = {
    name : string;  (** metric name *)
    labels : Telemetry.Registry.Labels.t;
    field : string;
        (** "value" | "count" | "mean" | "p50" | "p99" | "p999" *)
  }

  val compare : t -> t -> int
  (** Order by (name, labels, field) — the timeline order. *)

  val to_string : t -> string
  (** [name{labels}.field]; ".value" is omitted. *)
end

type t

val create : ?capacity:int -> unit -> t
(** [capacity] bounds every per-key series (default 256 points). *)

val key :
  ?labels:(string * string) list -> ?field:string -> string -> Key.t
(** Build a key; [field] defaults to ["value"].
    @raise Invalid_argument on malformed labels. *)

val observe : t -> time:float -> Key.t -> float -> unit
(** Append one sample to the series for [key], creating it on first
    use. *)

val sample : t -> time:float -> Telemetry.Registry.t -> unit
(** Snapshot the registry and observe every metric field at [time]. *)

val series : t -> (Key.t * Series.t) list
(** All series sorted by {!Key.compare}. *)

val find : t -> Key.t -> Series.t option

val merge : into:t -> ?labels:(string * string) list -> t -> unit
(** Transplant every series of the source, with [labels] prepended to
    each key (how a fleet tags a device's series with [device=...]).
    Points land via {!Series.append_point}, preserving the source's
    aggregation; when a relabeled key already exists in [into], the
    source points are appended after the existing ones — callers merge
    in submission order to keep this deterministic.
    @raise Invalid_argument if [labels] collides with a source key's
    existing label keys. *)
