(** Fixed-capacity downsampling time series.

    A series holds at most [capacity] points no matter how many samples
    are added: samples are aggregated into an open point until [stride]
    of them accumulate, the point is committed, and whenever the buffer
    fills the committed points are compacted pairwise (length halves,
    stride doubles).  Memory is O(capacity) regardless of run length,
    resolution degrades gracefully from the oldest data first — the
    classic downsampling ring the monitor builds its timelines on.

    All operations are deterministic functions of the (time, value)
    sequence; nothing here reads a wall clock.  A series is owned by one
    domain at a time (the monitor samples it from the simulation task
    that owns it and merges across tasks in submission order). *)

type point = {
  t0 : float;  (** sample time of the first aggregated sample *)
  t1 : float;  (** sample time of the last aggregated sample *)
  last : float;  (** most recent raw value in the window *)
  mean : float;
  vmin : float;
  vmax : float;
  n : int;  (** raw samples aggregated into this point *)
}

type t

val create : ?capacity:int -> unit -> t
(** Default capacity 256; odd capacities round up to even (compaction
    works in pairs).  @raise Invalid_argument when [capacity < 2]. *)

val add : t -> time:float -> float -> unit
(** Record one sample.  O(1) amortized. *)

val append_point : t -> point -> unit
(** Commit an already-aggregated point (flushing any open window first):
    how {!Sampler.merge} transplants a sub-series without losing its
    aggregation. *)

val points : t -> point list
(** Committed points oldest first, then the open window if any. *)

val length : t -> int
(** Number of points {!points} would return. *)

val total : t -> int
(** Raw samples absorbed over the series' lifetime. *)

val stride : t -> int
(** Raw samples per committed point at the current resolution. *)

val last : t -> float option
(** Most recent raw value, if any sample was ever added. *)
