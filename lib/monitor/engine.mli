(** The longitudinal monitor: sampler + alert rules + optional span
    sink behind one handle the execution context carries.

    An engine is single-domain.  Parallel drivers give each task a
    {!sub} engine (fresh state, same configuration) and {!absorb} the
    subs back {e in submission order} with identifying labels; the
    merged engine then renders timelines, health reports and traces
    that are byte-identical at any job count. *)

type t

val create :
  ?capacity:int ->
  ?sample_every:int ->
  ?rules:Alert.rule list ->
  ?sink:Telemetry.Trace.Sink.t ->
  unit ->
  t
(** [capacity] bounds each time series (default 256 points);
    [sample_every] is the epoch interval {!due} implements (default 1:
    every epoch).  @raise Invalid_argument when [sample_every < 1]. *)

val sample_every : t -> int

val due : t -> tick:int -> bool
(** Whether epoch [tick] is a sampling epoch
    ([tick mod sample_every = 0]). *)

val sample : t -> time:float -> Telemetry.Registry.t -> unit
(** Snapshot the registry into the time series, then evaluate the
    alert rules; fresh alert transitions are also recorded as instant
    events in the sink when one is attached. *)

val samples : t -> int
(** {!sample} calls so far (absorbed subs included). *)

val sampler : t -> Sampler.t
val alert_log : t -> Alert.transition list
val sink : t -> Telemetry.Trace.Sink.t option

val sub : t -> t
(** A fresh engine with the same configuration (capacity, interval,
    rules; a fresh sink iff the parent has one) and empty state — what
    one parallel task samples into. *)

val absorb : into:t -> ?labels:(string * string) list -> t -> unit
(** Merge a sub-engine back: series and alert transitions gain
    [labels] (e.g. [device=regens-3]); the sub's spans are spliced
    under [into]'s currently open span.  Call in submission order. *)
