type point = {
  t0 : float;
  t1 : float;
  last : float;
  mean : float;
  vmin : float;
  vmax : float;
  n : int;
}

type t = {
  capacity : int;
  data : point array;
  mutable len : int;
  mutable stride : int;
  mutable pending : point option;
  mutable pending_n : int;
}

let point_of ~time v =
  { t0 = time; t1 = time; last = v; mean = v; vmin = v; vmax = v; n = 1 }

let combine a b =
  {
    t0 = a.t0;
    t1 = b.t1;
    last = b.last;
    mean =
      ((a.mean *. float_of_int a.n) +. (b.mean *. float_of_int b.n))
      /. float_of_int (a.n + b.n);
    vmin = Float.min a.vmin b.vmin;
    vmax = Float.max a.vmax b.vmax;
    n = a.n + b.n;
  }

let create ?(capacity = 256) () =
  if capacity < 2 then invalid_arg "Series.create: capacity < 2";
  let capacity = if capacity land 1 = 1 then capacity + 1 else capacity in
  {
    capacity;
    data = Array.make capacity (point_of ~time:0. 0.);
    len = 0;
    stride = 1;
    pending = None;
    pending_n = 0;
  }

let compact t =
  let half = t.len / 2 in
  for i = 0 to half - 1 do
    t.data.(i) <- combine t.data.(2 * i) t.data.((2 * i) + 1)
  done;
  t.len <- half;
  t.stride <- t.stride * 2

let commit t p =
  t.data.(t.len) <- p;
  t.len <- t.len + 1;
  if t.len = t.capacity then compact t

let flush_pending t =
  match t.pending with
  | None -> ()
  | Some p ->
      t.pending <- None;
      t.pending_n <- 0;
      commit t p

let append_point t p =
  flush_pending t;
  commit t p

let add t ~time v =
  let p1 = point_of ~time v in
  (match t.pending with
  | None ->
      t.pending <- Some p1;
      t.pending_n <- 1
  | Some p ->
      t.pending <- Some (combine p p1);
      t.pending_n <- t.pending_n + 1);
  if t.pending_n >= t.stride then flush_pending t

let points t =
  let committed = Array.to_list (Array.sub t.data 0 t.len) in
  match t.pending with None -> committed | Some p -> committed @ [ p ]

let length t = t.len + (match t.pending with None -> 0 | Some _ -> 1)

let total t =
  let committed = ref 0 in
  for i = 0 to t.len - 1 do
    committed := !committed + t.data.(i).n
  done;
  !committed + match t.pending with None -> 0 | Some p -> p.n

let stride t = t.stride

let last t =
  match t.pending with
  | Some p -> Some p.last
  | None -> if t.len = 0 then None else Some t.data.(t.len - 1).last
