(** Chrome [trace_event] export of a structured span sink.

    Produces a JSON object loadable in [chrome://tracing] or Perfetto:
    complete events (["ph":"X"]) for spans and instant events
    (["ph":"i"]) for recorded instants, with the sink's logical ticks
    as microsecond timestamps — the trace is a deterministic function
    of the traced operations, never of wall time. *)

val to_string : Telemetry.Trace.Sink.t -> string
