type grade = Healthy | Degraded | Failing | Retired

let grade_label = function
  | Healthy -> "HEALTHY"
  | Degraded -> "DEGRADED"
  | Failing -> "FAILING"
  | Retired -> "RETIRED"

let grade_rank = function
  | Healthy -> 0
  | Degraded -> 1
  | Failing -> 2
  | Retired -> 3

type attribute = {
  attr : string;
  value : float;
  worst : float;
  threshold : float option;
  flag : grade option;
}

type report = { subject : string; grade : grade; attributes : attribute list }

type thresholds = {
  target_pec : float;
  margin_degraded : float;
  retry_rate_degraded : float;
  live_repair_rate_degraded : float;
}

let default_thresholds =
  {
    target_pec = 60.;
    margin_degraded = 1.25;
    retry_rate_degraded = 1e-3;
    live_repair_rate_degraded = 1e-4;
  }

(* "regens-2" sorts before "regens-10": compare the trailing integer
   numerically when both subjects share the non-numeric prefix. *)
let natural_compare a b =
  let split s =
    let n = String.length s in
    let i = ref n in
    while !i > 0 && s.[!i - 1] >= '0' && s.[!i - 1] <= '9' do
      decr i
    done;
    if !i = n then (s, -1)
    else (String.sub s 0 !i, int_of_string (String.sub s !i (n - !i)))
  in
  let pa, na = split a and pb, nb = split b in
  match String.compare pa pb with 0 -> compare na nb | c -> c

(* Least-squares slope of the [last] values against [t1] times. *)
let slope points =
  match points with
  | [] | [ _ ] -> 0.
  | points ->
      let n = float_of_int (List.length points) in
      let sx = List.fold_left (fun a (p : Series.point) -> a +. p.t1) 0. points
      and sy =
        List.fold_left (fun a (p : Series.point) -> a +. p.last) 0. points
      in
      let mx = sx /. n and my = sy /. n in
      let cov, var =
        List.fold_left
          (fun (cov, var) (p : Series.point) ->
            let dx = p.t1 -. mx in
            (cov +. (dx *. (p.last -. my)), var +. (dx *. dx)))
          (0., 0.) points
      in
      if var = 0. then 0. else cov /. var

let assess ?(thresholds = default_thresholds) ?(group_by = "device") sampler =
  let all = Sampler.series sampler in
  let subject_of ((k : Sampler.Key.t), _) =
    List.assoc_opt group_by k.labels
  in
  let subjects =
    List.filter_map subject_of all
    |> List.sort_uniq String.compare
    |> List.sort natural_compare
  in
  (* A monitor watching a single unlabeled device (the [age] path) is
     one subject owning every series. *)
  let subjects, member =
    if subjects = [] then
      ([ "device" ], fun _ (_ : Sampler.Key.t * Series.t) -> true)
    else (subjects, fun subject entry -> subject_of entry = Some subject)
  in
  List.map
    (fun subject ->
      let mine = List.filter (member subject) all in
      let matching names field =
        List.filter
          (fun ((k : Sampler.Key.t), _) ->
            List.mem k.name names && k.field = field)
          mine
        |> List.map snd
      in
      let fold_last combine names =
        match
          List.filter_map (fun s -> Series.last s) (matching names "value")
        with
        | [] -> None
        | v :: rest -> Some (List.fold_left combine v rest)
      in
      let sum_last = fold_last ( +. )
      and max_last = fold_last Float.max
      and min_last = fold_last Float.min in
      let worst_of fold names =
        match matching names "value" with
        | [] -> nan
        | series ->
            List.concat_map Series.points series
            |> List.fold_left (fun a (p : Series.point) -> fold a p) nan
      in
      let fold_nan f a b = if Float.is_nan a then b else f a b in
      let attrs = ref [] in
      let attr ?threshold ?flag ?(worst = nan) name value =
        let worst = if Float.is_nan worst then value else worst in
        attrs := { attr = name; value; worst; threshold; flag } :: !attrs
      in
      (* Availability: Retired once the device stopped serving. *)
      (match min_last [ "device_alive" ] with
      | Some alive ->
          attr "alive" alive
            ~worst:(worst_of (fun a p -> fold_nan Float.min a p.vmin)
                      [ "device_alive" ])
            ~threshold:1.
            ?flag:(if alive < 1. then Some Retired else None)
      | None -> ());
      (* Wear: highest per-block P/E count against the rated target, and
         the max-min spread the wear leveler is supposed to keep tight. *)
      (match max_last [ "flash_pec_max" ] with
      | Some pec ->
          attr "pe-cycles-max" pec
            ~worst:(worst_of (fun a p -> fold_nan Float.max a p.vmax)
                      [ "flash_pec_max" ])
            ~threshold:thresholds.target_pec
            ?flag:(if pec >= thresholds.target_pec then Some Degraded else None)
      | None -> ());
      (match (max_last [ "flash_pec_max" ], min_last [ "flash_pec_min" ]) with
      | Some hi, Some lo -> attr "wear-spread" (hi -. lo)
      | _ -> ());
      (* Raw media errors vs what the (strongest available) code can
         correct: the margin Salamander spends level by level. *)
      let rber = max_last [ "flash_rber_worst" ] in
      let tolerable = max_last [ "device_tolerable_rber" ] in
      (match rber with
      | Some r ->
          attr "rber-worst" r
            ~worst:(worst_of (fun a p -> fold_nan Float.max a p.vmax)
                      [ "flash_rber_worst" ])
            ?threshold:tolerable
            ?flag:
              (match tolerable with
              | Some t when r >= t -> Some Failing
              | _ -> None);
          (match matching [ "flash_rber_worst" ] "value" with
          | s :: _ -> attr "rber-trend" (slope (Series.points s))
          | [] -> ())
      | None -> ());
      (match (rber, tolerable) with
      | Some r, Some t when r > 0. ->
          let margin = t /. r in
          attr "ecc-margin" margin ~threshold:thresholds.margin_degraded
            ?flag:
              (if margin <= 1. then Some Failing
               else if margin < thresholds.margin_degraded then Some Degraded
               else None)
      | _ -> ());
      (* Retry-ladder escalation: retries per flash read. *)
      (match
         (sum_last [ "ftl_read_retries_total" ], sum_last [ "flash_reads_total" ])
       with
      | Some retries, Some reads when reads > 0. ->
          let rate = retries /. reads in
          attr "retry-rate" rate ~threshold:thresholds.retry_rate_degraded
            ?flag:
              (if rate >= thresholds.retry_rate_degraded then Some Degraded
               else None)
      | _ -> ());
      (* Foreground live repair: escalations per flash read.  Any
         repair activity means reads are exhausting their retry ladder
         — margin is being spent even when every repair lands. *)
      (match
         ( sum_last [ "difs_live_repair_attempts_total" ],
           sum_last [ "flash_reads_total" ] )
       with
      | Some repairs, Some reads when reads > 0. ->
          let rate = repairs /. reads in
          attr "live-repair-rate" rate
            ~threshold:thresholds.live_repair_rate_degraded
            ?flag:
              (if rate >= thresholds.live_repair_rate_degraded then
                 Some Degraded
               else None)
      | _ -> ());
      (* Anything uncorrectable is (at least) lost data. *)
      (match
         sum_last
           [ "ftl_uncorrectable_reads_total"; "difs_unrecoverable_opages_total" ]
       with
      | Some u ->
          attr "uncorrectable" u ~threshold:0.
            ?flag:(if u > 0. then Some Failing else None)
      | None -> ());
      (* Salamander life-extension activity: shrinks consumed capacity,
         regens consumed spare margin — both are visible ageing. *)
      (match sum_last [ "salamander_decommissions_total" ] with
      | Some d ->
          attr "shrinks" d ~threshold:0.
            ?flag:(if d > 0. then Some Degraded else None)
      | None -> ());
      (match sum_last [ "salamander_regenerations_total" ] with
      | Some r -> attr "regens" r
      | None -> ());
      (* Cluster subjects: scrub debt (mismatches found but not yet
         repaired) and chunk loss. *)
      (match
         ( sum_last [ "difs_scrub_mismatches_total" ],
           sum_last [ "difs_scrub_repairs_total" ] )
       with
      | Some m, repairs ->
          let failures =
            Option.value ~default:0.
              (sum_last [ "difs_scrub_repair_failures_total" ])
          in
          let debt =
            Float.max 0. (m -. Option.value ~default:0. repairs) +. failures
          in
          attr "scrub-debt" debt ~threshold:0.
            ?flag:(if debt > 0. then Some Degraded else None)
      | None, _ -> ());
      (match sum_last [ "difs_lost_chunks_total" ] with
      | Some l ->
          attr "lost-chunks" l ~threshold:0.
            ?flag:(if l > 0. then Some Failing else None)
      | None -> ());
      let attributes = List.rev !attrs in
      let grade =
        List.fold_left
          (fun g a ->
            match a.flag with
            | Some f when grade_rank f > grade_rank g -> f
            | _ -> g)
          Healthy attributes
      in
      { subject; grade; attributes })
    subjects

let cell v =
  if Float.is_nan v then "-"
  else if Float.is_integer v && Float.abs v < 1e15 then Printf.sprintf "%.0f" v
  else Printf.sprintf "%.4g" v

let pp ppf reports =
  match reports with
  | [] -> Format.fprintf ppf "  (no subjects sampled)@."
  | _ ->
      List.iter
        (fun r ->
          Format.fprintf ppf "  %s: %s@." r.subject (grade_label r.grade);
          let rows =
            List.map
              (fun a ->
                ( a.attr,
                  cell a.value,
                  cell a.worst,
                  (match a.threshold with None -> "-" | Some t -> cell t),
                  match a.flag with None -> "ok" | Some f -> grade_label f ))
              r.attributes
          in
          let w f =
            List.fold_left (fun w row -> Stdlib.max w (String.length (f row)))
              0 rows
          in
          let w1 = Stdlib.max (w (fun (a, _, _, _, _) -> a)) 9
          and w2 = Stdlib.max (w (fun (_, v, _, _, _) -> v)) 5
          and w3 = Stdlib.max (w (fun (_, _, v, _, _) -> v)) 5
          and w4 = Stdlib.max (w (fun (_, _, _, v, _) -> v)) 9 in
          Format.fprintf ppf "    %-*s  %*s  %*s  %*s  %s@." w1 "attribute" w2
            "value" w3 "worst" w4 "threshold" "status";
          List.iter
            (fun (a, v, worst, threshold, status) ->
              Format.fprintf ppf "    %-*s  %*s  %*s  %*s  %s@." w1 a w2 v w3
                worst w4 threshold status)
            rows)
        reports
