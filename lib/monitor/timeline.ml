let num = Telemetry.Export.json_float

let csv_field s =
  if String.contains s ',' || String.contains s '"' then
    (* Label values cannot contain '"' (Labels.v rejects it), but quote
       defensively per RFC 4180 anyway. *)
    "\""
    ^ String.concat "\"\"" (String.split_on_char '"' s)
    ^ "\""
  else s

let to_csv sampler =
  let buffer = Buffer.create 4096 in
  Buffer.add_string buffer "metric,labels,field,t0,t1,last,mean,min,max,n\n";
  List.iter
    (fun ((k : Sampler.Key.t), series) ->
      let prefix =
        Printf.sprintf "%s,%s,%s" (csv_field k.name)
          (csv_field (Telemetry.Registry.Labels.to_string k.labels))
          (csv_field k.field)
      in
      List.iter
        (fun (p : Series.point) ->
          Buffer.add_string buffer
            (Printf.sprintf "%s,%s,%s,%s,%s,%s,%s,%d\n" prefix (num p.t0)
               (num p.t1) (num p.last) (num p.mean) (num p.vmin) (num p.vmax)
               p.n))
        (Series.points series))
    (Sampler.series sampler);
  Buffer.contents buffer

let to_jsonl sampler =
  let buffer = Buffer.create 4096 in
  List.iter
    (fun ((k : Sampler.Key.t), series) ->
      Buffer.add_string buffer
        (Printf.sprintf "{\"metric\":\"%s\",\"labels\":{%s},\"field\":\"%s\""
           (Telemetry.Export.json_escape k.name)
           (String.concat ","
              (List.map
                 (fun (key, v) ->
                   Printf.sprintf "\"%s\":\"%s\""
                     (Telemetry.Export.json_escape key)
                     (Telemetry.Export.json_escape v))
                 k.labels))
           (Telemetry.Export.json_escape k.field));
      Buffer.add_string buffer ",\"points\":[";
      List.iteri
        (fun i (p : Series.point) ->
          if i > 0 then Buffer.add_char buffer ',';
          Buffer.add_string buffer
            (Printf.sprintf "[%s,%s,%s,%s,%s,%s,%d]" (num p.t0) (num p.t1)
               (num p.last) (num p.mean) (num p.vmin) (num p.vmax) p.n))
        (Series.points series);
      Buffer.add_string buffer "]}\n")
    (Sampler.series sampler);
  Buffer.contents buffer
