(** Threshold alerting with hysteresis over sampled series.

    A rule watches every series whose (metric, field) matches and keeps
    one firing/resolved state per series.  An [Above] rule fires when
    the latest value reaches [fire] and resolves only once it drops
    below [resolve] (with [resolve <= fire], the hysteresis band);
    [Below] mirrors that.  Transitions are recorded at sample times on
    the simulation clock — never wall-clock — so the alert log is a
    deterministic function of the sampled data. *)

type direction = Above | Below

type rule = private {
  rule : string;
  metric : string;
  field : string;
  direction : direction;
  fire : float;
  resolve : float;
}

val rule :
  ?field:string ->
  ?direction:direction ->
  metric:string ->
  fire:float ->
  resolve:float ->
  string ->
  rule
(** [field] defaults to ["value"], [direction] to [Above].
    @raise Invalid_argument when the hysteresis band is inverted
    ([Above] needs [resolve <= fire]; [Below] the opposite). *)

type state = Firing | Resolved

type transition = {
  time : float;
  rule_name : string;
  key : Sampler.Key.t;
  state : state;
  value : float;
}

type t

val create : rule list -> t
val rules : t -> rule list

val eval : t -> time:float -> Sampler.t -> transition list
(** Evaluate every rule against the sampler's latest values; record and
    return the state changes (in rule order, series order within a
    rule). *)

val log : t -> transition list
(** Every transition recorded so far, in the order they were recorded
    (absorbed sub-logs follow the host's own, in absorption order). *)

val absorb : into:t -> ?labels:(string * string) list -> t -> unit
(** Append a sub-evaluator's log with [labels] prepended to each
    transition's series key (mirrors {!Sampler.merge}). *)

val pp : Format.formatter -> transition list -> unit
(** Render transitions sorted by (time, rule, series). *)
