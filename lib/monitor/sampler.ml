module Key = struct
  type t = {
    name : string;
    labels : Telemetry.Registry.Labels.t;
    field : string;
  }

  let compare a b =
    match String.compare a.name b.name with
    | 0 -> (
        match
          String.compare
            (Telemetry.Registry.Labels.to_string a.labels)
            (Telemetry.Registry.Labels.to_string b.labels)
        with
        | 0 -> String.compare a.field b.field
        | c -> c)
    | c -> c

  let to_string k =
    let labels =
      match k.labels with
      | [] -> ""
      | labels -> "{" ^ Telemetry.Registry.Labels.to_string labels ^ "}"
    in
    let field = if k.field = "value" then "" else "." ^ k.field in
    k.name ^ labels ^ field
end

type t = { capacity : int; table : (Key.t, Series.t) Hashtbl.t }

let create ?(capacity = 256) () = { capacity; table = Hashtbl.create 64 }

let key ?(labels = []) ?(field = "value") name =
  { Key.name; labels = Telemetry.Registry.Labels.v labels; field }

let series_for t k =
  match Hashtbl.find_opt t.table k with
  | Some s -> s
  | None ->
      let s = Series.create ~capacity:t.capacity () in
      Hashtbl.replace t.table k s;
      s

let observe t ~time k v = Series.add (series_for t k) ~time v

let sample t ~time registry =
  List.iter
    (fun (s : Telemetry.Registry.sample) ->
      let k field = { Key.name = s.name; labels = s.labels; field } in
      match s.value with
      | Telemetry.Registry.Counter v ->
          observe t ~time (k "value") (float_of_int v)
      | Telemetry.Registry.Gauge v -> observe t ~time (k "value") v
      | Telemetry.Registry.Histogram sum ->
          observe t ~time (k "count") (float_of_int sum.count);
          if sum.count > 0 then begin
            observe t ~time (k "mean") sum.mean;
            observe t ~time (k "p50") sum.p50;
            observe t ~time (k "p99") sum.p99;
            observe t ~time (k "p999") sum.p999
          end)
    (Telemetry.Registry.snapshot registry)

let series t =
  Hashtbl.fold (fun k s acc -> (k, s) :: acc) t.table []
  |> List.sort (fun (a, _) (b, _) -> Key.compare a b)

let find t k = Hashtbl.find_opt t.table k

let merge ~into ?(labels = []) src =
  List.iter
    (fun ((k : Key.t), s) ->
      let k =
        { k with Key.labels = Telemetry.Registry.Labels.v (labels @ k.labels) }
      in
      let dst = series_for into k in
      List.iter (Series.append_point dst) (Series.points s))
    (series src)
