type action =
  | Inject of { block : int; page : int; fault : Flash.Chip.fault }
  | Kill_device of int
  | Power_cut

type t = {
  plan : Plan.t;
  rng : Sim.Rng.t;
  mutable transient : int;
  mutable sticky : int;
  mutable silent : int;
  mutable correlated : int;
  mutable kills : int;
  mutable crashes : int;
}

let create ~rng plan =
  {
    plan;
    rng;
    transient = 0;
    sticky = 0;
    silent = 0;
    correlated = 0;
    kills = 0;
    crashes = 0;
  }

(* A correlated failure models plane/die-scope damage: every page of a
   span of adjacent blocks goes stuck at once. *)
let stuck_rber = 1.

let random_page t (g : Flash.Geometry.t) =
  let block = Sim.Rng.int t.rng g.Flash.Geometry.blocks in
  let page = Sim.Rng.int t.rng g.Flash.Geometry.pages_per_block in
  (block, page)

let spec_actions t (g : Flash.Geometry.t) ~step:now spec =
  match spec with
  | Plan.Transient_flips { per_step; extra_rber } ->
      if Sim.Rng.chance t.rng per_step then begin
        let block, page = random_page t g in
        t.transient <- t.transient + 1;
        [ Inject { block; page; fault = Flash.Chip.Transient_rber extra_rber } ]
      end
      else []
  | Plan.Sticky_pages { per_step; extra_rber } ->
      if Sim.Rng.chance t.rng per_step then begin
        let block, page = random_page t g in
        t.sticky <- t.sticky + 1;
        [ Inject { block; page; fault = Flash.Chip.Sticky_rber extra_rber } ]
      end
      else []
  | Plan.Silent_corruption { per_step } ->
      if Sim.Rng.chance t.rng per_step then begin
        let block, page = random_page t g in
        let mask = 1 + Sim.Rng.int t.rng 0xFF_FFFF in
        t.silent <- t.silent + 1;
        [ Inject { block; page; fault = Flash.Chip.Silent_corruption mask } ]
      end
      else []
  | Plan.Correlated_failure { at_step; blocks } ->
      if now <> at_step then []
      else begin
        let start = Sim.Rng.int t.rng g.Flash.Geometry.blocks in
        let span = Stdlib.min blocks g.Flash.Geometry.blocks in
        let actions = ref [] in
        for b = span - 1 downto 0 do
          let block = (start + b) mod g.Flash.Geometry.blocks in
          for page = g.Flash.Geometry.pages_per_block - 1 downto 0 do
            t.correlated <- t.correlated + 1;
            actions :=
              Inject { block; page; fault = Flash.Chip.Sticky_rber stuck_rber }
              :: !actions
          done
        done;
        !actions
      end
  | Plan.Device_death { at_step; victim } ->
      if now <> at_step then []
      else begin
        t.kills <- t.kills + 1;
        [ Kill_device victim ]
      end
  | Plan.Power_loss { at_step } ->
      if now <> at_step then []
      else begin
        t.crashes <- t.crashes + 1;
        [ Power_cut ]
      end

let step t ~geometry ~step =
  List.concat_map (spec_actions t geometry ~step) t.plan

let injected t =
  [
    ("transient", t.transient);
    ("sticky", t.sticky);
    ("silent", t.silent);
    ("correlated", t.correlated);
    ("kill", t.kills);
    ("crash", t.crashes);
  ]

let total t = List.fold_left (fun acc (_, n) -> acc + n) 0 (injected t)
