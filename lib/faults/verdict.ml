type check = { name : string; ok : bool; detail : string }
type t = check list

let all_ok t = List.for_all (fun c -> c.ok) t

let pp fmt t =
  List.iter
    (fun c ->
      Format.fprintf fmt "[%s] %s: %s@." (if c.ok then "PASS" else "FAIL")
        c.name c.detail)
    t

module Monotone = struct
  type entry = {
    mutable last : int;
    mutable violations : int;
    mutable first_drop : string;
  }

  type t = (string, entry) Hashtbl.t

  let create () : t = Hashtbl.create 7

  let observe t ~name value =
    match Hashtbl.find_opt t name with
    | None -> Hashtbl.add t name { last = value; violations = 0; first_drop = "" }
    | Some e ->
        if value < e.last then begin
          e.violations <- e.violations + 1;
          if e.first_drop = "" then
            e.first_drop <- Printf.sprintf "%d -> %d" e.last value
        end;
        e.last <- value

  let checks t =
    Hashtbl.fold (fun name e acc -> (name, e) :: acc) t []
    |> List.sort (fun (a, _) (b, _) -> String.compare a b)
    |> List.map (fun (name, e) ->
           {
             name = Printf.sprintf "%s monotone" name;
             ok = e.violations = 0;
             detail =
               (if e.violations = 0 then
                  Printf.sprintf "never decreased (last %d)" e.last
                else
                  Printf.sprintf "%d decrease%s, first %s" e.violations
                    (if e.violations = 1 then "" else "s")
                    e.first_drop);
           })
end

let reconcile_torn_write ~engine ~acked ~trimmed ~logical ~payload =
  match Ftl.Engine.read engine ~logical with
  | Ok v when v = payload ->
      (* The interrupted write landed before the cut: an overwrite is
         allowed to survive its own crash, so fold it into the shadow. *)
      Hashtbl.replace acked logical payload;
      Hashtbl.remove trimmed logical
  | Ok _ | Error `Unmapped | Error `Uncorrectable ->
      (* Old value retained, still unmapped, or unreadable: all legal —
         and any *illegal* state (a value that is neither old nor new, a
         resurrection) contradicts the untouched shadow, so check_engine
         flags it. *)
      ()

let check_engine ~engine ~acked ~trimmed =
  let checked = ref 0
  and lost = ref 0
  and wrong = ref 0
  and unreadable = ref 0 in
  let acked_lbas =
    List.sort compare (Hashtbl.fold (fun k v acc -> (k, v) :: acc) acked [])
  in
  List.iter
    (fun (logical, expected) ->
      incr checked;
      match Ftl.Engine.read engine ~logical with
      | Ok payload -> if payload <> expected then incr wrong
      | Error `Unmapped -> incr lost
      | Error `Uncorrectable -> incr unreadable)
    acked_lbas;
  let trimmed_n = ref 0 and resurrected = ref 0 in
  let trimmed_lbas =
    List.sort compare (Hashtbl.fold (fun k () acc -> k :: acc) trimmed [])
  in
  List.iter
    (fun logical ->
      incr trimmed_n;
      match Ftl.Engine.read engine ~logical with
      | Error `Unmapped -> ()
      | Ok _ | Error `Uncorrectable -> incr resurrected)
    trimmed_lbas;
  [
    {
      name = "no acked-write loss";
      ok = !lost = 0;
      detail =
        Printf.sprintf "%d/%d acked oPages mapped, %d uncorrectable tolerated"
          (!checked - !lost) !checked !unreadable;
    };
    {
      name = "acked payloads intact";
      ok = !wrong = 0;
      detail =
        Printf.sprintf "%d/%d readable payloads matched"
          (!checked - !lost - !unreadable - !wrong)
          (!checked - !lost - !unreadable);
    };
    {
      name = "no trim resurrection";
      ok = !resurrected = 0;
      detail =
        Printf.sprintf "%d/%d trimmed LBAs stayed unmapped"
          (!trimmed_n - !resurrected) !trimmed_n;
    };
  ]

let check_cluster cluster =
  let audit = Difs.Cluster.audit cluster in
  let audit_check =
    {
      name = "placement audit clean";
      ok = audit = [];
      detail =
        (match audit with
        | [] -> "no violations"
        | v :: _ ->
            Printf.sprintf "%d violation%s, first: %s" (List.length audit)
              (if List.length audit = 1 then "" else "s")
              v);
    }
  in
  let share_opages = Difs.Cluster.share_opages cluster in
  let rebuilt = Difs.Cluster.rebuilt_shares cluster in
  let aborts = Difs.Cluster.rebuild_aborts cluster in
  let written = Difs.Cluster.recovery_opages cluster in
  let unrecoverable = Difs.Cluster.unrecoverable_opages cluster in
  let accounting =
    {
      name = "recovery accounting balances";
      ok =
        written + unrecoverable >= rebuilt * share_opages
        && written <= (rebuilt + aborts) * share_opages;
      detail =
        Printf.sprintf
          "%d written + %d unrecoverable vs %d rebuilt x %d oPages (%d \
           aborts)"
          written unrecoverable rebuilt share_opages aborts;
    }
  in
  let quorum = Difs.Cluster.read_quorum cluster in
  let chunk_opages = (Difs.Cluster.config cluster).Difs.Cluster.chunk_opages in
  let with_quorum = ref 0
  and below_quorum = ref 0
  and unreadable = ref 0
  and corrupt = ref 0 in
  List.iter
    (fun id ->
      match Difs.Cluster.share_count cluster id with
      | None -> ()
      | Some shares when shares < quorum -> incr below_quorum
      | Some _ -> (
          incr with_quorum;
          match Difs.Cluster.read_chunk cluster id with
          | Ok matches -> if matches <> chunk_opages then incr corrupt
          | Error _ -> incr unreadable))
    (List.sort compare (Difs.Cluster.chunks cluster));
  let readable =
    {
      name = "quorum chunks readable";
      ok = !unreadable = 0;
      detail =
        Printf.sprintf
          "%d/%d chunks with >= %d shares readable (%d below quorum, \
           tolerated as lost)"
          (!with_quorum - !unreadable)
          !with_quorum quorum !below_quorum;
    }
  in
  let intact =
    {
      name = "quorum chunks content intact";
      ok = !corrupt = 0;
      detail =
        Printf.sprintf "%d/%d readable chunks fully matched"
          (!with_quorum - !unreadable - !corrupt)
          (!with_quorum - !unreadable);
    }
  in
  (* Read the live-repair counters after the chunk sweep: repair-on-read
     inside [read_chunk] above legally moves them, and the accounting
     must cover those repairs too. *)
  let live_attempts = Difs.Cluster.live_repair_attempts cluster in
  let live_successes = Difs.Cluster.live_repair_successes cluster in
  let live_failures = Difs.Cluster.live_repair_failures cluster in
  let rewritten = Difs.Cluster.live_repair_rewritten_opages cluster in
  let live_accounting =
    {
      name = "live-repair accounting balances";
      ok =
        live_successes + live_failures = live_attempts
        && rewritten <= live_successes;
      detail =
        Printf.sprintf
          "%d attempts = %d successes + %d failures, %d oPages rewritten"
          live_attempts live_successes live_failures rewritten;
    }
  in
  let with_replica = Difs.Cluster.corrupt_reads_with_replica cluster in
  let no_corrupt_with_replica =
    {
      name = "no corrupt read with healthy replica";
      ok = with_replica = 0;
      detail =
        Printf.sprintf
          "%d corrupt oPages served despite a healthy replica (%d served \
           legally degraded)"
          with_replica
          (Difs.Cluster.corrupt_reads_served cluster);
    }
  in
  [
    audit_check;
    accounting;
    readable;
    intact;
    live_accounting;
    no_corrupt_with_replica;
  ]
