(** Invariant checks a fault campaign must not break.

    Injection without a verdict is just vandalism: these checks pin down
    what "the software tolerated the faults" means, layer by layer.

    {b Engine} (run against the post-campaign FTL and the workload's
    shadow of acknowledged state):
    - no acknowledged-write loss — every acked logical oPage is still
      mapped (an [`Uncorrectable] read is tolerated media loss, counted
      in the detail; a silent [`Unmapped] is a lost write);
    - acked payloads that do read back match what was acknowledged;
    - no trim resurrection — trimmed LBAs stay unmapped across crashes.

    {b Cluster} (run after the campaign's final repair + scrub):
    - the placement {!Difs.Cluster.audit} is clean;
    - recovery-write accounting balances:
      [recovery_opages + unrecoverable_opages >= rebuilt_shares *
      share_opages], with
      [recovery_opages <= (rebuilt_shares + rebuild_aborts) *
      share_opages];
    - no chunk is lost while >= read-quorum shares survive: every such
      chunk is fully readable with intact content. *)

type check = { name : string; ok : bool; detail : string }

type t = check list

val all_ok : t -> bool

val pp : Format.formatter -> t -> unit
(** One [ [PASS]/[FAIL] name: detail ] line per check. *)

val reconcile_torn_write :
  engine:Ftl.Engine.t ->
  acked:(int, int) Hashtbl.t ->
  trimmed:(int, unit) Hashtbl.t ->
  logical:int ->
  payload:int ->
  unit
(** Call after a power cut interrupted [write ~logical ~payload] (the
    write raised, so it was never acknowledged) and the engine was
    crash-rebuilt.  A torn write may legally land or vanish; this reads
    the LBA back and folds a landed overwrite into the shadow tables,
    leaving them untouched otherwise so {!check_engine} still catches
    genuinely illegal states (a value that is neither old nor new, a
    trim resurrection). *)

val check_engine :
  engine:Ftl.Engine.t ->
  acked:(int, int) Hashtbl.t ->
  trimmed:(int, unit) Hashtbl.t ->
  t
(** [acked] maps logical oPage -> last acknowledged payload; [trimmed]
    holds LBAs whose latest acknowledged operation was a trim.  Reads
    the engine (so run it when the workload is done). *)

val check_cluster : Difs.Cluster.t -> t
(** Expects the harness to have run {!Difs.Cluster.repair} and a full
    {!Difs.Cluster.scrub} sweep first, so surviving shares are readable
    and content-clean. *)
