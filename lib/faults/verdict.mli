(** Invariant checks a fault campaign must not break.

    Injection without a verdict is just vandalism: these checks pin down
    what "the software tolerated the faults" means, layer by layer.

    {b Engine} (run against the post-campaign FTL and the workload's
    shadow of acknowledged state):
    - no acknowledged-write loss — every acked logical oPage is still
      mapped (an [`Uncorrectable] read is tolerated media loss, counted
      in the detail; a silent [`Unmapped] is a lost write);
    - acked payloads that do read back match what was acknowledged;
    - no trim resurrection — trimmed LBAs stay unmapped across crashes.

    {b Cluster} (run after the campaign's final repair + scrub):
    - the placement {!Difs.Cluster.audit} is clean;
    - recovery-write accounting balances:
      [recovery_opages + unrecoverable_opages >= rebuilt_shares *
      share_opages], with
      [recovery_opages <= (rebuilt_shares + rebuild_aborts) *
      share_opages];
    - no chunk is lost while >= read-quorum shares survive: every such
      chunk is fully readable with intact content;
    - live-repair accounting balances ([attempts = successes +
      failures], [rewritten <= successes]);
    - no read served corrupt data while a healthy replica existed
      ([corrupt_reads_with_replica = 0] — the live-recovery promise).

    {b Monotone} counters (observed step by step while the campaign
    runs): values that must never decrease — e.g.
    [unrecoverable_opages], which live repair may stop from {e growing}
    but must never roll {e back}. *)

type check = { name : string; ok : bool; detail : string }

type t = check list

val all_ok : t -> bool

val pp : Format.formatter -> t -> unit
(** One [ [PASS]/[FAIL] name: detail ] line per check. *)

(** Tracks named counters that must be monotone non-decreasing over a
    campaign.  [observe] each counter once per step; [checks] folds the
    history into one verdict check per counter (sorted by name, so the
    output is deterministic). *)
module Monotone : sig
  type t

  val create : unit -> t
  val observe : t -> name:string -> int -> unit

  val checks : t -> check list
  (** A counter never observed yields no check. *)
end

val reconcile_torn_write :
  engine:Ftl.Engine.t ->
  acked:(int, int) Hashtbl.t ->
  trimmed:(int, unit) Hashtbl.t ->
  logical:int ->
  payload:int ->
  unit
(** Call after a power cut interrupted [write ~logical ~payload] (the
    write raised, so it was never acknowledged) and the engine was
    crash-rebuilt.  A torn write may legally land or vanish; this reads
    the LBA back and folds a landed overwrite into the shadow tables,
    leaving them untouched otherwise so {!check_engine} still catches
    genuinely illegal states (a value that is neither old nor new, a
    trim resurrection). *)

val check_engine :
  engine:Ftl.Engine.t ->
  acked:(int, int) Hashtbl.t ->
  trimmed:(int, unit) Hashtbl.t ->
  t
(** [acked] maps logical oPage -> last acknowledged payload; [trimmed]
    holds LBAs whose latest acknowledged operation was a trim.  Reads
    the engine (so run it when the workload is done). *)

val check_cluster : Difs.Cluster.t -> t
(** Expects the harness to have run {!Difs.Cluster.repair} and a full
    {!Difs.Cluster.scrub} sweep first, so surviving shares are readable
    and content-clean. *)
