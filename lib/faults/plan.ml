type spec =
  | Transient_flips of { per_step : float; extra_rber : float }
  | Sticky_pages of { per_step : float; extra_rber : float }
  | Silent_corruption of { per_step : float }
  | Correlated_failure of { at_step : int; blocks : int }
  | Device_death of { at_step : int; victim : int }
  | Power_loss of { at_step : int }

type t = spec list

let pp_spec fmt = function
  | Transient_flips { per_step; extra_rber } ->
      Format.fprintf fmt "transient=%g@@%g" per_step extra_rber
  | Sticky_pages { per_step; extra_rber } ->
      Format.fprintf fmt "sticky=%g@@%g" per_step extra_rber
  | Silent_corruption { per_step } -> Format.fprintf fmt "silent=%g" per_step
  | Correlated_failure { at_step; blocks } ->
      Format.fprintf fmt "corr@@%d:%d" at_step blocks
  | Device_death { at_step; victim } ->
      Format.fprintf fmt "kill@@%d:%d" at_step victim
  | Power_loss { at_step } -> Format.fprintf fmt "crash@@%d" at_step

let pp fmt = function
  | [] -> Format.pp_print_string fmt "none"
  | specs ->
      Format.pp_print_list
        ~pp_sep:(fun fmt () -> Format.pp_print_char fmt ',')
        pp_spec fmt specs

let to_string t = Format.asprintf "%a" pp t

let presets =
  [
    ("none", []);
    ( "default",
      [
        Transient_flips { per_step = 0.05; extra_rber = 0.05 };
        Sticky_pages { per_step = 0.01; extra_rber = 1. };
        Silent_corruption { per_step = 0.02 };
        Correlated_failure { at_step = 400; blocks = 3 };
        Device_death { at_step = 600; victim = 1 };
        Power_loss { at_step = 800 };
      ] );
    ( "media",
      [
        Transient_flips { per_step = 0.1; extra_rber = 0.05 };
        Sticky_pages { per_step = 0.02; extra_rber = 1. };
        Silent_corruption { per_step = 0.05 };
      ] );
    ( "crashy",
      [
        Transient_flips { per_step = 0.02; extra_rber = 0.05 };
        Power_loss { at_step = 100 };
        Power_loss { at_step = 250 };
        Power_loss { at_step = 400 };
        Power_loss { at_step = 550 };
        Power_loss { at_step = 700 };
      ] );
    ( "killer",
      [
        Device_death { at_step = 200; victim = 0 };
        Correlated_failure { at_step = 350; blocks = 4 };
        Device_death { at_step = 500; victim = 2 };
      ] );
    (* Recovery-focused mixes: heavy sticky damage exhausts retry
       ladders (the live-repair escalation trigger), silent flips feed
       repair-on-read. *)
    ("sticky", [ Sticky_pages { per_step = 0.08; extra_rber = 2. } ]);
    ("silent", [ Silent_corruption { per_step = 0.1 } ]);
    ( "live-recovery",
      [
        Sticky_pages { per_step = 0.05; extra_rber = 2. };
        Silent_corruption { per_step = 0.05 };
        Device_death { at_step = 500; victim = 1 };
      ] );
  ]

(* A scanner that only succeeds when it consumes the whole item. *)
let try_scan s fmt f =
  try Some (Scanf.sscanf s fmt f)
  with Scanf.Scan_failure _ | Failure _ | End_of_file -> None

let parse_spec item =
  let prob what p k =
    if p < 0. || p > 1. then
      Error (Printf.sprintf "%s: probability %g not in [0, 1]" what p)
    else k ()
  in
  let rber what r k =
    if r < 0. then Error (Printf.sprintf "%s: negative RBER %g" what r)
    else k ()
  in
  let step what s k =
    if s < 0 then Error (Printf.sprintf "%s: negative step %d" what s)
    else k ()
  in
  let scanners =
    [
      (fun () ->
        Option.map
          (fun (p, r) ->
            prob "transient" p @@ fun () ->
            rber "transient" r @@ fun () ->
            Ok (Transient_flips { per_step = p; extra_rber = r }))
          (try_scan item "transient=%f@%f%!" (fun p r -> (p, r))));
      (fun () ->
        Option.map
          (fun p ->
            prob "transient" p @@ fun () ->
            Ok (Transient_flips { per_step = p; extra_rber = 0.05 }))
          (try_scan item "transient=%f%!" Fun.id));
      (fun () ->
        Option.map
          (fun (p, r) ->
            prob "sticky" p @@ fun () ->
            rber "sticky" r @@ fun () ->
            Ok (Sticky_pages { per_step = p; extra_rber = r }))
          (try_scan item "sticky=%f@%f%!" (fun p r -> (p, r))));
      (fun () ->
        Option.map
          (fun p ->
            prob "sticky" p @@ fun () ->
            Ok (Sticky_pages { per_step = p; extra_rber = 1. }))
          (try_scan item "sticky=%f%!" Fun.id));
      (fun () ->
        Option.map
          (fun p ->
            prob "silent" p @@ fun () ->
            Ok (Silent_corruption { per_step = p }))
          (try_scan item "silent=%f%!" Fun.id));
      (fun () ->
        Option.map
          (fun (s, n) ->
            step "corr" s @@ fun () ->
            if n < 1 then Error "corr: needs at least one block"
            else Ok (Correlated_failure { at_step = s; blocks = n }))
          (try_scan item "corr@%d:%d%!" (fun s n -> (s, n))));
      (fun () ->
        Option.map
          (fun (s, v) ->
            step "kill" s @@ fun () ->
            if v < 0 then Error "kill: negative victim"
            else Ok (Device_death { at_step = s; victim = v }))
          (try_scan item "kill@%d:%d%!" (fun s v -> (s, v))));
      (fun () ->
        Option.map
          (fun s -> step "crash" s @@ fun () -> Ok (Power_loss { at_step = s }))
          (try_scan item "crash@%d%!" Fun.id));
    ]
  in
  match List.find_map (fun scan -> scan ()) scanners with
  | Some result -> result
  | None -> Error (Printf.sprintf "cannot parse fault spec %S" item)

let parse input =
  let input = String.trim input in
  match List.assoc_opt input presets with
  | Some plan -> Ok plan
  | None ->
      if input = "" then Error "empty fault plan (use \"none\")"
      else
        let rec go acc = function
          | [] -> Ok (List.rev acc)
          | item :: rest -> (
              match parse_spec (String.trim item) with
              | Ok spec -> go (spec :: acc) rest
              | Error _ as e -> e)
        in
        go [] (String.split_on_char ',' input)
