(** Declarative fault plans.

    A plan is the what/when/how-often of an injection campaign, fixed
    before the run starts: rate-driven media faults (sampled each step
    from the injector's seeded stream) and scheduled one-shot events
    (fired at an exact step).  Separating the plan from the injector
    keeps campaigns reproducible — same plan + same seed = the same
    faults, wherever the plan came from (CLI string, preset, test).

    The fault classes and the tolerance mechanism each one exercises:

    - {{!spec.Transient_flips} transient flips} — one-shot RBER spikes
      absorbed by the FTL's read-retry ladder;
    - {{!spec.Sticky_pages} sticky pages} — latent corruption that
      persists until the block is erased; survives retries, so it
      escalates to [`Uncorrectable] and the diFS share rebuild;
    - {{!spec.Silent_corruption} silent corruption} — wrong payloads
      below the ECC's radar, caught only by the diFS scrubber;
    - {{!spec.Correlated_failure} correlated block failures} — a span of
      neighbouring blocks stuck at once (plane/die scope), stressing
      repair under burst loss;
    - {{!spec.Device_death} device death} — whole-controller loss via
      [Difs.Cluster.kill_device];
    - {{!spec.Power_loss} power loss} — a crash routed through
      [Ftl.Engine.crash_rebuild]. *)

type spec =
  | Transient_flips of { per_step : float; extra_rber : float }
  | Sticky_pages of { per_step : float; extra_rber : float }
  | Silent_corruption of { per_step : float }
  | Correlated_failure of { at_step : int; blocks : int }
  | Device_death of { at_step : int; victim : int }
  | Power_loss of { at_step : int }

type t = spec list

val parse : string -> (t, string) result
(** Parse a preset name ({!presets}) or a comma-separated spec list:
    [transient=P[@R]], [sticky=P[@R]], [silent=P], [corr@STEP:BLOCKS],
    [kill@STEP:VICTIM], [crash@STEP] — with [P] a per-step probability,
    [R] an extra raw bit error rate.  [parse (to_string t) = Ok t]. *)

val presets : (string * t) list
(** Named default campaigns: [none], [default] (every class), [media]
    (transient + sticky + silent only), [crashy] (repeated power loss),
    [killer] (device and correlated-block deaths), [sticky] (heavy
    latent corruption — the live-repair escalation trigger), [silent]
    (heavy below-ECC corruption — repair-on-read fodder),
    [live-recovery] (sticky + silent + a mid-run device kill, the
    recovery-focused chaos mix). *)

val pp : Format.formatter -> t -> unit
(** Canonical compact form, re-parsable by {!parse}; the chaos report
    echoes the plan through this. *)

val to_string : t -> string
