(** Compiles a {!Plan.t} into per-step injection actions.

    The injector owns a seeded stream: rate-driven specs draw from it in
    plan order on every step (whether or not they fire), so the fault
    schedule depends only on (plan, seed, step) — never on what the
    workload under test is doing.  The harness applies the returned
    actions to whichever layer each one targets: media faults go to
    [Flash.Chip.inject], kills to [Difs.Cluster.kill_device], power cuts
    arm the engine's crash hook. *)

type action =
  | Inject of { block : int; page : int; fault : Flash.Chip.fault }
  | Kill_device of int  (** cluster device id to kill *)
  | Power_cut  (** cut power before the step's next engine operation *)

type t

val create : rng:Sim.Rng.t -> Plan.t -> t
(** The injector consumes [rng] exclusively from then on. *)

val step : t -> geometry:Flash.Geometry.t -> step:int -> action list
(** Actions to apply before workload step [step], in plan order.
    [geometry] bounds the block/page coordinates drawn for media faults
    (a multi-device harness passes the geometry of the device it will
    inject into).  Steps must be fed in increasing order for the stream
    to be reproducible. *)

val injected : t -> (string * int) list
(** Cumulative per-class action counts, in fixed class order
    ([transient], [sticky], [silent], [correlated], [kill], [crash]) —
    the report's injection census. *)

val total : t -> int
(** Sum over {!injected}. *)
