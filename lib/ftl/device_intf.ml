(** Common face of every simulated SSD, for workloads and fleet experiments
    that age heterogeneous devices side by side.

    The LBA space is flat and in oPage units; Salamander devices expose a
    richer per-mDisk API natively and satisfy this signature through an
    adapter that concatenates the LBA spaces of their live minidisks. *)

type write_error = [ `Dead | `No_space | `Out_of_range ]
type read_error = [ `Dead | `Unmapped | `Uncorrectable | `Out_of_range ]

(** Cumulative background-activity counters, so a latency model can diff
    them around a foreground op and charge the queueing delay the
    intervening GC / scrub / retry work caused. *)
type bg_stats = {
  gc_runs : int;
  relocated_opages : int;  (** GC + scrub/decommission relocations *)
  read_retries : int;  (** retry-ladder rungs walked *)
  read_reclaims : int;  (** pages scrubbed by read-reclaim *)
  live_repair_attempts : int;
      (** exhausted reads escalated to the recovery hook *)
  live_repairs : int;  (** escalated reads the hook rescued *)
}

(** Point-in-time media wear summary for fleet observability: worst and
    best per-block P/E counts, the worst pure-wear page RBER across the
    media, and the strongest available code's tolerance for context. *)
type wear_stats = {
  pec_max : int;
  pec_min : int;
  rber_worst : float;
  tolerable_rber : float;
}

(** Outcome of a bulk-aging write segment (see {!S.write_stream}). *)
type stream_status =
  | Stream_filled  (** the whole budget was accepted *)
  | Stream_resync
      (** a draw fell outside the device's current capacity (consumed,
          not written) — the per-op [`Out_of_range]; the caller should
          resize its window and continue *)
  | Stream_dead  (** the device died; no further writes *)
  | Stream_unsupported
      (** no fast path right now (e.g. a crash hook is armed); nothing
          was consumed — run the per-op loop instead *)

type stream_result = { accepted : int; status : stream_status }

module type S = sig
  type t

  val label : t -> string
  (** Human-readable device kind for reports. *)

  val write : t -> lba:int -> payload:int -> (unit, write_error) result

  val write_stream :
    t -> rng:Sim.Rng.t -> window:int -> payload_base:int -> budget:int ->
    stream_result
  (** Bulk-aging fast path: accept up to [budget] uniform random
      writes, each drawing its LBA with [Sim.Rng.int rng window] and
      carrying payload [payload_base + i] for the [i]th accepted write.
      Must be bit-exact with the per-op loop (one {!write} per draw,
      plus the device's usual post-write maintenance): same RNG draws
      consumed, same counters, same flash state.  [Stream_unsupported]
      promises nothing was consumed. *)

  val read : t -> lba:int -> (int, read_error) result

  val trim : t -> lba:int -> unit
  (** Discard an oPage (no-op on dead devices). *)

  val alive : t -> bool
  (** False once the device no longer accepts writes. *)

  val logical_capacity : t -> int
  (** Currently writable LBAs; shrinking devices reduce this over time. *)

  val initial_capacity : t -> int
  val host_writes : t -> int
  val write_amplification : t -> float

  val bg_stats : t -> bg_stats
  (** Snapshot of the device's cumulative background activity. *)

  val wear_stats : t -> wear_stats
  (** Wear summary by on-demand media scan (O(blocks + pages)); meant
      for end-of-run fleet reporting, not per-op hot paths. *)

  val set_recovery_hook :
    t -> ?config:Engine.recovery_config -> (lba:int -> int option) option -> unit
  (** Install (or clear) a read-recovery escalation hook, keyed by the
      device's flat LBA space (see {!Engine.set_recovery_hook} for the
      attempt/backoff semantics).  diFS live repair uses this to rescue
      reads whose retry ladder exhausted from replica redundancy. *)
end

type packed = Packed : (module S with type t = 'a) * 'a -> packed
(** Existential wrapper so fleets can mix device designs. *)

let label (Packed ((module D), d)) = D.label d
let write (Packed ((module D), d)) ~lba ~payload = D.write d ~lba ~payload

let write_stream (Packed ((module D), d)) ~rng ~window ~payload_base ~budget =
  D.write_stream d ~rng ~window ~payload_base ~budget
let read (Packed ((module D), d)) ~lba = D.read d ~lba
let trim (Packed ((module D), d)) ~lba = D.trim d ~lba
let alive (Packed ((module D), d)) = D.alive d
let logical_capacity (Packed ((module D), d)) = D.logical_capacity d
let initial_capacity (Packed ((module D), d)) = D.initial_capacity d
let host_writes (Packed ((module D), d)) = D.host_writes d
let write_amplification (Packed ((module D), d)) = D.write_amplification d
let bg_stats (Packed ((module D), d)) = D.bg_stats d
let wear_stats (Packed ((module D), d)) = D.wear_stats d

let set_recovery_hook (Packed ((module D), d)) ?config hook =
  D.set_recovery_hook d ?config hook

(* Submit a batch through the flat interface.  Devices whose capacity can
   move mid-batch (CVSS shrinks, Salamander decommissions) make a true
   batched entry point ambiguous — which entries were in range? — so the
   packed path loops per-op and reports how far it got; the per-batch
   amortization lives in [Engine.write_batch] below the device layer and
   in the replayer's submission-cost model above it. *)
let write_many p entries =
  let n = Array.length entries in
  let rec go i =
    if i >= n then (i, None)
    else
      let lba, payload = entries.(i) in
      match write p ~lba ~payload with
      | Ok () -> go (i + 1)
      | Error e -> (i, Some e)
  in
  go 0
