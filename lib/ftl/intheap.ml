(* Array-backed binary min-heap of ints.  The engine keys free blocks as
   [pec * blocks + block], so the minimum is lexicographic (pec, block) —
   exactly the min-PEC / lowest-index-tie-break order the old full-array
   scan produced. *)

type t = { mutable data : int array; mutable size : int }

let create () = { data = Array.make 16 0; size = 0 }
let length t = t.size
let is_empty t = t.size = 0
let clear t = t.size <- 0

let push t v =
  if t.size = Array.length t.data then begin
    let grown = Array.make (2 * Array.length t.data) 0 in
    Array.blit t.data 0 grown 0 t.size;
    t.data <- grown
  end;
  let i = ref t.size in
  t.size <- t.size + 1;
  t.data.(!i) <- v;
  (* sift up *)
  while !i > 0 && t.data.((!i - 1) / 2) > t.data.(!i) do
    let parent = (!i - 1) / 2 in
    let tmp = t.data.(parent) in
    t.data.(parent) <- t.data.(!i);
    t.data.(!i) <- tmp;
    i := parent
  done

let pop t =
  if t.size = 0 then None
  else begin
    let top = t.data.(0) in
    t.size <- t.size - 1;
    if t.size > 0 then begin
      t.data.(0) <- t.data.(t.size);
      (* sift down *)
      let i = ref 0 in
      let continue = ref true in
      while !continue do
        let l = (2 * !i) + 1 and r = (2 * !i) + 2 in
        let smallest = ref !i in
        if l < t.size && t.data.(l) < t.data.(!smallest) then smallest := l;
        if r < t.size && t.data.(r) < t.data.(!smallest) then smallest := r;
        if !smallest = !i then continue := false
        else begin
          let tmp = t.data.(!smallest) in
          t.data.(!smallest) <- t.data.(!i);
          t.data.(!i) <- tmp;
          i := !smallest
        end
      done
    end;
    Some top
  end
