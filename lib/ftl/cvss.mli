(** CVSS-style capacity-variant SSD (Jiao et al., FAST '24): the prior
    work the paper positions ShrinkS against.

    Identical wear physics and block-retirement trigger as the baseline,
    but instead of bricking, the device shrinks: each retired block
    removes a block's worth of LBAs from the top of the address space,
    and the host file system must absorb the loss out of its free space.
    The drive therefore lives until utilization leaves no room to shrink
    further ([min_capacity_fraction], default 50 % as in the paper's CVSS
    discussion).

    The two deltas Salamander claims over this design are visible here by
    construction: retirement is block- (not page-) granular, so strong
    pages die with their block's weakest one; and the shrink consumes
    *host* free space rather than being absorbed by a distributed system's
    redundancy. *)

type t

type config = {
  over_provisioning : float;
  min_capacity_fraction : float;
      (** dead once capacity falls below this fraction of the initial *)
}

val default_config : config

val create :
  ?config:config ->
  ?ecc:Ecc_profile.t ->
  ?registry:Telemetry.Registry.t ->
  geometry:Flash.Geometry.t ->
  model:Flash.Rber_model.t ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** Telemetry binds against [registry] (default: the deprecated process
    default). *)

val ecc : t -> Ecc_profile.t
val engine : t -> Engine.t
val retired_blocks : t -> int

val shrunk_opages : t -> int
(** LBAs lost to shrinking so far (each was trimmed away; a host using the
    device re-replicates or rebalances that data, which is the recovery
    traffic the paper's §4.3 compares against). *)

include Device_intf.S with type t := t
