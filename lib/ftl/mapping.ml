type t = {
  geometry : Flash.Geometry.t;
  logical_opages : int;
  forward : int array; (* logical oPage -> flat slot index; -1 = unmapped *)
  reverse : int array; (* indexed by flat slot index; -1 = stale/free *)
  valid_per_block : int array;
  mutable mapped : int;
}

let slots_per_block geometry =
  geometry.Flash.Geometry.pages_per_block
  * geometry.Flash.Geometry.opages_per_fpage

let flat_index t { Location.block; page; slot } =
  (block * slots_per_block t.geometry)
  + (page * t.geometry.Flash.Geometry.opages_per_fpage)
  + slot

(* Both directions speak flat slot indices; locations are decoded only at
   the option-returning API edge, so the per-write hot path (bind_flat /
   find_flat) never boxes a [Location.t]. *)
let location_of_flat t flat =
  let spb = slots_per_block t.geometry in
  let opages = t.geometry.Flash.Geometry.opages_per_fpage in
  let block = flat / spb in
  let rem = flat mod spb in
  { Location.block; page = rem / opages; slot = rem mod opages }

let create ~geometry ~logical_opages =
  if logical_opages <= 0 then invalid_arg "Mapping.create: logical_opages";
  {
    geometry;
    logical_opages;
    forward = Array.make logical_opages (-1);
    reverse = Array.make (geometry.Flash.Geometry.blocks * slots_per_block geometry) (-1);
    valid_per_block = Array.make geometry.Flash.Geometry.blocks 0;
    mapped = 0;
  }

let logical_opages t = t.logical_opages

let check_logical t logical =
  if logical < 0 || logical >= t.logical_opages then
    invalid_arg "Mapping: logical index out of range"

let find_flat t logical =
  check_logical t logical;
  t.forward.(logical)

let find t logical =
  check_logical t logical;
  let flat = t.forward.(logical) in
  if flat < 0 then None else Some (location_of_flat t flat)

let owner t location =
  let flat = flat_index t location in
  if t.reverse.(flat) < 0 then None else Some t.reverse.(flat)

let invalidate_flat t flat =
  if t.reverse.(flat) >= 0 then begin
    t.reverse.(flat) <- -1;
    let block = flat / slots_per_block t.geometry in
    t.valid_per_block.(block) <- t.valid_per_block.(block) - 1
  end

let unbind_logical t logical =
  check_logical t logical;
  let flat = t.forward.(logical) in
  if flat >= 0 then begin
    invalidate_flat t flat;
    t.forward.(logical) <- -1;
    t.mapped <- t.mapped - 1
  end

let bind_flat t ~logical flat =
  check_logical t logical;
  (* Evict any previous occupant of the slot and any previous location of
     the logical index, keeping both directions consistent. *)
  let previous_owner = t.reverse.(flat) in
  if previous_owner >= 0 && previous_owner <> logical then begin
    t.forward.(previous_owner) <- -1;
    t.mapped <- t.mapped - 1
  end;
  invalidate_flat t flat;
  let old = t.forward.(logical) in
  if old >= 0 then invalidate_flat t old else t.mapped <- t.mapped + 1;
  t.forward.(logical) <- flat;
  t.reverse.(flat) <- logical;
  let block = flat / slots_per_block t.geometry in
  t.valid_per_block.(block) <- t.valid_per_block.(block) + 1

let bind t ~logical location = bind_flat t ~logical (flat_index t location)

let mapped_count t = t.mapped

let valid_in_block t ~block = t.valid_per_block.(block)

let live_slots_in_page t ~block ~page =
  let opages = t.geometry.Flash.Geometry.opages_per_fpage in
  let base =
    (block * slots_per_block t.geometry) + (page * opages)
  in
  let rec collect slot acc =
    if slot < 0 then acc
    else
      let logical = t.reverse.(base + slot) in
      if logical >= 0 then collect (slot - 1) ((slot, logical) :: acc)
      else collect (slot - 1) acc
  in
  collect (opages - 1) []

let iter_block t ~block f =
  let opages = t.geometry.Flash.Geometry.opages_per_fpage in
  for page = 0 to t.geometry.Flash.Geometry.pages_per_block - 1 do
    let base = (block * slots_per_block t.geometry) + (page * opages) in
    for slot = 0 to opages - 1 do
      let logical = t.reverse.(base + slot) in
      if logical >= 0 then f ~page ~slot ~logical
    done
  done
