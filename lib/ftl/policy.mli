(** Device-specific policy hooks that parameterize the FTL {!Engine}.

    The engine implements everything common to a page-mapped SSD — write
    buffering, allocation, garbage collection, wear leveling, the
    logical-to-physical map.  What differs between a baseline SSD, a
    CVSS-style shrinking SSD and a Salamander device is captured here:

    - how many oPage slots of a physical page may hold data right now
      (0 retires the page; Salamander returns [4 - L] for tiredness L);
    - the probability that a read of a page fails uncorrectably given its
      current raw bit-error rate (depends on the page's code rate);
    - what to do when a block is erased (re-evaluate wear, advance
      tiredness levels, update limbo accounting).

    The erase hook is mutable because devices need the engine to exist
    before they can install a hook that talks back to it. *)

type t = {
  data_slots : block:int -> page:int -> int;
      (** Data capacity of a physical page, in oPages, under the current
          wear state; 0 retires the page.  The engine caches per-block
          capacity sums off this function, so changes must happen at one
          of the two points the engine invalidates that cache: inside the
          [on_block_erased] hook, or immediately after an
          [Engine.relocate_page] call (proactive retirement) and before
          any other engine operation.  Both device implementations in
          [lib/core] already follow this discipline. *)
  read_fail_prob : rber:float -> block:int -> page:int -> float;
      (** Probability that ECC fails to correct a read at this error
          rate. *)
  should_reclaim : rber:float -> block:int -> page:int -> bool;
      (** Read-reclaim trigger: when a read observes this error rate, move
          the page's live data elsewhere before disturb pushes it past the
          code's capability (real controllers scrub exactly this way). *)
  mutable on_block_erased : block:int -> unit;
      (** Called after every erase, before the engine re-computes the
          block's capacity. *)
}

val always_fresh : opages_per_fpage:int -> t
(** A policy for tests: every page always holds [opages_per_fpage] data
    slots, reads never fail, nothing is reclaimed, erases are ignored. *)
