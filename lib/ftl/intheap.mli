(** Binary min-heap of ints.

    Backs the FTL's free-block pool: entries encode [(pec, block)] pairs
    as [pec * blocks + block], so popping the minimum yields the
    least-worn block with lowest-index tie-breaking — the same choice the
    former whole-array scan made, at O(log n) per allocation. *)

type t

val create : unit -> t
val length : t -> int
val is_empty : t -> bool

val clear : t -> unit
(** Drop all entries (the backing store is retained). *)

val push : t -> int -> unit
val pop : t -> int option
(** Remove and return the minimum entry. *)
