(* Direct-address buffer: payloads and a pending flag live in arrays
   indexed by logical oPage, and arrival order is a growable int ring.
   The steady-state write path (one [put] + its share of [pop_into] per
   host write, plus one of each per GC-relocated oPage) touches only a
   handful of array words — no hashing, no per-entry cells.

   A dropped entry leaves its ring slot behind; [pop] skips slots whose
   logical is no longer pending, exactly like the stale-queue-entry
   semantics the hashtable version had, so arrival order is unchanged:
   a logical popped or dropped and then re-put re-enters at the back. *)

type t = {
  mutable payloads : int array; (* logical -> pending payload *)
  mutable pending : Bytes.t; (* logical -> '\001' iff pending *)
  mutable count : int; (* number of pending logicals *)
  mutable ring : int array; (* arrival order, circular *)
  mutable head : int; (* next pop index *)
  mutable used : int; (* ring entries between head and tail *)
}

let create ?(capacity = 64) () =
  let capacity = Stdlib.max 1 capacity in
  {
    payloads = Array.make capacity 0;
    pending = Bytes.make capacity '\000';
    count = 0;
    ring = Array.make 64 0;
    head = 0;
    used = 0;
  }

let length t = t.count
let is_empty t = t.count = 0

let ensure_logical t logical =
  let n = Array.length t.payloads in
  if logical >= n then begin
    let n' = Stdlib.max (logical + 1) (n * 2) in
    let payloads = Array.make n' 0 in
    Array.blit t.payloads 0 payloads 0 n;
    let pending = Bytes.make n' '\000' in
    Bytes.blit t.pending 0 pending 0 n;
    t.payloads <- payloads;
    t.pending <- pending
  end

let push_ring t logical =
  let cap = Array.length t.ring in
  if t.used = cap then begin
    (* grow, unrolling the circular order into the new array *)
    let ring = Array.make (cap * 2) 0 in
    let tail_len = cap - t.head in
    Array.blit t.ring t.head ring 0 tail_len;
    Array.blit t.ring 0 ring tail_len t.head;
    t.ring <- ring;
    t.head <- 0
  end;
  t.ring.((t.head + t.used) mod Array.length t.ring) <- logical;
  t.used <- t.used + 1

let mem t logical =
  logical >= 0
  && logical < Array.length t.payloads
  && Bytes.unsafe_get t.pending logical <> '\000'

let put t ~logical ~payload =
  ensure_logical t logical;
  if Bytes.unsafe_get t.pending logical = '\000' then begin
    Bytes.unsafe_set t.pending logical '\001';
    t.count <- t.count + 1;
    push_ring t logical
  end;
  t.payloads.(logical) <- payload

let payload_of t logical =
  if mem t logical then Some t.payloads.(logical) else None

let drop t logical =
  if mem t logical then begin
    Bytes.unsafe_set t.pending logical '\000';
    t.count <- t.count - 1
  end

let pop_into t ~logicals ~payloads n =
  let rec take filled =
    if filled = n || t.used = 0 then filled
    else begin
      let logical = t.ring.(t.head) in
      t.head <- (t.head + 1) mod Array.length t.ring;
      t.used <- t.used - 1;
      if Bytes.unsafe_get t.pending logical = '\000' then take filled
        (* stale: dropped, or rewritten and already popped *)
      else begin
        Bytes.unsafe_set t.pending logical '\000';
        t.count <- t.count - 1;
        logicals.(filled) <- logical;
        payloads.(filled) <- t.payloads.(logical);
        take (filled + 1)
      end
    end
  in
  take 0

let pop t n =
  let logicals = Array.make (Stdlib.max n 1) 0 in
  let payloads = Array.make (Stdlib.max n 1) 0 in
  let k = pop_into t ~logicals ~payloads n in
  List.init k (fun i -> (logicals.(i), payloads.(i)))
