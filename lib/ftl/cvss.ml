type config = { over_provisioning : float; min_capacity_fraction : float }

let default_config = { over_provisioning = 0.07; min_capacity_fraction = 0.5 }

type t = {
  config : config;
  ecc : Ecc_profile.t;
  geometry : Flash.Geometry.t;
  engine : Engine.t;
  block_bad : bool array;
  mutable retired_blocks : int;
  mutable capacity : int;
  initial_capacity : int;
  mutable shrunk : int;
  mutable dead : bool;
}

let create ?(config = default_config) ?ecc ?registry ~geometry ~model ~rng () =
  let ecc =
    match ecc with Some e -> e | None -> Ecc_profile.of_geometry geometry
  in
  let chip =
    Flash.Chip.create ?registry ~rng:(Sim.Rng.split rng) ~geometry ~model ()
  in
  let block_bad = Array.make geometry.Flash.Geometry.blocks false in
  let opages = geometry.Flash.Geometry.opages_per_fpage in
  let policy =
    {
      Policy.data_slots =
        (fun ~block ~page ->
          ignore page;
          if block_bad.(block) then 0 else opages);
      read_fail_prob =
        (fun ~rber ~block:_ ~page:_ ->
          Ecc_profile.opage_read_fail_prob ecc ~rber);
      should_reclaim =
        (fun ~rber ~block:_ ~page:_ -> Ecc_profile.should_reclaim ecc ~rber);
      on_block_erased = (fun ~block:_ -> ());
    }
  in
  let initial_capacity =
    int_of_float
      (float_of_int (Flash.Geometry.total_opages geometry)
      *. (1. -. config.over_provisioning))
  in
  let engine =
    Engine.create ?registry ~chip ~rng:(Sim.Rng.split rng) ~policy
      ~logical_capacity:initial_capacity ()
  in
  (* Health-monitor input: CVSS shrinks capacity but never changes the
     code, so its correction ceiling is the level-0 tolerance. *)
  (match registry with
  | Some registry ->
      Telemetry.Registry.Gauge.set
        (Telemetry.Registry.gauge registry
           ~help:"Highest RBER the device's strongest code corrects"
           "device_tolerable_rber")
        ecc.Ecc_profile.tolerable_rber
  | None -> ());
  let t =
    {
      config;
      ecc;
      geometry;
      engine;
      block_bad;
      retired_blocks = 0;
      capacity = initial_capacity;
      initial_capacity;
      shrunk = 0;
      dead = false;
    }
  in
  policy.Policy.on_block_erased <-
    (fun ~block ->
      if not t.block_bad.(block) then begin
        let pages = geometry.Flash.Geometry.pages_per_block in
        let tired = ref false in
        for page = 0 to pages - 1 do
          let rber = Flash.Chip.rber chip ~block ~page in
          if Ecc_profile.page_is_tired ecc ~rber then tired := true
        done;
        if !tired then begin
          t.block_bad.(block) <- true;
          t.retired_blocks <- t.retired_blocks + 1;
          (* Shrink: surrender a block's worth of LBAs from the top of the
             address space.  The host file system absorbs the loss from
             its free space; any data there is trimmed away here and the
             host re-creates it elsewhere (counted in [shrunk]). *)
          let block_opages = pages * opages in
          let new_capacity = Stdlib.max 0 (t.capacity - block_opages) in
          for lba = new_capacity to t.capacity - 1 do
            Engine.discard t.engine ~logical:lba;
            t.shrunk <- t.shrunk + 1
          done;
          t.capacity <- new_capacity;
          if
            float_of_int t.capacity
            < t.config.min_capacity_fraction
              *. float_of_int t.initial_capacity
          then t.dead <- true
        end
      end);
  t

let ecc t = t.ecc
let engine t = t.engine
let retired_blocks t = t.retired_blocks
let shrunk_opages t = t.shrunk
let label _ = "cvss"

let write t ~lba ~payload =
  if t.dead then Error `Dead
  else if lba < 0 || lba >= t.capacity then Error `Out_of_range
  else
    match Engine.write t.engine ~logical:lba ~payload with
    | Ok () -> Ok ()
    | Error `No_space ->
        t.dead <- true;
        Error `No_space

(* Bulk segments between erases.  [t.capacity] is re-read at each
   segment start, so a mid-stream shrink (the erase hook fires inside
   the segment, which then ends with [Stream_erased]) tightens the limit
   before any further write — draws into the surrendered range come back
   as [Stream_resync], the per-op [`Out_of_range].  Budget before death,
   as in the per-op loop's stop-then-alive order. *)
let write_stream t ~rng ~window ~payload_base ~budget =
  if not (Engine.stream_capable t.engine) then
    { Device_intf.accepted = 0; status = Device_intf.Stream_unsupported }
  else
    let rec go accepted =
      if accepted >= budget then
        { Device_intf.accepted; status = Device_intf.Stream_filled }
      else if t.dead then
        { Device_intf.accepted; status = Device_intf.Stream_dead }
      else
        let n, stop =
          Engine.write_stream t.engine ~rng ~window ~limit:t.capacity
            ~translate:Fun.id ~payload_base:(payload_base + accepted)
            ~budget:(budget - accepted)
        in
        let accepted = accepted + n in
        match stop with
        | Engine.Stream_budget ->
            { Device_intf.accepted; status = Device_intf.Stream_filled }
        | Engine.Stream_out_of_window ->
            { Device_intf.accepted; status = Device_intf.Stream_resync }
        | Engine.Stream_erased -> go accepted
        | Engine.Stream_no_space _ ->
            t.dead <- true;
            { Device_intf.accepted; status = Device_intf.Stream_dead }
    in
    go 0

let read t ~lba =
  if lba < 0 || lba >= t.initial_capacity then Error `Out_of_range
  else
    (Engine.read t.engine ~logical:lba
      :> (int, Device_intf.read_error) result)

let trim t ~lba =
  if lba >= 0 && lba < t.initial_capacity then
    Engine.discard t.engine ~logical:lba

let alive t = not t.dead
let logical_capacity t = if t.dead then 0 else t.capacity
let initial_capacity t = t.initial_capacity
let host_writes t = Engine.host_writes t.engine
let write_amplification t = Engine.write_amplification t.engine

let bg_stats t =
  {
    Device_intf.gc_runs = Engine.gc_runs t.engine;
    relocated_opages = Engine.relocated_opages t.engine;
    read_retries = Engine.read_retries t.engine;
    read_reclaims = Engine.read_reclaims t.engine;
    live_repair_attempts = Engine.read_escalations t.engine;
    live_repairs = Engine.escalation_successes t.engine;
  }

let wear_stats t =
  let w = Flash.Chip.wear (Engine.chip t.engine) in
  {
    Device_intf.pec_max = w.Flash.Chip.wear_pec_max;
    pec_min = w.Flash.Chip.wear_pec_min;
    rber_worst = w.Flash.Chip.wear_rber_worst;
    tolerable_rber = t.ecc.Ecc_profile.tolerable_rber;
  }

let set_recovery_hook t ?config hook =
  (* flat LBAs map 1:1 onto engine logicals (reads above the shrunk
     capacity still resolve, exactly like [read]) *)
  Engine.set_recovery_hook t.engine ?config
    (Option.map (fun f ~logical -> f ~lba:logical) hook)
