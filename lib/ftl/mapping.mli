(** Bidirectional logical-to-physical mapping.

    Forward: logical oPage index -> {!Location.t}.  Reverse: every
    programmed slot knows which logical index owns it (or that it is
    stale), which is what garbage collection walks.  The two directions
    are updated together so they can never disagree; the invariant is
    checked by the property tests. *)

type t

val create : geometry:Flash.Geometry.t -> logical_opages:int -> t

val logical_opages : t -> int

val find : t -> int -> Location.t option
(** Physical location of a logical index, if mapped. *)

val find_flat : t -> int -> int
(** Like {!find} but returns the flat slot index
    [(block * pages_per_block + page) * opages_per_fpage + slot], or [-1]
    if unmapped — the allocation-free lookup the hot read path and the
    bulk-aging write stream use. *)

val bind_flat : t -> logical:int -> int -> unit
(** {!bind} keyed by flat slot index; allocation-free. *)

val owner : t -> Location.t -> int option
(** Logical index stored in a physical slot, if the slot is live. *)

val bind : t -> logical:int -> Location.t -> unit
(** Map [logical] to the location, invalidating both [logical]'s previous
    location and any previous owner of the new location. *)

val unbind_logical : t -> int -> unit
(** Drop the mapping for a logical index (trim/discard); its old slot
    becomes stale. *)

val mapped_count : t -> int
(** Number of logical indices currently mapped to flash. *)

val valid_in_block : t -> block:int -> int
(** Live slots in a block: the GC victim-selection metric. *)

val live_slots_in_page : t -> block:int -> page:int -> (int * int) list
(** [(slot, logical)] pairs live in an fPage, slot-ordered. *)

val iter_block : t -> block:int -> (page:int -> slot:int -> logical:int -> unit) -> unit
(** Visit every live slot of a block. *)
