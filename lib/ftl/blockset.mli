(** Fixed-universe bitset over block indices.

    The FTL keeps the closed-block population in one of these so victim
    selection touches only closed blocks instead of scanning the whole
    block array.  Iteration is in ascending index order — the policy
    folds depend on that to keep the historical lowest-index
    tie-breaking. *)

type t

val create : int -> t
(** [create universe] is the empty set over [0 .. universe-1]. *)

val mem : t -> int -> bool
val add : t -> int -> unit
val remove : t -> int -> unit
(** [add]/[remove] are idempotent. *)

val clear : t -> unit

val iter : t -> (int -> unit) -> unit
(** Visit members in ascending order. *)

val fold : t -> ('a -> int -> 'a) -> 'a -> 'a
(** Fold over members in ascending order. *)

val cardinal : t -> int
