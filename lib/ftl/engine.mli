(** The page-mapped FTL engine shared by every simulated device.

    Responsibilities: a deduplicating write buffer flushed one fPage at a
    time, log-structured allocation into the least-worn free block, greedy
    garbage collection with a free-block reserve, periodic wear-leveling
    sweeps, and the bidirectional mapping.  Behaviour that distinguishes
    device designs is injected through {!Policy.t}.

    Logical space: the engine accepts any logical oPage index in
    [0, logical_capacity); layering (flat LBAs for a baseline disk,
    per-mDisk spaces for Salamander) is the device's business. *)

type t

type config = {
  gc_reserve_blocks : int;
      (** GC keeps at least this many erased blocks in reserve (>= 2 so
          relocation always has a destination). *)
  wear_level_period : int;
      (** Every Nth garbage collection is a wear-leveling sweep. *)
  wear_level_gap : int;
      (** A sweep targets the coldest block only when its PEC lags the
          hottest by more than this. *)
  read_retries : int;
      (** Maximum re-read attempts after a failed read before declaring
          [`Uncorrectable] (the retry ladder; 0 disables it). *)
  retry_rber_factor : float;
      (** Each retry rung senses at this fraction of the previous rung's
          effective RBER, modeling escalating read-threshold tuning and
          soft-decision decoding; in (0, 1]. *)
}

val default_config : config

val create :
  ?config:config ->
  ?registry:Telemetry.Registry.t ->
  chip:Flash.Chip.t ->
  rng:Sim.Rng.t ->
  policy:Policy.t ->
  logical_capacity:int ->
  unit ->
  t
(** Telemetry binds against [registry] (default:
    {!Telemetry.Registry.null}, i.e. inert). *)

val chip : t -> Flash.Chip.t
val policy : t -> Policy.t
val logical_capacity : t -> int

type write_error = [ `No_space ]
type read_error = [ `Unmapped | `Uncorrectable ]

val write : t -> logical:int -> payload:int -> (unit, write_error) result
(** Buffer a host write; flushes full fPages as the buffer fills.
    [`No_space] means garbage collection could not reclaim a destination:
    the device has run out of usable flash (the caller decides whether
    that means death or a capacity reduction). *)

val read : t -> logical:int -> (int, read_error) result
(** Read a logical oPage: the buffer first, then flash.  A failed read is
    retried up to [config.read_retries] times with the effective RBER
    attenuated by [config.retry_rber_factor] per rung (the retry ladder
    real controllers walk: threshold tuning, then soft-decision decode);
    [`Uncorrectable] is returned only once the ladder is exhausted.
    Failures are sampled from the policy's probability at each rung's
    effective RBER — rare below the retirement threshold, exactly the
    residual UBER a real drive exhibits. *)

val write_batch : t -> (int * int) array -> (unit, write_error) result
(** Submit [(logical, payload)] writes as one batch: all entries land in
    the write buffer before a single drain flushes the full fPages, so
    the per-call overhead is paid once per batch rather than once per
    oPage (the traffic frontend's submission path).  The resulting
    logical state — and, unless the batch rewrites an LBA mid-stream,
    the physical layout — is identical to issuing the entries through
    {!write} one by one.  On [`No_space] the device is out of usable
    flash mid-batch; all entries were counted as host writes and the
    unflushed remainder stays buffered (the caller treats the device as
    dead or shrunk, exactly as for {!write}).
    @raise Invalid_argument if any logical index is out of range. *)

(** {2 Bulk-aging write stream}

    The per-op path above costs a handful of calls, list cells and
    option boxes per write; multi-year fleet runs issue billions of
    writes whose individual outcomes are boring.  [write_stream] is the
    bit-exact fast path: one call accepts a whole run of uniform
    random writes, consuming exactly one [Sim.Rng.int rng window] draw
    per write — the same RNG stream, counters, mapping and physical
    layout the per-op loop would produce (pinned by the differential
    suite in [test/test_bulk_aging.ml]).  The segment ends early the
    moment anything interesting happens (an erase, a draw beyond the
    caller's live translation window, out of space) so the caller can
    re-derive state and continue. *)

type stream_stop =
  | Stream_budget  (** the requested number of writes was accepted *)
  | Stream_erased
      (** a block erase (GC / wear leveling / retirement) happened; the
          triggering write completed.  Device state may have shifted:
          re-derive the translation, run maintenance, call again. *)
  | Stream_out_of_window
      (** the draw (>= [limit]) was consumed but no write submitted:
          the per-op path's [`Out_of_range] — resize the window. *)
  | Stream_no_space of int
      (** the in-flight write (device LBA carried) failed with
          [`No_space]: it was counted as a host write and stays
          buffered, exactly as a failed {!write} would leave it. *)

val stream_capable : t -> bool
(** Whether the fast path may be used: false while a crash hook is
    armed (crash sites must fire per write, so fault-injection runs
    take the per-op path). *)

val write_stream :
  t ->
  rng:Sim.Rng.t ->
  window:int ->
  limit:int ->
  translate:(int -> int) ->
  payload_base:int ->
  budget:int ->
  int * stream_stop
(** [write_stream t ~rng ~window ~limit ~translate ~payload_base
    ~budget] accepts up to [budget] uniform writes: each draws a device
    LBA with [Sim.Rng.int rng window], rejects draws [>= limit]
    (ending the segment), maps the LBA through [translate] to an
    engine-logical index, and writes payload [payload_base + i] for the
    [i]th accepted write — matching a per-op loop that stamps each
    write with its running count.  [translate] must stay valid for the
    whole call; returns the number of writes accepted and why the
    segment ended.
    @raise Invalid_argument if a crash hook is armed. *)

val discard : t -> logical:int -> unit
(** Trim: drop any buffered copy and unmap the logical oPage. *)

val flush : t -> (unit, write_error) result
(** Force out all buffered writes, padding the final fPage if needed. *)

val relocate_page : t -> block:int -> page:int -> unit
(** Move every live oPage of one physical page into the write buffer (to
    be rewritten elsewhere) and unmap it from the page.  Used by
    Salamander's decommissioning to drain the most worn pages; the space
    itself is reclaimed when the block is later erased. *)

val gc_now : t -> bool
(** Run one garbage-collection pass; [false] if no victim was available. *)

(** {2 Introspection} *)

type block_class = Free | Open | Closed | Retired

val block_class : t -> int -> block_class
val free_blocks : t -> int
val retired_blocks : t -> int

val total_data_slots : t -> int
(** Device-wide data capacity in oPages under the current policy (free,
    open and closed blocks; retired blocks excluded).  This is the left
    side of the paper's Eq. 2. *)

val mapped_opages : t -> int

val mapped_in_range : t -> lo:int -> len:int -> int
(** Logical indices in [lo, lo+len) currently mapped to flash or pending
    in the buffer: the live data a minidisk decommissioning would lose. *)

val buffered_opages : t -> int

val host_writes : t -> int
(** oPages accepted from the host. *)

val relocated_opages : t -> int
(** oPages rewritten internally (GC + explicit relocation). *)

val gc_runs : t -> int
val padded_slots : t -> int
(** Data slots wasted by forced flushes of a partly-empty buffer. *)

val read_reclaims : t -> int
(** Pages whose live data was moved by read-reclaim (the scrub against
    read disturb and creeping wear). *)

val read_retries : t -> int
(** Re-read attempts made by the retry ladder (also exported as the
    [ftl_read_retries_total] counter). *)

val retry_successes : t -> int
(** Reads that failed at least one rung but succeeded before the ladder
    ran out. *)

val read_escalations : t -> int
(** Recovery-hook invocations (also [ftl_read_escalations_total]). *)

val escalation_successes : t -> int
(** Escalated reads the recovery hook rescued. *)

val escalations_suppressed : t -> int
(** Exhausted reads that skipped escalation because the backoff window
    was still open. *)

(** {2 Read-recovery escalation}

    When the retry ladder exhausts, the engine can hand the read to an
    external recovery path — diFS live repair reconstructs the oPage from
    replica or EC redundancy and rewrites it through the normal write
    path — instead of returning [`Uncorrectable] immediately.  The hook
    returns the reconstructed payload, or [None] when no healthy
    redundancy exists. *)

type recovery_config = {
  recovery_attempts : int;
      (** Hook invocations per exhausted read before giving up (>= 1). *)
  backoff_base : int;
      (** Host reads to wait after the first fully failed burst. *)
  backoff_cap : int;
      (** Ceiling of the exponential backoff window, in host reads. *)
}

val default_recovery : recovery_config

val set_recovery_hook :
  t -> ?config:recovery_config -> (logical:int -> int option) option -> unit
(** Install (or clear) the recovery hook.  On ladder exhaustion the hook
    is tried up to [recovery_attempts] times; a burst with no success
    opens an exponential backoff window ([backoff_base * 2^failures],
    capped at [backoff_cap]) counted on the engine's read clock — one
    tick per host read — during which exhausted reads degrade straight to
    [`Uncorrectable].  A later success closes the window.  Like the crash
    hook, the recovery hook survives {!crash_rebuild}. *)

(** {2 Crash injection}

    The fault-injection layer ([lib/faults]) arms a hook at the points
    where a power cut would interleave with the persistence protocol.
    Every site is placed so the non-volatile state (flash + OOB tags +
    trim journal + NV write buffer) still covers all acknowledged
    writes — so {!crash_rebuild} can always recover. *)

type crash_site =
  | Before_program  (** about to program an fPage (buffer not yet popped) *)
  | After_program  (** an fPage program just completed *)
  | Gc  (** a GC pass just picked its victim *)
  | Flush  (** an explicit flush is starting *)

exception Power_loss
(** Raised by crash hooks to simulate the power cut.  After it escapes,
    the engine value must be discarded and rebuilt with
    {!crash_rebuild}. *)

val set_crash_hook : t -> (crash_site -> unit) option -> unit
(** Install (or clear) the crash hook.  The hook is called synchronously
    at each {!crash_site}; raising {!Power_loss} from it simulates the
    cut.  The hook survives {!crash_rebuild}. *)

(** {2 Power-fail recovery}

    Real FTLs persist, alongside each physical page, a few bytes of
    out-of-band metadata — the logical address and a monotonically
    increasing sequence number — and journal trims; after a crash the
    mapping is rebuilt by scanning the flash and letting the highest
    sequence number win.  The engine models exactly that: OOB tags are
    recorded at program time (and vanish with the block's erase), trims
    go to a journal, and the write buffer is non-volatile (§3.2). *)

val crash_rebuild : t -> t
(** Simulate a power cycle: throw away every volatile structure and
    reconstruct the engine from the chip's contents, the OOB tags, the
    trim journal and the non-volatile write buffer.  The returned engine
    shares the chip (and its wear) with the old one, which must no longer
    be used.  Every acknowledged write is readable afterwards; every
    trimmed LBA stays trimmed. *)

val write_amplification : t -> float
(** Physical oPage programs divided by host oPage writes. *)

val live_entries : t -> (int * Location.t) list
(** All (logical, location) pairs currently mapped to flash (excludes
    buffered-only entries); for integrity checks in tests. *)

val locate : t -> logical:int -> Location.t option
(** Physical location of a logical oPage (ignoring the buffer); the
    performance experiments use this to count how many fPages an extent
    read touches. *)
