(** The baseline datacenter SSD the paper argues against.

    Monolithic fixed-capacity volume; firmware retires a whole erase block
    as soon as its weakest page can no longer be protected by the default
    ECC, replacing it from over-provisioned spare space; and the device
    bricks (goes read-only) once retired blocks exceed a small threshold —
    2.5 % by default, per the NetApp field study the paper cites [14]. *)

type t

type config = {
  over_provisioning : float;  (** spare fraction of physical space, 0.07 *)
  fail_threshold : float;  (** bad-block fraction that bricks the drive *)
}

val default_config : config

val create :
  ?config:config ->
  ?ecc:Ecc_profile.t ->
  ?registry:Telemetry.Registry.t ->
  geometry:Flash.Geometry.t ->
  model:Flash.Rber_model.t ->
  rng:Sim.Rng.t ->
  unit ->
  t
(** Telemetry binds against [registry] (default: the deprecated process
    default). *)

val ecc : t -> Ecc_profile.t
val engine : t -> Engine.t
val bad_blocks : t -> int
val bad_block_fraction : t -> float

include Device_intf.S with type t := t
