(* Fixed-universe bitset over block indices.  One int per 63 blocks; the
   policy scans (GC victim, wear-level victim) iterate set members in
   ascending order, which preserves the lowest-index tie-breaking the
   full-array folds had. *)

let bits_per_word = Sys.int_size (* 63 on 64-bit *)

type t = { universe : int; words : int array }

let create universe =
  if universe < 0 then invalid_arg "Blockset.create: negative universe";
  { universe; words = Array.make ((universe + bits_per_word - 1) / bits_per_word) 0 }

let check t i =
  if i < 0 || i >= t.universe then
    invalid_arg "Blockset: element out of universe"

let mem t i =
  check t i;
  t.words.(i / bits_per_word) land (1 lsl (i mod bits_per_word)) <> 0

let add t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) lor (1 lsl (i mod bits_per_word))

let remove t i =
  check t i;
  let w = i / bits_per_word in
  t.words.(w) <- t.words.(w) land lnot (1 lsl (i mod bits_per_word))

let clear t = Array.fill t.words 0 (Array.length t.words) 0

(* Ascending iteration: words low to high, bits low to high within a
   word, peeling the lowest set bit each step. *)
let iter t f =
  for w = 0 to Array.length t.words - 1 do
    let bits = ref t.words.(w) in
    let base = w * bits_per_word in
    while !bits <> 0 do
      let lsb = !bits land - !bits in
      (* log2 of an isolated bit via linear probe is O(word); use the
         de-Bruijn-free portable route: count trailing zeros by halving. *)
      let i = ref 0 in
      let v = ref lsb in
      while !v land 1 = 0 do
        v := !v lsr 1;
        incr i
      done;
      f (base + !i);
      bits := !bits lxor lsb
    done
  done

let fold t f init =
  let acc = ref init in
  iter t (fun i -> acc := f !acc i);
  !acc

let cardinal t =
  let count = ref 0 in
  Array.iter
    (fun w ->
      let v = ref w in
      while !v <> 0 do
        v := !v land (!v - 1);
        incr count
      done)
    t.words;
  !count
