type config = {
  gc_reserve_blocks : int;
  wear_level_period : int;
  wear_level_gap : int;
  read_retries : int;
  retry_rber_factor : float;
}

let default_config =
  {
    gc_reserve_blocks = 2;
    wear_level_period = 16;
    wear_level_gap = 8;
    read_retries = 3;
    retry_rber_factor = 0.5;
  }

type crash_site = Before_program | After_program | Gc | Flush

exception Power_loss

(* Escalation of exhausted reads to an external recovery path (diFS live
   repair).  The budget is counted on the engine's read clock — one tick
   per host read — so backoff is deterministic simulated time, not wall
   time: after a failed escalation burst the hook is left alone for
   [backoff_base * 2^consecutive_failures] reads (capped), preventing a
   dead replica set from turning every read into a cluster-wide search. *)
type recovery_config = {
  recovery_attempts : int;
  backoff_base : int;
  backoff_cap : int;
}

let default_recovery =
  { recovery_attempts = 2; backoff_base = 8; backoff_cap = 1024 }

type block_class = Free | Open | Closed | Retired

(* Telemetry handles bound at engine creation; inert on the null
   registry.  The write-amplification gauge is refreshed on every fPage
   program so exporters always see the current ratio. *)
type tel = {
  tel_host_writes : Telemetry.Registry.Counter.t;
  tel_gc_runs : Telemetry.Registry.Counter.t;
  tel_wear_level_sweeps : Telemetry.Registry.Counter.t;
  tel_relocated : Telemetry.Registry.Counter.t;
  tel_padded : Telemetry.Registry.Counter.t;
  tel_reclaims : Telemetry.Registry.Counter.t;
  tel_unmapped : Telemetry.Registry.Counter.t;
  tel_uncorrectable : Telemetry.Registry.Counter.t;
  tel_read_retries : Telemetry.Registry.Counter.t;
  tel_retry_successes : Telemetry.Registry.Counter.t;
  tel_escalations : Telemetry.Registry.Counter.t;
  tel_escalation_successes : Telemetry.Registry.Counter.t;
  tel_escalations_suppressed : Telemetry.Registry.Counter.t;
  tel_waf : Telemetry.Registry.Gauge.t;
}

let make_tel registry =
  let counter name help = Telemetry.Registry.counter registry ~help name in
  {
    tel_host_writes = counter "ftl_host_writes_total" "oPages accepted from the host";
    tel_gc_runs = counter "ftl_gc_runs_total" "Garbage-collection passes";
    tel_wear_level_sweeps =
      counter "ftl_wear_level_sweeps_total"
        "GC passes that targeted the coldest block for wear leveling";
    tel_relocated =
      counter "ftl_relocated_opages_total"
        "oPages rewritten internally (GC + explicit relocation)";
    tel_padded =
      counter "ftl_padded_slots_total" "Data slots wasted by forced flushes";
    tel_reclaims =
      counter "ftl_read_reclaims_total" "Pages scrubbed by read-reclaim";
    tel_unmapped = counter "ftl_unmapped_reads_total" "Reads of unmapped LBAs";
    tel_uncorrectable =
      counter "ftl_uncorrectable_reads_total"
        "Reads ECC could not correct (residual UBER)";
    tel_read_retries =
      counter "ftl_read_retries_total"
        "Re-read attempts made by the read-retry ladder";
    tel_retry_successes =
      counter "ftl_retry_successes_total"
        "Reads rescued by the retry ladder after a failed first attempt";
    tel_escalations =
      counter "ftl_read_escalations_total"
        "Exhausted reads escalated to the recovery hook";
    tel_escalation_successes =
      counter "ftl_escalation_successes_total"
        "Escalated reads the recovery hook rescued";
    tel_escalations_suppressed =
      counter "ftl_escalations_suppressed_total"
        "Escalations skipped while the backoff budget was spent";
    tel_waf =
      Telemetry.Registry.gauge registry
        ~help:"Physical oPage programs per host oPage write"
        "ftl_write_amplification";
  }

type t = {
  chip : Flash.Chip.t;
  rng : Sim.Rng.t;
  policy : Policy.t;
  config : config;
  mapping : Mapping.t;
  buffer : Write_buffer.t;
  classes : block_class array;
  logical_capacity : int;
  oob_logical : int array;
  oob_seq : int array;
      (* per physical slot: (logical, sequence) tag written with the data;
         cleared by the block's erase, like real OOB bytes.  Two flat int
         arrays instead of an [(int * int) option array]: no tuple/Some
         box per programmed slot, [-1] in [oob_logical] marks a clear
         slot ([oob_seq] is only meaningful where logical >= 0). *)
  trim_journal : (int, int) Hashtbl.t;
      (* logical -> sequence of its latest trim (non-volatile journal) *)
  mutable sequence : int;
  mutable open_block : int option;
  mutable next_page : int;
  mutable free_count : int;
  mutable retired_count : int;
  mutable host_writes : int;
  mutable relocated : int;
  mutable gc_runs : int;
  mutable padded : int;
  mutable reclaims : int;
  mutable in_gc : bool;
  mutable read_retry_count : int;
  mutable retry_success_count : int;
  mutable crash_hook : (crash_site -> unit) option;
  mutable recovery_hook : (logical:int -> int option) option;
  mutable recovery_config : recovery_config;
  mutable read_clock : int;
      (* monotone host-read counter; the unit of the escalation backoff *)
  mutable escalation_count : int;
  mutable escalation_success_count : int;
  mutable escalation_suppressed_count : int;
  mutable escalation_fail_streak : int;
  mutable escalation_retry_at : int;
      (* read-clock value before which escalations are suppressed *)
  (* Incremental block accounting.  [cap_cache.(b)] is the block's data
     capacity (sum of [Policy.data_slots] over its pages) as of the last
     refresh; [cap_dirty] marks blocks whose capacity may have changed
     (erase hooks and proactive retirement are the only mutation points —
     see the contract on {!Policy.data_slots}); [total_capacity] is the
     sum of [cap_cache] over all blocks (retired blocks contribute 0).
     [closed] is the set of Closed blocks, so victim selection only
     touches candidates; [free_heap] holds one [(pec, block)]-encoded
     entry per Free block. *)
  cap_cache : int array;
  cap_dirty : Blockset.t;
  mutable total_capacity : int;
  closed : Blockset.t;
  free_heap : Intheap.t;
  (* Flush scratch for the bulk write stream: one [(logical, payload)]
     pair per oPage slot of an fPage, reused across every program so a
     flush allocates nothing.  Only [write_stream] touches them. *)
  scratch_logicals : int array;
  scratch_payloads : int array;
  tel : tel;
}

type write_error = [ `No_space ]
type read_error = [ `Unmapped | `Uncorrectable ]

let geometry t = Flash.Chip.geometry t.chip

let create ?(config = default_config) ?registry ~chip ~rng ~policy
    ~logical_capacity () =
  let registry =
    match registry with Some r -> r | None -> Telemetry.Registry.null
  in
  if config.gc_reserve_blocks < 2 then
    invalid_arg "Engine.create: gc_reserve_blocks must be >= 2";
  if config.read_retries < 0 then
    invalid_arg "Engine.create: read_retries must be >= 0";
  if config.retry_rber_factor <= 0. || config.retry_rber_factor > 1. then
    invalid_arg "Engine.create: retry_rber_factor must be in (0, 1]";
  let geometry = Flash.Chip.geometry chip in
  if logical_capacity <= 0 then invalid_arg "Engine.create: logical_capacity";
  let slots =
    geometry.Flash.Geometry.blocks * geometry.Flash.Geometry.pages_per_block
    * geometry.Flash.Geometry.opages_per_fpage
  in
  let blocks = geometry.Flash.Geometry.blocks in
  let cap_dirty = Blockset.create blocks in
  for block = 0 to blocks - 1 do
    Blockset.add cap_dirty block
  done;
  let free_heap = Intheap.create () in
  (* every block starts Free at PEC 0, so the encoded key is the index *)
  for block = 0 to blocks - 1 do
    Intheap.push free_heap block
  done;
  {
    chip;
    rng;
    policy;
    config;
    mapping = Mapping.create ~geometry ~logical_opages:logical_capacity;
    buffer = Write_buffer.create ~capacity:logical_capacity ();
    classes = Array.make geometry.Flash.Geometry.blocks Free;
    logical_capacity;
    oob_logical = Array.make slots (-1);
    oob_seq = Array.make slots 0;
    trim_journal = Hashtbl.create 64;
    sequence = 0;
    open_block = None;
    next_page = 0;
    free_count = geometry.Flash.Geometry.blocks;
    retired_count = 0;
    host_writes = 0;
    relocated = 0;
    gc_runs = 0;
    padded = 0;
    reclaims = 0;
    in_gc = false;
    read_retry_count = 0;
    retry_success_count = 0;
    crash_hook = None;
    recovery_hook = None;
    recovery_config = default_recovery;
    read_clock = 0;
    escalation_count = 0;
    escalation_success_count = 0;
    escalation_suppressed_count = 0;
    escalation_fail_streak = 0;
    escalation_retry_at = 0;
    cap_cache = Array.make blocks 0;
    cap_dirty;
    total_capacity = 0;
    closed = Blockset.create blocks;
    free_heap;
    scratch_logicals =
      Array.make geometry.Flash.Geometry.opages_per_fpage 0;
    scratch_payloads =
      Array.make geometry.Flash.Geometry.opages_per_fpage 0;
    tel = make_tel registry;
  }

let chip t = t.chip
let policy t = t.policy
let logical_capacity t = t.logical_capacity
let set_crash_hook t hook = t.crash_hook <- hook

let set_recovery_hook t ?(config = default_recovery) hook =
  if config.recovery_attempts < 1 then
    invalid_arg "Engine.set_recovery_hook: recovery_attempts must be >= 1";
  if config.backoff_base < 1 || config.backoff_cap < config.backoff_base then
    invalid_arg "Engine.set_recovery_hook: backoff must satisfy 1 <= base <= cap";
  t.recovery_hook <- hook;
  t.recovery_config <- config;
  t.escalation_fail_streak <- 0;
  t.escalation_retry_at <- 0

(* Crash-injection sites sit where a power cut would interleave with the
   persistence protocol.  The hook may raise {!Power_loss}; every notified
   point is chosen so that the non-volatile state (flash + OOB + trim
   journal + NV write buffer) still covers all acknowledged writes, which
   is exactly what [crash_rebuild] recovers from. *)
let notify_crash t site =
  match t.crash_hook with None -> () | Some f -> f site

let flat_slot t ~block ~page ~slot =
  let g = geometry t in
  ((block * g.Flash.Geometry.pages_per_block) + page)
  * g.Flash.Geometry.opages_per_fpage
  + slot

let compute_block_capacity t block =
  let pages = (geometry t).Flash.Geometry.pages_per_block in
  let capacity = ref 0 in
  for page = 0 to pages - 1 do
    capacity := !capacity + t.policy.Policy.data_slots ~block ~page
  done;
  !capacity

let refresh_capacity t block =
  if Blockset.mem t.cap_dirty block then begin
    let capacity = compute_block_capacity t block in
    t.total_capacity <- t.total_capacity - t.cap_cache.(block) + capacity;
    t.cap_cache.(block) <- capacity;
    Blockset.remove t.cap_dirty block
  end

let block_data_capacity t block =
  refresh_capacity t block;
  t.cap_cache.(block)

(* Free-block pool keys: min-PEC first, lowest block index on ties. *)
let free_key t ~block ~pec = (pec * Array.length t.classes) + block

let push_free t block =
  Intheap.push t.free_heap
    (free_key t ~block ~pec:(Flash.Chip.pec t.chip ~block))

(* --- relocation helpers ------------------------------------------------ *)

(* Move a live slot's content into the buffer (unless a newer version is
   already buffered) and unmap it, so the physical copy becomes stale. *)
let relocate_slot t ~block ~page ~slot ~logical =
  (* skip when the buffer already holds newer data (old copy is dead) *)
  (if not (Write_buffer.mem t.buffer logical) then begin
     let payload = Flash.Chip.read_slot_int t.chip ~block ~page ~slot in
     (* The mapping never points at ECC-reserved slots. *)
     assert (payload <> Stdlib.min_int);
     Write_buffer.put t.buffer ~logical ~payload;
     t.relocated <- t.relocated + 1;
     Telemetry.Registry.Counter.incr t.tel.tel_relocated
   end);
  Mapping.unbind_logical t.mapping logical

let relocate_block_contents t block =
  Mapping.iter_block t.mapping ~block (fun ~page ~slot ~logical ->
      relocate_slot t ~block ~page ~slot ~logical)

let relocate_page t ~block ~page =
  List.iter
    (fun (slot, logical) -> relocate_slot t ~block ~page ~slot ~logical)
    (Mapping.live_slots_in_page t.mapping ~block ~page);
  (* Devices retire pages (changing [Policy.data_slots]) immediately after
     this call, so the block's cached capacity must be recomputed on its
     next use. *)
  Blockset.add t.cap_dirty block

(* --- garbage collection ------------------------------------------------ *)

let erase_and_reclassify t block =
  Flash.Chip.erase t.chip ~block;
  (* the erase wipes the OOB area along with the data *)
  let g = geometry t in
  for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
    for slot = 0 to g.Flash.Geometry.opages_per_fpage - 1 do
      t.oob_logical.(flat_slot t ~block ~page ~slot) <- -1
    done
  done;
  t.policy.Policy.on_block_erased ~block;
  (* the erase hook may have advanced page levels *)
  Blockset.add t.cap_dirty block;
  Blockset.remove t.closed block;
  if block_data_capacity t block = 0 then begin
    t.classes.(block) <- Retired;
    t.retired_count <- t.retired_count + 1
  end
  else begin
    t.classes.(block) <- Free;
    t.free_count <- t.free_count + 1;
    push_free t block
  end

let closed_blocks_fold t f init = Blockset.fold t.closed f init

(* Victim with fewest live oPages: the greedy-min-valid policy.  A block
   with no dead slots yields nothing and is never picked — otherwise GC
   would churn forever when the device is genuinely full. *)
let pick_gc_victim t =
  closed_blocks_fold t
    (fun best block ->
      let valid = Mapping.valid_in_block t.mapping ~block in
      if valid >= block_data_capacity t block then best
      else
        match best with
        | Some (_, best_valid) when best_valid <= valid -> best
        | _ -> Some (block, valid))
    None

(* Coldest closed block, for wear-leveling sweeps: rewriting its (cold)
   data elsewhere lets its low-PEC block re-enter the allocation pool. *)
let pick_wear_level_victim t =
  let coldest =
    closed_blocks_fold t
      (fun best block ->
        let pec = Flash.Chip.pec t.chip ~block in
        match best with
        | Some (_, best_pec) when best_pec <= pec -> best
        | _ -> Some (block, pec))
      None
  in
  match coldest with
  | None -> None
  | Some (block, pec) ->
      let max_pec = ref 0 in
      for b = 0 to Array.length t.classes - 1 do
        if t.classes.(b) <> Retired then
          max_pec := Stdlib.max !max_pec (Flash.Chip.pec t.chip ~block:b)
      done;
      if !max_pec - pec > t.config.wear_level_gap then Some block else None

let gc_once t =
  let victim =
    if
      t.config.wear_level_period > 0
      && t.gc_runs mod t.config.wear_level_period = t.config.wear_level_period - 1
    then
      match pick_wear_level_victim t with
      | Some b -> Some (b, `Wear_level)
      | None -> Option.map (fun (b, _) -> (b, `Greedy)) (pick_gc_victim t)
    else Option.map (fun (b, _) -> (b, `Greedy)) (pick_gc_victim t)
  in
  match victim with
  | None -> false
  | Some (block, kind) ->
      notify_crash t Gc;
      t.gc_runs <- t.gc_runs + 1;
      Telemetry.Registry.Counter.incr t.tel.tel_gc_runs;
      if kind = `Wear_level then
        Telemetry.Registry.Counter.incr t.tel.tel_wear_level_sweeps;
      relocate_block_contents t block;
      erase_and_reclassify t block;
      true

let maybe_gc t =
  if not t.in_gc then begin
    t.in_gc <- true;
    let continue = ref true in
    while t.free_count < t.config.gc_reserve_blocks && !continue do
      continue := gc_once t
    done;
    t.in_gc <- false
  end

(* --- allocation and flushing ------------------------------------------- *)

let pick_free_block t =
  maybe_gc t;
  (* The heap holds exactly one entry per Free block (pushed when the
     block enters the pool, consumed when it leaves), so the minimum is
     the allocation choice directly.  The validity checks below guard the
     invariant; a stale entry can never look valid again — a Free block's
     PEC cannot change — so discarding is safe. *)
  let rec pop () =
    match Intheap.pop t.free_heap with
    | None -> None
    | Some key ->
        let block = key mod Array.length t.classes in
        let pec = key / Array.length t.classes in
        if t.classes.(block) = Free && Flash.Chip.pec t.chip ~block = pec
        then begin
          t.classes.(block) <- Open;
          t.free_count <- t.free_count - 1;
          Some block
        end
        else pop ()
  in
  pop ()

(* Next programmable page of the open block, skipping pages the policy has
   retired (data_slots = 0); opens a new block as needed. *)
let rec open_position t =
  match t.open_block with
  | Some block ->
      let pages = (geometry t).Flash.Geometry.pages_per_block in
      let rec scan page =
        if page >= pages then None
        else
          let slots = t.policy.Policy.data_slots ~block ~page in
          if slots > 0 && Flash.Chip.is_free t.chip ~block ~page then
            Some (page, slots)
          else scan (page + 1)
      in
      (match scan t.next_page with
      | Some (page, slots) ->
          t.next_page <- page;
          Some (block, page, slots)
      | None ->
          t.classes.(block) <- Closed;
          Blockset.add t.closed block;
          t.open_block <- None;
          open_position t)
  | None -> (
      match pick_free_block t with
      | None -> None
      | Some block ->
          t.open_block <- Some block;
          t.next_page <- 0;
          open_position t)

let program_page t ~block ~page ~slots entries =
  let opages = (geometry t).Flash.Geometry.opages_per_fpage in
  let contents = Array.make opages None in
  List.iteri
    (fun i (_, payload) -> contents.(i) <- Some payload)
    entries;
  Flash.Chip.program t.chip ~block ~page contents;
  List.iteri
    (fun i (logical, _) ->
      t.sequence <- t.sequence + 1;
      let flat = flat_slot t ~block ~page ~slot:i in
      t.oob_logical.(flat) <- logical;
      t.oob_seq.(flat) <- t.sequence;
      Mapping.bind t.mapping ~logical { Location.block; page; slot = i })
    entries;
  t.padded <- t.padded + (slots - List.length entries);
  Telemetry.Registry.Counter.incr t.tel.tel_padded
    ~by:(slots - List.length entries);
  if Telemetry.Registry.Gauge.is_active t.tel.tel_waf && t.host_writes > 0 then
    Telemetry.Registry.Gauge.set t.tel.tel_waf
      (float_of_int
         (Flash.Chip.programs t.chip * (geometry t).Flash.Geometry.opages_per_fpage)
      /. float_of_int t.host_writes);
  t.next_page <- page + 1

(* Flush whole fPages while the buffer can fill them; with [force], flush
   a final partial page too. *)
let rec drain t ~force =
  if Write_buffer.is_empty t.buffer then Ok ()
  else
    match open_position t with
    | None -> Error `No_space
    | Some (block, page, slots) ->
        if force || Write_buffer.length t.buffer >= slots then begin
          (* Notify *before* popping the buffer: a crash here loses
             nothing, because unprogrammed entries are still in the
             non-volatile buffer. *)
          notify_crash t Before_program;
          program_page t ~block ~page ~slots
            (Write_buffer.pop t.buffer slots);
          notify_crash t After_program;
          drain t ~force
        end
        else Ok ()

let write t ~logical ~payload =
  if logical < 0 || logical >= t.logical_capacity then
    invalid_arg "Engine.write: logical index out of range";
  t.host_writes <- t.host_writes + 1;
  Telemetry.Registry.Counter.incr t.tel.tel_host_writes;
  Write_buffer.put t.buffer ~logical ~payload;
  drain t ~force:false

(* Batched submission: land every entry in the buffer, then drain once.
   Programs pop the buffer in the same FIFO slot-groups a per-op loop
   would, so the physical layout is identical — except when a batch
   rewrites an LBA whose earlier copy a per-op loop would already have
   flushed: the buffer's dedup then saves a program, which is the point
   of batching.  The per-call overhead (bounds checks, telemetry, the
   drain loop entry) is paid once per batch instead of once per oPage. *)
let write_batch t entries =
  Array.iter
    (fun (logical, _) ->
      if logical < 0 || logical >= t.logical_capacity then
        invalid_arg "Engine.write_batch: logical index out of range")
    entries;
  match Array.length entries with
  | 0 -> Ok ()
  | n ->
      t.host_writes <- t.host_writes + n;
      Telemetry.Registry.Counter.incr t.tel.tel_host_writes ~by:n;
      Array.iter
        (fun (logical, payload) -> Write_buffer.put t.buffer ~logical ~payload)
        entries;
      drain t ~force:false

let flush t =
  notify_crash t Flush;
  drain t ~force:true

(* --- bulk-aging write stream ------------------------------------------- *)

type stream_stop =
  | Stream_budget
  | Stream_erased
  | Stream_out_of_window
  | Stream_no_space of int

let stream_capable t = t.crash_hook = None

(* Bulk-aging fast path.  One call replays exactly the write stream the
   per-op loop (one [Sim.Rng.int rng window] draw, then [write]) would
   issue, with the per-write overhead hoisted out: the open position is
   cached between programs, pages are programmed straight from the
   reusable scratch arrays, and the host-write telemetry counter is
   settled once at segment end ([Counter.incr] is a plain sum, so the
   final value is identical).

   The caller owns the LBA -> engine-logical translation and must keep
   it frozen for the whole call; device state only moves at erases (GC,
   wear leveling, retirement hooks), so the segment ends with
   [Stream_erased] immediately after the write that triggered one — the
   caller re-derives translation, runs device maintenance, and calls
   again.  The open-position cache is sound for the same reason: only
   our own programs and erase hooks change the open block's page states
   or slot counts, and programs invalidate it while erases end the
   segment.  Bit-exactness against the per-op path (same RNG draws,
   same counters, same flash layout) is pinned by the differential
   suite in [test/test_bulk_aging.ml]. *)
let write_stream t ~rng ~window ~limit ~translate ~payload_base ~budget =
  if t.crash_hook <> None then
    invalid_arg "Engine.write_stream: crash hook armed (not stream-capable)";
  let exception Stop of stream_stop in
  let exception No_space_now in
  let opages = (geometry t).Flash.Geometry.opages_per_fpage in
  let erases0 = Flash.Chip.erases t.chip in
  let host_writes0 = t.host_writes in
  let accepted = ref 0 in
  (* Cached open position; [pos_slots = 0] means "not established". *)
  let pos_block = ref 0 and pos_page = ref 0 and pos_slots = ref 0 in
  let waf_active = Telemetry.Registry.Gauge.is_active t.tel.tel_waf in
  let program_fast () =
    let block = !pos_block and page = !pos_page and slots = !pos_slots in
    let n =
      Write_buffer.pop_into t.buffer ~logicals:t.scratch_logicals
        ~payloads:t.scratch_payloads slots
    in
    Flash.Chip.program_ints t.chip ~block ~page ~payloads:t.scratch_payloads
      ~count:n;
    let base = flat_slot t ~block ~page ~slot:0 in
    for i = 0 to n - 1 do
      t.sequence <- t.sequence + 1;
      let flat = base + i in
      t.oob_logical.(flat) <- t.scratch_logicals.(i);
      t.oob_seq.(flat) <- t.sequence;
      Mapping.bind_flat t.mapping ~logical:t.scratch_logicals.(i) flat
    done;
    t.padded <- t.padded + (slots - n);
    Telemetry.Registry.Counter.incr t.tel.tel_padded ~by:(slots - n);
    if waf_active && t.host_writes > 0 then
      Telemetry.Registry.Gauge.set t.tel.tel_waf
        (float_of_int (Flash.Chip.programs t.chip * opages)
        /. float_of_int t.host_writes);
    t.next_page <- page + 1;
    pos_slots := 0
  in
  (* [drain ~force:false] against the cached position; precondition:
     buffer non-empty (the loop just [put] an entry).  When the cache is
     valid, the skipped [open_position] call would have returned the
     same position with no side effects. *)
  let rec stream_drain () =
    if !pos_slots = 0 then
      (match open_position t with
      | None -> raise No_space_now
      | Some (block, page, slots) ->
          pos_block := block;
          pos_page := page;
          pos_slots := slots);
    if Write_buffer.length t.buffer >= !pos_slots then begin
      program_fast ();
      (* GC relocations during [open_position] can refill the buffer;
         keep programming, as [drain]'s recursion would. *)
      if not (Write_buffer.is_empty t.buffer) then stream_drain ()
    end
  in
  let stop =
    try
      while !accepted < budget do
        let lba = Sim.Rng.int rng window in
        if lba >= limit then raise (Stop Stream_out_of_window);
        let logical = translate lba in
        t.host_writes <- t.host_writes + 1;
        Write_buffer.put t.buffer ~logical ~payload:(payload_base + !accepted);
        (try stream_drain ()
         with No_space_now -> raise (Stop (Stream_no_space lba)));
        incr accepted;
        if Flash.Chip.erases t.chip <> erases0 then raise (Stop Stream_erased)
      done;
      Stream_budget
    with Stop stop -> stop
  in
  Telemetry.Registry.Counter.incr t.tel.tel_host_writes
    ~by:(t.host_writes - host_writes0);
  (!accepted, stop)

(* Last line of defense before [`Uncorrectable]: hand the read to the
   recovery hook (bounded attempts per exhausted read), which may
   reconstruct the payload from redundancy the engine cannot see.  A
   fully failed burst opens an exponential backoff window on the read
   clock; a success closes it. *)
let escalate t ~logical =
  match t.recovery_hook with
  | None -> None
  | Some hook ->
      if t.read_clock < t.escalation_retry_at then begin
        t.escalation_suppressed_count <- t.escalation_suppressed_count + 1;
        Telemetry.Registry.Counter.incr t.tel.tel_escalations_suppressed;
        None
      end
      else begin
        let rec burst attempt =
          if attempt > t.recovery_config.recovery_attempts then None
          else begin
            t.escalation_count <- t.escalation_count + 1;
            Telemetry.Registry.Counter.incr t.tel.tel_escalations;
            match hook ~logical with
            | Some _ as rescued ->
                t.escalation_success_count <- t.escalation_success_count + 1;
                Telemetry.Registry.Counter.incr t.tel.tel_escalation_successes;
                t.escalation_fail_streak <- 0;
                t.escalation_retry_at <- 0;
                rescued
            | None -> burst (attempt + 1)
          end
        in
        match burst 1 with
        | Some _ as rescued -> rescued
        | None ->
            t.escalation_fail_streak <- t.escalation_fail_streak + 1;
            let shift = Stdlib.min (t.escalation_fail_streak - 1) 20 in
            let delay =
              Stdlib.min t.recovery_config.backoff_cap
                (t.recovery_config.backoff_base lsl shift)
            in
            t.escalation_retry_at <- t.read_clock + delay;
            None
      end

let read t ~logical =
  if logical < 0 || logical >= t.logical_capacity then
    invalid_arg "Engine.read: logical index out of range";
  t.read_clock <- t.read_clock + 1;
  match Write_buffer.payload_of t.buffer logical with
  | Some payload -> Ok payload
  | None -> (
      (* Flat lookup + manual decode: the hot path boxes no
         [Location.t] / [option] per read. *)
      let flat = Mapping.find_flat t.mapping logical in
      if flat < 0 then begin
        Telemetry.Registry.Counter.incr t.tel.tel_unmapped;
        Error `Unmapped
      end
      else
        let g = geometry t in
        let opages = g.Flash.Geometry.opages_per_fpage in
        let spb = g.Flash.Geometry.pages_per_block * opages in
        let block = flat / spb in
        let rem = flat mod spb in
        let page = rem / opages in
        let slot = rem mod opages in
          (* Read-retry ladder: each rung re-senses with escalating effort
             (adjusted read thresholds, soft-decision decoding), modeled
             as the effective RBER shrinking by [retry_rber_factor] per
             attempt.  Attempt 0 sees any pending transient fault; the
             re-read consumes it, so later rungs sense the page clean.
             The ladder itself performs no chip reads, so the page's RBER
             is constant across rungs: it is computed once per read (twice
             when a transient was consumed) and each rung derives its
             effective rate from it.  [`Uncorrectable] only after the
             ladder is exhausted. *)
          let succeed k ~rber =
            if k > 0 then begin
              t.retry_success_count <- t.retry_success_count + 1;
              Telemetry.Registry.Counter.incr t.tel.tel_retry_successes
            end;
            let result =
              match Flash.Chip.read_slot t.chip ~block ~page ~slot with
              | Some payload -> Ok payload
              | None -> assert false
            in
            (* Read-reclaim: the read itself disturbed the page; if its
               error rate has crept toward the code's limit, move the live
               data somewhere younger before it becomes uncorrectable. *)
            if t.policy.Policy.should_reclaim ~rber ~block ~page then begin
              t.reclaims <- t.reclaims + 1;
              Telemetry.Registry.Counter.incr t.tel.tel_reclaims;
              relocate_page t ~block ~page
            end;
            result
          in
          let uncorrectable () =
            match escalate t ~logical with
            | Some payload -> Ok payload
            | None ->
                Telemetry.Registry.Counter.incr t.tel.tel_uncorrectable;
                Error `Uncorrectable
          in
          let rber0 = Flash.Chip.rber t.chip ~block ~page in
          let fail0 =
            t.policy.Policy.read_fail_prob
              ~rber:(rber0 *. (t.config.retry_rber_factor ** float_of_int 0))
              ~block ~page
          in
          let failed0 = Sim.Rng.chance t.rng fail0 in
          let taken = Flash.Chip.take_transient t.chip ~block ~page in
          if not failed0 then succeed 0 ~rber:rber0
          else if t.config.read_retries = 0 then uncorrectable ()
          else begin
            (* Consuming the transient changed the page's rate exactly
               when [taken] is nonzero; otherwise rung 0's value is
               already the clean rate. *)
            let rber =
              if taken = 0. then rber0
              else Flash.Chip.rber t.chip ~block ~page
            in
            let rec attempt k =
              t.read_retry_count <- t.read_retry_count + 1;
              Telemetry.Registry.Counter.incr t.tel.tel_read_retries;
              let effective =
                rber *. (t.config.retry_rber_factor ** float_of_int k)
              in
              let fail =
                t.policy.Policy.read_fail_prob ~rber:effective ~block ~page
              in
              if Sim.Rng.chance t.rng fail then
                if k < t.config.read_retries then attempt (k + 1)
                else uncorrectable ()
              else succeed k ~rber
            in
            attempt 1
          end)

let discard t ~logical =
  if logical < 0 || logical >= t.logical_capacity then
    invalid_arg "Engine.discard: logical index out of range";
  t.sequence <- t.sequence + 1;
  Hashtbl.replace t.trim_journal logical t.sequence;
  Write_buffer.drop t.buffer logical;
  Mapping.unbind_logical t.mapping logical

let gc_now t = gc_once t

(* --- introspection ------------------------------------------------------ *)

let block_class t block = t.classes.(block)
let free_blocks t = t.free_count
let retired_blocks t = t.retired_count

let total_data_slots t =
  (* Flush pending capacity recomputations, then the maintained sum is
     the answer (retired blocks contribute 0 — retirement requires a
     capacity of 0 and [Policy.data_slots] never grows). *)
  let dirty = Blockset.fold t.cap_dirty (fun acc b -> b :: acc) [] in
  List.iter (fun block -> refresh_capacity t block) dirty;
  t.total_capacity

let mapped_opages t = Mapping.mapped_count t.mapping

let mapped_in_range t ~lo ~len =
  let count = ref 0 in
  for logical = lo to Stdlib.min (lo + len) t.logical_capacity - 1 do
    match Mapping.find t.mapping logical with
    | Some _ -> incr count
    | None ->
        if Option.is_some (Write_buffer.payload_of t.buffer logical) then
          incr count
  done;
  !count
let buffered_opages t = Write_buffer.length t.buffer
let host_writes t = t.host_writes
let relocated_opages t = t.relocated
let gc_runs t = t.gc_runs
let padded_slots t = t.padded
let read_reclaims t = t.reclaims
let read_retries t = t.read_retry_count
let retry_successes t = t.retry_success_count
let read_escalations t = t.escalation_count
let escalation_successes t = t.escalation_success_count
let escalations_suppressed t = t.escalation_suppressed_count

let write_amplification t =
  if t.host_writes = 0 then nan
  else
    let opages = (geometry t).Flash.Geometry.opages_per_fpage in
    float_of_int (Flash.Chip.programs t.chip * opages)
    /. float_of_int t.host_writes

let locate t ~logical = Mapping.find t.mapping logical

(* Power-fail recovery: scan the flash, replay OOB tags in sequence order
   (highest sequence wins), suppress anything the trim journal outdates,
   and rebuild block classes from the chip's page states.  The write
   buffer and trim journal are non-volatile and carry over. *)
let crash_rebuild old =
  let g = Flash.Chip.geometry old.chip in
  let blocks = g.Flash.Geometry.blocks in
  let cap_dirty = Blockset.create blocks in
  for block = 0 to blocks - 1 do
    Blockset.add cap_dirty block
  done;
  let t =
    {
      old with
      mapping =
        Mapping.create ~geometry:g ~logical_opages:old.logical_capacity;
      open_block = None;
      next_page = 0;
      free_count = 0;
      retired_count = 0;
      in_gc = false;
      cap_cache = Array.make blocks 0;
      cap_dirty;
      total_capacity = 0;
      closed = Blockset.create blocks;
      free_heap = Intheap.create ();
    }
  in
  (* Collect surviving OOB tags and replay them oldest-first so that
     Mapping.bind leaves the newest copy of each logical in place. *)
  let tags = ref [] in
  for block = 0 to g.Flash.Geometry.blocks - 1 do
    for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
      if not (Flash.Chip.is_free t.chip ~block ~page) then
        for slot = 0 to g.Flash.Geometry.opages_per_fpage - 1 do
          let flat = flat_slot t ~block ~page ~slot in
          let logical = t.oob_logical.(flat) in
          if logical >= 0 then
            tags :=
              (t.oob_seq.(flat), logical, { Location.block; page; slot })
              :: !tags
        done
    done
  done;
  let tags = List.sort compare !tags in
  List.iter
    (fun (sequence, logical, location) ->
      let trimmed_after =
        match Hashtbl.find_opt t.trim_journal logical with
        | Some trim_sequence -> trim_sequence > sequence
        | None -> false
      in
      if not trimmed_after then Mapping.bind t.mapping ~logical location)
    tags;
  (* Anything the buffer still holds is newer than any flash copy. *)
  (* (reads consult the buffer first, so no rebinding is needed) *)
  (* Reconstruct block classes: blocks with any programmed page are
     closed; empty ones rejoin the free pool unless the policy retired
     them. *)
  for block = 0 to g.Flash.Geometry.blocks - 1 do
    let any_programmed = ref false in
    for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
      if not (Flash.Chip.is_free t.chip ~block ~page) then
        any_programmed := true
    done;
    if block_data_capacity t block = 0 then begin
      t.classes.(block) <- Retired;
      t.retired_count <- t.retired_count + 1
    end
    else if !any_programmed then begin
      t.classes.(block) <- Closed;
      Blockset.add t.closed block
    end
    else begin
      t.classes.(block) <- Free;
      t.free_count <- t.free_count + 1;
      push_free t block
    end
  done;
  t

let live_entries t =
  let acc = ref [] in
  for logical = 0 to t.logical_capacity - 1 do
    match Mapping.find t.mapping logical with
    | Some location -> acc := (logical, location) :: !acc
    | None -> ()
  done;
  List.rev !acc
