(** The SSD's small non-volatile write buffer.

    Host writes accumulate here until enough oPages are pending to fill
    the next available fPage (§3.2 of the paper).  The buffer deduplicates
    by logical index — rewriting a buffered oPage just replaces its
    payload — and reads must consult it before the mapping. *)

type t

val create : ?capacity:int -> unit -> t
(** [capacity] presizes the direct-address tables for logicals in
    [0, capacity); the engine passes its logical oPage count so the
    steady-state path never resizes.  Out-of-range logicals still work —
    the tables grow on demand. *)

val length : t -> int
(** Number of distinct logical oPages pending. *)

val is_empty : t -> bool

val put : t -> logical:int -> payload:int -> unit
(** Add or replace the pending payload for a logical oPage. *)

val payload_of : t -> int -> int option
(** Pending payload, if any (the read-path buffer hit). *)

val mem : t -> int -> bool
(** [mem t logical] without the option allocation — the GC-relocation
    hot path's "is a newer version already buffered" test. *)

val drop : t -> int -> unit
(** Remove a pending entry (trim of a buffered oPage). *)

val pop : t -> int -> (int * int) list
(** [pop t n] removes and returns up to [n] [(logical, payload)] entries
    in arrival order (of each logical's most recent write). *)

val pop_into : t -> logicals:int array -> payloads:int array -> int -> int
(** [pop t n] into caller-owned scratch arrays: writes the popped
    entries to [logicals.(0..k-1)] / [payloads.(0..k-1)] and returns
    [k].  Identical pop order and dedup semantics to {!pop}, without
    the per-flush list allocation — the bulk-aging stream's flush path.
    The arrays must have at least [n] slots. *)
