type t = {
  mutex : Mutex.t;
  wake : Condition.t; (* signalled on new task and on shutdown *)
  queue : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutable closed : bool; (* guarded by [mutex] *)
  mutable workers : unit Domain.t array;
}

let default_domains () =
  Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.wake t.mutex
  done;
  if Queue.is_empty t.queue then (* closed *)
    Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

(* Every minor collection in any domain is a stop-the-world rendezvous
   of all of them.  At the 256k-word default nursery an allocation-brisk
   fleet run syncs thousands of times per second, and each sync pays
   scheduler latency per non-running domain — the very anti-scaling
   BENCH_6 recorded.  The nursery size is per-domain in OCaml 5 and is
   NOT inherited through [Domain.spawn], so each worker grows its own
   at startup, and [create] grows the caller's (it allocates during the
   barrier merges and attends every rendezvous too).  ~32 MB per domain
   buys roughly 16x fewer rendezvous; never shrunk back.  Still the
   measured sweet spot after the BENCH_10 allocation rewrites (~5x
   fewer minor words per write): 8 MB and 128 MB nurseries both time
   measurably worse on the 40-day fleet at --jobs 4. *)
let min_minor_heap_words = 4 * 1024 * 1024

let tune_gc words =
  let g = Gc.get () in
  if g.Gc.minor_heap_size < words then
    Gc.set { g with Gc.minor_heap_size = words }

let create_sized ~nursery_words ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  tune_gc nursery_words;
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init domains (fun _ ->
        Domain.spawn (fun () ->
            tune_gc nursery_words;
            worker_loop t));
  t

let create ~domains =
  create_sized ~nursery_words:min_minor_heap_words ~domains

let domains t = Array.length t.workers

let submit_batch t tasks =
  if tasks <> [] then begin
    Mutex.lock t.mutex;
    if t.closed then begin
      Mutex.unlock t.mutex;
      invalid_arg "Pool: submit after shutdown"
    end;
    List.iter (fun task -> Queue.push task t.queue) tasks;
    (* One broadcast for the whole batch: every sleeping worker races to
       the queue once, instead of one signal (and one mutex round-trip)
       per task. *)
    Condition.broadcast t.wake;
    Mutex.unlock t.mutex
  end

let submit t task = submit_batch t [ task ]

(* Shared barrier for [map]/[map_chunked]: workers post each result into
   its submission-order slot, the caller sleeps until the last one lands.
   Slots are written by exactly one worker before it takes the completion
   mutex and read by the caller after the last release: the mutex orders
   every write before every read. *)
let run_all t (jobs : (unit -> 'a) array) =
  let n = Array.length jobs in
  let results = Array.make n None in
  let done_mutex = Mutex.create () in
  let done_cond = Condition.create () in
  let remaining = ref n in
  let tasks =
    List.init n (fun i ->
        fun () ->
          let r =
            match jobs.(i) () with y -> Ok y | exception e -> Error e
          in
          results.(i) <- Some r;
          Mutex.lock done_mutex;
          decr remaining;
          if !remaining = 0 then Condition.signal done_cond;
          Mutex.unlock done_mutex)
  in
  submit_batch t tasks;
  Mutex.lock done_mutex;
  while !remaining > 0 do
    Condition.wait done_cond done_mutex
  done;
  Mutex.unlock done_mutex;
  Array.to_list
    (Array.map
       (function
         | Some (Ok y) -> y
         | Some (Error e) -> raise e
         | None -> assert false)
       results)

let map t f xs =
  match xs with
  | [] -> []
  | xs -> run_all t (Array.of_list (List.map (fun x () -> f x) xs))

let map_opt pool f xs =
  match pool with None -> List.map f xs | Some t -> map t f xs

type chunk = { lo : int; hi : int }

let chunks ~chunk_size ~n =
  if chunk_size < 1 then invalid_arg "Pool.chunks: chunk_size must be >= 1";
  if n < 0 then invalid_arg "Pool.chunks: n must be >= 0";
  let rec build lo =
    if lo >= n then []
    else { lo; hi = Stdlib.min n (lo + chunk_size) } :: build (lo + chunk_size)
  in
  build 0

let map_chunked pool ~chunk_size ~n f =
  map_opt pool f (chunks ~chunk_size ~n)

module Accumulator = struct
  type ('acc, 'r) t = {
    create : chunk -> 'acc;
    item : 'acc -> int -> unit;
    finish : 'acc -> 'r;
  }
end

let accumulate pool ~chunk_size ~n (spec : _ Accumulator.t) =
  map_chunked pool ~chunk_size ~n (fun c ->
      let acc = spec.create c in
      for i = c.lo to c.hi - 1 do
        spec.item acc i
      done;
      spec.finish acc)

let shutdown t =
  Mutex.lock t.mutex;
  let fresh = not t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  if fresh then Array.iter Domain.join t.workers

let with_pool ?(nursery_words = min_minor_heap_words) ~domains f =
  let t = create_sized ~nursery_words ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
