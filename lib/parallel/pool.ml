type t = {
  mutex : Mutex.t;
  wake : Condition.t; (* signalled on new task and on shutdown *)
  queue : (unit -> unit) Queue.t; (* guarded by [mutex] *)
  mutable closed : bool; (* guarded by [mutex] *)
  mutable workers : unit Domain.t array;
}

let default_domains () =
  Stdlib.max 1 (Domain.recommended_domain_count () - 1)

let rec worker_loop t =
  Mutex.lock t.mutex;
  while Queue.is_empty t.queue && not t.closed do
    Condition.wait t.wake t.mutex
  done;
  if Queue.is_empty t.queue then (* closed *)
    Mutex.unlock t.mutex
  else begin
    let task = Queue.pop t.queue in
    Mutex.unlock t.mutex;
    task ();
    worker_loop t
  end

let create ~domains =
  if domains < 1 then invalid_arg "Pool.create: domains must be >= 1";
  let t =
    {
      mutex = Mutex.create ();
      wake = Condition.create ();
      queue = Queue.create ();
      closed = false;
      workers = [||];
    }
  in
  t.workers <-
    Array.init domains (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t

let domains t = Array.length t.workers

let submit t task =
  Mutex.lock t.mutex;
  if t.closed then begin
    Mutex.unlock t.mutex;
    invalid_arg "Pool: submit after shutdown"
  end;
  Queue.push task t.queue;
  Condition.signal t.wake;
  Mutex.unlock t.mutex

let map t f xs =
  match xs with
  | [] -> []
  | xs ->
      let inputs = Array.of_list xs in
      let n = Array.length inputs in
      (* Slots are each written by exactly one worker before it takes the
         completion mutex, and read by the caller after the last release:
         the mutex orders every write before every read. *)
      let results = Array.make n None in
      let done_mutex = Mutex.create () in
      let done_cond = Condition.create () in
      let remaining = ref n in
      Array.iteri
        (fun i x ->
          submit t (fun () ->
              let r =
                match f x with
                | y -> Ok y
                | exception e -> Error e
              in
              results.(i) <- Some r;
              Mutex.lock done_mutex;
              decr remaining;
              if !remaining = 0 then Condition.signal done_cond;
              Mutex.unlock done_mutex))
        inputs;
      Mutex.lock done_mutex;
      while !remaining > 0 do
        Condition.wait done_cond done_mutex
      done;
      Mutex.unlock done_mutex;
      Array.to_list
        (Array.map
           (function
             | Some (Ok y) -> y
             | Some (Error e) -> raise e
             | None -> assert false)
           results)

let map_opt pool f xs =
  match pool with None -> List.map f xs | Some t -> map t f xs

let shutdown t =
  Mutex.lock t.mutex;
  let fresh = not t.closed in
  t.closed <- true;
  Condition.broadcast t.wake;
  Mutex.unlock t.mutex;
  if fresh then Array.iter Domain.join t.workers

let with_pool ~domains f =
  let t = create ~domains in
  Fun.protect ~finally:(fun () -> shutdown t) (fun () -> f t)
