(** Fixed-size domain pool: the execution substrate for device-parallel
    fleet aging and experiment-suite fan-out.

    The pool owns [domains] worker domains (OCaml 5 shared-memory
    parallelism; no dependencies beyond [Domain]/[Mutex]/[Condition])
    pulling tasks off one queue.  {!map} and {!map_chunked} return
    results in submission order regardless of completion order, which is
    what lets callers keep the byte-identical-output determinism
    guarantee: as long as each task is self-contained (its own RNG
    stream, its own metric registry), the reduce step observes the same
    sequence at any domain count.

    Chunked execution is the preferred shape for homogeneous work over
    an index range: one task per chunk amortizes the queue round-trip
    and the completion handshake over [chunk_size] items, and the
    {!Accumulator} pattern gives each chunk private accumulation state
    (registry, monitor, plain [int ref]s) created once and merged once
    at the barrier — no per-item synchronization at all.  Chunk
    boundaries must depend only on the item count, never on the domain
    count, so the merged result is identical at any [--jobs].

    Tasks must not submit work back into the pool they run on: workers
    block only between tasks, so a task that waits on a nested {!map}
    against its own pool can deadlock once all workers are busy.  The
    experiment layer therefore parallelizes at exactly one level per
    entry point (devices within a fleet, or experiments within the
    suite, never both on one pool). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains (at least 1).
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Number of worker domains. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (the caller's domain keeps
    one core), at least 1: the cap the CLI's [--jobs] flag defaults to. *)

val submit : t -> (unit -> unit) -> unit
(** Enqueue one task.  @raise Invalid_argument after {!shutdown}. *)

val submit_batch : t -> (unit -> unit) list -> unit
(** Enqueue every task under a single lock acquisition and wake the
    workers with one [Condition.broadcast] — the batched form {!map} and
    {!map_chunked} are built on.  @raise Invalid_argument after
    {!shutdown}. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] evaluates [f x] for every element on the pool's workers
    and returns the results in the order of [xs].  If any application
    raised, the first raising element's exception (in submission order)
    is re-raised in the caller after all tasks have settled — the pool
    itself stays usable. *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map_opt (Some t)] is [map t]; [map_opt None] is sequential
    [List.map] — the single code path callers use so that [--jobs 1]
    and [--jobs n] run identical per-element computations. *)

(** {2 Chunked execution} *)

type chunk = { lo : int; hi : int }
(** Half-open index range [\[lo, hi)]. *)

val chunks : chunk_size:int -> n:int -> chunk list
(** Static range partition of [\[0, n)] into runs of [chunk_size]
    (the last chunk may be shorter).  Depends only on [chunk_size] and
    [n] — never on the pool size — so downstream merges are
    jobs-invariant.
    @raise Invalid_argument if [chunk_size < 1] or [n < 0]. *)

val map_chunked :
  t option -> chunk_size:int -> n:int -> (chunk -> 'r) -> 'r list
(** [map_chunked pool ~chunk_size ~n f] applies [f] to every chunk of
    [\[0, n)] — one pool task per chunk, results in chunk order.  With
    [pool = None] the chunks run sequentially in the caller. *)

(** Per-chunk accumulation: [create] builds the chunk-local state (sub
    registry/monitor, plain counters) once, [item] folds each index into
    it with no synchronization, [finish] extracts the mergeable result
    returned in submission order. *)
module Accumulator : sig
  type ('acc, 'r) t = {
    create : chunk -> 'acc;
    item : 'acc -> int -> unit;
    finish : 'acc -> 'r;
  }
end

val accumulate :
  t option -> chunk_size:int -> n:int -> ('acc, 'r) Accumulator.t -> 'r list
(** [accumulate pool ~chunk_size ~n spec] runs [spec] over every chunk
    of [\[0, n)] via {!map_chunked}: per-chunk state from [spec.create],
    [spec.item] on each index in order, [spec.finish] results in chunk
    order for the caller's deterministic merge. *)

val shutdown : t -> unit
(** Drain nothing, accept nothing: wake every worker and join them.
    Idempotent.  Outstanding {!map} calls must have returned. *)

val with_pool : ?nursery_words:int -> domains:int -> (t -> 'a) -> 'a
(** Scoped create/shutdown: the pool is torn down when the callback
    returns or raises.  [nursery_words] overrides the per-domain
    minor-heap floor the pool grows every participating domain (workers
    and caller) to; the default is the measured sweet spot for the
    fleet workloads.  Minor heaps are only ever grown, never shrunk. *)
