(** Fixed-size domain pool: the execution substrate for device-parallel
    fleet aging and experiment-suite fan-out.

    The pool owns [domains] worker domains (OCaml 5 shared-memory
    parallelism; no dependencies beyond [Domain]/[Mutex]/[Condition])
    pulling tasks off one queue.  {!map} returns results in submission
    order regardless of completion order, which is what lets callers
    keep the byte-identical-output determinism guarantee: as long as
    each task is self-contained (its own RNG stream, its own metric
    registry), the reduce step observes the same sequence at any
    domain count.

    Tasks must not submit work back into the pool they run on: workers
    block only between tasks, so a task that waits on a nested {!map}
    against its own pool can deadlock once all workers are busy.  The
    experiment layer therefore parallelizes at exactly one level per
    entry point (devices within a fleet, or experiments within the
    suite, never both on one pool). *)

type t

val create : domains:int -> t
(** [create ~domains] spawns [domains] worker domains (at least 1).
    @raise Invalid_argument if [domains < 1]. *)

val domains : t -> int
(** Number of worker domains. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count () - 1] (the caller's domain keeps
    one core), at least 1: the cap the CLI's [--jobs] flag defaults to. *)

val map : t -> ('a -> 'b) -> 'a list -> 'b list
(** [map t f xs] evaluates [f x] for every element on the pool's workers
    and returns the results in the order of [xs].  If any application
    raised, the first raising element's exception (in submission order)
    is re-raised in the caller after all tasks have settled.
    @raise Invalid_argument if the pool has been shut down. *)

val map_opt : t option -> ('a -> 'b) -> 'a list -> 'b list
(** [map_opt (Some t)] is [map t]; [map_opt None] is sequential
    [List.map] — the single code path callers use so that [--jobs 1]
    and [--jobs n] run identical per-element computations. *)

val shutdown : t -> unit
(** Drain nothing, accept nothing: wake every worker and join them.
    Idempotent.  Outstanding {!map} calls must have returned. *)

val with_pool : domains:int -> (t -> 'a) -> 'a
(** Scoped create/shutdown: the pool is torn down when the callback
    returns or raises. *)
