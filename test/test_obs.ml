(* Tests for the fleet observability plane: the merging t-digest
   (qcheck rank-error bound, exactness of count/sum/min/max, chunked
   merge determinism), the exact top-K tracker (brute-force equality on
   fleets up to 4096), the space-saving counts sketch (error bounds and
   heavy-hitter guarantee), and the fleet report (grading, imbalance
   statistics, submission-order merge determinism of the rendered
   bytes). *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checks = Alcotest.check Alcotest.string
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)

(* --- Digest ------------------------------------------------------------------ *)

let exact_quantile sorted q =
  let n = Array.length sorted in
  if n = 0 then nan
  else sorted.(Stdlib.min (n - 1) (int_of_float (q *. float_of_int n)))

(* Rank error: where the sketch's answer actually sits in the sorted
   data, as a fraction of n, versus where q asked.  This is the t-digest
   accuracy contract (value error is unbounded for adversarial data;
   rank error is not). *)
let rank_error sorted q estimate =
  let n = Array.length sorted in
  let below = ref 0 and at_or_below = ref 0 in
  Array.iter
    (fun v ->
      if v < estimate then incr below;
      if v <= estimate then incr at_or_below)
    sorted;
  (* The estimate covers the whole rank interval [below, at_or_below]:
     distance from q to that interval. *)
  let lo = float_of_int !below /. float_of_int n
  and hi = float_of_int !at_or_below /. float_of_int n in
  if q < lo then lo -. q else if q > hi then q -. hi else 0.

let float_list_gen =
  QCheck.Gen.(
    oneof
      [
        (* uniform *)
        list_size (int_range 100 3000) (float_bound_inclusive 1000.);
        (* heavy-tailed: squares of uniforms stretched *)
        map
          (List.map (fun x -> (x *. x) +. 1.))
          (list_size (int_range 100 3000) (float_bound_inclusive 100.));
        (* few distinct values, many repeats *)
        list_size (int_range 100 3000)
          (map float_of_int (int_range 0 5));
      ])

let prop_digest_rank_error =
  QCheck.Test.make ~count:60 ~name:"digest: rank error under 2%"
    (QCheck.make float_list_gen)
    (fun values ->
      let d = Obs.Digest.create () in
      List.iter (Obs.Digest.add d) values;
      let sorted = Array.of_list (List.sort compare values) in
      List.for_all
        (fun q -> rank_error sorted q (Obs.Digest.quantile d q) <= 0.02)
        [ 0.01; 0.1; 0.25; 0.5; 0.75; 0.9; 0.99; 0.999 ])

(* Chunked merging is what the parallel runners do; the partition is a
   pure function of the fleet shape (never of --jobs), so the contract
   is: a fixed partition merged in submission order is bit-for-bit
   reproducible, and merging costs little accuracy. *)
let prop_digest_merge_deterministic =
  QCheck.Test.make ~count:40
    ~name:"digest: fixed-partition merge reproducible, accuracy kept"
    (QCheck.make
       QCheck.Gen.(
         pair float_list_gen (int_range 1 7)))
    (fun (values, chunks) ->
      let arr = Array.of_list values in
      let n = Array.length arr in
      let per = Stdlib.max 1 ((n + chunks - 1) / chunks) in
      let run () =
        let merged = Obs.Digest.create () in
        let i = ref 0 in
        while !i < n do
          let sub = Obs.Digest.create () in
          for j = !i to Stdlib.min (n - 1) (!i + per - 1) do
            Obs.Digest.add sub arr.(j)
          done;
          Obs.Digest.merge ~into:merged sub;
          i := !i + per
        done;
        merged
      in
      let a = run () and b = run () in
      let qs = [ 0.; 0.1; 0.25; 0.5; 0.9; 0.99; 1. ] in
      let sorted = Array.of_list (List.sort compare values) in
      Obs.Digest.count a = n
      && Float.abs (Obs.Digest.sum a -. List.fold_left ( +. ) 0. values)
         <= 1e-6 *. Float.abs (Obs.Digest.sum a)
      && List.for_all
           (fun q ->
             Int64.equal
               (Int64.bits_of_float (Obs.Digest.quantile a q))
               (Int64.bits_of_float (Obs.Digest.quantile b q)))
           qs
      && List.for_all
           (fun q -> rank_error sorted q (Obs.Digest.quantile a q) <= 0.02)
           qs)

let test_digest_exact_moments () =
  let d = Obs.Digest.create ~budget:8 () in
  checkb "empty quantile is nan" true (Float.is_nan (Obs.Digest.quantile d 0.5));
  let values = List.init 1000 (fun i -> float_of_int ((i * 7919) mod 997)) in
  List.iter (Obs.Digest.add d) values;
  checki "count exact" 1000 (Obs.Digest.count d);
  checkf 1e-9 "sum exact" (List.fold_left ( +. ) 0. values) (Obs.Digest.sum d);
  checkf 0. "min exact"
    (List.fold_left Stdlib.min infinity values)
    (Obs.Digest.min d);
  checkf 0. "max exact"
    (List.fold_left Stdlib.max neg_infinity values)
    (Obs.Digest.max d);
  checkb "quantiles clamp to observed range" true
    (Obs.Digest.quantile d 0. = Obs.Digest.min d
    && Obs.Digest.quantile d 1. = Obs.Digest.max d);
  checkb "compressed size bounded by O(budget log n)" true
    (Array.length (Obs.Digest.centroids d) <= 8 * Obs.Digest.budget d)

let test_digest_single_value () =
  let d = Obs.Digest.create () in
  Obs.Digest.add d 42.;
  List.iter
    (fun q -> checkf 0. "single value at every quantile" 42. (Obs.Digest.quantile d q))
    [ 0.; 0.5; 1. ]

(* --- Topk -------------------------------------------------------------------- *)

(* The same ordering the tracker promises: score descending, natural id
   ascending. *)
let brute_top_k ~k entries =
  let cmp (ida, sa) (idb, sb) =
    match compare sb sa with
    | 0 -> Monitor.Health.natural_compare ida idb
    | c -> c
  in
  let sorted = List.sort cmp entries in
  List.filteri (fun i _ -> i < k) sorted

let prop_topk_exact_vs_brute_force =
  QCheck.Test.make ~count:50
    ~name:"topk: chunked merge equals brute force on fleets <= 4096"
    (QCheck.make
       QCheck.Gen.(
         triple (int_range 1 4096) (int_range 1 32) (int_range 1 8)))
    (fun (devices, k, chunks) ->
      (* Deterministic pseudo-random scores with ties. *)
      let score i = float_of_int ((i * 2654435761) mod 97) in
      let entries =
        List.init devices (fun i -> (Printf.sprintf "dev-%d" i, score i))
      in
      let per = Stdlib.max 1 ((devices + chunks - 1) / chunks) in
      let global = Obs.Topk.Topk.create ~k () in
      let i = ref 0 in
      while !i < devices do
        let sub = Obs.Topk.Topk.create ~k () in
        for j = !i to Stdlib.min (devices - 1) (!i + per - 1) do
          Obs.Topk.Topk.offer sub
            ~id:(Printf.sprintf "dev-%d" j)
            ~score:(score j) ()
        done;
        Obs.Topk.Topk.merge ~into:global sub;
        i := !i + per
      done;
      let got =
        List.map (fun (id, s, ()) -> (id, s)) (Obs.Topk.Topk.to_list global)
      in
      got = brute_top_k ~k entries)

let test_topk_natural_tie_order () =
  let t = Obs.Topk.Topk.create ~k:3 () in
  List.iter
    (fun id -> Obs.Topk.Topk.offer t ~id ~score:1. ())
    [ "dev-10"; "dev-2"; "dev-1"; "dev-9" ];
  Alcotest.(check (list string))
    "ties resolve in natural id order"
    [ "dev-1"; "dev-2"; "dev-9" ]
    (List.map (fun (id, _, ()) -> id) (Obs.Topk.Topk.to_list t))

(* --- Counts ------------------------------------------------------------------ *)

let test_counts_error_bounds () =
  (* A skewed stream over 26 subjects through k=8 slots. *)
  let truth = Hashtbl.create 26 in
  let c = Obs.Topk.Counts.create ~k:8 () in
  let n = 5000 in
  for i = 0 to n - 1 do
    (* Zipf-ish: subject j gets ~ n/2^j occurrences. *)
    let rec pick j acc = if i land acc <> 0 || j >= 25 then j else pick (j + 1) (acc * 2) in
    let subject = Printf.sprintf "s%c" (Char.chr (Char.code 'a' + pick 0 1)) in
    Hashtbl.replace truth subject
      (1 + Option.value ~default:0 (Hashtbl.find_opt truth subject));
    Obs.Topk.Counts.add c subject
  done;
  checki "observed keeps exact stream weight" n (Obs.Topk.Counts.observed c);
  let entries = Obs.Topk.Counts.to_list c in
  checkb "at most k slots" true (List.length entries <= 8);
  List.iter
    (fun (id, est, err) ->
      let true_count = Option.value ~default:0 (Hashtbl.find_opt truth id) in
      checkb
        (Printf.sprintf "%s: est-err <= true <= est" id)
        true
        (est - err <= true_count && true_count <= est))
    entries;
  (* Any subject above observed/k must be present. *)
  Hashtbl.iter
    (fun id count ->
      if count > n / 8 then
        checkb
          (Printf.sprintf "heavy hitter %s retained" id)
          true
          (List.exists (fun (i, _, _) -> i = id) entries))
    truth

let test_counts_merge_conservative () =
  let a = Obs.Topk.Counts.create ~k:4 () and b = Obs.Topk.Counts.create ~k:4 () in
  for _ = 1 to 10 do Obs.Topk.Counts.add a "x" done;
  for _ = 1 to 6 do Obs.Topk.Counts.add b "x" done;
  for _ = 1 to 3 do Obs.Topk.Counts.add b "y" done;
  Obs.Topk.Counts.merge ~into:a b;
  checki "merge sums stream weight" 19 (Obs.Topk.Counts.observed a);
  match List.find_opt (fun (id, _, _) -> id = "x") (Obs.Topk.Counts.to_list a) with
  | Some (_, est, err) ->
      checkb "merged estimate brackets truth" true (est - err <= 16 && 16 <= est)
  | None -> Alcotest.fail "x evicted despite dominating the stream"

(* --- Fleet report ------------------------------------------------------------ *)

let obs ?(pec_max = 10) ?(pec_min = 5) ?(rber = 1e-4) ?(tol = 1e-2)
    ?(retries = 0) ?(escalations = 0) ?(host_writes = 1000) ?(alive = true) id =
  {
    Obs.Fleet_report.id;
    pec_max;
    pec_min;
    rber_worst = rber;
    tolerable_rber = tol;
    retries;
    escalations;
    reclaims = 0;
    host_writes;
    alive;
  }

let thresholds =
  { Monitor.Health.default_thresholds with Monitor.Health.target_pec = 60. }

let test_report_grading () =
  let g = Obs.Fleet_report.grade thresholds in
  checkb "alive and comfortable is healthy" true
    (g (obs "a") = Monitor.Health.Healthy);
  checkb "dead is retired" true
    (g (obs ~alive:false "b") = Monitor.Health.Retired);
  checkb "rber at tolerance is failing" true
    (g (obs ~rber:1e-2 ~tol:1e-2 "c") = Monitor.Health.Failing);
  checkb "past target pec is degraded" true
    (g (obs ~pec_max:60 "d") = Monitor.Health.Degraded);
  checkb "retry-heavy is degraded" true
    (g (obs ~retries:100 ~host_writes:1000 "e") = Monitor.Health.Degraded)

let test_report_balance_stats () =
  (* Perfectly level fleet: CV and Gini must both be zero. *)
  let acc = Obs.Fleet_report.Acc.create ~thresholds () in
  for i = 0 to 99 do
    Obs.Fleet_report.Acc.observe acc (obs ~pec_max:30 (Printf.sprintf "d-%d" i))
  done;
  let r = Obs.Fleet_report.build ~epoch:"t" acc in
  checki "devices counted" 100 r.Obs.Fleet_report.devices;
  checkf 0. "cv zero on a level fleet" 0. r.Obs.Fleet_report.cv;
  checkf 0. "gini zero on a level fleet" 0. r.Obs.Fleet_report.gini;
  checkf 0. "pec mean" 30. r.Obs.Fleet_report.pec.Obs.Fleet_report.mean;
  (* Maximal imbalance: one device carries all the wear. *)
  let acc = Obs.Fleet_report.Acc.create ~thresholds () in
  Obs.Fleet_report.Acc.observe acc (obs ~pec_max:50 "hot");
  for i = 1 to 49 do
    Obs.Fleet_report.Acc.observe acc (obs ~pec_max:0 (Printf.sprintf "cold-%d" i))
  done;
  let r = Obs.Fleet_report.build ~epoch:"t" acc in
  (* Gini of one-owner distribution over n devices is (n-1)/n. *)
  checkf 1e-9 "gini of a one-owner fleet" 0.98 r.Obs.Fleet_report.gini;
  checkb "cv reflects concentration" true (r.Obs.Fleet_report.cv > 6.)

(* The runner's invariant: the chunk partition is fixed by the fleet
   shape, workers fill their chunks in whatever order they get
   scheduled, and the driver merges in submission order — so the bytes
   must not depend on fill order. *)
let test_report_merge_deterministic () =
  let observe acc i =
    Obs.Fleet_report.Acc.observe acc
      (obs
         ~pec_max:((i * 13) mod 80)
         ~retries:((i * 7) mod 9)
         ~alive:(i mod 17 <> 0)
         (Printf.sprintf "dev-%d" i))
  in
  let run fill_order =
    let par = Obs.Fleet_report.Acc.create ~top_k:5 ~thresholds () in
    let subs = Array.init 4 (fun _ -> Obs.Fleet_report.Acc.sub par) in
    List.iter
      (fun c ->
        for i = c * 50 to (c * 50) + 49 do
          observe subs.(c) i
        done)
      fill_order;
    Array.iter (fun s -> Obs.Fleet_report.Acc.merge ~into:par s) subs;
    let r = Obs.Fleet_report.build ~epoch:"merge-test" par in
    (Format.asprintf "%a" Obs.Fleet_report.pp r, Obs.Fleet_report.to_jsonl r)
  in
  let text_a, json_a = run [ 0; 1; 2; 3 ]
  and text_b, json_b = run [ 3; 1; 0; 2 ] in
  checks "report text independent of worker completion order" text_a text_b;
  checks "report jsonl independent of worker completion order" json_a json_b;
  checkb "report is non-trivial" true (String.length text_a > 100)

let test_report_worst_ranking () =
  let acc = Obs.Fleet_report.Acc.create ~top_k:3 ~thresholds () in
  Obs.Fleet_report.Acc.observe acc (obs ~alive:false "dead-1");
  Obs.Fleet_report.Acc.observe acc (obs ~rber:0.5 ~tol:1e-2 "failing-1");
  Obs.Fleet_report.Acc.observe acc (obs ~pec_max:70 "worn-1");
  Obs.Fleet_report.Acc.observe acc (obs "fine-1");
  let r = Obs.Fleet_report.build ~epoch:"t" acc in
  Alcotest.(check (list string))
    "severity dominates the worst list"
    [ "dead-1"; "failing-1"; "worn-1" ]
    (List.map (fun (o, _) -> o.Obs.Fleet_report.id) r.Obs.Fleet_report.worst);
  checki "grade histogram: one healthy" 1
    (Obs.Fleet_report.grade_count r Monitor.Health.Healthy);
  checki "grade histogram: one retired" 1
    (Obs.Fleet_report.grade_count r Monitor.Health.Retired)

let suite =
  [
    QCheck_alcotest.to_alcotest prop_digest_rank_error;
    QCheck_alcotest.to_alcotest prop_digest_merge_deterministic;
    ("digest: exact moments", `Quick, test_digest_exact_moments);
    ("digest: single value", `Quick, test_digest_single_value);
    QCheck_alcotest.to_alcotest prop_topk_exact_vs_brute_force;
    ("topk: natural tie order", `Quick, test_topk_natural_tie_order);
    ("counts: error bounds", `Quick, test_counts_error_bounds);
    ("counts: conservative merge", `Quick, test_counts_merge_conservative);
    ("report: grading", `Quick, test_report_grading);
    ("report: balance statistics", `Quick, test_report_balance_stats);
    ("report: merge determinism", `Quick, test_report_merge_deterministic);
    ("report: worst ranking", `Quick, test_report_worst_ranking);
  ]
