(* Tests for the Salamander core: the tiredness level table, limbo
   accounting (Eqs. 1 and 2), the minidisk registry, and the full device
   in both ShrinkS and RegenS modes, aged to death. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()
(* 512 oPage slots = 2 MiB of 4 KiB pages *)

let reference_geometry = Flash.Geometry.create ~pages_per_block:64 ~blocks:64 ()

let fast_model =
  Flash.Rber_model.calibrate ~target_rber:6e-3 ~target_pec:40 ()

let test_config =
  {
    Salamander.Device.default_config with
    Salamander.Device.mdisk_opages = 32 (* 128 KiB minidisks *);
  }

let shrink_test_config =
  { test_config with Salamander.Device.mode = Salamander.Device.Shrink_s }

module Tiredness_helpers = struct
  (* The paper's reference geometry (16 KiB fPage + 2 KiB spare) with
     RegenS limited to L1, as §4 recommends. *)
  let reference_profile () =
    Salamander.Tiredness.profile ~max_level:1 reference_geometry
end

(* --- Tiredness ----------------------------------------------------------- *)

let test_tiredness_level_table () =
  let profile = Tiredness_helpers.reference_profile () in
  let l0 = Salamander.Tiredness.info profile 0 in
  let l1 = Salamander.Tiredness.info profile 1 in
  checki "L0 slots" 4 l0.Salamander.Tiredness.data_slots;
  checki "L1 slots" 3 l1.Salamander.Tiredness.data_slots;
  (* Paper's reference code: 2 KiB chunks, 256 B spare, t = 136 at L0. *)
  (match l0.Salamander.Tiredness.params with
  | Some p -> checki "L0 capability" 136 p.Ecc.Code_params.capability
  | None -> Alcotest.fail "L0 has a code");
  checkb "L1 tolerates more errors" true
    (l1.Salamander.Tiredness.tolerable_rber
    > l0.Salamander.Tiredness.tolerable_rber);
  checkb "code rate drops with level" true
    (l1.Salamander.Tiredness.code_rate < l0.Salamander.Tiredness.code_rate);
  (* L0 code rate of the 16 KiB + 2 KiB geometry is 8/9. *)
  Alcotest.check (Alcotest.float 1e-6) "L0 code rate" (8. /. 9.)
    l0.Salamander.Tiredness.code_rate

let test_tiredness_dead_level () =
  let profile = Tiredness_helpers.reference_profile () in
  checki "dead level" 2 (Salamander.Tiredness.dead_level profile);
  let dead =
    Salamander.Tiredness.info profile (Salamander.Tiredness.dead_level profile)
  in
  checki "dead slots" 0 dead.Salamander.Tiredness.data_slots;
  checkb "dead has no code" true (dead.Salamander.Tiredness.params = None)

let test_tiredness_level_for_rber () =
  let profile = Tiredness_helpers.reference_profile () in
  let l0_max =
    (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
  in
  let l1_max =
    (Salamander.Tiredness.info profile 1).Salamander.Tiredness.tolerable_rber
  in
  checki "tiny rber is L0" 0
    (Salamander.Tiredness.level_for_rber profile ~rber:1e-6);
  checki "just under L0 max" 0
    (Salamander.Tiredness.level_for_rber profile ~rber:(l0_max *. 0.99));
  checki "between thresholds is L1" 1
    (Salamander.Tiredness.level_for_rber profile ~rber:(l0_max *. 1.01));
  checki "beyond L1 is dead" 2
    (Salamander.Tiredness.level_for_rber profile ~rber:(l1_max *. 1.01))

let test_tiredness_lifetime_ratio_matches_paper () =
  (* The core of Fig. 2: with the calibrated wear model, moving from L0 to
     L1 should buy roughly the paper's ~50% extra lifetime (we accept
     1.3x to 1.8x). *)
  let profile = Tiredness_helpers.reference_profile () in
  let model =
    Flash.Rber_model.calibrate
      ~target_rber:
        (Salamander.Tiredness.info profile 0).Salamander.Tiredness.tolerable_rber
      ~target_pec:3000 ()
  in
  let pec_at level =
    Flash.Rber_model.pec_at model
      ~rber:
        (Salamander.Tiredness.info profile level)
          .Salamander.Tiredness.tolerable_rber
      ~strength:1.
  in
  let ratio = pec_at 1 /. pec_at 0 in
  checkb (Printf.sprintf "L1/L0 lifetime ratio %.2f in [1.3, 1.8]" ratio) true
    (ratio >= 1.3 && ratio <= 1.8)

let test_tiredness_max_level_bounds () =
  Alcotest.check_raises "max_level too big"
    (Invalid_argument "Tiredness.profile: max_level out of range") (fun () ->
      ignore (Salamander.Tiredness.profile ~max_level:4 reference_geometry))

(* --- Limbo ---------------------------------------------------------------- *)

let test_limbo_initial_census () =
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let limbo = Salamander.Limbo.create profile in
  checki "all pages at L0" (Flash.Geometry.fpages geometry)
    (Salamander.Limbo.count limbo ~level:0);
  checki "Eq1 at L0" (Flash.Geometry.total_opages geometry)
    (Salamander.Limbo.valid_opages limbo ~level:0);
  checki "total capacity" (Flash.Geometry.total_opages geometry)
    (Salamander.Limbo.total_data_opages limbo)

let test_limbo_transitions () =
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let limbo = Salamander.Limbo.create profile in
  Salamander.Limbo.transition limbo ~from_level:0 ~to_level:1;
  Salamander.Limbo.transition limbo ~from_level:0 ~to_level:1;
  Salamander.Limbo.transition limbo ~from_level:1 ~to_level:2;
  checki "L0 count" (Flash.Geometry.fpages geometry - 2)
    (Salamander.Limbo.count limbo ~level:0);
  checki "L1 count" 1 (Salamander.Limbo.count limbo ~level:1);
  checki "dead count" 1 (Salamander.Limbo.count limbo ~level:2);
  (* Eq 1: L1 page stores 3 oPages, dead stores 0. *)
  checki "Eq1 L1" 3 (Salamander.Limbo.valid_opages limbo ~level:1);
  checki "Eq1 dead" 0 (Salamander.Limbo.valid_opages limbo ~level:2);
  checki "total lost 5 opages" (Flash.Geometry.total_opages geometry - 5)
    (Salamander.Limbo.total_data_opages limbo)

let test_limbo_transition_empty_source () =
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let limbo = Salamander.Limbo.create profile in
  Alcotest.check_raises "empty source"
    (Invalid_argument "Limbo.transition: no pages at source level") (fun () ->
      Salamander.Limbo.transition limbo ~from_level:1 ~to_level:2)

let test_limbo_capacity_deficit () =
  let profile = Salamander.Tiredness.profile ~max_level:1 geometry in
  let limbo = Salamander.Limbo.create profile in
  let total = Salamander.Limbo.total_data_opages limbo in
  checki "no deficit when below capacity" 0
    (Salamander.Limbo.capacity_deficit limbo ~lbas:(total - 10) ~headroom:1.0);
  checkb "deficit under headroom" true
    (Salamander.Limbo.capacity_deficit limbo ~lbas:total ~headroom:1.1 > 0)

(* --- Minidisk registry ----------------------------------------------------- *)

let test_registry_lifecycle () =
  let r = Salamander.Minidisk.Registry.create ~opages_per_mdisk:32 ~slots:4 in
  let m0 =
    Option.get (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0)
  in
  let m1 =
    Option.get (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0)
  in
  checki "ids monotonic" 1 m1.Salamander.Minidisk.id;
  checki "active" 2 (Salamander.Minidisk.Registry.active_count r);
  checki "lbas" 64 (Salamander.Minidisk.Registry.active_opages r);
  ignore (Salamander.Minidisk.Registry.decommission r m0.Salamander.Minidisk.id);
  checki "active after decommission" 1
    (Salamander.Minidisk.Registry.active_count r);
  (* Slot reuse: a regenerated minidisk may take the freed slot but gets a
     fresh id. *)
  let m2 =
    Option.get (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:1)
  in
  checki "fresh id" 2 m2.Salamander.Minidisk.id;
  checki "reused slot" m0.Salamander.Minidisk.slot m2.Salamander.Minidisk.slot

let test_registry_slot_exhaustion () =
  let r = Salamander.Minidisk.Registry.create ~opages_per_mdisk:32 ~slots:2 in
  ignore (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0);
  ignore (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0);
  checkb "exhausted" true
    (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0 = None)

let test_registry_double_decommission () =
  let r = Salamander.Minidisk.Registry.create ~opages_per_mdisk:32 ~slots:2 in
  let m =
    Option.get (Salamander.Minidisk.Registry.create_mdisk r ~birth_level:0)
  in
  ignore (Salamander.Minidisk.Registry.decommission r m.Salamander.Minidisk.id);
  Alcotest.check_raises "double decommission"
    (Invalid_argument "Minidisk.Registry.decommission: already decommissioned")
    (fun () ->
      ignore
        (Salamander.Minidisk.Registry.decommission r m.Salamander.Minidisk.id))

(* --- Device: basic I/O ------------------------------------------------------ *)

let make_device ?(config = test_config) ?(seed = 42) ?(model = fast_model) () =
  Salamander.Device.create ~config ~geometry ~model
    ~rng:(Sim.Rng.create seed) ()

let test_device_initial_layout () =
  let d = make_device () in
  (* 512 opages * 0.93 / 32 per mdisk = 14 minidisks *)
  checki "initial minidisks" 14
    (List.length (Salamander.Device.active_mdisks d));
  checki "exported lbas" (14 * 32) (Salamander.Device.active_opages d);
  checki "physical capacity" 512 (Salamander.Device.total_data_opages d);
  checkb "alive" true (Salamander.Device.alive d)

let test_device_write_read_roundtrip () =
  let d = make_device () in
  let mdisks = Salamander.Device.active_mdisks d in
  let first = (List.hd mdisks).Salamander.Minidisk.id in
  List.iter
    (fun lba ->
      match Salamander.Device.write d ~mdisk:first ~lba ~payload:(lba * 7) with
      | Ok () -> ()
      | Error _ -> Alcotest.fail "write failed")
    (List.init 32 Fun.id);
  List.iter
    (fun lba ->
      match Salamander.Device.read d ~mdisk:first ~lba with
      | Ok payload -> checki "payload" (lba * 7) payload
      | Error _ -> Alcotest.fail "read failed")
    (List.init 32 Fun.id)

let test_device_mdisk_isolation () =
  let d = make_device () in
  let mdisks = Salamander.Device.active_mdisks d in
  let a = (List.nth mdisks 0).Salamander.Minidisk.id in
  let b = (List.nth mdisks 1).Salamander.Minidisk.id in
  ignore (Salamander.Device.write d ~mdisk:a ~lba:5 ~payload:111);
  ignore (Salamander.Device.write d ~mdisk:b ~lba:5 ~payload:222);
  (match Salamander.Device.read d ~mdisk:a ~lba:5 with
  | Ok p -> checki "mdisk a" 111 p
  | Error _ -> Alcotest.fail "read a");
  match Salamander.Device.read d ~mdisk:b ~lba:5 with
  | Ok p -> checki "mdisk b" 222 p
  | Error _ -> Alcotest.fail "read b"

let test_device_unknown_mdisk () =
  let d = make_device () in
  checkb "write to unknown" true
    (Salamander.Device.write d ~mdisk:999 ~lba:0 ~payload:0
    = Error `Unknown_mdisk);
  checkb "read from unknown" true
    (Salamander.Device.read d ~mdisk:999 ~lba:0 = Error `Unknown_mdisk)

let test_device_lba_bounds () =
  let d = make_device () in
  let first =
    (List.hd (Salamander.Device.active_mdisks d)).Salamander.Minidisk.id
  in
  Alcotest.check_raises "lba out of mdisk"
    (Invalid_argument "Minidisk: LBA outside minidisk") (fun () ->
      ignore (Salamander.Device.write d ~mdisk:first ~lba:32 ~payload:0))

let test_device_trim () =
  let d = make_device () in
  let first =
    (List.hd (Salamander.Device.active_mdisks d)).Salamander.Minidisk.id
  in
  ignore (Salamander.Device.write d ~mdisk:first ~lba:0 ~payload:5);
  Salamander.Device.trim d ~mdisk:first ~lba:0;
  checkb "unmapped after trim" true
    (Salamander.Device.read d ~mdisk:first ~lba:0 = Error `Unmapped)

let test_device_census_consistency () =
  let d = make_device () in
  let census = Salamander.Device.level_census d in
  let limbo = Salamander.Device.limbo d in
  Array.iteri
    (fun level count ->
      checki
        (Printf.sprintf "census level %d" level)
        count
        (Salamander.Limbo.count limbo ~level))
    census;
  (* Engine capacity accounting agrees with limbo accounting. *)
  checki "engine vs limbo capacity"
    (Salamander.Limbo.total_data_opages limbo)
    (Ftl.Engine.total_data_slots (Salamander.Device.engine d))

(* --- Device: aging ----------------------------------------------------------- *)

(* Drive random overwrites through the flat adapter until death. *)
let age_salamander ?(max_writes = 5_000_000) ?(utilization = 0.85) d =
  let rng = Sim.Rng.create 333 in
  let writes = ref 0 in
  (try
     while !writes < max_writes do
       if not (Salamander.Device.alive d) then raise Exit;
       let capacity = Salamander.Device.As_device.logical_capacity d in
       if capacity = 0 then raise Exit;
       let window =
         Stdlib.max 1 (int_of_float (float_of_int capacity *. utilization))
       in
       let lba = Sim.Rng.int rng window in
       (match Salamander.Device.As_device.write d ~lba ~payload:!writes with
       | Ok () -> incr writes
       | Error `Dead | Error `No_space -> raise Exit
       | Error `Out_of_range -> ())
     done
   with Exit -> ());
  !writes

let test_device_shrinks_ages_to_death () =
  let d = make_device ~config:shrink_test_config () in
  let writes = age_salamander d in
  checkb "died" true (not (Salamander.Device.alive d));
  checkb "lived a while" true (writes > 1000);
  checkb "decommissioned along the way" true
    (Salamander.Device.decommissions d > 1);
  checki "no regenerations in ShrinkS" 0 (Salamander.Device.regenerations d);
  (* Every minidisk is gone at the end. *)
  checki "no active minidisks" 0
    (List.length (Salamander.Device.active_mdisks d))

let test_device_shrinks_emits_events () =
  let d = make_device ~config:shrink_test_config () in
  ignore (age_salamander d);
  (* We did not poll during aging, so all events are still queued. *)
  let events = Salamander.Device.poll_events d in
  let decommissions =
    List.length
      (List.filter
         (function
           | Salamander.Events.Mdisk_decommissioned _ -> true | _ -> false)
         events)
  in
  let failed =
    List.exists (function Salamander.Events.Device_failed -> true | _ -> false)
      events
  in
  checki "decommission events match counter"
    (Salamander.Device.decommissions d)
    decommissions;
  checkb "device failure announced" true failed;
  checki "queue drained" 0 (List.length (Salamander.Device.poll_events d))

let test_device_regens_regenerates () =
  let d = make_device ~config:test_config () in
  ignore (age_salamander d);
  checkb "regenerated at least once" true
    (Salamander.Device.regenerations d > 0);
  (* Regenerated minidisks appear in the event stream with their level. *)
  let events = Salamander.Device.poll_events d in
  let created =
    List.filter_map
      (function
        | Salamander.Events.Mdisk_created { level; _ } -> Some level
        | _ -> None)
      events
  in
  checki "creation events match counter"
    (Salamander.Device.regenerations d)
    (List.length created);
  checkb "some created at L1" true (List.exists (fun l -> l >= 1) created)

let test_device_regens_outlives_shrinks () =
  (* The headline ordering: baseline < ShrinkS < RegenS in total writes
     absorbed before death, on identical wear physics. *)
  let lifetime config seeds =
    List.fold_left
      (fun acc seed -> acc + age_salamander (make_device ~config ~seed ()))
      0 seeds
  in
  let seeds = [ 1; 2; 3 ] in
  let shrink_life = lifetime shrink_test_config seeds in
  let regen_life = lifetime test_config seeds in
  checkb
    (Printf.sprintf "regen %d > shrink %d" regen_life shrink_life)
    true (regen_life > shrink_life)

let test_device_outlives_baseline () =
  let baseline_life =
    let rng = Sim.Rng.create 7 in
    let b = Ftl.Baseline_ssd.create ~geometry ~model:fast_model ~rng () in
    let packed = Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), b) in
    let rng = Sim.Rng.create 333 in
    let writes = ref 0 in
    (try
       while !writes < 5_000_000 do
         if not (Ftl.Device_intf.alive packed) then raise Exit;
         let capacity = Ftl.Device_intf.logical_capacity packed in
         let window =
           Stdlib.max 1 (int_of_float (float_of_int capacity *. 0.85))
         in
         match
           Ftl.Device_intf.write packed ~lba:(Sim.Rng.int rng window)
             ~payload:!writes
         with
         | Ok () -> incr writes
         | Error _ -> raise Exit
       done
     with Exit -> ());
    !writes
  in
  let shrink_life = age_salamander (make_device ~config:shrink_test_config ~seed:7 ()) in
  checkb
    (Printf.sprintf "shrinkS %d > baseline %d" shrink_life baseline_life)
    true (shrink_life > baseline_life)

let test_device_data_survives_decommissions () =
  (* Writes to minidisks that remain active must stay readable across
     other minidisks' decommissioning. *)
  let d = make_device ~config:shrink_test_config ~seed:5 () in
  let rng = Sim.Rng.create 99 in
  let shadow = Hashtbl.create 256 in
  let write_round i =
    List.iter
      (fun mdisk ->
        let id = mdisk.Salamander.Minidisk.id in
        let lba = Sim.Rng.int rng 32 in
        match Salamander.Device.write d ~mdisk:id ~lba ~payload:(i + lba) with
        | Ok () ->
            if
              (* the write may have triggered decommissions; only count it
                 if its minidisk survived *)
              List.exists
                (fun m -> m.Salamander.Minidisk.id = id)
                (Salamander.Device.active_mdisks d)
            then Hashtbl.replace shadow (id, lba) (i + lba)
            else Hashtbl.remove shadow (id, lba)
        | Error _ -> ())
      (Salamander.Device.active_mdisks d)
  in
  let i = ref 0 in
  while Salamander.Device.decommissions d < 3 && !i < 200_000 do
    write_round !i;
    incr i
  done;
  checkb "observed several decommissions" true
    (Salamander.Device.decommissions d >= 3);
  (* Remove shadow entries of minidisks that were decommissioned. *)
  let live_ids =
    List.map
      (fun m -> m.Salamander.Minidisk.id)
      (Salamander.Device.active_mdisks d)
  in
  Hashtbl.iter
    (fun (id, lba) expected ->
      if List.mem id live_ids then
        match Salamander.Device.read d ~mdisk:id ~lba with
        | Ok payload ->
            checki (Printf.sprintf "mdisk %d lba %d" id lba) expected payload
        | Error `Uncorrectable -> () (* legitimate rare media error *)
        | Error _ -> Alcotest.fail "read of live minidisk failed")
    shadow

let test_device_adapter_capacity_tracks_shrinkage () =
  let d = make_device ~config:shrink_test_config ~seed:11 () in
  let initial = Salamander.Device.As_device.logical_capacity d in
  checki "initial matches mdisks" (14 * 32) initial;
  ignore (age_salamander ~max_writes:5_000_000 d);
  checkb "capacity decreased monotonically to zero at death" true
    (Salamander.Device.As_device.logical_capacity d < initial)

(* Property: whatever sequence of writes/trims/reads a host issues, the
   device's three capacity accountings stay consistent:
   - the per-page level array matches the limbo census (Eq. 1 bookkeeping),
   - the engine's policy-derived capacity equals the limbo total,
   - exported LBAs never exceed physical data slots (Eq. 2 is enforced
     up to one pending maintenance round). *)
let prop_device_invariants =
  QCheck.Test.make ~count:20 ~name:"device accounting invariants"
    QCheck.(pair small_int (list (pair (int_range 0 13) (int_range 0 40))))
    (fun (seed, ops) ->
      let d = make_device ~config:test_config ~seed:(seed + 1000) () in
      List.iteri
        (fun i (mdisk_index, lba) ->
          let mdisks = Salamander.Device.active_mdisks d in
          if mdisks <> [] then begin
            let mdisk =
              (List.nth mdisks (mdisk_index mod List.length mdisks))
                .Salamander.Minidisk.id
            in
            let lba = lba mod 32 in
            match i mod 4 with
            | 0 | 1 | 2 ->
                ignore (Salamander.Device.write d ~mdisk ~lba ~payload:i)
            | _ -> Salamander.Device.trim d ~mdisk ~lba
          end)
        ops;
      let census = Salamander.Device.level_census d in
      let limbo = Salamander.Device.limbo d in
      let census_ok =
        Array.for_all Fun.id
          (Array.mapi
             (fun level count -> Salamander.Limbo.count limbo ~level = count)
             census)
      in
      let engine_ok =
        Ftl.Engine.total_data_slots (Salamander.Device.engine d)
        = Salamander.Limbo.total_data_opages limbo
      in
      let capacity_ok =
        (not (Salamander.Device.alive d))
        || Salamander.Device.active_opages d
           <= Salamander.Device.total_data_opages d
      in
      census_ok && engine_ok && capacity_ok)

(* --- Device: decommissioning grace period (§4.3) ---------------------------- *)

let grace_config =
  { shrink_test_config with Salamander.Device.decommission_grace = true }

let test_device_grace_keeps_data_readable () =
  let d = make_device ~config:grace_config ~seed:21 () in
  (* Write a marker into every minidisk, then age until one retires. *)
  let markers =
    List.map
      (fun m ->
        let id = m.Salamander.Minidisk.id in
        (match Salamander.Device.write d ~mdisk:id ~lba:0 ~payload:(1000 + id) with
        | Ok () -> ()
        | Error _ -> Alcotest.fail "marker write failed");
        id)
      (Salamander.Device.active_mdisks d)
  in
  let retiring () =
    List.filter_map
      (function
        | Salamander.Events.Mdisk_retiring { id; _ } -> Some id | _ -> None)
      (Salamander.Device.poll_events d)
  in
  (* Age by overwriting LBAs 1..24 of every minidisk (≈75% utilization so
     Eq. 2 fires before an out-of-space emergency), never touching the
     markers at LBA 0. *)
  let rng = Sim.Rng.create 22 in
  let found = ref [] in
  let rounds = ref 0 in
  while !found = [] && !rounds < 300_000 do
    incr rounds;
    List.iter
      (fun m ->
        ignore
          (Salamander.Device.write d ~mdisk:m.Salamander.Minidisk.id
             ~lba:(1 + Sim.Rng.int rng 24)
             ~payload:0))
      (Salamander.Device.active_mdisks d);
    found := retiring ()
  done;
  match !found with
  | [] -> Alcotest.fail "no minidisk retired"
  | id :: _ ->
      checkb "marker still readable during grace" true
        (List.mem id markers
        && (match Salamander.Device.read d ~mdisk:id ~lba:0 with
           | Ok p -> p = 1000 + id
           | Error _ -> false));
      (* writes to a draining minidisk are refused *)
      checkb "writes refused during grace" true
        (Salamander.Device.write d ~mdisk:id ~lba:0 ~payload:0
        = Error `Unknown_mdisk);
      (* acknowledging completes the retirement *)
      Salamander.Device.acknowledge_decommission d ~mdisk:id;
      checkb "unreadable after ack" true
        (Salamander.Device.read d ~mdisk:id ~lba:0 = Error `Unknown_mdisk);
      let decommissioned =
        List.exists
          (function
            | Salamander.Events.Mdisk_decommissioned { id = i; _ } -> i = id
            | _ -> false)
          (Salamander.Device.poll_events d)
      in
      checkb "Mdisk_decommissioned emitted on ack" true decommissioned

let test_device_grace_emergency_override () =
  (* Without any host acknowledgements, out-of-space emergencies must
     force-finish draining minidisks instead of deadlocking: the device
     keeps writing until no active minidisk remains.  (It may finish
     read-only, holding the last unacknowledged drains — alive but with
     zero writable capacity.) *)
  let d = make_device ~config:grace_config ~seed:23 () in
  let writes = age_salamander d in
  checkb "lived first" true (writes > 1000);
  checki "no writable capacity left" 0
    (Salamander.Device.active_opages d);
  (* Progress was only possible because emergencies reclaimed drained
     space along the way. *)
  checkb "emergencies completed some drains" true
    (List.exists
       (function
         | Salamander.Events.Mdisk_decommissioned _ -> true | _ -> false)
       (Salamander.Device.poll_events d))

(* --- Events.Queue ------------------------------------------------------------ *)

let event_testable =
  Alcotest.testable Salamander.Events.pp (fun a b -> a = b)

let test_events_queue_fifo_order () =
  let q = Salamander.Events.Queue.create () in
  let events =
    [
      Salamander.Events.Mdisk_retiring { id = 1; opages = 32 };
      Salamander.Events.Mdisk_decommissioned { id = 1; lost_opages = 32 };
      Salamander.Events.Mdisk_created { id = 2; opages = 16; level = 1 };
      Salamander.Events.Device_failed;
    ]
  in
  List.iter (Salamander.Events.Queue.push q) events;
  checki "pending counts pushes" 4 (Salamander.Events.Queue.pending q);
  Alcotest.(check (list event_testable))
    "drain is oldest-first" events
    (Salamander.Events.Queue.drain q)

let test_events_queue_drain_empties () =
  let q = Salamander.Events.Queue.create () in
  Alcotest.(check (list event_testable))
    "fresh queue drains empty" []
    (Salamander.Events.Queue.drain q);
  Salamander.Events.Queue.push q Salamander.Events.Device_failed;
  ignore (Salamander.Events.Queue.drain q);
  checki "drain leaves queue empty" 0 (Salamander.Events.Queue.pending q);
  Alcotest.(check (list event_testable))
    "second drain empty" []
    (Salamander.Events.Queue.drain q);
  (* The queue keeps working after a drain. *)
  Salamander.Events.Queue.push q
    (Salamander.Events.Mdisk_created { id = 7; opages = 8; level = 0 });
  checki "push after drain" 1 (Salamander.Events.Queue.pending q)

let test_events_queue_interleaved () =
  let q = Salamander.Events.Queue.create () in
  let ev i = Salamander.Events.Mdisk_retiring { id = i; opages = i } in
  Salamander.Events.Queue.push q (ev 0);
  Salamander.Events.Queue.push q (ev 1);
  Alcotest.(check (list event_testable)) "first batch" [ ev 0; ev 1 ]
    (Salamander.Events.Queue.drain q);
  Salamander.Events.Queue.push q (ev 2);
  Alcotest.(check (list event_testable))
    "later pushes don't resurface drained events" [ ev 2 ]
    (Salamander.Events.Queue.drain q)

let suite =
  [
    ("tiredness level table", `Quick, test_tiredness_level_table);
    ("tiredness dead level", `Quick, test_tiredness_dead_level);
    ("tiredness level_for_rber", `Quick, test_tiredness_level_for_rber);
    ("tiredness lifetime ratio (Fig 2)", `Quick,
     test_tiredness_lifetime_ratio_matches_paper);
    ("tiredness max level bounds", `Quick, test_tiredness_max_level_bounds);
    ("limbo initial census", `Quick, test_limbo_initial_census);
    ("limbo transitions (Eq 1)", `Quick, test_limbo_transitions);
    ("limbo empty source", `Quick, test_limbo_transition_empty_source);
    ("limbo capacity deficit (Eq 2)", `Quick, test_limbo_capacity_deficit);
    ("registry lifecycle", `Quick, test_registry_lifecycle);
    ("registry slot exhaustion", `Quick, test_registry_slot_exhaustion);
    ("registry double decommission", `Quick, test_registry_double_decommission);
    ("device initial layout", `Quick, test_device_initial_layout);
    ("device write/read roundtrip", `Quick, test_device_write_read_roundtrip);
    ("device mdisk isolation", `Quick, test_device_mdisk_isolation);
    ("device unknown mdisk", `Quick, test_device_unknown_mdisk);
    ("device lba bounds", `Quick, test_device_lba_bounds);
    ("device trim", `Quick, test_device_trim);
    ("device census consistency", `Quick, test_device_census_consistency);
    ("device ShrinkS ages to death", `Slow, test_device_shrinks_ages_to_death);
    ("device ShrinkS emits events", `Slow, test_device_shrinks_emits_events);
    ("device RegenS regenerates", `Slow, test_device_regens_regenerates);
    ("device RegenS outlives ShrinkS", `Slow,
     test_device_regens_outlives_shrinks);
    ("device ShrinkS outlives baseline", `Slow, test_device_outlives_baseline);
    ("device data survives decommissions", `Slow,
     test_device_data_survives_decommissions);
    ("device adapter capacity", `Slow, test_device_adapter_capacity_tracks_shrinkage);
    ("device grace keeps data readable", `Slow,
     test_device_grace_keeps_data_readable);
    ("device grace emergency override", `Slow,
     test_device_grace_emergency_override);
    ("events queue fifo order", `Quick, test_events_queue_fifo_order);
    ("events queue drain empties", `Quick, test_events_queue_drain_empties);
    ("events queue interleaved", `Quick, test_events_queue_interleaved);
    QCheck_alcotest.to_alcotest prop_device_invariants;
  ]
