(* Differential test pinning Sim.Rng to a boxed-int64 reference.

   The production generator runs xoshiro256** on 32-bit halves in
   native ints so that every draw is allocation-free; this file keeps
   the straightforward Int64 transliteration of Blackman & Vigna's
   algorithm and checks the two produce identical streams — bits,
   bounded ints (including the rejection-sampling draw count), floats,
   coins — across seeds and awkward bounds.  Any future change to the
   half-word arithmetic that perturbs a single bit fails here first. *)

module Ref = struct
  type t = {
    mutable s0 : int64;
    mutable s1 : int64;
    mutable s2 : int64;
    mutable s3 : int64;
  }

  let splitmix64_next state =
    let open Int64 in
    state := add !state 0x9E3779B97F4A7C15L;
    let z = !state in
    let z = mul (logxor z (shift_right_logical z 30)) 0xBF58476D1CE4E5B9L in
    let z = mul (logxor z (shift_right_logical z 27)) 0x94D049BB133111EBL in
    logxor z (shift_right_logical z 31)

  let of_seed64 seed =
    let state = ref seed in
    let s0 = splitmix64_next state in
    let s1 = splitmix64_next state in
    let s2 = splitmix64_next state in
    let s3 = splitmix64_next state in
    { s0; s1; s2; s3 }

  let create seed = of_seed64 (Int64.of_int seed)

  let rotl x k =
    Int64.logor (Int64.shift_left x k) (Int64.shift_right_logical x (64 - k))

  let bits64 t =
    let open Int64 in
    let result = mul (rotl (mul t.s1 5L) 7) 9L in
    let tmp = shift_left t.s1 17 in
    t.s2 <- logxor t.s2 t.s0;
    t.s3 <- logxor t.s3 t.s1;
    t.s1 <- logxor t.s1 t.s2;
    t.s0 <- logxor t.s0 t.s3;
    t.s2 <- logxor t.s2 tmp;
    t.s3 <- rotl t.s3 45;
    result

  let int t bound =
    let bound64 = Int64.of_int bound in
    let rec draw () =
      let raw = Int64.shift_right_logical (bits64 t) 1 in
      let candidate = Int64.rem raw bound64 in
      if
        Int64.sub raw candidate
        > Int64.sub Int64.max_int (Int64.sub bound64 1L)
      then draw ()
      else Int64.to_int candidate
    in
    draw ()

  let unit_float t =
    let raw = Int64.shift_right_logical (bits64 t) 11 in
    Int64.to_float raw *. 0x1p-53

  let bool t = Int64.logand (bits64 t) 1L = 1L

  let chance t p =
    if p <= 0. then false else if p >= 1. then true else unit_float t < p
end

let checkb msg expected actual = Alcotest.(check bool) msg expected actual

let test_bits64_stream () =
  for seed = 0 to 100 do
    let a = Ref.create seed and b = Sim.Rng.create seed in
    for _ = 1 to 500 do
      checkb "bits64 identical" true
        (Int64.equal (Ref.bits64 a) (Sim.Rng.bits64 b))
    done
  done

let awkward_bounds =
  [
    1; 2; 3; 5; 7; 15; 16; 17; 255; 256; 257; 1000; 1577; 4093; 65536;
    1_000_003;
    (1 lsl 30) - 1; 1 lsl 30; (1 lsl 30) + 1;
    (* the fast-path boundary: 2^31 is the last half-word bound *)
    (1 lsl 31) - 1; 1 lsl 31; (1 lsl 31) + 1;
    (* the boxed fallback *)
    (1 lsl 40) + 7; max_int - 1; max_int;
    (* 2^63 mod (3 * 2^60) = 2^61: a quarter of all draws reject *)
    3 * (1 lsl 60);
  ]

let test_int_all_bounds () =
  List.iter
    (fun bound ->
      let seed = bound land 0xFFFF in
      let a = Ref.create seed and b = Sim.Rng.create seed in
      for _ = 1 to 5_000 do
        let x = Ref.int a bound and y = Sim.Rng.int b bound in
        if x <> y then
          Alcotest.failf "int %d diverged: %d vs %d" bound x y
      done;
      (* same number of raw draws consumed: next bits agree *)
      checkb "state in sync after int" true
        (Int64.equal (Ref.bits64 a) (Sim.Rng.bits64 b)))
    awkward_bounds

let test_float_bool_chance () =
  let a = Ref.create 99 and b = Sim.Rng.create 99 in
  for _ = 1 to 20_000 do
    let x = Ref.unit_float a and y = Sim.Rng.unit_float b in
    if x <> y then Alcotest.failf "unit_float diverged: %h vs %h" x y
  done;
  for _ = 1 to 20_000 do
    checkb "bool identical" (Ref.bool a) (Sim.Rng.bool b)
  done;
  let ps = [| 0.; 1.; -0.25; 0.5; 1e-9; 0.999999; 0.25; 3e-3; 0.7 |] in
  for i = 1 to 20_000 do
    let p = ps.(i mod Array.length ps) in
    checkb "chance identical" (Ref.chance a p) (Sim.Rng.chance b p)
  done;
  checkb "state in sync after floats" true
    (Int64.equal (Ref.bits64 a) (Sim.Rng.bits64 b))

let test_int_allocation_free () =
  let r = Sim.Rng.create 3 in
  let acc = ref 0 in
  for _ = 1 to 1_000 do
    acc := !acc + Sim.Rng.int r 1577
  done;
  let w0 = Gc.minor_words () in
  for _ = 1 to 50_000 do
    acc := !acc + Sim.Rng.int r 1577
  done;
  ignore (Sys.opaque_identity !acc);
  let per_draw = (Gc.minor_words () -. w0) /. 50_000. in
  if per_draw > 0.01 then
    Alcotest.failf "Rng.int allocates %.3f words/draw (expected 0)" per_draw

let suite =
  [
    Alcotest.test_case "bits64 matches int64 reference" `Quick
      test_bits64_stream;
    Alcotest.test_case "int matches reference across bounds" `Quick
      test_int_all_bounds;
    Alcotest.test_case "unit_float/bool/chance match reference" `Quick
      test_float_bool_chance;
    Alcotest.test_case "int draws are allocation-free" `Quick
      test_int_allocation_free;
  ]
