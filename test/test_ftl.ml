(* Tests for the FTL layer: mapping invariants, the write buffer, the
   engine's read-your-writes behaviour under GC pressure, and the
   baseline/CVSS devices' end-of-life behaviour. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()
(* 16 blocks x 8 fPages x 4 oPages = 512 oPage slots *)

let gentle_model =
  (* Effectively wear-free across a test's horizon. *)
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()

let fast_model =
  (* Pages tire after a few dozen cycles: accelerated aging for
     end-of-life tests. *)
  Flash.Rber_model.calibrate ~target_rber:6e-3 ~target_pec:40 ()

(* --- Mapping ------------------------------------------------------------ *)

module Mapping_exposed = struct
  let create () = Ftl.Mapping.create ~geometry ~logical_opages:64
end

let test_mapping_bind_find () =
  let m = Mapping_exposed.create () in
  let loc = { Ftl.Location.block = 1; page = 2; slot = 3 } in
  Ftl.Mapping.bind m ~logical:7 loc;
  (match Ftl.Mapping.find m 7 with
  | Some l -> checkb "found" true (Ftl.Location.equal l loc)
  | None -> Alcotest.fail "mapping lost");
  Alcotest.(check (option int)) "reverse" (Some 7) (Ftl.Mapping.owner m loc);
  checki "mapped count" 1 (Ftl.Mapping.mapped_count m);
  checki "valid in block" 1 (Ftl.Mapping.valid_in_block m ~block:1)

let test_mapping_rebind_invalidates_old () =
  let m = Mapping_exposed.create () in
  let old_loc = { Ftl.Location.block = 0; page = 0; slot = 0 } in
  let new_loc = { Ftl.Location.block = 1; page = 1; slot = 1 } in
  Ftl.Mapping.bind m ~logical:3 old_loc;
  Ftl.Mapping.bind m ~logical:3 new_loc;
  Alcotest.(check (option int)) "old slot stale" None (Ftl.Mapping.owner m old_loc);
  checki "old block emptied" 0 (Ftl.Mapping.valid_in_block m ~block:0);
  checki "still one mapping" 1 (Ftl.Mapping.mapped_count m)

let test_mapping_slot_stealing () =
  let m = Mapping_exposed.create () in
  let loc = { Ftl.Location.block = 2; page = 3; slot = 1 } in
  Ftl.Mapping.bind m ~logical:10 loc;
  Ftl.Mapping.bind m ~logical:11 loc;
  (* stealing the slot unmaps the previous owner *)
  Alcotest.(check (option int)) "new owner" (Some 11) (Ftl.Mapping.owner m loc);
  checkb "old logical unmapped" true (Ftl.Mapping.find m 10 = None);
  checki "one mapping" 1 (Ftl.Mapping.mapped_count m)

let test_mapping_unbind () =
  let m = Mapping_exposed.create () in
  let loc = { Ftl.Location.block = 0; page = 1; slot = 2 } in
  Ftl.Mapping.bind m ~logical:5 loc;
  Ftl.Mapping.unbind_logical m 5;
  checkb "gone" true (Ftl.Mapping.find m 5 = None);
  Alcotest.(check (option int)) "slot stale" None (Ftl.Mapping.owner m loc);
  checki "none mapped" 0 (Ftl.Mapping.mapped_count m);
  (* double unbind is a no-op *)
  Ftl.Mapping.unbind_logical m 5

(* Property: after arbitrary bind/unbind sequences forward and reverse
   directions agree and the per-block valid counters are exact. *)
let prop_mapping_consistency =
  QCheck.Test.make ~count:100 ~name:"mapping forward/reverse consistency"
    QCheck.(list (pair (int_range 0 63) (triple (int_range 0 15) (int_range 0 7) (int_range 0 3))))
    (fun ops ->
      let m = Mapping_exposed.create () in
      List.iter
        (fun (logical, (block, page, slot)) ->
          if logical mod 7 = 0 then Ftl.Mapping.unbind_logical m logical
          else Ftl.Mapping.bind m ~logical { Ftl.Location.block; page; slot })
        ops;
      (* forward -> reverse agreement *)
      let consistent = ref true in
      let count = ref 0 in
      for logical = 0 to 63 do
        match Ftl.Mapping.find m logical with
        | None -> ()
        | Some loc ->
            incr count;
            if Ftl.Mapping.owner m loc <> Some logical then consistent := false
      done;
      (* counters *)
      let by_block = Array.make 16 0 in
      for logical = 0 to 63 do
        match Ftl.Mapping.find m logical with
        | Some { Ftl.Location.block; _ } ->
            by_block.(block) <- by_block.(block) + 1
        | None -> ()
      done;
      let counters_ok = ref true in
      Array.iteri
        (fun block expected ->
          if Ftl.Mapping.valid_in_block m ~block <> expected then
            counters_ok := false)
        by_block;
      !consistent && !counters_ok
      && Ftl.Mapping.mapped_count m = !count)

(* --- Write buffer ------------------------------------------------------- *)

let test_buffer_dedupe () =
  let b = Ftl.Write_buffer.create () in
  Ftl.Write_buffer.put b ~logical:1 ~payload:10;
  Ftl.Write_buffer.put b ~logical:1 ~payload:20;
  checki "one entry" 1 (Ftl.Write_buffer.length b);
  Alcotest.(check (option int)) "latest payload" (Some 20)
    (Ftl.Write_buffer.payload_of b 1)

let test_buffer_pop_order () =
  let b = Ftl.Write_buffer.create () in
  Ftl.Write_buffer.put b ~logical:1 ~payload:10;
  Ftl.Write_buffer.put b ~logical:2 ~payload:20;
  Ftl.Write_buffer.put b ~logical:3 ~payload:30;
  Alcotest.(check (list (pair int int)))
    "first two in order"
    [ (1, 10); (2, 20) ]
    (Ftl.Write_buffer.pop b 2);
  checki "one left" 1 (Ftl.Write_buffer.length b)

let test_buffer_drop_then_rewrite () =
  let b = Ftl.Write_buffer.create () in
  Ftl.Write_buffer.put b ~logical:1 ~payload:10;
  Ftl.Write_buffer.drop b 1;
  checkb "empty" true (Ftl.Write_buffer.is_empty b);
  Ftl.Write_buffer.put b ~logical:1 ~payload:30;
  Alcotest.(check (list (pair int int))) "stale entry skipped" [ (1, 30) ]
    (Ftl.Write_buffer.pop b 5);
  checkb "drained" true (Ftl.Write_buffer.is_empty b)

(* --- Engine -------------------------------------------------------------- *)

(* --- incremental accounting structures --------------------------------- *)

let test_blockset_ascending () =
  let s = Ftl.Blockset.create 200 in
  List.iter (Ftl.Blockset.add s) [ 190; 3; 64; 63; 0; 127; 3 ];
  Ftl.Blockset.remove s 64;
  Ftl.Blockset.remove s 5;
  (* removing a non-member is a no-op *)
  let seen = ref [] in
  Ftl.Blockset.iter s (fun i -> seen := i :: !seen);
  Alcotest.(check (list int))
    "members in ascending order" [ 0; 3; 63; 127; 190 ] (List.rev !seen);
  checki "cardinal" 5 (Ftl.Blockset.cardinal s);
  checkb "mem" true (Ftl.Blockset.mem s 127);
  checkb "not mem" false (Ftl.Blockset.mem s 64)

let test_intheap_sorted_pops () =
  let h = Ftl.Intheap.create () in
  let rng = Sim.Rng.create 77 in
  let pushed = List.init 500 (fun _ -> Sim.Rng.int rng 10_000) in
  List.iter (Ftl.Intheap.push h) pushed;
  let rec drain acc =
    match Ftl.Intheap.pop h with
    | None -> List.rev acc
    | Some v -> drain (v :: acc)
  in
  let popped = drain [] in
  Alcotest.(check (list int))
    "pops come out sorted" (List.sort compare pushed) popped;
  checkb "empty after drain" true (Ftl.Intheap.is_empty h)

(* The engine's cached per-block capacities, maintained total, closed set
   and free-block heap must agree with a brute-force recount at any point
   of a churny life that includes level bumps (capacity shrinking at erase
   time, like the Salamander policy does). *)
let test_incremental_accounting_matches_brute_force () =
  let pages = geometry.Flash.Geometry.pages_per_block in
  let blocks = geometry.Flash.Geometry.blocks in
  let levels = Array.make (blocks * pages) 0 in
  let page_index ~block ~page = (block * pages) + page in
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 71) ~geometry ~model:gentle_model ()
  in
  let policy =
    {
      Ftl.Policy.data_slots =
        (fun ~block ~page -> Stdlib.max 0 (4 - levels.(page_index ~block ~page)));
      read_fail_prob = (fun ~rber:_ ~block:_ ~page:_ -> 0.);
      should_reclaim = (fun ~rber:_ ~block:_ ~page:_ -> false);
      on_block_erased = (fun ~block:_ -> ());
    }
  in
  let engine =
    Ftl.Engine.create ~chip ~rng:(Sim.Rng.create 72) ~policy
      ~logical_capacity:300 ()
  in
  (* Erase-time tiredness: every third cycle of a block bumps all its
     pages one level, shrinking its capacity — the mutation pattern the
     capacity cache must track through its dirty set. *)
  policy.Ftl.Policy.on_block_erased <-
    (fun ~block ->
      if Flash.Chip.pec chip ~block mod 3 = 0 then
        for page = 0 to pages - 1 do
          let i = page_index ~block ~page in
          if levels.(i) < 4 then levels.(i) <- levels.(i) + 1
        done);
  let rng = Sim.Rng.create 73 in
  let cross_check step =
    let brute_total = ref 0 in
    let brute_free = ref 0 in
    for block = 0 to blocks - 1 do
      (match Ftl.Engine.block_class engine block with
      | Ftl.Engine.Retired -> ()
      | _ ->
          for page = 0 to pages - 1 do
            brute_total := !brute_total + policy.Ftl.Policy.data_slots ~block ~page
          done);
      if Ftl.Engine.block_class engine block = Ftl.Engine.Free then
        incr brute_free
    done;
    checki
      (Printf.sprintf "total_data_slots matches brute force at step %d" step)
      !brute_total
      (Ftl.Engine.total_data_slots engine);
    checki
      (Printf.sprintf "free_blocks matches classes at step %d" step)
      !brute_free
      (Ftl.Engine.free_blocks engine)
  in
  for step = 1 to 3000 do
    let lba = Sim.Rng.int rng 300 in
    (match Ftl.Engine.write engine ~logical:lba ~payload:step with
    | Ok () -> ()
    | Error `No_space -> ());
    if step mod 7 = 0 then
      Ftl.Engine.discard engine ~logical:(Sim.Rng.int rng 300);
    if step mod 200 = 0 then cross_check step
  done;
  cross_check 3001

let make_engine ?(seed = 1) ?(logical = 256) ?(model = gentle_model) () =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model ()
  in
  let policy = Ftl.Policy.always_fresh ~opages_per_fpage:4 in
  Ftl.Engine.create ~chip ~rng:(Sim.Rng.create (seed + 1)) ~policy
    ~logical_capacity:logical ()

let test_engine_read_your_writes () =
  let engine = make_engine () in
  for logical = 0 to 99 do
    match Ftl.Engine.write engine ~logical ~payload:(logical * 3) with
    | Ok () -> ()
    | Error `No_space -> Alcotest.fail "unexpected no space"
  done;
  for logical = 0 to 99 do
    match Ftl.Engine.read engine ~logical with
    | Ok payload -> checki "payload" (logical * 3) payload
    | Error _ -> Alcotest.fail "read failed"
  done

let test_engine_unmapped_read () =
  let engine = make_engine () in
  (match Ftl.Engine.read engine ~logical:5 with
  | Error `Unmapped -> ()
  | _ -> Alcotest.fail "expected unmapped");
  Alcotest.check_raises "out of range"
    (Invalid_argument "Engine.read: logical index out of range") (fun () ->
      ignore (Ftl.Engine.read engine ~logical:9999))

let test_engine_overwrite () =
  let engine = make_engine () in
  for round = 1 to 5 do
    for logical = 0 to 49 do
      match Ftl.Engine.write engine ~logical ~payload:((round * 1000) + logical) with
      | Ok () -> ()
      | Error `No_space -> Alcotest.fail "no space"
    done
  done;
  for logical = 0 to 49 do
    match Ftl.Engine.read engine ~logical with
    | Ok payload -> checki "latest round" (5000 + logical) payload
    | Error _ -> Alcotest.fail "read failed"
  done

let test_engine_gc_sustains_overwrites () =
  (* 512 physical slots, 256 logical: heavy overwriting forces many GC
     cycles; data must survive all of them. *)
  let engine = make_engine ~logical:256 () in
  let rng = Sim.Rng.create 77 in
  let shadow = Hashtbl.create 256 in
  for i = 1 to 20_000 do
    let logical = Sim.Rng.int rng 256 in
    (match Ftl.Engine.write engine ~logical ~payload:i with
    | Ok () -> Hashtbl.replace shadow logical i
    | Error `No_space -> Alcotest.fail "no space under 50% utilization");
    ()
  done;
  checkb "GC actually ran" true (Ftl.Engine.gc_runs engine > 0);
  Hashtbl.iter
    (fun logical expected ->
      match Ftl.Engine.read engine ~logical with
      | Ok payload ->
          checki (Printf.sprintf "logical %d" logical) expected payload
      | Error _ -> Alcotest.fail "read failed after GC")
    shadow;
  checkb "write amplification sane" true
    (Ftl.Engine.write_amplification engine >= 0.9)

let test_engine_no_space_when_full () =
  (* Logical space equals physical: after filling everything and
     overwriting, GC cannot reclaim and the engine must say so. *)
  let engine = make_engine ~logical:512 () in
  let result = ref (Ok ()) in
  (try
     for round = 0 to 3 do
       for logical = 0 to 511 do
         match Ftl.Engine.write engine ~logical ~payload:round with
         | Ok () -> ()
         | Error `No_space ->
             result := Error `No_space;
             raise Exit
       done
     done
   with Exit -> ());
  checkb "eventually out of space" true (!result = Error `No_space)

let test_engine_discard_frees_space () =
  let engine = make_engine ~logical:512 () in
  for logical = 0 to 400 do
    match Ftl.Engine.write engine ~logical ~payload:1 with
    | Ok () -> ()
    | Error `No_space -> Alcotest.fail "filling failed"
  done;
  for logical = 0 to 400 do
    Ftl.Engine.discard engine ~logical
  done;
  checkb "discarded unmapped" true
    (Ftl.Engine.read engine ~logical:100 = Error `Unmapped);
  (* All space is reclaimable now; writes keep succeeding. *)
  for logical = 0 to 400 do
    match Ftl.Engine.write engine ~logical ~payload:2 with
    | Ok () -> ()
    | Error `No_space -> Alcotest.fail "space not reclaimed after discard"
  done

let test_engine_flush_makes_buffer_durable () =
  let engine = make_engine () in
  (match Ftl.Engine.write engine ~logical:0 ~payload:42 with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "no space");
  checkb "pending in buffer" true (Ftl.Engine.buffered_opages engine > 0);
  (match Ftl.Engine.flush engine with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "flush failed");
  checki "buffer drained" 0 (Ftl.Engine.buffered_opages engine);
  checkb "mapped to flash" true (Ftl.Engine.mapped_opages engine > 0)

let test_engine_relocate_page () =
  let engine = make_engine () in
  for logical = 0 to 7 do
    ignore (Ftl.Engine.write engine ~logical ~payload:(100 + logical))
  done;
  (match Ftl.Engine.flush engine with Ok () -> () | Error _ -> ());
  (* Find a live location and relocate its whole page. *)
  match Ftl.Engine.live_entries engine with
  | [] -> Alcotest.fail "nothing mapped"
  | (logical, { Ftl.Location.block; page; _ }) :: _ ->
      Ftl.Engine.relocate_page engine ~block ~page;
      (* Data still readable (from buffer), and after a flush it lives
         elsewhere. *)
      (match Ftl.Engine.read engine ~logical with
      | Ok payload -> checki "payload preserved" (100 + logical) payload
      | Error _ -> Alcotest.fail "read after relocate");
      (match Ftl.Engine.flush engine with Ok () -> () | Error _ -> ());
      (match List.assoc_opt logical (Ftl.Engine.live_entries engine) with
      | Some new_loc ->
          checkb "moved off the page" true
            (not (new_loc.Ftl.Location.block = block && new_loc.Ftl.Location.page = page))
      | None -> Alcotest.fail "mapping lost after relocation")

let test_engine_mapped_in_range () =
  let engine = make_engine () in
  for logical = 10 to 19 do
    ignore (Ftl.Engine.write engine ~logical ~payload:0)
  done;
  checki "range count includes buffered" 10
    (Ftl.Engine.mapped_in_range engine ~lo:10 ~len:10);
  checki "empty range" 0 (Ftl.Engine.mapped_in_range engine ~lo:100 ~len:10)

let test_engine_read_reclaim () =
  (* A model with strong read disturb and a policy that reclaims at a
     fixed threshold: hammering reads on one oPage must eventually move
     its page's data elsewhere, without corrupting it. *)
  let disturb_model =
    Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000
      ~read_disturb_per_read:1e-5 ()
  in
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create 31) ~geometry ~model:disturb_model ()
  in
  let policy =
    {
      (Ftl.Policy.always_fresh ~opages_per_fpage:4) with
      Ftl.Policy.should_reclaim = (fun ~rber ~block:_ ~page:_ -> rber > 2e-3);
    }
  in
  let engine =
    Ftl.Engine.create ~chip ~rng:(Sim.Rng.create 32) ~policy
      ~logical_capacity:64 ()
  in
  for logical = 0 to 7 do
    ignore (Ftl.Engine.write engine ~logical ~payload:(500 + logical))
  done;
  (match Ftl.Engine.flush engine with Ok () -> () | Error _ -> ());
  let original = Option.get (Ftl.Engine.locate engine ~logical:0) in
  let moved = ref false in
  let i = ref 0 in
  while (not !moved) && !i < 2_000 do
    incr i;
    (match Ftl.Engine.read engine ~logical:0 with
    | Ok p -> checki "payload stable under reclaim" 500 p
    | Error _ -> Alcotest.fail "read failed");
    ignore (Ftl.Engine.flush engine);
    match Ftl.Engine.locate engine ~logical:0 with
    | Some loc when not (Ftl.Location.equal loc original) -> moved := true
    | _ -> ()
  done;
  checkb "reclaim moved the data" true !moved;
  checkb "reclaim counted" true (Ftl.Engine.read_reclaims engine > 0)

(* --- power-fail recovery --------------------------------------------------- *)

let test_crash_rebuild_preserves_data () =
  let engine = make_engine ~seed:51 ~logical:200 () in
  let shadow = Hashtbl.create 64 in
  let rng = Sim.Rng.create 52 in
  (* churn enough to force GC and overwrites *)
  for i = 1 to 5_000 do
    let logical = Sim.Rng.int rng 200 in
    match Ftl.Engine.write engine ~logical ~payload:i with
    | Ok () -> Hashtbl.replace shadow logical i
    | Error `No_space -> Alcotest.fail "no space"
  done;
  (* some trims, including of buffered entries *)
  for logical = 0 to 30 do
    Ftl.Engine.discard engine ~logical;
    Hashtbl.remove shadow logical
  done;
  let rebuilt = Ftl.Engine.crash_rebuild engine in
  Hashtbl.iter
    (fun logical expected ->
      match Ftl.Engine.read rebuilt ~logical with
      | Ok payload ->
          checki (Printf.sprintf "logical %d after crash" logical) expected
            payload
      | Error _ -> Alcotest.fail "read failed after crash")
    shadow;
  for logical = 0 to 30 do
    checkb "trim survived the crash" true
      (Ftl.Engine.read rebuilt ~logical = Error `Unmapped)
  done;
  (* the rebuilt engine keeps working: more writes and GC *)
  for i = 1 to 2_000 do
    let logical = Sim.Rng.int rng 200 in
    match Ftl.Engine.write rebuilt ~logical ~payload:(100_000 + i) with
    | Ok () -> Hashtbl.replace shadow logical (100_000 + i)
    | Error `No_space -> Alcotest.fail "no space after rebuild"
  done;
  Hashtbl.iter
    (fun logical expected ->
      match Ftl.Engine.read rebuilt ~logical with
      | Ok payload -> checki "post-rebuild write" expected payload
      | Error _ -> Alcotest.fail "read failed post rebuild")
    shadow

let test_crash_rebuild_trim_then_rewrite () =
  let engine = make_engine ~seed:53 () in
  ignore (Ftl.Engine.write engine ~logical:7 ~payload:1);
  (match Ftl.Engine.flush engine with Ok () -> () | Error _ -> ());
  Ftl.Engine.discard engine ~logical:7;
  ignore (Ftl.Engine.write engine ~logical:7 ~payload:2);
  (match Ftl.Engine.flush engine with Ok () -> () | Error _ -> ());
  let rebuilt = Ftl.Engine.crash_rebuild engine in
  (* the rewrite postdates the trim: it must win *)
  checkb "rewrite after trim survives" true
    (Ftl.Engine.read rebuilt ~logical:7 = Ok 2)

(* Property: crash at an arbitrary point in a random workload loses no
   acknowledged data and resurrects no trimmed LBA. *)
let prop_crash_rebuild =
  QCheck.Test.make ~count:25 ~name:"crash rebuild equals pre-crash state"
    QCheck.(pair small_int (list (pair (int_range 0 99) (int_range 0 3))))
    (fun (seed, ops) ->
      let engine = make_engine ~seed:(seed + 60) ~logical:100 () in
      let shadow = Hashtbl.create 32 in
      List.iteri
        (fun i (logical, op) ->
          if op = 3 then begin
            Ftl.Engine.discard engine ~logical;
            Hashtbl.remove shadow logical
          end
          else
            match Ftl.Engine.write engine ~logical ~payload:i with
            | Ok () -> Hashtbl.replace shadow logical i
            | Error `No_space -> ())
        ops;
      let rebuilt = Ftl.Engine.crash_rebuild engine in
      let ok = ref true in
      for logical = 0 to 99 do
        let expected = Hashtbl.find_opt shadow logical in
        let got =
          match Ftl.Engine.read rebuilt ~logical with
          | Ok payload -> Some payload
          | Error _ -> None
        in
        if expected <> got then ok := false
      done;
      !ok)

(* Property: random mixed workloads never lose acknowledged data. *)
let prop_engine_read_your_writes =
  QCheck.Test.make ~count:30 ~name:"engine read-your-writes under random ops"
    QCheck.(pair small_int (list (pair (int_range 0 199) (int_range 0 2))))
    (fun (seed, ops) ->
      let engine = make_engine ~seed:(seed + 2) ~logical:200 () in
      let shadow = Hashtbl.create 64 in
      let ok = ref true in
      List.iteri
        (fun i (logical, op) ->
          match op with
          | 0 | 1 -> (
              match Ftl.Engine.write engine ~logical ~payload:i with
              | Ok () -> Hashtbl.replace shadow logical i
              | Error `No_space -> ())
          | _ ->
              Ftl.Engine.discard engine ~logical;
              Hashtbl.remove shadow logical)
        ops;
      Hashtbl.iter
        (fun logical expected ->
          match Ftl.Engine.read engine ~logical with
          | Ok payload -> if payload <> expected then ok := false
          | Error _ -> ok := false)
        shadow;
      (* And everything not written reads unmapped. *)
      for logical = 0 to 199 do
        if not (Hashtbl.mem shadow logical) then
          match Ftl.Engine.read engine ~logical with
          | Error `Unmapped -> ()
          | _ -> ok := false
      done;
      !ok)

(* --- Baseline SSD --------------------------------------------------------- *)

let age_device_until_death ?(max_writes = 3_000_000) device write_fraction =
  (* Random overwrites across [write_fraction] of the capacity until the
     device dies; returns total accepted host writes. *)
  let rng = Sim.Rng.create 1234 in
  let writes = ref 0 in
  (try
     while !writes < max_writes do
       if not (Ftl.Device_intf.alive device) then raise Exit;
       let capacity = Ftl.Device_intf.logical_capacity device in
       let window =
         Stdlib.max 1
           (int_of_float (float_of_int capacity *. write_fraction))
       in
       let lba = Sim.Rng.int rng window in
       (match Ftl.Device_intf.write device ~lba ~payload:!writes with
       | Ok () -> incr writes
       | Error `Dead | Error `No_space -> raise Exit
       | Error `Out_of_range -> ())
     done
   with Exit -> ());
  !writes

let test_baseline_ages_and_bricks () =
  let rng = Sim.Rng.create 9 in
  let device =
    Ftl.Baseline_ssd.create ~geometry ~model:fast_model ~rng ()
  in
  let packed =
    Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), device)
  in
  let writes = age_device_until_death packed 0.9 in
  checkb "died of wear" true (not (Ftl.Baseline_ssd.alive device));
  checkb "survived a meaningful life" true (writes > 1000);
  checkb "bad blocks at or beyond threshold" true
    (Ftl.Baseline_ssd.bad_block_fraction device >= 0.025);
  (* Read-only after death: reads still work. *)
  let readable = ref false in
  for lba = 0 to Ftl.Baseline_ssd.initial_capacity device - 1 do
    if not !readable then
      match Ftl.Baseline_ssd.read device ~lba with
      | Ok _ -> readable := true
      | Error _ -> ()
  done;
  checkb "still readable after brick" true !readable

let test_baseline_capacity_constant_until_death () =
  let rng = Sim.Rng.create 10 in
  let device = Ftl.Baseline_ssd.create ~geometry ~model:fast_model ~rng () in
  let initial = Ftl.Baseline_ssd.logical_capacity device in
  checki "93% of physical" (int_of_float (512. *. 0.93)) initial;
  let packed = Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), device) in
  ignore (age_device_until_death packed 0.9);
  checki "capacity drops to zero at death" 0
    (Ftl.Baseline_ssd.logical_capacity device)

(* --- CVSS ------------------------------------------------------------------ *)

let test_cvss_shrinks_then_dies () =
  let rng = Sim.Rng.create 11 in
  let device = Ftl.Cvss.create ~geometry ~model:fast_model ~rng () in
  let packed = Ftl.Device_intf.Packed ((module Ftl.Cvss), device) in
  let writes = age_device_until_death packed 0.45 in
  checkb "eventually dies" true (not (Ftl.Cvss.alive device));
  checkb "shrank before dying" true (Ftl.Cvss.retired_blocks device > 0);
  checkb "shrunk opages recorded" true (Ftl.Cvss.shrunk_opages device >= 0);
  checkb "lived" true (writes > 1000);
  (* Died by the min-capacity rule: capacity fell below half. *)
  checkb "capacity below floor at death" true
    (Ftl.Cvss.logical_capacity device = 0)

let test_cvss_outlives_baseline () =
  (* Same flash physics, same write stream: CVSS should absorb more total
     writes than the baseline because it keeps going after the baseline's
     2.5% threshold. *)
  let make_baseline seed =
    let rng = Sim.Rng.create seed in
    let d = Ftl.Baseline_ssd.create ~geometry ~model:fast_model ~rng () in
    Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)
  in
  let make_cvss seed =
    let rng = Sim.Rng.create seed in
    let d = Ftl.Cvss.create ~geometry ~model:fast_model ~rng () in
    Ftl.Device_intf.Packed ((module Ftl.Cvss), d)
  in
  let lifetime make =
    let total = ref 0 in
    List.iter
      (fun seed -> total := !total + age_device_until_death (make seed) 0.45)
      [ 21; 22; 23 ];
    !total
  in
  let baseline_life = lifetime make_baseline in
  let cvss_life = lifetime make_cvss in
  checkb
    (Printf.sprintf "cvss %d > baseline %d writes" cvss_life baseline_life)
    true (cvss_life > baseline_life)

(* --- Read-retry ladder ---------------------------------------------------- *)

let make_ladder_engine ?(config = Ftl.Engine.default_config) ~read_fail_prob
    seed =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model:gentle_model
      ()
  in
  let policy =
    { (Ftl.Policy.always_fresh ~opages_per_fpage:4) with
      Ftl.Policy.read_fail_prob = read_fail_prob }
  in
  Ftl.Engine.create ~config ~chip
    ~rng:(Sim.Rng.create (seed + 1))
    ~policy ~logical_capacity:64 ()

let test_retry_ladder_bounded () =
  (* A permanently failing page walks exactly [read_retries] rungs, and
     only then surfaces `Uncorrectable`. *)
  List.iter
    (fun retries ->
      let config = { Ftl.Engine.default_config with read_retries = retries } in
      let engine =
        make_ladder_engine ~config
          ~read_fail_prob:(fun ~rber:_ ~block:_ ~page:_ -> 1.)
          80
      in
      (match Ftl.Engine.write engine ~logical:0 ~payload:1 with
      | Ok () -> ()
      | Error `No_space -> Alcotest.fail "no space");
      ignore (Ftl.Engine.flush engine);
      (match Ftl.Engine.read engine ~logical:0 with
      | Error `Uncorrectable -> ()
      | Ok _ -> Alcotest.fail "read should have failed"
      | Error `Unmapped -> Alcotest.fail "mapping lost");
      checki
        (Printf.sprintf "exactly %d rungs walked" retries)
        retries
        (Ftl.Engine.read_retries engine);
      checki "no phantom successes" 0 (Ftl.Engine.retry_successes engine))
    [ 0; 3; 7 ]

let test_retry_ladder_absorbs_transient () =
  (* Fail only while the sensed RBER carries an injected transient spike:
     rung 0 consumes the spike, so one retry recovers the payload. *)
  let engine =
    make_ladder_engine
      ~read_fail_prob:(fun ~rber ~block:_ ~page:_ ->
        if rber > 0.5 then 1. else 0.)
      81
  in
  (match Ftl.Engine.write engine ~logical:7 ~payload:42 with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "no space");
  ignore (Ftl.Engine.flush engine);
  let chip = Ftl.Engine.chip engine in
  let g = Flash.Chip.geometry chip in
  for block = 0 to g.Flash.Geometry.blocks - 1 do
    for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
      Flash.Chip.inject chip ~block ~page (Flash.Chip.Transient_rber 1.)
    done
  done;
  (match Ftl.Engine.read engine ~logical:7 with
  | Ok payload -> checki "payload recovered" 42 payload
  | Error _ -> Alcotest.fail "ladder failed to absorb the spike");
  checki "one retry" 1 (Ftl.Engine.read_retries engine);
  checki "one rescue" 1 (Ftl.Engine.retry_successes engine)

let test_retry_ladder_deterministic () =
  let run () =
    let engine =
      make_ladder_engine
        ~read_fail_prob:(fun ~rber:_ ~block:_ ~page:_ -> 0.3)
        83
    in
    for logical = 0 to 49 do
      ignore (Ftl.Engine.write engine ~logical ~payload:logical)
    done;
    ignore (Ftl.Engine.flush engine);
    let results =
      List.init 200 (fun i -> Ftl.Engine.read engine ~logical:(i mod 50))
    in
    (results, Ftl.Engine.read_retries engine,
     Ftl.Engine.retry_successes engine)
  in
  let r1, n1, s1 = run () in
  let r2, n2, s2 = run () in
  checkb "same read outcomes" true (r1 = r2);
  checki "same retry count" n1 n2;
  checki "same rescue count" s1 s2;
  checkb "ladder actually exercised" true (n1 > 0 && s1 > 0)

(* --- Read-recovery escalation ---------------------------------------------- *)

(* An engine whose every flash read fails ECC: the only way a read
   returns data is through the recovery hook. *)
let make_failing_engine ?(seed = 700) ?config () =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model:gentle_model
      ()
  in
  let policy =
    {
      (Ftl.Policy.always_fresh ~opages_per_fpage:4) with
      Ftl.Policy.read_fail_prob = (fun ~rber:_ ~block:_ ~page:_ -> 1.);
    }
  in
  Ftl.Engine.create ?config ~chip
    ~rng:(Sim.Rng.create (seed + 1))
    ~policy ~logical_capacity:64 ()

let prop_zero_retries_escalates_immediately =
  QCheck.Test.make ~count:30
    ~name:"read_retries=0 disables the ladder: first ECC failure escalates"
    QCheck.(pair small_int (list (int_range 0 49)))
    (fun (seed, lbas) ->
      let config = { Ftl.Engine.default_config with read_retries = 0 } in
      let rescued = make_failing_engine ~seed:(seed + 700) ~config () in
      Ftl.Engine.set_recovery_hook rescued
        (Some (fun ~logical -> Some (logical * 31)));
      let bare = make_failing_engine ~seed:(seed + 700) ~config () in
      List.iter
        (fun lba ->
          match
            ( Ftl.Engine.write rescued ~logical:lba ~payload:lba,
              Ftl.Engine.write bare ~logical:lba ~payload:lba )
          with
          | Ok (), Ok () -> ()
          | _ -> QCheck.Test.fail_report "write failed")
        lbas;
      ignore (Ftl.Engine.flush rescued);
      ignore (Ftl.Engine.flush bare);
      List.iter
        (fun lba ->
          (match Ftl.Engine.read rescued ~logical:lba with
          | Ok v when v = lba * 31 -> ()
          | _ -> QCheck.Test.fail_report "hooked read not rescued");
          match Ftl.Engine.read bare ~logical:lba with
          | Error `Uncorrectable -> ()
          | _ -> QCheck.Test.fail_report "bare read should be uncorrectable")
        lbas;
      let reads = List.length lbas in
      (* The ladder never ran: no retry counters moved on either engine,
         and every failed read escalated exactly once (first hook attempt
         rescues, resetting the backoff each time). *)
      Ftl.Engine.read_retries rescued = 0
      && Ftl.Engine.retry_successes rescued = 0
      && Ftl.Engine.read_retries bare = 0
      && Ftl.Engine.read_escalations rescued = reads
      && Ftl.Engine.escalation_successes rescued = reads
      && Ftl.Engine.escalations_suppressed rescued = 0
      && Ftl.Engine.read_escalations bare = 0)

let test_escalation_backoff_budget () =
  let engine =
    make_failing_engine
      ~config:{ Ftl.Engine.default_config with read_retries = 0 }
      ()
  in
  let hook_ok = ref false in
  Ftl.Engine.set_recovery_hook engine
    ~config:
      { Ftl.Engine.recovery_attempts = 2; backoff_base = 4; backoff_cap = 8 }
    (Some (fun ~logical -> if !hook_ok then Some (logical + 100) else None));
  (match Ftl.Engine.write engine ~logical:3 ~payload:9 with
  | Ok () -> ()
  | Error `No_space -> Alcotest.fail "no space");
  ignore (Ftl.Engine.flush engine);
  let read () = Ftl.Engine.read engine ~logical:3 in
  (* Read clock 1: a burst of both attempts fails and opens a 4-read
     backoff window. *)
  (match read () with
  | Error `Uncorrectable -> ()
  | _ -> Alcotest.fail "expected uncorrectable");
  checki "first burst spends both attempts" 2
    (Ftl.Engine.read_escalations engine);
  checki "nothing suppressed yet" 0 (Ftl.Engine.escalations_suppressed engine);
  (* Clocks 2-4 land inside the window: suppressed, no hook calls. *)
  for _ = 1 to 3 do
    ignore (read ())
  done;
  checki "window suppresses escalation" 3
    (Ftl.Engine.escalations_suppressed engine);
  checki "no attempts inside the window" 2
    (Ftl.Engine.read_escalations engine);
  (* Clock 5 = retry_at: a fresh burst, and the window doubles (to the
     cap) — clocks 6..12 stay suppressed. *)
  ignore (read ());
  checki "second burst after backoff" 4 (Ftl.Engine.read_escalations engine);
  for _ = 1 to 7 do
    ignore (read ())
  done;
  checki "doubled window suppresses" 10
    (Ftl.Engine.escalations_suppressed engine);
  (* Clock 13: the hook now answers — success resets the budget, so the
     next failure escalates immediately instead of waiting. *)
  hook_ok := true;
  (match read () with
  | Ok v -> checki "rescued payload" 103 v
  | Error _ -> Alcotest.fail "expected rescue");
  checki "success counted" 1 (Ftl.Engine.escalation_successes engine);
  hook_ok := false;
  ignore (read ());
  checki "budget reset by success" 7 (Ftl.Engine.read_escalations engine);
  checki "no new suppression after reset" 10
    (Ftl.Engine.escalations_suppressed engine)

(* --- Adversarial crash timing --------------------------------------------- *)

let prop_crash_adversarial_timing =
  QCheck.Test.make ~count:30
    ~name:"crashes at every site never lose acked writes or resurrect trims"
    QCheck.(
      triple small_int (int_range 1 6)
        (list (pair (int_range 0 49) (int_range 0 4))))
    (fun (seed, crash_period, ops) ->
      let engine = ref (make_engine ~seed:(seed + 300) ~logical:50 ()) in
      (* Cut power at every [crash_period]-th crash site the engine
         crosses (the hook survives crash_rebuild, so cuts keep coming
         through recovery-heavy histories). *)
      let sites = ref 0 in
      Ftl.Engine.set_crash_hook !engine
        (Some
           (fun _site ->
             incr sites;
             if !sites mod crash_period = 0 then raise Ftl.Engine.Power_loss));
      let acked = Hashtbl.create 32 in
      let trimmed = Hashtbl.create 16 in
      let rebuild () = engine := Ftl.Engine.crash_rebuild !engine in
      List.iteri
        (fun i (logical, op) ->
          if op = 4 then begin
            (try Ftl.Engine.discard !engine ~logical
             with Ftl.Engine.Power_loss -> rebuild ());
            Hashtbl.remove acked logical;
            Hashtbl.replace trimmed logical ()
          end
          else
            let payload = i + 1 in
            match Ftl.Engine.write !engine ~logical ~payload with
            | Ok () ->
                Hashtbl.replace acked logical payload;
                Hashtbl.remove trimmed logical;
                (* also crash right on the ack boundary sometimes *)
                if op = 3 then rebuild ()
            | Error `No_space -> ()
            | exception Ftl.Engine.Power_loss ->
                rebuild ();
                Faults.Verdict.reconcile_torn_write ~engine:!engine ~acked
                  ~trimmed ~logical ~payload)
        ops;
      Faults.Verdict.all_ok
        (Faults.Verdict.check_engine ~engine:!engine ~acked ~trimmed))

let suite =
  let qc = QCheck_alcotest.to_alcotest in
  [
    ("mapping bind/find", `Quick, test_mapping_bind_find);
    ("mapping rebind invalidates", `Quick, test_mapping_rebind_invalidates_old);
    ("mapping slot stealing", `Quick, test_mapping_slot_stealing);
    ("mapping unbind", `Quick, test_mapping_unbind);
    qc prop_mapping_consistency;
    ("buffer dedupe", `Quick, test_buffer_dedupe);
    ("buffer pop order", `Quick, test_buffer_pop_order);
    ("buffer drop then rewrite", `Quick, test_buffer_drop_then_rewrite);
    ("blockset ascending iteration", `Quick, test_blockset_ascending);
    ("intheap sorted pops", `Quick, test_intheap_sorted_pops);
    ("incremental accounting brute force", `Slow,
     test_incremental_accounting_matches_brute_force);
    ("engine read-your-writes", `Quick, test_engine_read_your_writes);
    ("engine unmapped read", `Quick, test_engine_unmapped_read);
    ("engine overwrite", `Quick, test_engine_overwrite);
    ("engine GC sustains overwrites", `Slow, test_engine_gc_sustains_overwrites);
    ("engine no space when full", `Quick, test_engine_no_space_when_full);
    ("engine discard frees space", `Quick, test_engine_discard_frees_space);
    ("engine flush durability", `Quick, test_engine_flush_makes_buffer_durable);
    ("engine relocate page", `Quick, test_engine_relocate_page);
    ("engine mapped_in_range", `Quick, test_engine_mapped_in_range);
    ("engine read reclaim", `Quick, test_engine_read_reclaim);
    ("crash rebuild preserves data", `Quick, test_crash_rebuild_preserves_data);
    ("crash rebuild trim then rewrite", `Quick,
     test_crash_rebuild_trim_then_rewrite);
    qc prop_crash_rebuild;
    qc prop_engine_read_your_writes;
    ("retry ladder bounded", `Quick, test_retry_ladder_bounded);
    ("retry ladder absorbs transient", `Quick,
     test_retry_ladder_absorbs_transient);
    ("retry ladder deterministic", `Quick, test_retry_ladder_deterministic);
    qc prop_zero_retries_escalates_immediately;
    ("escalation backoff budget", `Quick, test_escalation_backoff_budget);
    qc prop_crash_adversarial_timing;
    ("baseline ages and bricks", `Slow, test_baseline_ages_and_bricks);
    ("baseline capacity until death", `Slow,
     test_baseline_capacity_constant_until_death);
    ("cvss shrinks then dies", `Slow, test_cvss_shrinks_then_dies);
    ("cvss outlives baseline", `Slow, test_cvss_outlives_baseline);
  ]
