(* Tests for the traffic library: the log-spaced latency histogram, QoS
   token buckets, the multi-tenant generator, the replayer, and the
   batched Engine submission path the replayer's cost model assumes. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Experiments.Defaults.geometry

let gentle_model =
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()

(* --- latency histogram --------------------------------------------------- *)

let test_lathist_exact_stats () =
  let h = Traffic.Lathist.create () in
  List.iter (Traffic.Lathist.observe h) [ 10.; 100.; 1000.; 10_000. ];
  checki "count" 4 (Traffic.Lathist.count h);
  checkb "sum exact" true (Traffic.Lathist.sum h = 11_110.);
  checkb "min exact" true (Traffic.Lathist.min h = 10.);
  checkb "max exact" true (Traffic.Lathist.max h = 10_000.);
  (* Percentiles are bucket representatives: ~10% relative resolution. *)
  let p50 = Traffic.Lathist.percentile h 0.5 in
  checkb "p50 within bucket resolution of 100us" true
    (Float.abs (p50 -. 100.) /. 100. < 0.12)

let test_lathist_percentiles_monotone () =
  let h = Traffic.Lathist.create () in
  for i = 1 to 500 do
    Traffic.Lathist.observe h (float_of_int (i * i))
  done;
  let p q = Traffic.Lathist.percentile h q in
  checkb "p50 <= p95" true (p 0.5 <= p 0.95);
  checkb "p95 <= p99" true (p 0.95 <= p 0.99);
  checkb "p99 <= p999" true (p 0.99 <= p 0.999);
  checkb "p999 <= max" true (p 0.999 <= Traffic.Lathist.max h)

let test_lathist_empty_and_overflow () =
  let h = Traffic.Lathist.create () in
  checkb "empty percentile is nan" true
    (Float.is_nan (Traffic.Lathist.percentile h 0.5));
  checkb "empty mean is nan" true (Float.is_nan (Traffic.Lathist.mean h));
  let rendered = Format.asprintf "%a" Traffic.Lathist.pp_row h in
  checkb "empty row renders dashes" true (String.contains rendered '-');
  (* Beyond the bucketed decades everything lands in the overflow bucket,
     whose representative is the exact observed max. *)
  Traffic.Lathist.observe h 1e12;
  checkb "overflow p999 = max" true
    (Traffic.Lathist.percentile h 0.999 = 1e12)

let prop_lathist_merge =
  QCheck.Test.make ~count:100 ~name:"lathist merge = combined observations"
    QCheck.(
      pair
        (list (float_bound_exclusive 1e8))
        (list (float_bound_exclusive 1e8)))
    (fun (xs, ys) ->
      let observe_all h vs = List.iter (Traffic.Lathist.observe h) vs in
      let merged = Traffic.Lathist.create ()
      and src = Traffic.Lathist.create ()
      and combined = Traffic.Lathist.create () in
      observe_all merged xs;
      observe_all src ys;
      Traffic.Lathist.merge ~into:merged src;
      observe_all combined (xs @ ys);
      Traffic.Lathist.count merged = Traffic.Lathist.count combined
      && compare (Traffic.Lathist.min merged) (Traffic.Lathist.min combined) = 0
      && compare (Traffic.Lathist.max merged) (Traffic.Lathist.max combined) = 0
      && Float.abs (Traffic.Lathist.sum merged -. Traffic.Lathist.sum combined)
         <= 1e-6 *. Float.abs (Traffic.Lathist.sum combined)
      && List.for_all
           (fun q ->
             compare
               (Traffic.Lathist.percentile merged q)
               (Traffic.Lathist.percentile combined q)
             = 0)
           [ 0.5; 0.9; 0.99; 0.999 ])

(* --- tail attribution ------------------------------------------------------ *)

let test_lathist_attribution () =
  let h = Traffic.Lathist.create () in
  (* 900 fast untagged ops, then a tagged tail: 90 at ~10ms paying for
     gc (bit 0), 10 at ~100ms paying for retry (bit 2), one of them
     also throttled (bit 5). *)
  for _ = 1 to 900 do
    Traffic.Lathist.observe h 100.
  done;
  for i = 1 to 90 do
    Traffic.Lathist.observe_tagged h (10_000. +. float_of_int i) ~tags:1
  done;
  for i = 1 to 9 do
    Traffic.Lathist.observe_tagged h (100_000. +. float_of_int i) ~tags:4
  done;
  Traffic.Lathist.observe_tagged h 100_500. ~tags:(4 lor 32);
  checki "count includes tagged ops" 1000 (Traffic.Lathist.count h);
  (* The p995 tail is the 100ms population: retry dominates there. *)
  let totals = Traffic.Lathist.tag_totals_above h 0.995 in
  checki "tag array spans the declared width" Traffic.Lathist.tags_width
    (Array.length totals);
  checkb "retry dominates the p995 tail" true (totals.(2) >= 10);
  checki "gc absent from the p995 tail" 0 totals.(0);
  checkb "tail population covers the tagged tail" true
    (Traffic.Lathist.count_above h 0.995 >= 10);
  (* Exemplar: the single worst tagged op, carrying both its bits. *)
  (match Traffic.Lathist.exemplar_above h 0.995 with
  | Some (lat, tags) ->
      checkb "exemplar is the worst tagged op" true (lat = 100_500.);
      checki "exemplar keeps its full tag set" (4 lor 32) tags
  | None -> Alcotest.fail "expected a tagged exemplar in the tail");
  (* Lower in the distribution, gc shows up. *)
  let totals50 = Traffic.Lathist.tag_totals_above h 0.5 in
  checkb "gc visible above the median" true (totals50.(0) = 90);
  (* Tags out of range are masked off, not an error. *)
  Traffic.Lathist.observe_tagged h 1. ~tags:(1 lsl Traffic.Lathist.tags_width);
  checki "masked tags degrade to untagged" 1001 (Traffic.Lathist.count h)

let test_lathist_attribution_merge () =
  (* Chunked cells each tag their own tail; the merged histogram must
     agree with single-cell recording: counts add, the exemplar is the
     global strict max (ties keep the first/into's — submission
     order). *)
  let record h base tags =
    Traffic.Lathist.observe h 10.;
    Traffic.Lathist.observe_tagged h base ~tags
  in
  let a = Traffic.Lathist.create () and b = Traffic.Lathist.create () in
  record a 50_000. 1;
  record b 60_000. 2;
  let c = Traffic.Lathist.create () in
  (* An untagged chunk merged first: attribution tables must appear on
     demand when the first tagged source arrives. *)
  Traffic.Lathist.observe c 10.;
  Traffic.Lathist.merge ~into:c a;
  Traffic.Lathist.merge ~into:c b;
  let combined = Traffic.Lathist.create () in
  Traffic.Lathist.observe combined 10.;
  record combined 50_000. 1;
  record combined 60_000. 2;
  checki "merged count" (Traffic.Lathist.count combined)
    (Traffic.Lathist.count c);
  let tm = Traffic.Lathist.tag_totals_above c 0.9
  and ts = Traffic.Lathist.tag_totals_above combined 0.9 in
  Alcotest.(check (list int))
    "merged tag totals equal sequential"
    (Array.to_list ts) (Array.to_list tm);
  checkb "merged exemplar equals sequential" true
    (Traffic.Lathist.exemplar_above c 0.9
    = Traffic.Lathist.exemplar_above combined 0.9);
  (match Traffic.Lathist.exemplar_above c 0.9 with
  | Some (lat, tags) -> checkb "global max wins" true (lat = 60_000. && tags = 2)
  | None -> Alcotest.fail "expected an exemplar after merge")

(* --- QoS ------------------------------------------------------------------ *)

let test_qos_bucket () =
  let qos =
    Traffic.Qos.create
      { Traffic.Qos.bandwidth_ops_per_s = 1_000_000.; burst_ops = 4. }
      ~weights:[| 1.; 3. |]
  in
  checkb "rates split by weight" true
    (Float.abs
       ((Traffic.Qos.rate qos ~tenant:1 /. Traffic.Qos.rate qos ~tenant:0)
       -. 3.)
    < 1e-9);
  (* The bucket starts full: the whole burst admits at t=0, then the
     next op must wait one refill interval (1/rate = 4us for tenant 0). *)
  for i = 1 to 4 do
    checkb
      (Printf.sprintf "burst admit %d" i)
      true
      (Traffic.Qos.admit qos ~tenant:0 ~now_us:0. = `Ok)
  done;
  match Traffic.Qos.admit qos ~tenant:0 ~now_us:0. with
  | `Ok -> Alcotest.fail "empty bucket admitted"
  | `Delay d ->
      checkb "delay is one refill interval" true
        (d > 0. && Float.abs (d -. 4.) < 0.5);
      checkb "admitted after waiting" true
        (Traffic.Qos.admit qos ~tenant:0 ~now_us:(d *. 1.001) = `Ok)

let test_qos_rejects_bad_config () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Qos.create: weights must be positive") (fun () ->
      ignore
        (Traffic.Qos.create Traffic.Qos.default_config ~weights:[| 1.; 0. |]))

(* --- generator ------------------------------------------------------------ *)

(* Window must cover the widest default footprint (batch: 1024 LBAs) so
   every generated LBA stays inside it. *)
let small_spec =
  {
    Traffic.Gen.default_spec with
    Traffic.Gen.tenants = 32;
    ops = 2_000;
    window = 2_048;
  }

let test_gen_deterministic_and_bounded () =
  let t1 = Traffic.Gen.generate small_spec ~seed:9 in
  let t2 = Traffic.Gen.generate small_spec ~seed:9 in
  checkb "same seed, same trace" true
    (Workload.Trace.to_string t1 = Workload.Trace.to_string t2);
  let t3 = Traffic.Gen.generate small_spec ~seed:10 in
  checkb "different seed, different trace" true
    (Workload.Trace.to_string t1 <> Workload.Trace.to_string t3);
  checki "exact op count" 2_000 (Workload.Trace.length t1);
  Workload.Trace.iter_events t1 (fun e ->
      checkb "tenant in range" true
        (e.Workload.Trace.tenant >= 0 && e.Workload.Trace.tenant < 32);
      let lba = e.Workload.Trace.access.Workload.Access.lba in
      checkb "lba inside window" true (lba >= 0 && lba < 2_048))

let test_gen_intensity_envelope () =
  let spec = small_spec in
  let lo = 1. -. spec.Traffic.Gen.diurnal_amplitude in
  for op = 0 to 2_000 do
    let v = Traffic.Gen.intensity spec ~op in
    checkb "intensity in [1-amp, 1]" true (v >= lo -. 1e-9 && v <= 1. +. 1e-9)
  done;
  checkb "peak at cycle start" true
    (Traffic.Gen.intensity spec ~op:0 > Traffic.Gen.intensity spec
                                          ~op:(spec.Traffic.Gen.diurnal_period / 2))

(* --- replayer ------------------------------------------------------------- *)

let make_baseline seed =
  let d =
    Ftl.Baseline_ssd.create ~geometry ~model:gentle_model
      ~rng:(Sim.Rng.create seed) ()
  in
  Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)

let test_replay_accounts_every_op () =
  let population = Traffic.Tenant.create ~tenants:32 () in
  let trace = Traffic.Gen.generate small_spec ~seed:9 in
  let device = make_baseline 21 in
  ignore (Ftl.Device_intf.write_many device (Array.init 2_048 (fun i -> (i, i))));
  let outcome =
    Traffic.Replay.run ~qos:Traffic.Qos.default_config
      ~intensity:(fun ~op -> Traffic.Gen.intensity small_spec ~op)
      ~population ~trace ~device ()
  in
  checki "completed the whole trace" 2_000 outcome.Traffic.Replay.completed;
  checki "issued = completed" outcome.Traffic.Replay.issued
    outcome.Traffic.Replay.completed;
  checkb "did not die" true (not outcome.Traffic.Replay.died);
  checki "histogram saw every op" 2_000
    (Traffic.Lathist.count outcome.Traffic.Replay.all);
  checki "prefilled window never misses" 0 outcome.Traffic.Replay.unmapped_reads;
  let ops, reads, _, _ =
    Traffic.Tenant.Accounts.totals outcome.Traffic.Replay.accounts
  in
  checki "accounts cover every op" 2_000 ops;
  checkb "some reads recorded" true (reads > 0);
  checkb "simulated time advanced" true (outcome.Traffic.Replay.end_us > 0.)

let test_replay_deterministic () =
  let run () =
    let population = Traffic.Tenant.create ~tenants:32 () in
    let trace = Traffic.Gen.generate small_spec ~seed:9 in
    let device = make_baseline 21 in
    let o =
      Traffic.Replay.run ~qos:Traffic.Qos.default_config ~population ~trace
        ~device ()
    in
    ( o.Traffic.Replay.end_us,
      o.Traffic.Replay.throttled_ops,
      Traffic.Lathist.sum o.Traffic.Replay.all,
      Traffic.Lathist.percentile o.Traffic.Replay.all 0.999 )
  in
  checkb "two identical runs agree exactly" true (run () = run ())

let test_replay_rejects_bad_config () =
  let population = Traffic.Tenant.create ~tenants:4 () in
  let trace = Workload.Trace.create () in
  let device = make_baseline 3 in
  Alcotest.check_raises "batch < 1"
    (Invalid_argument "Replay.run: batch must be >= 1") (fun () ->
      ignore
        (Traffic.Replay.run
           ~config:{ Traffic.Replay.default_config with Traffic.Replay.batch = 0 }
           ~population ~trace ~device ()))

(* --- batched submission --------------------------------------------------- *)

let make_engine seed =
  let chip =
    Flash.Chip.create ~rng:(Sim.Rng.create seed) ~geometry ~model:gentle_model
      ()
  in
  let policy =
    Ftl.Policy.always_fresh
      ~opages_per_fpage:geometry.Flash.Geometry.opages_per_fpage
  in
  let slots =
    geometry.Flash.Geometry.blocks * geometry.Flash.Geometry.pages_per_block
    * geometry.Flash.Geometry.opages_per_fpage
  in
  let logical = slots * 3 / 4 in
  ( Ftl.Engine.create ~chip ~rng:(Sim.Rng.create (seed + 1)) ~policy
      ~logical_capacity:logical (),
    logical )

let test_write_batch_matches_per_op () =
  (* Same op stream through Engine.write in a loop and through
     Engine.write_batch: identical logical state and host accounting. *)
  let per_op, logical = make_engine 31 in
  let batched, _ = make_engine 31 in
  for round = 0 to 19 do
    let entries =
      Array.init 64 (fun i ->
          (((round * 13) + (i * 7)) mod logical, (round * 100) + i))
    in
    Array.iter
      (fun (logical, payload) ->
        ignore (Ftl.Engine.write per_op ~logical ~payload))
      entries;
    checkb "batch accepted" true
      (Ftl.Engine.write_batch batched entries = Ok ())
  done;
  ignore (Ftl.Engine.flush per_op);
  ignore (Ftl.Engine.flush batched);
  checki "host_writes agree" (Ftl.Engine.host_writes per_op)
    (Ftl.Engine.host_writes batched);
  for lba = 0 to logical - 1 do
    checkb "logical state identical" true
      (Ftl.Engine.read per_op ~logical:lba = Ftl.Engine.read batched ~logical:lba)
  done

let test_write_batch_validates_range () =
  let engine, logical = make_engine 33 in
  checkb "out-of-range batch rejected before any write" true
    (match Ftl.Engine.write_batch engine [| (0, 1); (logical, 2) |] with
    | exception Invalid_argument _ -> true
    | _ -> false);
  checki "no entry of the rejected batch landed" 0
    (Ftl.Engine.host_writes engine)

(* --- experiment determinism and chaos tails ------------------------------- *)

let traffic_report pool =
  let registry = Telemetry.Registry.create () in
  let ctx = Experiments.Ctx.make ~registry ?pool () in
  let buf = Buffer.create 4096 in
  let fmt = Format.formatter_of_buffer buf in
  let rows = Experiments.Traffic_run.run ~ctx ~tenants:32 ~ops:8_000 fmt in
  Format.pp_print_flush fmt ();
  (Buffer.contents buf, rows)

let test_traffic_run_jobs_deterministic_and_chaos_degrades () =
  let seq_text, seq_rows = traffic_report None in
  let par_text, par_rows =
    Parallel.Pool.with_pool ~domains:4 (fun pool -> traffic_report (Some pool))
  in
  checkb "report byte-identical at jobs=1 and jobs=4" true
    (seq_text = par_text);
  checkb "rows identical at jobs=1 and jobs=4" true (seq_rows = par_rows);
  checkb "json identical" true
    (Experiments.Traffic_run.rows_to_json seq_rows
    = Experiments.Traffic_run.rows_to_json par_rows);
  (* The media fault plan must show up in the tail: every design's chaos
     cell has a p999 at least as bad as its fault-free twin, and the
     baseline (no scrub, no regeneration) measurably worse. *)
  let p999 label chaos =
    match
      List.find_opt
        (fun r ->
          r.Experiments.Traffic_run.label = label
          && r.Experiments.Traffic_run.chaos = chaos)
        seq_rows
    with
    | Some r -> r.Experiments.Traffic_run.p999
    | None -> Alcotest.fail (Printf.sprintf "missing row %s" label)
  in
  List.iter
    (fun label ->
      checkb
        (Printf.sprintf "%s chaos tail no better than clean" label)
        true
        (p999 label true >= p999 label false))
    [ "baseline"; "cvss"; "regens" ];
  checkb "baseline tail measurably degraded under faults" true
    (p999 "baseline" true > 1.2 *. p999 "baseline" false)

let suite =
  [
    ("lathist exact stats", `Quick, test_lathist_exact_stats);
    ("lathist percentiles monotone", `Quick, test_lathist_percentiles_monotone);
    ("lathist empty and overflow", `Quick, test_lathist_empty_and_overflow);
    QCheck_alcotest.to_alcotest prop_lathist_merge;
    ("lathist tail attribution", `Quick, test_lathist_attribution);
    ("lathist attribution merge", `Quick, test_lathist_attribution_merge);
    ("qos token bucket", `Quick, test_qos_bucket);
    ("qos rejects bad config", `Quick, test_qos_rejects_bad_config);
    ("gen deterministic and bounded", `Quick, test_gen_deterministic_and_bounded);
    ("gen intensity envelope", `Quick, test_gen_intensity_envelope);
    ("replay accounts every op", `Quick, test_replay_accounts_every_op);
    ("replay deterministic", `Quick, test_replay_deterministic);
    ("replay rejects bad config", `Quick, test_replay_rejects_bad_config);
    ("write_batch matches per-op", `Slow, test_write_batch_matches_per_op);
    ("write_batch validates range", `Quick, test_write_batch_validates_range);
    ( "traffic experiment deterministic across jobs; chaos degrades tails",
      `Slow,
      test_traffic_run_jobs_deterministic_and_chaos_degrades );
  ]
