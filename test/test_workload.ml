(* Tests for the workload library: pattern generators, trace capture and
   replay, and the aging drivers. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()

let gentle_model =
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()

let fast_model = Flash.Rber_model.calibrate ~target_rber:6e-3 ~target_pec:40 ()

(* --- patterns ----------------------------------------------------------- *)

let test_sequential_wraps () =
  let p = Workload.Pattern.sequential ~window:4 in
  let rng = Sim.Rng.create 1 in
  let lbas =
    List.init 9 (fun _ -> (Workload.Pattern.next p rng).Workload.Access.lba)
  in
  Alcotest.(check (list int)) "wraps" [ 0; 1; 2; 3; 0; 1; 2; 3; 0 ] lbas

let test_sequential_writes_only () =
  let p = Workload.Pattern.sequential ~window:10 in
  let rng = Sim.Rng.create 1 in
  for _ = 1 to 20 do
    checkb "write kind" true
      ((Workload.Pattern.next p rng).Workload.Access.kind = Workload.Access.Write)
  done

let test_uniform_bounds_and_mix () =
  let p = Workload.Pattern.uniform ~window:100 ~read_fraction:0.3 in
  let rng = Sim.Rng.create 2 in
  let reads = ref 0 in
  let total = 20_000 in
  for _ = 1 to total do
    let a = Workload.Pattern.next p rng in
    checkb "in window" true (a.Workload.Access.lba >= 0 && a.Workload.Access.lba < 100);
    if a.Workload.Access.kind = Workload.Access.Read then incr reads
  done;
  let fraction = float_of_int !reads /. float_of_int total in
  checkb "read mix near 0.3" true (Float.abs (fraction -. 0.3) < 0.02)

let test_zipf_skew_and_resize () =
  let p = Workload.Pattern.zipfian ~window:100 ~theta:1.0 ~read_fraction:0. in
  let rng = Sim.Rng.create 3 in
  let counts = Array.make 100 0 in
  for _ = 1 to 20_000 do
    let a = Workload.Pattern.next p rng in
    counts.(a.Workload.Access.lba) <- counts.(a.Workload.Access.lba) + 1
  done;
  checkb "head hot" true (counts.(0) > 5 * counts.(50));
  (* shrink the window; all subsequent accesses respect it *)
  Workload.Pattern.resize p ~window:10;
  for _ = 1 to 1000 do
    checkb "resized window" true ((Workload.Pattern.next p rng).Workload.Access.lba < 10)
  done

let test_pattern_invalid_window () =
  Alcotest.check_raises "zero window"
    (Invalid_argument "Pattern: window must be positive") (fun () ->
      ignore (Workload.Pattern.sequential ~window:0))

(* --- trace ---------------------------------------------------------------- *)

let test_trace_capture_replay () =
  let p = Workload.Pattern.sequential ~window:5 in
  let rng = Sim.Rng.create 4 in
  let trace = Workload.Trace.create () in
  Workload.Trace.capture trace p rng ~n:7;
  checki "length" 7 (Workload.Trace.length trace);
  let lbas = List.map (fun a -> a.Workload.Access.lba) (Workload.Trace.to_list trace) in
  Alcotest.(check (list int)) "order preserved" [ 0; 1; 2; 3; 4; 0; 1 ] lbas;
  (* replay visits the same accesses *)
  let seen = ref [] in
  Workload.Trace.iter trace (fun a -> seen := a.Workload.Access.lba :: !seen);
  Alcotest.(check (list int)) "iter order" lbas (List.rev !seen)

let test_trace_of_list_roundtrip () =
  let accesses =
    [
      { Workload.Access.kind = Workload.Access.Write; lba = 3 };
      { Workload.Access.kind = Workload.Access.Read; lba = 1 };
    ]
  in
  let trace = Workload.Trace.of_list accesses in
  checkb "roundtrip" true (Workload.Trace.to_list trace = accesses)

(* --- trace on-disk format ------------------------------------------------- *)

let test_trace_golden_format () =
  (* The v1 format is an artifact other tools read; pin it byte-for-byte. *)
  let trace =
    Workload.Trace.of_events
      [
        { Workload.Trace.tenant = 0;
          access = { Workload.Access.kind = Workload.Access.Write; lba = 7 } };
        { Workload.Trace.tenant = 12;
          access = { Workload.Access.kind = Workload.Access.Read; lba = 4096 } };
        { Workload.Trace.tenant = 3;
          access = { Workload.Access.kind = Workload.Access.Trim; lba = 0 } };
      ]
  in
  Alcotest.(check string)
    "golden v1 bytes" "salamander-trace v1\n0 w 7\n12 r 4096\n3 d 0\n"
    (Workload.Trace.to_string trace)

let test_trace_rejects_garbage () =
  checkb "bad header rejected" true
    (Result.is_error (Workload.Trace.of_string "salamander-trace v9\n0 w 1\n"));
  checkb "bad op rejected" true
    (Result.is_error
       (Workload.Trace.of_string "salamander-trace v1\n0 x 1\n"));
  checkb "bad arity rejected" true
    (Result.is_error (Workload.Trace.of_string "salamander-trace v1\n0 w\n"));
  checkb "missing file reported" true
    (Result.is_error (Workload.Trace.of_file ~path:"/nonexistent/trace"))

let test_trace_file_roundtrip () =
  let path = Filename.temp_file "salamander" ".trace" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let trace = Workload.Trace.create () in
      Workload.Trace.capture trace
        (Workload.Pattern.uniform ~window:100 ~read_fraction:0.5)
        (Sim.Rng.create 13) ~n:50;
      Workload.Trace.to_file trace ~path;
      match Workload.Trace.of_file ~path with
      | Error e -> Alcotest.fail e
      | Ok loaded ->
          checkb "events identical after disk roundtrip" true
            (Workload.Trace.to_events loaded = Workload.Trace.to_events trace))

let prop_trace_string_roundtrip =
  (* of_string (to_string t) is the identity on events — including tenant
     ids and LBAs no generator would emit (negative, huge). *)
  QCheck.Test.make ~count:200 ~name:"trace of_string inverts to_string"
    QCheck.(list (triple int (int_range 0 2) int))
    (fun raw ->
      let events =
        List.map
          (fun (tenant, op, lba) ->
            let kind =
              match op with
              | 0 -> Workload.Access.Read
              | 1 -> Workload.Access.Write
              | _ -> Workload.Access.Trim
            in
            { Workload.Trace.tenant; access = { Workload.Access.kind; lba } })
          raw
      in
      let trace = Workload.Trace.of_events events in
      match Workload.Trace.of_string (Workload.Trace.to_string trace) with
      | Error _ -> false
      | Ok parsed -> Workload.Trace.to_events parsed = events)

(* --- aging ------------------------------------------------------------------ *)

let make_baseline seed model =
  let rng = Sim.Rng.create seed in
  let d = Ftl.Baseline_ssd.create ~geometry ~model ~rng () in
  Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d)

let test_aging_stops_at_cap () =
  let device = make_baseline 5 gentle_model in
  let pattern = Workload.Pattern.uniform ~window:100 ~read_fraction:0.1 in
  let outcome =
    Workload.Aging.run ~max_writes:500 ~rng:(Sim.Rng.create 6) ~pattern
      ~device ()
  in
  checki "writes capped" 500 outcome.Workload.Aging.host_writes;
  checkb "did not die" true (not outcome.Workload.Aging.died)

let test_aging_runs_to_death () =
  let device = make_baseline 7 fast_model in
  let pattern = Workload.Pattern.uniform ~window:100 ~read_fraction:0. in
  let outcome =
    Workload.Aging.run ~max_writes:10_000_000 ~rng:(Sim.Rng.create 8) ~pattern
      ~device ()
  in
  checkb "died" true outcome.Workload.Aging.died;
  checkb "device agrees" true (not (Ftl.Device_intf.alive device))

let test_aging_window_tracks_capacity () =
  (* On a shrinking CVSS drive the pattern window must shrink too, or the
     run would spin on Out_of_range forever. *)
  let rng = Sim.Rng.create 9 in
  let d = Ftl.Cvss.create ~geometry ~model:fast_model ~rng () in
  let device = Ftl.Device_intf.Packed ((module Ftl.Cvss), d) in
  let pattern =
    Workload.Pattern.uniform
      ~window:(Ftl.Device_intf.logical_capacity device)
      ~read_fraction:0.
  in
  let outcome =
    Workload.Aging.run ~max_writes:10_000_000 ~utilization:0.45
      ~rng:(Sim.Rng.create 10) ~pattern ~device ()
  in
  checkb "shrank before dying" true (Ftl.Cvss.retired_blocks d > 0);
  checkb "completed life" true outcome.Workload.Aging.died

let test_aging_stop_predicate () =
  let device = make_baseline 11 gentle_model in
  let pattern = Workload.Pattern.uniform ~window:50 ~read_fraction:0. in
  let outcome =
    Workload.Aging.run_until ~rng:(Sim.Rng.create 12) ~pattern ~device
      ~stop:(fun writes -> writes >= 123)
      ()
  in
  checki "stopped exactly at predicate" 123 outcome.Workload.Aging.host_writes

let test_aging_stop_every () =
  (* stop_every only paces the window resync; the predicate is still
     honoured exactly, at any cadence. *)
  let run stop_every =
    let device = make_baseline 11 gentle_model in
    let pattern = Workload.Pattern.uniform ~window:50 ~read_fraction:0. in
    Workload.Aging.run_until ?stop_every ~rng:(Sim.Rng.create 12) ~pattern
      ~device
      ~stop:(fun writes -> writes >= 123)
      ()
  in
  checki "stop_every=1 stops at predicate" 123
    (run (Some 1)).Workload.Aging.host_writes;
  checkb "resync cadence does not change the run" true
    (run (Some 1) = run (Some 10_000));
  Alcotest.check_raises "stop_every must be positive"
    (Invalid_argument "Aging.run_until: stop_every") (fun () ->
      ignore (run (Some 0)))

let suite =
  [
    ("sequential wraps", `Quick, test_sequential_wraps);
    ("sequential writes only", `Quick, test_sequential_writes_only);
    ("uniform bounds and mix", `Slow, test_uniform_bounds_and_mix);
    ("zipf skew and resize", `Slow, test_zipf_skew_and_resize);
    ("pattern invalid window", `Quick, test_pattern_invalid_window);
    ("trace capture/replay", `Quick, test_trace_capture_replay);
    ("trace of_list roundtrip", `Quick, test_trace_of_list_roundtrip);
    ("trace golden v1 format", `Quick, test_trace_golden_format);
    ("trace rejects garbage", `Quick, test_trace_rejects_garbage);
    ("trace file roundtrip", `Quick, test_trace_file_roundtrip);
    QCheck_alcotest.to_alcotest prop_trace_string_roundtrip;
    ("aging stops at cap", `Quick, test_aging_stops_at_cap);
    ("aging runs to death", `Slow, test_aging_runs_to_death);
    ("aging window tracks capacity", `Slow, test_aging_window_tracks_capacity);
    ("aging stop predicate", `Quick, test_aging_stop_predicate);
    ("aging stop_every cadence", `Quick, test_aging_stop_every);
  ]
