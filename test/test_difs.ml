(* Tests for the distributed storage substrate: target allocation, chunk
   placement, and — the property the paper leans on — recovery from device
   and minidisk failures with no acknowledged data lost while redundancy
   and capacity remain. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

let geometry = Flash.Geometry.create ~pages_per_block:8 ~blocks:16 ()

let fast_model =
  Flash.Rber_model.calibrate ~target_rber:6e-3 ~target_pec:40 ()

let gentle_model =
  Flash.Rber_model.calibrate ~target_rber:3e-3 ~target_pec:1_000_000 ()

(* --- Target -------------------------------------------------------------- *)

let test_target_allocator () =
  let target =
    Difs.Target.create
      ~key:{ Difs.Target.device = 0; mdisk = None }
      ~node:0 ~capacity:64 ~chunk_opages:16
  in
  checki "four ranges" 4 (Difs.Target.free_count target);
  let a = Option.get (Difs.Target.allocate target) in
  let b = Option.get (Difs.Target.allocate target) in
  checkb "distinct ranges" true (a <> b);
  checki "two left" 2 (Difs.Target.free_count target);
  checki "two used" 2 (Difs.Target.used_count target);
  Difs.Target.release target a;
  checki "released" 3 (Difs.Target.free_count target)

let test_target_fail () =
  let target =
    Difs.Target.create
      ~key:{ Difs.Target.device = 0; mdisk = None }
      ~node:0 ~capacity:64 ~chunk_opages:16
  in
  Difs.Target.fail target;
  checkb "no allocation after failure" true
    (Difs.Target.allocate target = None);
  checkb "inactive" true (not (Difs.Target.is_active target))

let test_target_truncate () =
  let target =
    Difs.Target.create
      ~key:{ Difs.Target.device = 0; mdisk = None }
      ~node:0 ~capacity:64 ~chunk_opages:16
  in
  (* allocate ranges 0 and 16 (LIFO pops 0 first after List.init order) *)
  let a = Option.get (Difs.Target.allocate target) in
  let b = Option.get (Difs.Target.allocate target) in
  (* cut capacity to 40: ranges [32,48) and [48,64) are gone; of those
     only free ones disappear silently — allocated ones are reported. *)
  let lost = Difs.Target.truncate target ~capacity:40 in
  checki "no allocated ranges lost" 0 (List.length lost);
  checki "free pool shrank to zero" 0 (Difs.Target.free_count target);
  ignore (a, b);
  (* truncating below an allocated range reports it *)
  let lost = Difs.Target.truncate target ~capacity:8 in
  checkb "allocated range reported lost" true (List.mem b lost || List.mem a lost)

(* --- Chunk ----------------------------------------------------------------- *)

let test_chunk_payload_deterministic () =
  checki "same inputs same payload"
    (Difs.Chunk.payload ~id:3 ~offset:5 ~version:7)
    (Difs.Chunk.payload ~id:3 ~offset:5 ~version:7);
  checkb "version changes payload" true
    (Difs.Chunk.payload ~id:3 ~offset:5 ~version:7
    <> Difs.Chunk.payload ~id:3 ~offset:5 ~version:8)

(* --- Cluster helpers --------------------------------------------------------- *)

let baseline_cluster ?(devices = 4) ?(model = gentle_model) ?(seed = 1) () =
  let cluster = Difs.Cluster.create () in
  let raw =
    List.init devices (fun i ->
        let rng = Sim.Rng.create (seed + i) in
        let d = Ftl.Baseline_ssd.create ~geometry ~model ~rng () in
        ignore
          (Difs.Cluster.add_device cluster ~node:i
             (Difs.Cluster.Monolithic
                (Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d))));
        d)
  in
  (cluster, raw)

let salamander_cluster ?(devices = 4) ?(model = fast_model) ?(seed = 1)
    ?(config = Salamander.Device.default_config) () =
  let cluster = Difs.Cluster.create () in
  let device_config = { config with Salamander.Device.mdisk_opages = 32 } in
  let raw =
    List.init devices (fun i ->
        let d =
          Salamander.Device.create ~config:device_config ~geometry ~model
            ~rng:(Sim.Rng.create (seed + i)) ()
        in
        ignore
          (Difs.Cluster.add_device cluster ~node:i (Difs.Cluster.Salamander d));
        d)
  in
  (cluster, raw)

let write_ok cluster id =
  match Difs.Cluster.write_chunk cluster id with
  | Ok () -> ()
  | Error _ -> Alcotest.fail (Printf.sprintf "write of chunk %d failed" id)

(* --- Cluster: basics --------------------------------------------------------- *)

let test_cluster_write_read_verify () =
  let cluster, _ = baseline_cluster () in
  for id = 0 to 9 do
    write_ok cluster id
  done;
  for id = 0 to 9 do
    match Difs.Cluster.read_chunk cluster id with
    | Ok matches -> checki "all opages verify" 16 matches
    | Error _ -> Alcotest.fail "read failed"
  done;
  let health = Difs.Cluster.health cluster in
  checki "all intact" 10 health.Difs.Cluster.intact;
  checki "none lost" 0 health.Difs.Cluster.lost

let test_cluster_overwrite_bumps_version () =
  let cluster, _ = baseline_cluster () in
  write_ok cluster 5;
  write_ok cluster 5;
  checkb "verifies at latest version" true (Difs.Cluster.verify_chunk cluster 5)

let test_cluster_replicas_on_distinct_devices () =
  let cluster, _ = baseline_cluster () in
  write_ok cluster 1;
  (* 4 devices, replication 3: one target per device, so there must be 3
     distinct live targets serving the chunk; verify via health + a
     white-box read of every device (indirectly through verify). *)
  checkb "verify" true (Difs.Cluster.verify_chunk cluster 1);
  checki "targets available" 4 (Difs.Cluster.live_targets cluster)

let test_cluster_unknown_chunk () =
  let cluster, _ = baseline_cluster () in
  checkb "unknown chunk" true
    (Difs.Cluster.read_chunk cluster 99 = Error `Unknown_chunk)

let test_cluster_delete () =
  let cluster, _ = baseline_cluster () in
  let free_before = Difs.Cluster.total_free_ranges cluster in
  write_ok cluster 1;
  Difs.Cluster.delete_chunk cluster 1;
  checki "ranges returned" free_before (Difs.Cluster.total_free_ranges cluster);
  checkb "gone" true (Difs.Cluster.read_chunk cluster 1 = Error `Unknown_chunk)

let test_cluster_no_capacity () =
  (* A single device cannot host even one replica set of 3 under
     Spread_devices... it can host one replica.  Fill everything and the
     next chunk must report either success with fewer replicas or
     No_capacity when nothing is free. *)
  let cluster = Difs.Cluster.create () in
  let rng = Sim.Rng.create 3 in
  let d = Ftl.Baseline_ssd.create ~geometry ~model:gentle_model ~rng () in
  ignore
    (Difs.Cluster.add_device cluster ~node:0
       (Difs.Cluster.Monolithic
          (Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d))));
  (* 476 capacity / 16 = 29 ranges on the single target. *)
  let failures = ref 0 in
  for id = 0 to 40 do
    match Difs.Cluster.write_chunk cluster id with
    | Ok () -> ()
    | Error `No_capacity -> incr failures
    | Error _ -> Alcotest.fail "unexpected error"
  done;
  checkb "eventually out of capacity" true (!failures > 0)

(* --- Cluster: failure recovery ------------------------------------------------ *)

let test_cluster_survives_baseline_death () =
  (* Six baseline devices on fast-wearing flash; rewrite chunks until at
     least one drive bricks.  Every chunk must remain readable. *)
  let cluster, raw = baseline_cluster ~devices:6 ~model:fast_model () in
  let chunks = 12 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  let rewrites = ref 0 in
  let rng = Sim.Rng.create 42 in
  while Difs.Cluster.devices_alive cluster = 6 && !rewrites < 100_000 do
    incr rewrites;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
  done;
  checkb "a device died" true (Difs.Cluster.devices_alive cluster < 6);
  checkb "its death was observed as recovery" true
    (Difs.Cluster.recovery_events cluster > 0);
  checkb "recovery moved data" true (Difs.Cluster.recovery_opages cluster > 0);
  Difs.Cluster.repair cluster;
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done;
  ignore raw

let test_cluster_survives_mdisk_decommissions () =
  (* Salamander devices shrink minidisk by minidisk; the cluster should
     absorb each decommissioning with small recoveries and no loss.  Age
     only until a handful of decommissions have been observed — aging past
     the whole fleet's death would legitimately lose data. *)
  let cluster, raw = salamander_cluster ~devices:4 () in
  let chunks = 10 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  let total_decommissions () =
    List.fold_left
      (fun acc d -> acc + Salamander.Device.decommissions d)
      0 raw
  in
  let rng = Sim.Rng.create 7 in
  let rewrites = ref 0 in
  while total_decommissions () < 4 && !rewrites < 100_000 do
    incr rewrites;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
  done;
  Difs.Cluster.repair cluster;
  checkb "decommissions happened" true (total_decommissions () >= 4);
  checkb "recoveries recorded" true
    (Difs.Cluster.recovery_events cluster > 0);
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_cluster_gains_regenerated_targets () =
  let cluster, raw = salamander_cluster ~devices:4 () in
  let before = Difs.Cluster.live_targets cluster in
  let chunks = 10 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  let total_regenerations () =
    List.fold_left
      (fun acc d -> acc + Salamander.Device.regenerations d)
      0 raw
  in
  let rng = Sim.Rng.create 8 in
  let rewrites = ref 0 in
  while total_regenerations () < 1 && !rewrites < 100_000 do
    incr rewrites;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
  done;
  Difs.Cluster.repair cluster;
  let regenerations = total_regenerations () in
  checkb "regenerations happened" true (regenerations > 0);
  (* Regenerated minidisks became cluster targets (their creation events
     were consumed); total targets = initial - decommissioned + created,
     so at minimum the cluster saw target arrivals. *)
  let decommissions =
    List.fold_left
      (fun acc d -> acc + Salamander.Device.decommissions d)
      0 raw
  in
  checki "live targets balance" (before - decommissions + regenerations)
    (Difs.Cluster.live_targets cluster)

let test_cluster_survives_cvss_shrink () =
  let cluster = Difs.Cluster.create () in
  let raw =
    List.init 5 (fun i ->
        let rng = Sim.Rng.create (50 + i) in
        let d = Ftl.Cvss.create ~geometry ~model:fast_model ~rng () in
        ignore
          (Difs.Cluster.add_device cluster ~node:i
             (Difs.Cluster.Monolithic
                (Ftl.Device_intf.Packed ((module Ftl.Cvss), d))));
        d)
  in
  let chunks = 10 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  (* Rewrite until some device retires a block (shrinks). *)
  let rng = Sim.Rng.create 60 in
  let shrunk () = List.exists (fun d -> Ftl.Cvss.retired_blocks d > 0) raw in
  let rewrites = ref 0 in
  while (not (shrunk ())) && !rewrites < 100_000 do
    incr rewrites;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
  done;
  checkb "a device shrank" true (shrunk ());
  Difs.Cluster.repair cluster;
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_cluster_grace_avoids_degraded_window () =
  (* With grace-period devices, the cluster migrates data off a retiring
     minidisk while it is still readable and acknowledges afterwards:
     aging should proceed with zero lost chunks and every chunk verified,
     and the devices should hold no unacknowledged drains. *)
  let config =
    {
      Salamander.Device.default_config with
      Salamander.Device.mdisk_opages = 32;
      decommission_grace = true;
    }
  in
  let cluster, raw = salamander_cluster ~devices:4 ~config () in
  let chunks = 10 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  let total_decommissions () =
    List.fold_left
      (fun acc d -> acc + Salamander.Device.decommissions d)
      0 raw
  in
  let rng = Sim.Rng.create 17 in
  let rewrites = ref 0 in
  while total_decommissions () < 4 && !rewrites < 100_000 do
    incr rewrites;
    ignore (Difs.Cluster.write_chunk cluster (Sim.Rng.int rng chunks))
  done;
  Difs.Cluster.repair cluster;
  checkb "grace decommissions happened" true (total_decommissions () >= 4);
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  List.iter
    (fun d ->
      checki "all drains acknowledged" 0
        (List.length
           (Salamander.Minidisk.Registry.draining
              (Salamander.Device.registry d))))
    raw;
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_cluster_kill_device_injection () =
  (* Controller-death injection: an otherwise healthy device is declared
     dead; every chunk must be re-replicated from survivors. *)
  let cluster, _ = baseline_cluster ~devices:5 () in
  let chunks = 12 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 2;
  checkb "marked killed" true (Difs.Cluster.is_device_killed cluster 2);
  checki "alive count reflects it" 4 (Difs.Cluster.devices_alive cluster);
  checkb "recovery ran" true (Difs.Cluster.recovery_events cluster > 0);
  checki "nothing lost" 0 (Difs.Cluster.lost_chunks cluster);
  let health = Difs.Cluster.health cluster in
  checki "all chunks intact again" chunks health.Difs.Cluster.intact;
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done;
  (* idempotent *)
  Difs.Cluster.kill_device cluster 2;
  checki "still nothing lost" 0 (Difs.Cluster.lost_chunks cluster)

let test_cluster_kill_two_of_five () =
  (* Killing two devices simultaneously still leaves one replica of every
     chunk; repair must restore full replication on the remaining three. *)
  let cluster, _ = baseline_cluster ~devices:5 () in
  let chunks = 8 in
  for id = 0 to chunks - 1 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 0;
  Difs.Cluster.kill_device cluster 1;
  Difs.Cluster.repair cluster;
  checki "nothing lost" 0 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to chunks - 1 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_cluster_kill_edge_semantics () =
  (* Unknown ids and double kills are strict no-ops: no recovery runs,
     only the ignored counter moves. *)
  let cluster, _ = baseline_cluster ~devices:5 () in
  for id = 0 to 7 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 99;
  checki "unknown id ignored" 1 (Difs.Cluster.kill_ignored cluster);
  checki "no recovery ran" 0 (Difs.Cluster.recovery_events cluster);
  Difs.Cluster.kill_device cluster 1;
  let events = Difs.Cluster.recovery_events cluster in
  checkb "first kill recovered" true (events > 0);
  Difs.Cluster.kill_device cluster 1;
  checki "double kill ignored" 2 (Difs.Cluster.kill_ignored cluster);
  checki "double kill ran no recovery" events
    (Difs.Cluster.recovery_events cluster);
  checkb "device stays killed" true (Difs.Cluster.is_device_killed cluster 1)

(* --- Scrubbing ---------------------------------------------------------------- *)

(* Flip a mask into every flash-resident page of [chip]: silent
   corruption of data at rest, invisible to the read path's error model.
   Free pages stay clean, so repair rewrites land on good media. *)
let corrupt_resident_pages chip =
  let g = Flash.Chip.geometry chip in
  let corrupted = ref 0 in
  for block = 0 to g.Flash.Geometry.blocks - 1 do
    for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
      if not (Flash.Chip.is_free chip ~block ~page) then begin
        Flash.Chip.inject chip ~block ~page (Flash.Chip.Silent_corruption 0x3A);
        incr corrupted
      end
    done
  done;
  !corrupted

let test_cluster_scrub_repairs_silent_corruption () =
  let cluster, devices = salamander_cluster ~model:gentle_model () in
  for id = 0 to 7 do
    write_ok cluster id
  done;
  let chip = Ftl.Engine.chip (Salamander.Device.engine (List.hd devices)) in
  checkb "some pages corrupted" true (corrupt_resident_pages chip > 0);
  let report = Difs.Cluster.scrub cluster in
  checkb "mismatches found" true (report.Difs.Cluster.mismatches > 0);
  checki "every mismatch repaired in place" report.Difs.Cluster.mismatches
    report.Difs.Cluster.repairs;
  checki "no shares dropped" 0 report.Difs.Cluster.unreadable_shares;
  checki "no repair failures" 0 report.Difs.Cluster.repair_failures;
  for id = 0 to 7 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done;
  checkb "audit clean" true (Difs.Cluster.audit cluster = [])

let test_cluster_scrub_limit_round_robin () =
  (* A limited sweep resumes where the previous one stopped, so three
     4-chunk sweeps cover all nine chunks and the corruption is gone. *)
  let cluster, devices = salamander_cluster ~model:gentle_model () in
  for id = 0 to 8 do
    write_ok cluster id
  done;
  let chip = Ftl.Engine.chip (Salamander.Device.engine (List.hd devices)) in
  ignore (corrupt_resident_pages chip);
  let found = ref 0 in
  for _sweep = 1 to 3 do
    let r = Difs.Cluster.scrub ~limit:4 cluster in
    checki "limit respected" 4 r.Difs.Cluster.chunks_scanned;
    found := !found + r.Difs.Cluster.mismatches
  done;
  checki "three sweeps recorded" 3 (Difs.Cluster.scrub_sweeps cluster);
  checkb "corruption found across sweeps" true (!found > 0);
  for id = 0 to 8 do
    checkb
      (Printf.sprintf "chunk %d verifies" id)
      true
      (Difs.Cluster.verify_chunk cluster id)
  done

(* --- Live repair -------------------------------------------------------------- *)

(* Pin every flash-resident page of [chip] at an RBER no retry rung can
   decode: reads of data written so far exhaust the ladder and escalate.
   Free pages stay clean, so repair rewrites land on good media. *)
let exhaust_resident_pages chip =
  let g = Flash.Chip.geometry chip in
  let pinned = ref 0 in
  for block = 0 to g.Flash.Geometry.blocks - 1 do
    for page = 0 to g.Flash.Geometry.pages_per_block - 1 do
      if not (Flash.Chip.is_free chip ~block ~page) then begin
        Flash.Chip.inject chip ~block ~page (Flash.Chip.Sticky_rber 1.0);
        incr pinned
      end
    done
  done;
  !pinned

let test_live_repair_recover_opage_basic () =
  (* 3 devices, replication 3: chunk 0 has one share per device, and the
     first allocation on each device starts at base 0. *)
  let cluster, _ = baseline_cluster ~devices:3 () in
  write_ok cluster 0;
  (match Difs.Cluster.recover_opage cluster ~device:0 ~lba:3 with
  | Some _ -> ()
  | None -> Alcotest.fail "recover_opage found no source");
  checki "one attempt" 1 (Difs.Cluster.live_repair_attempts cluster);
  checki "one success" 1 (Difs.Cluster.live_repair_successes cluster);
  checki "copy rewritten in place" 1
    (Difs.Cluster.live_repair_rewritten_opages cluster);
  checkb "replica reads metered" true
    (Difs.Cluster.live_repair_replica_reads cluster >= 1);
  checki "no failures" 0 (Difs.Cluster.live_repair_failures cluster);
  checkb "chunk still verifies" true (Difs.Cluster.verify_chunk cluster 0);
  checkb "audit clean" true (Difs.Cluster.audit cluster = []);
  (* An address no chunk owns degrades cleanly. *)
  checkb "unowned address degrades" true
    (Difs.Cluster.recover_opage cluster ~device:0 ~lba:400 = None);
  checki "miss counted as failure" 1
    (Difs.Cluster.live_repair_failures cluster)

let test_live_repair_degrades_without_healthy_source () =
  (* Kill both replica holders: the only copy left is the one being
     repaired, which recover_opage must exclude — so it degrades to
     [None] without wedging the pool. *)
  let cluster, _ = baseline_cluster ~devices:3 () in
  write_ok cluster 0;
  Difs.Cluster.kill_device cluster 1;
  Difs.Cluster.kill_device cluster 2;
  checki "one share survives" 1
    (Option.get (Difs.Cluster.share_count cluster 0));
  checkb "survivor verifies" true (Difs.Cluster.verify_chunk cluster 0);
  checkb "no healthy source degrades" true
    (Difs.Cluster.recover_opage cluster ~device:0 ~lba:0 = None);
  checki "no successes" 0 (Difs.Cluster.live_repair_successes cluster);
  checkb "failure counted" true (Difs.Cluster.live_repair_failures cluster > 0);
  (* The pool still serves: the surviving replica answers reads. *)
  (match Difs.Cluster.read_chunk cluster 0 with
  | Ok matches -> checki "degraded read serves" 16 matches
  | Error _ -> Alcotest.fail "degraded chunk should still read")

let test_live_repair_mid_recovery_kill_is_noop () =
  (* While recover_opage reads replicas, a poisoned source device tries
     to kill a healthy one: the kill lands inside the recovery span and
     must be a counted no-op (PR 3 edge semantics), the repair must still
     land off the remaining healthy replica. *)
  let cluster, raw = baseline_cluster ~devices:3 () in
  write_ok cluster 0;
  (* The share probe order is by share index: excluding device 0, device
     2's share is tried before device 1's — poison it so its escalation
     hook fires mid-repair. *)
  let d2 = List.nth raw 2 in
  checkb "poisoned pages" true
    (exhaust_resident_pages (Ftl.Engine.chip (Ftl.Baseline_ssd.engine d2)) > 0);
  Ftl.Baseline_ssd.set_recovery_hook d2
    (Some
       (fun ~lba:_ ->
         Difs.Cluster.kill_device cluster 1;
         Difs.Cluster.kill_device cluster 1;
         None));
  (match Difs.Cluster.recover_opage cluster ~device:0 ~lba:0 with
  | Some _ -> ()
  | None -> Alcotest.fail "repair should land off the healthy replica");
  checkb "mid-recovery kills were counted no-ops" true
    (Difs.Cluster.kill_ignored cluster > 0);
  checkb "victim not killed" true
    (not (Difs.Cluster.is_device_killed cluster 1));
  checki "all devices still alive" 3 (Difs.Cluster.devices_alive cluster);
  (* Re-issued after the span, the kill takes effect normally. *)
  Difs.Cluster.kill_device cluster 1;
  checkb "kill lands after the span" true
    (Difs.Cluster.is_device_killed cluster 1)

let test_live_repair_end_to_end_baseline () =
  (* The full escalation path: reads of a poisoned device exhaust the
     retry ladder, escalate through the armed recovery hook into
     recover_opage, and the host never sees the damage. *)
  let cluster, raw = baseline_cluster ~devices:4 () in
  for id = 0 to 5 do
    write_ok cluster id
  done;
  Difs.Cluster.enable_live_repair cluster;
  let d0 = List.hd raw in
  checkb "poisoned pages" true
    (exhaust_resident_pages (Ftl.Engine.chip (Ftl.Baseline_ssd.engine d0)) > 0);
  for id = 0 to 5 do
    match Difs.Cluster.read_chunk cluster id with
    | Ok matches -> checki "read served clean through repair" 16 matches
    | Error _ -> Alcotest.fail "read failed despite healthy replicas"
  done;
  checkb "escalations repaired" true
    (Difs.Cluster.live_repair_successes cluster > 0);
  checki "never served corrupt data with a replica" 0
    (Difs.Cluster.corrupt_reads_with_replica cluster);
  let verdict = Faults.Verdict.check_cluster cluster in
  checkb
    (Format.asprintf "cluster verdict passes: %a" Faults.Verdict.pp verdict)
    true
    (Faults.Verdict.all_ok verdict)

let test_live_repair_end_to_end_salamander () =
  (* Same story through the minidisk-native path: the Salamander hook
     maps engine logicals to (mdisk, lba) before escalating. *)
  let cluster, raw = salamander_cluster ~model:gentle_model () in
  for id = 0 to 5 do
    write_ok cluster id
  done;
  Difs.Cluster.enable_live_repair cluster;
  let d0 = List.hd raw in
  checkb "poisoned pages" true
    (exhaust_resident_pages (Ftl.Engine.chip (Salamander.Device.engine d0))
    > 0);
  for id = 0 to 5 do
    match Difs.Cluster.read_chunk cluster id with
    | Ok matches -> checki "read served clean through repair" 16 matches
    | Error _ -> Alcotest.fail "read failed despite healthy replicas"
  done;
  checkb "escalations repaired" true
    (Difs.Cluster.live_repair_successes cluster > 0);
  checki "never served corrupt data with a replica" 0
    (Difs.Cluster.corrupt_reads_with_replica cluster)

(* --- Erasure coding ---------------------------------------------------------- *)

let ec_cluster ?(devices = 6) ?(seed = 70) () =
  let cluster = Difs.Cluster.create ~config:Difs.Cluster.default_ec_config () in
  let raw =
    List.init devices (fun i ->
        let rng = Sim.Rng.create (seed + i) in
        let d = Ftl.Baseline_ssd.create ~geometry ~model:gentle_model ~rng () in
        ignore
          (Difs.Cluster.add_device cluster ~node:i
             (Difs.Cluster.Monolithic
                (Ftl.Device_intf.Packed ((module Ftl.Baseline_ssd), d))));
        d)
  in
  (cluster, raw)

let test_ec_write_read_verify () =
  let cluster, _ = ec_cluster () in
  checki "6 shares per chunk" 6 (Difs.Cluster.total_shares cluster);
  checki "quorum 4" 4 (Difs.Cluster.read_quorum cluster);
  checki "4-opage shares" 4 (Difs.Cluster.share_opages cluster);
  Alcotest.check (Alcotest.float 1e-9) "1.5x overhead" 1.5
    (Difs.Cluster.storage_overhead cluster);
  for id = 0 to 9 do
    write_ok cluster id
  done;
  for id = 0 to 9 do
    match Difs.Cluster.read_chunk cluster id with
    | Ok matches -> checki "all data opages verify" 16 matches
    | Error _ -> Alcotest.fail "read failed"
  done;
  for id = 0 to 9 do
    checkb (Printf.sprintf "chunk %d verifies" id) true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_ec_survives_one_device_death () =
  (* 8 devices leave room to re-spread the lost shares after the death. *)
  let cluster, _ = ec_cluster ~devices:8 () in
  for id = 0 to 7 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 3;
  Difs.Cluster.repair cluster;
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  let health = Difs.Cluster.health cluster in
  checki "all back to full redundancy" 8 health.Difs.Cluster.intact;
  for id = 0 to 7 do
    match Difs.Cluster.read_chunk cluster id with
    | Ok matches -> checki "data intact via decode" 16 matches
    | Error _ -> Alcotest.fail "read failed after device death"
  done;
  (* EC repair amplification: rebuilding read ~k times what it wrote *)
  checkb "rebuilt shares" true (Difs.Cluster.recovery_opages cluster > 0);
  let amplification =
    float_of_int (Difs.Cluster.recovery_read_opages cluster)
    /. float_of_int (Difs.Cluster.recovery_opages cluster)
  in
  checkb
    (Printf.sprintf "read amplification %.1f ~ k=4" amplification)
    true
    (amplification > 3. && amplification < 5.)

let test_ec_two_device_deaths_at_quorum_edge () =
  (* 8 devices so shares can re-spread; kill two devices at once — two
     shares of some chunks are gone, still within m = 2. *)
  let cluster, _ = ec_cluster ~devices:8 () in
  for id = 0 to 7 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 0;
  Difs.Cluster.kill_device cluster 1;
  Difs.Cluster.repair cluster;
  checki "no chunk lost" 0 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to 7 do
    checkb (Printf.sprintf "chunk %d verifies" id) true
      (Difs.Cluster.verify_chunk cluster id)
  done

let test_ec_loses_beyond_parity () =
  (* 6 devices, 6 shares: each device holds exactly one share of every
     chunk.  Killing 3 devices at once destroys 3 shares > m = 2: data
     gone, and the cluster must say so rather than fabricate. *)
  let cluster, _ = ec_cluster ~devices:6 () in
  for id = 0 to 4 do
    write_ok cluster id
  done;
  Difs.Cluster.kill_device cluster 0;
  Difs.Cluster.kill_device cluster 1;
  Difs.Cluster.kill_device cluster 2;
  Difs.Cluster.repair cluster;
  checki "all chunks lost" 5 (Difs.Cluster.lost_chunks cluster);
  for id = 0 to 4 do
    checkb "read reports insufficient shares" true
      (Difs.Cluster.read_chunk cluster id = Error `Insufficient_shares)
  done

let test_cluster_spread_targets_allows_same_device () =
  (* With Spread_targets and a single Salamander device, a chunk's
     replicas may share the drive across different minidisks — the
     correlated-failure configuration the paper flags. *)
  let cluster =
    Difs.Cluster.create
      ~config:
        {
          Difs.Cluster.default_config with
          Difs.Cluster.placement = Difs.Cluster.Spread_targets;
        }
      ()
  in
  let d =
    Salamander.Device.create
      ~config:
        { Salamander.Device.default_config with Salamander.Device.mdisk_opages = 32 }
      ~geometry ~model:gentle_model ~rng:(Sim.Rng.create 5) ()
  in
  ignore (Difs.Cluster.add_device cluster ~node:0 (Difs.Cluster.Salamander d));
  (match Difs.Cluster.write_chunk cluster 0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "single-device replication failed");
  checkb "verifies with 3 replicas on one device" true
    (Difs.Cluster.verify_chunk cluster 0);
  let health = Difs.Cluster.health cluster in
  checki "fully replicated" 1 health.Difs.Cluster.intact

let test_cluster_spread_devices_blocks_same_device () =
  (* Same setup under the default policy: only one replica fits. *)
  let cluster = Difs.Cluster.create () in
  let d =
    Salamander.Device.create
      ~config:
        { Salamander.Device.default_config with Salamander.Device.mdisk_opages = 32 }
      ~geometry ~model:gentle_model ~rng:(Sim.Rng.create 5) ()
  in
  ignore (Difs.Cluster.add_device cluster ~node:0 (Difs.Cluster.Salamander d));
  (match Difs.Cluster.write_chunk cluster 0 with
  | Ok () -> ()
  | Error _ -> Alcotest.fail "write failed");
  let health = Difs.Cluster.health cluster in
  checki "under-replicated" 1 health.Difs.Cluster.degraded

let suite =
  [
    ("target allocator", `Quick, test_target_allocator);
    ("target fail", `Quick, test_target_fail);
    ("target truncate", `Quick, test_target_truncate);
    ("chunk payload deterministic", `Quick, test_chunk_payload_deterministic);
    ("cluster write/read/verify", `Quick, test_cluster_write_read_verify);
    ("cluster overwrite bumps version", `Quick,
     test_cluster_overwrite_bumps_version);
    ("cluster replica placement", `Quick,
     test_cluster_replicas_on_distinct_devices);
    ("cluster unknown chunk", `Quick, test_cluster_unknown_chunk);
    ("cluster delete", `Quick, test_cluster_delete);
    ("cluster no capacity", `Quick, test_cluster_no_capacity);
    ("cluster survives baseline death", `Slow,
     test_cluster_survives_baseline_death);
    ("cluster survives mdisk decommissions", `Slow,
     test_cluster_survives_mdisk_decommissions);
    ("cluster gains regenerated targets", `Slow,
     test_cluster_gains_regenerated_targets);
    ("cluster survives cvss shrink", `Slow, test_cluster_survives_cvss_shrink);
    ("cluster grace avoids degraded window", `Slow,
     test_cluster_grace_avoids_degraded_window);
    ("cluster kill device injection", `Quick, test_cluster_kill_device_injection);
    ("cluster kill two of five", `Quick, test_cluster_kill_two_of_five);
    ("cluster kill edge semantics", `Quick, test_cluster_kill_edge_semantics);
    ("cluster scrub repairs silent corruption", `Quick,
     test_cluster_scrub_repairs_silent_corruption);
    ("cluster scrub limit round robin", `Quick,
     test_cluster_scrub_limit_round_robin);
    ("live repair recover_opage basic", `Quick,
     test_live_repair_recover_opage_basic);
    ("live repair degrades without source", `Quick,
     test_live_repair_degrades_without_healthy_source);
    ("live repair mid-recovery kill no-op", `Quick,
     test_live_repair_mid_recovery_kill_is_noop);
    ("live repair end-to-end baseline", `Quick,
     test_live_repair_end_to_end_baseline);
    ("live repair end-to-end salamander", `Quick,
     test_live_repair_end_to_end_salamander);
    ("ec write/read/verify", `Quick, test_ec_write_read_verify);
    ("ec survives one device death", `Quick, test_ec_survives_one_device_death);
    ("ec two deaths at quorum edge", `Quick,
     test_ec_two_device_deaths_at_quorum_edge);
    ("ec loses beyond parity", `Quick, test_ec_loses_beyond_parity);
    ("cluster spread_targets same device", `Quick,
     test_cluster_spread_targets_allows_same_device);
    ("cluster spread_devices distinct", `Quick,
     test_cluster_spread_devices_blocks_same_device);
  ]
