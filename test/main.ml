let () =
  Alcotest.run "salamander"
    [
      ("sim", Test_sim.suite);
      ("rng_reference", Test_rng_reference.suite);
      ("parallel", Test_parallel.suite);
      ("telemetry", Test_telemetry.suite);
      ("monitor", Test_monitor.suite);
      ("obs", Test_obs.suite);
      ("ecc", Test_ecc.suite);
      ("flash", Test_flash.suite);
      ("ftl", Test_ftl.suite);
      ("faults", Test_faults.suite);
      ("core", Test_core.suite);
      ("difs", Test_difs.suite);
      ("workload", Test_workload.suite);
      ("traffic", Test_traffic.suite);
      ("sustain", Test_sustain.suite);
      ("experiments", Test_experiments.suite);
      ("bulk_aging", Test_bulk_aging.suite);
    ]
