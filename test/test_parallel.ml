(* Tests for lib/parallel and the determinism guarantee built on it:
   submission-order results, exception propagation, teardown semantics,
   cross-domain atomics, and the regression that pooled execution of the
   experiment layer is bit-identical to sequential. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- pool semantics --------------------------------------------------------- *)

let test_map_submission_order () =
  Parallel.Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Parallel.Pool.map pool (fun x -> x * x) xs)

let test_map_empty_and_opt () =
  Parallel.Pool.with_pool ~domains:2 @@ fun pool ->
  Alcotest.(check (list int)) "empty list" [] (Parallel.Pool.map pool Fun.id []);
  Alcotest.(check (list int))
    "map_opt None is List.map" [ 2; 3; 4 ]
    (Parallel.Pool.map_opt None (fun x -> x + 1) [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "map_opt Some is map" [ 2; 3; 4 ]
    (Parallel.Pool.map_opt (Some pool) (fun x -> x + 1) [ 1; 2; 3 ])

let test_exception_propagates () =
  Parallel.Pool.with_pool ~domains:2 @@ fun pool ->
  let raised =
    match
      Parallel.Pool.map pool
        (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x)
        [ 1; 2; 3; 4; 6 ]
    with
    | _ -> None
    | exception Failure m -> Some m
  in
  (* 3 and 6 both raise; submission order picks 3. *)
  checkb "first raising element wins" true (raised = Some "3");
  checki "pool survives a raising map" 6
    (List.fold_left ( + ) 0 (Parallel.Pool.map pool Fun.id [ 1; 2; 3 ]))

let test_atomic_cross_domain () =
  let total = Atomic.make 0 in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map pool
           (fun x -> Atomic.fetch_and_add total x)
           (List.init 1000 Fun.id)));
  checki "atomic sum across domains" (999 * 1000 / 2) (Atomic.get total)

let test_shutdown_semantics () =
  let pool = Parallel.Pool.create ~domains:2 in
  checki "domains" 2 (Parallel.Pool.domains pool);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  checkb "map after shutdown rejected" true
    (match Parallel.Pool.map pool Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "create rejects zero domains" true
    (match Parallel.Pool.create ~domains:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "default_domains at least 1" true (Parallel.Pool.default_domains () >= 1)

let test_shared_registry_from_workers () =
  (* Live registries are domain-safe: workers updating one shared counter
     concurrently lose no increments. *)
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "pool_hits_total" in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map pool
           (fun _ ->
             for _ = 1 to 1000 do
               Telemetry.Registry.Counter.incr c
             done)
           (List.init 8 Fun.id)));
  checki "no lost increments" 8000 (Telemetry.Registry.Counter.value c)

(* --- determinism regressions ------------------------------------------------ *)

(* Fleet.run must produce identical result records *and* identical merged
   telemetry at any job count: per-device RNG streams are split off the
   root in submission order and sub-registries merge in that same order. *)
let fleet_at pool =
  let registry = Telemetry.Registry.create () in
  let ctx = Experiments.Ctx.make ~registry ?pool () in
  let result =
    Experiments.Fleet.run ~devices:6 ~days:25 ~seed:42 ~ctx `Regens
  in
  (result, Telemetry.Registry.snapshot registry)

let test_fleet_jobs_deterministic () =
  let seq_result, seq_snapshot = fleet_at None in
  let par_result, par_snapshot =
    Parallel.Pool.with_pool ~domains:4 (fun pool -> fleet_at (Some pool))
  in
  checkb "result records identical at jobs=1 and jobs=4" true
    (seq_result = par_result);
  (* [compare], not [=]: empty-histogram summaries hold [nan]. *)
  checkb "merged telemetry identical" true
    (compare seq_snapshot par_snapshot = 0)

let test_experiment_measure_deterministic () =
  let rows_at pool =
    let ctx = Experiments.Ctx.make ?pool () in
    Experiments.Lifetime_table.measure ~seeds:[ 7 ] ~ctx ()
  in
  let seq = rows_at None in
  let par =
    Parallel.Pool.with_pool ~domains:4 (fun pool -> rows_at (Some pool))
  in
  checkb "lifetime rows identical at jobs=1 and jobs=4" true (seq = par)

let suite =
  [
    ("map keeps submission order", `Quick, test_map_submission_order);
    ("map empty and map_opt", `Quick, test_map_empty_and_opt);
    ("exceptions propagate in order", `Quick, test_exception_propagates);
    ("atomics cross domains", `Quick, test_atomic_cross_domain);
    ("shutdown semantics", `Quick, test_shutdown_semantics);
    ("shared registry from workers", `Quick, test_shared_registry_from_workers);
    ("fleet deterministic across jobs", `Slow, test_fleet_jobs_deterministic);
    ("lifetime table deterministic across jobs", `Slow,
     test_experiment_measure_deterministic);
  ]
