(* Tests for lib/parallel and the determinism guarantee built on it:
   submission-order results, exception propagation, teardown semantics,
   cross-domain atomics, and the regression that pooled execution of the
   experiment layer is bit-identical to sequential. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int

(* --- pool semantics --------------------------------------------------------- *)

let test_map_submission_order () =
  Parallel.Pool.with_pool ~domains:4 @@ fun pool ->
  let xs = List.init 100 Fun.id in
  Alcotest.(check (list int))
    "results in submission order"
    (List.map (fun x -> x * x) xs)
    (Parallel.Pool.map pool (fun x -> x * x) xs)

let test_map_empty_and_opt () =
  Parallel.Pool.with_pool ~domains:2 @@ fun pool ->
  Alcotest.(check (list int)) "empty list" [] (Parallel.Pool.map pool Fun.id []);
  Alcotest.(check (list int))
    "map_opt None is List.map" [ 2; 3; 4 ]
    (Parallel.Pool.map_opt None (fun x -> x + 1) [ 1; 2; 3 ]);
  Alcotest.(check (list int))
    "map_opt Some is map" [ 2; 3; 4 ]
    (Parallel.Pool.map_opt (Some pool) (fun x -> x + 1) [ 1; 2; 3 ])

let test_exception_propagates () =
  Parallel.Pool.with_pool ~domains:2 @@ fun pool ->
  let raised =
    match
      Parallel.Pool.map pool
        (fun x -> if x mod 3 = 0 then failwith (string_of_int x) else x)
        [ 1; 2; 3; 4; 6 ]
    with
    | _ -> None
    | exception Failure m -> Some m
  in
  (* 3 and 6 both raise; submission order picks 3. *)
  checkb "first raising element wins" true (raised = Some "3");
  checki "pool survives a raising map" 6
    (List.fold_left ( + ) 0 (Parallel.Pool.map pool Fun.id [ 1; 2; 3 ]))

let test_atomic_cross_domain () =
  let total = Atomic.make 0 in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map pool
           (fun x -> Atomic.fetch_and_add total x)
           (List.init 1000 Fun.id)));
  checki "atomic sum across domains" (999 * 1000 / 2) (Atomic.get total)

let test_shutdown_semantics () =
  let pool = Parallel.Pool.create ~domains:2 in
  checki "domains" 2 (Parallel.Pool.domains pool);
  Parallel.Pool.shutdown pool;
  Parallel.Pool.shutdown pool;
  checkb "map after shutdown rejected" true
    (match Parallel.Pool.map pool Fun.id [ 1 ] with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "create rejects zero domains" true
    (match Parallel.Pool.create ~domains:0 with
    | _ -> false
    | exception Invalid_argument _ -> true);
  checkb "default_domains at least 1" true (Parallel.Pool.default_domains () >= 1)

(* --- chunked execution ------------------------------------------------------ *)

let test_chunks_partition () =
  let cover ~chunk_size ~n =
    let cs = Parallel.Pool.chunks ~chunk_size ~n in
    List.concat_map
      (fun c ->
        List.init
          (c.Parallel.Pool.hi - c.Parallel.Pool.lo)
          (fun i -> c.Parallel.Pool.lo + i))
      cs
  in
  Alcotest.(check (list int))
    "chunks cover 0..n-1 in order" (List.init 10 Fun.id)
    (cover ~chunk_size:3 ~n:10);
  Alcotest.(check (list int))
    "oversized chunk is one chunk" (List.init 4 Fun.id)
    (cover ~chunk_size:100 ~n:4);
  checki "n=0 gives no chunks" 0
    (List.length (Parallel.Pool.chunks ~chunk_size:4 ~n:0));
  checkb "chunk_size 0 rejected" true
    (match Parallel.Pool.chunks ~chunk_size:0 ~n:5 with
    | _ -> false
    | exception Invalid_argument _ -> true)

let test_map_chunked_fewer_items_than_domains () =
  (* 2 items across 4 domains: some workers never get a chunk; the barrier
     must still complete and order must hold. *)
  Parallel.Pool.with_pool ~domains:4 @@ fun pool ->
  Alcotest.(check (list int))
    "two chunks, four domains" [ 0; 1 ]
    (Parallel.Pool.map_chunked (Some pool) ~chunk_size:1 ~n:2 (fun c ->
         c.Parallel.Pool.lo));
  Alcotest.(check (list int))
    "no items, no tasks" []
    (Parallel.Pool.map_chunked (Some pool) ~chunk_size:1 ~n:0 (fun _ -> 0))

let test_exception_mid_chunk_does_not_wedge () =
  (* A task raising halfway through its chunk must propagate to the caller
     without deadlocking the barrier or poisoning the pool for later maps. *)
  Parallel.Pool.with_pool ~domains:2 @@ fun pool ->
  let raised =
    match
      Parallel.Pool.map_chunked (Some pool) ~chunk_size:4 ~n:16 (fun c ->
          for i = c.Parallel.Pool.lo to c.Parallel.Pool.hi - 1 do
            if i = 6 then failwith "mid-chunk"
          done;
          c.Parallel.Pool.lo)
    with
    | _ -> false
    | exception Failure m -> m = "mid-chunk"
  in
  checkb "mid-chunk exception propagates" true raised;
  checki "pool still serves maps afterwards" 10
    (List.fold_left ( + ) 0
       (Parallel.Pool.map pool Fun.id [ 1; 2; 3; 4 ]))

let test_accumulate_chunk_size_invariant () =
  (* Merged output of [accumulate] must depend only on the item set, never
     on where chunk boundaries fall: 1-per-chunk, odd size, one big chunk. *)
  let at chunk_size pool =
    Parallel.Pool.accumulate pool ~chunk_size ~n:97
      {
        Parallel.Pool.Accumulator.create = (fun c -> ref (c.Parallel.Pool.lo * 0));
        item = (fun acc i -> acc := !acc + (i * i));
        finish = (fun acc -> !acc);
      }
    |> List.fold_left ( + ) 0
  in
  let seq = at 1 None in
  Parallel.Pool.with_pool ~domains:3 @@ fun pool ->
  checki "chunk_size 1 (pooled)" seq (at 1 (Some pool));
  checki "chunk_size 7 (pooled)" seq (at 7 (Some pool));
  checki "one big chunk (pooled)" seq (at 97 (Some pool))

let test_shared_registry_from_workers () =
  (* Live registries are domain-safe: workers updating one shared counter
     concurrently lose no increments. *)
  let reg = Telemetry.Registry.create () in
  let c = Telemetry.Registry.counter reg "pool_hits_total" in
  Parallel.Pool.with_pool ~domains:4 (fun pool ->
      ignore
        (Parallel.Pool.map pool
           (fun _ ->
             for _ = 1 to 1000 do
               Telemetry.Registry.Counter.incr c
             done)
           (List.init 8 Fun.id)));
  checki "no lost increments" 8000 (Telemetry.Registry.Counter.value c)

(* --- determinism regressions ------------------------------------------------ *)

(* Fleet.run must produce identical result records *and* identical merged
   telemetry at any job count: per-device RNG streams are split off the
   root in submission order and sub-registries merge in that same order. *)
let fleet_at pool =
  let registry = Telemetry.Registry.create () in
  let ctx = Experiments.Ctx.make ~registry ?pool () in
  let result =
    Experiments.Fleet.run ~devices:6 ~days:25 ~seed:42 ~ctx `Regens
  in
  (result, Telemetry.Registry.snapshot registry)

let test_fleet_jobs_deterministic () =
  let seq_result, seq_snapshot = fleet_at None in
  let par_result, par_snapshot =
    Parallel.Pool.with_pool ~domains:4 (fun pool -> fleet_at (Some pool))
  in
  checkb "result records identical at jobs=1 and jobs=4" true
    (seq_result = par_result);
  (* [compare], not [=]: empty-histogram summaries hold [nan]. *)
  checkb "merged telemetry identical" true
    (compare seq_snapshot par_snapshot = 0)

(* Chunk boundaries must be invisible in fleet artifacts too: forcing 1
   device per chunk, an odd size, and all-devices-in-one-chunk has to give
   the same result record as the default policy. *)
let test_fleet_chunk_size_invariant () =
  let at ?chunk_size pool =
    let ctx = Experiments.Ctx.make ?pool () in
    Experiments.Fleet.run ?chunk_size ~devices:9 ~days:20 ~seed:5 ~ctx
      `Shrinks
  in
  let reference = at None in
  Parallel.Pool.with_pool ~domains:4 @@ fun pool ->
  List.iter
    (fun chunk_size ->
      checkb
        (Printf.sprintf "chunk_size %d matches sequential" chunk_size)
        true
        (at ~chunk_size (Some pool) = reference))
    [ 1; 4; 9 ]

let test_experiment_measure_deterministic () =
  let rows_at pool =
    let ctx = Experiments.Ctx.make ?pool () in
    Experiments.Lifetime_table.measure ~seeds:[ 7 ] ~ctx ()
  in
  let seq = rows_at None in
  let par =
    Parallel.Pool.with_pool ~domains:4 (fun pool -> rows_at (Some pool))
  in
  checkb "lifetime rows identical at jobs=1 and jobs=4" true (seq = par)

let suite =
  [
    ("map keeps submission order", `Quick, test_map_submission_order);
    ("map empty and map_opt", `Quick, test_map_empty_and_opt);
    ("exceptions propagate in order", `Quick, test_exception_propagates);
    ("atomics cross domains", `Quick, test_atomic_cross_domain);
    ("chunks partition the range", `Quick, test_chunks_partition);
    ("map_chunked with fewer items than domains", `Quick,
     test_map_chunked_fewer_items_than_domains);
    ("exception mid-chunk does not wedge pool", `Quick,
     test_exception_mid_chunk_does_not_wedge);
    ("accumulate invariant to chunk size", `Quick,
     test_accumulate_chunk_size_invariant);
    ("fleet invariant to chunk size", `Slow, test_fleet_chunk_size_invariant);
    ("shutdown semantics", `Quick, test_shutdown_semantics);
    ("shared registry from workers", `Quick, test_shared_registry_from_workers);
    ("fleet deterministic across jobs", `Slow, test_fleet_jobs_deterministic);
    ("lifetime table deterministic across jobs", `Slow,
     test_experiment_measure_deterministic);
  ]
