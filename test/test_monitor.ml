(* Tests for the longitudinal health monitor: downsampling series
   invariants, registry sampling, labeled merges, alert hysteresis,
   SMART-style grading, the structured span sink, golden timeline /
   Chrome-trace exports, and byte-determinism of a monitored fleet at
   any domain count. *)

let checkb = Alcotest.check Alcotest.bool
let checki = Alcotest.check Alcotest.int
let checkf epsilon = Alcotest.check (Alcotest.float epsilon)
let checks = Alcotest.check Alcotest.string

(* --- Series ------------------------------------------------------------------ *)

let test_series_small () =
  let s = Monitor.Series.create ~capacity:8 () in
  List.iteri
    (fun i v -> Monitor.Series.add s ~time:(float_of_int i) v)
    [ 1.; 2.; 3. ];
  checki "three points at stride 1" 3 (Monitor.Series.length s);
  checki "total" 3 (Monitor.Series.total s);
  checkb "last" true (Monitor.Series.last s = Some 3.);
  match Monitor.Series.points s with
  | [ a; _; c ] ->
      checkf 1e-9 "first mean" 1. a.Monitor.Series.mean;
      checki "raw points carry n=1" 1 a.Monitor.Series.n;
      checkf 1e-9 "t0 tracks sample time" 2. c.Monitor.Series.t0
  | _ -> Alcotest.fail "expected 3 points"

let test_series_downsamples () =
  let capacity = 8 in
  let s = Monitor.Series.create ~capacity () in
  let n = 10_000 in
  for i = 0 to n - 1 do
    Monitor.Series.add s ~time:(float_of_int i) (float_of_int (i mod 17))
  done;
  checki "total counts every sample" n (Monitor.Series.total s);
  checkb "bounded length" true (Monitor.Series.length s <= capacity);
  let stride = Monitor.Series.stride s in
  checkb "stride is a power of two" true (stride land (stride - 1) = 0);
  let points = Monitor.Series.points s in
  checki "points sum to total" n
    (List.fold_left (fun a (p : Monitor.Series.point) -> a + p.n) 0 points);
  ignore
    (List.fold_left
       (fun prev (p : Monitor.Series.point) ->
         checkb "windows ordered" true (prev <= p.Monitor.Series.t0);
         checkb "window consistent" true
           (p.Monitor.Series.t0 <= p.Monitor.Series.t1);
         checkb "min <= mean" true
           (p.Monitor.Series.vmin <= p.Monitor.Series.mean +. 1e-9);
         checkb "mean <= max" true
           (p.Monitor.Series.mean <= p.Monitor.Series.vmax +. 1e-9);
         p.Monitor.Series.t1)
       neg_infinity points);
  checkb "last survives compaction" true
    (Monitor.Series.last s = Some (float_of_int ((n - 1) mod 17)))

let prop_series_invariants =
  QCheck.Test.make ~count:100 ~name:"series invariants hold for any input"
    QCheck.(list (pair (float_bound_inclusive 1000.) (float_bound_inclusive 50.)))
    (fun samples ->
      let s = Monitor.Series.create ~capacity:16 () in
      List.iter (fun (t, v) -> Monitor.Series.add s ~time:t v) samples;
      let points = Monitor.Series.points s in
      Monitor.Series.total s = List.length samples
      && Monitor.Series.length s <= 16
      && List.fold_left (fun a (p : Monitor.Series.point) -> a + p.n) 0 points
         = List.length samples)

(* --- Sampler ----------------------------------------------------------------- *)

let test_sampler_snapshots_registry () =
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.Counter.incr
    (Telemetry.Registry.counter reg "writes_total")
    ~by:7;
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge reg "depth") 2.5;
  let h = Telemetry.Registry.histogram reg ~lo:0. ~hi:10. "lat_us" in
  let s = Monitor.Sampler.create () in
  Monitor.Sampler.sample s ~time:0. reg;
  (* Empty histogram: count series only — no NaN mean/p99 series. *)
  let keys =
    List.map (fun (k, _) -> Monitor.Sampler.Key.to_string k)
      (Monitor.Sampler.series s)
  in
  Alcotest.(check (list string))
    "fields of an empty histogram"
    [ "depth"; "lat_us.count"; "writes_total" ]
    keys;
  Telemetry.Registry.Histogram.observe h 1.;
  Monitor.Sampler.sample s ~time:1. reg;
  let keys =
    List.map (fun (k, _) -> Monitor.Sampler.Key.to_string k)
      (Monitor.Sampler.series s)
  in
  Alcotest.(check (list string))
    "mean/p50/p99 appear once observed"
    [ "depth"; "lat_us.count"; "lat_us.mean"; "lat_us.p50"; "lat_us.p99";
      "lat_us.p999"; "writes_total" ]
    keys;
  match Monitor.Sampler.find s (Monitor.Sampler.key "writes_total") with
  | Some series ->
      checki "two samples" 2 (Monitor.Series.total series);
      checkb "counter value sampled" true
        (Monitor.Series.last series = Some 7.)
  | None -> Alcotest.fail "counter series missing"

let test_sampler_merge_labels () =
  let a = Monitor.Sampler.create () and b = Monitor.Sampler.create () in
  Monitor.Sampler.observe a ~time:0. (Monitor.Sampler.key "wear") 1.;
  Monitor.Sampler.observe b ~time:0. (Monitor.Sampler.key "wear") 9.;
  let into = Monitor.Sampler.create () in
  Monitor.Sampler.merge ~into ~labels:[ ("device", "d0") ] a;
  Monitor.Sampler.merge ~into ~labels:[ ("device", "d1") ] b;
  let keys =
    List.map (fun (k, _) -> Monitor.Sampler.Key.to_string k)
      (Monitor.Sampler.series into)
  in
  Alcotest.(check (list string))
    "relabeled series" [ "wear{device=d0}"; "wear{device=d1}" ] keys;
  match
    Monitor.Sampler.find into
      (Monitor.Sampler.key ~labels:[ ("device", "d1") ] "wear")
  with
  | Some s -> checkb "points transplanted" true (Monitor.Series.last s = Some 9.)
  | None -> Alcotest.fail "merged series missing"

(* --- Alerts ------------------------------------------------------------------ *)

let test_alert_hysteresis () =
  let rules =
    [ Monitor.Alert.rule ~metric:"temp" ~fire:10. ~resolve:5. "hot" ]
  in
  let alerts = Monitor.Alert.create rules in
  let s = Monitor.Sampler.create () in
  let k = Monitor.Sampler.key "temp" in
  let feed time v =
    Monitor.Sampler.observe s ~time k v;
    Monitor.Alert.eval alerts ~time s
  in
  checki "3 below fire: quiet" 0 (List.length (feed 0. 3.));
  (match feed 1. 12. with
  | [ tr ] ->
      checkb "fires at 12" true (tr.Monitor.Alert.state = Monitor.Alert.Firing);
      checkf 1e-9 "transition carries the value" 12. tr.Monitor.Alert.value
  | _ -> Alcotest.fail "expected one firing transition");
  checki "8 inside the band: still firing" 0 (List.length (feed 2. 8.));
  (match feed 3. 4. with
  | [ tr ] ->
      checkb "resolves below 5" true
        (tr.Monitor.Alert.state = Monitor.Alert.Resolved);
      checkf 1e-9 "time on the sim clock" 3. tr.Monitor.Alert.time
  | _ -> Alcotest.fail "expected one resolved transition");
  checki "full log" 2 (List.length (Monitor.Alert.log alerts))

let test_alert_below_direction () =
  let alerts =
    Monitor.Alert.create
      [
        Monitor.Alert.rule ~direction:Monitor.Alert.Below
          ~metric:"device_alive" ~fire:0.5 ~resolve:0.5 "dead";
      ]
  in
  let s = Monitor.Sampler.create () in
  let k = Monitor.Sampler.key "device_alive" in
  let feed time v =
    Monitor.Sampler.observe s ~time k v;
    Monitor.Alert.eval alerts ~time s
  in
  checki "alive: quiet" 0 (List.length (feed 0. 1.));
  checki "death fires" 1 (List.length (feed 1. 0.));
  checki "steady death: no re-fire" 0 (List.length (feed 2. 0.))

(* --- Health ------------------------------------------------------------------ *)

let test_health_grades () =
  let s = Monitor.Sampler.create () in
  let obs device name time v =
    Monitor.Sampler.observe s ~time
      (Monitor.Sampler.key ~labels:[ ("device", device) ] name)
      v
  in
  let baseline device =
    obs device "device_alive" 0. 1.;
    obs device "flash_pec_max" 0. 10.;
    obs device "flash_rber_worst" 0. 1e-4;
    obs device "device_tolerable_rber" 0. 1e-2
  in
  (* d-1 healthy; d-2 worn past target; d-3 rber at tolerance; d-10 dead
     (also checks natural subject order: d-2 and d-3 before d-10). *)
  baseline "d-1";
  baseline "d-2";
  obs "d-2" "flash_pec_max" 1. 75.;
  baseline "d-3";
  obs "d-3" "flash_rber_worst" 1. 2e-2;
  baseline "d-10";
  obs "d-10" "device_alive" 1. 0.;
  let reports = Monitor.Health.assess s in
  Alcotest.(check (list string))
    "natural subject order" [ "d-1"; "d-2"; "d-3"; "d-10" ]
    (List.map (fun r -> r.Monitor.Health.subject) reports);
  Alcotest.(check (list string))
    "grades"
    [ "HEALTHY"; "DEGRADED"; "FAILING"; "RETIRED" ]
    (List.map
       (fun r -> Monitor.Health.grade_label r.Monitor.Health.grade)
       reports)

let test_health_single_subject_fallback () =
  (* No series carries a device label: the whole sampler is one subject
     (the single-device [age] path). *)
  let s = Monitor.Sampler.create () in
  Monitor.Sampler.observe s ~time:0. (Monitor.Sampler.key "device_alive") 1.;
  Monitor.Sampler.observe s ~time:0. (Monitor.Sampler.key "flash_pec_max") 3.;
  match Monitor.Health.assess s with
  | [ r ] ->
      checks "subject name" "device" r.Monitor.Health.subject;
      checkb "healthy" true (r.Monitor.Health.grade = Monitor.Health.Healthy)
  | _ -> Alcotest.fail "expected exactly one subject"

(* --- Sink -------------------------------------------------------------------- *)

let test_sink_nesting_and_merge () =
  let sink = Telemetry.Trace.Sink.create () in
  let root = Telemetry.Trace.Sink.enter sink "root" in
  let child = Telemetry.Trace.Sink.enter sink "child" in
  checkb "child nests under root" true
    (Telemetry.Trace.Sink.current sink = Some child);
  Telemetry.Trace.Sink.exit sink;
  (* A sub-sink merged mid-span splices under the open root span, with
     ids and ticks renumbered past the host's. *)
  let sub = Telemetry.Trace.Sink.create () in
  ignore (Telemetry.Trace.Sink.enter sub "task");
  Telemetry.Trace.Sink.instant sub "tick" [];
  Telemetry.Trace.Sink.exit sub;
  Telemetry.Trace.Sink.merge ~into:sink
    ?parent:(Telemetry.Trace.Sink.current sink)
    sub;
  Telemetry.Trace.Sink.exit sink;
  match Telemetry.Trace.Sink.spans sink with
  | [ r; c; t ] ->
      checkb "root is a root" true (r.Telemetry.Trace.Sink.parent = None);
      checkb "child under root" true
        (c.Telemetry.Trace.Sink.parent = Some root);
      checkb "merged span re-parented under root" true
        (t.Telemetry.Trace.Sink.parent = Some root);
      checkb "merged ids renumbered" true (t.Telemetry.Trace.Sink.id > c.Telemetry.Trace.Sink.id);
      checkb "merged ticks offset past host" true
        (t.Telemetry.Trace.Sink.start > c.Telemetry.Trace.Sink.finish);
      checki "one instant" 1 (List.length (Telemetry.Trace.Sink.instants sink))
  | spans ->
      Alcotest.failf "expected 3 spans, got %d" (List.length spans)

(* Three sub-sinks with nested spans merged in submission order: the
   exact reduction the parallel experiment layer performs.  Ids and
   ticks must renumber contiguously past everything already spliced,
   nesting inside each sub-sink must survive the offset, and the
   Chrome-trace bytes must equal those of the same timeline recorded
   sequentially into one sink. *)
let test_sink_merge_offsets_many () =
  let open Telemetry.Trace.Sink in
  (* Each task records root(i) > inner(i) > leaf(i), with an instant
     inside inner. *)
  let record sink i =
    ignore (enter sink (Printf.sprintf "task%d" i));
    ignore (enter sink (Printf.sprintf "inner%d" i));
    instant sink (Printf.sprintf "mark%d" i) [];
    ignore (enter sink (Printf.sprintf "leaf%d" i));
    exit sink;
    exit sink;
    exit sink
  in
  let host = create () in
  let host_root = enter host "host" in
  let subs = List.init 3 (fun i -> i) in
  List.iter
    (fun i ->
      let sub = create () in
      record sub i;
      merge ~into:host ?parent:(current host) sub)
    subs;
  exit host;
  let spans = spans host in
  checki "1 host + 3x3 merged spans" 10 (List.length spans);
  (* Ids are the positions in enter order: contiguous from 1 with no
     collisions across the three splices. *)
  Alcotest.(check (list int))
    "ids renumbered contiguously"
    (List.init 10 (fun i -> i + 1))
    (List.map (fun s -> s.id) spans);
  let find name = List.find (fun s -> s.name = name) spans in
  List.iter
    (fun i ->
      let root = find (Printf.sprintf "task%d" i) in
      let inner = find (Printf.sprintf "inner%d" i) in
      let leaf = find (Printf.sprintf "leaf%d" i) in
      checkb "sub-root re-parented under host" true
        (root.parent = Some host_root);
      checkb "nesting preserved through renumbering" true
        (inner.parent = Some root.id && leaf.parent = Some inner.id);
      checkb "span extents stay well-formed" true
        (root.start < inner.start && inner.start < leaf.start
        && leaf.finish <= inner.finish
        && inner.finish <= root.finish))
    subs;
  (* Later splices land strictly after earlier ones on the tick line. *)
  let tick_ranges =
    List.map
      (fun i ->
        let root = find (Printf.sprintf "task%d" i) in
        (root.start, root.finish))
      subs
  in
  (match tick_ranges with
  | [ (_, f0); (s1, f1); (s2, _) ] ->
      checkb "splices ordered on the tick line" true (f0 < s1 && f1 < s2)
  | _ -> Alcotest.fail "expected 3 ranges");
  (* Instants carry their tags and offsets too, in splice order. *)
  Alcotest.(check (list string))
    "instants spliced in order"
    [ "mark0"; "mark1"; "mark2" ]
    (List.map (fun (_, name, _) -> name) (instants host));
  (* The merged timeline exports byte-identically to the same events
     recorded sequentially into a single sink. *)
  let seq = create () in
  ignore (enter seq "host");
  List.iter (record seq) subs;
  exit seq;
  checks "chrome trace equals sequential recording"
    (Monitor.Chrome_trace.to_string seq)
    (Monitor.Chrome_trace.to_string host)

(* --- golden exports ---------------------------------------------------------- *)

(* Exact bytes: these formats are consumed by external tools and diffed
   across --jobs in CI, so lock them down. *)

let golden_sampler () =
  let s = Monitor.Sampler.create () in
  Monitor.Sampler.observe s ~time:0.
    (Monitor.Sampler.key ~labels:[ ("device", "d0") ] "rber")
    0.5;
  Monitor.Sampler.observe s ~time:0. (Monitor.Sampler.key "wear") 3.;
  Monitor.Sampler.observe s ~time:1. (Monitor.Sampler.key "wear") 4.5;
  s

let test_timeline_csv_golden () =
  checks "csv bytes"
    "metric,labels,field,t0,t1,last,mean,min,max,n\n\
     rber,device=d0,value,0,0,0.5,0.5,0.5,0.5,1\n\
     wear,,value,0,0,3,3,3,3,1\n\
     wear,,value,1,1,4.5,4.5,4.5,4.5,1\n"
    (Monitor.Timeline.to_csv (golden_sampler ()))

let test_timeline_jsonl_golden () =
  checks "jsonl bytes"
    "{\"metric\":\"rber\",\"labels\":{\"device\":\"d0\"},\"field\":\"value\",\
     \"points\":[[0,0,0.5,0.5,0.5,0.5,1]]}\n\
     {\"metric\":\"wear\",\"labels\":{},\"field\":\"value\",\
     \"points\":[[0,0,3,3,3,3,1],[1,1,4.5,4.5,4.5,4.5,1]]}\n"
    (Monitor.Timeline.to_jsonl (golden_sampler ()))

let test_chrome_trace_golden () =
  let sink = Telemetry.Trace.Sink.create () in
  ignore (Telemetry.Trace.Sink.enter sink "root");
  ignore (Telemetry.Trace.Sink.enter sink ~args:[ ("k", "v") ] "child");
  Telemetry.Trace.Sink.exit sink;
  Telemetry.Trace.Sink.instant sink "ping" [ ("a", "1") ];
  Telemetry.Trace.Sink.exit sink;
  checks "trace bytes"
    ("{\"traceEvents\":["
   ^ "{\"name\":\"root\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":1,\"dur\":4,\
      \"pid\":0,\"tid\":0,\"args\":{\"id\":\"1\"}},\n "
   ^ "{\"name\":\"child\",\"cat\":\"span\",\"ph\":\"X\",\"ts\":2,\"dur\":1,\
      \"pid\":0,\"tid\":0,\"args\":{\"k\":\"v\",\"id\":\"2\",\"parent\":\"1\"}},\n "
   ^ "{\"name\":\"ping\",\"cat\":\"event\",\"ph\":\"i\",\"ts\":4,\"pid\":0,\
      \"tid\":0,\"s\":\"g\",\"args\":{\"a\":\"1\"}}"
   ^ "],\"displayTimeUnit\":\"ms\"}\n")
    (Monitor.Chrome_trace.to_string sink)

(* --- Engine + fleet determinism ---------------------------------------------- *)

let fleet_rules () =
  [
    Monitor.Alert.rule ~direction:Monitor.Alert.Below ~metric:"device_alive"
      ~fire:0.5 ~resolve:0.5 "device-dead";
    Monitor.Alert.rule ~metric:"flash_pec_max"
      ~fire:(float_of_int Experiments.Defaults.target_pec)
      ~resolve:(0.9 *. float_of_int Experiments.Defaults.target_pec)
      "wear-past-target";
  ]

let monitored_fleet ?pool () =
  let registry = Telemetry.Registry.create () in
  let monitor =
    Monitor.Engine.create ~sample_every:3 ~rules:(fleet_rules ())
      ~sink:(Telemetry.Trace.Sink.create ())
      ()
  in
  let ctx = Experiments.Ctx.make ~registry ?pool ~monitor () in
  ignore (Experiments.Fleet.run ~devices:3 ~days:12 ~dwpd:2. ~ctx `Regens);
  let health =
    Format.asprintf "%a" Monitor.Health.pp
      (Monitor.Health.assess (Monitor.Engine.sampler monitor))
  in
  let alerts =
    Format.asprintf "%a" Monitor.Alert.pp (Monitor.Engine.alert_log monitor)
  in
  let trace =
    match Monitor.Engine.sink monitor with
    | Some sink -> Monitor.Chrome_trace.to_string sink
    | None -> ""
  in
  (Monitor.Timeline.to_csv (Monitor.Engine.sampler monitor), health, alerts,
   trace, monitor)

let test_fleet_monitor_determinism () =
  let csv1, health1, alerts1, trace1, _ = monitored_fleet () in
  let csv2, health2, alerts2, trace2, _ =
    Parallel.Pool.with_pool ~domains:3 (fun pool -> monitored_fleet ~pool ())
  in
  checks "timeline identical at any job count" csv1 csv2;
  checks "health report identical" health1 health2;
  checks "alert log identical" alerts1 alerts2;
  checks "chrome trace identical" trace1 trace2;
  checkb "timeline non-empty" true (String.length csv1 > 100);
  checkb "trace has spans" true
    (String.length trace1 > String.length "{\"traceEvents\":[]}")

let test_fleet_wear_series_monotone () =
  let _, _, _, _, monitor = monitored_fleet () in
  let sampler = Monitor.Engine.sampler monitor in
  let wear_series =
    List.filter
      (fun ((k : Monitor.Sampler.Key.t), _) ->
        k.Monitor.Sampler.Key.name = "flash_pec_max"
        && k.Monitor.Sampler.Key.field = "value")
      (Monitor.Sampler.series sampler)
  in
  checki "one wear series per device" 3 (List.length wear_series);
  List.iter
    (fun (_, series) ->
      checkb "several samples" true (Monitor.Series.total series > 2);
      ignore
        (List.fold_left
           (fun prev (p : Monitor.Series.point) ->
             checkb "pec never decreases" true
               (prev <= p.Monitor.Series.last +. 1e-9);
             p.Monitor.Series.last)
           0. (Monitor.Series.points series)))
    wear_series

let test_engine_due_and_absorb () =
  let engine = Monitor.Engine.create ~sample_every:3 () in
  checkb "tick 0 due" true (Monitor.Engine.due engine ~tick:0);
  checkb "tick 1 not due" false (Monitor.Engine.due engine ~tick:1);
  checkb "tick 3 due" true (Monitor.Engine.due engine ~tick:3);
  let reg = Telemetry.Registry.create () in
  Telemetry.Registry.Gauge.set (Telemetry.Registry.gauge reg "x") 1.;
  let sub = Monitor.Engine.sub engine in
  Monitor.Engine.sample sub ~time:0. reg;
  Monitor.Engine.absorb ~into:engine ~labels:[ ("device", "d7") ] sub;
  checki "samples accumulate" 1 (Monitor.Engine.samples engine);
  checkb "series relabeled" true
    (Monitor.Sampler.find (Monitor.Engine.sampler engine)
       (Monitor.Sampler.key ~labels:[ ("device", "d7") ] "x")
    <> None)

let suite =
  [
    ("series: small inputs", `Quick, test_series_small);
    ("series: downsampling invariants", `Quick, test_series_downsamples);
    QCheck_alcotest.to_alcotest prop_series_invariants;
    ("sampler: registry snapshots", `Quick, test_sampler_snapshots_registry);
    ("sampler: labeled merge", `Quick, test_sampler_merge_labels);
    ("alert: hysteresis band", `Quick, test_alert_hysteresis);
    ("alert: below direction", `Quick, test_alert_below_direction);
    ("health: grading + natural order", `Quick, test_health_grades);
    ("health: single-subject fallback", `Quick,
     test_health_single_subject_fallback);
    ("sink: nesting and merge", `Quick, test_sink_nesting_and_merge);
    ("sink: 3-way merge renumbering", `Quick, test_sink_merge_offsets_many);
    ("timeline: csv golden", `Quick, test_timeline_csv_golden);
    ("timeline: jsonl golden", `Quick, test_timeline_jsonl_golden);
    ("chrome trace: golden", `Quick, test_chrome_trace_golden);
    ("fleet: byte-identical at any jobs", `Slow,
     test_fleet_monitor_determinism);
    ("fleet: wear series monotone", `Slow, test_fleet_wear_series_monotone);
    ("engine: due + absorb", `Quick, test_engine_due_and_absorb);
  ]
